#!/usr/bin/env python
"""Booting the Dorado from disk: microcode loading microcode.

The machine starts with only two resident pieces of microcode -- the
disk task's transfer loop and a boot loader.  A microprogram image sits
on disk sector 0.  Task 0 starts the story by spinning on the disk's
status register while the disk task (woken by the controller at the
10 Mbit/s data rate) streams the sector into main memory; then the boot
loader walks the in-memory table, writes each 34-bit word into the
control store through the console paths (section 6.2.3), and jumps into
the freshly loaded program via LINK.

This is the "incrementally assemble and test a Dorado from the bottom
up" story of section 4, end to end.
"""

from repro import Assembler, FF, Processor
from repro.asm.bootstrap import boot_loader_microcode, encode_for_boot
from repro.io.disk import DISK_IO_ADDRESS, DiskController, DiskGeometry, disk_microcode

TABLE_VA = 0x2000


def resident_microcode() -> Assembler:
    """What the machine wakes up with: poll loop + loader + disk task."""
    asm = Assembler()
    # Task 0: point IOADDRESS at the disk status register and spin until
    # the controller reports done, then fall into the loader.
    asm.label("poll")
    asm.emit(b=DISK_IO_ADDRESS + 1, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.label("spin")
    asm.emit(b="INPUT", alu="B", load="T")
    asm.emit(a="T", b=1, alu="AND",
             branch=("NONZERO", "go", "wait"))
    asm.label("wait")
    asm.emit(goto="spin")
    asm.label("go")
    asm.emit(goto="boot.load")
    boot_loader_microcode(asm)
    disk_microcode(asm)
    return asm


def payload_image():
    """The program that only exists on disk until the boot completes."""
    asm = Assembler()
    asm.register("n", 1)
    asm.label("hello")
    asm.emit(r="n", b=0, alu="B", load="RM")
    asm.emit(count=9)
    asm.label("loop")
    asm.emit(r="n", a="RM", b=3, alu="ADD", load="RM",
             branch=("COUNT", "loop", "done"))
    asm.label("done")
    asm.emit(r="n", b="RM", ff=FF.TRACE)
    asm.halt()
    return asm.assemble(base_page=16)  # clear of the resident pages


def main() -> None:
    cpu = Processor()
    cpu.load_image(resident_microcode().assemble())
    cpu.memory.identity_map()

    image = payload_image()
    table = encode_for_boot(image, "hello")
    # Pad to a whole sector and write it to the disk surface.
    sector_words = 256
    assert len(table) <= sector_words, "payload too big for one sector"
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=sector_words))
    cpu.attach_device(disk)
    disk.fill_sector(0, table + [0] * (sector_words - len(table)))

    # Point the boot loader at where the sector will land.
    cpu.regs.write_rm_absolute(8, TABLE_VA)  # boot.ptr
    disk.begin_read(cpu, sector=0, buffer_va=TABLE_VA)
    cpu.boot(cpu.address_of("poll"))

    cycles = cpu.run(200_000)
    print(f"booted and ran in {cycles} cycles "
          f"({cpu.config.seconds(cycles) * 1e3:.2f} ms of machine time)")
    print(f"  disk transferred {disk.geometry.words_per_sector} words at "
          f"~10 Mbit/s while task 0 polled")
    print(f"  loader wrote {len(image.words)} microinstructions into IM")
    print(f"  payload traced: {cpu.console.trace} (expected [30])")
    assert cpu.console.trace == [30]


if __name__ == "__main__":
    main()
