#!/usr/bin/env python
"""Quickstart: assemble microcode, run it, read the trace.

This is the smallest complete tour of the simulator: write a microcode
loop in the :class:`repro.Assembler` DSL, place it into the 4K control
store, and step the 60 ns machine until HALT.  The program multiplies
two numbers with sixteen MULSTEPs -- the Dorado's hardware multiply aid
(section 6.3.3 of the paper).
"""

from repro import Assembler, FF, Processor


def main() -> None:
    asm = Assembler()
    asm.register("m", 1)          # multiplicand lives in RM register 1

    # --- microcode ------------------------------------------------------
    asm.load_constant("m", 1234)  # multiplicand
    asm.emit(b=567 & 0xFF00, alu="B", load="T")          # build 567 in T
    asm.emit(a="T", b=567 & 0x00FF, alu="OR", load="T")
    asm.emit(b="T", ff=FF.Q_B)    # multiplier into Q
    asm.emit(b=0, alu="B", load="T")                     # clear the accumulator
    for _ in range(16):           # sixteen multiply steps
        asm.emit(r="m", a="RM", ff=FF.MULSTEP)
    asm.emit(b="T", ff=FF.TRACE)  # product high half -> console trace
    asm.emit(b="Q", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE)  # product low half
    asm.halt()

    image = asm.assemble()
    print(f"placed {len(image)} microinstructions "
          f"({asm.report.pages_used} pages, "
          f"utilization {asm.report.utilization:.2%})")

    # --- run ---------------------------------------------------------------
    cpu = Processor()
    cpu.load_image(image)
    cycles = cpu.run()

    high, low = cpu.console.trace
    product = (high << 16) | low
    print(f"1234 x 567 = {product} (expected {1234 * 567})")
    print(f"{cycles} microcycles = {cpu.config.seconds(cycles) * 1e6:.2f} "
          "microseconds of 1980 machine time")
    assert product == 1234 * 567


if __name__ == "__main__":
    main()
