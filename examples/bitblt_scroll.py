#!/usr/bin/env python
"""BitBlt: draw, scroll, and merge bitmaps with the 32-bit shifter.

Renders a banner into a bitmap, scrolls it sideways by a non-word-
aligned distance (the shifter's whole reason for existing), and XORs a
pattern over it -- then prints the bitmaps as ASCII art and the
bandwidth of each operation against the paper's 34 / 24 Mbit/s.
"""

from repro.graphics.bitblt import BitBltFunction, build_bitblt_machine, run_bitblt
from repro.graphics.bitmap import Bitmap

SRC = 0x2000
DST = 0x4000

GLYPHS = {
    "D": ["###..", "#..#.", "#..#.", "#..#.", "###.."],
    "O": [".##..", "#..#.", "#..#.", "#..#.", ".##.."],
    "R": ["###..", "#..#.", "###..", "#.#..", "#..#."],
    "A": [".##..", "#..#.", "####.", "#..#.", "#..#."],
}


def draw_text(bitmap: Bitmap, text: str, x0: int = 1, y0: int = 1) -> None:
    x = x0
    for ch in text:
        for dy, row in enumerate(GLYPHS[ch]):
            for dx, cell in enumerate(row):
                if cell == "#":
                    bitmap.set_bit(x + dx, y0 + dy, 1)
        x += 5


def main() -> None:
    cpu = build_bitblt_machine()
    words, rows = 3, 7
    src = Bitmap(cpu.memory, SRC, words + 1, rows)
    dst = Bitmap(cpu.memory, DST, words, rows)
    src.fill(0)
    dst.fill(0)
    draw_text(src, "DORADO")

    print("source bitmap:")
    print(src.render())

    # Warm the cache so the printed rates are the steady-state ones (the
    # paper's figures are for hot inner loops too).
    run_bitblt(
        cpu, BitBltFunction.COPY, src_va=SRC, dst_va=DST,
        words_per_row=words, rows=rows,
        src_pitch=words + 1, dst_pitch=words, shift=0,
    )

    shift = 3
    cycles = run_bitblt(
        cpu, BitBltFunction.COPY, src_va=SRC, dst_va=DST,
        words_per_row=words, rows=rows,
        src_pitch=words + 1, dst_pitch=words, shift=shift,
    )
    bits = words * rows * 16
    print(f"\nscrolled left {shift} pixels "
          f"({cpu.config.megabits_per_second(bits, cycles):.1f} Mbit/s; "
          "paper: 34 for the simple case):")
    print(dst.render())

    cycles = run_bitblt(
        cpu, BitBltFunction.XOR, src_va=SRC, dst_va=DST,
        words_per_row=words, rows=rows,
        src_pitch=words + 1, dst_pitch=words, shift=0,
    )
    print(f"\nXORed the unshifted source over it "
          f"({cpu.config.megabits_per_second(bits, cycles):.1f} Mbit/s; "
          "paper: 24 for functions of source and destination):")
    print(dst.render())

    cycles = run_bitblt(
        cpu, BitBltFunction.FILL, dst_va=DST,
        words_per_row=words, rows=rows, dst_pitch=words, fill_value=0,
    )
    print(f"\nerased ({cpu.config.megabits_per_second(bits, cycles):.1f} Mbit/s)")
    assert all(w == 0 for row in dst.rows() for w in row)


if __name__ == "__main__":
    main()
