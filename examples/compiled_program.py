#!/usr/bin/env python
"""The full toolchain: source language -> byte codes -> microcode -> cycles.

Section 3 of the paper: "the Dorado is optimized for the execution of
languages that are compiled into a stream of byte codes."  This example
compiles a small program (a prime sieve) with the mini-Mesa compiler,
runs it on the simulated machine, and prints the per-opcode cost profile
-- the whole stack the paper describes, from source text down to 60 ns
microcycles.
"""

from repro.emulators.compiler import compile_source
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import build_mesa_machine
from repro.perf.measure import OpcodeProfiler

SOURCE = """
# Count primes below n with a sieve at mem[0x4800...].
proc count_primes(n) {
    var i = 2;
    while i < n { mem[0x4800 + i] = 1; i = i + 1; }
    i = 2;
    while i < n {
        if mem[0x4800 + i] {
            var j = i + i;
            while j < n { mem[0x4800 + j] = 0; j = j + i; }
        }
        i = i + 1;
    }
    var count = 0;
    i = 2;
    while i < n {
        if mem[0x4800 + i] { count = count + 1; }
        i = i + 1;
    }
    return count;
}

proc main() {
    trace(count_primes(200));
}
"""


def main() -> None:
    ctx = build_mesa_machine()
    out = BytecodeAssembler(ctx.table)
    compile_source(SOURCE, out)
    stream = out.assemble()
    print(f"compiled to {len(stream)} byte-code bytes")

    ctx.load_program(stream)
    profiler = OpcodeProfiler(ctx)
    cycles = ctx.run(10_000_000)
    assert ctx.halted

    print(f"primes below 200: {ctx.cpu.console.trace[0]} (expected 46)")
    dispatches = ctx.cpu.ifu.dispatches
    print(f"{dispatches} byte codes in {cycles} cycles "
          f"({cycles / dispatches:.2f} cycles/byte-code, "
          f"{ctx.cpu.config.seconds(cycles) * 1e3:.2f} ms of machine time)")
    print("\nhottest opcodes:")
    table = sorted(profiler.table().items(),
                   key=lambda kv: kv[1].cycles, reverse=True)
    for name, stats in table[:8]:
        print(f"  {name:7s} x{stats.dispatches:6d}  "
              f"{stats.mean_microinstructions:5.2f} uinst  "
              f"{stats.mean_cycles:5.2f} cycles")
    assert ctx.cpu.console.trace == [46]


if __name__ == "__main__":
    main()
