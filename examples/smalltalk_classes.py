#!/usr/bin/env python
"""Smalltalk on the Dorado: classes, inheritance, and the cost of sends.

Compiles a small class hierarchy with the mini-Smalltalk compiler and
runs it; every message send is a real method-dictionary probe (and
superclass walk) in microcode, which is why Smalltalk sits at the
expensive end of the paper's emulator spectrum.
"""

from repro.emulators.stc import compile_smalltalk

SOURCE = """
class Shape [
    | area |
    area: _ [ ^area ]
    describe: tag [ trace: tag. trace: (self area: 0). ^self ]
]

class Square extends Shape [
    side: n [ area := n. ^self ]        "pretend multiply"
]

class Stretched extends Square [
    side: n [ area := n + n. ^self ]    "an override"
]

main [
    s := new Square.
    t := new Stretched.
    s side: 7.
    t side: 7.
    s describe: 1.
    t describe: 2.
]
"""


def main() -> None:
    compiled = compile_smalltalk(SOURCE)
    ctx = compiled.run()
    trace = ctx.cpu.console.trace
    print(f"trace: {trace}  (tags 1/2 with areas 7 and 14)")
    cycles = ctx.cpu.counters.cycles
    dispatches = ctx.cpu.ifu.dispatches
    print(f"{dispatches} byte codes in {cycles} cycles "
          f"({cycles / dispatches:.1f} cycles/byte-code -- sends are dear)")
    assert trace == [1, 7, 2, 14]


if __name__ == "__main__":
    main()
