#!/usr/bin/env python
"""Byte-code emulation: recursive Fibonacci on the Mesa emulator.

The paper's headline workload class: Mesa byte codes fetched and decoded
by the IFU, executed by task-0 microcode, with function calls through
FC/ENTER/RET frames.  The per-opcode profile printed at the end is the
paper's Table-1-style data (section 7): loads cost 1-2
microinstructions, calls cost tens.
"""

from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import FRAMES_VA, build_mesa_machine
from repro.perf.measure import OpcodeProfiler

N = 14


def main() -> None:
    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)

    # main: push N, call fib, store the result in local 0, halt.
    b.op("LITW", N); b.op("FC", "fib"); b.op("SL", 0); b.op("HALT")

    # fib(n): if n < 2 return n else fib(n-1) + fib(n-2)
    b.label("fib")
    b.op("ENTER", 1)
    b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("JNEG", "base")
    b.op("LL", 0); b.op("LIT", 1); b.op("SUB"); b.op("FC", "fib"); b.op("SL", 1)
    b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("FC", "fib")
    b.op("LL", 1); b.op("ADD"); b.op("RET")
    b.label("base")
    b.op("LL", 0); b.op("RET")

    ctx.load_program(b.assemble())
    profiler = OpcodeProfiler(ctx)
    cycles = ctx.run(5_000_000)

    result = ctx.memory_word(FRAMES_VA + 2)
    dispatches = ctx.cpu.ifu.dispatches
    print(f"fib({N}) = {result}")
    print(f"{dispatches} byte codes in {cycles} microcycles "
          f"({cycles / dispatches:.2f} cycles/byte-code, "
          f"{ctx.cpu.config.seconds(cycles) * 1e3:.2f} ms of machine time)")
    print()
    print("per-opcode cost (microinstructions / cycles, mean):")
    for name, stats in sorted(profiler.table().items()):
        print(f"  {name:6s} x{stats.dispatches:5d}  "
              f"{stats.mean_microinstructions:6.2f} uinst  "
              f"{stats.mean_cycles:6.2f} cycles")
    assert result == 377


if __name__ == "__main__":
    main()
