#!/usr/bin/env python
"""The Lisp emulator: 32-bit tagged items, CONS cells, deep-bound calls.

Builds a list with CONS, maps a function over it (calls with BIND and
RETL unwinding), and shows why the paper reports Lisp operations at
5-20 microinstructions and calls around 200 where Mesa needs 1-2 and
~50 -- every item is two words, the stack lives in memory, and every
primitive checks tags at run time.
"""

from repro.emulators.isa import BytecodeAssembler
from repro.emulators.lisp import (
    TAG_INT,
    build_lisp_machine,
    define_function,
    set_symbol_value,
    symbol_operand,
    symbol_value,
)
from repro.perf.measure import OpcodeProfiler

# Symbols: 0 = list, 1 = total, 2 = x (the lambda variable), 3 = double (fn)
S_LIST, S_TOTAL, S_X = (symbol_operand(i) for i in range(3))
FN_DOUBLE = 3


def main() -> None:
    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)

    # Build the list (5 4 3 2 1) with CONS.
    b.op("NILP"); b.op("SLV", S_LIST)
    b.op("LIN", 5); b.op("SLV", symbol_operand(4))  # counter in symbol 4
    b.label("build")
    b.op("LLV", symbol_operand(4)); b.op("LLV", S_LIST); b.op("CONS")
    b.op("SLV", S_LIST)
    b.op("LLV", symbol_operand(4)); b.op("LIN", 1); b.op("SUBL")
    b.op("SLV", symbol_operand(4))
    b.op("LLV", symbol_operand(4)); b.op("JZL", "sum")
    b.op("JMPL", "build")

    # total = sum of (double x) over the list.
    b.label("sum")
    b.op("LIN", 0); b.op("SLV", S_TOTAL)
    b.label("loop")
    b.op("LLV", S_LIST); b.op("JNIL", "done")
    b.op("LLV", S_LIST); b.op("CAR")
    b.op("CALLL", symbol_operand(FN_DOUBLE))      # (double (car list))
    b.op("LLV", S_TOTAL); b.op("ADDL"); b.op("SLV", S_TOTAL)
    b.op("LLV", S_LIST); b.op("CDR"); b.op("SLV", S_LIST)
    b.op("JMPL", "loop")
    b.label("done")
    b.op("HALTL")

    # (defun double (x) (+ x x))
    b.label("double")
    b.op("BIND", S_X)
    b.op("LLV", S_X); b.op("LLV", S_X); b.op("ADDL")
    b.op("RETL")

    ctx.load_program(b.assemble())
    define_function(ctx, FN_DOUBLE, b.address_of("double"))
    set_symbol_value(ctx, 2, TAG_INT, 0)

    profiler = OpcodeProfiler(ctx)
    cycles = ctx.run(5_000_000)
    tag, total = symbol_value(ctx, 1)
    print(f"(reduce + (mapcar double '(5 4 3 2 1))) = {total}  [tag {tag}]")
    print(f"{cycles} microcycles, "
          f"{cycles / ctx.cpu.ifu.dispatches:.1f} cycles per byte code")
    print()
    print("the 32-bit-items tax, per opcode class (mean microinstructions):")
    for name in ("LLV", "SLV", "CAR", "CDR", "CONS", "ADDL", "CALLL", "BIND", "RETL"):
        stats = profiler.mean(name)
        if stats.dispatches:
            print(f"  {name:6s} {stats.mean_microinstructions:6.1f}")
    assert (tag, total) == (TAG_INT, 2 * (5 + 4 + 3 + 2 + 1))


if __name__ == "__main__":
    main()
