#!/usr/bin/env python
"""The console processor's view: load, disassemble, single-step, poke.

The real Dorado was brought up from a console microcomputer wired to
CPREG "and a very small number of control signals" (section 6.2.3).
This example plays that role: it disassembles the placed microcode,
single-steps the machine watching TPC and the task pipeline, patches
the control store while the machine runs, and reads the fault latch.
"""

from repro import Assembler, FF, Processor
from repro.core.microword import MicroInstruction


def main() -> None:
    asm = Assembler()
    asm.register("x", 1)
    asm.label("start")
    asm.emit(r="x", b=0, alu="B", load="RM")
    asm.emit(count=3)
    asm.label("loop")
    asm.emit(r="x", a="RM", b=1, alu="ADD", load="RM",
             branch=("COUNT", "loop", "end"))
    asm.label("end")
    asm.emit(r="x", b="RM", ff=FF.TRACE)
    asm.halt()
    image = asm.assemble()

    print("=== disassembly (address: rendering) ===")
    for address, text in image.disassemble():
        print(f"  {address:4o}: {text}")

    cpu = Processor()
    cpu.load_image(image)

    print("\n=== single stepping ===")
    for step in range(6):
        pc = cpu.this_pc
        inst = cpu.im[pc]
        print(f"  cycle {step}: task {cpu.pipe.this_task} "
              f"pc {pc:4o}  {inst.describe()}  COUNT={cpu.regs.count}")
        cpu.step()

    cpu.run(100)
    print(f"\ntrace after run: {cpu.console.trace} (the loop ran COUNT+1 times)")

    print("\n=== patching the microstore from the console ===")
    # Replace the HALT with a TRACE-of-99 then HALT at a fresh address.
    free = max(image.words) + 2
    halt_addr = next(a for a, i in image.words.items() if i.ff == int(FF.HALT))
    cpu.im[free] = MicroInstruction(ff=int(FF.HALT),
                                    nc=cpu.im[halt_addr].nc)
    print(f"  wrote a new instruction at {free:4o}")
    print(f"  original HALT at {halt_addr:4o}: {cpu.im[halt_addr].describe()}")

    print("\n=== the fault latch ===")
    cpu2 = Processor()
    asm2 = Assembler()
    asm2.register("va", 1)
    asm2.emit(r="va", b=0x7F00, alu="B", load="RM")
    asm2.emit(r="va", a="RM", fetch=True)
    asm2.emit(ff=FF.READ_FAULTS, load="T")
    asm2.emit(b="T", ff=FF.TRACE)
    asm2.halt()
    cpu2.load_image(asm2.assemble())
    cpu2.memory.identity_map(4)  # VA 0x7F00 unmapped: map fault
    cpu2.run(100)
    print(f"  fault word after an unmapped fetch: {cpu2.console.trace[0]:#06x} "
          "(bit 0 = map fault)")


if __name__ == "__main__":
    main()
