#!/usr/bin/env python
"""Processor sharing: the emulator computes while the display, disk, and
network controllers stream through the same microcoded processor.

This is the architecture the paper's section 4 argues for: instead of
per-controller DMA engines, all four activities multiplex one processor
with zero-overhead task switches.  The report at the end shows each
task's share of the cycles -- the display's ~2 instructions per 16-word
munch, the disk's 3 cycles per 2 words, and the emulator soaking up
everything left over.
"""

from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import FRAMES_VA, build_mesa_machine
from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode
from repro.io.display import DISPLAY_TASK, DisplayController, display_fast_microcode
from repro.io.network import NETWORK_TASK, NetworkController, network_microcode
from repro.types import MUNCH_WORDS

BITMAP_VA = 0x6000
DISK_BUF = 0x7000
NET_BUF = 0x7800


def main() -> None:
    ctx = build_mesa_machine(
        extra_microcode=[disk_microcode, display_fast_microcode, network_microcode]
    )
    cpu = ctx.cpu

    # The emulator's work: a long arithmetic loop.
    b = BytecodeAssembler(ctx.table)
    n = 1500
    b.op("LIT", 0); b.op("SL", 0)
    b.op("LITW", n); b.op("SL", 1)
    b.label("loop")
    b.op("LL", 0); b.op("LL", 1); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())

    # Devices.
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=256))
    display = DisplayController(munch_interval_cycles=16)  # ~266 Mbit/s display
    net = NetworkController()
    for device in (disk, display, net):
        cpu.attach_device(device)

    disk.fill_sector(0, [(3 * i) & 0xFFFF for i in range(256)])
    for i in range(96 * MUNCH_WORDS):
        cpu.memory.debug_write(BITMAP_VA + i, i & 0xFFFF)
    net.inject_packet([(0x6000 + i) & 0xFFFF for i in range(64)])

    disk.begin_read(cpu, sector=0, buffer_va=DISK_BUF)
    display.begin_band(cpu, BITMAP_VA, 96)
    net.begin_receive(cpu, buffer_va=NET_BUF, packet_words=64)

    cpu.run(5_000_000)
    while not (disk.done and display.done and net.done):
        cpu.halted = False
        cpu.step()
    counters = cpu.counters

    print(f"emulator result: sum 1..{n} = {ctx.memory_word(FRAMES_VA + 2)} "
          f"(expected {n * (n + 1) // 2 & 0xFFFF})")
    print(f"disk sector read: {'OK' if disk.done else 'FAILED'}")
    print(f"display band: {display.pixels_consumed} pixels, "
          f"{display.underruns} underruns")
    print(f"network packet: {'OK' if net.packets_received else 'FAILED'}")
    print()
    total = counters.cycles
    print(f"{total} cycles "
          f"({cpu.config.seconds(total) * 1e3:.2f} ms of machine time), "
          f"{counters.task_switches} task switches")
    for task, name in [
        (0, "emulator"),
        (NETWORK_TASK, "network"),
        (DISK_TASK, "disk"),
        (DISPLAY_TASK, "display"),
    ]:
        share = counters.task_cycles[task] / total
        bar = "#" * int(share * 60)
        print(f"  task {task:2d} {name:9s} {share:6.1%} {bar}")


if __name__ == "__main__":
    main()
