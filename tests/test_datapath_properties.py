"""Differential testing: random microprograms against a reference model.

Hypothesis generates straight-line microcode over the ALU/register
datapath; an independent, dead-simple Python interpreter predicts the
final RM/T state; the simulated processor must agree.  This catches
bypass, constant-encoding, and writeback-ordering regressions that
hand-written tests miss.
"""

from hypothesis import given, settings, strategies as st

from repro import Assembler, PRODUCTION, Processor
from repro.core.alu import STANDARD_ALUFM, STANDARD_OPS, compute

ALU_NAMES = sorted(STANDARD_OPS)

op_strategy = st.fixed_dictionaries(
    {
        "rsel": st.integers(0, 7),
        "alu": st.sampled_from(ALU_NAMES),
        "b_kind": st.sampled_from(["const_low", "const_high", "rm", "t"]),
        "b_value": st.integers(0, 255),
        "a_kind": st.sampled_from(["rm", "t"]),
        "load": st.sampled_from(["T", "RM", "RM_T", None]),
    }
)


def reference_run(ops):
    """The independent model: sequential semantics, full bypassing."""
    rm = [0] * 16
    t = 0
    carry = False
    for op in ops:
        a = rm[op["rsel"]] if op["a_kind"] == "rm" else t
        if op["b_kind"] == "const_low":
            b = op["b_value"]
        elif op["b_kind"] == "const_high":
            b = op["b_value"] << 8
        elif op["b_kind"] == "rm":
            b = rm[op["rsel"]]
        else:
            b = t
        result = compute(STANDARD_ALUFM[STANDARD_OPS[op["alu"]]], a, b, carry)
        if result.arithmetic:
            carry = result.carry
        if op["load"] in ("RM", "RM_T"):
            rm[op["rsel"]] = result.value
        if op["load"] in ("T", "RM_T"):
            t = result.value
    return rm, t


def machine_run(ops):
    asm = Assembler(PRODUCTION)
    for op in ops:
        if op["b_kind"] == "const_low":
            b = op["b_value"]
        elif op["b_kind"] == "const_high":
            b = op["b_value"] << 8
        elif op["b_kind"] == "rm":
            b = "RM"
        else:
            b = "T"
        asm.emit(
            r=op["rsel"],
            alu=op["alu"],
            a="RM" if op["a_kind"] == "rm" else "T",
            b=b,
            load=op["load"],
        )
    asm.halt()
    cpu = Processor(PRODUCTION)
    cpu.load_image(asm.assemble())
    cpu.run(10_000)
    assert cpu.halted
    return [cpu.regs.read_rm_absolute(i) for i in range(16)], cpu.regs.read_t(0)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_machine_matches_reference(ops):
    expected_rm, expected_t = reference_run(ops)
    got_rm, got_t = machine_run(ops)
    assert got_t == expected_t
    assert got_rm == expected_rm


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(op_strategy, min_size=2, max_size=12),
    seed_t=st.integers(0, 0xFFFF),
)
def test_machine_matches_reference_with_preset_state(ops, seed_t):
    expected_rm, expected_t = None, None
    # Seed T through an initial load so both sides agree on it.
    prologue = [
        {"rsel": 0, "alu": "B", "b_kind": "const_low",
         "b_value": seed_t & 0xFF, "a_kind": "rm", "load": "T"},
    ]
    full = prologue + ops
    expected_rm, expected_t = reference_run(full)
    got_rm, got_t = machine_run(full)
    assert (got_rm, got_t) == (expected_rm, expected_t)
