"""The performance-counter plumbing."""

from repro.core.counters import Counters


def test_record_cycle_accumulates():
    counters = Counters()
    counters.record_cycle(0, held=False)
    counters.record_cycle(0, held=True)
    counters.record_cycle(5, held=False)
    assert counters.cycles == 3
    assert counters.instructions == 2
    assert counters.held_cycles == 1
    assert counters.task_cycles[0] == 2
    assert counters.task_held[0] == 1
    assert counters.task_instructions[5] == 1


def test_occupancy():
    counters = Counters()
    for _ in range(3):
        counters.record_cycle(2, held=False)
    counters.record_cycle(0, held=False)
    assert counters.occupancy(2) == 0.75
    assert Counters().occupancy(1) == 0.0


def test_hit_rate():
    counters = Counters()
    assert counters.hit_rate == 1.0  # no references yet
    counters.cache_hits = 9
    counters.cache_misses = 1
    assert counters.hit_rate == 0.9


def test_delta_and_copy():
    counters = Counters()
    counters.record_cycle(1, held=False)
    counters.cache_hits = 4
    snapshot = counters.copy()
    counters.record_cycle(1, held=True)
    counters.cache_hits = 7
    delta = counters.delta(snapshot)
    assert delta.cycles == 1
    assert delta.held_cycles == 1
    assert delta.cache_hits == 3
    assert delta.task_cycles[1] == 1
    # The snapshot itself is unchanged by later activity.
    assert snapshot.cycles == 1 and snapshot.cache_hits == 4


def test_summary_keys():
    summary = Counters().summary()
    for key in ("cycles", "instructions", "held_cycles", "cache_hit_rate"):
        assert key in summary
