"""The machine-wide snapshot/restore/fork protocol (DESIGN.md section 5.4).

The contract under test: a :class:`~repro.state.MachineState` captures
*all* architectural state and *only* architectural state.  Restoring a
snapshot and re-running must reproduce the original execution
byte-for-byte -- on both cycle implementations, with and without fault
injection, with devices and fast I/O in flight -- and a forked machine
must be completely independent of its parent.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Assembler,
    MachineState,
    Processor,
    StateError,
    diff_states,
)
from repro.config import PRODUCTION
from repro.fault import FaultConfig
from repro.io.display import DisplayController, display_fast_microcode
from repro.perf.workloads import ALL_WORKLOADS, mesa_loop_sum
from repro.state import STATE_FORMAT_VERSION
from repro.types import MUNCH_WORDS

FAULTS = FaultConfig(seed=7, storage_correctable=5, map_faults=2, last_cycle=3000)

#: The four machine variants every round-trip property must hold on:
#: both cycle implementations, each clean and fault-injected.
CONFIGS = {
    "plan": PRODUCTION,
    "interp": dataclasses.replace(PRODUCTION, plan_cache_enabled=False),
    "plan_faulted": dataclasses.replace(PRODUCTION, fault_injection=FAULTS),
    "interp_faulted": dataclasses.replace(
        PRODUCTION, plan_cache_enabled=False, fault_injection=FAULTS
    ),
}

# One machine per variant, reset to its boot snapshot between examples;
# building the Mesa emulator image dominates the test's cost otherwise.
_MACHINES = {}


def _machine(variant):
    if variant not in _MACHINES:
        cpu = mesa_loop_sum(60, config=CONFIGS[variant]).ctx.cpu
        _MACHINES[variant] = (cpu, cpu.snapshot())
    cpu, pristine = _MACHINES[variant]
    cpu.restore(pristine)
    return cpu


# --- the core property ------------------------------------------------------


@pytest.mark.parametrize("variant", sorted(CONFIGS))
@settings(max_examples=8, deadline=None)
@given(n=st.integers(0, 1200), k=st.integers(1, 600))
def test_restore_replays_byte_identically(variant, n, k):
    """run n, snapshot, run k -- restoring and re-running k matches."""
    cpu = _machine(variant)
    cpu.run(n)
    mid = cpu.snapshot()
    mid_json = mid.to_json()
    cpu.run(k)
    end_json = cpu.snapshot().to_json()
    end_counters = cpu.counters.state_dict()

    cpu.restore(mid)
    resnap = cpu.snapshot()
    assert resnap.to_json() == mid_json, diff_states(resnap, mid)
    cpu.run(k)
    assert cpu.snapshot().to_json() == end_json
    assert cpu.counters.state_dict() == end_counters


def test_snapshot_does_not_alias_live_state():
    """A held snapshot must not change as the machine keeps stepping."""
    cpu = _machine("plan")
    cpu.run(500)
    snap = cpu.snapshot()
    frozen = snap.to_json()
    cpu.run(500)
    assert snap.to_json() == frozen


def test_same_snapshot_restores_twice():
    cpu = _machine("plan")
    cpu.run(400)
    snap = cpu.snapshot()
    cpu.run(300)
    first = None
    for _ in range(2):
        cpu.restore(snap)
        cpu.run(300)
        end = cpu.snapshot().to_json()
        assert first is None or end == first
        first = end


# --- every workload, both cycle paths ---------------------------------------


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
@pytest.mark.parametrize("path", ["plan", "interp"])
def test_workload_roundtrip(name, path):
    """Snapshot/restore is byte-identical for every perf workload."""
    workload = ALL_WORKLOADS[name](config=CONFIGS[path])
    cpu = workload.ctx.cpu
    cpu.run(2000)
    mid = cpu.snapshot()
    first_cycles = cpu.run(100_000)
    assert cpu.halted
    end_json = cpu.snapshot().to_json()
    assert workload.verify()

    cpu.restore(mid)
    replay_cycles = cpu.run(100_000)
    assert replay_cycles == first_cycles
    assert cpu.snapshot().to_json() == end_json
    assert workload.verify()


# --- fork independence -------------------------------------------------------


def _display_machine():
    asm = Assembler()
    asm.emit(idle=True)
    display_fast_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    display = DisplayController(munch_interval_cycles=8)
    cpu.attach_device(display)
    for i in range(32 * MUNCH_WORDS):
        cpu.memory.debug_write(0x3000 + i, i)
    display.begin_band(cpu, 0x3000, 32)
    return cpu, display


def test_fork_is_independent_with_fast_io_in_flight():
    """Forked mid-band, parent and clone refresh the band separately."""
    cpu, display = _display_machine()
    cpu.run(100)
    while not cpu.memory._fast_in_flight:  # munch actually on the wire
        cpu.step()
    at_fork = cpu.snapshot().to_json()

    clone = cpu.fork()
    assert clone.snapshot().to_json() == at_fork
    assert clone.memory.storage is not cpu.memory.storage
    assert clone.counters is not cpu.counters
    assert clone._devices[0] is not display

    cpu.run_until(lambda m: display.done, max_cycles=50_000)
    assert display.done and display.underruns == 0
    # The parent ran to completion; the clone must not have moved.
    assert clone.snapshot().to_json() == at_fork

    mirror = clone._devices[0]
    clone.run_until(lambda m: mirror.done, max_cycles=50_000)
    assert mirror.done and mirror.underruns == 0
    assert mirror.pixels_consumed == display.pixels_consumed
    assert clone.snapshot().to_json() == cpu.snapshot().to_json()


def test_fork_replays_workload_to_same_result():
    cpu = _machine("plan_faulted")
    cpu.run(1500)
    clone = cpu.fork()
    first = cpu.run(100_000)
    second = clone.run(100_000)
    assert (first, cpu.halted) == (second, clone.halted)
    assert cpu.snapshot().to_json() == clone.snapshot().to_json()


# --- warm compiled-trace caches (DESIGN.md section 5.6) ----------------------


def _warm_traced_machine():
    """A PRODUCTION machine run long enough to be executing traces."""
    from repro.core.tracecache import TraceCache

    cpu = mesa_loop_sum(60, config=PRODUCTION).ctx.cpu
    cpu._traces = TraceCache(cpu, hot_threshold=2)
    cpu.run(1200)
    assert cpu._traces.traces, "machine never got hot"
    assert cpu._traces.entries > 0
    return cpu


def test_restore_with_warm_trace_cache_replays_byte_identically():
    """Snapshot and restore around a hot trace cache stay bit-exact.

    Compiled traces are derived state: the snapshot must not carry
    them, restore must drop them, and the replay -- which re-detects
    and re-compiles the same hot regions -- must land on the identical
    architectural state and counters.
    """
    cpu = _warm_traced_machine()
    mid = cpu.snapshot()
    mid_json = mid.to_json()
    cpu.run(800)
    end_json = cpu.snapshot().to_json()
    end_counters = cpu.counters.state_dict()

    cpu.restore(mid)
    assert not cpu._traces.traces, "restore left compiled traces behind"
    assert cpu.snapshot().to_json() == mid_json
    cpu.run(800)
    assert cpu.snapshot().to_json() == end_json
    assert cpu.counters.state_dict() == end_counters
    assert cpu._traces.traces, "replay never re-warmed"
    assert cpu._traces.failures == []


def test_fork_shares_no_trace_closures():
    """A clone never inherits the parent's compiled closures.

    Generated trace code captures the *parent's* register files and
    memory pipeline in its closure; executing it on the clone would
    silently mutate the parent.  fork() must hand the clone an empty,
    private cache.
    """
    cpu = _warm_traced_machine()
    clone = cpu.fork()
    assert clone._traces is not cpu._traces
    assert clone._traces.traces == {}
    assert clone._traces.counts == {}
    assert clone._traces._rec_key is None
    # The parent's cache also resets: its recorded hot counts would be
    # stale relative to the snapshot point anyway.
    at_fork = clone.snapshot().to_json()
    first = cpu.run(100_000)
    assert cpu.halted
    # The parent ran traces to completion; the clone must not have moved.
    assert clone.snapshot().to_json() == at_fork
    second = clone.run(100_000)
    assert (first, cpu.halted) == (second, clone.halted)
    assert cpu.snapshot().to_json() == clone.snapshot().to_json()
    assert clone._traces.traces, "clone never re-warmed on its own"
    assert clone._traces.traces is not cpu._traces.traces
    assert clone._traces.failures == []


# --- network controller mid-transfer, all three tiers -------------------------


def _network_machine(config):
    from repro.io.network import NetworkController, network_microcode

    asm = Assembler(config)
    asm.emit(idle=True)
    network_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    net = NetworkController()
    cpu.attach_device(net)
    return cpu, net


@pytest.mark.parametrize("tier", ["interp", "plan", "traced"])
@pytest.mark.parametrize("direction", ["rx", "tx"])
def test_network_mid_transfer_roundtrip_across_tiers(tier, direction):
    """Snapshot/restore with a network DMA in flight, on every tier.

    The cluster fabric snapshots machines between epochs, which can
    land mid-receive or mid-transmit; the controller's FIFO, pacing
    timer, and pair-fetch counters must all survive the round-trip on
    the interpreter, the plan cache, and the compiled-trace tier alike.
    """
    from repro.exp import tier_configs

    cpu, net = _network_machine(tier_configs(PRODUCTION)[tier])
    if direction == "rx":
        net.begin_receive(cpu, buffer_va=0x5000, packet_words=32)
        net.inject_packet([(0x4000 + i) & 0xFFFF for i in range(32)])
    else:
        for i in range(16):
            cpu.memory.debug_write(0x5100 + i, (0x6000 + i) & 0xFFFF)
        net.begin_transmit(cpu, buffer_va=0x5100, packet_words=16)
    cpu.run(200)                      # mid-transfer: words still pacing
    assert net.mode != "idle" and not net.done
    mid = cpu.snapshot()
    mid_json = mid.to_json()
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    end_json = cpu.snapshot().to_json()

    cpu.restore(mid)
    assert cpu.snapshot().to_json() == mid_json
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    assert cpu.snapshot().to_json() == end_json


# --- boot() residue (the re-boot satellite) ----------------------------------


def test_boot_clears_run_residue():
    """Re-booting must not leak bypass/hold/IFU state into the new run."""
    asm = Assembler()
    asm.register("acc", 1)
    asm.label("start")
    asm.emit(r="acc", b=5, alu="B", load="RM")
    asm.emit(r="acc", a="RM", b=2, alu="ADD", load="RM")
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.boot("start")
    cpu.run(100)
    assert cpu.regs.rm[cpu.regs.rm_address(0, 1)] == 7

    # Poison the residue a paused/halted machine can carry, then re-boot.
    cpu._pending[1] = 0xDEAD
    cpu._consecutive_holds = 17
    cpu.boot("start")
    assert cpu._pending == {}
    assert cpu._consecutive_holds == 0
    assert cpu.ifu._head is None
    assert cpu.ifu._buffered == cpu.ifu.pc
    cpu.run(100)
    assert cpu.regs.rm[cpu.regs.rm_address(0, 1)] == 7


def test_boot_resets_fault_injector_and_latches():
    """Re-booting rewinds the fault schedule, trace, and fault latches.

    Without the reset, a second booted run would see a half-consumed
    injection plan and a stale FAULT_* latch -- the recovery supervisor
    depends on re-runs under one injector seeing the identical plan.
    """
    faulted = dataclasses.replace(
        PRODUCTION,
        fault_injection=FaultConfig(seed=3, map_faults=1, last_cycle=0),
    )
    asm = Assembler(faulted)
    asm.register("va", 1)
    asm.label("start")
    asm.emit(r="va", b=0x0200, alu="B", load="RM")
    asm.emit(r="va", a="RM", fetch=True)       # map fault fires here
    asm.emit(b="MD", alu="B", load="T")
    asm.halt()
    cpu = Processor(faulted)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    inj = cpu.fault_injector
    total = inj.pending
    cpu.boot("start")
    cpu.run(200)
    assert cpu.halted
    first = list(inj.trace)
    assert first and inj.pending == total - 1
    assert cpu.memory.fault_flags != 0         # FAULT_MAP latched, no fault task

    cpu.boot("start")
    assert inj.pending == total
    assert inj.trace == []
    assert cpu.memory.fault_flags == 0
    cpu.run(200)
    assert cpu.halted
    # Same events fire again (the record's cycle stamp is absolute
    # machine time, which boot deliberately does not rewind).
    assert [
        (r.component, r.kind, r.address, r.detail) for r in inj.trace
    ] == [(r.component, r.kind, r.address, r.detail) for r in first]
    assert cpu.memory.fault_flags != 0


# --- serialization -----------------------------------------------------------


def test_save_load_roundtrip_is_byte_identical(tmp_path):
    cpu = _machine("plan")
    cpu.run(700)
    snap = cpu.snapshot()
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    snap.save(a)
    loaded = MachineState.load(a)
    loaded.save(b)
    assert a.read_bytes() == b.read_bytes()

    cpu.run(400)
    cpu.restore(loaded)
    assert cpu.snapshot().to_json() == snap.to_json()
    assert loaded == snap
    assert f"cycle={cpu.now}" in repr(loaded)


def test_config_mismatch_is_refused():
    snap = _machine("plan").snapshot()
    other = Processor(dataclasses.replace(PRODUCTION, cache_lines=256))
    with pytest.raises(StateError):
        other.restore(snap)


def test_version_mismatch_is_refused():
    cpu = _machine("plan")
    snap = cpu.snapshot()
    snap.data["version"] = STATE_FORMAT_VERSION + 1
    with pytest.raises(StateError):
        cpu.restore(snap)


def test_device_roster_mismatch_is_refused():
    cpu, _ = _display_machine()
    snap = cpu.snapshot()
    bare = Processor()  # no devices attached
    with pytest.raises(StateError):
        bare.restore(snap)


def test_malformed_json_is_refused():
    with pytest.raises(StateError):
        MachineState.from_json("{not json")
    with pytest.raises(StateError):
        MachineState.from_json('{"no": "version"}')


def test_diff_states_names_the_divergent_register():
    cpu = _machine("plan")
    cpu.run(300)
    a = cpu.snapshot()
    b = cpu.snapshot()
    b.data["core"]["regs"]["rm"][3] ^= 1
    b.data["core"]["now"] += 1
    diffs = diff_states(a, b)
    assert any("core.regs.rm[3]" in d for d in diffs)
    assert any("core.now" in d for d in diffs)
    assert diff_states(a, a) == []
