"""The mini-Smalltalk compiler."""

import pytest

from repro import MicrocodeCrash
from repro.emulators.stc import SmalltalkCompileError, compile_smalltalk, run_smalltalk


def trace_of(source, max_cycles=10_000_000):
    ctx, _ = run_smalltalk(source, max_cycles)
    return ctx.cpu.console.trace


COUNTER = """
class Counter [
    | count |
    bump: n  [ count := count + n. ^self ]
    value: _ [ ^count ]
]
"""


def test_basic_send_and_state():
    source = COUNTER + """
    main [
        c := new Counter.
        c bump: 5.
        c bump: 7.
        trace: (c value: 0).
    ]
    """
    assert trace_of(source) == [12]


def test_parameter_usable_anywhere():
    source = """
    class M [
        twice: n   [ ^n + n ]
        flip: n    [ ^100 - n ]
        both: n    [ ^n + n - n ]
    ]
    main [
        m := new M.
        trace: (m twice: 21).
        trace: (m flip: 1).
        trace: (m both: 9).
    ]
    """
    assert trace_of(source) == [42, 99, 9]


def test_methods_chain_through_self():
    source = COUNTER + """
    main [
        c := new Counter.
        trace: (((c bump: 1) bump: 2) value: 0).
    ]
    """
    assert trace_of(source) == [3]


def test_inheritance_and_override():
    source = COUNTER + """
    class Doubler extends Counter [
        bump: n [ count := count + n + n. ^self ]
    ]
    main [
        d := new Doubler.
        d bump: 4.
        trace: (d value: 0).
    ]
    """
    assert trace_of(source) == [8]


def test_inherited_method_runs_on_subclass():
    source = COUNTER + """
    class Child extends Counter [
        zero: _ [ count := 0. ^self ]
    ]
    main [
        k := new Child.
        k bump: 9.
        trace: (k value: 0).
        k zero: 0.
        trace: (k value: 0).
    ]
    """
    assert trace_of(source) == [9, 0]


def test_sends_between_objects():
    source = COUNTER + """
    class Feeder [
        into: c [ c bump: 3. c bump: 4. ^c value: 0 ]
    ]
    main [
        c := new Counter.
        f := new Feeder.
        trace: (f into: c).
    ]
    """
    assert trace_of(source) == [7]


def test_integer_globals():
    source = """
    class M [ echo: n [ ^n ] ]
    main [
        m := new M.
        k := 41.
        trace: (m echo: k) + 1.
    ]
    """
    assert trace_of(source) == [42]


def test_separate_instances_have_separate_state():
    source = COUNTER + """
    main [
        a := new Counter.
        b := new Counter.
        a bump: 10.
        b bump: 1.
        trace: (a value: 0).
        trace: (b value: 0).
    ]
    """
    assert trace_of(source) == [10, 1]


def test_unknown_selector_traps():
    source = COUNTER + """
    main [
        c := new Counter.
        c nosuch: 1.
    ]
    """
    with pytest.raises(MicrocodeCrash):
        run_smalltalk(source)


@pytest.mark.parametrize(
    "source,match",
    [
        ("class A [ ]", "no main"),
        ("main [ trace: (x value: 0). ]", "unbound global"),
        ("main [ c := new Nope. ]", "unknown class"),
        ("class A [ m: x [ ^y ] ] main [ ]", None),  # checked at compile of body
        ("class A extends B [ ] main [ ]", "unknown superclass"),
        ("class A [ ] class A [ ] main [ ]", "twice"),
        ("class A [ | v | ] class B extends A [ | v | ] main [ ]", "shadows"),
    ],
)
def test_rejections(source, match):
    if match is None:
        with pytest.raises(SmalltalkCompileError):
            run_smalltalk(source)
    else:
        with pytest.raises(SmalltalkCompileError, match=match):
            compiled = compile_smalltalk(source)
            compiled.run()


def test_comments_stripped():
    source = '"a comment" ' + COUNTER + """
    main [ "set up" c := new Counter. trace: (c value: 0). ]
    """
    assert trace_of(source) == [0]
