"""Property-based lock-down of the set-associative cache.

A tiny cache (2 sets x 2 ways) in front of a small storage is driven
with random sequences of reads, writes, flushes, fast-I/O stores, and
invalidations -- exactly the operation mix the memory pipeline issues --
and compared against a flat reference model where every write is
immediately and permanently visible.  LRU, write-back, write-allocate,
``flush_munch`` and ``invalidate_munch`` all have to cooperate for the
coherent view (cache copy if present, else storage) to match the model
after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.mem.storage import Storage
from repro.types import MUNCH_WORDS

LINES = 4
WAYS = 2
STORAGE_WORDS = 8 * MUNCH_WORDS  # 8 munches over 2 sets: heavy eviction


def build():
    return Cache(LINES, WAYS), Storage(STORAGE_WORDS), [0] * STORAGE_WORDS


def ensure_filled(cache, storage, address):
    """The pipeline's write-allocate path: fill on miss, write back victims."""
    if not cache.contains(address):
        writeback = cache.fill(address, storage.read_munch(address))
        if writeback is not None:
            victim_address, victim_words = writeback
            storage.write_munch(victim_address, victim_words)


def coherent_read(cache, storage, address):
    """What the machine would observe: cache copy first, else storage."""
    if cache.contains(address):
        return cache.read_word(address)
    return storage.read_word(address)


addresses = st.integers(min_value=0, max_value=STORAGE_WORDS - 1)
values = st.integers(min_value=0, max_value=0xFFFF)

operations = st.one_of(
    st.tuples(st.just("read"), addresses, st.just(0)),
    st.tuples(st.just("write"), addresses, values),
    st.tuples(st.just("flush"), addresses, st.just(0)),
    st.tuples(st.just("fastio_store"), addresses, values),
    st.tuples(st.just("invalidate"), addresses, st.just(0)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(operations, min_size=1, max_size=60))
def test_cache_matches_flat_model(ops):
    cache, storage, model = build()
    for op, address, value in ops:
        if op == "read":
            ensure_filled(cache, storage, address)
            assert cache.read_word(address) == model[address]
        elif op == "write":
            ensure_filled(cache, storage, address)
            cache.write_word(address, value)
            model[address] = value
        elif op == "flush":
            # Fast-I/O read consistency: a dirty copy reaches storage,
            # the line stays valid and clean.
            flushed = cache.flush_munch(address)
            if flushed is not None:
                storage.write_munch(address, flushed)
            base = Storage.munch_base(address)
            assert storage.read_munch(address) == model[base : base + MUNCH_WORDS]
        elif op == "fastio_store":
            # Fast-I/O write: a device munch goes straight to storage
            # and any cached copy is dropped.
            words = [(value + i) & 0xFFFF for i in range(MUNCH_WORDS)]
            storage.write_munch(address, words)
            cache.invalidate_munch(address)
            base = Storage.munch_base(address)
            model[base : base + MUNCH_WORDS] = words
        else:  # invalidate a *clean* line (dropping dirty data diverges)
            line = cache.lookup(address)
            if line is not None and not line.dirty:
                cache.invalidate_munch(address)
        # The machine-visible view always matches the flat model.
        assert coherent_read(cache, storage, address) == model[address]

    # Full sweep: every word still coherent once the dust settles.
    for address in range(STORAGE_WORDS):
        assert coherent_read(cache, storage, address) == model[address]
    valid, dirty = cache.stats()
    assert valid <= LINES and dirty <= valid


@settings(max_examples=40, deadline=None)
@given(st.lists(addresses, min_size=1, max_size=40))
def test_lru_keeps_the_most_recent_way(probes):
    """After any probe sequence, the most recently touched munch of each
    set is still resident (LRU never evicts the newest line)."""
    cache, storage, _ = build()
    last_touched = {}
    for address in probes:
        ensure_filled(cache, storage, address)
        cache.read_word(address)
        index, _ = cache._locate(address)
        last_touched[index] = address
    for address in last_touched.values():
        assert cache.contains(address)


@settings(max_examples=40, deadline=None)
@given(addresses, values, addresses)
def test_writeback_preserves_dirty_data_across_eviction(address, value, other):
    """A dirty word survives any eviction chain: force the victim out by
    filling its whole set, then read the word back coherently."""
    cache, storage, _ = build()
    ensure_filled(cache, storage, address)
    cache.write_word(address, value)
    # Fill the victim's set with enough distinct munches to evict it.
    index, _ = cache._locate(address)
    evicted = 0
    munch = Storage.munch_base(other)
    while evicted <= WAYS:
        munch = (munch + MUNCH_WORDS) % STORAGE_WORDS
        candidate_index, _ = cache._locate(munch)
        if candidate_index == index and munch != Storage.munch_base(address):
            ensure_filled(cache, storage, munch)
            evicted += 1
    assert coherent_read(cache, storage, address) == value
