"""The 32-bit barrel shifter and masker (section 6.3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro import EncodingError
from repro.core.shifter import (
    ShiftControl,
    byte_swap_control,
    field_control,
    insert_control,
    rotate_control,
    shift,
    shift_masked,
)
from repro.types import word

words = st.integers(min_value=0, max_value=0xFFFF)
amounts = st.integers(min_value=0, max_value=31)


@given(words, words, amounts)
def test_shift_is_high_word_of_rotation(rm, t, amount):
    control = ShiftControl(amount=amount)
    double = (rm << 16) | t
    rotated = ((double << amount) | (double >> (32 - amount))) & 0xFFFFFFFF if amount else double
    assert shift(control, rm, t) == (rotated >> 16) & 0xFFFF


@given(words)
def test_zero_shift_returns_rm(value):
    assert shift(ShiftControl(amount=0), value, 0x1234) == value


@given(words, st.integers(0, 15))
def test_word_rotate_with_duplicated_word(value, k):
    """The single-word rotate idiom: RM == T."""
    expected = word((value << k) | (value >> (16 - k))) if k else value
    assert shift(rotate_control(k), value, value) == expected


@given(words)
def test_byte_swap(value):
    swapped = ((value & 0xFF) << 8) | (value >> 8)
    assert shift(byte_swap_control(), value, value) == swapped


def test_shiftctl_roundtrip():
    control = ShiftControl(amount=13, left_mask=3, right_mask=9)
    assert ShiftControl.decode(control.encode()) == control


def test_shiftctl_ranges():
    with pytest.raises(EncodingError):
        ShiftControl(amount=32)
    with pytest.raises(EncodingError):
        ShiftControl(left_mask=16)
    with pytest.raises(EncodingError):
        ShiftControl(right_mask=-1)


def test_mask_window():
    control = ShiftControl(amount=0, left_mask=4, right_mask=4)
    assert control.mask == 0x0FF0


@given(words, words, words)
def test_masking_mixes_fill(rm, t, fill):
    control = ShiftControl(amount=7, left_mask=2, right_mask=3)
    out = shift_masked(control, rm, t, fill)
    raw = shift(control, rm, t)
    window = control.mask
    assert out == ((raw & window) | (fill & ~window & 0xFFFF))


field_specs = st.integers(1, 16).flatmap(
    lambda width: st.tuples(st.integers(0, 16 - width), st.just(width))
)


@given(words, field_specs)
def test_field_extraction(value, spec):
    position, width = spec
    control = field_control(position, width)
    extracted = shift_masked(control, value, 0xA5A5, 0)
    assert extracted == (value >> position) & ((1 << width) - 1)


@given(words, words, field_specs)
def test_field_insertion(dest, fieldval, spec):
    position, width = spec
    control = insert_control(position, width)
    fieldval &= (1 << width) - 1
    merged = shift_masked(control, fieldval, 0x5A5A, dest)
    mask = ((1 << width) - 1) << position
    expected = (dest & ~mask & 0xFFFF) | (fieldval << position)
    assert merged == expected


@given(words, field_specs)
def test_extract_then_insert_is_identity(value, spec):
    position, width = spec
    extracted = shift_masked(field_control(position, width), value, 0, 0)
    merged = shift_masked(insert_control(position, width), extracted, 0, value)
    assert merged == value


def test_field_bounds_rejected():
    with pytest.raises(EncodingError):
        field_control(12, 8)
    with pytest.raises(EncodingError):
        field_control(0, 0)
    with pytest.raises(EncodingError):
        insert_control(9, 8)
    with pytest.raises(EncodingError):
        rotate_control(16)
