"""Unit tests for the compiled-trace cache mechanism itself.

``tests/test_fastpath_parity.py`` proves the traced tier bit-identical
to the other two cycle implementations; this file pins the *mechanism*
around the generated code -- hot-region detection, recording cut-offs,
blacklisting, the process-wide compile memo, invalidation hooks, and
the stats surface -- on small hand-built machines where each edge is
easy to reach deliberately.
"""

import pytest

from repro import Processor
from repro.config import PRODUCTION
from repro.core.microword import (
    BSel,
    LoadControl,
    MicroInstruction,
    NextControl,
    NextType,
)
from repro.core.tracecache import (
    HOT_THRESHOLD,
    MAX_TRACE_STEPS,
    MIN_STRAIGHT_STEPS,
    TraceCache,
)
from repro.io.display import DisplayController


def _goto(dest: int, load: int = 0, ff: int = 0) -> MicroInstruction:
    return MicroInstruction(
        aluop=7, bsel=BSel.CONST_LZ, lc=LoadControl(load), ff=ff,
        nc=NextControl.pack(NextType.GOTO, dest),
    )


def _ring_machine(slots: int, hot_threshold: int = 2) -> Processor:
    """A PRODUCTION machine spinning a ring of *slots* GOTOs."""
    cpu = Processor(PRODUCTION)
    cpu._traces = TraceCache(cpu, hot_threshold=hot_threshold)
    for slot in range(slots):
        cpu.im[slot] = _goto((slot + 1) % slots, load=int(LoadControl.T), ff=slot & 0xFF)
    return cpu


# --------------------------------------------------------------------------
# detection and compilation
# --------------------------------------------------------------------------

def test_back_edge_counting_respects_threshold():
    cpu = _ring_machine(8, hot_threshold=3)
    cache = cpu._traces
    # One trip around the ring per 8 cycles; the back edge fires at the
    # wrap.  Below the threshold: counted, not yet recording.
    cpu.run(max_cycles=17)  # two back edges seen
    assert cache.counts.get((0, 0)) == 2
    assert not cache.traces
    cpu.run(max_cycles=24)  # third back edge arms recording, then compiles
    assert (0, 0) in cache.traces
    assert (0, 0) not in cache.counts
    assert cache.compiled == 1


def test_default_threshold_matches_module_constant():
    cpu = Processor(PRODUCTION)
    assert cpu._traces.hot_threshold == HOT_THRESHOLD


def test_trace_executes_and_counts_entries():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=400)
    cache = cpu._traces
    assert cache.entries > 0
    assert cache.failures == []
    stats = cache.stats()
    assert stats["traces"] == 1
    assert stats["compiled"] == 1
    assert stats["entries"] == cache.entries
    assert stats["recording"] is False
    assert stats["failures"] == 0


def test_overlong_recording_compiles_straight_prefix(monkeypatch):
    """A hot region longer than MAX_TRACE_STEPS still compiles.

    GOTOs are page-local (64 slots), so instead of building a ring
    longer than the real cap, lower the cap under a 40-slot ring.
    """
    import repro.core.tracecache as tracecache_mod

    monkeypatch.setattr(tracecache_mod, "MAX_TRACE_STEPS", 12)
    cpu = _ring_machine(40)
    cpu.run(max_cycles=40 * 5)
    cache = cpu._traces
    assert (0, 0) in cache.traces
    assert cache.failures == []
    # The generated source covers exactly the capped prefix.
    assert cache.sources[(0, 0)].count("# -- step") == 12


def test_compile_memo_shares_code_not_closures():
    """Twin machines share compiled code objects, never closures."""
    a = _ring_machine(8)
    b = _ring_machine(8)
    a.run(max_cycles=200)
    b.run(max_cycles=200)
    fn_a = a._traces.traces[(0, 0)]
    fn_b = b._traces.traces[(0, 0)]
    assert fn_a is not fn_b
    assert fn_a.__code__ is fn_b.__code__


# --------------------------------------------------------------------------
# recording cut-offs and the blacklist
# --------------------------------------------------------------------------

def test_short_straight_recording_is_blacklisted():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=50)  # plans exist, cache warm
    cache = cpu._traces
    key = (0, 3)
    cache.begin_recording(key)
    assert cache.stats()["recording"] is True
    # Two traceable steps, then a task switch: under MIN_STRAIGHT_STEPS.
    assert MIN_STRAIGHT_STEPS > 2
    cache.record_step(0, 3, 0, 4)
    cache.record_step(0, 4, 1, 5)
    assert key in cache.blacklist
    assert key not in cache.traces
    assert cache._rec_key is None


def test_blacklisted_key_is_never_recompiled():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=50)
    cache = cpu._traces
    cache.traces.clear()  # drop the compiled ring trace but keep counts
    cache.blacklist.add((0, 0))
    cpu.run(max_cycles=200)
    assert (0, 0) not in cache.traces


def test_abort_recording_discards_cleanly():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=50)
    cache = cpu._traces
    cache.begin_recording((0, 2))
    cache.record_step(0, 2, 0, 3)
    cache.abort_recording()
    assert cache._rec_key is None
    assert cache._rec_steps is None
    assert (0, 2) not in cache.blacklist
    assert (0, 2) not in cache.traces


def test_untraceable_plan_cuts_the_recording():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=50)
    cache = cpu._traces
    cpu._plans[5] = None  # simulate a slot the plan compiler rejected
    cache.begin_recording((0, 4))
    cache.record_step(0, 4, 0, 5)
    cache.record_step(0, 5, 0, 6)  # plan is None: finish as straight
    assert (0, 4) in cache.blacklist  # one step < MIN_STRAIGHT_STEPS
    assert cache._rec_key is None


# --------------------------------------------------------------------------
# invalidation
# --------------------------------------------------------------------------

def test_invalidate_all_clears_in_place_and_counts():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=200)
    cache = cpu._traces
    traces_dict = cache.traces
    assert traces_dict
    before = cache.invalidations
    cache.invalidate_all()
    assert cache.traces is traces_dict and not traces_dict
    assert not cache.counts and not cache.blacklist and not cache.sources
    assert cache.invalidations == before + 1
    # A second sweep over an already-empty cache is not an invalidation.
    cache.invalidate_all()
    assert cache.invalidations == before + 1


def test_attach_device_drops_traces():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=200)
    assert cpu._traces.traces
    cpu.attach_device(DisplayController(munch_interval_cycles=8))
    assert not cpu._traces.traces


def test_restore_drops_traces():
    cpu = _ring_machine(8)
    snap = cpu.snapshot()
    cpu.run(max_cycles=200)
    assert cpu._traces.traces
    cpu.restore(snap)
    assert not cpu._traces.traces


@pytest.mark.parametrize("poke", ["direct", "slice"])
def test_im_write_drops_traces_and_recording(poke):
    cpu = _ring_machine(8)
    cpu.run(max_cycles=200)
    cache = cpu._traces
    assert cache.traces
    inst = _goto(1)
    if poke == "direct":
        cpu.im[3] = inst
    else:
        cpu.im[3:4] = [inst]
    assert not cache.traces
    assert not cache.counts
    assert cache._rec_key is None


def test_supervisor_degrade_disables_the_traced_tier():
    cpu = _ring_machine(8)
    cpu.run(max_cycles=200)
    assert cpu._traces.traces
    cpu._trace_enabled = False  # what Supervisor._maybe_degrade sets
    cache_entries = cpu._traces.entries
    cpu.run(max_cycles=100)
    assert cpu._traces.entries == cache_entries  # never entered again
