"""The pipeline tracer."""

from repro import Assembler, FF, Processor
from repro.perf.tracing import PipelineTracer


def traced_machine():
    asm = Assembler()
    asm.register("addr", 1)
    asm.emit(r="addr", b=0x0200, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", load="T")  # long hold on the cold miss
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    return cpu


def test_records_every_cycle():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    assert len(tracer.records) == cpu.counters.cycles
    assert tracer.tasks_seen() == [0]


def test_hold_windows_detected():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    windows = tracer.hold_windows(0)
    assert len(windows) == 1
    start, length = windows[0]
    assert length >= cpu.config.miss_penalty - 3


def test_cycles_and_holds_match_counters():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    assert tracer.cycles_by_task()[0] == cpu.counters.task_cycles[0]
    assert tracer.holds_by_task()[0] == cpu.counters.task_held[0]


def test_timeline_renders_marks():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    text = tracer.timeline(width=40, labels={0: "emulator"})
    assert "emulator" in text
    assert "#" in text and "h" in text


def test_bounded_recording():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu, max_records=10).install()
    cpu.run(1000)
    assert len(tracer.records) == 10
    assert tracer.records[-1].cycle == cpu.counters.cycles - 1


def test_uninstall_restores_previous_hook():
    cpu = traced_machine()
    seen = []
    cpu.trace_hook = lambda now, pc, inst, held: seen.append(now)
    tracer = PipelineTracer(cpu).install()
    cpu.step()
    tracer.uninstall()
    cpu.step()
    assert len(seen) == 2  # the original hook ran both cycles
    assert len(tracer.records) == 1


def test_hold_windows_survive_task_interleaving():
    """A multiplexed machine must not split a task's hold window.

    Task 0 takes repeated cold-miss holds while a disk read runs; the
    disk task's cycles land *inside* task 0's hold windows (that overlap
    is the point of Hold, E9).  hold_windows(0) must see one window per
    miss, sized by task 0's own held cycles only.
    """
    from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode

    asm = Assembler()
    asm.register("addr", 1)
    asm.emit(r="addr", b=0x0400, alu="B", load="RM")
    asm.emit(count=15)
    asm.label("loop")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", load="T")  # cold miss: long hold each time
    asm.emit(r="addr", a="RM", b=0x20, alu="ADD", load="RM",
             branch=("COUNT", "loop", "done"))
    asm.label("done")
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=32))
    cpu.attach_device(disk)
    disk.fill_sector(0, list(range(32)))
    tracer = PipelineTracer(cpu).install()
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=50_000)

    assert set(tracer.tasks_seen()) == {0, DISK_TASK}
    windows = tracer.hold_windows(0)
    # Every one of task 0's held cycles is inside exactly one window.
    assert sum(length for _, length in windows) == cpu.counters.task_held[0]
    # The test is non-vacuous: at least one window really was interleaved
    # (two consecutive held task-0 cycles with a disk cycle between them).
    disk_cycles = {r.cycle for r in tracer.records if r.task == DISK_TASK}
    held0 = [r.cycle for r in tracer.records if r.task == 0 and r.held]
    assert any(
        b - a > 1 and any(a < c < b for c in disk_cycles)
        for a, b in zip(held0, held0[1:])
    ), "no disk cycle interleaved a hold window; the scenario is too tame"


def test_multitask_timeline():
    from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode

    asm = Assembler()
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=32))
    cpu.attach_device(disk)
    disk.fill_sector(0, list(range(32)))
    tracer = PipelineTracer(cpu).install()
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=20_000)
    assert set(tracer.tasks_seen()) == {0, DISK_TASK}
    text = tracer.timeline()
    assert f"task {DISK_TASK}" in text
