"""The pipeline tracer."""

from repro import Assembler, FF, Processor
from repro.perf.tracing import PipelineTracer


def traced_machine():
    asm = Assembler()
    asm.register("addr", 1)
    asm.emit(r="addr", b=0x0200, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", load="T")  # long hold on the cold miss
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    return cpu


def test_records_every_cycle():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    assert len(tracer.records) == cpu.counters.cycles
    assert tracer.tasks_seen() == [0]


def test_hold_windows_detected():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    windows = tracer.hold_windows(0)
    assert len(windows) == 1
    start, length = windows[0]
    assert length >= cpu.config.miss_penalty - 3


def test_cycles_and_holds_match_counters():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    assert tracer.cycles_by_task()[0] == cpu.counters.task_cycles[0]
    assert tracer.holds_by_task()[0] == cpu.counters.task_held[0]


def test_timeline_renders_marks():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu).install()
    cpu.run(1000)
    text = tracer.timeline(width=40, labels={0: "emulator"})
    assert "emulator" in text
    assert "#" in text and "h" in text


def test_bounded_recording():
    cpu = traced_machine()
    tracer = PipelineTracer(cpu, max_records=10).install()
    cpu.run(1000)
    assert len(tracer.records) == 10
    assert tracer.records[-1].cycle == cpu.counters.cycles - 1


def test_uninstall_restores_previous_hook():
    cpu = traced_machine()
    seen = []
    cpu.trace_hook = lambda now, pc, inst, held: seen.append(now)
    tracer = PipelineTracer(cpu).install()
    cpu.step()
    tracer.uninstall()
    cpu.step()
    assert len(seen) == 2  # the original hook ran both cycles
    assert len(tracer.records) == 1


def test_multitask_timeline():
    from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode

    asm = Assembler()
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=32))
    cpu.attach_device(disk)
    disk.fill_sector(0, list(range(32)))
    tracer = PipelineTracer(cpu).install()
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=20_000)
    assert set(tracer.tasks_seen()) == {0, DISK_TASK}
    text = tracer.timeline()
    assert f"task {DISK_TASK}" in text
