"""Console facilities and microcode image handling."""

import pytest

from repro import Assembler, AssemblyError, FF, Processor
from repro.asm.program import Image
from repro.core.console import Console
from repro.core.microword import MicroInstruction


def test_console_im_staging():
    console = Console(im_size=4096)
    im = [None] * 4096
    target = MicroInstruction(rsel=5, ff=0x42)
    bits = target.encode()
    console.latch_im_address(100)
    console.im_write_low(bits & 0xFFFF)
    console.im_write_mid((bits >> 16) & 0xFFFF)
    console.im_write_high(bits >> 32, im)
    assert im[100] == target


def test_console_trace_drain():
    console = Console(im_size=64)
    console.record_trace(1)
    console.record_trace(2)
    assert console.pop_trace() == [1, 2]
    assert console.trace == []


def test_console_clear():
    console = Console(im_size=64)
    console.record_trace(5)
    console.record_notify(7)
    console.clear()
    assert not console.trace and not console.notifications


def test_image_address_lookup():
    asm = Assembler()
    asm.label("here")
    asm.emit(idle=True)
    image = asm.assemble()
    assert image.address_of("here") == image.entry
    with pytest.raises(AssemblyError):
        image.address_of("gone")


def test_image_encoded_words_roundtrip():
    asm = Assembler()
    asm.emit(b=3, alu="B", load="T")
    asm.halt()
    image = asm.assemble()
    for addr, bits in image.encoded().items():
        assert MicroInstruction.decode(bits) == image.words[addr]


def test_image_disassembly_mentions_labels():
    asm = Assembler()
    asm.label("entry")
    asm.emit(ff=FF.HALT, idle=True)
    image = asm.assemble()
    listing = image.disassemble()
    assert any("entry" in text for _, text in listing)


def test_image_merge_disjoint():
    asm1 = Assembler()
    asm1.label("a")
    asm1.emit(idle=True)
    img1 = asm1.assemble()

    asm2 = Assembler()
    asm2.label("b")
    asm2.emit(idle=True)
    img2 = asm2.assemble(base_page=1)

    merged = img1.merged_with(img2)
    assert merged.address_of("a") != merged.address_of("b")
    assert len(merged) == 2


def test_image_merge_overlap_rejected():
    asm1 = Assembler()
    asm1.emit(idle=True)
    asm2 = Assembler()
    asm2.emit(idle=True)
    img1, img2 = asm1.assemble(), asm2.assemble()
    with pytest.raises(AssemblyError, match="overlap"):
        img1.merged_with(img2)


def test_len_counts_words():
    asm = Assembler()
    for _ in range(5):
        asm.emit(idle=True)
    assert len(asm.assemble()) == 5


def test_processor_single_step_from_console():
    """The console's view: step one cycle at a time, watch TPC."""
    asm = Assembler()
    asm.register("x", 1)
    asm.emit(r="x", b=1, alu="B", load="RM")
    asm.emit(r="x", a="RM", b=1, alu="ADD", load="RM")
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    pcs = []
    for _ in range(3):
        pcs.append(cpu.this_pc)
        cpu.step()
    assert len(set(pcs)) == 3  # made progress each cycle
    assert cpu.halted
