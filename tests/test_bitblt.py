"""BitBlt microcode against a host-side oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DoradoError
from repro.graphics.bitblt import (
    BitBltFunction,
    build_bitblt_machine,
    reference_shifted_row,
    run_bitblt,
)
from repro.graphics.bitmap import Bitmap

SRC_VA = 0x2000
DST_VA = 0x6000


def machine_with_bitmaps(words_per_row=8, rows=6, seed=0x1357):
    cpu = build_bitblt_machine()
    src = Bitmap(cpu.memory, SRC_VA, words_per_row + 1, rows)
    dst = Bitmap(cpu.memory, DST_VA, words_per_row, rows)
    src.load_pattern(seed)
    dst.fill(0)
    return cpu, src, dst


def test_bitmap_accessors():
    cpu = build_bitblt_machine()
    bmp = Bitmap(cpu.memory, 0x1000, 2, 2)
    bmp.fill(0)
    bmp.set_bit(0, 0, 1)
    bmp.set_bit(17, 1, 1)
    assert bmp.get_bit(0, 0) == 1
    assert bmp.get_bit(1, 0) == 0
    assert bmp.read_word(0, 0) == 0x8000
    assert bmp.get_bit(17, 1) == 1
    assert bmp.width == 32 and bmp.total_bits == 64
    rendered = bmp.render()
    assert rendered.splitlines()[0][0] == "#"


@pytest.mark.parametrize("shift", [0, 1, 5, 15])
def test_copy_matches_reference(shift):
    cpu, src, dst = machine_with_bitmaps()
    run_bitblt(
        cpu, BitBltFunction.COPY, src_va=SRC_VA, dst_va=DST_VA,
        words_per_row=8, rows=6, src_pitch=9, dst_pitch=8, shift=shift,
    )
    for y in range(6):
        src_words = [src.read_word(y, i) for i in range(9)]
        expected = reference_shifted_row(src_words, shift)
        got = [dst.read_word(y, i) for i in range(8)]
        assert got == expected, f"row {y} shift {shift}"


def test_xor_merges_destination():
    cpu, src, dst = machine_with_bitmaps()
    dst.load_pattern(0xBEEF)
    before = dst.rows()
    run_bitblt(
        cpu, BitBltFunction.XOR, src_va=SRC_VA, dst_va=DST_VA,
        words_per_row=8, rows=6, src_pitch=9, dst_pitch=8, shift=3,
    )
    for y in range(6):
        src_words = [src.read_word(y, i) for i in range(9)]
        shifted = reference_shifted_row(src_words, 3)
        got = [dst.read_word(y, i) for i in range(8)]
        assert got == [a ^ b for a, b in zip(shifted, before[y])]


def test_xor_twice_is_identity():
    cpu, src, dst = machine_with_bitmaps()
    dst.load_pattern(0xCAFE)
    before = dst.rows()
    for _ in range(2):
        run_bitblt(
            cpu, BitBltFunction.XOR, src_va=SRC_VA, dst_va=DST_VA,
            words_per_row=8, rows=6, src_pitch=9, dst_pitch=8, shift=7,
        )
    assert dst.rows() == before


def test_fill_erases():
    cpu, _, dst = machine_with_bitmaps()
    dst.load_pattern()
    run_bitblt(
        cpu, BitBltFunction.FILL, dst_va=DST_VA, words_per_row=8, rows=6,
        dst_pitch=8, fill_value=0xA5A5,
    )
    assert all(w == 0xA5A5 for row in dst.rows() for w in row)


def test_pitch_skips_between_rows():
    """dst rows laid out with a gap: the gap words stay untouched."""
    cpu, src, _ = machine_with_bitmaps()
    dst = Bitmap(cpu.memory, DST_VA, 10, 6)  # 10-wide arena, 8-wide blt
    dst.fill(0x7777)
    run_bitblt(
        cpu, BitBltFunction.COPY, src_va=SRC_VA, dst_va=DST_VA,
        words_per_row=8, rows=6, src_pitch=9, dst_pitch=10, shift=0,
    )
    for y in range(6):
        assert dst.read_word(y, 8) == 0x7777
        assert dst.read_word(y, 9) == 0x7777
        assert dst.read_word(y, 0) == src.read_word(y, 0)


def test_scroll_up_one_row():
    """The screen-scroll case: copy rows 1..n to rows 0..n-1 in place."""
    cpu, _, _ = machine_with_bitmaps()
    bmp = Bitmap(cpu.memory, DST_VA, 9, 5)
    bmp.load_pattern(0x2468)
    before = bmp.rows()
    run_bitblt(
        cpu, BitBltFunction.COPY,
        src_va=DST_VA + 9, dst_va=DST_VA,
        words_per_row=8, rows=4, src_pitch=9, dst_pitch=9, shift=0,
    )
    after = bmp.rows()
    for y in range(4):
        assert after[y][:8] == before[y + 1][:8]
    assert after[4] == before[4]  # the last row is untouched


def test_bandwidth_ordering():
    """The paper's shape: erase > simple copy > function-of-both."""
    cpu, src, dst = machine_with_bitmaps(words_per_row=16, rows=24)

    def cycles(function, **kw):
        return run_bitblt(
            cpu, function, src_va=SRC_VA, dst_va=DST_VA,
            words_per_row=16, rows=24, src_pitch=17, dst_pitch=16, **kw
        )

    cycles(BitBltFunction.COPY, shift=4)  # warm
    copy = cycles(BitBltFunction.COPY, shift=4)
    xor = cycles(BitBltFunction.XOR, shift=4)
    fill = cycles(BitBltFunction.FILL)
    assert fill < copy < xor


def test_parameter_validation():
    cpu = build_bitblt_machine()
    with pytest.raises(DoradoError):
        run_bitblt(cpu, BitBltFunction.FILL, dst_va=0, words_per_row=0, rows=1)
    with pytest.raises(DoradoError):
        run_bitblt(cpu, BitBltFunction.COPY, dst_va=0, words_per_row=1, rows=1, shift=16)


@settings(max_examples=15, deadline=None)
@given(
    shift=st.integers(0, 15),
    words=st.integers(1, 6),
    rows=st.integers(1, 4),
    seed=st.integers(1, 0xFFFF),
)
def test_copy_property(shift, words, rows, seed):
    cpu = build_bitblt_machine()
    src = Bitmap(cpu.memory, SRC_VA, words + 1, rows)
    dst = Bitmap(cpu.memory, DST_VA, words, rows)
    src.load_pattern(seed)
    dst.fill(0)
    run_bitblt(
        cpu, BitBltFunction.COPY, src_va=SRC_VA, dst_va=DST_VA,
        words_per_row=words, rows=rows, src_pitch=words + 1,
        dst_pitch=words, shift=shift,
    )
    for y in range(rows):
        src_words = [src.read_word(y, i) for i in range(words + 1)]
        assert [dst.read_word(y, i) for i in range(words)] == reference_shifted_row(
            src_words, shift
        )


# --- pixel-granularity masked fill (bb.fillm) --------------------------------

def reference_fill_rect(rows_before, words_per_row, x, y, w, h, value):
    rows = [list(r) for r in rows_before]
    for yy in range(y, y + h):
        for xx in range(x, x + w):
            wi, bit = xx // 16, 15 - (xx % 16)
            if value & 1:
                rows[yy][wi] |= 1 << bit
            else:
                rows[yy][wi] &= ~(1 << bit)
    return rows


@pytest.mark.parametrize(
    "x,y,w,h",
    [
        (0, 0, 16, 1),     # exactly one word
        (3, 1, 10, 2),     # inside one word
        (5, 0, 30, 3),     # spans two words with ragged edges
        (0, 2, 48, 2),     # whole words only
        (7, 1, 70, 4),     # first/middle/last
        (17, 0, 1, 1),     # single pixel
    ],
)
def test_fill_rect_pixels_matches_reference(x, y, w, h):
    from repro.graphics.bitblt import fill_rect_pixels

    cpu = build_bitblt_machine()
    bmp = Bitmap(cpu.memory, DST_VA, 6, 8)
    bmp.load_pattern(0x4242)
    before = bmp.rows()
    fill_rect_pixels(
        cpu, base_va=DST_VA, words_per_row=6,
        x=x, y=y, width=w, height=h, value=0xFFFF,
    )
    assert bmp.rows() == reference_fill_rect(before, 6, x, y, w, h, 0xFFFF)


def test_fill_rect_pixels_clear():
    from repro.graphics.bitblt import fill_rect_pixels

    cpu = build_bitblt_machine()
    bmp = Bitmap(cpu.memory, DST_VA, 4, 4)
    bmp.fill(0xFFFF)
    fill_rect_pixels(
        cpu, base_va=DST_VA, words_per_row=4,
        x=4, y=1, width=24, height=2, value=0,
    )
    before = [[0xFFFF] * 4 for _ in range(4)]
    assert bmp.rows() == reference_fill_rect(before, 4, 4, 1, 24, 2, 0)


def test_fill_rect_validation():
    from repro.graphics.bitblt import fill_rect_pixels

    cpu = build_bitblt_machine()
    with pytest.raises(DoradoError):
        fill_rect_pixels(cpu, base_va=DST_VA, words_per_row=2,
                         x=0, y=0, width=0, height=1)
    with pytest.raises(DoradoError):
        fill_rect_pixels(cpu, base_va=DST_VA, words_per_row=2,
                         x=30, y=0, width=10, height=1)
