"""Device controllers end to end: disk, display, network, loopback."""

import pytest

from repro import Assembler, DeviceError, FF, Processor
from repro.io.device import LoopbackDevice
from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode
from repro.io.display import DISPLAY_TASK, DisplayController, display_fast_microcode
from repro.io.network import NETWORK_TASK, NetworkController, network_microcode
from repro.types import MUNCH_WORDS


def machine(*microcodes):
    asm = Assembler()
    asm.emit(idle=True)
    for emit in microcodes:
        emit(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    return cpu


# --- disk ------------------------------------------------------------------

def disk_machine(words_per_sector=64):
    cpu = machine(disk_microcode)
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=words_per_sector))
    cpu.attach_device(disk)
    return cpu, disk


def test_disk_read_transfers_sector():
    cpu, disk = disk_machine()
    data = [(i * 7 + 1) & 0xFFFF for i in range(64)]
    disk.fill_sector(2, data)
    disk.begin_read(cpu, sector=2, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=50_000)
    assert disk.done
    assert [cpu.memory.debug_read(0x2000 + i) for i in range(64)] == data


def test_disk_read_rate_and_occupancy():
    """Section 7: ~10 Mbit/s using ~5% of the processor."""
    cpu, disk = disk_machine(words_per_sector=128)
    disk.fill_sector(0, list(range(128)))
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=50_000)
    counters = cpu.counters
    rate = cpu.config.megabits_per_second(128 * 16, counters.cycles)
    occupancy = counters.task_cycles[DISK_TASK] / counters.cycles
    assert 8.0 < rate < 12.0
    assert 0.03 < occupancy < 0.08


def test_disk_write_transfers_sector():
    cpu, disk = disk_machine()
    data = [(i * 3 + 5) & 0xFFFF for i in range(64)]
    for i, v in enumerate(data):
        cpu.memory.debug_write(0x2800 + i, v)
    disk.begin_write(cpu, sector=1, buffer_va=0x2800)
    cpu.run_until(lambda m: disk.done, max_cycles=50_000)
    assert disk.done
    assert disk.read_sector_image(1) == data


def test_disk_busy_rejected():
    cpu, disk = disk_machine()
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    with pytest.raises(DeviceError):
        disk.begin_read(cpu, sector=1, buffer_va=0x3000)


def test_disk_read_loop_is_three_cycles_per_two_words():
    cpu, disk = disk_machine(words_per_sector=64)
    disk.fill_sector(0, list(range(64)))
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=50_000)
    # 32 pairs at 3 cycles + the done path; allow a little slop.
    task_cycles = cpu.counters.task_cycles[DISK_TASK]
    assert 96 <= task_cycles <= 110


# --- display --------------------------------------------------------------------

def display_machine(**kw):
    cpu = machine(display_fast_microcode)
    display = DisplayController(munch_interval_cycles=8, **kw)
    cpu.attach_device(display)
    return cpu, display


def test_display_band_refresh():
    cpu, display = display_machine()
    for i in range(32 * MUNCH_WORDS):
        cpu.memory.debug_write(0x3000 + i, i)
    display.begin_band(cpu, 0x3000, 32)
    cpu.run_until(lambda m: display.done, max_cycles=50_000)
    assert display.done
    assert display.underruns == 0
    assert display.pixels_consumed == 32 * MUNCH_WORDS
    assert cpu.counters.fastio_munches == 32


def test_display_occupancy_quarter():
    """Section 6.2.1: full bandwidth for 25% of the processor."""
    cpu, display = display_machine()
    display.begin_band(cpu, 0x3000, 64)
    cpu.run_until(lambda m: display.done, max_cycles=50_000)
    occupancy = cpu.counters.task_cycles[DISPLAY_TASK] / cpu.counters.cycles
    assert 0.2 < occupancy < 0.3


def test_display_grain3_occupancy():
    """The rejected simpler protocol costs 37.5%."""
    cpu, display = display_machine(explicit_notify=True)
    display.begin_band(cpu, 0x3000, 64)
    cpu.run_until(lambda m: display.done, max_cycles=50_000)
    occupancy = cpu.counters.task_cycles[DISPLAY_TASK] / cpu.counters.cycles
    assert 0.33 < occupancy < 0.42


def test_display_sees_processor_written_data():
    """Fast I/O must see dirty cache data (consistency flush)."""
    cpu, display = display_machine()
    asmless_value = 0x7E57
    # Write through the cache (debug_write goes to storage when uncached,
    # so fetch first to make the line dirty in cache).
    cpu.memory.start_store(0, 0, 0x3000, asmless_value)
    display.begin_band(cpu, 0x3000, 1)
    cpu.run_until(lambda m: display.done, max_cycles=50_000)
    assert display.pixels_consumed == MUNCH_WORDS


# --- network ------------------------------------------------------------------------

def network_machine():
    cpu = machine(network_microcode)
    net = NetworkController()
    cpu.attach_device(net)
    return cpu, net


def test_network_receive_packet():
    cpu, net = network_machine()
    packet = [(0x1000 + i) & 0xFFFF for i in range(32)]
    net.begin_receive(cpu, buffer_va=0x5000, packet_words=32)
    net.inject_packet(packet)
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    assert net.done and net.packets_received == 1
    assert [cpu.memory.debug_read(0x5000 + i) for i in range(32)] == packet


def test_network_transmit_packet():
    cpu, net = network_machine()
    packet = [(0x2000 + i) & 0xFFFF for i in range(16)]
    for i, v in enumerate(packet):
        cpu.memory.debug_write(0x5100 + i, v)
    net.begin_transmit(cpu, buffer_va=0x5100, packet_words=16)
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    assert net.done
    assert net.tx_words == packet


def test_disk_and_network_concurrently():
    """Two controllers multiplex the processor at different priorities."""
    cpu = machine(disk_microcode, network_microcode)
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=64))
    net = NetworkController()
    cpu.attach_device(disk)
    cpu.attach_device(net)
    disk.fill_sector(0, list(range(100, 164)))
    packet = list(range(400, 432))
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    net.begin_receive(cpu, buffer_va=0x5000, packet_words=32)
    net.inject_packet(packet)
    cpu.run_until(lambda m: disk.done and net.done, max_cycles=200_000)
    assert disk.done and net.done
    assert [cpu.memory.debug_read(0x2000 + i) for i in range(64)] == list(range(100, 164))
    assert [cpu.memory.debug_read(0x5000 + i) for i in range(32)] == packet
    assert cpu.counters.task_cycles[DISK_TASK] > 0
    assert cpu.counters.task_cycles[NETWORK_TASK] > 0


def test_network_overlong_packet_does_not_bleed_into_next_receive():
    """Regression: begin_receive must clear rx_current.

    A wire packet longer than the armed length used to leave its tail
    in rx_current, and the next receive replayed those stale words in
    front of its own packet.
    """
    cpu, net = network_machine()
    first = [(0x1000 + i) & 0xFFFF for i in range(40)]   # 8 words too long
    net.begin_receive(cpu, buffer_va=0x5000, packet_words=32)
    net.inject_packet(first)
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    assert [cpu.memory.debug_read(0x5000 + i) for i in range(32)] == first[:32]
    second = [(0x2000 + i) & 0xFFFF for i in range(32)]
    net.begin_receive(cpu, buffer_va=0x5100, packet_words=32)
    net.inject_packet(second)
    cpu.run_until(lambda m: net.done, max_cycles=100_000)
    assert [cpu.memory.debug_read(0x5100 + i) for i in range(32)] == second
    assert net.packets_received == 2


def test_network_rejects_odd_word_counts():
    """Regression: odd packet_words used to hang the transfer.

    count_pairs = packet_words // 2 truncates while the device counts
    words, so the microcode loop and the device disagreed forever; now
    both arms validate up front and stay idle.
    """
    cpu, net = network_machine()
    with pytest.raises(DeviceError, match="even number of words"):
        net.begin_receive(cpu, buffer_va=0x5000, packet_words=31)
    assert net.mode == "idle"
    with pytest.raises(DeviceError, match="even number of words"):
        net.begin_transmit(cpu, buffer_va=0x5100, packet_words=7)
    assert net.mode == "idle"


def test_network_tx_requested_never_overshoots_expected():
    """Regression: the pair-fetch counter is clamped to tx_expected."""
    cpu, net = network_machine()
    packet = [(0x3000 + i) & 0xFFFF for i in range(16)]
    for i, v in enumerate(packet):
        cpu.memory.debug_write(0x5200 + i, v)
    net.begin_transmit(cpu, buffer_va=0x5200, packet_words=16)
    for _ in range(100_000):
        cpu.run(1)
        assert net.tx_requested <= net.tx_expected
        if net.done:
            break
    assert net.done
    assert net.tx_requested == net.tx_expected
    assert net.tx_words == packet


def test_network_underrun_error_carries_device_context():
    """Regression: the FIFO-underrun error must be triage-complete."""
    cpu, net = network_machine()
    with pytest.raises(DeviceError) as exc:
        net.read_register(0)
    message = str(exc.value)
    assert f"task {NETWORK_TASK}" in message
    assert "mode idle" in message
    assert "rx_remaining 0" in message
    assert "cycle" in message and "service unit" in message


# --- loopback + IOATN -------------------------------------------------------------------

def test_loopback_slow_io_and_attention():
    asm = Assembler()
    asm.emit(b=0x10, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(b=0x33, alu="B", load="T")
    asm.emit(b="T", ff=FF.OUTPUT)                 # push to the loopback FIFO
    asm.emit(a="T", b="T", alu="XOR",
             branch=("IOATN", "got", "none"))     # attention is now up
    asm.label("got")
    asm.emit(b="INPUT", alu="B", load="T")        # pop it back
    asm.emit(b="T", ff=FF.TRACE, goto="end")
    asm.label("none")
    asm.emit(b=0, alu="B", load="T", goto="end")
    asm.label("end")
    asm.emit(ff=FF.HALT, idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    loop = LoopbackDevice(io_address=0x10)
    cpu.attach_device(loop)
    cpu.run(200)
    assert cpu.halted
    assert cpu.console.trace == [0x33]
    assert cpu.counters.slowio_words_out == 1
    assert cpu.counters.slowio_words_in == 1


def test_unknown_ioaddress_raises():
    asm = Assembler()
    asm.emit(b=0x77, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(b="T", ff=FF.OUTPUT, idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    with pytest.raises(DeviceError, match="no device"):
        cpu.run(10)


def test_device_task_collision_rejected():
    cpu = machine()
    cpu.attach_device(DiskController())
    with pytest.raises(DeviceError):
        cpu.attach_device(DiskController(io_address=0x60))


def test_device_address_collision_rejected():
    cpu = machine()
    cpu.attach_device(LoopbackDevice(io_address=0x10))
    with pytest.raises(DeviceError):
        cpu.attach_device(LoopbackDevice(task=None, io_address=0x11))


def test_display_cursor_over_slow_io():
    """The display uses both I/O systems: pixels over fast I/O, the
    cursor over the IODATA bus (the paper's Figure 1 discussion)."""
    from repro.io.display import DISPLAY_IO_ADDRESS, IOREG_CURSOR_X, IOREG_CURSOR_Y

    asm = Assembler()
    # Task 0 moves the cursor: IOADDRESS -> cursor X, write, then Y.
    asm.emit(b=DISPLAY_IO_ADDRESS + IOREG_CURSOR_X, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(b=0x64, alu="B", load="T")       # X = 100
    asm.emit(b="T", ff=FF.OUTPUT)
    asm.emit(b=DISPLAY_IO_ADDRESS + IOREG_CURSOR_Y, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(b=0x2C, alu="B", load="T")       # Y = 44
    asm.emit(b="T", ff=FF.OUTPUT)
    asm.emit(ff=FF.HALT, idle=True)
    display_fast_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    display = DisplayController()
    cpu.attach_device(display)
    cpu.run(100)
    assert cpu.halted
    assert (display.cursor_x, display.cursor_y) == (100, 44)
