"""Virtual address formation and the page map."""

import pytest

from repro.mem.map import AddressTranslator, MapEntry, PAGE_WORDS


def make():
    return AddressTranslator(num_base_registers=32, base_register_bits=28)


def test_virtual_address_is_base_plus_displacement():
    tr = make()
    tr.write_base_low(3, 0x1000)
    assert tr.virtual_address(3, 0x0234) == 0x1234


def test_base_high_bits():
    tr = make()
    tr.write_base_low(0, 0x5678)
    tr.write_base_high(0, 0x0123)
    assert tr.read_base(0) == 0x01235678 & ((1 << 28) - 1)


def test_base_truncated_to_28_bits():
    tr = make()
    tr.write_base_high(1, 0xFFFF)
    assert tr.read_base(1) < (1 << 28)


def test_displacement_wraps_16_bits():
    tr = make()
    assert tr.virtual_address(0, 0x1_0005) == 5


def test_translate_identity():
    tr = make()
    tr.identity_map(4)
    assert tr.translate(0x123, write=False) == 0x123
    assert tr.translate(3 * PAGE_WORDS + 7, write=True) == 3 * PAGE_WORDS + 7


def test_translate_unmapped_faults():
    tr = make()
    tr.identity_map(2)
    assert tr.translate(2 * PAGE_WORDS, write=False) is None


def test_write_protect():
    tr = make()
    tr.identity_map(4, write_protected_pages=2)
    assert tr.translate(10, write=False) == 10
    assert tr.translate(10, write=True) is None
    assert tr.translate(2 * PAGE_WORDS, write=True) == 2 * PAGE_WORDS


def test_referenced_and_dirty_bits():
    tr = make()
    tr.identity_map(1)
    entry = tr.entry_for(0)
    assert not entry.referenced and not entry.dirty
    tr.translate(0, write=False)
    assert entry.referenced and not entry.dirty
    tr.translate(0, write=True)
    assert entry.dirty


def test_map_entry_encoding_roundtrip():
    entry = MapEntry(real_page=0x123, valid=True, write_protected=True, dirty=True)
    assert MapEntry.decode(entry.encode()) == entry


def test_map_write_read_via_words():
    tr = make()
    tr.map_write(5, MapEntry(real_page=9, valid=True).encode())
    assert tr.map_read(5) == MapEntry(real_page=9, valid=True).encode()
    assert tr.map_read(99) == 0


def test_invalid_entry_faults():
    tr = make()
    tr.map_write(0, MapEntry(real_page=1, valid=False).encode())
    assert tr.translate(0, write=False) is None
