"""Task switching: wakeups, priority, Block, preemption (sections 5.1-5.3, 6.2.1)."""

import pytest

from repro import Assembler, FF, Processor
from repro.core.taskpipe import TaskPipeline


# --- the pipeline registers in isolation ----------------------------------

def test_task0_always_requests():
    pipe = TaskPipeline()
    pipe.arbitrate()
    assert pipe.best_task == 0
    pipe.clear_wakeup(0)  # must be a no-op
    pipe.arbitrate()
    assert pipe.best_task == 0


def test_priority_encoder_picks_highest():
    pipe = TaskPipeline()
    pipe.set_wakeup(4)
    pipe.set_wakeup(11)
    pipe.set_wakeup(7)
    pipe.arbitrate()
    assert pipe.best_task == 11


def test_ready_competes_with_wakeups():
    pipe = TaskPipeline()
    pipe.set_ready_mask(1 << 9)
    pipe.arbitrate()
    assert pipe.best_task == 9


def test_decide_preempts_only_higher():
    pipe = TaskPipeline()
    pipe.this_task = 5
    pipe.best_task = 3
    assert pipe.decide_next(blocked=False) == 5  # lower priority waits
    pipe.this_task = 5
    pipe.best_task = 8
    assert pipe.decide_next(blocked=False) == 8  # higher preempts
    assert pipe.ready & (1 << 5)                  # preempted task remembered


def test_block_yields_unconditionally():
    pipe = TaskPipeline()
    pipe.this_task = 9
    pipe.best_task = 0
    pipe.ready |= 1 << 9
    assert pipe.decide_next(blocked=True) == 0
    assert not pipe.ready & (1 << 9)  # a blocking task is forgotten


# --- whole-machine timing ----------------------------------------------------

def machine_with_io_task(task=9, body=("trace",)):
    """Task 0 spins incrementing a register; *task* runs a tiny handler."""
    asm = Assembler()
    asm.register("spin", 1)
    asm.label("main")
    asm.emit(r="spin", a="RM", alu="INC", load="RM", goto="main")
    asm.label("io")
    for item in body[:-1]:
        asm.emit(b="TASK", alu="B", load="T")
    asm.emit(b="TASK", alu="B", load="T", block=True, goto="io2")
    asm.label("io2")
    asm.emit(b="T", ff=FF.TRACE, block=True, goto="io2")
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.boot(cpu.address_of("main"))
    cpu.pipe.write_tpc(task, cpu.address_of("io"))
    return cpu


def test_wakeup_takes_two_cycles():
    """Section 6.2.1: a wakeup affects the running task after >= 2 cycles."""
    cpu = machine_with_io_task()
    for _ in range(5):
        cpu.step()
    assert cpu.counters.task_cycles[9] == 0
    cpu.pipe.set_wakeup(9)
    cpu.step()
    assert cpu.counters.task_cycles[9] == 0, "cycle 1 after wakeup: still task 0"
    cpu.step()
    assert cpu.counters.task_cycles[9] == 0, "cycle 2: arbitration latched"
    cpu.step()
    assert cpu.counters.task_cycles[9] == 1, "cycle 3: the task runs"


def test_preempted_task_resumes_where_it_stopped():
    """Tasks are coroutines: preemption must not restart them
    (section 5.1: 'it continues execution at the point where it
    blocked')."""
    asm = Assembler()
    asm.register("spin", 1)
    asm.label("main")
    asm.emit(r="spin", a="RM", alu="INC", load="RM", goto="main")
    asm.register("acc", 2)
    asm.label("io")
    asm.emit(r="acc", a="RM", b=1, alu="ADD", load="RM")
    asm.emit(r="acc", a="RM", b=1, alu="ADD", load="RM")
    asm.emit(r="acc", a="RM", b=1, alu="ADD", load="RM")
    asm.emit(r="acc", b="RM", ff=FF.TRACE, block=True, goto="io")
    asm.label("hi")
    asm.emit(block=True, goto="hi")
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.boot(cpu.address_of("main"))
    cpu.pipe.write_tpc(9, cpu.address_of("io"))
    cpu.pipe.set_wakeup(9)
    # Let it run one instruction, then preempt with task 12.
    cpu.run_until(lambda m: m.counters.task_instructions[9] == 1, 100)
    cpu.pipe.write_tpc(12, cpu.address_of("hi"))
    cpu.pipe.set_wakeup(12)
    for _ in range(6):
        cpu.step()
    cpu.pipe.clear_wakeup(12)
    cpu.pipe.clear_wakeup(9)
    cpu.pipe.set_ready_mask(1 << 9)  # resume the preempted task
    cpu.run_until(lambda m: m.console.trace, 100)
    # Resumed, not restarted: an accumulator restart would overshoot 3.
    assert cpu.console.trace[0] == 3


def test_task_runs_again_if_wakeup_still_pending():
    """A task blocking on its first instruction re-runs, because 'the
    effects of its wakeup will not have been cleared from the pipe'."""
    asm = Assembler()
    asm.label("main")
    asm.emit(goto="main")
    asm.label("io")
    asm.emit(ff=FF.TRACE, b="T", block=True, goto="io2")
    asm.label("io2")
    asm.emit(block=True, goto="io2")
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.boot(cpu.address_of("main"))
    cpu.pipe.write_tpc(9, cpu.address_of("io"))
    cpu.pipe.set_wakeup(9)  # raw wakeup with no device to drop it promptly
    for _ in range(4):
        cpu.step()
    # The task blocked at its first instruction but the stale wakeup
    # re-ran it at io2.
    assert cpu.counters.task_instructions[9] >= 2


def test_higher_task_preempts_lower_io():
    asm = Assembler()
    asm.label("main")
    asm.emit(goto="main")
    for t, label in [(5, "low"), (11, "high")]:
        asm.label(label)
        asm.emit(b="TASK", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE, block=True, goto=label)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.boot(cpu.address_of("main"))
    cpu.pipe.write_tpc(5, cpu.address_of("low"))
    cpu.pipe.write_tpc(11, cpu.address_of("high"))
    cpu.pipe.set_wakeup(5)
    cpu.step()
    cpu.pipe.set_wakeup(11)  # arrives while 5 is being scheduled
    for _ in range(12):
        cpu.step()
    cpu.pipe.clear_wakeup(5)
    cpu.pipe.clear_wakeup(11)
    for _ in range(8):
        cpu.step()
    # Task 11 ran first despite task 5 being requested earlier.
    assert cpu.console.trace[0] == 11
    assert 5 in cpu.console.trace


def test_task_switch_counter():
    cpu = machine_with_io_task()
    cpu.pipe.set_wakeup(9)
    for _ in range(10):
        cpu.step()
    cpu.pipe.clear_wakeup(9)
    for _ in range(5):
        cpu.step()
    assert cpu.counters.task_switches >= 2


def test_wakeup_b_function_wakes_task():
    """Microcode can raise wakeups itself (inter-task notification)."""
    asm = Assembler()
    asm.register("spin", 1)
    asm.load_constant("spin", 1 << 9)
    asm.emit(r="spin", b="RM", ff=FF.WAKEUP_B)
    asm.label("main")
    asm.emit(goto="main")
    asm.label("io")
    asm.emit(ff=FF.HALT, block=True, idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.pipe.write_tpc(9, cpu.address_of("io"))
    cpu.run(100)
    assert cpu.halted
    assert cpu.counters.task_cycles[9] >= 1
