"""Every example script must run clean (they assert their own results)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip(), "examples must narrate what they did"
