"""The 16-bit ALU and ALUFM."""

import pytest
from hypothesis import given, strategies as st

from repro import EncodingError
from repro.core.alu import (
    Alu,
    AluControl,
    AluFunc,
    CarryIn,
    STANDARD_ALUFM,
    STANDARD_OPS,
    compute,
)
from repro.types import signed, word

words = st.integers(min_value=0, max_value=0xFFFF)


def run(op_name, a, b, saved=False):
    alu = Alu()
    return alu.run(STANDARD_OPS[op_name], a, b, saved)


@given(words, words)
def test_add_matches_reference(a, b):
    res = run("ADD", a, b)
    assert res.value == word(a + b)
    assert res.carry == (a + b > 0xFFFF)


@given(words, words)
def test_sub_matches_reference(a, b):
    res = run("SUB", a, b)
    assert res.value == word(a - b)
    # Borrow convention: carry-out set when no borrow occurred.
    assert res.carry == (a >= b)


@given(words, words)
def test_rsub_matches_reference(a, b):
    assert run("RSUB", a, b).value == word(b - a)


@given(words, words)
def test_logicals(a, b):
    assert run("AND", a, b).value == (a & b)
    assert run("OR", a, b).value == (a | b)
    assert run("XOR", a, b).value == (a ^ b)
    assert run("NOTB", a, b).value == (~b & 0xFFFF)
    assert run("ANDNOT", a, b).value == (a & ~b & 0xFFFF)


@given(words, words)
def test_passthrough_and_increments(a, b):
    assert run("A", a, b).value == a
    assert run("B", a, b).value == b
    assert run("INC", a, b).value == word(a + 1)
    assert run("DEC", a, b).value == word(a - 1)
    assert run("BINC", a, b).value == word(b + 1)
    assert run("ZERO", a, b).value == 0


@given(words, words)
def test_signed_overflow_detection(a, b):
    res = run("ADD", a, b)
    true_sum = signed(a) + signed(b)
    assert res.overflow == not_in_range(true_sum)


def not_in_range(v):
    return not (-32768 <= v <= 32767)


@given(words, words, st.booleans())
def test_add_with_saved_carry(a, b, carry):
    res = run("ADDC", a, b, saved=carry)
    assert res.value == word(a + b + (1 if carry else 0))


@given(words, words, st.booleans())
def test_sub_with_saved_carry_multiprecision(a, b, carry):
    # A - B - 1 + carry: the low-to-high borrow chain.
    res = run("SUBC", a, b, saved=carry)
    assert res.value == word(a - b - 1 + (1 if carry else 0))


def test_flags():
    res = run("SUB", 5, 5)
    assert res.zero and not res.negative
    res = run("SUB", 0, 1)
    assert res.negative and not res.zero


@given(words)
def test_multiprecision_add_32bit(low_offset):
    """Two chained 16-bit adds must equal one 32-bit add."""
    a = 0x1234_0000 | low_offset
    b = 0x0F0F_F0F0
    alu = Alu()
    lo = alu.run(STANDARD_OPS["ADD"], a & 0xFFFF, b & 0xFFFF, False)
    hi = alu.run(STANDARD_OPS["ADDC"], a >> 16, b >> 16, lo.carry)
    assert ((hi.value << 16) | lo.value) == (a + b) & 0xFFFFFFFF


def test_alufm_is_writeable():
    alu = Alu()
    alu.write_alufm(0, AluControl(AluFunc.A_XOR_B).encode())
    assert alu.run(0, 0xFF00, 0x0FF0, False).value == 0xF0F0


def test_alufm_roundtrip():
    for entry in STANDARD_ALUFM:
        assert AluControl.decode(entry.encode()) == entry


def test_alufm_decode_range():
    with pytest.raises(EncodingError):
        AluControl.decode(64)


def test_standard_ops_cover_map():
    assert len(STANDARD_ALUFM) == 16
    assert set(STANDARD_OPS.values()) == set(range(16))


def test_not_a_function():
    res = compute(AluControl(AluFunc.NOT_A), 0x00FF, 0, False)
    assert res.value == 0xFF00


def test_a_or_not_b():
    res = compute(AluControl(AluFunc.A_OR_NOT_B), 0x0001, 0x00FF, False)
    assert res.value == (0x0001 | 0xFF00)
