"""The machine-check layer and recovery supervisor (DESIGN.md section 5.5).

The contract under test, end to end: a seeded fault plan that reliably
breaks an unsupervised run must complete under the
:class:`~repro.supervise.Supervisor` -- with at least one
rollback-and-replay -- and converge to a final state byte-identical to
the clean run's.  Around that demo, this file pins each layer
separately:

* the sanitizer's invariant catalogue trips on manufactured corruption
  and stays silent on a healthy machine;
* supervision of a fault-free machine perturbs nothing: identical
  cycle counts and architectural state on every benchmark workload;
* recovery is deterministic (Hypothesis: repeat runs and both cycle
  implementations converge identically);
* the retry budget is enforced (``UnrecoverableFault``, exponential
  backoff through an injectable sleep);
* the differential divergence detector finds a corrupted execution
  plan and acquits a clean machine;
* a plan-implicating failure degrades the machine to the interpreter
  and the run still completes correctly;
* the CLI and corebench surfaces behave (exit codes, recovery report,
  fault-trace diagnosis, baseline skip-with-warning).
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Assembler,
    HoldTimeout,
    Processor,
)
from repro.config import PRODUCTION
from repro.errors import (
    CorruptionDetected,
    TransientFault,
    UnrecoverableFault,
)
from repro.fault import FaultConfig
from repro.mem.map import REAL_PAGE_MASK
from repro.perf.report import DEMO_CHECKPOINT_INTERVAL, demo_fault_config
from repro.perf.workloads import ALL_WORKLOADS, mesa_loop_sum
from repro.types import MUNCH_WORDS
from repro.supervise import (
    MachineCheckSanitizer,
    Supervisor,
    architectural_json,
    find_divergence,
)


def _demo_config(**overrides):
    return dataclasses.replace(
        PRODUCTION, fault_injection=demo_fault_config(), **overrides
    )


def _clean_clean_line(cpu):
    """Some valid, clean cache line of a machine that has run a while.

    The workloads dirty most of what they touch, so when no clean line
    survived, one dirty line is written back by hand -- exactly what the
    cache's own write-back would eventually do, so the machine stays
    coherent and the line becomes eligible for the coherence check.
    """
    cache = cpu.memory.cache
    data = cpu.memory.storage._data
    for cache_set in cache.sets:
        for line in cache_set:
            if line.valid and not line.dirty:
                return line
    for index, cache_set in enumerate(cache.sets):
        for line in cache_set:
            if line.valid:
                base = (line.tag * cache.num_sets + index) * MUNCH_WORDS
                data[base:base + MUNCH_WORDS] = line.words
                line.dirty = False
                return line
    raise AssertionError("the workload left no valid cache line at all")


# --------------------------------------------------------------------------
# The end-to-end demo: detect, roll back, replay, converge
# --------------------------------------------------------------------------


def test_demo_fault_plan_breaks_the_unsupervised_run():
    workload = mesa_loop_sum(200, config=_demo_config())
    cpu = workload.ctx.cpu
    cpu.run(50_000)
    assert cpu.halted, "the faults corrupt data, they do not wedge the machine"
    assert not workload.verify()
    assert cpu.fault_injector.trace, "the plan must actually have fired"


def test_supervised_run_recovers_and_matches_the_clean_run():
    clean = mesa_loop_sum(200)
    clean_cycles = clean.run()

    workload = mesa_loop_sum(200, config=_demo_config())
    cpu = workload.ctx.cpu
    supervisor = Supervisor(
        cpu, checkpoint_interval=DEMO_CHECKPOINT_INTERVAL, max_retries=3
    )
    cycles = supervisor.run(max_cycles=50_000)

    assert cpu.halted and workload.verify()
    assert cycles == clean_cycles, "replayed cycles must not inflate the clock"
    assert cpu.counters.rollbacks >= 1
    assert cpu.counters.replays >= 1
    assert any(e["event"] == "rollback" for e in supervisor.log)
    assert any(e["event"] == "replay" for e in supervisor.log)
    assert architectural_json(cpu.snapshot()) == architectural_json(
        clean.ctx.cpu.snapshot()
    )


# --------------------------------------------------------------------------
# Determinism of recovery itself
# --------------------------------------------------------------------------


@settings(max_examples=4, deadline=None)
@given(interval=st.integers(300, 2400))
def test_recovery_is_deterministic_across_repeats(interval):
    """Same plan, same interval -- byte-identical full final state."""
    finals = []
    for _ in range(2):
        workload = mesa_loop_sum(200, config=_demo_config())
        supervisor = Supervisor(
            workload.ctx.cpu, checkpoint_interval=interval, max_retries=4
        )
        supervisor.run(max_cycles=50_000)
        assert workload.ctx.cpu.halted and workload.verify()
        finals.append(workload.ctx.cpu.snapshot().to_json())
    assert finals[0] == finals[1]


def test_recovery_converges_identically_on_both_cycle_paths():
    finals = []
    for plan_cache in (True, False):
        workload = mesa_loop_sum(
            200, config=_demo_config(plan_cache_enabled=plan_cache)
        )
        supervisor = Supervisor(
            workload.ctx.cpu,
            checkpoint_interval=DEMO_CHECKPOINT_INTERVAL,
            max_retries=3,
        )
        supervisor.run(max_cycles=50_000)
        assert workload.ctx.cpu.halted and workload.verify()
        finals.append(architectural_json(workload.ctx.cpu.snapshot()))
    assert finals[0] == finals[1]


# --------------------------------------------------------------------------
# Zero perturbation: supervision of a healthy machine changes nothing
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_supervision_is_invisible_on_a_clean_run(name):
    """Empty fault plan, sanitizer on: cycle- and state-identical."""
    empty = dataclasses.replace(
        PRODUCTION, fault_injection=FaultConfig(seed=11)
    )
    bare = ALL_WORKLOADS[name](config=empty)
    bare_cycles = bare.run()

    supervised = ALL_WORKLOADS[name](config=empty)
    supervisor = Supervisor(
        supervised.ctx.cpu, checkpoint_interval=1900, check_interval=256
    )
    cycles = supervisor.run(max_cycles=5_000_000)

    assert cycles == bare_cycles
    assert supervised.verify()
    assert supervisor.log == []
    assert supervised.ctx.cpu.counters.rollbacks == 0
    assert supervisor.sanitizer.sweeps > 0, "the sanitizer must have swept"
    assert architectural_json(supervised.ctx.cpu.snapshot()) == (
        architectural_json(bare.ctx.cpu.snapshot())
    )


def test_uninstalled_sanitizer_leaves_the_bus_idle():
    cpu = mesa_loop_sum(60).ctx.cpu
    sanitizer = MachineCheckSanitizer(cpu).install()
    assert cpu.trace_hook is not None
    sanitizer.uninstall()
    assert cpu.trace_hook is None, "zero-overhead-when-off is the bus's idle state"
    sanitizer.uninstall()  # idempotent


# --------------------------------------------------------------------------
# The invariant catalogue, check by check
# --------------------------------------------------------------------------


@pytest.fixture
def ran_machine():
    workload = mesa_loop_sum(60)
    cpu = workload.ctx.cpu
    cpu.run(1200)
    return cpu


def _failed_checks(cpu):
    return {f.check for f in MachineCheckSanitizer(cpu).run_checks()}


def test_sanitizer_passes_a_healthy_machine(ran_machine):
    assert MachineCheckSanitizer(ran_machine).run_checks() == []


def test_sanitizer_catches_clean_line_storage_disagreement(ran_machine):
    line = _clean_clean_line(ran_machine)
    line.words[0] ^= 0x0004  # the uncorrectable-ECC signature
    failures = MachineCheckSanitizer(ran_machine).run_checks()
    assert any(
        f.check == "cache" and "disagrees with storage" in f.detail
        for f in failures
    )


def test_sanitizer_catches_cache_word_out_of_range(ran_machine):
    line = _clean_clean_line(ran_machine)
    line.words[3] = 0x1_0000
    assert "cache" in _failed_checks(ran_machine)


def test_sanitizer_catches_map_entry_out_of_range(ran_machine):
    entry = next(iter(ran_machine.memory.translator.map.values()))
    entry.real_page = REAL_PAGE_MASK + 1
    assert "map" in _failed_checks(ran_machine)


def test_sanitizer_catches_register_corruption(ran_machine):
    ran_machine.regs.rm[5] = 0x12345
    assert "registers" in _failed_checks(ran_machine)


def test_sanitizer_catches_stack_pointer_corruption(ran_machine):
    ran_machine.stack.pointer = 0x100
    assert "registers" in _failed_checks(ran_machine)


def test_sanitizer_catches_dropped_task0_wakeup(ran_machine):
    ran_machine.pipe.lines &= 0xFFFE
    assert "taskpipe" in _failed_checks(ran_machine)


def test_sanitizer_catches_tpc_outside_control_store(ran_machine):
    ran_machine.pipe.write_tpc(7, ran_machine.config.im_size)
    assert "taskpipe" in _failed_checks(ran_machine)


def test_sanitizer_catches_ifu_buffer_overrun(ran_machine):
    ran_machine.ifu._buffered = ran_machine.ifu.pc + 100
    assert "ifu" in _failed_checks(ran_machine)


def test_sanitizer_catches_plan_im_disagreement(ran_machine):
    cpu = ran_machine
    pc = cpu.this_pc
    plan = cpu._plans[pc]
    assert plan is not None, "the running microword must be compiled by now"
    donor = next(
        inst
        for address in range(cpu.config.im_size)
        if (inst := cpu.im[address]) is not None
        and inst.encode() != cpu.im[pc].encode()
    )
    plan.inst = donor
    failures = MachineCheckSanitizer(cpu).run_checks()
    assert any(f.check == "plans" for f in failures)

    # A degraded (interpreter-only) machine skips the plans check: it
    # must not keep tripping on plans it no longer executes.
    cpu._plan_enabled = False
    assert "plans" not in _failed_checks(cpu)


def test_sweep_raises_corruption_detected_and_counts(ran_machine):
    cpu = ran_machine
    line = _clean_clean_line(cpu)
    line.words[0] ^= 0x0004
    sanitizer = MachineCheckSanitizer(cpu, check_interval=8).install()
    try:
        with pytest.raises(CorruptionDetected) as caught:
            cpu.run(64)
    finally:
        sanitizer.uninstall()
    error = caught.value
    assert error.failures and error.failures[0].startswith("cache")
    assert error.cycle is not None
    assert cpu.counters.checks_failed >= 1
    assert "machine check failed" in str(error)


def test_check_interval_must_be_positive(ran_machine):
    with pytest.raises(ValueError):
        MachineCheckSanitizer(ran_machine, check_interval=0)


# --------------------------------------------------------------------------
# Retry budget, backoff, and the failure taxonomy
# --------------------------------------------------------------------------


def test_retry_exhaustion_raises_unrecoverable_with_backoff():
    """Corruption captured *inside* the checkpoint can never replay
    clean; the budget must exhaust, backing off exponentially."""
    cpu = mesa_loop_sum(60).ctx.cpu
    cpu.run(600)
    line = _clean_clean_line(cpu)
    line.words[0] ^= 0x0004  # poisoned before the first checkpoint

    sleeps = []
    supervisor = Supervisor(
        cpu,
        checkpoint_interval=400,
        max_retries=3,
        check_interval=16,
        backoff_base=0.5,
        sleep=sleeps.append,
    )
    with pytest.raises(UnrecoverableFault) as caught:
        supervisor.run(max_cycles=10_000)
    error = caught.value
    assert isinstance(error.__cause__, CorruptionDetected)
    assert "after 3 rollback attempts" in str(error)
    assert sleeps == [0.5, 1.0, 2.0]
    assert cpu.counters.rollbacks == 3


def test_structural_errors_are_not_retried():
    from repro.errors import StateError

    cpu = mesa_loop_sum(60).ctx.cpu
    supervisor = Supervisor(cpu, checkpoint_interval=200)

    class Boom(StateError):
        pass

    def explode(n):
        raise Boom("experiment bug, not machine corruption")

    cpu.run = explode
    with pytest.raises(Boom):
        supervisor.run(max_cycles=1000)
    assert cpu.counters.rollbacks == 0


def test_supervisor_parameter_validation():
    cpu = mesa_loop_sum(60).ctx.cpu
    with pytest.raises(ValueError):
        Supervisor(cpu, checkpoint_interval=0)
    with pytest.raises(ValueError):
        Supervisor(cpu, max_retries=-1)


def test_transient_fault_context_formatting():
    fault = TransientFault(
        "boom", task=3, pc=0o21, cycle=99, hold_cause="md_wait"
    )
    message = str(fault)
    for fragment in ("task 3", "upc 0o21", "cycle 99", "hold cause md_wait"):
        assert fragment in message
    assert TransientFault("bare").args[0] == "bare"


def test_hold_timeout_carries_the_hold_cause():
    watched = dataclasses.replace(PRODUCTION, hold_limit=64)
    asm = Assembler(watched)
    asm.emit(b="MD", alu="B", load="T")  # never-ready reference
    asm.halt()
    cpu = Processor(watched)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(4)
    with pytest.raises(HoldTimeout) as caught:
        cpu.run(10_000)
    error = caught.value
    assert error.hold_cause == "md_wait"
    assert "last hold cause md_wait" in str(error)
    assert error.task == 0 and error.cycle < 200


# --------------------------------------------------------------------------
# Differential divergence detection and degradation
# --------------------------------------------------------------------------


def test_find_divergence_acquits_a_healthy_machine(ran_machine):
    assert find_divergence(ran_machine, window=800) is None


def test_find_divergence_convicts_a_corrupted_plan(ran_machine):
    cpu = ran_machine
    before = cpu.snapshot().to_json()
    corrupted = 0
    for plan in cpu._plans:
        if plan is not None:
            plan.loads_t = not plan.loads_t
            plan.loads_rm = not plan.loads_rm
            corrupted += 1
    assert corrupted, "the workload must have compiled something"
    report = find_divergence(cpu, window=2000)
    assert report is not None
    assert report.diffs and report.cycle >= cpu.now
    assert "divergence at cycle" in str(report)
    # The detector works on forks; the machine itself never moved.
    assert cpu.snapshot().to_json() == before


def test_plan_implicating_corruption_degrades_to_interpreter():
    workload = mesa_loop_sum(200)
    cpu = workload.ctx.cpu
    cpu.run(600)

    # A corrupted compiled plan: wrong source microword (trips the
    # sanitizer's plans check) and wrong behaviour (confirms under the
    # differential detector).  The IM itself stays correct, so the
    # interpreter path is the cure.
    pc = cpu.this_pc
    plan = cpu._plans[pc]
    assert plan is not None
    donor = next(
        inst
        for address in range(cpu.config.im_size)
        if (inst := cpu.im[address]) is not None
        and inst.encode() != cpu.im[pc].encode()
    )
    plan.inst = donor
    plan.loads_t = not plan.loads_t
    plan.loads_rm = not plan.loads_rm

    supervisor = Supervisor(
        cpu, checkpoint_interval=600, max_retries=5, check_interval=64
    )
    supervisor.run(max_cycles=50_000)

    assert cpu.halted and workload.verify()
    assert cpu._plan_enabled is False
    assert cpu.counters.degrades >= 1
    degrade = next(e for e in supervisor.log if e["event"] == "degrade")
    assert degrade["first_diff"]


# --------------------------------------------------------------------------
# Bus events
# --------------------------------------------------------------------------


def test_recovery_publishes_bus_events():
    workload = mesa_loop_sum(200, config=_demo_config())
    cpu = workload.ctx.cpu
    events = []
    cpu.instruments.install(
        "recovery-probe",
        rollback=lambda cycle, exc, retry: events.append(("rollback", cycle)),
        replay=lambda cycle, retry: events.append(("replay", cycle)),
    )
    try:
        Supervisor(
            cpu, checkpoint_interval=DEMO_CHECKPOINT_INTERVAL, max_retries=3
        ).run(max_cycles=50_000)
    finally:
        cpu.instruments.uninstall("recovery-probe")
    kinds = [kind for kind, _ in events]
    assert "rollback" in kinds and "replay" in kinds


def test_publish_rejects_unknown_channels():
    cpu = mesa_loop_sum(60).ctx.cpu
    with pytest.raises(ValueError):
        cpu.instruments.publish("not-a-channel", 1)


# --------------------------------------------------------------------------
# CLI: the self-healing run and the diagnosed failure
# --------------------------------------------------------------------------


def _demo_plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(dataclasses.asdict(demo_fault_config())))
    return str(path)


def test_cli_supervised_clean_run_prints_a_clean_report(capsys):
    from repro.__main__ import main

    assert main(["--workload", "mesa_loop_sum", "--supervise"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "recovery report" in out
    assert "the run was clean" in out


def test_cli_supervised_fault_plan_recovers(tmp_path, capsys):
    from repro.__main__ import main

    rc = main([
        "--workload", "mesa_loop_sum",
        "--fault-plan", _demo_plan_file(tmp_path),
        "--supervise", "--checkpoint-interval",
        str(DEMO_CHECKPOINT_INTERVAL),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verified" in out
    assert "rollback" in out and "replay" in out


def test_cli_unsupervised_fault_plan_fails_diagnosed(tmp_path, capsys):
    from repro.__main__ import main

    rc = main([
        "--workload", "mesa_loop_sum",
        "--fault-plan", _demo_plan_file(tmp_path),
    ])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAILED:" in out
    assert "at task" in out and "cycle" in out
    assert "fault trace" in out and "ecc_uncorrectable" in out


def test_cli_rejects_a_malformed_fault_plan(tmp_path, capsys):
    from repro.__main__ import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"no_such_field": 1}')
    with pytest.raises(SystemExit):
        main(["--workload", "mesa_loop_sum", "--fault-plan", str(bad)])
    assert "fault plan" in capsys.readouterr().err


def test_cli_supervision_flags_need_a_workload(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["--supervise"])
    assert "--workload" in capsys.readouterr().err


# --------------------------------------------------------------------------
# corebench: the supervised-overhead scenario and baseline tolerance
# --------------------------------------------------------------------------


def test_supervised_bench_reports_parity_and_overhead():
    from repro.perf.corebench import SUPERVISED_OVERHEAD_LIMIT, run_supervised_bench

    row = run_supervised_bench(repeats=1)
    assert row["simulated_cycles"] > 0
    assert row["overhead_factor"] <= SUPERVISED_OVERHEAD_LIMIT
    assert row["overhead_limit"] == SUPERVISED_OVERHEAD_LIMIT


def test_corebench_baseline_missing_sections_skip_with_warning(tmp_path, capsys):
    from repro.perf.corebench import main

    out = tmp_path / "bench.json"
    assert main(["--output", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    assert "supervised_overhead" in report

    # An old baseline, written before these sections existed.
    del report["supervised_overhead"]
    del report["warm_start"]
    old = tmp_path / "old.json"
    old.write_text(json.dumps(report))
    capsys.readouterr()
    rc = main([
        "--output", str(tmp_path / "again.json"), "--repeats", "1",
        "--baseline", str(old), "--tolerance", "0.9",
    ])
    text = capsys.readouterr().out
    assert rc == 0
    assert "warm_start missing" in text
    assert "supervised_overhead missing" in text
    assert "OK" in text
