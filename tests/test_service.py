"""The simulation service: sessions, the fleet, and the load test.

Three layers under test (DESIGN.md 5.9):

* :class:`repro.service.Session` -- sliced execution equals one-shot
  execution, suspend/resume round-trips byte-identically, supervised
  faulted sessions converge to the clean trajectory, metering survives
  migration.
* :class:`repro.service.Fleet` -- the host protocol, LRU eviction to
  spool files, warm-restore migration onto other workers, and the
  invariant that none of it is visible in session results.
* the load test -- fleet execution at any worker count is byte-identical
  to serial in-process execution of the same script.
"""

import asyncio
import json
import pathlib

import pytest

from repro.config import PRODUCTION
from repro.errors import EmulatorError, ServiceError
from repro.perf.workloads import mesa_loop_sum
from repro.service import (
    Fleet,
    Frontend,
    Session,
    SessionHost,
    config_from_signature,
    loadtest_json,
    run_loadtest,
)
from repro.service.loadtest import build_script
from repro.state import config_signature, parse_canonical_json

MESA_CYCLES = json.loads(
    (pathlib.Path(__file__).parent / "goldens.json").read_text()
)["matrix_cycles"]["mesa_loop_sum@production"]

#: The known-recoverable demo fault plan (see DESIGN.md 5.5 and the
#: recovery CI job): one ECC double-bit error plus one spurious map
#: fault inside the first checkpoint intervals.
DEMO_FAULT = {
    "seed": 39,
    "storage_uncorrectable": 1,
    "map_faults": 1,
    "first_cycle": 0,
    "last_cycle": 2200,
}


def run_to_halt(session, slice_cycles=1000, max_slices=1000):
    """Drive a session with uniform slices; return total granted cycles."""
    total = 0
    for _ in range(max_slices):
        result = session.run_slice(slice_cycles)
        total += result.cycles
        if result.halted:
            return total
    raise AssertionError("session did not halt within the slice budget")


# --------------------------------------------------------------------------
# the Workload slice primitive (satellite: run over run_slice)
# --------------------------------------------------------------------------

def test_workload_run_slice_reports_budget_exhaustion():
    workload = mesa_loop_sum()
    first = workload.run_slice(500)
    assert first.cycles == 500 and first.exhausted and not first.halted
    rest = workload.run_slice(5_000_000)
    assert rest.halted and not rest.exhausted
    assert 500 + rest.cycles == MESA_CYCLES
    assert workload.verify()


def test_workload_run_still_allornothing():
    with pytest.raises(EmulatorError, match="did not halt"):
        mesa_loop_sum().run(max_cycles=100)


# --------------------------------------------------------------------------
# sessions
# --------------------------------------------------------------------------

def test_sliced_session_equals_oneshot_run():
    oneshot = Session.build("mesa_loop_sum")
    assert oneshot.run() == MESA_CYCLES

    sliced = Session.build("mesa_loop_sum")
    run_to_halt(sliced, slice_cycles=700)
    assert sliced.status == "halted"
    assert sliced.verify()
    assert sliced.cpu.counters.cycles == MESA_CYCLES
    assert sliced.arch_hash() == oneshot.arch_hash()
    # Slices granted after HALT are zero-cycle no-ops.
    spare = sliced.run_slice(1000)
    assert spare.cycles == 0 and spare.halted


def test_session_run_budget_failure_is_recorded():
    session = Session.build("mesa_loop_sum")
    with pytest.raises(EmulatorError, match="did not halt"):
        session.run(max_cycles=100)
    assert session.status == "failed"
    assert "did not halt" in session.failure
    # A failed session stays failed; no further cycles are granted.
    assert session.run_slice(1000).cycles == 0


def test_session_rejects_bad_names_and_workloads():
    with pytest.raises(ServiceError, match="invalid session name"):
        Session.build("mesa_loop_sum", name="../escape")
    with pytest.raises(ServiceError, match="unknown workload"):
        Session.build("nonesuch")
    with pytest.raises(ServiceError, match="slice budget"):
        Session.build("mesa_loop_sum").run_slice(0)


def test_suspend_resume_roundtrip_is_byte_identical():
    session = Session.build("mesa_loop_sum", name="alice")
    session.run_slice(1500)
    envelope = session.suspend()
    resumed = Session.resume(envelope)
    assert resumed.name == "alice"
    assert resumed.suspend() == envelope  # save -> load -> save identity

    # Both lives converge on the same machine trajectory.
    run_to_halt(session)
    run_to_halt(resumed)
    assert resumed.cpu.counters.cycles == session.cpu.counters.cycles
    assert resumed.arch_hash() == session.arch_hash()
    assert resumed.verify() and session.verify()
    # Metering rode along: the resumed life still meters from admission.
    assert resumed.meter()["cycles"] == MESA_CYCLES


def test_resume_rejects_malformed_envelopes():
    session = Session.build("mesa_loop_sum")
    envelope = parse_canonical_json(session.suspend())
    envelope["service_version"] = 99
    with pytest.raises(ServiceError, match="version"):
        Session.resume(envelope)
    with pytest.raises(ServiceError):
        Session.resume("[1, 2, 3]")
    del envelope["service_version"]
    with pytest.raises(ServiceError):
        Session.resume(envelope)


def test_config_signature_roundtrip_rebuilds_config():
    import dataclasses

    from repro.fault.plan import FaultConfig

    assert config_from_signature(config_signature(PRODUCTION)) == PRODUCTION
    faulted = dataclasses.replace(
        PRODUCTION, fault_injection=FaultConfig(**DEMO_FAULT)
    )
    assert config_from_signature(config_signature(faulted)) == faulted
    with pytest.raises(ServiceError, match="config signature"):
        config_from_signature({"nonesuch": 1})


def test_faulted_session_supervises_by_default_and_converges():
    clean = Session.build("mesa_loop_sum")
    clean.run()

    session = Session.build(
        "mesa_loop_sum", fault=DEMO_FAULT, checkpoint_interval=600,
    )
    assert session.supervise and session.faulted
    run_to_halt(session, slice_cycles=1200)
    result = session.result()
    assert result["recovered"] is True
    assert result["verified"]
    # Recovery converges byte-identically to the clean trajectory.
    assert result["cycles"] == MESA_CYCLES
    assert result["arch_hash"] == clean.arch_hash()
    assert session.cpu.counters.rollbacks > 0


def test_faulted_session_survives_midrun_migration():
    """Suspend/resume mid-recovery changes nothing about the outcome."""
    straight = Session.build(
        "mesa_loop_sum", fault=DEMO_FAULT, checkpoint_interval=600,
    )
    run_to_halt(straight, slice_cycles=1200)

    migrated = Session.build(
        "mesa_loop_sum", fault=DEMO_FAULT, checkpoint_interval=600,
    )
    migrated.run_slice(1200)
    migrated = Session.resume(migrated.suspend())  # the migration
    run_to_halt(migrated, slice_cycles=1200)

    assert migrated.arch_hash() == straight.arch_hash()
    assert migrated.cpu.counters.cycles == straight.cpu.counters.cycles
    assert migrated.verify()


def test_many_live_sessions_share_one_boot_template():
    """Interleaved sessions of one workload never see each other."""
    a = Session.build("mesa_loop_sum", name="a")
    b = Session.build("mesa_loop_sum", name="b")
    assert a.cpu is not b.cpu
    a.run_slice(1000)
    b.run_slice(2000)  # interleave: b overtakes a on the shared workload
    a.run_slice(1000)
    assert a.cpu.counters.cycles == 2000
    assert b.cpu.counters.cycles == 2000
    run_to_halt(a)
    run_to_halt(b)
    assert a.verify() and b.verify()
    assert a.arch_hash() == b.arch_hash()


def test_session_meter_is_a_delta_not_a_total(tmp_path):
    donor = Session.build("mesa_loop_sum")
    donor.run_slice(3000)
    path = tmp_path / "mid.json"
    donor.cpu.snapshot().save(path)

    from repro.state import MachineState

    session = Session.build("mesa_loop_sum")
    session.load(MachineState.load(path))
    run_to_halt(session)
    assert session.cpu.counters.cycles == MESA_CYCLES
    # Metering re-based at the restore: only this life's work counts.
    assert session.meter()["cycles"] == MESA_CYCLES - 3000


# --------------------------------------------------------------------------
# the host protocol and the fleet
# --------------------------------------------------------------------------

def test_sessionhost_protocol_errors_are_data():
    host = SessionHost()
    assert host.handle({"op": "open", "name": "s1",
                        "workload": "mesa_loop_sum"})["ok"]
    duplicate = host.handle({"op": "open", "name": "s1",
                             "workload": "mesa_loop_sum"})
    assert not duplicate["ok"] and "already live" in duplicate["error"]
    missing = host.handle({"op": "run", "name": "ghost", "cycles": 100})
    assert not missing["ok"] and "not live" in missing["error"]
    unknown = host.handle({"op": "teleport"})
    assert not unknown["ok"]

    reply = host.handle({"op": "run", "name": "s1", "cycles": 600})
    assert reply["ok"] and reply["status"] == "running"
    assert reply["cycles"] == 600
    suspended = host.handle({"op": "suspend", "name": "s1"})
    assert suspended["ok"] and "s1" not in host.sessions
    assert host.handle({"op": "resume",
                        "envelope": suspended["envelope"]})["ok"]
    assert host.handle({"op": "stats"})["sessions"] == ["s1"]


def test_host_reports_run_failure_as_data_not_error():
    host = SessionHost()
    # Unsupervised faults corrupt the answer: the run halts, but the
    # oracle rejects it -- recorded, not raised.
    host.handle({"op": "open", "name": "hurt", "workload": "mesa_loop_sum",
                 "fault": DEMO_FAULT, "supervise": False})
    reply = host.handle({"op": "run", "name": "hurt", "cycles": 200_000})
    assert reply["ok"] and reply["status"] == "halted"
    result = host.handle({"op": "result", "name": "hurt"})["result"]
    assert result["verified"] is False
    assert result["recovered"] is False

    # A supervised session with no retry budget exhausts recovery: the
    # DoradoError becomes data on the reply, not a protocol error.
    host.handle({"op": "open", "name": "doomed", "workload": "mesa_loop_sum",
                 "fault": DEMO_FAULT, "supervise": True,
                 "checkpoint_interval": 600, "max_retries": 0})
    reply = host.handle({"op": "run", "name": "doomed", "cycles": 200_000})
    assert reply["ok"] and reply["status"] == "failed"
    assert reply["failure"]
    result = host.handle({"op": "result", "name": "doomed"})["result"]
    assert result["recovered"] is False and result["failure"]


def test_fleet_evicts_and_migrates_invisibly(tmp_path):
    """Capacity 2, five sessions, two workers: constant churn, same answers."""
    reference = {}
    for index in range(5):
        session = Session.build("mesa_loop_sum", name=f"s{index}")
        run_to_halt(session, slice_cycles=900)
        reference[f"s{index}"] = session.result()

    results = {}
    with Fleet(workers=2, capacity=2, spool_dir=str(tmp_path)) as fleet:
        for index in range(5):
            fleet.open_session(f"s{index}", "mesa_loop_sum")
        active = [f"s{index}" for index in range(5)]
        while active:
            replies = fleet.run_round(active, 900)
            for name in list(active):
                if replies[name]["status"] != "running":
                    results[name] = fleet.result(name)
                    fleet.close_session(name)
                    active.remove(name)
        stats = fleet.stats()

    assert stats["evictions"] > 0
    assert stats["migrations"] > 0  # warm-restores landed on other workers
    assert results == reference  # placement/eviction left no trace


def test_fleet_api_validation(tmp_path):
    with Fleet(workers=1, capacity=2, spool_dir=str(tmp_path)) as fleet:
        fleet.open_session("s1", "mesa_loop_sum")
        with pytest.raises(ServiceError, match="already exists"):
            fleet.open_session("s1", "mesa_loop_sum")
        with pytest.raises(ServiceError, match="invalid session name"):
            fleet.open_session("bad/name", "mesa_loop_sum")
        with pytest.raises(ServiceError, match="unknown session"):
            fleet.run_slice("ghost", 100)
        # Forced suspend spools the envelope; any access resumes it.
        path = fleet.suspend("s1")
        assert pathlib.Path(path).exists()
        assert fleet.stats()["live"] == []
        assert fleet.run_slice("s1", 500)["cycles"] == 500
        assert fleet.stats()["live"] == ["s1"]
    with pytest.raises(ServiceError):
        Fleet(workers=0)


# --------------------------------------------------------------------------
# the load test: the byte-identity gate, in miniature
# --------------------------------------------------------------------------

def test_build_script_mixes_clean_and_faulted():
    script = build_script(9, seed=17, fault_every=3)
    assert [entry["fault"] is not None for entry in script] == (
        [False, False, True] * 3
    )
    seeds = {entry["fault"]["seed"] for entry in script if entry["fault"]}
    assert len(seeds) == 3  # per-session derived seeds


@pytest.mark.slow
def test_loadtest_fleet_matches_serial_byte_for_byte():
    serial, _ = run_loadtest(sessions=6, capacity=2, serial=True)
    fleet, stats = run_loadtest(sessions=6, capacity=2, workers=2)
    assert loadtest_json(fleet) == loadtest_json(serial)
    assert stats["evictions"] > 0
    counts = {r["status"] for r in fleet["results"].values()}
    assert counts == {"halted"}


# --------------------------------------------------------------------------
# the asyncio front end
# --------------------------------------------------------------------------

def test_frontend_roundtrip(tmp_path):
    async def scenario():
        fleet = Fleet(workers=1, capacity=2, spool_dir=str(tmp_path))
        frontend = Frontend(fleet)
        bound = asyncio.get_running_loop().create_future()
        server = asyncio.create_task(
            frontend.serve("127.0.0.1", 0, ready=bound.set_result)
        )
        host, port = await bound
        reader, writer = await asyncio.open_connection(host, port)

        async def call(request):
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        try:
            assert (await call({"op": "ping"}))["pong"]
            assert (await call({"op": "open", "name": "alice",
                                "workload": "mesa_loop_sum"}))["ok"]
            reply = await call({"op": "run", "name": "alice",
                                "cycles": 1000})
            assert reply["ok"] and reply["status"] == "running"
            rows = await call({"op": "round", "names": ["alice"],
                               "cycles": 5_000_000})
            assert rows["sessions"]["alice"]["status"] == "halted"
            result = await call({"op": "result", "name": "alice"})
            assert result["result"]["verified"]
            assert result["result"]["cycles"] == MESA_CYCLES
            bad = await call({"op": "open", "name": "alice",
                              "workload": "mesa_loop_sum"})
            assert not bad["ok"] and "already exists" in bad["error"]
            garbage = await call({"op": "warp"})
            assert not garbage["ok"]
            assert (await call({"op": "shutdown"}))["stopping"]
        finally:
            writer.close()
            if not server.done():
                server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            fleet.close()

    asyncio.run(scenario())


# --------------------------------------------------------------------------
# the CLI
# --------------------------------------------------------------------------

def test_service_cli_loadtest_and_bench_smoke(tmp_path, capsys):
    from repro.service.__main__ import main as service_main

    out_fleet = tmp_path / "fleet.json"
    out_serial = tmp_path / "serial.json"
    base = ["loadtest", "--sessions", "4", "--capacity", "2",
            "--slice-cycles", "1500"]
    assert service_main(base + ["--workers", "2",
                                "--output", str(out_fleet)]) == 0
    assert service_main(base + ["--serial",
                                "--output", str(out_serial)]) == 0
    assert out_fleet.read_bytes() == out_serial.read_bytes()
    artifact = parse_canonical_json(out_fleet.read_text())
    assert len(artifact["results"]) == 4
    capsys.readouterr()


# --------------------------------------------------------------------------
# robustness satellites (DESIGN.md 5.10): crash detection, request
# idempotence, and a front end nothing a client sends can kill
# --------------------------------------------------------------------------

def test_process_host_reports_crash_with_context():
    """A dead child surfaces as WorkerCrashed, not an eternal hang.

    The exception carries the worker slot, the in-flight op, and the
    session names it addressed -- everything the fleet's recovery path
    needs without a live process to ask.
    """
    import multiprocessing

    from repro.errors import CallTimeout, WorkerCrashed
    from repro.service import ProcessHost

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs a forking platform")
    ctx = multiprocessing.get_context("fork")

    host = ProcessHost(ctx, index=3)
    try:
        assert host.call({"op": "open", "name": "s1",
                          "workload": "mesa_loop_sum"})["ok"]
        host.kill()
        with pytest.raises(WorkerCrashed) as info:
            host.call({"op": "run", "name": "s1", "cycles": 100})
        assert info.value.worker == 3
        assert info.value.op == "run"
        assert info.value.sessions == ("s1",)
    finally:
        host.reap()

    # A live-but-silent worker is a timeout, not a hang.
    quiet = ProcessHost(ctx, index=0)
    try:
        quiet.last_request = {"op": "run", "name": "ghost"}
        with pytest.raises(CallTimeout, match="no reply"):
            quiet.recv(timeout=0.2)
    finally:
        quiet.close()


def test_host_request_dedup_and_checkpoint():
    """Duplicate req ids replay the cached reply; checkpoint is a
    non-destructive suspend."""
    host = SessionHost()
    host.handle({"op": "open", "name": "s1", "workload": "mesa_loop_sum",
                 "req": 1})
    first = host.handle({"op": "run", "name": "s1", "cycles": 300, "req": 2})
    assert first["ok"] and first["cycles"] == 300 and first["req"] == 2
    replayed = host.handle({"op": "run", "name": "s1", "cycles": 300,
                            "req": 2})
    assert replayed == first  # cached: the slice was NOT granted twice
    second = host.handle({"op": "run", "name": "s1", "cycles": 300, "req": 3})
    assert second["cycles"] == 600

    snapshot = host.handle({"op": "checkpoint", "name": "s1", "req": 4})
    assert snapshot["ok"] and "s1" in host.sessions  # still live
    twin = Session.resume(snapshot["envelope"])
    assert twin.cpu.counters.cycles == 600

    # Messages without a req id keep the legacy fire-and-forget shape.
    bare = host.handle({"op": "stats"})
    assert bare["sessions"] == ["s1"] and "req" not in bare


def test_frontend_survives_hostile_lines(tmp_path):
    """Malformed JSON, non-objects, unknown ops, and oversized lines all
    earn structured error replies -- and the connection loop survives."""
    async def scenario():
        fleet = Fleet(workers=1, capacity=2, spool_dir=str(tmp_path))
        frontend = Frontend(fleet, max_line=512)
        bound = asyncio.get_running_loop().create_future()
        server = asyncio.create_task(
            frontend.serve("127.0.0.1", 0, ready=bound.set_result)
        )
        host, port = await bound
        reader, writer = await asyncio.open_connection(host, port)

        async def send_line(raw):
            writer.write(raw + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        try:
            bad = await send_line(b"this is not json")
            assert not bad["ok"] and "bad request" in bad["error"]
            array = await send_line(b"[1, 2, 3]")
            assert not array["ok"] and "JSON object" in array["error"]
            unknown = await send_line(json.dumps({"op": "warp"}).encode())
            assert not unknown["ok"] and "unknown op" in unknown["error"]
            missing = await send_line(json.dumps({"op": "run"}).encode())
            assert not missing["ok"] and "KeyError" in missing["error"]

            # An oversized line: the reply stream may interleave extra
            # bad-request replies for the discarded tail, but the loop
            # survives and a well-formed ping still gets its pong.
            writer.write(b'{"op": "ping", "pad": "' + b"x" * 2048 + b'"}\n')
            await writer.drain()
            oversize = json.loads(await reader.readline())
            assert not oversize["ok"] and "exceeds" in oversize["error"]
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            while True:
                reply = json.loads(await reader.readline())
                if reply.get("pong"):
                    break  # the loop outlived every hostile line
            assert (await send_line(
                json.dumps({"op": "shutdown"}).encode()
            ))["stopping"]
        finally:
            writer.close()
            if not server.done():
                server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            fleet.close()

    asyncio.run(scenario())
