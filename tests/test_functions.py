"""The FF function catalogue banks."""

import pytest

from repro import EncodingError
from repro.core import functions
from repro.core.functions import FF


def test_banks_do_not_overlap():
    assert functions.MEMBASE_SMALL_BASE < functions.COUNT_SMALL_BASE
    assert functions.COUNT_SMALL_BASE < functions.BRANCH_PAIR_BASE
    assert functions.BRANCH_PAIR_BASE < functions.JUMP_PAGE_BASE
    assert functions.JUMP_PAGE_BASE < functions.FIXED_BASE
    # Every fixed function lives in the fixed bank or the low singles.
    for member in FF:
        assert member == FF.NOP or member >= functions.FIXED_BASE, member


def test_jump_page_roundtrip():
    for page in (0, 1, 42, 63):
        ff = functions.jump_page(page)
        assert functions.is_jump_page(ff)
        assert functions.bank_argument(ff) == page


def test_branch_pair_roundtrip():
    for pair in (0, 8, 31):
        ff = functions.branch_pair(pair)
        assert functions.is_branch_pair(ff)
        assert functions.bank_argument(ff) == pair


def test_count_small_roundtrip():
    for n in (0, 15):
        ff = functions.count_small(n)
        assert functions.is_count_small(ff)
        assert functions.bank_argument(ff) == n


def test_membase_small_roundtrip():
    for n in (0, 7):
        ff = functions.membase_small(n)
        assert functions.is_membase_small(ff)
        assert functions.bank_argument(ff) == n


@pytest.mark.parametrize(
    "factory,bad",
    [
        (functions.jump_page, 64),
        (functions.branch_pair, 32),
        (functions.count_small, 16),
        (functions.membase_small, 8),
        (functions.jump_page, -1),
    ],
)
def test_bank_range_checks(factory, bad):
    with pytest.raises(EncodingError):
        factory(bad)


def test_bank_argument_rejects_fixed():
    with pytest.raises(EncodingError):
        functions.bank_argument(int(FF.SHIFT_OUT))


def test_describe_all_codes():
    for ff in range(256):
        assert isinstance(functions.describe(ff), str)


def test_describe_named():
    assert functions.describe(int(FF.OUTPUT)) == "OUTPUT"
    assert functions.describe(functions.jump_page(3)) == "JumpPage(3)"
    assert functions.describe(functions.count_small(9)) == "COUNT<-9"


def test_result_sources_are_functions():
    for ff in functions.RESULT_SOURCES:
        assert isinstance(FF(ff), FF)


def test_extb_selectors_include_input():
    assert FF.INPUT in functions.EXTB_SELECTORS
    assert FF.EXTB_MEMDATA in functions.EXTB_SELECTORS
