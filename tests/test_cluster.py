"""The deterministic multi-Dorado cluster (DESIGN.md section 5.8).

Fabric mechanics, the lockstep-epoch coordinator, the relay-ring demo
workload end to end, and the cluster's replay guarantees: same seed ->
byte-identical canonical snapshot, whatever the worker count, and
snapshot -> restore -> resume converging to the uninterrupted run.
"""

import json
import subprocess
import sys

import pytest

from repro.cluster import (
    CLUSTER_FORMAT_VERSION,
    Cluster,
    ClusterState,
    Fabric,
    RingRelay,
    build_ring_cluster,
    build_ring_template,
    ring_epoch_budget,
    ring_payload,
)
from repro.cluster.__main__ import main as cluster_main
from repro.errors import ConfigError, StateError
from repro.fault.plan import FaultConfig


@pytest.fixture(scope="module")
def template():
    """One booted machine with the network task; forked, never run."""
    return build_ring_template()


def run_ring(template, nodes=3, laps=2, seed=11, workers=1, **kw):
    cluster = build_ring_cluster(
        nodes, laps=laps, seed=seed, template=template, **kw
    )
    cluster.run(max_epochs=ring_epoch_budget(nodes, laps), workers=workers)
    return cluster


# --- the fabric --------------------------------------------------------------


def test_fabric_rejects_bad_geometry():
    with pytest.raises(ConfigError, match="at least one node"):
        Fabric(0)
    with pytest.raises(ConfigError, match="not conservative"):
        Fabric(2, hop_latency=0)
    with pytest.raises(ConfigError, match="outside"):
        Fabric(2, links={0: 2})
    with pytest.raises(ConfigError, match="no outgoing link"):
        Fabric(2, links={0: 1}).send(1, [1, 2], epoch=0)


def test_fabric_hop_latency_is_conservative():
    """A packet sent during epoch E is invisible until epoch E+latency."""
    fabric = Fabric(2, hop_latency=2)
    fabric.send(0, [1, 2], epoch=5)
    assert fabric.due(5) == [] and fabric.due(6) == []
    arrived = fabric.due(7)
    assert [p.words for p in arrived] == [(1, 2)]
    assert arrived[0].dst == 1
    assert fabric.due(7) == []          # popped, not re-delivered
    assert fabric.packets_delivered == 1


def test_fabric_delivery_order_is_total():
    """Same-epoch arrivals sort by sequence number, never send order."""
    fabric = Fabric(4, hop_latency=1, links={i: 0 for i in range(4)})
    for src in (3, 1, 2):
        fabric.send(src, [src], epoch=0)
    assert [p.seq for p in fabric.due(1)] == [0, 1, 2]


def test_fabric_state_roundtrip_and_topology_refusals():
    fabric = Fabric(3, hop_latency=2)
    fabric.send(0, [7, 8], epoch=0)
    fabric.send(1, [9, 10], epoch=1)
    fabric.due(2)
    state = fabric.state_dict()

    clone = Fabric(3, hop_latency=2)
    clone.load_state(state)
    assert clone.state_dict() == state
    assert [p.seq for p in clone.in_flight] == [1]

    with pytest.raises(StateError, match="3 nodes"):
        Fabric(2, hop_latency=2).load_state(state)
    with pytest.raises(StateError, match="different topology"):
        Fabric(3, hop_latency=1).load_state(state)


# --- the ring, end to end ----------------------------------------------------


def test_ring_three_nodes_verifies(template):
    """The acceptance workload: payload survives 2 laps over 3 nodes."""
    cluster = run_ring(template)
    origin = cluster.nodes[0].program
    assert origin.done and origin.verified, origin.failures
    assert origin.packets_sent == 2 and origin.packets_received == 2
    report = cluster.report()
    # 2 laps x 3 hops, every one over the fabric.
    assert report["fabric"]["packets_delivered"] == 6
    assert report["fabric"]["in_flight"] == 0
    assert report["total_cycles"] == sum(
        row["cycles"] for row in report["nodes"]
    )
    for row in report["nodes"]:
        assert row["packets_received"] == 2


def test_ring_single_node_loops_back(template):
    """n=1 degenerates to a self-loop: the wire feeds the sender."""
    cluster = run_ring(template, nodes=1, laps=1)
    origin = cluster.nodes[0].program
    assert origin.done and origin.verified, origin.failures


def test_ring_payload_is_seeded():
    assert ring_payload(11, 0, 16) == ring_payload(11, 0, 16)
    assert ring_payload(11, 0, 16) != ring_payload(12, 0, 16)
    assert ring_payload(11, 0, 16) != ring_payload(11, 1, 16)
    assert all(0 <= w <= 0xFFFF for w in ring_payload(11, 0, 16))


def test_cluster_builder_refusals(template):
    with pytest.raises(ConfigError, match="programs"):
        Cluster.from_template(template, 2, [RingRelay()])
    with pytest.raises(ConfigError, match="nonexistent node"):
        build_ring_cluster(
            2, template=template, fault_plans={5: FaultConfig(seed=1)}
        )
    with pytest.raises(ConfigError, match="epoch_cycles"):
        build_ring_cluster(1, template=template, epoch_cycles=0)
    with pytest.raises(ConfigError, match="fabric was built for"):
        Cluster([], Fabric(1))


# --- replay guarantees -------------------------------------------------------


def test_rerun_is_byte_identical(template):
    first = run_ring(template).snapshot().to_json()
    second = run_ring(template).snapshot().to_json()
    assert first == second


def test_worker_fanout_matches_inline(template):
    """The acceptance gate: fork-based fan-out changes nothing."""
    inline = run_ring(template).snapshot().to_json()
    fanned = run_ring(template, workers=3).snapshot().to_json()
    assert inline == fanned


def test_snapshot_restore_resume_converges(template):
    """Mid-run snapshot -> restore into a fresh cluster -> same end state."""
    reference = run_ring(template)
    final_json = reference.snapshot().to_json()
    total_epochs = reference.epoch

    probe = build_ring_cluster(3, laps=2, seed=11, template=template)
    probe.run(max_epochs=total_epochs // 2)
    assert not probe.done                  # genuinely mid-run
    mid = ClusterState.from_json(probe.snapshot().to_json())

    resumed = build_ring_cluster(3, laps=2, seed=11, template=template)
    resumed.restore(mid)
    resumed.run(max_epochs=ring_epoch_budget(3, 2))
    assert resumed.snapshot().to_json() == final_json


def test_cluster_fork_is_independent(template):
    probe = build_ring_cluster(3, laps=2, seed=11, template=template)
    probe.run(max_epochs=3)
    clone = probe.fork()
    frozen = probe.snapshot().to_json()
    clone.run(max_epochs=ring_epoch_budget(3, 2))
    assert clone.done and clone.nodes[0].program.verified
    assert probe.snapshot().to_json() == frozen


def test_cluster_state_save_load_roundtrip(template, tmp_path):
    state = run_ring(template).snapshot()
    path = tmp_path / "ring.json"
    state.save(path)
    loaded = ClusterState.load(path)
    assert loaded == state
    assert loaded.to_json() == state.to_json()
    assert loaded.epoch == state.epoch and loaded.num_nodes == 3


def test_restore_refusals(template):
    state = run_ring(template).snapshot()

    with pytest.raises(StateError, match="cluster_version"):
        ClusterState.from_json("{}")
    with pytest.raises(StateError, match="malformed"):
        ClusterState.from_json("not json")

    wrong_size = build_ring_cluster(2, template=template)
    with pytest.raises(StateError, match="3 nodes"):
        wrong_size.restore(state)

    versioned = ClusterState(dict(state.data, cluster_version=99))
    with pytest.raises(StateError, match=f"v{CLUSTER_FORMAT_VERSION}"):
        build_ring_cluster(3, template=template).restore(versioned)

    swapped = build_ring_cluster(3, template=template)
    swapped.nodes[2].program = swapped.nodes[0].program
    with pytest.raises(StateError, match="ring_relay"):
        swapped.restore(state)


# --- per-node fault plans ----------------------------------------------------


def test_faulted_ring_still_verifies_and_replays(template):
    """Correctable-only per-node plans: ECC absorbs every hit."""
    plans = {
        i: FaultConfig(seed=100 + i, storage_correctable=3,
                       first_cycle=0, last_cycle=2000)
        for i in range(3)
    }
    first = run_ring(template, fault_plans=plans)
    origin = first.nodes[0].program
    assert origin.done and origin.verified, origin.failures
    injected = sum(n.cpu.counters.faults_injected for n in first.nodes)
    assert injected > 0
    second = run_ring(template, fault_plans=plans)
    assert first.snapshot().to_json() == second.snapshot().to_json()


def test_fault_plans_differ_per_node(template):
    plans = {
        i: FaultConfig(seed=100 + i, storage_correctable=2,
                       first_cycle=0, last_cycle=2000)
        for i in range(2)
    }
    cluster = build_ring_cluster(3, template=template, fault_plans=plans)
    armed = [n.cpu.memory.injector.plan.events for n in cluster.nodes[:2]]
    assert armed[0] and armed[1] and armed[0] != armed[1]
    # Node 2 got no plan and stays clean.
    clean_injector = cluster.nodes[2].cpu.memory.injector
    assert clean_injector is None or not clean_injector.plan.events


# --- CLI + exp-matrix integration --------------------------------------------


def test_cli_run_and_bench(tmp_path, capsys):
    state_path = tmp_path / "ring.json"
    bench_path = tmp_path / "bench.json"
    assert cluster_main([
        "run", "--nodes", "3", "--laps", "1",
        "--save-state", str(state_path),
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["fabric"]["packets_delivered"] == 3
    assert ClusterState.load(state_path).num_nodes == 3

    assert cluster_main([
        "bench", "--nodes", "1,2", "--laps", "1",
        "--output", str(bench_path),
    ]) == 0
    bench = json.loads(bench_path.read_text())
    assert [row["nodes"] for row in bench["scaling"]] == [1, 2]
    assert all(row["verified"] for row in bench["scaling"])
    assert all(row["cycles_per_second"] > 0 for row in bench["scaling"])


def test_cli_module_entry_point(tmp_path):
    """python -m repro.cluster, as CI invokes it."""
    out = subprocess.run(
        [sys.executable, "-m", "repro.cluster", "run",
         "--nodes", "2", "--laps", "1",
         "--save-state", str(tmp_path / "s.json")],
        capture_output=True, text=True, check=True,
    )
    assert json.loads(out.stdout)["fabric"]["packets_delivered"] == 2


def test_exp_cluster_cell_clean_and_faulted():
    from repro.exp import (
        CLUSTER_FAULT_TEMPLATE,
        CLUSTER_WORKLOAD,
        ClusterEvaluator,
        ScenarioSpec,
        execute_cell,
    )

    clean = execute_cell(
        ScenarioSpec.clean(CLUSTER_WORKLOAD, "production",
                           args={"nodes": 2, "laps": 1})
    )
    assert clean["kind"] == "cluster" and clean["verified"]
    assert clean["packets_delivered"] == 2
    rerun = execute_cell(
        ScenarioSpec.clean(CLUSTER_WORKLOAD, "production",
                           args={"nodes": 2, "laps": 1})
    )
    assert rerun["cluster_hash"] == clean["cluster_hash"]

    faulted = execute_cell(ScenarioSpec.faulted(
        CLUSTER_WORKLOAD, "production", CLUSTER_FAULT_TEMPLATE,
        seed=77, args={"nodes": 2, "laps": 1},
    ))
    assert faulted["verified"] and faulted["faults_injected"] > 0

    rows = {
        clean["cluster_hash"]: {"status": "ok", "measurements": clean},
        faulted["cluster_hash"]: {"status": "ok", "measurements": faulted},
    }
    checks = ClusterEvaluator().evaluate({"cells": rows})
    assert checks and all(c["passed"] for c in checks)


@pytest.mark.slow
def test_exp_cluster_matrix_end_to_end():
    """The named `cluster` campaign: node sweep + all-nodes-faulted cell."""
    from repro.exp import cluster_matrix

    result = cluster_matrix().run()
    assert result["passed"], result["evaluations"]
    kinds = [row["measurements"]["nodes"]
             for row in result["cells"].values() if row["status"] == "ok"]
    assert sorted(kinds) == [1, 2, 3, 4]
