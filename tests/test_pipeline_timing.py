"""Boundary pins for the memory pipeline's Hold timing.

The paper's numbers (section 3/6.2.1): a hit delivers MEMDATA exactly
``cache_hit_cycles`` after the Fetch; a miss delivers exactly
``miss_penalty`` after the reference starts (plus any wait for
storage); dirty evictions and fast-I/O flushes each occupy storage for
one extra ``storage_cycle``; one reference per task is outstanding.
Each test counts cycles to the exact boundary: not-ready one cycle
before, ready at it.
"""

import pytest

from repro import MachineConfig
from repro.mem.pipeline import MemorySystem
from repro.types import MUNCH_WORDS


def make(**kw):
    kw.setdefault("storage_words", 1 << 16)
    config = MachineConfig(**kw)
    mem = MemorySystem(config)
    mem.identity_map(256)
    return mem


def advance(mem, cycles):
    for _ in range(cycles):
        mem.tick()


class RecordingPort:
    def __init__(self):
        self.delivered = []

    def fast_deliver(self, address, words):
        self.delivered.append((address, list(words)))

    def fast_supply(self, address):
        return [7] * MUNCH_WORDS


# --------------------------------------------------------------------------
# md_ready at exactly cache_hit_cycles / miss_penalty
# --------------------------------------------------------------------------

def test_hit_ready_at_exactly_cache_hit_cycles():
    mem = make()
    mem.start_fetch(0, 0, 0x20)          # warm the munch
    advance(mem, mem.config.miss_penalty)
    assert mem.md_ready(0)

    assert mem.start_fetch(0, 0, 0x21)   # hit
    hit = mem.config.cache_hit_cycles
    assert not mem.md_ready(0), "hit data cannot be ready at cycle 0"
    advance(mem, hit - 1)
    assert not mem.md_ready(0), f"hit data ready {hit - 1} cycles in: too early"
    advance(mem, 1)
    assert mem.md_ready(0), f"hit data must be ready at exactly {hit} cycles"
    assert mem.counters.cache_hits == 1 and mem.counters.cache_misses == 1


def test_miss_ready_at_exactly_miss_penalty():
    mem = make()
    assert mem.start_fetch(0, 0, 0x40)
    penalty = mem.config.miss_penalty
    advance(mem, penalty - 1)
    assert not mem.md_ready(0), f"miss data ready {penalty - 1} cycles in: too early"
    advance(mem, 1)
    assert mem.md_ready(0), f"miss data must be ready at exactly {penalty} cycles"


def test_miss_waits_for_storage_then_counts_full_penalty():
    """A miss issued while storage is busy starts its penalty clock only
    when storage frees up (the reference 'starts' at the claim)."""
    mem = make()
    mem.start_fetch(0, 0, 0x00)          # task 0 occupies storage at cycle 0
    storage_free_at = mem._storage_busy_until
    assert storage_free_at == mem.config.storage_cycle
    assert mem.start_fetch(1, 0, 0x100)  # different munch, storage busy
    ready_at = storage_free_at + mem.config.miss_penalty
    advance(mem, ready_at - 1)
    assert not mem.md_ready(1)
    advance(mem, 1)
    assert mem.md_ready(1)


def test_hit_under_miss_still_takes_hit_cycles():
    """The cache takes a reference per cycle even while storage works."""
    mem = make()
    mem.start_fetch(0, 0, 0x20)
    advance(mem, mem.config.miss_penalty)
    mem.start_fetch(1, 0, 0x300)          # task 1 misses, occupies storage
    assert mem.storage_busy
    assert mem.start_fetch(0, 0, 0x22)    # task 0 hits under the miss
    advance(mem, mem.config.cache_hit_cycles)
    assert mem.md_ready(0)
    assert not mem.md_ready(1)


# --------------------------------------------------------------------------
# one outstanding reference per task
# --------------------------------------------------------------------------

def test_task_busy_until_exactly_ready():
    mem = make()
    mem.start_fetch(0, 0, 0x40)
    penalty = mem.config.miss_penalty
    for _ in range(penalty - 1):
        assert mem.task_busy(0)
        mem.tick()
    mem.tick()
    assert not mem.task_busy(0), "task frees exactly when MEMDATA is ready"


def test_new_fetch_rebinds_memdata_and_counts_both():
    """MEMDATA follows the most recent fetch; the superseded reference
    still cost a storage read (counting assertion)."""
    mem = make()
    mem.storage.write_word(0x40, 111)
    mem.storage.write_word(0x140, 222)
    mem.start_fetch(0, 0, 0x40)
    mem.start_fetch(0, 0, 0x140)          # rebinds while the first is in flight
    advance(mem, mem._storage_busy_until + mem.config.miss_penalty)
    assert mem.md_ready(0)
    assert mem.read_md(0) == 222
    assert mem.counters.storage_reads == 2
    assert mem.counters.memory_fetches == 2


def test_tasks_have_independent_references():
    mem = make()
    mem.storage.write_word(0x40, 111)
    mem.start_fetch(3, 0, 0x40)
    advance(mem, mem.config.miss_penalty)
    assert mem.md_ready(3)
    assert not mem.md_ready(5), "a task with no reference is never ready"
    assert not mem.task_busy(5)
    assert mem.read_md(3) == 111


# --------------------------------------------------------------------------
# the extra storage cycle: dirty evictions and fast-I/O flushes
# --------------------------------------------------------------------------

def _evicting_addresses(mem, count):
    """Addresses all mapping to cache set 0, one per distinct munch."""
    span = mem.cache.num_sets * MUNCH_WORDS
    return [i * span for i in range(count)]


def test_dirty_eviction_charges_one_extra_storage_cycle():
    mem = make(cache_lines=2, cache_ways=1)  # 2 sets, direct-mapped
    a, b, c = _evicting_addresses(mem, 3)
    storage_cycle = mem.config.storage_cycle

    mem.start_store(0, 0, a, 0xBEEF)       # fill munch a, make it dirty
    advance(mem, mem.config.miss_penalty)

    start = mem.now
    mem.start_fetch(0, 0, b)               # evicts dirty a: read + write-back
    assert mem._storage_busy_until - start == 2 * storage_cycle, \
        "a dirty eviction must occupy storage for exactly 2 storage cycles"
    assert mem.counters.storage_writes == 1
    advance(mem, mem.config.miss_penalty)

    start = mem.now
    mem.start_fetch(0, 0, c)               # evicts clean b: read only
    assert mem._storage_busy_until - start == 1 * storage_cycle, \
        "a clean eviction must occupy storage for exactly 1 storage cycle"
    assert mem.counters.storage_writes == 1  # unchanged
    assert mem.storage.read_word(a) == 0xBEEF, "write-back landed"


def test_fastio_flush_charges_one_extra_storage_cycle():
    mem = make()
    port = RecordingPort()
    storage_cycle = mem.config.storage_cycle

    # Clean munch: IOFetch occupies storage for exactly one cycle and
    # delivers one storage cycle after it starts.
    assert mem.start_fastio_fetch(2, 0, 0x40, port)
    assert mem._storage_busy_until - mem.now == 1 * storage_cycle
    advance(mem, storage_cycle - 1)
    assert not port.delivered
    advance(mem, 1)
    assert len(port.delivered) == 1

    # Dirty cached munch: the flush write-back claims the extra cycle,
    # so delivery lands 2 storage cycles out.
    mem.start_store(0, 0, 0x80, 0xCAFE)
    advance(mem, mem.config.miss_penalty)
    writes_before = mem.counters.storage_writes
    start = mem.now
    assert mem.start_fastio_fetch(2, 0, 0x80, port)
    assert mem._storage_busy_until - start == 2 * storage_cycle, \
        "flushing a dirty munch must occupy storage for exactly 2 storage cycles"
    assert mem.counters.storage_writes == writes_before + 1
    advance(mem, 2 * storage_cycle - 1)
    assert len(port.delivered) == 1
    advance(mem, 1)
    assert len(port.delivered) == 2
    address, words = port.delivered[1]
    assert words[0] == 0xCAFE, "the device sees the flushed (current) data"


def test_fastio_holds_while_storage_busy_until_exact_cycle():
    mem = make()
    port = RecordingPort()
    mem.start_fetch(0, 0, 0x500)           # miss occupies storage
    busy_until = mem._storage_busy_until
    assert not mem.start_fastio_fetch(2, 0, 0x40, port), "IOFetch must hold"
    advance(mem, busy_until - mem.now - 1)
    assert not mem.start_fastio_fetch(2, 0, 0x40, port), "still busy"
    advance(mem, 1)
    assert mem.start_fastio_fetch(2, 0, 0x40, port), "frees at the exact cycle"
