"""The instruction fetch unit in isolation."""

import pytest

from repro import EmulatorError, PRODUCTION
from repro.ifu.decoder import DecodeEntry, DecodeTable, OperandKind
from repro.ifu.ifu import Ifu
from repro.mem.pipeline import MemorySystem


def make_table():
    table = DecodeTable("test")
    table.define(0x01, DecodeEntry("NOP", "op.nop"))
    table.define(0x02, DecodeEntry("LIT", "op.lit", OperandKind.BYTE))
    table.define(0x03, DecodeEntry("LITS", "op.lits", OperandKind.SIGNED_BYTE))
    table.define(0x04, DecodeEntry("JMP", "op.jmp", OperandKind.WORD))
    table.define(0x05, DecodeEntry("PAIR", "op.pair", OperandKind.PAIR))
    return table


DISPATCH = {"op.nop": 100, "op.lit": 110, "op.lits": 120, "op.jmp": 130, "op.pair": 140}


def make_ifu(byte_stream):
    mem = MemorySystem(PRODUCTION)
    mem.identity_map(16)
    padded = list(byte_stream) + [0] * (len(byte_stream) % 2)
    for i in range(0, len(padded), 2):
        mem.storage.write_word(i // 2, (padded[i] << 8) | padded[i + 1])
    ifu = Ifu(mem)
    ifu.load_table(make_table(), DISPATCH)
    return ifu


def run_until_ready(ifu, limit=20):
    for _ in range(limit):
        if ifu.dispatch_ready:
            return
        ifu.tick()
    raise AssertionError("IFU never became ready")


# --- decode tables -----------------------------------------------------------

def test_table_rejects_duplicates():
    table = make_table()
    with pytest.raises(EmulatorError):
        table.define(0x01, DecodeEntry("X", "op.x"))
    with pytest.raises(EmulatorError):
        table.define(0x10, DecodeEntry("NOP", "op.other"))


def test_table_opcode_lookup():
    table = make_table()
    assert table.opcode("LIT") == 0x02
    with pytest.raises(EmulatorError):
        table.opcode("NOSUCH")


def test_entry_lengths():
    table = make_table()
    assert table.entry(0x01).length == 1
    assert table.entry(0x02).length == 2
    assert table.entry(0x04).length == 3


def test_operand_values():
    entry = DecodeEntry("X", "op", OperandKind.SIGNED_BYTE)
    assert entry.operand_values([0x80]) == [0xFF80]
    entry = DecodeEntry("X2", "op", OperandKind.WORD)
    assert entry.operand_values([0x12, 0x34]) == [0x1234]
    entry = DecodeEntry("X3", "op", OperandKind.PAIR)
    assert entry.operand_values([1, 2]) == [1, 2]


def test_load_table_checks_dispatches():
    ifu = Ifu(MemorySystem(PRODUCTION))
    with pytest.raises(EmulatorError):
        ifu.load_table(make_table(), {"op.nop": 1})


# --- stream behaviour ---------------------------------------------------------

def test_dispatch_sequence():
    ifu = make_ifu([0x01, 0x02, 0x2A, 0x01])
    ifu.start(0)
    run_until_ready(ifu)
    assert ifu.take_dispatch() == 100
    assert ifu.pc == 1
    run_until_ready(ifu)
    assert ifu.take_dispatch() == 110
    assert ifu.read_operand() == 0x2A
    assert ifu.pc == 3
    run_until_ready(ifu)
    assert ifu.take_dispatch() == 100


def test_operand_consumption():
    ifu = make_ifu([0x05, 7, 9])
    ifu.start(0)
    run_until_ready(ifu)
    ifu.take_dispatch()
    assert ifu.read_operand() == 7
    ifu.consume_operand()
    assert ifu.read_operand() == 9
    ifu.consume_operand()
    assert not ifu.operand_ready
    with pytest.raises(EmulatorError):
        ifu.read_operand()


def test_signed_operand_sign_extends():
    ifu = make_ifu([0x03, 0xFE])
    ifu.start(0)
    run_until_ready(ifu)
    ifu.take_dispatch()
    assert ifu.read_operand() == 0xFFFE


def test_jump_flushes_and_costs_cycles():
    ifu = make_ifu([0x01, 0x01, 0x01, 0x01, 0x04, 0x00, 0x00])
    ifu.start(0)
    run_until_ready(ifu)
    ifu.take_dispatch()
    ifu.jump(4)
    assert not ifu.dispatch_ready  # the buffer was flushed
    cycles = 0
    while not ifu.dispatch_ready:
        ifu.tick()
        cycles += 1
    assert cycles >= 2  # refill + decode: the taken-branch penalty
    assert ifu.take_dispatch() == 130


def test_steady_state_is_back_to_back():
    """Simple macroinstructions dispatch every cycle once the buffer runs
    ahead -- the 'simple macroinstruction in one cycle' requirement."""
    ifu = make_ifu([0x01] * 16)
    ifu.start(0)
    run_until_ready(ifu)
    for _ in range(6):
        ifu.take_dispatch()
        ifu.tick()
        assert ifu.dispatch_ready


def test_undefined_opcode_raises_only_when_reached():
    ifu = make_ifu([0x01, 0xEE])
    ifu.start(0)
    run_until_ready(ifu)
    ifu.take_dispatch()  # fine: prefetch into 0xEE must not raise here
    for _ in range(4):
        ifu.tick()
    with pytest.raises(EmulatorError):
        ifu.dispatch_ready  # noqa: B018 - property with a deliberate raise


def test_reset_stops_prefetch():
    ifu = make_ifu([0x01, 0x01])
    ifu.start(0)
    run_until_ready(ifu)
    ifu.reset()
    assert not ifu.running
    assert not ifu.dispatch_ready
