"""The Mesa emulator, opcode by opcode."""

import pytest

from repro import MicrocodeCrash
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import (
    FRAMES_VA,
    FRAME_SIZE,
    build_mesa_machine,
    field_spec,
    insert_spec,
)


def run_program(build, max_cycles=200_000, setup=None):
    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)
    build(b)
    ctx.load_program(b.assemble())
    if setup:
        setup(ctx)
    ctx.run(max_cycles)
    assert ctx.halted, "program did not halt"
    return ctx


def local(ctx, n):
    return ctx.memory_word(FRAMES_VA + 2 + n)


def test_lit_and_store():
    ctx = run_program(lambda b: [b.op("LIT", 42), b.op("SL", 0), b.op("HALT")])
    assert local(ctx, 0) == 42


def test_litw_pushes_16_bit():
    ctx = run_program(lambda b: [b.op("LITW", 0xBEEF), b.op("SL", 1), b.op("HALT")])
    assert local(ctx, 1) == 0xBEEF


def test_ll_roundtrip():
    def build(b):
        b.op("LITW", 0x1234); b.op("SL", 3)
        b.op("LL", 3); b.op("SL", 4)
        b.op("HALT")

    ctx = run_program(build)
    assert local(ctx, 4) == 0x1234


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        ("ADD", 5, 7, 12),
        ("SUB", 9, 3, 6),
        ("SUB", 3, 9, 0xFFFA),
        ("AND", 0xF0F0, 0xFF00, 0xF000),
        ("OR", 0xF0F0, 0x0F00, 0xFFF0),
        ("XOR", 0xFF00, 0x0FF0, 0xF0F0),
    ],
)
def test_binops(op, a, b, expected):
    def build(asm):
        asm.op("LITW", a); asm.op("LITW", b); asm.op(op); asm.op("SL", 0)
        asm.op("HALT")

    assert local(run_program(build), 0) == expected


def test_unary_ops():
    def build(b):
        b.op("LIT", 9); b.op("INC"); b.op("SL", 0)
        b.op("LIT", 5); b.op("NEG"); b.op("SL", 1)
        b.op("LITW", 0x00FF); b.op("NOT"); b.op("SL", 2)
        b.op("HALT")

    ctx = run_program(build)
    assert local(ctx, 0) == 10
    assert local(ctx, 1) == 0xFFFB
    assert local(ctx, 2) == 0xFF00


def test_dup_drop():
    def build(b):
        b.op("LIT", 3); b.op("DUP"); b.op("ADD"); b.op("SL", 0)
        b.op("LIT", 1); b.op("LIT", 2); b.op("DROP"); b.op("SL", 1)
        b.op("HALT")

    ctx = run_program(build)
    assert local(ctx, 0) == 6
    assert local(ctx, 1) == 1


def test_globals():
    from repro.emulators.mesa import GLOBALS_VA

    def build(b):
        b.op("LG", 5); b.op("SL", 0)
        b.op("LIT", 77); b.op("SG", 6)
        b.op("HALT")

    def setup(ctx):
        ctx.set_memory_word(GLOBALS_VA + 5, 0x5150)

    ctx = run_program(build, setup=setup)
    assert local(ctx, 0) == 0x5150
    assert ctx.memory_word(GLOBALS_VA + 6) == 77


@pytest.mark.parametrize("value,taken", [(0, True), (1, False)])
def test_jz(value, taken):
    def build(b):
        b.op("LIT", value); b.op("JZ", "yes")
        b.op("LIT", 0); b.op("SL", 0); b.op("HALT")
        b.label("yes")
        b.op("LIT", 1); b.op("SL", 0); b.op("HALT")

    assert local(run_program(build), 0) == (1 if taken else 0)


def test_jneg():
    def build(b):
        b.op("LIT", 3); b.op("LIT", 5); b.op("SUB"); b.op("JNEG", "neg")
        b.op("LIT", 0); b.op("SL", 0); b.op("HALT")
        b.label("neg")
        b.op("LIT", 1); b.op("SL", 0); b.op("HALT")

    assert local(run_program(build), 0) == 1


def test_field_read_write():
    record = 0x3200

    def build(b):
        b.op("SETF", field_spec(5, 4))
        b.op("LITW", record); b.op("RF", 0); b.op("SL", 0)
        b.op("LIT", 0x9)
        b.op("SETF", insert_spec(10, 4))
        b.op("LITW", record)
        b.op("WF", 1)
        b.op("HALT")

    def setup(ctx):
        ctx.set_memory_word(record, 0b0110_1010_1110_0001)
        ctx.set_memory_word(record + 1, 0x0000)

    ctx = run_program(build, setup=setup)
    assert local(ctx, 0) == (0b0110_1010_1110_0001 >> 5) & 0xF
    assert ctx.memory_word(record + 1) == 0x9 << 10


def test_field_write_preserves_other_bits():
    record = 0x3300

    def build(b):
        b.op("LIT", 0x3)
        b.op("SETF", insert_spec(4, 2))
        b.op("LITW", record)
        b.op("WF", 0)
        b.op("HALT")

    def setup(ctx):
        ctx.set_memory_word(record, 0xFFFF)

    ctx = run_program(build, setup=setup)
    assert ctx.memory_word(record) == 0xFFFF  # wrote 0b11 into a field of ones


def test_array_load_store():
    base = 0x3400

    def build(b):
        b.op("LITW", base); b.op("LIT", 3); b.op("AL"); b.op("SL", 0)
        b.op("LITW", base); b.op("LIT", 7); b.op("LITW", 0x1234); b.op("AS")
        b.op("HALT")

    def setup(ctx):
        ctx.set_memory_word(base + 3, 0xABCD)

    ctx = run_program(build, setup=setup)
    assert local(ctx, 0) == 0xABCD
    assert ctx.memory_word(base + 7) == 0x1234


def test_call_passes_args_through_enter():
    def build(b):
        b.op("LIT", 11); b.op("LIT", 22); b.op("FC", "f"); b.op("SL", 0)
        b.op("HALT")
        b.label("f")
        b.op("ENTER", 2)          # locals[0]=11, locals[1]=22
        b.op("LL", 0); b.op("LL", 1); b.op("SUB"); b.op("RET")

    assert local(run_program(build), 0) == (11 - 22) & 0xFFFF


def test_nested_calls_restore_frames():
    def build(b):
        b.op("LITW", 100); b.op("SL", 0)
        b.op("FC", "outer"); b.op("SL", 1)
        b.op("LL", 0); b.op("SL", 2)   # local 0 must be intact
        b.op("HALT")
        b.label("outer")
        b.op("ENTER0")
        b.op("LIT", 5); b.op("FC", "inner"); b.op("RET")
        b.label("inner")
        b.op("ENTER", 1)
        b.op("LL", 0); b.op("INC"); b.op("RET")

    ctx = run_program(build)
    assert local(ctx, 1) == 6
    assert local(ctx, 2) == 100


def test_recursion_depth():
    def build(b):
        b.op("LITW", 30); b.op("FC", "down"); b.op("SL", 0); b.op("HALT")
        b.label("down")
        b.op("ENTER", 1)
        b.op("LL", 0); b.op("JZ", "base")
        b.op("LL", 0); b.op("LIT", 1); b.op("SUB"); b.op("FC", "down")
        b.op("INC"); b.op("RET")
        b.label("base")
        b.op("LIT", 0); b.op("RET")

    assert local(run_program(build), 0) == 30


def test_frame_overflow_traps():
    def build(b):
        b.label("forever")
        b.op("FC", "forever")  # infinite recursion, no returns

    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)
    build(b)
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash, match="breakpoint"):
        ctx.run(200_000)


def test_fib_reference():
    def build(b):
        b.op("LITW", 14); b.op("FC", "fib"); b.op("SL", 0); b.op("HALT")
        b.label("fib")
        b.op("ENTER", 1)
        b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("JNEG", "base")
        b.op("LL", 0); b.op("LIT", 1); b.op("SUB"); b.op("FC", "fib"); b.op("SL", 1)
        b.op("LL", 0); b.op("LIT", 2); b.op("SUB"); b.op("FC", "fib")
        b.op("LL", 1); b.op("ADD"); b.op("RET")
        b.label("base")
        b.op("LL", 0); b.op("RET")

    assert local(run_program(build, max_cycles=1_000_000), 0) == 377


def test_microinstruction_budget_for_loads():
    """E1 in miniature: LL is 2 microinstructions, SL is 1."""
    from repro.perf.measure import OpcodeProfiler

    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)
    for _ in range(20):
        b.op("LL", 0)
        b.op("SL", 1)
    b.op("HALT")
    ctx.load_program(b.assemble())
    prof = OpcodeProfiler(ctx)
    ctx.run(100_000)
    assert prof.mean("LL").mean_microinstructions == pytest.approx(2.0)
    assert prof.mean("SL").mean_microinstructions == pytest.approx(1.0)


# --- hardware multiply/divide and shifter opcodes (extensions) -------------

@pytest.mark.parametrize("a,b", [(123, 45), (0, 99), (255, 255), (1000, 65)])
def test_mul_uses_hardware_steps(a, b):
    def build(bb):
        bb.op("LITW", a); bb.op("LITW", b); bb.op("MUL"); bb.op("SL", 0)
        bb.op("HALT")

    assert local(run_program(build), 0) == (a * b) & 0xFFFF


@pytest.mark.parametrize("a,b", [(1000, 7), (65535, 255), (5, 9), (100, 1)])
def test_div_and_mod(a, b):
    def build(bb):
        bb.op("LITW", a); bb.op("LITW", b); bb.op("DIV"); bb.op("SL", 0)
        bb.op("LITW", a); bb.op("LITW", b); bb.op("MOD"); bb.op("SL", 1)
        bb.op("HALT")

    ctx = run_program(build)
    assert local(ctx, 0) == a // b
    assert local(ctx, 1) == a % b


@pytest.mark.parametrize(
    "op,a,b,expected",
    [("LT", 3, 5, 1), ("LT", 5, 3, 0), ("LT", 4, 4, 0),
     ("EQ", 4, 4, 1), ("EQ", 4, 5, 0)],
)
def test_comparisons(op, a, b, expected):
    def build(bb):
        bb.op("LITW", a); bb.op("LITW", b); bb.op(op); bb.op("SL", 0)
        bb.op("HALT")

    assert local(run_program(build), 0) == expected


def test_shift_opcodes():
    from repro.emulators.mesa import rot_spec, shl_spec, shr_spec

    def build(bb):
        bb.op("SETF", shl_spec(3)); bb.op("LITW", 0x00FF); bb.op("SHIFT"); bb.op("SL", 0)
        bb.op("SETF", shr_spec(3)); bb.op("LITW", 0x00FF); bb.op("SHIFT"); bb.op("SL", 1)
        bb.op("SETF", rot_spec(8)); bb.op("LITW", 0x12AB); bb.op("SHIFT"); bb.op("SL", 2)
        bb.op("HALT")

    ctx = run_program(build)
    assert local(ctx, 0) == (0x00FF << 3) & 0xFFFF
    assert local(ctx, 1) == 0x00FF >> 3
    assert local(ctx, 2) == 0xAB12


def test_bubble_sort_program():
    """A composite kernel: arrays, comparisons, nested loops."""
    from repro.perf.workloads import mesa_bubble_sort

    workload = mesa_bubble_sort(12, seed=5)
    workload.run(3_000_000)
