"""The experiment-matrix harness: identity, determinism, fan-out.

Fast tests use the bypass-kernel corner of the grid (cells of ~50
simulated cycles); the full demo matrix -- 18 cells of emulator
workloads with supervised fault recovery -- carries the ``matrix`` and
``slow`` markers and runs in the dedicated CI job.
"""

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PRODUCTION, MachineConfig
from repro.exp import (
    CONFIG_VARIANTS,
    ConvergenceEvaluator,
    ExperimentMatrix,
    GoldenPinEvaluator,
    HoldAccountingEvaluator,
    ScenarioSpec,
    TierParityEvaluator,
    ablation_matrix,
    canonical_dumps,
    clear_boot_cache,
    config_hash,
    demo_matrix,
    derive_seed,
    diff_results,
    execute_cell,
    hash_payload,
    monte_carlo_matrix,
)
from repro.exp.campaigns import DEMO_FAULT_TEMPLATE

GOLDENS = json.loads(
    (pathlib.Path(__file__).parent / "goldens.json").read_text()
)


def kernel_matrix(seed=3):
    """The fast grid: two kernels x two variants, one cell excluded."""
    return ExperimentMatrix.cartesian(
        "kernel_test",
        workloads=("bypass_kernel", "bypass_kernel_padded"),
        variants=("production", "model0"),
        seed=seed,
    )


# --------------------------------------------------------------------------
# config hashing (Hypothesis)
# --------------------------------------------------------------------------

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(st.integers(), st.booleans(), st.text(max_size=8), st.none()),
    min_size=1,
    max_size=8,
)


@given(_payloads)
def test_hash_payload_stable_under_key_reordering(payload):
    reordered = dict(reversed(list(payload.items())))
    assert hash_payload(payload) == hash_payload(reordered)


@given(_payloads, st.integers())
def test_hash_payload_distinct_across_value_change(payload, nonce):
    key = sorted(payload)[0]
    changed = dict(payload)
    changed[key] = ("changed", payload[key], nonce)
    assert hash_payload(changed) != hash_payload(payload)


_CONFIG_FIELDS = [f.name for f in dataclasses.fields(MachineConfig)]


@settings(max_examples=50)
@given(st.sampled_from(_CONFIG_FIELDS), st.integers(min_value=1, max_value=1 << 20))
def test_config_hash_distinct_across_any_field_change(field, value):
    """Changing any single field of the signature changes the hash.

    The mutation happens on the signature payload (MachineConfig itself
    validates many fields, e.g. power-of-two sizes; the hashing layer
    must be sensitive to every field regardless).
    """
    from repro.exp.configs import config_signature_payload

    base = config_signature_payload(PRODUCTION)
    changed = dict(base)
    changed[field] = value if base[field] != value else value + 1
    assert hash_payload(changed) != hash_payload(base)


def test_config_hash_sensitive_to_each_registered_variant_knob():
    """Every named variant's defining knob shows up in its hash."""
    base = config_hash(PRODUCTION)
    for name, v in CONFIG_VARIANTS.items():
        if name != "production":
            assert v.hash != base, name


def test_variant_hashes_all_distinct():
    hashes = {v.hash for v in CONFIG_VARIANTS.values()}
    assert len(hashes) == len(CONFIG_VARIANTS)


# --------------------------------------------------------------------------
# scenario specs
# --------------------------------------------------------------------------

def test_spec_roundtrips_through_dict():
    spec = ScenarioSpec.faulted(
        "mesa_loop_sum", "production", DEMO_FAULT_TEMPLATE, seed=42
    )
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_dict(spec.to_dict()).cell_id == spec.cell_id


def test_faulted_spec_rejects_bad_fault_fields_early():
    with pytest.raises(TypeError):
        ScenarioSpec.faulted(
            "mesa_loop_sum", "production", {"no_such_fault_knob": 1}, seed=1
        )


def test_derive_seed_is_stable_and_spread():
    a = derive_seed(11, "mesa_loop_sum", "production", 0)
    assert a == derive_seed(11, "mesa_loop_sum", "production", 0)
    assert a != derive_seed(11, "mesa_loop_sum", "production", 1)
    assert a != derive_seed(12, "mesa_loop_sum", "production", 0)
    assert 0 < a < 1 << 31


def test_matrix_rejects_duplicate_cells():
    spec = ScenarioSpec.clean("bypass_kernel", "production")
    with pytest.raises(ValueError, match="duplicate"):
        ExperimentMatrix("dup", [spec, spec])


def test_cartesian_excludes_bypass_needing_cells_explicitly():
    matrix = kernel_matrix()
    ids = {spec.pin_key for spec in matrix.cells}
    assert "bypass_kernel@model0" not in ids
    assert matrix.excluded == [{
        "workload": "bypass_kernel", "variant": "model0",
        "reason": "workload microcode requires bypass paths "
                  "(not Model-0 safe)",
    }]
    # exclusions are part of the matrix identity
    bigger = ExperimentMatrix("kernel_test", matrix.cells, seed=matrix.seed)
    assert bigger.hash != matrix.hash


# --------------------------------------------------------------------------
# running: determinism, fan-out, crash handling
# --------------------------------------------------------------------------

def test_kernel_matrix_passes_and_reruns_byte_identical():
    clear_boot_cache()
    first = kernel_matrix().run()
    assert first["passed"], canonical_dumps(first)
    second = kernel_matrix().run()
    assert canonical_dumps(first) == canonical_dumps(second)
    assert diff_results(first, second) == []


def test_worker_fanout_matches_inline_byte_identically():
    inline = kernel_matrix().run()
    fanned = kernel_matrix().run(workers=2)
    assert canonical_dumps(inline) == canonical_dumps(fanned)


def test_crashing_cell_fails_cell_not_matrix():
    good = ScenarioSpec.clean("bypass_kernel", "production")
    bad = ScenarioSpec.clean("no_such_workload", "production")
    matrix = ExperimentMatrix("crash", [good, bad])
    result = matrix.run(workers=2)
    by_status = {row["status"] for row in result["cells"].values()}
    assert by_status == {"ok", "failed"}
    failed = result["cells"][bad.cell_id]
    assert failed["measurements"] is None
    assert "no_such_workload" in failed["error"]
    assert not result["passed"]
    assert result["aggregate"]["failed_cell_ids"] == [bad.cell_id]


def test_golden_pins_checked_when_provided():
    pins = GOLDENS["matrix_cycles"]
    result = kernel_matrix().run(goldens=pins)
    golden_checks = [c for c in result["checks"]
                     if c["evaluator"] == "golden_pins"]
    assert len(golden_checks) == 3  # the three non-excluded kernel cells
    assert all(c["passed"] for c in golden_checks)

    wrong = dict(pins)
    wrong["bypass_kernel@production"] = 1
    result = kernel_matrix().run(goldens=wrong)
    assert not result["passed"]


def test_boot_cache_forks_leave_pristine_machine_untouched():
    clear_boot_cache()
    spec = ScenarioSpec.clean("bypass_kernel", "production")
    first = execute_cell(spec)
    second = execute_cell(spec)  # runs on forks of the same boot
    assert first == second


# --------------------------------------------------------------------------
# evaluator units (synthetic results; no simulation)
# --------------------------------------------------------------------------

def _clean_row(workload="w", variant="v", cycles=100, arch="aa"):
    tiers = {t: {"cycles": cycles, "arch_hash": arch}
             for t in ("interp", "plan", "traced")}
    return {
        "status": "ok", "error": None,
        "spec": {"workload": workload, "variant": variant, "args": {},
                 "fault": None, "seed": 0},
        "measurements": {
            "kind": "clean", "tiers": tiers, "cycles": cycles,
            "arch_hash": arch,
            "metrics": {"held_cycles": 4, "hold_causes": {"a": 3, "b": 1}},
        },
    }


def _faulted_row(workload="w", variant="v", cycles=100, arch="aa",
                 recovered=True):
    return {
        "status": "ok", "error": None,
        "spec": {"workload": workload, "variant": variant, "args": {},
                 "fault": {"map_faults": 1}, "seed": 9},
        "measurements": {
            "kind": "faulted", "recovered": recovered,
            "failure": None if recovered else "did not halt",
            "cycles": cycles, "arch_hash": arch,
            "recovery": {"rollbacks": 1, "replays": 1, "degrades": 0,
                         "checks_failed": 1},
            "metrics": {"held_cycles": 4, "hold_causes": {"a": 4}},
        },
    }


def test_tier_parity_evaluator_flags_divergence():
    row = _clean_row()
    row["measurements"]["tiers"]["plan"]["cycles"] = 101
    result = {"cells": {"c1": row}}
    checks = {c["check"]: c["passed"]
              for c in TierParityEvaluator().evaluate(result)}
    assert checks == {"tier_cycles_equal": False, "tier_state_identical": True}


def test_convergence_evaluator_pairs_faulted_with_clean():
    result = {"cells": {
        "clean": _clean_row(cycles=100, arch="aa"),
        "faulted": _faulted_row(cycles=100, arch="aa"),
        "diverged": _faulted_row(variant="v2", cycles=105, arch="bb"),
    }}
    result["cells"]["diverged"]["spec"]["variant"] = "v"
    checks = {(c["cell"], c["check"]): c["passed"]
              for c in ConvergenceEvaluator().evaluate(result)}
    assert checks[("faulted", "converges_to_clean")] is True
    assert checks[("diverged", "converges_to_clean")] is False


def test_convergence_evaluator_fails_without_counterpart():
    result = {"cells": {"faulted": _faulted_row()}}
    checks = {c["check"]: c for c in ConvergenceEvaluator().evaluate(result)}
    assert checks["converges_to_clean"]["passed"] is False
    assert "no clean counterpart" in checks["converges_to_clean"]["detail"]


def test_hold_accounting_evaluator_sums_causes():
    good = {"cells": {"c": _clean_row()}}
    assert all(c["passed"]
               for c in HoldAccountingEvaluator().evaluate(good))
    bad = {"cells": {"c": _clean_row()}}
    bad["cells"]["c"]["measurements"]["metrics"]["hold_causes"]["a"] = 9
    assert not all(c["passed"]
                   for c in HoldAccountingEvaluator().evaluate(bad))


def test_golden_pin_evaluator_judges_only_pinned_cells():
    result = {"cells": {"c": _clean_row(workload="w", variant="v")}}
    assert GoldenPinEvaluator({"other@x": 5}).evaluate(result) == []
    checks = GoldenPinEvaluator({"w@v": 100}).evaluate(result)
    assert [c["passed"] for c in checks] == [True]
    checks = GoldenPinEvaluator({"w@v": 99}).evaluate(result)
    assert [c["passed"] for c in checks] == [False]


# --------------------------------------------------------------------------
# the full demo grid (the CI matrix job's tier)
# --------------------------------------------------------------------------

@pytest.mark.matrix
@pytest.mark.slow
def test_demo_matrix_end_to_end_with_fanout():
    """The acceptance grid: 18 cells, 2 workers, all invariants prove.

    Every clean cell shows three-tier parity and hits its golden pin;
    every faulted cell recovers under supervision and converges
    byte-identically to its clean counterpart; a rerun reproduces the
    artifact byte for byte.
    """
    pins = GOLDENS["matrix_cycles"]
    matrix = demo_matrix()
    assert len(matrix.cells) == 18 and not matrix.excluded
    result = matrix.run(workers=2, goldens=pins)
    assert result["passed"], canonical_dumps(result)
    kinds = {c["check"] for c in result["checks"]}
    assert kinds == {
        "tier_cycles_equal", "tier_state_identical", "golden_cycles",
        "recovered", "converges_to_clean", "hold_causes_sum",
    }
    campaign = result["aggregate"]["campaign"]
    assert len(campaign) == 9
    assert all(g["recovery_rate"] == 1.0 for g in campaign.values())
    rerun = demo_matrix().run(workers=2, goldens=pins)
    assert canonical_dumps(result) == canonical_dumps(rerun)


@pytest.mark.matrix
@pytest.mark.slow
def test_ablation_matrix_passes_golden_pins():
    result = ablation_matrix().run(
        workers=2, goldens=GOLDENS["matrix_cycles"]
    )
    assert result["passed"], canonical_dumps(result)


@pytest.mark.matrix
@pytest.mark.slow
def test_monte_carlo_campaign_recovers_every_seed():
    matrix = monte_carlo_matrix(seeds=10)
    result = matrix.run(workers=2)
    assert result["passed"], canonical_dumps(result)
    (group,) = result["aggregate"]["campaign"].values()
    assert group["cells"] == 10
    assert group["recovery_rate"] == 1.0
