"""Byte-code assembler and emulator-context plumbing."""

import json

import pytest

from repro import Assembler, EmulatorError, FF
from repro.asm.program import Image
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import build_decode_table


def make():
    return BytecodeAssembler(build_decode_table())


def test_operand_encoding_byte_and_word():
    b = make()
    b.op("LIT", 200)
    b.op("LITW", 0x1234)
    assert b.assemble() == [0x01, 200, 0x02, 0x12, 0x34]


def test_labels_resolve_to_byte_addresses():
    b = make()
    b.op("NOP")
    b.label("here")
    b.op("JMP", "here")
    stream = b.assemble()
    assert b.address_of("here") == 1
    assert stream[2:4] == [0x00, 0x01]  # big-endian byte address


def test_forward_references():
    b = make()
    b.op("JMP", "later")
    b.op("NOP")
    b.label("later")
    b.op("HALT")
    assert b.assemble()[1:3] == [0x00, 0x04]


def test_here_property():
    b = make()
    assert b.here == 0
    b.op("LITW", 5)
    assert b.here == 3


def test_undefined_label_rejected():
    b = make()
    b.op("JMP", "nowhere")
    with pytest.raises(EmulatorError, match="nowhere"):
        b.assemble()


def test_duplicate_label_rejected():
    b = make()
    b.label("x")
    b.op("NOP")
    with pytest.raises(EmulatorError):
        b.label("x")


def test_wrong_operand_count():
    b = make()
    with pytest.raises(EmulatorError, match="operand"):
        b.op("LIT")
    with pytest.raises(EmulatorError, match="operand"):
        b.op("NOP", 1)


def test_byte_operand_range():
    b = make()
    with pytest.raises(EmulatorError, match="byte"):
        b.op("LIT", 300)


def test_label_in_byte_operand_rejected():
    b = make()
    with pytest.raises(EmulatorError, match="WORD"):
        b.op("LIT", "somewhere")


def test_pack_words_big_endian_and_padded():
    packed = BytecodeAssembler.pack_words([0x12, 0x34, 0x56])
    assert packed == [0x1234, 0x5600]


def test_unknown_mnemonic():
    b = make()
    with pytest.raises(EmulatorError):
        b.op("FROB")


# --- image serialization ----------------------------------------------------

def test_image_roundtrips_through_json():
    asm = Assembler()
    asm.register("x", 1)
    asm.label("entry")
    asm.emit(r="x", b=5, alu="B", load="RM")
    asm.emit(r="x", b="RM", ff=FF.TRACE)
    asm.halt()
    image = asm.assemble()
    blob = json.dumps(image.to_dict())
    restored = Image.from_dict(json.loads(blob))
    assert restored.words == image.words
    assert restored.symbols == image.symbols
    assert restored.entry == image.entry


def test_restored_image_runs():
    from repro import Processor

    asm = Assembler()
    asm.emit(b=9, alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.halt()
    restored = Image.from_dict(asm.assemble().to_dict())
    cpu = Processor()
    cpu.load_image(restored)
    cpu.run(100)
    assert cpu.console.trace == [9]
