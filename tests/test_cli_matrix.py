"""CLI flag matrix: every --no-trace/--supervise/--save-state combo.

Runs ``python -m repro`` in-process across the full 2x2x2 product of
the tier flag, the supervisor flag, and state saving -- plus the
fault-plan combinations -- asserting that the simulated cycle count is
flag-invariant (the tiers and the supervisor are simulator furniture,
not machine behaviour) and that each flag's artifact appears.  The
``repro.exp`` command line gets the same treatment underneath.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.exp.__main__ import main as exp_main

#: mesa_loop_sum's pinned production cycle count (tests/goldens.json).
MESA_CYCLES = json.loads(
    (__import__("pathlib").Path(__file__).parent / "goldens.json").read_text()
)["matrix_cycles"]["mesa_loop_sum@production"]

DEMO_PLAN = {
    "seed": 39,
    "storage_uncorrectable": 1,
    "map_faults": 1,
    "first_cycle": 0,
    "last_cycle": 2200,
}


@pytest.fixture
def fault_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(DEMO_PLAN))
    return str(path)


@pytest.mark.parametrize("no_trace", [False, True], ids=["traced", "no-trace"])
@pytest.mark.parametrize("supervise", [False, True], ids=["bare", "supervised"])
@pytest.mark.parametrize("save_state", [False, True], ids=["nosave", "save"])
def test_flag_combinations_run_verified(
    tmp_path, capsys, no_trace, supervise, save_state
):
    argv = ["--workload", "mesa_loop_sum"]
    if no_trace:
        argv.append("--no-trace")
    if supervise:
        argv += ["--supervise", "--checkpoint-interval", "600"]
    state_path = tmp_path / "state.json"
    if save_state:
        argv += ["--save-state", str(state_path)]

    assert repro_main(argv) == 0
    out = capsys.readouterr().out
    # The cycle count is the machine's, whatever the simulator flags.
    assert f"mesa_loop_sum: {MESA_CYCLES} cycles, verified" in out
    assert ("recovery report" in out) == supervise
    if supervise:
        assert "(no recovery actions; the run was clean)" in out
    assert state_path.exists() == save_state
    if save_state:
        snapshot = json.loads(state_path.read_text())
        assert snapshot  # canonical JSON machine state, non-empty


@pytest.mark.parametrize("no_trace", [False, True], ids=["traced", "no-trace"])
def test_fault_plan_with_supervision_recovers(
    capsys, fault_plan, no_trace
):
    argv = ["--workload", "mesa_loop_sum", "--supervise",
            "--checkpoint-interval", "600", "--fault-plan", fault_plan]
    if no_trace:
        argv.append("--no-trace")
    assert repro_main(argv) == 0
    out = capsys.readouterr().out
    assert f"mesa_loop_sum: {MESA_CYCLES} cycles, verified" in out
    assert "rollback" in out  # the demo plan forces real recoveries


def test_fault_plan_without_supervision_is_diagnosed(capsys, fault_plan):
    rc = repro_main(
        ["--workload", "mesa_loop_sum", "--fault-plan", fault_plan]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAILED" in out
    assert "fault trace" in out


def test_load_state_then_supervise_finishes_midrun_checkpoint(
    tmp_path, capsys
):
    """Restore a mid-run checkpoint and finish it under the Supervisor.

    This is the fleet's recovery-after-migration path: a session
    suspended mid-run resumes on a fresh machine and runs supervised to
    completion, landing on the golden cycle count.
    """
    from repro.perf.workloads import mesa_loop_sum

    donor = mesa_loop_sum()
    donor.ctx.run(3000)
    assert not donor.ctx.halted  # genuinely mid-run
    checkpoint = tmp_path / "mid.json"
    donor.ctx.cpu.snapshot().save(checkpoint)

    metrics = tmp_path / "metrics.json"
    assert repro_main([
        "--workload", "mesa_loop_sum",
        "--load-state", str(checkpoint),
        "--supervise", "--checkpoint-interval", "600",
        "--metrics-json", str(metrics),
    ]) == 0
    out = capsys.readouterr().out
    assert f"restored {checkpoint} (cycle 3000)" in out
    assert "recovery report" in out
    snapshot = json.loads(metrics.read_text())
    # The machine finishes exactly where an uninterrupted run would...
    assert snapshot["counters"]["cycles"] == MESA_CYCLES
    # ...and the reported run covers only the post-restore work.
    assert snapshot["workload"]["cycles"] == MESA_CYCLES - 3000
    assert f"mesa_loop_sum: {MESA_CYCLES - 3000} cycles, verified" in out


def test_load_state_supervise_resumes_faulted_recovery(
    tmp_path, capsys, fault_plan
):
    """A faulted run checkpointed mid-recovery finishes under --supervise."""
    import dataclasses

    from repro.config import PRODUCTION
    from repro.fault.plan import FaultConfig
    from repro.perf.workloads import mesa_loop_sum
    from repro.supervise import Supervisor

    config = dataclasses.replace(
        PRODUCTION, fault_injection=FaultConfig(**DEMO_PLAN)
    )
    donor = mesa_loop_sum(config=config)
    Supervisor(
        donor.ctx.cpu, checkpoint_interval=600, max_retries=3
    ).run(max_cycles=1500)
    assert not donor.ctx.cpu.halted
    checkpoint = tmp_path / "mid-faulted.json"
    donor.ctx.cpu.snapshot().save(checkpoint)

    metrics = tmp_path / "metrics.json"
    assert repro_main([
        "--workload", "mesa_loop_sum",
        "--fault-plan", fault_plan,
        "--load-state", str(checkpoint),
        "--supervise", "--checkpoint-interval", "600",
        "--metrics-json", str(metrics),
    ]) == 0
    out = capsys.readouterr().out
    assert f"restored {checkpoint}" in out
    assert "verified" in out and "recovery report" in out
    # Recovery converges: the finished machine sits on the clean count.
    snapshot = json.loads(metrics.read_text())
    assert snapshot["counters"]["cycles"] == MESA_CYCLES


def test_save_then_load_state_roundtrip(tmp_path, capsys):
    state = tmp_path / "end.json"
    assert repro_main(["--workload", "mesa_loop_sum",
                       "--save-state", str(state)]) == 0
    assert repro_main(["--workload", "mesa_loop_sum",
                       "--load-state", str(state)]) == 0
    out = capsys.readouterr().out
    assert f"restored {state}" in out


def test_flags_require_workload():
    with pytest.raises(SystemExit):
        repro_main(["--no-trace"])


# --------------------------------------------------------------------------
# the repro.exp command line
# --------------------------------------------------------------------------

def test_exp_list_names_everything(capsys):
    assert exp_main(["list"]) == 0
    out = capsys.readouterr().out
    for expected in ("demo", "ablation", "monte_carlo",
                     "production", "model0", "bypass_kernel_padded"):
        assert expected in out


def test_exp_run_describe_is_canonical_and_seeded(capsys):
    assert exp_main(["run", "demo", "--describe"]) == 0
    plan = json.loads(capsys.readouterr().out)
    assert plan["seed"] == 11  # the factory's own default seed
    assert len(plan["cells"]) == 18
    assert exp_main(["run", "demo", "--describe", "--seed", "5"]) == 0
    assert json.loads(capsys.readouterr().out)["seed"] == 5


def test_exp_run_report_diff_cycle(tmp_path, capsys):
    """run -> artifact -> report -> rerun -> diff, all through the CLI."""
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    base = ["run", "monte_carlo", "--seeds", "2", "--workers", "2",
            "--no-goldens"]
    assert exp_main(base + ["--output", str(first)]) == 0
    assert exp_main(base + ["--output", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    capsys.readouterr()

    assert exp_main(["report", str(first)]) == 0
    out = capsys.readouterr().out
    assert "PASSED" in out and "fault campaign" in out

    assert exp_main(["diff", str(first), str(second)]) == 0
    assert "identical" in capsys.readouterr().out

    doc = json.loads(first.read_text())
    cell = next(iter(doc["cells"]))
    doc["cells"][cell]["measurements"]["cycles"] += 1
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(doc))
    assert exp_main(["diff", str(first), str(tampered)]) == 1
    assert "cycles" in capsys.readouterr().out


def test_exp_run_unknown_matrix_errors(capsys):
    assert exp_main(["run", "nonesuch"]) == 2
    assert "unknown matrix" in capsys.readouterr().err
