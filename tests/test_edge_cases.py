"""Edge cases and error paths across the substrates."""

import pytest

from repro import Assembler, ConfigError, DeviceError, EmulatorError, Processor
from repro.io.device import Device, LoopbackDevice
from repro.mem.storage import Storage
from repro.types import MUNCH_WORDS


# --- storage ------------------------------------------------------------------

def test_storage_requires_munch_multiple():
    with pytest.raises(ConfigError):
        Storage(100)  # not a multiple of 16


def test_storage_load_bounds():
    storage = Storage(64)
    with pytest.raises(ConfigError):
        storage.load(60, [0] * 8)
    storage.load(0, [1, 2, 3])
    assert storage.dump(0, 3) == [1, 2, 3]


def test_storage_write_munch_length():
    storage = Storage(64)
    with pytest.raises(ConfigError):
        storage.write_munch(0, [0] * 8)


def test_storage_munch_base():
    assert Storage.munch_base(0x123) == 0x120
    assert Storage.munch_base(0x120) == 0x120


# --- device framework --------------------------------------------------------------

def test_device_without_task_cannot_request():
    device = LoopbackDevice(task=None)
    with pytest.raises(DeviceError, match="no task"):
        device.request_service()


def test_device_base_registers_unimplemented():
    device = Device("stub", task=5, io_address=0x70)
    with pytest.raises(DeviceError):
        device.read_register(0)
    with pytest.raises(DeviceError):
        device.write_register(0, 1)
    with pytest.raises(DeviceError):
        device.fast_deliver(0, [0] * MUNCH_WORDS)
    with pytest.raises(DeviceError):
        device.fast_supply(0)


def test_device_task_range_checked():
    with pytest.raises(DeviceError):
        Device("bad", task=0, io_address=0x70)
    with pytest.raises(DeviceError):
        Device("bad", task=16, io_address=0x70)


def test_loopback_fast_port_roundtrip():
    device = LoopbackDevice(task=None)
    words = list(range(MUNCH_WORDS))
    device.fast_deliver(0x40, words)
    assert device.fast_supply(0x40) == words
    assert device.fast_supply(0x80) == [0] * MUNCH_WORDS
    with pytest.raises(DeviceError):
        device.fast_deliver(0, [1, 2, 3])


# --- IFU configuration errors ------------------------------------------------------

def test_ifu_start_without_table():
    cpu = Processor()
    with pytest.raises(EmulatorError, match="decode table"):
        cpu.ifu.start(0)


# --- memory fault latch polarity -----------------------------------------------------

def test_read_faults_nonclearing():
    cpu = Processor()
    cpu.memory.identity_map(2)
    cpu.memory.start_fetch(0, 0, 0xF000)  # unmapped
    assert cpu.memory.read_faults(clear=False) != 0
    assert cpu.memory.read_faults(clear=False) != 0  # still latched
    assert cpu.memory.read_faults(clear=True) != 0
    assert cpu.memory.read_faults(clear=False) == 0


# --- assembler misc -------------------------------------------------------------------

def test_registers_bulk_define_and_conflict():
    asm = Assembler()
    asm.registers({"a": 1, "b": 2})
    asm.register("a", 1)  # same mapping: fine
    from repro import AssemblyError

    with pytest.raises(AssemblyError):
        asm.registers({"a": 3})


def test_empty_program_assembles():
    asm = Assembler()
    image = asm.assemble()
    assert len(image) == 0
    assert asm.report.pages_used == 0
    assert asm.report.utilization == 1.0


def test_counters_in_processor_track_slow_io():
    from repro import FF

    asm = Assembler()
    asm.emit(b=0x10, alu="B", load="T")
    asm.emit(b="T", ff=FF.IOADDRESS_B)
    asm.emit(b=1, alu="B", load="T")
    asm.emit(b="T", ff=FF.OUTPUT)
    asm.emit(b="INPUT", alu="B", load="T")
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.attach_device(LoopbackDevice(task=None, io_address=0x10))
    cpu.run(100)
    assert cpu.counters.slowio_words_out == 1
    assert cpu.counters.slowio_words_in == 1
