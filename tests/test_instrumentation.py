"""The instrumentation bus: composition, zero-cost idle, derived channels.

These lock down the observability-layer contract: multiple named
subscribers compose in either attach order with identical results,
attaching observers never perturbs the simulated machine, and the
zero-subscriber state is literally ``trace_hook is None`` (the plan
cache's fast path).
"""

import dataclasses
import json

import pytest

from repro import Assembler, Processor
from repro.config import INTERPRETED, PRODUCTION, MachineConfig
from repro.fault import FaultConfig
from repro.ifu.ifu import Ifu
from repro.perf.corebench import compare_to_baseline, run_corebench
from repro.perf.instrument import metrics_snapshot
from repro.perf.measure import OpcodeProfiler
from repro.perf.tracing import PipelineTracer
from repro.perf.workloads import mesa_loop_sum


def miss_machine():
    """Task 0 takes one long cold-miss hold (traced_machine's kernel)."""
    asm = Assembler()
    asm.register("addr", 1)
    asm.emit(r="addr", b=0x0200, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", load="T")
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    return cpu


# --------------------------------------------------------------------------
# subscriber management
# --------------------------------------------------------------------------

def test_install_requires_a_channel():
    cpu = miss_machine()
    with pytest.raises(ValueError):
        cpu.instruments.install("empty")


def test_duplicate_live_name_rejected():
    cpu = miss_machine()
    cpu.instruments.install("probe", cycle=lambda *a: None)
    with pytest.raises(ValueError):
        cpu.instruments.install("probe", cycle=lambda *a: None)


def test_uninstall_unknown_name_raises():
    cpu = miss_machine()
    with pytest.raises(KeyError):
        cpu.instruments.uninstall("ghost")


def test_names_report_installation_order():
    cpu = miss_machine()
    bus = cpu.instruments
    bus.install("b", cycle=lambda *a: None)
    bus.install("a", cycle=lambda *a: None)
    assert bus.names() == ("b", "a")
    assert "b" in bus and len(bus) == 2
    bus.uninstall("b")
    assert bus.names() == ("a",)
    bus.uninstall_all()
    assert len(bus) == 0


# --------------------------------------------------------------------------
# the zero-subscriber fast path and pristine teardown
# --------------------------------------------------------------------------

def test_idle_bus_leaves_hooks_none():
    w = mesa_loop_sum(20)
    cpu = w.ctx.cpu
    assert cpu.trace_hook is None and cpu.ifu.dispatch_hook is None

    tracer = PipelineTracer(cpu).install()
    profiler = OpcodeProfiler(w.ctx)
    assert cpu.trace_hook is not None and cpu.ifu.dispatch_hook is not None

    profiler.uninstall()
    tracer.uninstall()
    assert cpu.trace_hook is None
    assert cpu.ifu.dispatch_hook is None
    assert len(cpu.instruments) == 0


def test_profiler_does_not_monkey_patch_take_dispatch():
    w = mesa_loop_sum(20)
    profiler = OpcodeProfiler(w.ctx)
    # The dispatch feed is the IFU's first-class hook, never a wrapper
    # shadowing the bound method.
    assert "take_dispatch" not in w.ctx.cpu.ifu.__dict__
    assert type(w.ctx.cpu.ifu).take_dispatch is Ifu.take_dispatch
    w.run()
    profiler.uninstall()
    assert "take_dispatch" not in w.ctx.cpu.ifu.__dict__


def test_uninstall_is_idempotent_and_reinstallable():
    cpu = miss_machine()
    tracer = PipelineTracer(cpu).install()
    tracer.uninstall()
    tracer.uninstall()  # second detach is a no-op, not an error
    tracer.install()
    cpu.run(1000)
    assert len(tracer.records) == cpu.counters.cycles
    tracer.uninstall()
    assert cpu.trace_hook is None


# --------------------------------------------------------------------------
# composition: tracer + profiler, either order, same answers
# --------------------------------------------------------------------------

def _profiled_run(attach):
    """Run mesa_loop_sum(50) with observers attached per *attach*."""
    w = mesa_loop_sum(50)
    cpu = w.ctx.cpu
    tracer = profiler = None
    for kind in attach:
        if kind == "tracer":
            tracer = PipelineTracer(cpu).install()
        else:
            profiler = OpcodeProfiler(w.ctx)
    cycles = w.run()
    return cycles, tracer, profiler


def test_compose_either_order():
    cycles_t, tracer_alone, _ = _profiled_run(["tracer"])
    cycles_p, _, profiler_alone = _profiled_run(["profiler"])
    cycles_tp, tracer_tp, profiler_tp = _profiled_run(["tracer", "profiler"])
    cycles_pt, tracer_pt, profiler_pt = _profiled_run(["profiler", "tracer"])

    assert cycles_t == cycles_p == cycles_tp == cycles_pt
    # The profiler's table is identical alone and composed, both orders.
    assert profiler_tp.stats == profiler_alone.stats
    assert profiler_pt.stats == profiler_alone.stats
    # The tracer's records are identical alone and composed, both orders.
    assert list(tracer_tp.records) == list(tracer_alone.records)
    assert list(tracer_pt.records) == list(tracer_alone.records)


def test_observers_do_not_perturb_the_machine():
    bare = mesa_loop_sum(50)
    bare_cycles = bare.run()

    observed = mesa_loop_sum(50)
    tracer = PipelineTracer(observed.ctx.cpu).install()
    profiler = OpcodeProfiler(observed.ctx)
    observed_cycles = observed.run()
    tracer.uninstall()
    profiler.uninstall()

    assert observed_cycles == bare_cycles
    assert dataclasses.asdict(observed.ctx.cpu.counters) == dataclasses.asdict(
        bare.ctx.cpu.counters
    )


def test_foreign_direct_hook_chains_and_restores():
    cpu = miss_machine()
    seen = []
    original = lambda now, pc, inst, held: seen.append(now)  # noqa: E731
    cpu.trace_hook = original
    tracer = PipelineTracer(cpu).install()
    cpu.step()
    cpu.step()
    tracer.uninstall()
    cpu.step()
    assert len(seen) == 3  # the directly-assigned hook never missed a cycle
    assert len(tracer.records) == 2
    assert cpu.trace_hook is original  # restored exactly, not wrapped


# --------------------------------------------------------------------------
# derived channels: hold spans and task switches
# --------------------------------------------------------------------------

def test_hold_span_channel_reports_the_miss():
    cpu = miss_machine()
    starts, ends = [], []
    cpu.instruments.install(
        "spans",
        hold_start=lambda now, task, pc: starts.append((now, task)),
        hold_end=lambda now, task, pc, length: ends.append((now, task, length)),
    )
    cpu.run(1000)
    assert len(starts) == 1 and len(ends) == 1
    assert starts[0][1] == 0 and ends[0][1] == 0
    _, _, length = ends[0]
    assert length == cpu.counters.held_cycles
    assert length >= cpu.config.miss_penalty - 3


def test_task_switch_channel_matches_counters():
    from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode

    asm = Assembler()
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=32))
    cpu.attach_device(disk)
    disk.fill_sector(0, list(range(32)))
    switches = []
    cpu.instruments.install(
        "switches", task_switch=lambda now, prev, task: switches.append((prev, task))
    )
    disk.begin_read(cpu, sector=0, buffer_va=0x2000)
    cpu.run_until(lambda m: disk.done, max_cycles=20_000)
    assert switches, "a disk read must multiplex tasks"
    assert all(prev != task for prev, task in switches)
    assert {t for pair in switches for t in pair} == {0, DISK_TASK}


# --------------------------------------------------------------------------
# the fault channel
# --------------------------------------------------------------------------

def test_fault_channel_sees_every_record():
    config = MachineConfig(
        fault_injection=FaultConfig(seed=11, storage_correctable=1, last_cycle=0)
    )
    w = mesa_loop_sum(100, config=config)
    received = []
    w.ctx.cpu.instruments.install("faults", fault=received.append)
    w.run()
    injector = w.ctx.cpu.fault_injector
    assert injector is not None and injector.trace
    assert received == injector.trace


# --------------------------------------------------------------------------
# hold-cause attribution, on both cycle implementations
# --------------------------------------------------------------------------

def test_hold_causes_sum_and_parity():
    runs = {}
    for label, config in [("interp", INTERPRETED), ("plan", PRODUCTION)]:
        w = mesa_loop_sum(60, config=config)
        w.run()
        runs[label] = w.ctx.cpu.counters
    for counters in runs.values():
        assert sum(counters.hold_causes) == counters.held_cycles
        assert counters.held_cycles > 0
    assert runs["interp"].hold_causes == runs["plan"].hold_causes
    attribution = runs["plan"].hold_attribution()
    assert attribution["total"] == runs["plan"].held_cycles
    assert set(attribution) == {"storage_busy", "md_wait", "ifu_wait", "total"}


def test_cold_miss_attributed_to_md_wait():
    from repro.core.counters import HOLD_MD

    cpu = miss_machine()
    cpu.run(1000)
    causes = cpu.counters.hold_causes
    assert causes[HOLD_MD - 1] == cpu.counters.held_cycles > 0


# --------------------------------------------------------------------------
# the metrics snapshot and the CLI
# --------------------------------------------------------------------------

def test_metrics_snapshot_round_trips_as_json():
    w = mesa_loop_sum(50)
    w.run()
    snapshot = metrics_snapshot(w.ctx.cpu)
    decoded = json.loads(json.dumps(snapshot))
    assert decoded["schema"] == "repro.metrics/1"
    counters = w.ctx.cpu.counters
    assert decoded["counters"]["cycles"] == counters.cycles
    assert decoded["holds"]["total"] == counters.held_cycles
    assert decoded["tasks"]["0"]["utilization"] == 1.0
    assert decoded["ifu"]["dispatches"] == w.ctx.cpu.ifu.dispatches
    assert decoded["machine"]["plan_cache_enabled"] is True
    assert "faults" not in decoded  # no injector on a clean machine


def test_metrics_snapshot_includes_fault_section():
    config = MachineConfig(
        fault_injection=FaultConfig(seed=11, storage_correctable=1, last_cycle=0)
    )
    w = mesa_loop_sum(100, config=config)
    w.run()
    snapshot = json.loads(json.dumps(metrics_snapshot(w.ctx.cpu)))
    assert snapshot["faults"]["pending"] == 0
    assert snapshot["faults"]["trace"], "the injected fault must be in the trace"


def test_cli_profiles_and_writes_metrics(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "metrics.json"
    rc = main([
        "--workload", "mesa_loop_sum", "--trace", "--profile",
        "--metrics-json", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "per-opcode-class costs" in printed
    assert "dispatches" in printed and "cycles/disp" in printed
    assert "cycles 0.." in printed  # the timeline rendered
    metrics = json.loads(out.read_text())
    assert metrics["workload"]["name"] == "mesa_loop_sum"
    assert metrics["counters"]["cycles"] == metrics["workload"]["cycles"]


def test_cli_rejects_observers_without_workload(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["--profile"])
    assert "--workload" in capsys.readouterr().err


def test_cli_no_trace_runs_plan_only(capsys):
    from repro.__main__ import main

    rc = main(["--workload", "mesa_loop_sum", "--no-trace"])
    assert rc == 0
    assert "4807 cycles, verified" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main(["--no-trace"])
    assert "--workload" in capsys.readouterr().err


def test_cli_saves_and_loads_machine_state(tmp_path, capsys):
    from repro.__main__ import main

    state = tmp_path / "machine.json"
    rc = main(["--workload", "mesa_loop_sum", "--save-state", str(state)])
    assert rc == 0
    assert "saved" in capsys.readouterr().out
    assert state.exists()

    # Reload the finished machine: it verifies again without re-running.
    rc = main(["--workload", "mesa_loop_sum", "--load-state", str(state)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "restored" in printed
    assert "0 cycles, verified" in printed


def test_cli_rejects_state_flags_without_workload(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["--save-state", "x.json"])
    assert "--workload" in capsys.readouterr().err


# --------------------------------------------------------------------------
# corebench: the zero-subscriber pin and baseline comparison
# --------------------------------------------------------------------------

def test_corebench_runs_with_identical_cycle_counts():
    results = run_corebench(repeats=1)
    assert set(results) == {"E1_mesa_loop_sum", "E2_bitblt_copy", "E4_display_fast_io"}
    for row in results.values():
        assert row["simulated_cycles"] > 0
        assert row["speedup"] > 0
        assert row["traced_speedup"] > 0
        assert row["traced_cycles_per_second"] > 0


def test_corebench_cli_writes_report_and_checks_baseline(tmp_path, capsys):
    from repro.perf.corebench import main

    out = tmp_path / "bench.json"
    assert main(["--output", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    assert set(report["workloads"]) == {
        "E1_mesa_loop_sum", "E2_bitblt_copy", "E4_display_fast_io",
    }
    warm = report["warm_start"]
    assert warm["simulated_cycles"] > 0
    assert warm["warm_restore_seconds"] > 0
    # A rerun compared against its own fresh output must pass: cycles are
    # deterministic and the speedup floor tolerates timing noise.
    again = tmp_path / "bench2.json"
    rc = main([
        "--output", str(again), "--repeats", "1",
        "--baseline", str(out), "--tolerance", "0.9",
    ])
    assert rc == 0
    assert "baseline" in capsys.readouterr().out


def test_compare_to_baseline_flags_regressions():
    base = {
        "E1": {"simulated_cycles": 100, "speedup": 2.0},
        "E2": {"simulated_cycles": 200, "speedup": 4.0},
        "E3": {"simulated_cycles": 300, "speedup": 1.5},
    }
    good = {
        "E1": {"simulated_cycles": 100, "speedup": 1.9},
        "E2": {"simulated_cycles": 200, "speedup": 3.1},
        "E3": {"simulated_cycles": 300, "speedup": 1.6},
    }
    assert compare_to_baseline(good, base, tolerance=0.35) == []

    bad = {
        "E1": {"simulated_cycles": 101, "speedup": 2.0},   # cycle drift
        "E2": {"simulated_cycles": 200, "speedup": 1.0},   # perf regression
    }                                                      # E3 missing
    problems = compare_to_baseline(bad, base, tolerance=0.35)
    assert len(problems) == 3
    assert any("cycles changed" in p for p in problems)
    assert any("regressed" in p for p in problems)
    assert any("missing" in p for p in problems)


def test_compare_to_baseline_checks_traced_tier():
    base = {"E2": {"simulated_cycles": 200, "speedup": 4.0, "traced_speedup": 3.0}}
    good = {"E2": {"simulated_cycles": 200, "speedup": 4.0, "traced_speedup": 2.2}}
    assert compare_to_baseline(good, base, tolerance=0.35) == []

    bad = {"E2": {"simulated_cycles": 200, "speedup": 4.0, "traced_speedup": 1.5}}
    problems = compare_to_baseline(bad, base, tolerance=0.35)
    assert problems and "traced_speedup regressed" in problems[0]

    # A baseline written before the traced tier existed skips its check.
    old_base = {"E2": {"simulated_cycles": 200, "speedup": 4.0}}
    assert compare_to_baseline(bad, old_base, tolerance=0.35) == []
