"""Workload correctness and the experiment harness bands.

These assert that every experiment's *measured* values fall in the
bands the paper reports (the reproduction's headline claims) -- if a
change to the simulator drifts a number, these fail.
"""

import pytest

from repro.perf import report
from repro.perf.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_workload_computes_correct_result(name):
    workload = ALL_WORKLOADS[name]()
    cycles = workload.run()
    assert cycles > 0


def rows_dict(rows):
    return {metric: measured for metric, _, measured in rows}


def test_e1_mesa_load_store_band():
    rows = rows_dict(report.experiment_e1())
    assert 1.0 <= float(rows["Mesa load (LL)"]) <= 2.0
    assert float(rows["Mesa store (SL)"]) == 1.0
    assert 5.0 <= float(rows["Mesa read field (SETF+RF)"]) <= 11.0
    assert 3.0 <= float(rows["Lisp load (LLV)"]) <= 9.0
    ratio = float(rows["Lisp/Mesa call ratio"])
    assert 3.0 <= ratio <= 7.0, "Lisp calls must dwarf Mesa calls (paper: 4x)"


def test_e2_bitblt_band():
    rows = rows_dict(report.experiment_e2())
    simple = float(rows["BitBlt simple (scroll/move), Mbit/s"])
    complex_ = float(rows["BitBlt complex (src op dst), Mbit/s"])
    assert 25 <= simple <= 45, "paper: 34 Mbit/s"
    assert 18 <= complex_ <= 30, "paper: 24 Mbit/s"
    assert simple > complex_


def test_e3_disk_band():
    rows = rows_dict(report.experiment_e3())
    assert 8.5 <= float(rows["Disk transfer rate, Mbit/s"]) <= 11.0
    assert 0.03 <= float(rows["Disk read: processor fraction"]) <= 0.08


def test_e4_fastio_band():
    rows = rows_dict(report.experiment_e4())
    assert 480 <= float(rows["Fast I/O bandwidth, Mbit/s"]) <= 534
    occ = float(rows["Fast I/O processor fraction (2-cycle grain)"])
    assert 0.2 <= occ <= 0.3
    assert rows["Display underruns"] == "0"


def test_e5_grain_band():
    rows = rows_dict(report.experiment_e5())
    two = float(rows["Processor fraction, 2-instruction grain"])
    three = float(rows["Processor fraction, 3-instruction grain"])
    assert 0.2 <= two <= 0.3
    assert 0.33 <= three <= 0.42
    assert three > two


def test_e6_placement_band():
    rows = rows_dict(report.experiment_e6())
    assert float(rows["Microstore placement utilization"]) >= 0.98


def test_e8_bypass_slows_model0():
    rows = rows_dict(report.experiment_e8())
    slowdown = float(rows["Model 0 slowdown"].rstrip("x"))
    assert slowdown > 1.3


def test_e9_disk_nearly_free():
    rows = rows_dict(report.experiment_e9())
    slowdown = float(rows["Emulator slowdown from disk"].rstrip("x"))
    assert slowdown < 1.15
    assert int(rows["Disk task cycles absorbed"]) > 100


def test_e10_simple_macro_one_cycle():
    rows = rows_dict(report.experiment_e10())
    assert float(rows["Simple macroinstruction, cycles"]) == pytest.approx(1.0, abs=0.1)


def test_e11_storage_ceiling():
    rows = rows_dict(report.experiment_e11())
    assert rows["Storage ceiling, Mbit/s"] == "533"


def test_e12_wakeup_latency():
    rows = rows_dict(report.experiment_e12())
    assert int(rows["Wakeup-to-run latency, cycles"]) >= 2


def test_e13_stitchweld_ratio():
    rows = rows_dict(report.experiment_e13())
    ratio = float(rows["Multiwire slowdown"].rstrip("x"))
    assert ratio == pytest.approx(1.2, abs=0.01)  # 60/50 exactly


def test_all_experiments_render():
    for title, fn in report.ALL_EXPERIMENTS.items():
        rows = fn()
        text = report.format_rows(title, rows)
        assert title in text
        assert len(rows) >= 1
