"""Golden cycle-count regressions for the paper's headline numbers.

The simulator is deterministic, so the section 7 experiments always
measure exactly the same values.  These tests pin the measured strings
reported by ``repro.perf.report``: any change to the cycle-stepped core
-- including the execution-plan fast path, which must be purely a
simulator-speed optimization -- that shifts a cycle anywhere in the
BitBlt inner loop, the fast-I/O display service, or the task machinery
shows up here as a diff against the paper-adjacent figures (E2 BitBlt
Mbit/s, E4 fast-I/O occupancy 25%, E5 grain 25%/37.5%).

The pins themselves live in ``tests/goldens.json`` -- one
machine-readable file shared with the experiment matrix's
GoldenPinEvaluator (``repro.exp``), so every pinned number is defined
exactly once.
"""

import json
import pathlib

import pytest

from repro.config import INTERPRETED, PLAN_ONLY, PRODUCTION
from repro.perf.corebench import SCENARIOS
from repro.perf.report import experiment_e2, experiment_e4, experiment_e5

GOLDENS_PATH = pathlib.Path(__file__).parent / "goldens.json"
GOLDENS = json.loads(GOLDENS_PATH.read_text())

#: The corebench scenarios' simulated cycle counts, pinned exactly.
#: These are the denominators of every BENCH_core.json rate; a fast
#: tier that shifts one is a correctness bug, not an optimization.
COREBENCH_CYCLES = GOLDENS["corebench_cycles"]


def _measured(rows):
    return {metric: measured for metric, _paper, measured in rows}


def test_goldens_file_covers_corebench():
    """Every corebench scenario has a pin; no orphan pins linger."""
    assert set(COREBENCH_CYCLES) == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize(
    "tier,config",
    [("interp", INTERPRETED), ("plan", PLAN_ONLY), ("traced", PRODUCTION)],
)
def test_corebench_simulated_cycles_golden(name, tier, config):
    stage = SCENARIOS[name](config)
    assert stage()() == COREBENCH_CYCLES[name], (
        f"{name} on the {tier} tier drifted from the pinned cycle count"
    )


@pytest.mark.parametrize(
    "experiment,key",
    [(experiment_e2, "e2"), (experiment_e4, "e4"), (experiment_e5, "e5")],
    ids=["e2_bitblt", "e4_fast_io", "e5_task_grain"],
)
def test_report_strings_golden(experiment, key):
    rows = _measured(experiment())
    for metric, pinned in GOLDENS["report_strings"][key].items():
        assert rows[metric] == pinned, (
            f"{key}: {metric!r} drifted from the pinned string"
        )


def test_matrix_pins_agree_with_corebench():
    """The two pin namespaces agree where they overlap.

    E1 is mesa_loop_sum on the production config; its corebench pin and
    its matrix pin are the same measurement and must stay equal.
    """
    matrix = GOLDENS["matrix_cycles"]
    assert matrix["mesa_loop_sum@production"] == COREBENCH_CYCLES["E1_mesa_loop_sum"]


def test_paper_figures_within_tolerance():
    """The measured numbers stay near the paper's claims (sanity belt).

    The exact-string pins above catch any drift; this keeps the drift
    conversation honest by asserting we are actually reproducing the
    paper: 34/24 Mbit/s BitBlt (within 10%), 25% and 37.5% processor
    fractions (within 2.5 points).
    """
    e2 = _measured(experiment_e2())
    assert float(e2["BitBlt simple (scroll/move), Mbit/s"]) == pytest.approx(34, rel=0.10)
    assert float(e2["BitBlt complex (src op dst), Mbit/s"]) == pytest.approx(24, rel=0.10)
    e5 = _measured(experiment_e5())
    assert float(e5["Processor fraction, 2-instruction grain"]) == pytest.approx(0.25, abs=0.025)
    assert float(e5["Processor fraction, 3-instruction grain"]) == pytest.approx(0.375, abs=0.025)
