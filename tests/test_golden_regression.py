"""Golden cycle-count regressions for the paper's headline numbers.

The simulator is deterministic, so the section 7 experiments always
measure exactly the same values.  These tests pin the measured strings
reported by ``repro.perf.report``: any change to the cycle-stepped core
-- including the execution-plan fast path, which must be purely a
simulator-speed optimization -- that shifts a cycle anywhere in the
BitBlt inner loop, the fast-I/O display service, or the task machinery
shows up here as a diff against the paper-adjacent figures (E2 BitBlt
Mbit/s, E4 fast-I/O occupancy 25%, E5 grain 25%/37.5%).
"""

import pytest

from repro.config import INTERPRETED, PLAN_ONLY, PRODUCTION
from repro.perf.corebench import SCENARIOS
from repro.perf.report import experiment_e2, experiment_e4, experiment_e5


def _measured(rows):
    return {metric: measured for metric, _paper, measured in rows}


#: The corebench scenarios' simulated cycle counts, pinned exactly.
#: These are the denominators of every BENCH_core.json rate; a fast
#: tier that shifts one is a correctness bug, not an optimization.
COREBENCH_CYCLES = {
    "E1_mesa_loop_sum": 4807,
    "E2_bitblt_copy": 9508,
    "E4_display_fast_io": 1041,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize(
    "tier,config",
    [("interp", INTERPRETED), ("plan", PLAN_ONLY), ("traced", PRODUCTION)],
)
def test_corebench_simulated_cycles_golden(name, tier, config):
    stage = SCENARIOS[name](config)
    assert stage()() == COREBENCH_CYCLES[name], (
        f"{name} on the {tier} tier drifted from the pinned cycle count"
    )


def test_e2_bitblt_bandwidth_golden():
    rows = _measured(experiment_e2())
    assert rows["BitBlt simple (scroll/move), Mbit/s"] == "32.0"
    assert rows["BitBlt complex (src op dst), Mbit/s"] == "23.5"
    assert rows["BitBlt erase-only (extension), Mbit/s"] == "222.2"


def test_e4_fast_io_golden():
    rows = _measured(experiment_e4())
    assert rows["Fast I/O bandwidth, Mbit/s"] == "525"
    assert rows["Fast I/O processor fraction (2-cycle grain)"] == "0.246"
    assert rows["Display underruns"] == "0"


def test_e5_task_grain_golden():
    rows = _measured(experiment_e5())
    assert rows["Processor fraction, 2-instruction grain"] == "0.246"
    assert rows["Processor fraction, 3-instruction grain"] == "0.369"


def test_paper_figures_within_tolerance():
    """The measured numbers stay near the paper's claims (sanity belt).

    The exact-string pins above catch any drift; this keeps the drift
    conversation honest by asserting we are actually reproducing the
    paper: 34/24 Mbit/s BitBlt (within 10%), 25% and 37.5% processor
    fractions (within 2.5 points).
    """
    e2 = _measured(experiment_e2())
    assert float(e2["BitBlt simple (scroll/move), Mbit/s"]) == pytest.approx(34, rel=0.10)
    assert float(e2["BitBlt complex (src op dst), Mbit/s"]) == pytest.approx(24, rel=0.10)
    e5 = _measured(experiment_e5())
    assert float(e5["Processor fraction, 2-instruction grain"]) == pytest.approx(0.25, abs=0.025)
    assert float(e5["Processor fraction, 3-instruction grain"]) == pytest.approx(0.375, abs=0.025)
