"""Shared fixtures and helpers for the test suite."""

import pytest

from repro import Assembler, MachineConfig, Processor, PRODUCTION
from repro.core.functions import FF


@pytest.fixture
def asm():
    return Assembler()


@pytest.fixture
def cpu():
    machine = Processor()
    machine.memory.identity_map(256)
    return machine


def run_microcode(build, config: MachineConfig = PRODUCTION, max_cycles: int = 100_000):
    """Assemble microcode via *build(asm)*, run it to HALT, return the CPU.

    The builder receives an :class:`Assembler`; if it does not emit a
    HALT itself, one is appended.
    """
    asm = Assembler(config)
    build(asm)
    ops = asm.ops
    if not any(op.ff == int(FF.HALT) and not op.bsel.is_constant for op in ops):
        asm.halt()
    image = asm.assemble()
    machine = Processor(config)
    machine.load_image(image)
    machine.memory.identity_map(512)
    machine.run(max_cycles)
    assert machine.halted, "microcode did not reach HALT"
    return machine
