"""The microassembler DSL: encodings, conflicts, and conveniences."""

import pytest

from repro import Assembler, AssemblyError, BSel, FF, LoadControl, Processor
from repro.asm.assembler import constant_fields
from repro.core.microword import ASel


def test_constant_fields_forms():
    assert constant_fields(0x0042) == (BSel.CONST_LZ, 0x42)
    assert constant_fields(0x4200) == (BSel.CONST_HZ, 0x42)
    assert constant_fields(0xFF42) == (BSel.CONST_LO, 0x42)
    assert constant_fields(0x42FF) == (BSel.CONST_HO, 0x42)
    assert constant_fields(0x1234) is None


def test_constant_edge_values():
    # 0 and -1 are representable; byte-boundary values pick a valid form.
    assert constant_fields(0) is not None
    assert constant_fields(0xFFFF) is not None
    assert constant_fields(0x00FF) is not None
    assert constant_fields(0xFF00) is not None


def test_unrepresentable_constant_rejected():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="two microinstructions"):
        asm.emit(b=0x1234)


def test_load_constant_handles_any_value():
    asm = Assembler()
    asm.register("x", 1)
    asm.load_constant("x", 0x1234)
    asm.emit(r="x", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.run(100)
    assert cpu.console.trace == [0x1234]


def test_ff_conflict_constant_vs_function():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="FF conflict"):
        asm.emit(b=5, ff=FF.OUTPUT)


def test_ff_conflict_extb_vs_function():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="FF conflict"):
        asm.emit(b="MD", ff=FF.SHIFTCTL_B)


def test_ff_conflict_count_vs_membase():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="FF conflict"):
        asm.emit(count=3, membase=1)


def test_same_ff_twice_is_allowed():
    asm = Assembler()
    asm.emit(b="MD", ff=FF.EXTB_MEMDATA, idle=True)  # redundant but consistent
    assert asm.ops[0].ff == int(FF.EXTB_MEMDATA)


def test_fast_fetch_claims_ff():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="FF conflict"):
        asm.emit(a="RM", fetch="fast", b=16)


def test_register_names():
    asm = Assembler()
    asm.register("ptr", 3)
    index = asm.emit(r="ptr", idle=True)
    assert asm.ops[index].rsel == 3
    with pytest.raises(AssemblyError):
        asm.emit(r="nope", idle=True)
    with pytest.raises(AssemblyError):
        asm.register("ptr", 4)  # redefinition
    with pytest.raises(AssemblyError):
        asm.register("big", 16)


def test_stack_delta_encoding():
    asm = Assembler()
    asm.emit(stack=-1, idle=True)
    op = asm.ops[0]
    assert op.block and op.rsel == 0xF
    asm.emit(stack=7, idle=True)
    assert asm.ops[1].rsel == 7
    with pytest.raises(AssemblyError):
        asm.emit(stack=8, idle=True)
    with pytest.raises(AssemblyError):
        asm.emit(stack=1, r="ptr", idle=True)


def test_memory_reference_asel():
    asm = Assembler()
    asm.emit(a="RM", fetch=True, idle=True)
    asm.emit(a="T", store=True, idle=True)
    assert asm.ops[0].asel == ASel.RM_FETCH
    assert asm.ops[1].asel == ASel.T_STORE


def test_ifudata_address_uses_ff():
    asm = Assembler()
    asm.emit(a="IFUDATA", fetch=True, idle=True)
    assert asm.ops[0].ff == int(FF.A_IFUDATA)


def test_md_address_uses_ff():
    asm = Assembler()
    asm.emit(a="MD", store=True, idle=True)
    assert asm.ops[0].ff == int(FF.A_MD)


def test_fetch_and_store_conflict():
    asm = Assembler()
    with pytest.raises(AssemblyError):
        asm.emit(fetch=True, store=True, idle=True)


def test_multiple_successors_rejected():
    asm = Assembler()
    with pytest.raises(AssemblyError, match="multiple successors"):
        asm.emit(goto="a", ret=True)


def test_unknown_names_rejected():
    asm = Assembler()
    with pytest.raises(AssemblyError):
        asm.emit(alu="FROB", idle=True)
    with pytest.raises(AssemblyError):
        asm.emit(b="??", idle=True)
    with pytest.raises(AssemblyError):
        asm.emit(a="??", idle=True)
    with pytest.raises(AssemblyError):
        asm.emit(load="??", idle=True)
    with pytest.raises(AssemblyError):
        asm.emit(branch=("NEVER", "a", "b"))


def test_trailing_fallthrough_rejected():
    asm = Assembler()
    asm.emit()  # falls through to nothing
    with pytest.raises(AssemblyError, match="falls through"):
        asm.assemble()


def test_dangling_label_rejected():
    asm = Assembler()
    asm.emit(idle=True)
    asm.label("end")
    with pytest.raises(AssemblyError, match="no instruction"):
        asm.assemble()


def test_fallthrough_chains_execute_in_order():
    asm = Assembler()
    asm.register("acc", 1)
    asm.emit(r="acc", b=1, alu="B", load="RM")
    asm.emit(r="acc", a="RM", b=2, alu="ADD", load="RM")
    asm.emit(r="acc", a="RM", b=4, alu="ADD", load="RM")
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.run(100)
    assert cpu.console.trace == [7]


def test_loadcontrol_mapping():
    asm = Assembler()
    asm.emit(load="RM_T", idle=True)
    assert asm.ops[0].lc == LoadControl.RM_T
