"""Microinstruction encode/decode and field semantics."""

import pytest
from hypothesis import given, strategies as st

from repro import EncodingError
from repro.core.microword import (
    ASel,
    BSel,
    Condition,
    LoadControl,
    MICROWORD_BITS,
    MicroInstruction,
    Misc,
    NextControl,
    NextType,
    constant_value,
)


def random_instructions():
    return st.builds(
        MicroInstruction,
        rsel=st.integers(0, 15),
        aluop=st.integers(0, 15),
        bsel=st.sampled_from(list(BSel)),
        lc=st.sampled_from([LoadControl.NONE, LoadControl.T, LoadControl.RM, LoadControl.RM_T]),
        asel=st.sampled_from(list(ASel)),
        block=st.booleans(),
        ff=st.integers(0, 255),
        nc=st.integers(0, 255),
    )


@given(random_instructions())
def test_encode_decode_roundtrip(inst):
    bits = inst.encode()
    assert 0 <= bits < (1 << MICROWORD_BITS)
    assert MicroInstruction.decode(bits) == inst


@given(st.integers(0, (1 << MICROWORD_BITS) - 1))
def test_decode_encode_roundtrip(bits):
    try:
        decoded = MicroInstruction.decode(bits)
    except EncodingError:
        # Reserved LoadControl encodings are legitimately rejected.
        lc_bits = (bits >> 20) & 0x7
        assert lc_bits > int(LoadControl.RM_T)
        return
    assert decoded.encode() == bits


def test_word_is_34_bits():
    # Section 6.3.1: RAddress 4 + ALUOp 4 + BSelect 3 + LoadControl 3 +
    # ASelect 3 + Block 1 + FF 8 + NextControl 8 = 34.
    assert MICROWORD_BITS == 34
    full = MicroInstruction(
        rsel=15, aluop=15, bsel=BSel.CONST_HO, lc=LoadControl.RM_T,
        asel=ASel.T_STORE, block=True, ff=255, nc=255,
    )
    # All fields except LoadControl (3 = 0b011 in a 3-bit field) saturate.
    assert full.encode() == ((1 << 34) - 1) & ~(0x4 << 20)


def test_decode_rejects_reserved_loadcontrol():
    with pytest.raises(EncodingError):
        MicroInstruction.decode(0x7 << 20)


def test_field_overflow_rejected():
    with pytest.raises(EncodingError):
        MicroInstruction(rsel=16)
    with pytest.raises(EncodingError):
        MicroInstruction(ff=256)
    with pytest.raises(EncodingError):
        MicroInstruction(nc=-1)


def test_decode_rejects_wide_values():
    with pytest.raises(EncodingError):
        MicroInstruction.decode(1 << 34)


# --- the section 5.9 constant scheme ------------------------------------

@pytest.mark.parametrize(
    "bsel,ff,expected",
    [
        (BSel.CONST_LZ, 0x2A, 0x002A),
        (BSel.CONST_HZ, 0x2A, 0x2A00),
        (BSel.CONST_LO, 0xFB, 0xFFFB),  # small negative: -5
        (BSel.CONST_HO, 0x12, 0x12FF),
    ],
)
def test_constant_forms(bsel, ff, expected):
    assert constant_value(bsel, ff) == expected


def test_constant_requires_constant_bsel():
    with pytest.raises(EncodingError):
        constant_value(BSel.RM, 0)


def test_is_constant_predicate():
    assert BSel.CONST_LZ.is_constant
    assert BSel.CONST_HO.is_constant
    assert not BSel.RM.is_constant
    assert not BSel.EXTB.is_constant


# --- ASel helpers -----------------------------------------------------------

def test_asel_reference_predicates():
    assert ASel.RM_FETCH.starts_fetch and ASel.T_FETCH.starts_fetch
    assert ASel.RM_STORE.starts_store and ASel.T_STORE.starts_store
    assert not ASel.RM.starts_reference
    assert ASel.MEMDATA.uses_memdata
    assert ASel.IFUDATA.uses_ifudata


def test_load_control_predicates():
    assert LoadControl.T.loads_t and not LoadControl.T.loads_rm
    assert LoadControl.RM.loads_rm and not LoadControl.RM.loads_t
    assert LoadControl.RM_T.loads_t and LoadControl.RM_T.loads_rm
    assert not LoadControl.NONE.loads_t


# --- NextControl packing ------------------------------------------------------

def test_nextcontrol_pack_unpack():
    nc = NextControl.pack(NextType.GOTO, 42)
    assert NextControl.kind(nc) == NextType.GOTO
    assert NextControl.payload(nc) == 42


def test_nextcontrol_payload_range():
    with pytest.raises(EncodingError):
        NextControl.pack(NextType.GOTO, 64)


def test_branch_packing():
    nc = NextControl.branch(Condition.CARRY, 5)
    assert NextControl.kind(nc) == NextType.BRANCH
    assert NextControl.branch_condition(nc) == Condition.CARRY
    assert NextControl.branch_pair(nc) == 5


def test_branch_pair_limited_without_ff():
    # Only the first 8 pairs fit in NextControl (section 5.5 / DESIGN.md).
    with pytest.raises(EncodingError):
        NextControl.branch(Condition.ALU_ZERO, 8)


def test_stack_delta_two_complement():
    assert MicroInstruction(rsel=1).stack_delta == 1
    assert MicroInstruction(rsel=7).stack_delta == 7
    assert MicroInstruction(rsel=0xF).stack_delta == -1
    assert MicroInstruction(rsel=0x8).stack_delta == -8


def test_describe_is_stringy():
    inst = MicroInstruction(block=True, nc=NextControl.pack(NextType.MISC, int(Misc.RETURN) << 3))
    text = inst.describe()
    assert "BLOCK" in text and "RETURN" in text
