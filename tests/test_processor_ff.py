"""Remaining FF functions exercised through microcode."""

import pytest

from repro import Assembler, FF, Processor
from repro.core.alu import AluControl, AluFunc
from tests.conftest import run_microcode


def trace_of(build, **kw):
    return run_microcode(build, **kw).console.trace


def test_alufm_write_from_microcode():
    """The operation map is writeable at run time (section 6.3.3)."""

    def build(asm):
        control = AluControl(AluFunc.A_XOR_B).encode()
        asm.emit(b=control, alu="B", load="T")
        # Rewrite ALUFM slot 0 (normally ADD) to XOR, through slot 0's
        # own ALUOp field.
        asm.emit(b="T", alu=0, ff=FF.ALUFM_WRITE)
        asm.load_constant(2, 0x0F0F)
        asm.emit(r=2, b="RM", alu="B", load="T")
        asm.emit(a="T", b=0x00FF, alu=0, load="T")  # now XOR, not ADD
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x0F0F ^ 0x00FF]


def test_cache_flush_pushes_dirty_data_to_storage():
    def build(asm):
        asm.register("addr", 1)
        asm.emit(r="addr", b=0x0600, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=0x0042, alu="B", store=True)  # dirty line
        asm.emit(r="addr", a="RM", ff=FF.CACHE_FLUSH)

    cpu = run_microcode(build)
    assert cpu.memory.storage.read_word(0x600) == 0x42
    assert not cpu.memory.cache.contains(0x600)


def test_link_value_is_continuation_address():
    asm = Assembler()
    asm.label("main")
    asm.emit(call="sub")
    asm.label("after")
    asm.emit(ff=FF.HALT, idle=True)
    asm.label("sub")
    asm.emit(b="LINK", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE, ret=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.run(100)
    assert cpu.console.trace == [cpu.address_of("after")]


def test_ifu_reset_stops_dispatching():
    from repro.emulators.isa import BytecodeAssembler
    from repro.emulators.mesa import build_mesa_machine

    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)
    for _ in range(4):
        b.op("NOP")
    b.op("HALT")
    ctx.load_program(b.assemble())
    ctx.cpu.ifu.reset()
    # With the IFU stopped, NextMacro holds forever: bounded run.
    ctx.cpu.run(50)
    assert not ctx.cpu.halted
    assert ctx.cpu.counters.held_cycles > 40


def test_read_ioaddress_roundtrip():
    def build(asm):
        asm.emit(b=0x42, alu="B", load="T")
        asm.emit(b="T", ff=FF.IOADDRESS_B)
        asm.emit(ff=FF.READ_IOADDRESS, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x42]


def test_stackptr_b_selects_stack():
    def build(asm):
        asm.emit(b=0x80, alu="B", load="T")   # stack 2, word 0
        asm.emit(b="T", ff=FF.STACKPTR_B)
        asm.emit(stack=1, b=0x11, alu="B", load="RM")
        asm.emit(ff=FF.READ_STACKPTR, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    cpu = run_microcode(build)
    assert cpu.console.trace == [0x81]
    assert cpu.stack.memory[0x81] == 0x11  # landed in stack 2


def test_wp_fault_leaves_memory_unchanged():
    """A store to a write-protected page latches the fault and does not
    write (the emulator would take a trap on the FAULTS word)."""
    asm = Assembler()
    asm.register("addr", 1)
    asm.emit(r="addr", b=0x0010, alu="B", load="RM")
    asm.emit(r="addr", a="RM", b=0x0077, alu="B", store=True)
    asm.emit(b="FAULTS", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.translator.identity_map(8, write_protected_pages=8)
    cpu.run(100)
    assert cpu.console.trace[0] & 0x2  # FAULT_WRITE_PROTECT
    assert cpu.memory.storage.read_word(0x10) == 0


def test_mulstep_divstep_roundtrip():
    """x == (x / d) * d + (x % d) computed entirely in microcode."""

    def build(asm):
        asm.register("d", 1)
        asm.register("q", 2)
        asm.load_constant("d", 17)
        asm.load_constant(3, 12345)
        asm.emit(b=0, alu="B", load="T")
        asm.emit(r=3, b="RM", ff=FF.Q_B)
        for _ in range(16):
            asm.emit(r="d", a="RM", ff=FF.DIVSTEP)
        asm.emit(r="q", b="Q", alu="B", load="RM")   # quotient
        asm.emit(r=4, b="T", alu="B", load="RM")     # remainder
        # product = quotient * divisor via MULSTEP
        asm.emit(r="q", b="RM", alu="B", load="T")
        asm.emit(b="T", ff=FF.Q_B)
        asm.emit(b=0, alu="B", load="T")
        for _ in range(16):
            asm.emit(r="d", a="RM", ff=FF.MULSTEP)
        asm.emit(r=4, a="RM", b="Q", alu="ADD", load="T")  # + remainder
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [12345]
