"""The automatic instruction placer (section 5.5 / section 7)."""

import pytest

from repro import Assembler, MachineConfig, PlacementError, PRODUCTION, Processor, FF
from repro.asm.placer import place
from repro.core.microword import NextControl, NextType
from repro.core import functions


def assemble(build, config=PRODUCTION):
    asm = Assembler(config)
    build(asm)
    return asm.assemble(), asm


def test_branch_pair_layout():
    def build(asm):
        asm.label("top")
        asm.emit(branch=("ZERO", "t", "f"))
        asm.label("t")
        asm.emit(idle=True)
        asm.label("f")
        asm.emit(idle=True)

    image, _ = assemble(build)
    f_addr = image.address_of("f")
    t_addr = image.address_of("t")
    assert f_addr % 2 == 0, "false targets sit at even addresses (section 5.5)"
    assert t_addr == f_addr + 1, "true target at the next odd address"
    # All three share a page.
    page = image.address_of("top") // 64
    assert f_addr // 64 == page


def test_duplicate_branch_target_rejected():
    """Several conditional branches cannot share a target (section 5.5)."""

    def build(asm):
        asm.emit(branch=("ZERO", "shared", "f1"))
        asm.label("f1")
        asm.emit(branch=("CARRY", "shared", "f2"))
        asm.label("f2")
        asm.emit(idle=True)
        asm.label("shared")
        asm.emit(idle=True)

    with pytest.raises(PlacementError, match="duplicate the target"):
        assemble(build)


def test_same_pair_may_be_shared():
    def build(asm):
        asm.emit(branch=("ZERO", "t", "f"))
        asm.emit(branch=("CARRY", "t", "f"))
        asm.label("t")
        asm.emit(idle=True)
        asm.label("f")
        asm.emit(idle=True)

    image, _ = assemble(build)
    assert image.address_of("t") == image.address_of("f") + 1


def test_identical_branch_targets_rejected():
    def build(asm):
        asm.emit(branch=("ZERO", "x", "x"))
        asm.label("x")
        asm.emit(idle=True)

    with pytest.raises(PlacementError, match="identical"):
        assemble(build)


def test_call_continuation_is_adjacent():
    """LINK <- THISPC+1: the op after a call must be placed at +1."""

    def build(asm):
        asm.label("main")
        asm.emit(call="sub")
        asm.label("after")
        asm.emit(idle=True)
        asm.label("sub")
        asm.emit(ret=True)

    image, _ = assemble(build)
    assert image.address_of("after") == image.address_of("main") + 1


def test_chained_calls_form_runs():
    def build(asm):
        asm.label("c1")
        asm.emit(call="sub")
        asm.label("c2")
        asm.emit(call="sub")
        asm.label("end")
        asm.emit(idle=True)
        asm.label("sub")
        asm.emit(ret=True)

    image, _ = assemble(build)
    c1 = image.address_of("c1")
    assert image.address_of("c2") == c1 + 1
    assert image.address_of("end") == c1 + 2


def test_call_as_last_op_rejected():
    def build(asm):
        asm.label("sub")
        asm.emit(ret=True)
        asm.emit(call="sub")

    with pytest.raises(PlacementError, match="no continuation"):
        assemble(build)


def test_cross_page_goto_gets_jump_page_assist():
    """A free FF carries the page number; a busy FF forces same-page."""

    def build(asm):
        asm.label("a")
        # Enough filler to force multiple pages.
        for i in range(70):
            asm.emit(r=i % 16, goto=f"x{i}")
            asm.label(f"x{i}")
        asm.emit(goto="a")

    image, asm = assemble(build)
    assert asm.report.pages_used >= 2
    assert asm.report.ff_assists > 0
    # Execution still reaches everything: addresses resolve to real words.
    assert len(image.words) == len(asm.ops)


def test_busy_ff_forces_same_page():
    def build(asm):
        asm.label("a")
        asm.emit(ff=FF.TRACE, b="T", goto="b")  # FF busy: must share b's page
        asm.label("b")
        asm.emit(idle=True)

    image, _ = assemble(build)
    assert image.address_of("a") // 64 == image.address_of("b") // 64


def test_oversized_cluster_rejected():
    config = MachineConfig(page_size=16, im_size=1024)

    def build(asm):
        # A chain of busy-FF gotos all forced into one page, too big for it.
        for i in range(17):
            asm.label(f"n{i}")
            asm.emit(ff=FF.TRACE, b="T", goto=f"n{(i + 1) % 17}")

    with pytest.raises(PlacementError, match="exceeds"):
        assemble(build, config)


def test_dispatch8_run_alignment():
    def build(asm):
        targets = [f"d{i}" for i in range(8)]
        asm.label("disp")
        asm.emit(b="T", dispatch8=targets)
        for t in targets:
            asm.label(t)
            asm.emit(idle=True)

    image, _ = assemble(build)
    base = image.address_of("d0")
    assert base % 8 == 0
    for i in range(8):
        assert image.address_of(f"d{i}") == base + i


def test_dispatch8_wrong_count_rejected():
    def build(asm):
        asm.emit(dispatch8=["a", "b"])
        asm.label("a")
        asm.emit(idle=True)
        asm.label("b")
        asm.emit(idle=True)

    with pytest.raises(PlacementError, match="exactly 8"):
        assemble(build)


def test_undefined_label_rejected():
    def build(asm):
        asm.emit(goto="nowhere")

    with pytest.raises(PlacementError, match="nowhere"):
        assemble(build)


def test_duplicate_label_rejected():
    def build(asm):
        asm.label("x")
        asm.emit(idle=True)
        asm.label("x")
        asm.emit(idle=True)

    with pytest.raises(PlacementError, match="defined twice"):
        assemble(build)


def test_program_too_big_rejected():
    config = MachineConfig(im_size=128, page_size=64)

    def build(asm):
        for _ in range(150):
            asm.emit(idle=True)

    with pytest.raises(PlacementError, match="pages"):
        assemble(build, config)


def test_dispatch8_executes():
    asm = Assembler()
    asm.register("sel", 1)
    targets = [f"d{i}" for i in range(8)]
    asm.emit(r="sel", b=5, alu="B", load="RM")
    asm.emit(r="sel", b="RM", dispatch8=targets)
    for i, t in enumerate(targets):
        asm.label(t)
        asm.emit(b=i, alu="B", goto="out")
    asm.label("out")
    asm.emit(r="sel", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.run(100)
    assert cpu.halted


def test_utilization_reported():
    asm = Assembler()
    for i in range(100):
        asm.emit(idle=True)
    asm.assemble()
    report = asm.report
    assert report.instructions == 100
    assert report.pages_used == 2
    assert 0.7 < report.utilization <= 1.0


def test_high_fill_utilization():
    """The section 7 claim in miniature: a nearly full store places with
    very little waste."""
    from repro.perf.report import synthetic_microprogram

    asm = Assembler()
    synthetic_microprogram(asm, int(PRODUCTION.im_size * 0.9), seed=7)
    asm.assemble()
    assert asm.report.utilization > 0.98
