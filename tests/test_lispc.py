"""The mini-Interlisp compiler."""

import pytest

from repro.emulators.isa import BytecodeAssembler
from repro.emulators.lisp import build_lisp_machine
from repro.emulators.lispc import (
    LispCompileError,
    compile_lisp,
    read_program,
    run_lisp,
)


def trace_of(source, max_cycles=10_000_000):
    return run_lisp(source, max_cycles).cpu.console.trace


# --- the reader --------------------------------------------------------------

def test_reader_nesting():
    assert read_program("(a (b 1) 2)") == [["a", ["b", 1], 2]]


def test_reader_numbers_and_case():
    assert read_program("42 0x10 -3 FOO") == [42, 16, -3, "foo"]


def test_reader_comments():
    assert read_program("; hi\n(f 1) ; bye") == [["f", 1]]


@pytest.mark.parametrize("source", ["(a (b)", "(a))", "("])
def test_reader_unbalanced(source):
    with pytest.raises(LispCompileError):
        read_program(source)


# --- basics ---------------------------------------------------------------------

def test_literals_and_arithmetic():
    assert trace_of("(trace (+ 30 12)) (trace (- 50 8))") == [42, 42]


def test_setq_returns_and_persists():
    assert trace_of("(trace (setq x 7)) (trace (+ x 1))") == [7, 8]


def test_progn_value_is_last():
    assert trace_of("(trace (progn 1 2 3))") == [3]


def test_if_only_nil_is_false():
    assert trace_of("(trace (if nil 1 2))") == [2]
    assert trace_of("(trace (if 0 1 2))") == [1]  # 0 is truthy in Lisp
    assert trace_of("(trace (if (cons 1 nil) 1 2))") == [1]


def test_if_without_else_yields_nil():
    assert trace_of("(trace (if nil 5))") == [0]  # NIL's value word


def test_predicates():
    assert trace_of("(trace (null nil))") == [1]
    assert trace_of("(trace (null 3))") == [0]
    assert trace_of("(trace (zerop 0)) (trace (zerop 4))") == [1, 0]
    assert trace_of("(trace (eq 9 9)) (trace (eq 9 8))") == [1, 0]
    assert trace_of("(trace (atom 5)) (trace (atom (cons 1 nil)))") == [1, 0]


def test_list_construction_and_access():
    source = """
    (setq l (cons 1 (cons 2 nil)))
    (trace (car l))
    (trace (car (cdr l)))
    (trace (null (cdr (cdr l))))
    """
    assert trace_of(source) == [1, 2, 1]


def test_rplac_forms():
    source = """
    (setq l (cons 1 (cons 2 nil)))
    (rplacd l nil)
    (trace (null (cdr l)))
    """
    assert trace_of(source) == [1]


# --- functions ----------------------------------------------------------------------

def test_defun_and_call():
    source = """
    (defun add3 (a b c) (+ a (+ b c)))
    (trace (add3 10 20 12))
    """
    assert trace_of(source) == [42]


def test_recursion_with_deep_binding():
    source = """
    (defun down (n) (if (zerop n) 0 (+ 1 (down (- n 1)))))
    (trace (down 25))
    """
    assert trace_of(source) == [25]


def test_binding_restored_between_calls():
    source = """
    (defun probe (x) x)
    (setq x 111)
    (probe 5)
    (trace x)
    """
    assert trace_of(source) == [111]


def test_mutual_recursion():
    source = """
    (defun evenp (n) (if (zerop n) 1 (oddp (- n 1))))
    (defun oddp (n) (if (zerop n) nil (evenp (- n 1))))
    (trace (evenp 8))
    (trace (if (oddp 8) 1 0))
    """
    assert trace_of(source) == [1, 0]


def test_list_sum_program():
    source = """
    (defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
    (defun build (n) (if (zerop n) nil (cons n (build (- n 1)))))
    (trace (sum (build 12)))
    """
    assert trace_of(source) == [sum(range(1, 13))]


def test_mapcar_style_program():
    source = """
    (defun double-all (l)
      (if (null l) nil (cons (+ (car l) (car l)) (double-all (cdr l)))))
    (defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
    (setq l (cons 3 (cons 4 nil)))
    (trace (sum (double-all l)))
    """
    assert trace_of(source) == [14]


# --- rejection ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "source,match",
    [
        ("(nosuch 1)", "unknown form"),
        ("(defun f (a) a) (trace (f 1 2))", "takes 1 args"),
        ("(defun f (a) a) (defun f (a) a)", "twice"),
        ("(car 1 2)", "takes 1 args"),
        ("(quote (a b))", "quote"),
        ("(if)", "malformed if"),
    ],
)
def test_rejections(source, match):
    ctx = build_lisp_machine()
    with pytest.raises(LispCompileError, match=match):
        compile_lisp(source, BytecodeAssembler(ctx.table))


def test_runtime_type_error_still_traps():
    """Compiled code keeps Lisp's runtime checking: car of an int traps."""
    from repro import MicrocodeCrash

    with pytest.raises(MicrocodeCrash):
        run_lisp("(trace (car 5))")
