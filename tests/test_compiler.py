"""The mini-Mesa compiler: source programs down to byte codes to traces."""

import pytest

from repro.emulators.compiler import CompileError, compile_source, run_source
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import build_mesa_machine


def trace_of(source, max_cycles=5_000_000):
    return run_source(source, max_cycles).cpu.console.trace


def test_arithmetic_and_precedence():
    assert trace_of("proc main() { trace(2 + 3 * 4); }") == [14]
    assert trace_of("proc main() { trace((2 + 3) * 4); }") == [20]
    assert trace_of("proc main() { trace(10 - 2 - 3); }") == [5]  # left assoc


def test_division_runs_hardware_divsteps():
    assert trace_of("proc main() { trace(1000 / 7); trace(1000 % 7); }") == [142, 6]


def test_sixteen_bit_wraparound():
    assert trace_of("proc main() { trace(40000 + 40000); }") == [(80000) & 0xFFFF]
    assert trace_of("proc main() { trace(0 - 1); }") == [0xFFFF]


@pytest.mark.parametrize(
    "expr,expected",
    [
        ("3 < 5", 1), ("5 < 3", 0), ("5 > 3", 1),
        ("4 == 4", 1), ("4 == 5", 0), ("4 != 5", 1), ("4 != 4", 0),
        ("!1", 0), ("!0", 1), ("-7", 0xFFF9),
    ],
)
def test_comparisons_and_unary(expr, expected):
    assert trace_of(f"proc main() {{ trace({expr}); }}") == [expected]


def test_variables_and_while():
    source = """
    proc main() {
        var total = 0;
        var i = 10;
        while i {
            total = total + i;
            i = i - 1;
        }
        trace(total);
    }
    """
    assert trace_of(source) == [55]


def test_if_else_branches():
    source = """
    proc pick(x) {
        if x < 10 { return 1; } else { return 2; }
    }
    proc main() { trace(pick(3)); trace(pick(30)); }
    """
    assert trace_of(source) == [1, 2]


def test_if_without_else():
    source = """
    proc main() {
        var x = 0;
        if 1 { x = 7; }
        if 0 { x = 9; }
        trace(x);
    }
    """
    assert trace_of(source) == [7]


def test_recursion():
    source = """
    proc fact(n) {
        if n == 0 { return 1; }
        return n * fact(n - 1);
    }
    proc main() { trace(fact(7)); }
    """
    assert trace_of(source) == [5040]


def test_mutual_recursion():
    source = """
    proc even(n) { if n == 0 { return 1; } return odd(n - 1); }
    proc odd(n)  { if n == 0 { return 0; } return even(n - 1); }
    proc main() { trace(even(10)); trace(odd(10)); }
    """
    assert trace_of(source) == [1, 0]


def test_multiple_arguments():
    source = """
    proc mix(a, b, c) { return a * 100 + b * 10 + c; }
    proc main() { trace(mix(1, 2, 3)); }
    """
    assert trace_of(source) == [123]


def test_mem_access():
    source = """
    proc main() {
        mem[0x3800] = 41;
        mem[0x3801] = mem[0x3800] + 1;
        trace(mem[0x3801]);
    }
    """
    assert trace_of(source) == [42]


def test_expression_statement_is_dropped():
    source = """
    proc side() { mem[0x3900] = 5; return 99; }
    proc main() { side(); trace(mem[0x3900]); }
    """
    assert trace_of(source) == [5]


def test_comments_ignored():
    assert trace_of("proc main() { # hello\n trace(1); # bye\n }") == [1]


def test_sieve_program():
    """A fuller program: count primes below 50 with a sieve in memory."""
    source = """
    proc main() {
        var i = 2;
        while i < 50 { mem[0x4800 + i] = 1; i = i + 1; }
        i = 2;
        while i < 50 {
            if mem[0x4800 + i] {
                var j = i + i;
                while j < 50 { mem[0x4800 + j] = 0; j = j + i; }
            }
            i = i + 1;
        }
        var count = 0;
        i = 2;
        while i < 50 {
            if mem[0x4800 + i] { count = count + 1; }
            i = i + 1;
        }
        trace(count);
    }
    """
    assert trace_of(source) == [15]  # primes < 50


# --- rejection -------------------------------------------------------------

@pytest.mark.parametrize(
    "source,match",
    [
        ("proc f() {}", "no proc main"),
        ("proc main(x) {}", "no parameters"),
        ("proc main() { return 1; }", "main cannot return"),
        ("proc main() { trace(nosuch(1)); }", "unknown proc"),
        ("proc f(a) { return a; } proc main() { trace(f(1, 2)); }", "takes 1 args"),
        ("proc main() { var x = 1; var x = 2; }", "declared twice"),
        ("proc main() { trace(y); }", "undeclared"),
        ("proc main() { trace(1) }", "expected ;"),
        ("proc main() { } proc main() { }", "defined twice"),
    ],
)
def test_rejections(source, match):
    with pytest.raises(CompileError, match=match):
        ctx = build_mesa_machine()
        compile_source(source, BytecodeAssembler(ctx.table))


def test_too_many_locals_rejected():
    declarations = "".join(f"var v{i} = 0; " for i in range(15))
    with pytest.raises(CompileError, match="locals"):
        ctx = build_mesa_machine()
        compile_source(
            f"proc main() {{ {declarations} }}", BytecodeAssembler(ctx.table)
        )
