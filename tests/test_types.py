"""Unit tests for the word-level helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.types import (
    bit,
    field,
    from_signed,
    high_byte,
    low_byte,
    make_word,
    ones_mask,
    rotate_left_32,
    signed,
    word,
)

words = st.integers(min_value=0, max_value=0xFFFF)


def test_word_truncates():
    assert word(0x1FFFF) == 0xFFFF
    assert word(-1) == 0xFFFF
    assert word(0) == 0


def test_signed_interpretation():
    assert signed(0x7FFF) == 32767
    assert signed(0x8000) == -32768
    assert signed(0xFFFF) == -1
    assert signed(0) == 0


@given(st.integers(min_value=-32768, max_value=32767))
def test_signed_roundtrip(value):
    assert signed(from_signed(value)) == value


@given(words)
def test_byte_split_roundtrip(value):
    assert make_word(high_byte(value), low_byte(value)) == value


def test_bit_extraction():
    assert bit(0b1000, 3) == 1
    assert bit(0b1000, 2) == 0
    assert bit(0x8000, 15) == 1


def test_field_extraction():
    assert field(0b1011_0100, 5, 2) == 0b1101
    assert field(0xFFFF, 15, 0) == 0xFFFF
    assert field(0xF0, 7, 4) == 0xF


@given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(min_value=0, max_value=64))
def test_rotate_preserves_bits(value, amount):
    rotated = rotate_left_32(value, amount)
    assert bin(rotated).count("1") == bin(value & 0xFFFFFFFF).count("1")
    assert rotate_left_32(rotated, 32 - (amount % 32)) == value & 0xFFFFFFFF


def test_rotate_identity():
    assert rotate_left_32(0x12345678, 0) == 0x12345678
    assert rotate_left_32(0x12345678, 32) == 0x12345678


def test_ones_mask():
    assert ones_mask(0) == 0
    assert ones_mask(4) == 0xF
    assert ones_mask(16) == 0xFFFF
    assert ones_mask(-1) == 0
