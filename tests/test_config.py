"""MachineConfig validation and derived quantities."""

import pytest

from repro import ConfigError, MachineConfig, MODEL0, PRODUCTION, STITCHWELD


def test_production_defaults_match_paper():
    assert PRODUCTION.cycle_ns == 60.0       # section 1: 60 ns microcycle
    assert PRODUCTION.im_size == 4096        # 4K x 34-bit IM chips
    assert PRODUCTION.storage_cycle == 8     # one munch per 8 cycles
    assert PRODUCTION.cache_hit_cycles == 2  # two-cycle cache latency
    assert PRODUCTION.num_base_registers == 32
    assert PRODUCTION.bypass_enabled


def test_stitchweld_is_faster():
    assert STITCHWELD.cycle_ns == 50.0


def test_model0_lacks_bypass():
    assert not MODEL0.bypass_enabled


def test_num_pages():
    assert PRODUCTION.num_pages == 64


def test_seconds_conversion():
    assert PRODUCTION.seconds(1_000_000) == pytest.approx(0.06)


def test_bandwidth_conversion():
    # 16 words of 16 bits in 8 cycles at 60 ns = 533 Mbit/s (section 6.2.1).
    assert PRODUCTION.megabits_per_second(256, 8) == pytest.approx(533.3, abs=0.1)


def test_bandwidth_zero_cycles_rejected():
    with pytest.raises(ConfigError):
        PRODUCTION.megabits_per_second(16, 0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cycle_ns": 0},
        {"cycle_ns": -5},
        {"im_size": 1000},
        {"page_size": 48},
        {"page_size": 128},
        {"page_size": 8192},
        {"cache_lines": 10, "cache_ways": 3},
        {"cache_hit_cycles": 0},
        {"miss_penalty": 1},
        {"storage_cycle": 0},
        {"storage_words": 0},
        {"task_grain": 4},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        MachineConfig(**kwargs)


def test_page_size_must_divide_im():
    with pytest.raises(ConfigError):
        MachineConfig(im_size=4096, page_size=4096 * 2)
