"""Microcoded diagnostics: the machine checking itself."""

import pytest

from repro import Assembler, MicrocodeCrash, Processor
from repro.asm.diagnostics import (
    PASS,
    REG_ADDR,
    REG_SUM,
    alu_selftest_microcode,
    expected_im_checksum,
    im_checksum_microcode,
    rm_march_microcode,
)
from repro.core.microword import MicroInstruction


def machine(build):
    asm = Assembler()
    build(asm)
    image = asm.assemble()
    cpu = Processor()
    cpu.load_image(image)
    return cpu, image


def test_im_checksum_matches_host():
    cpu, image = machine(im_checksum_microcode)
    start, count = 0, 64  # the diagnostic's own page
    cpu.regs.write_rm_absolute(REG_ADDR, start)
    cpu.regs.write_rm_absolute(REG_SUM, 0)
    cpu.regs.write_count(count - 1)
    cpu.boot(cpu.address_of("diag.imsum"))
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace == [expected_im_checksum(image, start, count)]


def test_im_checksum_detects_corruption():
    cpu, image = machine(im_checksum_microcode)
    golden = expected_im_checksum(image, 0, 64)
    # Corrupt one word that the checksum covers but execution does not
    # reach (an unused slot): flip an uninitialized word to something.
    hole = next(a for a in range(64) if cpu.im[a] is None)
    cpu.im[hole] = MicroInstruction(rsel=1)
    cpu.regs.write_rm_absolute(REG_ADDR, 0)
    cpu.regs.write_rm_absolute(REG_SUM, 0)
    cpu.regs.write_count(63)
    cpu.boot(cpu.address_of("diag.imsum"))
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace != [golden]


def test_rm_march_passes_on_healthy_ram():
    cpu, _ = machine(rm_march_microcode)
    cpu.boot(cpu.address_of("diag.rmtest"))
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace == [PASS]


def test_rm_march_catches_injected_fault():
    """Break the RAM mid-run (a stuck bit) and the march must trap."""
    cpu, _ = machine(rm_march_microcode)
    cpu.boot(cpu.address_of("diag.rmtest"))
    # Let the writes finish, then clobber a register before the checks.
    for _ in range(18):
        cpu.step()
    cpu.regs.write_rm_absolute(7, 0x80)  # stuck bit in register 7
    with pytest.raises(MicrocodeCrash, match="breakpoint"):
        cpu.run(10_000)


def test_rm_march_in_other_bank():
    cpu, _ = machine(rm_march_microcode)
    cpu.regs.write_rbase(0, 5)  # march bank 5 instead
    cpu.boot(cpu.address_of("diag.rmtest"))
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace == [PASS]
    assert cpu.regs.read_rm_absolute(5 * 16 + 9) == 9  # pattern landed there


def test_alu_selftest_passes():
    cpu, _ = machine(alu_selftest_microcode)
    cpu.boot(cpu.address_of("diag.alutest"))
    cpu.run(20_000)
    assert cpu.halted
    assert cpu.console.trace == [PASS]


def test_alu_selftest_catches_broken_alufm():
    """Reprogram one ALUFM slot behind the diagnostic's back: trap."""
    from repro.core.alu import AluControl, AluFunc

    cpu, _ = machine(alu_selftest_microcode)
    cpu.alu.write_alufm(0, AluControl(AluFunc.A_MINUS_B).encode())  # ADD slot
    cpu.boot(cpu.address_of("diag.alutest"))
    with pytest.raises(MicrocodeCrash, match="breakpoint"):
        cpu.run(20_000)


def test_all_diagnostics_coexist_in_one_image():
    def build(asm):
        im_checksum_microcode(asm)
        rm_march_microcode(asm)
        alu_selftest_microcode(asm)

    cpu, _ = machine(build)
    cpu.boot(cpu.address_of("diag.alutest"))
    cpu.run(20_000)
    assert cpu.halted and cpu.console.trace == [PASS]
