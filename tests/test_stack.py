"""The hardware stacks (section 6.3.3)."""

from hypothesis import given, strategies as st

from repro.core.stack import STACKS, STACK_WORDS, WORDS_PER_STACK, StackUnit


def push(stack, value):
    """One-microinstruction push: adjust +1, write at the new pointer."""
    stack.adjust(1)
    stack.write_top(value)


def pop(stack):
    """One-microinstruction pop: read, adjust -1."""
    value = stack.read_top()
    stack.adjust(-1)
    return value


def test_geometry():
    assert STACK_WORDS == 256 and STACKS == 4 and WORDS_PER_STACK == 64


def test_push_pop_lifo():
    stack = StackUnit()
    for v in (10, 20, 30):
        push(stack, v)
    assert pop(stack) == 30
    assert pop(stack) == 20
    assert pop(stack) == 10


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=60))
def test_push_pop_roundtrip(values):
    stack = StackUnit()
    for v in values:
        push(stack, v)
    assert stack.depth() == len(values)
    for v in reversed(values):
        assert pop(stack) == v
    assert not stack.any_error


def test_replace_top_with_zero_delta():
    stack = StackUnit()
    push(stack, 5)
    stack.adjust(0)
    stack.write_top(99)
    assert stack.read_top() == 99


def test_four_independent_stacks():
    stack = StackUnit()
    for n in range(4):
        stack.select_stack(n)
        push(stack, 1000 + n)
    for n in range(4):
        stack.select_stack(n)
        stack.adjust(0)
        # read back what was pushed on stack n (pointer = base + 1)
        stack.write_pointer((n << 6) | 1)
        assert stack.read_top() == 1000 + n


def test_overflow_sets_flag_and_wraps():
    stack = StackUnit()
    stack.write_pointer(0x3F)  # top of stack 0
    stack.adjust(1)
    assert stack.overflow[0]
    assert stack.word_index == 0  # wrapped within the stack
    assert stack.stack_number == 0  # did not leak into stack 1


def test_underflow_sets_flag():
    stack = StackUnit()
    stack.select_stack(2)
    stack.adjust(-1)
    assert stack.underflow[2]
    assert stack.stack_number == 2


def test_error_flags_packing():
    stack = StackUnit()
    stack.overflow[1] = True
    stack.underflow[3] = True
    flags = stack.error_flags()
    assert flags == (1 << 1) | (1 << (4 + 3))
    stack.clear_errors()
    assert stack.error_flags() == 0
    assert not stack.any_error


def test_large_delta():
    stack = StackUnit()
    stack.adjust(7)
    assert stack.word_index == 7
    stack.adjust(-8)
    assert stack.underflow[0]
