"""The housekeeping timer task: periodic 32-bit ticks in memory."""

from repro import Assembler, Processor
from repro.io.timer import TIMER_TASK, TimerDevice, timer_microcode

COUNTER_VA = 0x2000


def machine(interval=100):
    asm = Assembler()
    asm.emit(idle=True)
    timer_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    timer = TimerDevice(interval_cycles=interval)
    cpu.attach_device(timer)
    return cpu, timer


def counter_value(cpu):
    return (cpu.memory.debug_read(COUNTER_VA + 1) << 16) | cpu.memory.debug_read(COUNTER_VA)


def test_timer_ticks_at_interval():
    cpu, timer = machine(interval=100)
    timer.start(cpu, COUNTER_VA)
    for _ in range(1050):
        cpu.step()
    assert counter_value(cpu) == 10
    assert timer.ticks_raised == 10


def test_timer_carries_into_high_word():
    cpu, timer = machine(interval=50)
    # Pre-load the low word just below overflow.
    cpu.memory.debug_write(COUNTER_VA, 0xFFFE)
    timer.start(cpu, COUNTER_VA)
    for _ in range(170):
        cpu.step()
    # Three ticks: 0xFFFE -> 0xFFFF -> 0x1_0000 -> 0x1_0001.
    assert counter_value(cpu) == 0x10001


def test_timer_runs_beside_emulator_work():
    cpu, timer = machine(interval=60)
    timer.start(cpu, COUNTER_VA)
    for _ in range(600):
        cpu.step()
    counters = cpu.counters
    # The timer costs 8 instructions (plus one hold) per tick.
    per_tick = counters.task_cycles[TIMER_TASK] / timer.ticks_raised
    assert 7 <= per_tick <= 12
    assert counters.task_cycles[0] > 0  # task 0 kept running in between


def test_timer_stop():
    cpu, timer = machine(interval=40)
    timer.start(cpu, COUNTER_VA)
    for _ in range(200):
        cpu.step()
    timer.stop()
    for _ in range(50):
        cpu.step()  # let any in-flight service finish
    ticks = counter_value(cpu)
    for _ in range(200):
        cpu.step()
    assert counter_value(cpu) == ticks
