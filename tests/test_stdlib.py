"""The microcode standard library."""

import pytest

from repro import Assembler, FF, Processor
from repro.asm import stdlib


def machine(build_main, *routines, link_stack_va=0x0F00):
    asm = Assembler()
    stdlib.register_names(asm)
    asm.label("main")
    build_main(asm)
    for routine in routines:
        routine(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    cpu.regs.write_rm_absolute(stdlib.REG_LSP, link_stack_va)
    cpu.boot(cpu.address_of("main"))
    return cpu


def test_memcpy():
    def main(asm):
        asm.emit(r="lib.src", b=0x0200, alu="B", load="RM")
        asm.emit(r="lib.dst", b=0x0300, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=20, alu="B", load="RM")
        asm.emit(call="lib.memcpy")
        asm.halt()

    cpu = machine(main, stdlib.memcpy_microcode)
    for i in range(20):
        cpu.memory.storage.write_word(0x200 + i, 0x700 + i)
    cpu.run(10_000)
    assert cpu.halted
    assert [cpu.memory.debug_read(0x300 + i) for i in range(20)] == [
        0x700 + i for i in range(20)
    ]
    assert cpu.regs.read_rm_absolute(stdlib.REG_CNT) == 0


def test_memcpy_zero_count():
    def main(asm):
        asm.emit(r="lib.src", b=0x0200, alu="B", load="RM")
        asm.emit(r="lib.dst", b=0x0300, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=0, alu="B", load="RM")
        asm.emit(call="lib.memcpy")
        asm.halt()

    cpu = machine(main, stdlib.memcpy_microcode)
    cpu.memory.storage.write_word(0x300, 0xAAAA)
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.memory.debug_read(0x300) == 0xAAAA  # untouched


def test_memset():
    def main(asm):
        asm.emit(r="lib.dst", b=0x0400, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=12, alu="B", load="RM")
        asm.emit(b=0x5A, alu="B", load="T")
        asm.emit(call="lib.memset")
        asm.halt()

    cpu = machine(main, stdlib.memset_microcode)
    cpu.run(10_000)
    assert all(cpu.memory.debug_read(0x400 + i) == 0x5A for i in range(12))
    assert cpu.memory.debug_read(0x400 + 12) == 0


def test_checksum():
    def main(asm):
        asm.emit(r="lib.src", b=0x0500, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=10, alu="B", load="RM")
        asm.emit(call="lib.checksum")
        asm.emit(b="T", ff=FF.TRACE)
        asm.halt()

    cpu = machine(main, stdlib.checksum_microcode)
    values = [(37 * i + 11) & 0xFFFF for i in range(10)]
    for i, v in enumerate(values):
        cpu.memory.storage.write_word(0x500 + i, v)
    cpu.run(10_000)
    assert cpu.console.trace == [sum(values) & 0xFFFF]


def test_recursive_microcode_via_link_stack():
    """The section 6.2.3 idiom: a memory stack of LINKs lets microcode
    recurse despite the single hardware LINK register."""

    def main(asm):
        asm.emit(b=10, alu="B", load="T")
        asm.emit(call="lib.tri")
        asm.emit(b="T", ff=FF.TRACE)
        asm.halt()

    cpu = machine(main, stdlib.triangular_microcode)
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace == [55]
    # The link stack unwound completely.
    assert cpu.regs.read_rm_absolute(stdlib.REG_LSP) == 0x0F00


def test_recursion_depth_40():
    def main(asm):
        asm.emit(b=40, alu="B", load="T")
        asm.emit(call="lib.tri")
        asm.emit(b="T", ff=FF.TRACE)
        asm.halt()

    cpu = machine(main, stdlib.triangular_microcode)
    cpu.run(50_000)
    assert cpu.console.trace == [40 * 41 // 2]


def test_routines_compose_in_one_image():
    """memcpy a block, checksum the copy, all through CALLs."""

    def main(asm):
        asm.emit(r="lib.src", b=0x0200, alu="B", load="RM")
        asm.emit(r="lib.dst", b=0x0300, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=8, alu="B", load="RM")
        asm.emit(call="lib.memcpy")
        asm.emit(r="lib.src", b=0x0300, alu="B", load="RM")
        asm.emit(r="lib.cnt", b=8, alu="B", load="RM")
        asm.emit(call="lib.checksum")
        asm.emit(b="T", ff=FF.TRACE)
        asm.halt()

    cpu = machine(main, stdlib.memcpy_microcode, stdlib.checksum_microcode)
    for i in range(8):
        cpu.memory.storage.write_word(0x200 + i, i + 1)
    cpu.run(10_000)
    assert cpu.console.trace == [36]
