"""Differential robustness harness for the fault-injection subsystem.

DESIGN.md section 5.2: faults come from a seeded
:class:`~repro.fault.plan.InjectionPlan` and fire at the first matching
operation at-or-after their cycle, so a given seed produces the same
fault trace under the interpretive core and the execution-plan fast
path.  This file locks that down from four directions:

* the plan itself is a pure function of its config (determinism);
* a plan with zero events is byte-identical to no injection at all, for
  every benchmark workload (the disabled/armed-but-empty fast path);
* injected faults land where the design says: ECC corrections are
  invisible to the program, uncorrectable errors corrupt data and wake
  the fault task, spurious map faults are transient, disk errors retry
  with backoff and degrade to a spare-sector remap;
* both cycle implementations consume the same plan identically -- same
  trace, same counters, same cycle counts.

The Hold watchdog (:class:`~repro.errors.HoldTimeout`) rides along: a
crafted never-ready reference must produce a diagnosable error, not a
silent wedge.
"""

import dataclasses

import pytest

from repro import Assembler, FF, HoldTimeout, Processor
from repro.config import INTERPRETED, PRODUCTION, MachineConfig
from repro.fault import FaultConfig, FaultKind, InjectionPlan
from repro.io.disk import DiskController, DiskGeometry, disk_microcode
from repro.mem.pipeline import (
    FAULT_BOUNDS,
    FAULT_MAP,
    FAULT_STORAGE,
    FAULT_WRITE_PROTECT,
    MemorySystem,
)
from repro.perf.workloads import ALL_WORKLOADS
from tests.test_fastpath_parity import CONFIGS, assert_same_machine, machine_state


# --------------------------------------------------------------------------
# The plan is a pure function of its config
# --------------------------------------------------------------------------

RICH = FaultConfig(
    seed=42, storage_correctable=3, storage_uncorrectable=1,
    map_faults=2, write_protect_faults=1, bounds_faults=1, disk_errors=2,
)


def test_same_seed_same_plan():
    assert InjectionPlan.from_config(RICH).events == InjectionPlan.from_config(RICH).events


def test_different_seed_different_plan():
    other = dataclasses.replace(RICH, seed=43)
    assert InjectionPlan.from_config(RICH).events != InjectionPlan.from_config(other).events


def test_plan_counts_and_partition():
    plan = InjectionPlan.from_config(RICH)
    assert len(plan) == RICH.total_events == 10
    by_component = {c: len(plan.schedule(c)) for c in ("storage", "map", "disk")}
    assert by_component == {"storage": 4, "map": 4, "disk": 2}
    assert [e.cycle for e in plan.events] == sorted(e.cycle for e in plan.events)
    assert all(RICH.first_cycle <= e.cycle <= RICH.last_cycle for e in plan.events)


def test_zero_config_is_empty_plan():
    plan = InjectionPlan.from_config(FaultConfig(seed=7))
    assert plan.is_empty and len(plan) == 0


def test_disk_events_carry_persistence():
    plan = InjectionPlan.from_config(FaultConfig(seed=1, disk_errors=2, disk_error_persistence=3))
    assert [e.arg for e in plan.schedule("disk")] == [3, 3]
    assert all(e.kind is FaultKind.DISK_TRANSFER for e in plan.schedule("disk"))


# --------------------------------------------------------------------------
# Disabled and armed-but-empty paths
# --------------------------------------------------------------------------

def test_disabled_config_builds_no_injector():
    cpu = Processor(PRODUCTION)
    assert cpu.fault_injector is None
    assert cpu.memory.injector is None
    assert cpu.memory.storage.ecc is None
    assert cpu.memory.translator.inject_next is None


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_empty_plan_is_byte_identical_to_no_injection(name):
    """Arming the subsystem with a zero-event plan must not perturb a
    single bit of any workload: same cycles, same state, same storage."""
    baseline = ALL_WORKLOADS[name](config=PRODUCTION)
    armed_config = dataclasses.replace(
        PRODUCTION, fault_injection=FaultConfig(seed=99)
    )
    armed = ALL_WORKLOADS[name](config=armed_config)
    assert baseline.run() == armed.run()
    assert_same_machine(baseline.ctx.cpu, armed.ctx.cpu)
    assert armed.ctx.cpu.counters.faults_injected == 0


# --------------------------------------------------------------------------
# A corrected fault is invisible to the program
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_one_correctable_fault_every_workload_still_verifies(name):
    """ECC fixes a single-bit error in flight: every workload completes
    with the right answer and only the counters show it happened."""
    config = dataclasses.replace(
        PRODUCTION,
        fault_injection=FaultConfig(seed=13, storage_correctable=1, last_cycle=0),
    )
    workload = ALL_WORKLOADS[name](config=config)
    workload.run()  # raises unless verify() holds
    counters = workload.ctx.cpu.counters
    assert counters.ecc_corrected == 1
    assert counters.faults_injected == 1
    assert counters.ecc_uncorrected == 0
    trace = workload.ctx.cpu.fault_injector.trace
    assert len(trace) == 1 and trace[0].kind == "ecc_correctable"


# --------------------------------------------------------------------------
# Both cycle implementations consume the plan identically
# --------------------------------------------------------------------------

def _faulted_run(config: MachineConfig, fault: FaultConfig):
    """Run mesa_loop_sum under *fault* without the correctness oracle
    (uncorrectable faults may corrupt the answer -- identically so)."""
    workload = ALL_WORKLOADS["mesa_loop_sum"](
        config=dataclasses.replace(config, fault_injection=fault)
    )
    outcome = "halted"
    try:
        workload.ctx.run(2_000_000)
    except Exception as error:  # both cores must fail identically too
        outcome = repr(error)
    cpu = workload.ctx.cpu
    return machine_state(cpu), list(cpu.fault_injector.trace), outcome


@pytest.mark.parametrize("fault", [
    FaultConfig(seed=13, storage_correctable=2, last_cycle=0),
    FaultConfig(seed=21, storage_correctable=1, storage_uncorrectable=1,
                map_faults=1, bounds_faults=1, write_protect_faults=1,
                last_cycle=0),
    FaultConfig(seed=5, map_faults=2, last_cycle=2_000),
], ids=["correctable", "mixed", "late-map"])
def test_identical_seed_identical_trace_under_both_cores(fault):
    runs = {
        label: _faulted_run(config, fault) for label, config in CONFIGS
    }
    interp_state, interp_trace, interp_outcome = runs["interp"]
    plan_state, plan_trace, plan_outcome = runs["plan"]
    assert interp_outcome == plan_outcome
    assert interp_trace == plan_trace, "fault traces diverged between cores"
    assert interp_state == plan_state, "machine state diverged between cores"


# --------------------------------------------------------------------------
# Spurious memory faults are transient (unit level)
# --------------------------------------------------------------------------

def make_mem(fault: FaultConfig) -> MemorySystem:
    config = MachineConfig(storage_words=1 << 16, fault_injection=fault)
    mem = MemorySystem(config)
    mem.identity_map(64)
    return mem


def advance(mem, cycles):
    for _ in range(cycles):
        mem.tick()


def test_spurious_map_fault_is_transient():
    mem = make_mem(FaultConfig(seed=5, map_faults=1, last_cycle=0))
    mem.storage.write_word(0x100, 0x1234)
    assert mem.start_fetch(0, 0, 0x100)        # consumed by the injection
    assert mem.fault_flags == FAULT_MAP
    assert mem.md_ready(0), "a faulting reference completes immediately"
    assert mem.read_md(0) == 0
    assert mem.read_faults(clear=True) == FAULT_MAP
    # The map entry itself was never touched: the retry succeeds.
    assert mem.translator.entry_for(0x100).valid
    assert mem.start_fetch(0, 0, 0x100)
    advance(mem, mem.config.miss_penalty)
    assert mem.read_md(0) == 0x1234
    assert mem.fault_flags == 0
    assert mem.counters.faults_injected == 1
    assert mem.counters.faults_latched == 1


def test_spurious_write_protect_waits_for_a_store():
    mem = make_mem(FaultConfig(seed=5, write_protect_faults=1, last_cycle=0))
    mem.storage.write_word(0x40, 0x5555)
    assert mem.start_fetch(0, 0, 0x40)          # fetches never trip WP events
    advance(mem, mem.config.miss_penalty)
    assert mem.read_md(0) == 0x5555
    assert mem.fault_flags == 0

    assert mem.start_store(0, 0, 0x40, 0x9999)  # the store consumes it
    assert mem.fault_flags == FAULT_WRITE_PROTECT
    advance(mem, mem.config.miss_penalty)
    assert mem.debug_read(0x40) == 0x5555, "the protected store was suppressed"

    mem.read_faults(clear=True)
    assert mem.start_store(0, 0, 0x40, 0x9999)  # the retry goes through
    advance(mem, mem.config.miss_penalty)
    assert mem.debug_read(0x40) == 0x9999


def test_spurious_bounds_fault():
    mem = make_mem(FaultConfig(seed=5, bounds_faults=1, last_cycle=0))
    assert mem.start_fetch(0, 0, 0x200)
    assert mem.fault_flags == FAULT_BOUNDS
    assert mem.md_ready(0) and mem.read_md(0) == 0
    assert mem.counters.faults_injected == 1


def test_debug_paths_never_consume_events():
    mem = make_mem(FaultConfig(seed=5, map_faults=1, storage_correctable=1, last_cycle=0))
    before = mem.injector.pending
    mem.debug_write(0x80, 0x1111)
    assert mem.debug_read(0x80) == 0x1111
    assert mem.injector.pending == before
    assert mem.fault_flags == 0 and mem.counters.faults_injected == 0


# --------------------------------------------------------------------------
# Uncorrectable storage errors: corrupt data, wake the fault task
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name,config", CONFIGS)
def test_uncorrectable_fault_wakes_the_fault_task(name, config):
    """The delivery chain end to end: a double-bit error corrupts MEMDATA,
    latches FAULT_STORAGE, and wakes the configured fault task, whose
    handler reads-and-clears the latch while task 0 is still held."""
    faulted = dataclasses.replace(
        config,
        fault_task=14,
        fault_injection=FaultConfig(seed=3, storage_uncorrectable=1, last_cycle=0),
    )
    asm = Assembler(faulted)
    asm.register("va", 1)
    asm.emit(r="va", b=0x0200, alu="B", load="RM")
    asm.emit(r="va", a="RM", fetch=True)        # miss -> double-bit error
    asm.emit(b="MD", alu="B", load="T")         # holds; task 14 runs here
    asm.emit(b="T", ff=FF.TRACE)
    asm.halt()
    asm.label("handler")
    asm.emit(ff=FF.READ_FAULTS, load="T")       # clears latch and wakeup
    asm.emit(b="T", ff=FF.TRACE, block=True, goto="handler")

    cpu = Processor(faulted)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    cpu.memory.storage.write_word(0x200, 0x0F0F)
    cpu.pipe.write_tpc(14, cpu.address_of("handler"))
    cpu.run(10_000)

    assert cpu.halted
    # The handler preempted the held emulator and saw the storage bit.
    assert cpu.console.trace[0] == FAULT_STORAGE
    assert cpu.counters.task_instructions[14] >= 2
    # Task 0's data arrived with at most one word damaged (two flipped
    # bits land somewhere in the fetched munch, not necessarily here).
    damage = cpu.console.trace[1] ^ 0x0F0F
    assert bin(damage).count("1") in (0, 2)
    # The latch and the wakeup line were both cleared by READ_FAULTS.
    assert cpu.memory.fault_flags == 0
    assert cpu.counters.ecc_uncorrected == 1
    # Storage itself is intact -- the error was on the read path.
    assert cpu.memory.storage.read_word(0x200) == 0x0F0F


def test_device_cannot_share_the_fault_task():
    from repro.errors import DeviceError

    config = dataclasses.replace(PRODUCTION, fault_task=9)
    cpu = Processor(config)
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=64))
    disk.task = 9
    with pytest.raises(DeviceError, match="fault task"):
        cpu.attach_device(disk)


# --------------------------------------------------------------------------
# Disk transfer errors: bounded retry, backoff, graceful degradation
# --------------------------------------------------------------------------

def disk_machine(fault: FaultConfig, words_per_sector: int = 64):
    config = MachineConfig(fault_injection=fault)
    asm = Assembler(config)
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=words_per_sector))
    cpu.attach_device(disk)
    return cpu, disk


def test_disk_read_recovers_after_bounded_retries():
    cpu, disk = disk_machine(FaultConfig(seed=7, disk_errors=1, disk_error_persistence=2, last_cycle=0))
    image = [i & 0xFFFF for i in range(64)]
    disk.fill_sector(1, image)
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    assert disk.done and not disk.hard_error
    assert cpu.counters.disk_retries == 2, "persistence 2 costs exactly 2 retries"
    assert cpu.counters.disk_remaps == 0 and disk.remap == {}
    assert [cpu.memory.debug_read(0x4000 + i) for i in range(64)] == image
    # The retry trace shows the controller's backoff pacing.
    retries = [r for r in cpu.fault_injector.trace if r.kind == "retry"]
    assert len(retries) == 2
    assert retries[1].cycle - retries[0].cycle >= disk.geometry.retry_backoff_cycles


def test_disk_write_degrades_to_a_spare_sector():
    cpu, disk = disk_machine(FaultConfig(seed=7, disk_errors=1, disk_error_persistence=99, last_cycle=0))
    image = [(i * 3) & 0xFFFF for i in range(64)]
    for i, value in enumerate(image):
        cpu.memory.debug_write(0x4000 + i, value)
    disk.begin_write(cpu, sector=2, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    assert disk.done and not disk.hard_error
    assert cpu.counters.disk_remaps == 1
    assert disk.remap == {2: disk.geometry.sectors}, "first spare claimed"
    assert cpu.counters.disk_retries == disk.geometry.max_retries + 1
    # The data survived on the spare, and reads follow the remap.
    assert disk.read_sector_image(2) == image


def test_disk_read_of_a_truly_bad_sector_reports_hard_error():
    cpu, disk = disk_machine(FaultConfig(seed=7, disk_errors=1, disk_error_persistence=99, last_cycle=0))
    disk.fill_sector(1, [i & 0xFFFF for i in range(64)])
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    assert disk.done and disk.hard_error
    assert disk.read_register(1) & 0x4, "status register exposes the hard error"


# --------------------------------------------------------------------------
# The Hold watchdog: diagnosable, not a silent wedge
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name,config", CONFIGS)
def test_hold_timeout_diagnostics(name, config):
    """Using MEMDATA with no reference outstanding can never unblock;
    the watchdog must say who, where, and why."""
    watched = dataclasses.replace(config, hold_limit=64)
    asm = Assembler(watched)
    asm.emit(b="MD", alu="B", load="T")   # never-ready reference
    asm.halt()
    cpu = Processor(watched)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(4)
    with pytest.raises(HoldTimeout) as caught:
        cpu.run(10_000)
    error = caught.value
    assert error.task == 0
    assert error.holds == 65, "the watchdog fires one past the limit"
    assert error.cycle < 200
    assert not error.md_valid
    message = str(error)
    assert "held" in message
    assert "no reference ever completed" in message
