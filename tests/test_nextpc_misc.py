"""The less-travelled NEXTPC types, exercised with hand-placed microcode.

DISPATCH256 and CALL_FF carry constraints the automatic placer does not
emit (256-aligned regions, page-offset-0..7 entries), so these tests
build IM images by hand -- the way early bring-up microcode was written.
"""

import pytest

from repro import EncodingError, FF, Processor
from repro.core.microword import (
    BSel,
    LoadControl,
    MicroInstruction,
    Misc,
    NextControl,
    NextType,
)
from repro.core.nextpc import ControlSection, NextOutcome
from repro.config import PRODUCTION


def misc(code, arg=0):
    return NextControl.pack(NextType.MISC, (int(code) << 3) | arg)


def put(cpu, address, **fields):
    cpu.im[address] = MicroInstruction(**fields)


def test_dispatch256_selects_by_b():
    """NEXTPC <- 256-aligned region + (B & 0xFF)."""
    cpu = Processor()
    # Dispatcher at 0: B = the constant 5, region = pages 4..7 (0x100).
    put(cpu, 0, bsel=BSel.CONST_LZ, ff=5, aluop=7,  # B = 5 via constant...
        nc=misc(Misc.IDLE))
    # Constants occupy FF, so load B from T instead: T <- 5 first.
    put(cpu, 0, bsel=BSel.CONST_LZ, ff=5, aluop=7, lc=LoadControl.T,
        nc=NextControl.pack(NextType.GOTO, 1))
    from repro.core import functions
    put(cpu, 1, bsel=BSel.T, aluop=7, ff=functions.jump_page(4),
        nc=misc(Misc.DISPATCH256))
    # Slot 0x100 + 5: trace T then halt.
    put(cpu, 0x105, bsel=BSel.T, ff=int(FF.TRACE),
        nc=NextControl.pack(NextType.GOTO, 6))
    put(cpu, 0x106, ff=int(FF.HALT), nc=misc(Misc.IDLE))
    cpu.boot(0)
    cpu.run(100)
    assert cpu.halted
    assert cpu.console.trace == [5]


def test_dispatch256_region_must_be_aligned():
    control = ControlSection(PRODUCTION)
    inst = MicroInstruction(nc=misc(Misc.DISPATCH256))  # no JumpPage FF
    with pytest.raises(EncodingError, match="JumpPage"):
        control.compute(inst, 0, 0, False, 0, ff_is_function=True)


def test_call_ff_reaches_far_entry():
    """CALL_FF: long call to page-offset arg of the FF page."""
    from repro.core import functions

    cpu = Processor()
    put(cpu, 0, ff=functions.jump_page(10),
        nc=NextControl.pack(NextType.MISC, (int(Misc.CALL_FF) << 3) | 3))
    # Continuation at 1 (LINK <- 1): the subroutine returns here.
    put(cpu, 1, ff=int(FF.HALT), nc=misc(Misc.IDLE))
    # The subroutine entry at page 10, offset 3.
    entry = 10 * 64 + 3
    put(cpu, entry, bsel=BSel.CONST_LZ, ff=0x2B, aluop=7, lc=LoadControl.T)
    cpu.im[entry] = MicroInstruction(
        bsel=BSel.CONST_LZ, ff=0x2B, aluop=7, lc=LoadControl.T,
        nc=NextControl.pack(NextType.GOTO, 4),
    )
    put(cpu, 10 * 64 + 4, bsel=BSel.T, ff=int(FF.TRACE), nc=misc(Misc.RETURN))
    cpu.boot(0)
    cpu.run(100)
    assert cpu.halted
    assert cpu.console.trace == [0x2B]


def test_notify_records_pc_and_continues():
    cpu = Processor()
    put(cpu, 8, nc=misc(Misc.NOTIFY))
    put(cpu, 9, ff=int(FF.HALT), nc=misc(Misc.IDLE))
    cpu.boot(8)
    cpu.run(10)
    assert cpu.halted
    assert cpu.console.notifications == [8]


def test_idle_spins_in_place():
    cpu = Processor()
    put(cpu, 4, nc=misc(Misc.IDLE))
    cpu.boot(4)
    for _ in range(5):
        cpu.step()
    assert cpu.this_pc == 4


def test_return_call_swaps_link():
    """RETURN_CALL: NEXTPC <- LINK while LINK <- THISPC+1 (coroutines)."""
    control = ControlSection(PRODUCTION)
    control.write_link(0, 0x80)
    inst = MicroInstruction(
        nc=NextControl.pack(NextType.MISC, int(Misc.RETURN_CALL) << 3)
    )
    result = control.compute(inst, 0x20, 0, False, 0)
    assert result.outcome == NextOutcome.JUMP
    assert result.target == 0x80
    assert control.read_link(0) == 0x21


def test_link_is_task_specific():
    control = ControlSection(PRODUCTION)
    control.write_link(3, 0x111)
    control.write_link(9, 0x222)
    assert control.read_link(3) == 0x111
    assert control.read_link(9) == 0x222
