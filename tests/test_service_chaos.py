"""Service-level chaos: seeded storms, recovery, byte-identity under fire.

What is under test (DESIGN.md 5.10):

* :class:`repro.service.ServiceFaultPlan` -- deterministic expansion of
  a seeded config into a one-shot, op-indexed schedule, mirroring the
  machine-level ``repro.fault`` plan one layer up.
* the spool envelope -- sha256-checksummed, versioned checkpoint files
  whose reader *refuses* truncation, bit flips, and version skew.
* :class:`repro.service.Fleet` recovery -- dead workers respawn and
  warm-restore their sessions from spool generations plus journal
  replay; lost/garbled/stalled messages retry idempotently; corrupt
  spool generations fall back to older ones; slots that exhaust their
  respawn budget degrade to inline hosts (or shed load).
* the gate: a chaos loadtest converges to an artifact byte-identical
  to the clean serial run -- PR 5's recovery-convergence criterion at
  fleet level.
"""

import multiprocessing

import pytest

from repro.errors import ConfigError, OverloadError, ServiceError, SpoolCorruption
from repro.service import (
    Fleet,
    ServiceFaultConfig,
    ServiceFaultKind,
    ServiceFaultPlan,
    Session,
    loadtest_json,
    run_loadtest,
    spool_decode,
    spool_encode,
)
from repro.service.chaos import ChaosInjector

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos targets forked workers",
)


# --------------------------------------------------------------------------
# the plan: seeded, sorted, validated, consumed once
# --------------------------------------------------------------------------

def test_plan_is_deterministic_and_sorted():
    config = ServiceFaultConfig(
        seed=7, worker_crashes=2, message_drops=3, spool_corruptions=2,
        first_op=5, last_op=50, first_spool=1, last_spool=10,
    )
    plan = ServiceFaultPlan.from_config(config)
    twin = ServiceFaultPlan.from_config(config)
    assert plan.events == twin.events  # same seed, same storm
    assert len(plan) == config.total_events == 7
    assert [e.op for e in plan.events] == sorted(e.op for e in plan.events)
    transport = plan.schedule("transport")
    spool = plan.schedule("spool")
    assert len(transport) == 5 and len(spool) == 2
    assert all(5 <= e.op <= 50 for e in transport)
    assert all(1 <= e.op <= 10 for e in spool)
    other = ServiceFaultPlan.from_config(
        ServiceFaultConfig(
            seed=8, worker_crashes=2, message_drops=3, spool_corruptions=2,
            first_op=5, last_op=50, first_spool=1, last_spool=10,
        )
    )
    assert other.events != plan.events  # the seed matters


def test_plan_config_validation():
    with pytest.raises(ConfigError, match="cannot be negative"):
        ServiceFaultConfig(worker_crashes=-1)
    with pytest.raises(ConfigError, match="first_op"):
        ServiceFaultConfig(first_op=9, last_op=3)
    with pytest.raises(ConfigError, match="first_spool"):
        ServiceFaultConfig(first_spool=0)
    assert ServiceFaultPlan.empty().is_empty


def test_injector_fires_each_event_once_in_order():
    from repro.service import ServiceFaultEvent

    plan = ServiceFaultPlan([
        # Two events scheduled for the same op: delivered on
        # consecutive operations, never together, never twice.
        ServiceFaultEvent(op=2, kind=ServiceFaultKind.MESSAGE_DROP),
        ServiceFaultEvent(op=2, kind=ServiceFaultKind.WORKER_CRASH),
        ServiceFaultEvent(op=1, kind=ServiceFaultKind.SPOOL_TRUNCATE, arg=9),
    ])
    injector = ChaosInjector(plan)
    fired = [injector.next_transport() for _ in range(5)]
    kinds = [e.kind for e in fired if e is not None]
    assert kinds == [ServiceFaultKind.MESSAGE_DROP,
                     ServiceFaultKind.WORKER_CRASH]
    assert fired[0] is None  # op 1: nothing due yet
    assert injector.next_spool().kind is ServiceFaultKind.SPOOL_TRUNCATE
    assert injector.next_spool() is None
    assert injector.pending == 0
    stats = injector.stats()
    assert stats == {"chaos_planned": 3, "chaos_fired": 3,
                     "chaos_pending": 0}


# --------------------------------------------------------------------------
# the spool envelope: refuse, don't guess
# --------------------------------------------------------------------------

def test_spool_envelope_roundtrip_and_refusals():
    payload = Session.build("mesa_loop_sum").suspend()
    blob = spool_encode(payload)
    assert spool_decode(blob) == payload

    with pytest.raises(SpoolCorruption, match="version"):
        spool_decode(blob.replace(b'"spool_version":1', b'"spool_version":99'))
    with pytest.raises(SpoolCorruption):   # truncated payload
        spool_decode(blob[:-10])
    with pytest.raises(SpoolCorruption):   # truncated to mid-header
        spool_decode(blob[:20])
    with pytest.raises(SpoolCorruption, match="separator"):
        spool_decode(b"no newline anywhere")
    with pytest.raises(SpoolCorruption, match="header"):
        spool_decode(b"not json\n" + b"body")

    header_end = blob.index(b"\n")
    for position in (0, header_end, header_end + 1, len(blob) - 2):
        flipped = bytearray(blob)
        flipped[position] ^= 0x01
        with pytest.raises(SpoolCorruption):
            spool_decode(bytes(flipped))


def test_session_envelope_refusals_cover_corruption():
    """Session.resume refuses what the spool layer might let through."""
    envelope = Session.build("mesa_loop_sum").suspend()
    with pytest.raises(ServiceError, match="parseable"):
        Session.resume(envelope[: len(envelope) // 2])  # truncated text
    with pytest.raises(ServiceError):
        Session.resume(envelope.replace('"service_version":1',
                                        '"service_version":99'))


# --------------------------------------------------------------------------
# fleet recovery, one failure mode at a time
# --------------------------------------------------------------------------

def _reference_results(count=4, slices=6, cycles=700):
    results = {}
    for index in range(count):
        session = Session.build("mesa_loop_sum", name=f"s{index}")
        for _ in range(slices):
            if session.status != "running":
                break
            session.run_slice(cycles)
        results[f"s{index}"] = session.result()
    return results


def _drive(fleet, count=4, slices=6, cycles=700):
    for index in range(count):
        fleet.open_session(f"s{index}", "mesa_loop_sum")
    active = [f"s{index}" for index in range(count)]
    for _ in range(slices):
        if not active:
            break
        replies = fleet.run_round(active, cycles)
        active = [n for n in active if replies[n]["status"] == "running"]
    return {f"s{index}": fleet.result(f"s{index}") for index in range(count)}


@needs_fork
def test_fleet_recovers_from_injected_crashes(tmp_path):
    reference = _reference_results()
    chaos = {"seed": 3, "worker_crashes": 2, "first_op": 4, "last_op": 18}
    with Fleet(workers=2, capacity=2, spool_dir=str(tmp_path),
               chaos=chaos, checkpoint_every=2) as fleet:
        results = _drive(fleet)
        stats = fleet.stats()
    assert results == reference  # crashes left no trace in the answers
    assert stats["worker_crashes"] == 2
    assert stats["respawns"] == 2
    assert stats["chaos_pending"] == 0


@needs_fork
def test_fleet_retries_drops_garbles_and_stalls(tmp_path):
    reference = _reference_results()
    chaos = {"seed": 12, "message_drops": 2, "reply_garbles": 2,
             "worker_stalls": 1, "first_op": 3, "last_op": 20}
    slept = []
    with Fleet(workers=2, capacity=3, spool_dir=str(tmp_path), chaos=chaos,
               backoff_base=0.25, sleep=slept.append) as fleet:
        results = _drive(fleet)
        stats = fleet.stats()
    assert results == reference
    assert stats["retries"] >= 5  # at least one per injected mishap
    assert stats["worker_crashes"] == 0  # none escalated
    assert len(slept) == stats["retries"]  # every retry backed off
    assert slept[0] == 0.25  # base * 2**(attempt-1), injectable sleep


@needs_fork
def test_fleet_falls_back_past_corrupt_spool_generations(tmp_path):
    reference = _reference_results(count=4)
    chaos = {"seed": 11, "spool_corruptions": 2, "spool_truncations": 1,
             "first_spool": 1, "last_spool": 6}
    with Fleet(workers=1, capacity=2, spool_dir=str(tmp_path),
               chaos=chaos, checkpoint_every=2) as fleet:
        results = _drive(fleet)
        stats = fleet.stats()
    assert results == reference  # fallback + replay, not wrong answers
    assert stats["checkpoint_corruptions"] == 3
    assert stats["chaos_pending"] == 0


@needs_fork
def test_fleet_degrades_slot_after_respawn_budget(tmp_path):
    reference = _reference_results()
    chaos = {"seed": 3, "worker_crashes": 3, "first_op": 3, "last_op": 15}
    with Fleet(workers=1, capacity=2, spool_dir=str(tmp_path),
               chaos=chaos, max_respawns=1, checkpoint_every=2) as fleet:
        results = _drive(fleet)
        stats = fleet.stats()
    assert results == reference
    assert stats["degrades"] == 1
    assert stats["degraded_workers"] == [0]
    assert stats["respawns"] == 1  # budget spent before degradation
    assert stats["worker_crashes"] >= 2


@needs_fork
def test_fleet_sheds_load_when_degradation_is_disabled(tmp_path):
    chaos = {"seed": 3, "worker_crashes": 3, "first_op": 2, "last_op": 10}
    with Fleet(workers=1, capacity=2, spool_dir=str(tmp_path), chaos=chaos,
               max_respawns=0, degrade=False, retry_after=7.5) as fleet:
        fleet.open_session("s0", "mesa_loop_sum")
        with pytest.raises(OverloadError) as info:
            for _ in range(30):
                fleet.run_slice("s0", 500)
        assert info.value.retry_after == 7.5


def test_frontend_sheds_load_with_retry_after(tmp_path):
    """OverloadError becomes a structured retry-after reply; the
    connection survives the shed."""
    import asyncio
    import json

    async def scenario():
        from repro.service import Frontend

        fleet = Fleet(workers=1, capacity=2, spool_dir=str(tmp_path))

        def overloaded(name, cycles):
            raise OverloadError("fleet saturated", retry_after=12.0)

        fleet.run_slice = overloaded
        frontend = Frontend(fleet)
        bound = asyncio.get_running_loop().create_future()
        server = asyncio.create_task(
            frontend.serve("127.0.0.1", 0, ready=bound.set_result)
        )
        host, port = await bound
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(json.dumps({"op": "run", "name": "x",
                                     "cycles": 10}).encode() + b"\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert not reply["ok"]
            assert reply["retry_after"] == 12.0
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            assert json.loads(await reader.readline())["pong"]
        finally:
            writer.close()
            if not server.done():
                server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            fleet.close()

    asyncio.run(scenario())


# --------------------------------------------------------------------------
# the gate: byte-identity under a full storm
# --------------------------------------------------------------------------

#: A compact storm with every fault kind, sized for the miniature
#: loadtest below (~40 transport ops, ~10 eviction writes at 2 workers).
MINI_STORM = {
    "seed": 1,
    "worker_crashes": 2,
    "message_drops": 2,
    "reply_garbles": 1,
    "worker_stalls": 1,
    "spool_corruptions": 1,
    "spool_truncations": 1,
    "first_op": 3,
    "last_op": 40,
    "first_spool": 1,
    "last_spool": 4,
}


@needs_fork
def test_chaos_loadtest_matches_serial_byte_for_byte():
    serial, _ = run_loadtest(sessions=6, capacity=2, serial=True)
    stormy, stats = run_loadtest(
        sessions=6, capacity=2, workers=2, chaos=MINI_STORM, max_respawns=1,
    )
    assert loadtest_json(stormy) == loadtest_json(serial)
    assert stats["worker_crashes"] > 0
    assert stats["respawns"] > 0
    assert stats["retries"] > 0
    assert stats["checkpoint_corruptions"] > 0
    assert stats["chaos_fired"] == stats["chaos_planned"] - stats["chaos_pending"]


@needs_fork
@pytest.mark.slow
def test_chaos_cli_artifact_matches_clean_serial(tmp_path, capsys):
    from repro.service.__main__ import main as service_main

    out_serial = tmp_path / "serial.json"
    out_chaos = tmp_path / "chaos.json"
    base = ["--sessions", "6", "--capacity", "2", "--slice-cycles", "1500"]
    assert service_main(["loadtest", *base, "--serial",
                         "--output", str(out_serial)]) == 0
    assert service_main([
        "chaos", *base, "--workers", "2", "--max-respawns", "1",
        "--worker-crashes", "2", "--message-drops", "2",
        "--reply-garbles", "1", "--worker-stalls", "1",
        "--spool-corruptions", "1", "--spool-truncations", "1",
        "--first-op", "3", "--last-op", "40",
        "--first-spool", "1", "--last-spool", "4",
        "--require-counters", "worker_crashes,respawns,retries",
        "--output", str(out_chaos),
    ]) == 0
    assert out_chaos.read_bytes() == out_serial.read_bytes()
    capsys.readouterr()


@needs_fork
def test_hot_sessions_background_checkpoint_and_warm_restore(tmp_path):
    """Sessions that never face eviction still spool generations in the
    background, so a late crash warm-restores from a checkpoint instead
    of replaying the whole journal from the admission spec."""
    reference = _reference_results(count=2, slices=8)
    # Capacity above the session count: no evictions, ever.  The crash
    # is scheduled late so background checkpoints exist by then.
    chaos = {"seed": 2, "worker_crashes": 1, "first_op": 12, "last_op": 14}
    with Fleet(workers=1, capacity=4, spool_dir=str(tmp_path),
               chaos=chaos, checkpoint_every=3) as fleet:
        results = _drive(fleet, count=2, slices=8)
        stats = fleet.stats()
    assert results == reference
    assert stats["evictions"] == 0  # nothing was ever pushed out...
    assert stats["checkpoints"] > 0  # ...yet spool generations exist
    assert stats["worker_crashes"] == 1
    assert stats["respawns"] == 1
