"""Processor execution semantics, instruction by instruction.

Each test assembles a small microprogram, runs it to HALT, and checks
architectural state -- the same way the real machine was checked from
its console.
"""

import pytest

from repro import Assembler, FF, MODEL0, MicrocodeCrash, PRODUCTION, Processor
from repro.core.shifter import ShiftControl, field_control
from tests.conftest import run_microcode


def trace_of(build, **kw):
    return run_microcode(build, **kw).console.trace


# --- ALU data paths through microcode ---------------------------------------

def test_constants_and_alu():
    def build(asm):
        asm.register("x", 1)
        asm.emit(r="x", b=0x42, alu="B", load="RM")
        asm.emit(r="x", a="RM", b=0x0100, alu="ADD", load="RM")
        asm.emit(r="x", b="RM", ff=FF.TRACE)

    assert trace_of(build) == [0x142]


def test_negative_constant_forms():
    def build(asm):
        asm.emit(b=0xFFFB, alu="B", load="T")  # -5, via CONST_LO
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0xFFFB]


def test_t_is_working_storage():
    def build(asm):
        asm.emit(b=7, alu="B", load="T")
        asm.emit(a="T", b="T", alu="ADD", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [14]


def test_load_rm_and_t_together():
    def build(asm):
        asm.register("x", 2)
        asm.emit(r="x", b=9, alu="B", load="RM_T")
        asm.emit(r="x", a="RM", b="T", alu="ADD", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [18]


# --- bypassing (section 5.6) ---------------------------------------------------

def test_bypass_gives_fresh_value():
    def build(asm):
        asm.register("x", 1)
        asm.emit(r="x", b=1, alu="B", load="RM")
        asm.emit(r="x", a="RM", b=1, alu="ADD", load="RM")  # uses previous result
        asm.emit(r="x", b="RM", ff=FF.TRACE)

    assert trace_of(build) == [2]


def test_model0_reads_stale_value_one_deep():
    """Without bypassing, a use-after-write one instruction deep sees the
    old register -- the Model 0 behaviour (section 5.6)."""

    def build(asm):
        asm.register("x", 1)
        asm.emit(r="x", b=1, alu="B", load="RM")    # x <- 1 (lands later)
        asm.emit(r="x", b=5, alu="B", load="T")     # spacer: x write lands
        asm.emit(r="x", a="RM", b=0, alu="ADD", load="T")  # reads x = 1 now
        asm.emit(b="T", ff=FF.TRACE)
        asm.emit(r="x", b=9, alu="B", load="RM")
        asm.emit(r="x", a="RM", alu="A", load="T")  # immediate use: stale!
        asm.emit(b="T", ff=FF.TRACE)

    trace = trace_of(build, config=MODEL0)
    # Both TRACE reads themselves see one-instruction-old values: the
    # first sees T still holding 5 (instruction 3's write had not landed),
    # the second sees T = 1 because instruction 6 read the stale x.
    assert trace == [5, 1]


def test_model1_same_code_gets_fresh():
    def build(asm):
        asm.register("x", 1)
        asm.emit(r="x", b=9, alu="B", load="RM")
        asm.emit(r="x", a="RM", alu="A", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build, config=PRODUCTION) == [9]


# --- branch conditions (all eight) ----------------------------------------------

@pytest.mark.parametrize(
    "cond,a,b,alu,expected",
    [
        ("ZERO", 5, 5, "SUB", 1),
        ("ZERO", 5, 4, "SUB", 0),
        ("NONZERO", 5, 4, "SUB", 1),
        ("NEG", 3, 5, "SUB", 1),
        ("NEG", 5, 3, "SUB", 0),
        ("CARRY", 0xFFFF, 1, "ADD", 1),
        ("CARRY", 1, 1, "ADD", 0),
        ("ODD", 3, 0, "ADD", 1),
        ("ODD", 2, 0, "ADD", 0),
        ("OVF", 0x7FFF, 1, "ADD", 1),
        ("OVF", 1, 1, "ADD", 0),
    ],
)
def test_conditions(cond, a, b, alu, expected):
    def build(asm):
        asm.emit(b=a, alu="B", load="T")
        asm.emit(a="T", b=b, alu=alu, branch=(cond, "yes", "no"))
        asm.label("yes")
        asm.emit(b=1, alu="B", ff=None, load="T", goto="out")
        asm.label("no")
        asm.emit(b=0, alu="B", load="T", goto="out")
        asm.label("out")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [expected]


def test_count_loop():
    """COUNT is decremented and tested in one instruction (section 6.3.3)."""

    def build(asm):
        asm.register("acc", 1)
        asm.emit(r="acc", b=0, alu="B", load="RM")
        asm.emit(count=4)
        asm.label("loop")
        asm.emit(r="acc", a="RM", b=1, alu="ADD", load="RM",
                 branch=("COUNT", "loop", "done"))
        asm.label("done")
        asm.emit(r="acc", b="RM", ff=FF.TRACE)

    # COUNT=4: the loop body executes 5 times (tests 4,3,2,1,0).
    assert trace_of(build) == [5]


# --- calls, returns, LINK ---------------------------------------------------------

def test_call_and_return():
    def build(asm):
        asm.emit(b=1, alu="B", load="T")
        asm.emit(call="double")
        asm.emit(call="double")       # continuation of the first call
        asm.emit(b="T", ff=FF.TRACE, goto="end")
        asm.label("double")
        asm.emit(a="T", b="T", alu="ADD", load="T", ret=True)
        asm.label("end")
        asm.emit(ff=FF.HALT, idle=True)

    assert trace_of(build) == [4]


def test_link_readable_and_writable():
    def build(asm):
        asm.emit(b=0x15, alu="B", load="T")
        asm.emit(b="T", ff=FF.LINK_B)         # LINK <- 0x15
        asm.emit(b="LINK", alu="B", ff=None, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x15]


def test_computed_return():
    """A plain call/return pair resumes at the continuation."""

    def build(asm):
        asm.emit(b=1, alu="B", load="T")
        asm.emit(call="probe")
        asm.emit(b="T", ff=FF.TRACE)
        asm.halt()
        asm.label("probe")
        asm.emit(a="T", b=1, alu="ADD", load="T", ret=True)

    assert trace_of(build) == [2]


# --- stack operations (Block bit on task 0) ----------------------------------------

def test_stack_push_pop_via_microcode():
    def build(asm):
        asm.emit(stack=1, b=0x11, alu="B", load="RM")   # push 0x11
        asm.emit(stack=1, b=0x22, alu="B", load="RM")   # push 0x22
        asm.emit(stack=-1, b="RM", alu="B", load="T")   # pop -> T
        asm.emit(b="T", ff=FF.TRACE)
        asm.emit(stack=-1, b="RM", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x22, 0x11]


def test_stackptr_readable():
    def build(asm):
        asm.emit(stack=1, b=1, alu="B", load="RM")
        asm.emit(stack=1, b=2, alu="B", load="RM")
        asm.emit(ff=FF.READ_STACKPTR, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [2]


def test_stack_underflow_latches_fault():
    def build(asm):
        asm.emit(stack=-1)
        asm.emit(ff=FF.READ_FAULTS, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    trace = trace_of(build)
    assert trace[0] & (0x10 << 3)  # stack-0 underflow bit above memory faults


# --- shifter through microcode ---------------------------------------------------------

def test_shift_field_extract():
    def build(asm):
        asm.register("w", 1)
        control = field_control(4, 6).encode()
        asm.load_constant("w", 0x0A50)
        asm.load_constant(2, control)
        asm.emit(r=2, b="RM", ff=FF.SHIFTCTL_B)
        asm.emit(r="w", ff=FF.SHIFT_MASKZ, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [(0x0A50 >> 4) & 0x3F]


def test_result_one_bit_shifts():
    def build(asm):
        asm.emit(b=0x21, alu="B", load="T")
        asm.emit(a="T", alu="A", ff=FF.RESULT_LSH, load="T")
        asm.emit(b="T", ff=FF.TRACE)
        asm.emit(b=0x21, alu="B", load="T")
        asm.emit(a="T", alu="A", ff=FF.RESULT_RSH, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x42, 0x10]


# --- multiply / divide steps --------------------------------------------------------------

def test_multiply_via_mulsteps():
    def build(asm):
        asm.register("m", 1)
        asm.emit(r="m", b=0x00B3, alu="B", load="RM")  # multiplicand
        asm.emit(b=0x0025, alu="B", load="T")
        asm.emit(b="T", ff=FF.Q_B)                      # multiplier in Q
        asm.emit(b=0, alu="B", load="T")                # clear accumulator
        for _ in range(16):
            asm.emit(r="m", a="RM", ff=FF.MULSTEP)
        asm.emit(b="T", ff=FF.TRACE)                    # product high
        asm.emit(b="Q", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)                    # product low

    trace = trace_of(build)
    product = (trace[0] << 16) | trace[1]
    assert product == 0xB3 * 0x25


@pytest.mark.parametrize("dividend,divisor", [(100, 7), (0xFFFF, 3), (5, 9)])
def test_divide_via_divsteps(dividend, divisor):
    def build(asm):
        asm.register("d", 1)
        asm.register("rem", 3)
        asm.load_constant("d", divisor)
        asm.emit(b=0, alu="B", load="T")  # remainder = 0
        asm.load_constant(2, dividend)
        asm.emit(r=2, b="RM", ff=FF.Q_B)  # dividend low in Q
        for _ in range(16):
            asm.emit(r="d", a="RM", ff=FF.DIVSTEP)
        asm.emit(r="rem", b="T", alu="B", load="RM")  # remainder
        asm.emit(b="Q", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)      # quotient
        asm.emit(r="rem", b="RM", ff=FF.TRACE)

    trace = trace_of(build)
    assert trace[0] == dividend // divisor
    assert trace[1] == dividend % divisor


# --- Q, COUNT, RBASE, MEMBASE plumbing ---------------------------------------------

def test_q_register_on_a_and_b():
    def build(asm):
        asm.emit(b=6, alu="B", load="T")
        asm.emit(b="T", ff=FF.Q_B)
        asm.emit(a="Q", b="Q", alu="ADD", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [12]


def test_rbase_switching():
    def build(asm):
        asm.emit(b=2, alu="B", load="T")
        asm.emit(b="T", ff=FF.RBASE_B)           # bank 2
        asm.emit(r=0, b=0x77, alu="B", load="RM")  # writes RM[0x20]
        asm.emit(b=0, alu="B", load="T")
        asm.emit(b="T", ff=FF.RBASE_B)           # back to bank 0
        asm.emit(r=0, b=0x11, alu="B", load="RM")  # writes RM[0x00]
        asm.emit(ff=FF.READ_RBASE, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    cpu = run_microcode(build)
    assert cpu.console.trace == [0]
    assert cpu.regs.read_rm_absolute(0x20) == 0x77
    assert cpu.regs.read_rm_absolute(0x00) == 0x11


def test_membase_small_bank():
    def build(asm):
        asm.emit(membase=3)
        asm.emit(ff=FF.READ_MEMBASE, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [3]


# --- memory through microcode ----------------------------------------------------------

def test_fetch_store_roundtrip():
    def build(asm):
        asm.register("addr", 1)
        asm.emit(r="addr", b=0x0200, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=0x1234 & 0xFF00, alu="B", store=True)  # store 0x1200
        asm.emit(r="addr", a="RM", fetch=True)
        asm.emit(b="MD", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x1200]


def test_md_hold_blocks_until_ready():
    """Using MEMDATA too early holds; the value still arrives correct."""

    def build(asm):
        asm.register("addr", 1)
        asm.emit(r="addr", b=0x0300, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=0x4200, alu="B", store=True)
        asm.emit(r="addr", a="RM", fetch=True)
        asm.emit(b="MD", alu="B", load="T")  # immediately: must hold
        asm.emit(b="T", ff=FF.TRACE)

    cpu = run_microcode(build)
    assert cpu.console.trace == [0x4200]
    assert cpu.counters.held_cycles > 0


def test_indirect_fetch_via_a_md():
    def build(asm):
        asm.register("addr", 1)
        asm.emit(r="addr", b=0x0400, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=0x0500, alu="B", store=True)  # M[0x400]=0x500
        asm.emit(r="addr", b=0x0500, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=0x0077, alu="B", store=True)  # M[0x500]=0x77
        asm.emit(r="addr", b=0x0400, alu="B", load="RM")
        asm.emit(r="addr", a="RM", fetch=True)                     # MD <- 0x500
        asm.emit(a="MD", fetch=True)                               # MD <- M[0x500]
        asm.emit(b="MD", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x77]


def test_base_registers_from_microcode():
    def build(asm):
        asm.emit(membase=2)
        asm.emit(b=0x0800, alu="B", load="T")
        asm.emit(b="T", ff=FF.BASE_LO_B)         # base[2] = 0x800
        asm.register("d", 1)
        asm.emit(r="d", b=0x10, alu="B", load="RM")
        asm.emit(r="d", a="RM", b=0x0099, alu="B", store=True)  # VA 0x810
        asm.emit(membase=0)
        asm.emit(r="d", b=0x0810 & 0xFF00, alu="B", load="RM")
        asm.emit(r="d", a="RM", b=0x10, alu="ADD", load="RM")
        asm.emit(r="d", a="RM", fetch=True)
        asm.emit(b="MD", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x99]


def test_map_read_write_from_microcode():
    def build(asm):
        asm.register("va", 1)
        # Map virtual page 0x40 -> real page 2, valid (0x8002).
        asm.emit(r="va", b=0x4000, alu="B", load="RM")
        asm.load_constant(2, 0x8002)
        asm.emit(r=2, b="RM", alu="B", load="T")
        asm.emit(r="va", a="RM", b="T", ff=FF.MAP_WRITE)
        asm.emit(r="va", a="RM", ff=FF.READ_MAP, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x8002]


def test_faults_readable_via_extb():
    asm = Assembler()
    asm.register("va", 1)
    asm.emit(r="va", b=0xFF00, alu="B", load="RM")
    asm.emit(r="va", a="RM", fetch=True)       # unmapped -> fault
    asm.emit(b="FAULTS", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.emit(ff=FF.READ_FAULTS, load="T")       # reads and clears
    asm.emit(b="T", ff=FF.TRACE)
    asm.emit(b="FAULTS", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(4)  # VA 0xFF00 is NOT mapped
    cpu.run(1000)
    trace = cpu.console.trace
    assert trace[0] & 0x1       # FAULT_MAP visible
    assert trace[1] & 0x1       # READ_FAULTS returns it...
    assert trace[2] == 0        # ...and clears it


# --- console paths ------------------------------------------------------------------------

def test_cpreg_roundtrip():
    def build(asm):
        asm.emit(b=0x5A, alu="B", load="T")
        asm.emit(b="T", ff=FF.CPREG_B)
        asm.emit(b="CPREG", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0x5A]


def test_thistask_on_extb():
    def build(asm):
        asm.emit(b="TASK", alu="B", load="T")
        asm.emit(b="T", ff=FF.TRACE)

    assert trace_of(build) == [0]


def test_breakpoint_raises():
    asm = Assembler()
    asm.emit(ff=FF.BREAKPOINT, idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    with pytest.raises(MicrocodeCrash, match="breakpoint"):
        cpu.run(10)


def test_uninitialized_microstore_raises():
    cpu = Processor()
    with pytest.raises(MicrocodeCrash, match="uninitialized"):
        cpu.step()


def test_im_writable_from_microcode():
    """Microcode can write the microstore (section 6.2.3)."""
    from repro.core.microword import MicroInstruction

    target = MicroInstruction(ff=int(FF.HALT))
    bits = target.encode()

    def build(asm):
        asm.load_constant(3, 0x0FC0)               # IM address 4032
        asm.emit(r=3, b="RM", alu="B", load="T")
        asm.emit(b="T", ff=FF.IM_ADDR_B)
        asm.load_constant(1, bits & 0xFFFF)
        asm.emit(r=1, b="RM", ff=FF.IM_WRITE_LO)
        asm.load_constant(1, (bits >> 16) & 0xFFFF)
        asm.emit(r=1, b="RM", ff=FF.IM_WRITE_MID)
        asm.load_constant(1, bits >> 32)
        asm.emit(r=1, b="RM", ff=FF.IM_WRITE_HI)

    cpu = run_microcode(build)
    assert cpu.im[0x0FC0] == target


def test_tpc_write_and_read():
    def build(asm):
        asm.load_constant(1, 0x5123)  # task 5, PC 0x123
        asm.emit(r=1, b="RM", ff=FF.TPC_B)
        asm.emit(r=1, b="RM", ff=FF.READ_TPC, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    cpu = run_microcode(build)
    assert cpu.pipe.read_tpc(5) == 0x123
    assert cpu.console.trace == [0x123]
