"""The munch cache: lookup, LRU, write-back, fast-I/O consistency."""

from repro.mem.cache import Cache
from repro.types import MUNCH_WORDS


def filled(cache, address, values=None):
    values = values or list(range(MUNCH_WORDS))
    cache.fill(address, values)
    return values


def test_miss_then_hit():
    cache = Cache(lines=8, ways=2)
    assert cache.lookup(0x100) is None
    filled(cache, 0x100)
    assert cache.contains(0x100)
    assert cache.read_word(0x105) == 0x105 % MUNCH_WORDS


def test_whole_munch_is_resident():
    cache = Cache(lines=8, ways=2)
    filled(cache, 0x20, list(range(100, 116)))
    base = 0x20 & ~(MUNCH_WORDS - 1)
    for i in range(MUNCH_WORDS):
        assert cache.read_word(base + i) == 100 + i


def test_write_marks_dirty():
    cache = Cache(lines=8, ways=2)
    filled(cache, 0)
    cache.write_word(3, 0xAAAA)
    assert cache.read_word(3) == 0xAAAA
    assert cache.stats() == (1, 1)


def test_clean_eviction_returns_none():
    cache = Cache(lines=2, ways=1)  # 2 sets, direct mapped
    filled(cache, 0)
    # Same set (set index = munch % 2): munch 2 maps to set 0 too.
    assert cache.fill(2 * MUNCH_WORDS, [0] * 16) is None


def test_dirty_eviction_returns_writeback():
    cache = Cache(lines=2, ways=1)
    filled(cache, 0, list(range(16)))
    cache.write_word(5, 0x5555)
    writeback = cache.fill(2 * MUNCH_WORDS, [0] * 16)
    assert writeback is not None
    address, words = writeback
    assert address == 0
    assert words[5] == 0x5555


def test_lru_keeps_recently_used():
    cache = Cache(lines=4, ways=2)  # 2 sets x 2 ways
    # Munches 0, 2, 4 all land in set 0.
    filled(cache, 0)
    filled(cache, 2 * MUNCH_WORDS)
    cache.lookup(0)  # touch munch 0 so munch 2 is LRU
    filled(cache, 4 * MUNCH_WORDS)
    assert cache.contains(0)
    assert not cache.contains(2 * MUNCH_WORDS)
    assert cache.contains(4 * MUNCH_WORDS)


def test_flush_returns_dirty_data_and_cleans():
    cache = Cache(lines=8, ways=2)
    filled(cache, 0)
    assert cache.flush_munch(0) is None  # clean: nothing to write back
    cache.write_word(1, 7)
    flushed = cache.flush_munch(0)
    assert flushed is not None and flushed[1] == 7
    assert cache.contains(0)  # flush keeps the line
    assert cache.stats() == (1, 0)


def test_invalidate_drops_line():
    cache = Cache(lines=8, ways=2)
    filled(cache, 0x40)
    assert cache.invalidate_munch(0x40)
    assert not cache.contains(0x40)
    assert not cache.invalidate_munch(0x40)


def test_invalidate_all():
    cache = Cache(lines=8, ways=2)
    filled(cache, 0)
    filled(cache, 0x100)
    cache.invalidate_all()
    assert cache.stats() == (0, 0)
