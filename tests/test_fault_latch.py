"""Pin tests for the fault-latch lifecycle (DESIGN.md section 5.2).

The memory system latches fault conditions into a per-machine flag word
that microcode inspects two ways: ``B <- FAULTS`` (FF ``EXTB_FAULTS``)
peeks without side effects, while FF ``READ_FAULTS`` reads the word and
clears every latched condition -- memory flags and the stack error byte
together.  The bit layout is part of the microcode ABI::

    0x001 map fault          0x008..0x400 stack errors (overflow 3:0,
    0x002 write-protect                    underflow 7:4, shifted by 3)
    0x004 bounds             0x800 storage (uncorrectable ECC)

Every test runs under both cycle implementations: the latch is
architectural state and must behave identically.
"""

import dataclasses

import pytest

from repro import Assembler, FF, Processor
from repro.config import INTERPRETED, PRODUCTION, MachineConfig
from repro.fault import FaultConfig
from repro.mem.map import FLAG_VALID, FLAG_WRITE_PROTECT, MapEntry
from repro.mem.pipeline import (
    FAULT_BOUNDS,
    FAULT_MAP,
    FAULT_STORAGE,
    FAULT_WRITE_PROTECT,
)

CONFIGS = (("interp", INTERPRETED), ("plan", PRODUCTION))

STACK0_OVERFLOW = 0x1 << 3
STACK0_UNDERFLOW = 0x10 << 3


def run(build, config=PRODUCTION, pages=4, prepare=None, max_cycles=10_000):
    asm = Assembler(config)
    build(asm)
    asm.halt()
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(pages)
    if prepare is not None:
        prepare(cpu)
    cpu.run(max_cycles)
    return cpu


def unmapped_fetch(asm):
    """A fetch from VA 0xFF00, which no test maps: latches FAULT_MAP."""
    asm.register("va", 1)
    asm.emit(r="va", b=0xFF00, alu="B", load="RM")
    asm.emit(r="va", a="RM", fetch=True)


def trace_faults(asm, reads):
    """Emit a sequence of peek ('extb') / read-and-clear ('read') traces."""
    for how in reads:
        if how == "extb":
            asm.emit(b="FAULTS", alu="B", load="T")
        else:
            asm.emit(ff=FF.READ_FAULTS, load="T")
        asm.emit(b="T", ff=FF.TRACE)


@pytest.mark.parametrize("name,config", CONFIGS)
def test_extb_peeks_read_faults_clears(name, config):
    """The full lifecycle: latch, peek twice (idempotent), read-and-clear
    once, and both views are empty afterwards."""

    def build(asm):
        unmapped_fetch(asm)
        trace_faults(asm, ["extb", "extb", "read", "extb", "read"])

    cpu = run(build, config)
    assert cpu.console.trace == [
        FAULT_MAP,  # peek sees the latch...
        FAULT_MAP,  # ...and does not disturb it
        FAULT_MAP,  # read-and-clear returns the same word
        0,          # peek after the clear: empty
        0,          # and so is a second read
    ]


@pytest.mark.parametrize("name,config", CONFIGS)
def test_stack_bits_sit_above_memory_bits(name, config):
    """Stack-0 overflow lands at 0x8, underflow at 0x80, and READ_FAULTS
    clears the stack byte together with the memory flags."""

    def build(asm):
        asm.emit(b=0x3F, alu="B", load="T")
        asm.emit(b="T", ff=FF.STACKPTR_B)   # STACKPTR to the very top
        asm.emit(stack=1)                   # push past it: overflow
        unmapped_fetch(asm)                 # and a memory fault alongside
        trace_faults(asm, ["read", "read"])

    cpu = run(build, config)
    assert cpu.console.trace == [FAULT_MAP | STACK0_OVERFLOW, 0]

    def build_underflow(asm):
        asm.emit(stack=-1)                  # pop an empty stack 0
        trace_faults(asm, ["read", "read"])

    cpu = run(build_underflow, config)
    assert cpu.console.trace == [STACK0_UNDERFLOW, 0]


@pytest.mark.parametrize("name,config", CONFIGS)
def test_write_protect_and_bounds_bits(name, config):
    """A store to a protected page latches 0x2; a reference that maps
    beyond physical storage latches 0x4."""
    small = dataclasses.replace(config, storage_words=1 << 12)

    def prepare(cpu):
        translator = cpu.memory.translator
        translator.map_write(8, MapEntry(real_page=1, valid=True,
                                         write_protected=True).encode())
        translator.map_write(9, MapEntry(real_page=0x7F0, valid=True).encode())

    def build(asm):
        asm.register("va", 1)
        asm.emit(r="va", b=0x0800, alu="B", load="RM")
        asm.emit(r="va", a="RM", b=0x1200, alu="B", store=True)
        trace_faults(asm, ["read"])
        asm.emit(r="va", b=0x0900, alu="B", load="RM")
        asm.emit(r="va", a="RM", fetch=True)   # maps to RA 0x7F000: out of range
        trace_faults(asm, ["read"])

    cpu = run(build, small, prepare=prepare)
    assert cpu.console.trace == [FAULT_WRITE_PROTECT, FAULT_BOUNDS]
    # The protected page was never written.
    assert cpu.memory.storage.read_word(0x100) == 0


@pytest.mark.parametrize("name,config", CONFIGS)
def test_storage_fault_merges_at_0x800(name, config):
    """An uncorrectable ECC event latches FAULT_STORAGE above the stack
    byte, and READ_FAULTS clears it like any other flag."""
    faulted = dataclasses.replace(
        config,
        fault_injection=FaultConfig(seed=3, storage_uncorrectable=1, last_cycle=0),
    )

    def build(asm):
        asm.register("va", 1)
        asm.emit(r="va", b=0x0040, alu="B", load="RM")
        asm.emit(r="va", a="RM", fetch=True)   # miss -> storage read -> ECC event
        trace_faults(asm, ["extb", "read", "read"])

    cpu = run(build, faulted)
    assert cpu.console.trace == [FAULT_STORAGE, FAULT_STORAGE, 0]
    assert cpu.counters.ecc_uncorrected == 1
    assert cpu.counters.faults_latched == 1


@pytest.mark.parametrize("name,config", CONFIGS)
def test_faulting_reference_completes_with_zero_md(name, config):
    """A faulting reference must not leave its task wedged: it completes
    immediately, MEMDATA reads as zero, and nothing holds."""

    def build(asm):
        unmapped_fetch(asm)
        asm.emit(b="MD", alu="B", load="T")   # immediately after the fault
        asm.emit(b="T", ff=FF.TRACE)

    cpu = run(build, config)
    assert cpu.console.trace == [0]
    assert cpu.counters.held_cycles == 0
    assert not cpu.memory.task_busy(0)
    assert cpu.memory.fault_flags == FAULT_MAP  # still latched until read
