"""The data-section register file: RBASE banking and task isolation."""

from repro.core.registers import RM_SIZE, RegisterFile


def test_rm_address_composition():
    regs = RegisterFile()
    regs.write_rbase(0, 0x3)
    # Section 6.3.3: four bits from RAddress, four from RBASE.
    assert regs.rm_address(0, 0x5) == 0x35


def test_rbase_partitions_rm_into_banks():
    regs = RegisterFile()
    regs.write_rbase(1, 1)
    regs.write_rbase(2, 2)
    regs.write_rm(1, 0, 111)
    regs.write_rm(2, 0, 222)
    assert regs.read_rm(1, 0) == 111
    assert regs.read_rm(2, 0) == 222
    assert regs.read_rm_absolute(0x10) == 111
    assert regs.read_rm_absolute(0x20) == 222


def test_rm_has_256_words():
    regs = RegisterFile()
    assert RM_SIZE == 256
    regs.write_rbase(0, 0xF)
    regs.write_rm(0, 0xF, 0xBEEF)
    assert regs.read_rm_absolute(255) == 0xBEEF


def test_t_is_task_specific():
    regs = RegisterFile()
    for task in range(16):
        regs.write_t(task, task * 100)
    for task in range(16):
        assert regs.read_t(task) == task * 100


def test_ioaddress_is_task_specific():
    regs = RegisterFile()
    regs.write_ioaddress(3, 0x20)
    regs.write_ioaddress(7, 0x30)
    assert regs.read_ioaddress(3) == 0x20
    assert regs.read_ioaddress(7) == 0x30


def test_membase_and_rbase_are_task_specific():
    regs = RegisterFile()
    regs.write_membase(0, 1)
    regs.write_membase(13, 0)
    regs.write_rbase(0, 0)
    regs.write_rbase(13, 13)
    assert regs.read_membase(0) == 1
    assert regs.read_membase(13) == 0
    assert regs.read_rbase(13) == 13


def test_membase_masked_to_five_bits():
    regs = RegisterFile()
    regs.write_membase(0, 0xFF)
    assert regs.read_membase(0) == 0x1F


def test_count_decrement_wraps():
    regs = RegisterFile()
    regs.write_count(0)
    regs.decrement_count()
    assert regs.count == 0xFFFF


def test_writes_truncate_to_word():
    regs = RegisterFile()
    regs.write_q(0x12345)
    assert regs.q == 0x2345
    regs.write_t(0, -1)
    assert regs.read_t(0) == 0xFFFF
