"""The memory pipeline: timing, MEMDATA, faults, and fast I/O."""

import pytest

from repro import MachineConfig, PRODUCTION
from repro.mem.pipeline import (
    FAULT_BOUNDS,
    FAULT_MAP,
    FAULT_WRITE_PROTECT,
    MemorySystem,
)
from repro.types import MUNCH_WORDS


def make(**kw):
    config = MachineConfig(**kw) if kw else PRODUCTION
    mem = MemorySystem(config)
    mem.identity_map(64)
    return mem


def advance(mem, cycles):
    for _ in range(cycles):
        mem.tick()


class RecordingPort:
    def __init__(self):
        self.delivered = []
        self.supply_value = [7] * MUNCH_WORDS

    def fast_deliver(self, address, words):
        self.delivered.append((address, list(words)))

    def fast_supply(self, address):
        return list(self.supply_value)


def test_cache_hit_latency():
    mem = make()
    mem.storage.write_word(0x10, 0xABCD)
    # First fetch misses; data ready after the miss penalty.
    assert mem.start_fetch(0, 0, 0x10)
    assert not mem.md_ready(0)
    advance(mem, mem.config.miss_penalty)
    assert mem.md_ready(0)
    assert mem.read_md(0) == 0xABCD
    # Second fetch of the same munch hits: ready in 2 cycles.
    assert mem.start_fetch(0, 0, 0x11)
    advance(mem, 1)
    assert not mem.md_ready(0)
    advance(mem, 1)
    assert mem.md_ready(0)


def test_md_is_most_recent_fetch():
    mem = make()
    mem.storage.write_word(1, 111)
    mem.storage.write_word(2, 222)
    mem.start_fetch(0, 0, 1)
    advance(mem, mem.config.miss_penalty)
    mem.start_fetch(0, 0, 2)
    advance(mem, mem.config.cache_hit_cycles)
    assert mem.read_md(0) == 222


def test_md_is_per_task():
    mem = make()
    mem.storage.write_word(1, 111)
    mem.storage.write_word(2, 222)
    mem.start_fetch(0, 0, 1)
    mem.start_fetch(5, 0, 2)
    advance(mem, mem.config.miss_penalty + mem.config.storage_cycle)
    assert mem.read_md(0) == 111
    assert mem.read_md(5) == 222


def test_store_then_fetch_roundtrip():
    mem = make()
    assert mem.start_store(0, 0, 0x20, 0x1234)
    mem.start_fetch(0, 0, 0x20)
    advance(mem, mem.config.miss_penalty)
    assert mem.read_md(0) == 0x1234


def test_store_writes_back_on_eviction():
    mem = make(cache_lines=2, cache_ways=1, storage_words=1 << 16)
    mem.identity_map(64)
    mem.start_store(0, 0, 0, 0xAAAA)
    # Evict munch 0 by filling the two munches that alias its set.
    mem.start_fetch(0, 0, 2 * MUNCH_WORDS)
    mem.start_fetch(0, 0, 4 * MUNCH_WORDS)
    assert mem.storage.read_word(0) == 0xAAAA


def test_map_fault_latches():
    mem = make()
    mem.start_fetch(0, 0, 0xFFFF)  # beyond the 64 mapped pages
    assert mem.fault_flags & FAULT_MAP
    assert mem.md_ready(0)  # faulting refs complete immediately with MD=0
    assert mem.read_md(0) == 0
    assert mem.read_faults(clear=True) & FAULT_MAP
    assert mem.fault_flags == 0


def test_write_protect_fault():
    mem = MemorySystem(PRODUCTION)
    mem.translator.identity_map(4, write_protected_pages=4)
    mem.start_store(0, 0, 0x10, 1)
    assert mem.fault_flags & FAULT_WRITE_PROTECT


def test_bounds_fault():
    mem = MemorySystem(MachineConfig(storage_words=1 << 12))
    mem.translator.identity_map(64)  # map exceeds storage
    mem.start_fetch(0, 0, 0)
    assert mem.fault_flags == 0
    mem.translator.write_base_low(1, 1 << 13)
    mem.start_fetch(0, 1, 0)
    assert mem.fault_flags & FAULT_BOUNDS


def test_fastio_fetch_delivers_munch():
    mem = make()
    for i in range(MUNCH_WORDS):
        mem.storage.write_word(0x40 + i, 0x900 + i)
    port = RecordingPort()
    assert mem.start_fastio_fetch(3, 0, 0x40, port)
    assert not port.delivered  # one storage cycle in flight
    advance(mem, mem.config.storage_cycle)
    assert port.delivered == [(0x40, [0x900 + i for i in range(MUNCH_WORDS)])]


def test_fastio_fetch_holds_while_storage_busy():
    mem = make()
    port = RecordingPort()
    assert mem.start_fastio_fetch(3, 0, 0, port)
    assert not mem.start_fastio_fetch(3, 0, MUNCH_WORDS, port)  # Hold
    advance(mem, mem.config.storage_cycle)
    assert mem.start_fastio_fetch(3, 0, MUNCH_WORDS, port)


def test_fastio_fetch_sees_dirty_cache_data():
    mem = make()
    mem.start_store(0, 0, 0x40, 0xCAFE)  # dirty in cache, not storage
    advance(mem, mem.config.storage_cycle * 4)
    port = RecordingPort()
    mem.start_fastio_fetch(3, 0, 0x40, port)
    advance(mem, mem.config.storage_cycle * 2)
    assert port.delivered[0][1][0] == 0xCAFE


def test_fastio_store_invalidates_cache():
    mem = make()
    mem.start_fetch(0, 0, 0x40)  # bring the munch into the cache
    advance(mem, mem.config.miss_penalty)
    port = RecordingPort()
    port.supply_value = [0xBEE0 + i for i in range(MUNCH_WORDS)]
    mem.start_fastio_store(3, 0, 0x40, port)
    assert mem.storage.read_word(0x41) == 0xBEE1
    # A subsequent processor fetch must see the device data.
    mem.start_fetch(0, 0, 0x41)
    advance(mem, mem.config.miss_penalty + mem.config.storage_cycle)
    assert mem.read_md(0) == 0xBEE1


def test_counters_accumulate():
    mem = make()
    mem.start_fetch(0, 0, 0)
    mem.start_fetch(0, 0, 1)
    assert mem.counters.cache_misses == 1
    assert mem.counters.cache_hits == 1
    assert mem.counters.memory_fetches == 2


def test_debug_rw_coherent_with_cache():
    mem = make()
    mem.start_store(0, 0, 5, 42)  # cache copy
    assert mem.debug_read(5) == 42
    mem.debug_write(5, 43)
    mem.start_fetch(0, 0, 5)
    advance(mem, mem.config.miss_penalty)
    assert mem.read_md(0) == 43
