"""Differential lock-down of the fast execution tiers.

The simulator has three cycle implementations: the interpretive
reference (every microword field re-decoded each cycle), the decoded
execution-plan fast path (``PLAN_ONLY``), and the compiled-trace tier
that PRODUCTION layers on top of the plans.  Every test here runs the
same scenario under all three configurations and requires bit-identical
results -- architectural state, performance counters, cycle counts,
hold-cause attribution, the supervisor's ``architectural_json`` digest,
and the whole storage image.  Property tests interleave microstore
rewrites with stepping (plans) and free-running (traces) to prove
neither cache ever goes stale.
"""

import dataclasses
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, Processor
from repro.config import INTERPRETED, PLAN_ONLY, PRODUCTION, MachineConfig
from repro.core.microword import (
    ASel,
    BSel,
    LoadControl,
    MicroInstruction,
    NextControl,
    NextType,
)
from repro.core.tracecache import TraceCache
from repro.fault.plan import FaultConfig
from repro.graphics.bitblt import BitBltFunction, build_bitblt_machine, run_bitblt
from repro.graphics.bitmap import Bitmap
from repro.io.disk import DiskController, DiskGeometry, disk_microcode
from repro.io.display import DisplayController, display_fast_microcode
from repro.perf.workloads import ALL_WORKLOADS
from repro.supervise import architectural_json
from repro.types import MUNCH_WORDS

CONFIGS = (
    ("interp", INTERPRETED),
    ("plan", PLAN_ONLY),
    ("traced", PRODUCTION),
)


def machine_state(cpu: Processor) -> dict:
    """Everything observable about a machine, for bit-exact comparison."""
    regs = cpu.regs
    return {
        "counters": dataclasses.asdict(cpu.counters),
        "rm": list(regs.rm),
        "t": list(regs.t),
        "q": regs.q,
        "count": regs.count,
        "shiftctl": regs.shiftctl,
        "rbase": list(regs.rbase),
        "membase": list(regs.membase),
        "saved_carry": list(regs.saved_carry),
        "ioaddress": list(regs.ioaddress),
        "tpc": list(cpu.pipe.tpc),
        "this_task": cpu.pipe.this_task,
        "lines": cpu.pipe.lines,
        "ready": cpu.pipe.ready,
        "link": list(cpu.control.link),
        "this_pc": cpu.this_pc,
        "halted": cpu.halted,
        "now": cpu.now,
        "trace": list(cpu.console.trace),
        "notifications": list(cpu.console.notifications),
    }


def assert_same_machine(cpu_a: Processor, cpu_b: Processor) -> None:
    assert machine_state(cpu_a) == machine_state(cpu_b)
    assert architectural_json(cpu_a.snapshot()) == architectural_json(cpu_b.snapshot())
    assert cpu_a.memory.storage._data == cpu_b.memory.storage._data


def assert_clean_traces(cpu: Processor) -> None:
    """A traced-tier machine must never have abandoned a compile."""
    assert cpu._traces.failures == []


# --------------------------------------------------------------------------
# Every benchmark workload, all three configurations
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_workload_parity(name):
    runs = {}
    for label, config in CONFIGS:
        workload = ALL_WORKLOADS[name](config=config)
        cycles = workload.run()
        runs[label] = (cycles, workload.ctx.cpu)
    assert_clean_traces(runs["traced"][1])
    for label in ("plan", "traced"):
        assert runs[label][0] == runs["interp"][0], (
            f"{label} cycle count diverged from the reference"
        )
        # Hold-cause attribution is part of the counters, but call it
        # out on its own: a trace that mis-charges a held cycle shows
        # up here with a readable diff.
        assert (
            runs[label][1].counters.hold_causes
            == runs["interp"][1].counters.hold_causes
        )
        assert_same_machine(runs[label][1], runs["interp"][1])


# --------------------------------------------------------------------------
# A seeded fault plan under all three tiers
# --------------------------------------------------------------------------

#: Correctable storage errors are absorbed by ECC -- the workload still
#: verifies -- but the injector must fire on the same references and
#: bump the same counters on every tier.  ``last_cycle=0`` arms both
#: events immediately so they hit the workload's first storage reads.
_CORRECTABLE = FaultConfig(seed=9, storage_correctable=2, last_cycle=0)

#: Spurious map faults latch a fault the workload's microcode never
#: handles, so the run ends with a wrong result; all three tiers must
#: still agree on every bit of the wreckage (traces bail out to the
#: plan interpreter the moment the fault latch rises).
_FAULTING = FaultConfig(seed=9, storage_correctable=4, map_faults=2, last_cycle=3000)


def test_fault_plan_parity_verified():
    runs = {}
    for label, config in CONFIGS:
        faulted = dataclasses.replace(config, fault_injection=_CORRECTABLE)
        workload = ALL_WORKLOADS["lisp_cons_kernel"](config=faulted)
        cycles = workload.run()
        runs[label] = (cycles, workload.ctx.cpu)
    assert runs["interp"][1].counters.faults_injected > 0
    assert_clean_traces(runs["traced"][1])
    for label in ("plan", "traced"):
        assert runs[label][0] == runs["interp"][0]
        assert_same_machine(runs[label][1], runs["interp"][1])


def test_fault_plan_parity_latched():
    runs = {}
    for label, config in CONFIGS:
        faulted = dataclasses.replace(config, fault_injection=_FAULTING)
        workload = ALL_WORKLOADS["mesa_loop_sum"](config=faulted)
        # Run the machine directly: verification would (rightly) fail.
        cycles = workload.ctx.run(max_cycles=200_000)
        runs[label] = (cycles, workload.ctx.cpu)
    assert runs["interp"][1].memory.fault_flags, "fault never latched"
    assert_clean_traces(runs["traced"][1])
    for label in ("plan", "traced"):
        assert runs[label][0] == runs["interp"][0]
        assert_same_machine(runs[label][1], runs["interp"][1])


# --------------------------------------------------------------------------
# The report.py device scenarios: BitBlt, disk, fast-I/O display
# --------------------------------------------------------------------------

def _bitblt_run(config: MachineConfig):
    cpu = build_bitblt_machine(config)
    src = Bitmap(cpu.memory, 0x2000, 17, 16)
    dst = Bitmap(cpu.memory, 0x8000, 16, 16)
    src.load_pattern()
    dst.fill(0)
    cycles = run_bitblt(
        cpu, BitBltFunction.COPY, src_va=0x2000, dst_va=0x8000,
        words_per_row=16, rows=16, src_pitch=17, dst_pitch=16, shift=5,
    )
    cycles += run_bitblt(
        cpu, BitBltFunction.XOR, src_va=0x2000, dst_va=0x8000,
        words_per_row=16, rows=16, src_pitch=17, dst_pitch=16, shift=3,
    )
    return cycles, cpu


def test_bitblt_parity():
    cycles_i, cpu_i = _bitblt_run(INTERPRETED)
    for _, config in CONFIGS[1:]:
        cycles, cpu = _bitblt_run(config)
        assert cycles == cycles_i
        assert_same_machine(cpu, cpu_i)


def _disk_run(config: MachineConfig):
    asm = Assembler(config)
    asm.emit(idle=True)
    disk_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=256))
    cpu.attach_device(disk)
    disk.fill_sector(1, [i & 0xFFFF for i in range(256)])
    disk.begin_read(cpu, sector=1, buffer_va=0x4000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    for i in range(256):
        cpu.memory.debug_write(0x6000 + i, (i * 3) & 0xFFFF)
    disk.begin_write(cpu, sector=2, buffer_va=0x6000)
    cpu.run_until(lambda m: disk.done, max_cycles=100_000)
    return cpu


def test_disk_parity():
    cpu_i = _disk_run(INTERPRETED)
    for _, config in CONFIGS[1:]:
        assert_same_machine(_disk_run(config), cpu_i)


def _display_run(config: MachineConfig, explicit_notify: bool):
    asm = Assembler(config)
    asm.emit(idle=True)
    display_fast_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    display = DisplayController(
        munch_interval_cycles=8, explicit_notify=explicit_notify
    )
    cpu.attach_device(display)
    munches = 32
    for i in range(munches * MUNCH_WORDS):
        cpu.memory.debug_write(0x4000 + i, i & 0xFFFF)
    display.begin_band(cpu, 0x4000, munches)
    cpu.run_until(lambda m: display.done, max_cycles=200_000)
    assert display.underruns == 0
    return cpu


@pytest.mark.parametrize("explicit_notify", [False, True])
def test_display_parity(explicit_notify):
    cpu_i = _display_run(INTERPRETED, explicit_notify)
    for _, config in CONFIGS[1:]:
        assert_same_machine(_display_run(config, explicit_notify), cpu_i)


# --------------------------------------------------------------------------
# Every example program, across the execution tiers
# --------------------------------------------------------------------------

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

# Re-runs the example with every Processor forced onto a slower tier,
# whatever configuration the script itself chose.
_FORCE_TIER = """
import runpy, sys
from repro.core.processor import Processor
_orig_init = Processor.__init__
def _init(self, *args, **kwargs):
    _orig_init(self, *args, **kwargs)
    self._trace_enabled = False
    if "{tier}" == "interp":
        self._plan_enabled = False
Processor.__init__ = _init
script = sys.argv[1]
sys.argv = [script]
runpy.run_path(script, run_name="__main__")
"""


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_parity(script):
    fast = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert fast.returncode == 0, fast.stdout + fast.stderr
    for tier in ("plan", "interp"):
        slow = subprocess.run(
            [sys.executable, "-c", _FORCE_TIER.format(tier=tier), str(script)],
            capture_output=True, text=True, timeout=300,
        )
        assert slow.returncode == 0, slow.stdout + slow.stderr
        assert fast.stdout == slow.stdout, f"{tier} tier output diverged"


# --------------------------------------------------------------------------
# Microstore rewrites must never leave a stale plan behind
# --------------------------------------------------------------------------

RING = 16  # ring of GOTOs within page 0


def _ring_inst(data: int, dest: int) -> MicroInstruction:
    """A side-effect-free instruction ending in GOTO *dest* (page 0).

    With a ``CONST_*`` BSelect the FF byte is constant data, not a
    function, so any *data* byte is architecturally safe; the ALU op and
    load control still exercise the bypass latch, saved carry, and the
    branch-condition datapath.
    """
    return MicroInstruction(
        rsel=data & 0xF,
        aluop=(data >> 2) & 0xF,
        bsel=BSel(BSel.CONST_LZ + ((data >> 6) & 0x3)),
        lc=LoadControl((data >> 4) & 0x3),
        asel=ASel.T if data & 0x100 else ASel.RM,
        ff=data & 0xFF,
        nc=NextControl.pack(NextType.GOTO, dest),
    )


def _twin_machines():
    pair = []
    for config in (PRODUCTION, INTERPRETED):
        cpu = Processor(config)
        for slot in range(RING):
            cpu.im[slot] = _ring_inst(slot * 37, (slot + 1) % RING)
        pair.append(cpu)
    return pair


def _light_state(cpu: Processor) -> tuple:
    regs = cpu.regs
    return (
        cpu.this_pc,
        tuple(regs.rm[:16]),
        regs.t[0],
        regs.q,
        tuple(regs.saved_carry[:1]),
        cpu.counters.cycles,
        cpu.counters.instructions,
    )


_action = st.one_of(
    st.tuples(st.just("step"), st.integers(1, 8)),
    st.tuples(st.just("console"), st.integers(0, RING - 1), st.integers(0, 0x1FF)),
    st.tuples(st.just("direct"), st.integers(0, RING - 1), st.integers(0, 0x1FF)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_action, min_size=1, max_size=40))
def test_no_stale_decode_under_rewrites(actions):
    """Interleaved IM rewrites and stepping stay in lockstep.

    The fast machine compiles plans as it runs; every rewrite -- via the
    console's three-stage staging path or a direct ``im[...]`` poke --
    must drop the affected plan, or the two machines diverge on the very
    next visit to that slot.
    """
    fast, slow = _twin_machines()
    for action in actions:
        if action[0] == "step":
            for _ in range(action[1]):
                fast.step()
                slow.step()
        else:
            _, slot, data = action
            inst = _ring_inst(data, (slot + 1) % RING)
            if action[0] == "direct":
                fast.im[slot] = inst
                slow.im[slot] = inst
            else:
                bits = inst.encode()
                for cpu in (fast, slow):
                    console = cpu.console
                    console.latch_im_address(slot)
                    console.im_write_low(bits & 0xFFFF)
                    console.im_write_mid((bits >> 16) & 0xFFFF)
                    console.im_write_high(bits >> 32, cpu.im)
        assert _light_state(fast) == _light_state(slow)


# --------------------------------------------------------------------------
# ... and never a stale compiled trace either
# --------------------------------------------------------------------------

def _hot_twin_machines():
    """PRODUCTION vs INTERPRETED twins with a hair-trigger trace cache.

    The default hot threshold needs several trips around the ring before
    a trace exists; dropping it to 2 means nearly every ``run()`` below
    executes generated code, so a missed invalidation diverges fast.
    """
    fast, slow = _twin_machines()
    fast._traces = TraceCache(fast, hot_threshold=2)
    return fast, slow


_trace_action = st.one_of(
    st.tuples(st.just("run"), st.integers(1, 80)),
    st.tuples(st.just("console"), st.integers(0, RING - 1), st.integers(0, 0x1FF)),
    st.tuples(st.just("direct"), st.integers(0, RING - 1), st.integers(0, 0x1FF)),
    st.tuples(st.just("slice"), st.integers(0, RING - 1), st.integers(0, 0x1FF)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_trace_action, min_size=1, max_size=30))
def test_no_stale_trace_under_rewrites(actions):
    """Random mid-run IM pokes through every write path drop traces.

    Traces only execute inside ``run()``, so the machines free-run in
    matched bursts instead of stepping.  Any write path that failed to
    invalidate -- direct item assignment, slice assignment, or the
    console's staging registers -- would leave compiled code that still
    encodes the old microword, and the lockstep check would catch it on
    the next burst.
    """
    fast, slow = _hot_twin_machines()
    for action in actions:
        if action[0] == "run":
            fast.run(max_cycles=action[1])
            slow.run(max_cycles=action[1])
        else:
            _, slot, data = action
            inst = _ring_inst(data, (slot + 1) % RING)
            if action[0] == "direct":
                fast.im[slot] = inst
                slow.im[slot] = inst
            elif action[0] == "slice":
                fast.im[slot:slot + 1] = [inst]
                slow.im[slot:slot + 1] = [inst]
            else:
                bits = inst.encode()
                for cpu in (fast, slow):
                    console = cpu.console
                    console.latch_im_address(slot)
                    console.im_write_low(bits & 0xFFFF)
                    console.im_write_mid((bits >> 16) & 0xFFFF)
                    console.im_write_high(bits >> 32, cpu.im)
        assert _light_state(fast) == _light_state(slow)
    assert_clean_traces(fast)


def test_trace_property_is_not_vacuous():
    """The ring actually compiles to a trace at the lowered threshold."""
    fast, slow = _hot_twin_machines()
    fast.run(max_cycles=200)
    slow.run(max_cycles=200)
    assert _light_state(fast) == _light_state(slow)
    assert fast._traces.traces, "ring never became hot -- property is vacuous"
    assert fast._traces.entries > 0
    # A rewrite through each path empties the whole cache.
    fast.im[3] = _ring_inst(0o123, 4)
    slow.im[3] = _ring_inst(0o123, 4)
    assert not fast._traces.traces
    fast.run(max_cycles=200)
    slow.run(max_cycles=200)
    assert _light_state(fast) == _light_state(slow)
    assert_clean_traces(fast)


def _loop_loading_t(cpu: Processor, value: int) -> None:
    """Slots 0..1: load T with *value*, forever."""
    cpu.im[0] = MicroInstruction(
        aluop=7, bsel=BSel.CONST_LZ, lc=LoadControl.T, ff=value,
        nc=NextControl.pack(NextType.GOTO, 1),
    )
    cpu.im[1] = MicroInstruction(nc=NextControl.pack(NextType.GOTO, 0))


def test_direct_im_write_invalidates_plan():
    cpu = Processor()
    _loop_loading_t(cpu, 5)
    for _ in range(6):
        cpu.step()
    assert cpu.regs.t[0] == 5
    _loop_loading_t(cpu, 7)  # rewrite through plain item assignment
    for _ in range(4):
        cpu.step()
    assert cpu.regs.t[0] == 7


def test_console_im_write_invalidates_plan():
    cpu = Processor()
    _loop_loading_t(cpu, 5)
    for _ in range(6):
        cpu.step()
    bits = MicroInstruction(
        aluop=7, bsel=BSel.CONST_LZ, lc=LoadControl.T, ff=9,
        nc=NextControl.pack(NextType.GOTO, 1),
    ).encode()
    cpu.console.latch_im_address(0)
    cpu.console.im_write_low(bits & 0xFFFF)
    cpu.console.im_write_mid((bits >> 16) & 0xFFFF)
    cpu.console.im_write_high(bits >> 32, cpu.im)
    for _ in range(4):
        cpu.step()
    assert cpu.regs.t[0] == 9


def test_slice_im_write_invalidates_plans():
    cpu = Processor()
    _loop_loading_t(cpu, 5)
    for _ in range(6):
        cpu.step()
    replacement = Processor()
    _loop_loading_t(replacement, 11)
    cpu.im[0:2] = replacement.im[0:2]
    for _ in range(4):
        cpu.step()
    assert cpu.regs.t[0] == 11


def test_im_write_invalidates_hot_trace():
    """The T-loop, run hot enough to trace, then rewritten mid-run."""
    cpu = Processor(PRODUCTION)
    cpu._traces = TraceCache(cpu, hot_threshold=2)
    _loop_loading_t(cpu, 5)
    cpu.run(max_cycles=40)
    assert cpu.regs.t[0] == 5
    assert cpu._traces.traces
    _loop_loading_t(cpu, 7)
    assert not cpu._traces.traces
    cpu.run(max_cycles=8)
    assert cpu.regs.t[0] == 7
    assert_clean_traces(cpu)


# --------------------------------------------------------------------------
# SHIFTCTL decodes exactly once per shift instruction, on all paths
# --------------------------------------------------------------------------

@pytest.mark.parametrize("label,config", CONFIGS)
def test_shiftctl_decodes_once_per_shift(label, config, monkeypatch):
    """All three shift FFs decode the live SHIFTCTL exactly once.

    ``_result_override`` used to decode it up to three times per
    instruction; both it and the plan fast path now share a single
    decode, which this test pins by counting calls through the
    processor's module-level ``ShiftControl`` reference.
    """
    import repro.core.processor as processor_mod
    from repro.core.functions import FF
    from repro.core.shifter import ShiftControl, field_control, shift, shift_masked

    calls = []

    class CountingShiftControl:
        @staticmethod
        def decode(value):
            calls.append(value)
            return ShiftControl.decode(value)

    monkeypatch.setattr(processor_mod, "ShiftControl", CountingShiftControl)

    control = field_control(4, 6)
    word, fill = 0x0A50, 0x9C01

    def build(asm):
        asm.register("w", 1)
        asm.register("addr", 2)
        asm.load_constant("w", word)
        asm.load_constant(3, control.encode())
        asm.emit(r=3, b="RM", ff=FF.SHIFTCTL_B)
        asm.emit(b=0, alu="B", load="T")
        asm.emit(r="w", ff=FF.SHIFT_OUT, load="T")
        asm.emit(b="T", ff=FF.TRACE)
        asm.emit(b=0, alu="B", load="T")
        asm.emit(r="w", ff=FF.SHIFT_MASKZ, load="T")
        asm.emit(b="T", ff=FF.TRACE)
        asm.emit(r="addr", b=0x0100, alu="B", load="RM")
        asm.emit(r="addr", a="RM", b=fill & 0xFF00, alu="B", store=True)
        asm.emit(r="addr", a="RM", fetch=True)
        asm.emit(b=0, alu="B", load="T")
        asm.emit(r="w", ff=FF.SHIFT_MASKMD, load="T")
        asm.emit(b="T", ff=FF.TRACE)

    from tests.conftest import run_microcode

    cpu = run_microcode(build, config=config)
    # One decode per executed shift microinstruction -- held cycles
    # (SHIFT_MASKMD waiting on MEMDATA) must not decode at all.
    assert len(calls) == 3
    # And each path produced the architecturally right value.
    raw = shift(control, word, 0)
    maskz = shift_masked(control, word, 0, 0)
    maskmd = shift_masked(control, word, 0, fill & 0xFF00)
    assert cpu.console.trace == [raw, maskz, maskmd]
