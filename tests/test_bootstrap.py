"""The resident boot loader: microcode loading microcode."""

import pytest

from repro import Assembler, FF, Processor
from repro.asm.bootstrap import SENTINEL, boot_loader_microcode, encode_for_boot, stage_boot

TABLE_VA = 0x1000


def loader_machine():
    asm = Assembler()
    boot_loader_microcode(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    return cpu


def target_program():
    """A payload assembled into pages the loader does not occupy."""
    asm = Assembler()
    asm.label("payload")
    asm.register("acc", 1)
    asm.emit(r="acc", b=0x2A, alu="B", load="RM")
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    return asm.assemble(base_page=8)


def test_encode_layout():
    image = target_program()
    words = encode_for_boot(image, "payload")
    assert len(words) == 4 * len(image.words) + 2
    assert words[-2] == SENTINEL
    assert words[-1] == image.address_of("payload")
    # Quadruples: address then three pieces of the 34-bit word.
    address, low, mid, high = words[0:4]
    bits = (high << 32) | (mid << 16) | low
    assert image.words[address].encode() == bits


def test_loader_loads_and_jumps():
    cpu = loader_machine()
    image = target_program()
    stage_boot(cpu, image, "payload", TABLE_VA)
    cpu.boot(cpu.address_of("boot.load"))
    cpu.run(10_000)
    assert cpu.halted
    assert cpu.console.trace == [0x2A]
    # The payload really lives in the control store now.
    assert cpu.im[image.address_of("payload")] == image.words[image.address_of("payload")]


def test_loader_handles_large_payload():
    asm = Assembler()
    asm.register("acc", 1)
    asm.label("entry")
    asm.emit(r="acc", b=0, alu="B", load="RM")
    asm.emit(count=15)
    asm.label("loop")
    asm.emit(r="acc", a="RM", b=1, alu="ADD", load="RM",
             branch=("COUNT", "loop", "out"))
    asm.label("out")
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    image = asm.assemble(base_page=16)

    cpu = loader_machine()
    stage_boot(cpu, image, "entry", TABLE_VA)
    cpu.boot(cpu.address_of("boot.load"))
    cpu.run(50_000)
    assert cpu.halted
    assert cpu.console.trace == [16]


def test_two_stage_boot():
    """The loader can even load a second loader (bring-up, bottom up)."""
    stage2_asm = Assembler()
    boot_loader_microcode(stage2_asm)
    stage2 = stage2_asm.assemble(base_page=4)

    final_asm = Assembler()
    final_asm.label("fin")
    final_asm.emit(b=0x77, alu="B", load="T")
    final_asm.emit(b="T", ff=FF.TRACE)
    final_asm.halt()
    final = final_asm.assemble(base_page=12)

    cpu = loader_machine()
    # Stage 1 loads stage 2 (whose entry is its own boot.load), having
    # first pointed the pointer register chain at the second table.
    stage2_table = 0x1000
    final_table = 0x2000
    cpu.memory.storage.load(stage2_table, encode_for_boot(stage2, "boot.load"))
    cpu.memory.storage.load(final_table, encode_for_boot(final, "fin"))
    cpu.regs.write_rbase(0, 0)
    cpu.regs.write_membase(0, 0)
    cpu.regs.write_rm_absolute(8, stage2_table)
    cpu.boot(cpu.address_of("boot.load"))
    # Run stage 1 until it jumps into stage 2's loader...
    cpu.run_until(lambda m: m.this_pc == stage2.address_of("boot.load"), 20_000)
    # ...then point the (shared) pointer register at the final table.
    cpu.regs.write_rm_absolute(8, final_table)
    cpu.run(50_000)
    assert cpu.halted
    assert cpu.console.trace == [0x77]
