"""The polled keyboard: IOATN + INPUT without a task."""

import pytest

from repro import Assembler, FF, Processor
from repro.io.disk import DiskController, DiskGeometry, disk_microcode
from repro.io.keyboard import KeyboardDevice, keyboard_microcode


def keyboard_machine(extra=()):
    asm = Assembler()
    asm.register("buf", 1)
    asm.label("main")
    asm.emit(call="kbd.init")
    asm.emit(r="buf", b=0x2000, alu="B", load="RM")
    asm.label("next")
    asm.emit(call="kbd.getch")
    # Store the key; a zero key (sentinel) ends the run.
    asm.emit(r="buf", a="RM", b="T", store=True, alu="INC", load="RM")
    asm.emit(a="T", alu="A", branch=("ZERO", "fin", "more"))
    asm.label("more")
    asm.emit(goto="next")
    asm.label("fin")
    asm.emit(ff=FF.HALT, idle=True)
    keyboard_microcode(asm)
    for emit in extra:
        emit(asm)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(64)
    cpu.boot(cpu.address_of("main"))
    keyboard = KeyboardDevice()
    cpu.attach_device(keyboard)
    return cpu, keyboard


def read_buffer(cpu, n):
    return [cpu.memory.debug_read(0x2000 + i) for i in range(n)]


def test_keystrokes_arrive_in_order():
    cpu, keyboard = keyboard_machine()
    keyboard.type_text("DORADO")
    keyboard.press(0)  # sentinel
    cpu.run(10_000)
    assert cpu.halted
    received = read_buffer(cpu, 6)
    assert bytes(received) == b"DORADO"


def test_polling_spins_until_attention():
    cpu, keyboard = keyboard_machine()
    for _ in range(200):
        cpu.step()
    assert not cpu.halted  # still spinning on IOATN
    spent = cpu.counters.cycles
    keyboard.press(ord("X"))
    keyboard.press(0)
    cpu.run(10_000)
    assert cpu.halted
    assert read_buffer(cpu, 1) == [ord("X")]
    assert spent >= 190  # the spin consumed the idle cycles


def test_attention_drops_when_drained():
    cpu, keyboard = keyboard_machine()
    keyboard.press(5)
    assert keyboard.attention
    keyboard.press(0)
    cpu.run(10_000)
    assert not keyboard.attention


def test_typed_while_higher_task_streams():
    """Keyboard polling from task 0 coexists with the disk task."""
    cpu, keyboard = keyboard_machine(extra=[disk_microcode])
    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=64))
    cpu.attach_device(disk)
    disk.fill_sector(0, list(range(64)))
    disk.begin_read(cpu, sector=0, buffer_va=0x3000)
    keyboard.type_text("OK")
    keyboard.press(0)
    cpu.run(50_000)
    while not disk.done:
        cpu.halted = False
        cpu.step()
    assert bytes(read_buffer(cpu, 2)) == b"OK"
    assert [cpu.memory.debug_read(0x3000 + i) for i in range(64)] == list(range(64))
