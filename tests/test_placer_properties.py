"""Property-based verification of the placer.

Generate random control-flow tangles, place them, then independently
verify every machine constraint on the emitted image: in-page or
FF-assisted transfers, even/odd branch pairs, adjacent call
continuations, aligned dispatch runs, and one-instruction-per-address.
This is the checker the real microcoders wished they had.
"""

from hypothesis import given, settings, strategies as st

from repro import Assembler, PRODUCTION
from repro.core import functions
from repro.core.microword import Misc, NextControl, NextType
from repro.perf.report import synthetic_microprogram

PAGE = PRODUCTION.page_size


def verify_image(image, ops):
    """Check every architectural placement constraint."""
    address_of = {}
    by_index = {}
    # Reconstruct op->address via the label table plus uniqueness.
    assert len(image.words) == len(ops), "every op placed exactly once"

    page_of = lambda a: a // PAGE

    for address, inst in image.words.items():
        kind = NextControl.kind(inst.nc)
        payload = NextControl.payload(inst.nc)
        ff_is_function = not inst.bsel.is_constant
        if kind in (NextType.GOTO, NextType.CALL):
            if ff_is_function and functions.is_jump_page(inst.ff):
                target = functions.bank_argument(inst.ff) * PAGE + payload
            else:
                target = (address & ~(PAGE - 1)) | payload
            assert target in image.words, f"{kind} at {address} -> hole {target}"
            if kind == NextType.CALL:
                # The continuation must exist at address + 1.
                assert address + 1 in image.words, f"call at {address} has no continuation"
        elif kind == NextType.BRANCH:
            if ff_is_function and functions.is_branch_pair(inst.ff):
                pair = functions.bank_argument(inst.ff)
            else:
                pair = NextControl.branch_pair(inst.nc)
                assert pair <= 7
            false_target = (address & ~(PAGE - 1)) + pair * 2
            assert false_target % 2 == 0
            assert false_target in image.words, "false target placed"
            assert false_target + 1 in image.words, "true target adjacent"
            assert page_of(false_target) == page_of(address), "pair in branch's page"
        elif kind == NextType.MISC:
            code = Misc(payload >> 3)
            if code == Misc.DISPATCH8:
                base = (address & ~(PAGE - 1)) + (payload & 7) * 8
                assert base % 8 == 0
                for k in range(8):
                    assert base + k in image.words, "dispatch slot placed"


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(30, 400),
    seed=st.integers(1, 2**31 - 1),
)
def test_random_programs_place_correctly(size, seed):
    asm = Assembler(PRODUCTION)
    synthetic_microprogram(asm, size, seed=seed)
    image = asm.assemble()
    verify_image(image, asm.ops)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(1, 2**31 - 1))
def test_nearly_full_store_places_correctly(seed):
    asm = Assembler(PRODUCTION)
    synthetic_microprogram(asm, int(PRODUCTION.im_size * 0.95), seed=seed)
    image = asm.assemble()
    verify_image(image, asm.ops)
    assert asm.report.utilization > 0.97


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(30, 200),
    seed=st.integers(1, 2**31 - 1),
    page_size=st.sampled_from([16, 32, 64]),
)
def test_placement_across_page_sizes(size, seed, page_size):
    """The page-size design choice: placement must hold for any legal
    page geometry (the paper chose 64-word pages; DESIGN.md section 2)."""
    from repro import MachineConfig

    config = MachineConfig(page_size=page_size)
    asm = Assembler(config)
    synthetic_microprogram(asm, size, seed=seed)
    image = asm.assemble()
    page = config.page_size
    for address, inst in image.words.items():
        kind = NextControl.kind(inst.nc)
        if kind == NextType.BRANCH:
            ff_is_function = not inst.bsel.is_constant
            if ff_is_function and functions.is_branch_pair(inst.ff):
                pair = functions.bank_argument(inst.ff)
            else:
                pair = NextControl.branch_pair(inst.nc)
            false_target = (address & ~(page - 1)) + pair * 2
            assert false_target in image.words and false_target + 1 in image.words
