"""Whole-machine integration: the emulator computing while three device
controllers multiplex the same processor -- the Dorado's reason for
being (section 4)."""

import pytest

from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import FRAMES_VA, build_mesa_machine
from repro.io.disk import DISK_TASK, DiskController, DiskGeometry, disk_microcode
from repro.io.display import DISPLAY_TASK, DisplayController, display_fast_microcode
from repro.io.network import NETWORK_TASK, NetworkController, network_microcode
from repro.types import MUNCH_WORDS

BITMAP_VA = 0x6000
DISK_BUF_VA = 0x7000
NET_BUF_VA = 0x7800


def build_full_machine():
    ctx = build_mesa_machine(
        extra_microcode=[disk_microcode, display_fast_microcode, network_microcode]
    )
    cpu = ctx.cpu
    disk = DiskController(DiskGeometry(sectors=4, words_per_sector=128))
    display = DisplayController(munch_interval_cycles=16)
    net = NetworkController()
    cpu.attach_device(disk)
    cpu.attach_device(display)
    cpu.attach_device(net)
    return ctx, disk, display, net


def mesa_sum_program(ctx, n):
    b = BytecodeAssembler(ctx.table)
    b.op("LIT", 0); b.op("SL", 0)
    b.op("LITW", n); b.op("SL", 1)
    b.label("loop")
    b.op("LL", 0); b.op("LL", 1); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("HALT")
    ctx.load_program(b.assemble())


def test_emulator_with_three_io_tasks():
    ctx, disk, display, net = build_full_machine()
    cpu = ctx.cpu
    mesa_sum_program(ctx, 800)

    sector = [(i * 11 + 3) & 0xFFFF for i in range(128)]
    disk.fill_sector(1, sector)
    for i in range(48 * MUNCH_WORDS):
        cpu.memory.debug_write(BITMAP_VA + i, i & 0xFFFF)
    packet = [(0x7000 + i) & 0xFFFF for i in range(48)]
    net.inject_packet(packet)

    disk.begin_read(cpu, sector=1, buffer_va=DISK_BUF_VA)
    display.begin_band(cpu, BITMAP_VA, 48)
    net.begin_receive(cpu, buffer_va=NET_BUF_VA, packet_words=48)

    cpu.run(2_000_000)
    # Let any trailing device work finish after the emulator halts.
    for _ in range(200_000):
        if disk.done and display.done and net.done:
            break
        cpu.halted = False
        cpu.step()
        cpu.halted = True

    # Every consumer got the right data.
    assert ctx.memory_word(FRAMES_VA + 2) == (800 * 801 // 2) & 0xFFFF
    assert [cpu.memory.debug_read(DISK_BUF_VA + i) for i in range(128)] == sector
    assert [cpu.memory.debug_read(NET_BUF_VA + i) for i in range(48)] == packet
    assert disk.done and display.done and net.done
    assert display.underruns == 0

    # All four tasks actually shared the processor.
    counters = cpu.counters
    for task in (0, NETWORK_TASK, DISK_TASK, DISPLAY_TASK):
        assert counters.task_cycles[task] > 0, f"task {task} never ran"
    assert counters.task_switches > 50


def test_io_barely_slows_the_emulator():
    """Processor sharing: the emulator pays only a small tax while three
    controllers stream (sections 4 and 5.7)."""
    ctx_alone, *_ = (build_mesa_machine(),)
    mesa_sum_program(ctx_alone, 400)
    alone = ctx_alone.run(2_000_000)
    assert ctx_alone.halted

    ctx, disk, display, net = build_full_machine()
    cpu = ctx.cpu
    mesa_sum_program(ctx, 400)
    disk.fill_sector(0, [0] * 128)
    net.inject_packet([0] * 32)
    disk.begin_read(cpu, sector=0, buffer_va=DISK_BUF_VA)
    display.begin_band(cpu, BITMAP_VA, 32)
    net.begin_receive(cpu, buffer_va=NET_BUF_VA, packet_words=32)
    combined = ctx.run(2_000_000)
    assert ctx.halted

    io_cycles = sum(
        cpu.counters.task_cycles[t] for t in (NETWORK_TASK, DISK_TASK, DISPLAY_TASK)
    )
    assert io_cycles > 0
    # The emulator finishes within the time of (its own work + the I/O
    # cycles) -- no scheduling overhead beyond the stolen cycles.
    assert combined <= alone + io_cycles + 50


def test_repeated_transfers_reuse_tasks():
    ctx, disk, display, net = build_full_machine()
    cpu = ctx.cpu
    mesa_sum_program(ctx, 50)
    ctx.run(2_000_000)

    for round_number in range(3):
        data = [(round_number * 1000 + i) & 0xFFFF for i in range(128)]
        disk.fill_sector(2, data)
        disk.begin_read(cpu, sector=2, buffer_va=DISK_BUF_VA)
        cpu.run_until(lambda m: disk.done, max_cycles=300_000)
        assert disk.done
        assert [cpu.memory.debug_read(DISK_BUF_VA + i) for i in range(128)] == data


def test_fastio_data_visible_to_emulator_memory():
    """Fast I/O writes storage directly; the cache must never serve
    stale munches afterwards (section 5.8 consistency)."""
    ctx, disk, display, net = build_full_machine()
    cpu = ctx.cpu
    mesa_sum_program(ctx, 10)
    ctx.run(2_000_000)
    # Prime the cache with the munch, then transmit it over the network
    # after the emulator modified it.
    cpu.memory.start_fetch(0, 0, NET_BUF_VA)
    for _ in range(40):
        cpu.memory.tick()
    for i in range(16):
        cpu.memory.debug_write(NET_BUF_VA + i, 0x4400 + i)
    net.begin_transmit(cpu, buffer_va=NET_BUF_VA, packet_words=16)
    cpu.halted = False
    cpu.run_until(lambda m: net.done, max_cycles=300_000)
    assert net.tx_words == [0x4400 + i for i in range(16)]


def test_grand_tour_with_timer():
    """Five concurrent tasks: emulator + disk + display + network +
    timer, with correctness checks on every stream."""
    from repro.io.timer import TIMER_TASK, TimerDevice, timer_microcode

    ctx = build_mesa_machine(
        extra_microcode=[
            disk_microcode, display_fast_microcode, network_microcode,
            timer_microcode,
        ]
    )
    cpu = ctx.cpu
    mesa_sum_program(ctx, 1200)

    disk = DiskController(DiskGeometry(sectors=2, words_per_sector=128))
    display = DisplayController(munch_interval_cycles=16)
    net = NetworkController()
    timer = TimerDevice(interval_cycles=500)
    for device in (disk, display, net, timer):
        cpu.attach_device(device)

    sector = [(5 * i + 2) & 0xFFFF for i in range(128)]
    disk.fill_sector(0, sector)
    packet = [(9 * i) & 0xFFFF for i in range(64)]
    net.inject_packet(packet)

    disk.begin_read(cpu, sector=0, buffer_va=DISK_BUF_VA)
    display.begin_band(cpu, BITMAP_VA, 64)
    net.begin_receive(cpu, buffer_va=NET_BUF_VA, packet_words=64)
    timer.start(cpu, counter_va=0x7F00)

    cpu.run(3_000_000)
    for _ in range(300_000):
        if disk.done and display.done and net.done:
            break
        cpu.halted = False
        cpu.step()
        cpu.halted = True

    assert ctx.memory_word(FRAMES_VA + 2) == (1200 * 1201 // 2) & 0xFFFF
    assert [cpu.memory.debug_read(DISK_BUF_VA + i) for i in range(128)] == sector
    assert [cpu.memory.debug_read(NET_BUF_VA + i) for i in range(64)] == packet
    assert display.underruns == 0
    ticks = cpu.memory.debug_read(0x7F00)
    assert ticks >= cpu.counters.cycles // 500 - 3
    for task in (0, TIMER_TASK, NETWORK_TASK, DISK_TASK, DISPLAY_TASK):
        assert cpu.counters.task_cycles[task] > 0, f"task {task} never ran"
