"""The Lisp emulator: tagged items, runtime checks, binding discipline."""

import pytest

from repro import MicrocodeCrash
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.lisp import (
    TAG_INT,
    TAG_NIL,
    TAG_PAIR,
    build_lisp_machine,
    build_list,
    define_function,
    set_symbol_value,
    stack_top,
    symbol_operand,
    symbol_value,
)


def run_program(build, setup=None, max_cycles=500_000):
    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    build(b)
    ctx.load_program(b.assemble())
    if setup:
        setup(ctx)
    ctx.run(max_cycles)
    assert ctx.halted
    return ctx


def test_push_literal_is_two_words():
    ctx = run_program(lambda b: [b.op("LIN", 42), b.op("HALTL")])
    assert stack_top(ctx) == (TAG_INT, 42)


def test_push_nil():
    ctx = run_program(lambda b: [b.op("NILP"), b.op("HALTL")])
    assert stack_top(ctx) == (TAG_NIL, 0)


def test_symbol_load_store():
    def build(b):
        b.op("LIN", 7); b.op("SLV", symbol_operand(2))
        b.op("LLV", symbol_operand(2)); b.op("SLV", symbol_operand(3))
        b.op("HALTL")

    ctx = run_program(build)
    assert symbol_value(ctx, 2) == (TAG_INT, 7)
    assert symbol_value(ctx, 3) == (TAG_INT, 7)


def test_addition_with_checks():
    def build(b):
        b.op("LIN", 30); b.op("LIN", 12); b.op("ADDL"); b.op("SLV", 0)
        b.op("HALTL")

    assert symbol_value(run_program(build), 0) == (TAG_INT, 42)


def test_subtraction_order():
    def build(b):
        b.op("LIN", 50); b.op("LIN", 8); b.op("SUBL"); b.op("SLV", 0)
        b.op("HALTL")

    assert symbol_value(run_program(build), 0) == (TAG_INT, 42)


def test_add_traps_on_non_integer():
    def build(b):
        b.op("NILP"); b.op("LIN", 1); b.op("ADDL"); b.op("HALTL")

    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    build(b)
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash):
        ctx.run(10_000)


def test_car_cdr_walk():
    def build(b):
        b.op("LLV", symbol_operand(0)); b.op("CAR"); b.op("SLV", symbol_operand(1))
        b.op("LLV", symbol_operand(0)); b.op("CDR"); b.op("CAR")
        b.op("SLV", symbol_operand(2))
        b.op("HALTL")

    def setup(ctx):
        head = build_list(ctx, [10, 20, 30])
        set_symbol_value(ctx, 0, TAG_PAIR, head)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 1) == (TAG_INT, 10)
    assert symbol_value(ctx, 2) == (TAG_INT, 20)


def test_car_of_int_traps():
    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    b.op("LIN", 5); b.op("CAR"); b.op("HALTL")
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash):
        ctx.run(10_000)


def test_cons_builds_cells():
    def build(b):
        b.op("LIN", 1); b.op("NILP"); b.op("CONS")
        b.op("SLV", symbol_operand(0))
        b.op("LLV", symbol_operand(0)); b.op("CAR"); b.op("SLV", symbol_operand(1))
        b.op("LLV", symbol_operand(0)); b.op("CDR"); b.op("SLV", symbol_operand(2))
        b.op("HALTL")

    ctx = run_program(build)
    tag, _ = symbol_value(ctx, 0)
    assert tag == TAG_PAIR
    assert symbol_value(ctx, 1) == (TAG_INT, 1)
    assert symbol_value(ctx, 2) == (TAG_NIL, 0)


def test_jnil_taken_and_not():
    def build(b):
        b.op("NILP"); b.op("JNIL", "was_nil")
        b.op("LIN", 0); b.op("SLV", 0); b.op("HALTL")
        b.label("was_nil")
        b.op("LIN", 5); b.op("JNIL", "bad")   # an int is not nil
        b.op("LIN", 1); b.op("SLV", 0); b.op("HALTL")
        b.label("bad")
        b.op("LIN", 9); b.op("SLV", 0); b.op("HALTL")

    assert symbol_value(run_program(build), 0) == (TAG_INT, 1)


def test_call_binds_and_restores():
    sx, sy = symbol_operand(2), symbol_operand(3)

    def build(b):
        b.op("LIN", 8); b.op("LIN", 9)
        b.op("CALLL", symbol_operand(4))
        b.op("SLV", 0)
        b.op("HALTL")
        b.label("fn")
        b.op("BIND", sy); b.op("BIND", sx)
        b.op("LLV", sx); b.op("LLV", sy); b.op("ADDL")
        b.op("RETL")

    def setup(ctx):
        # define_function needs the label's byte address; re-derive it.
        b2 = BytecodeAssembler(ctx.table)
        build(b2)
        define_function(ctx, 4, b2.address_of("fn"))
        set_symbol_value(ctx, 2, TAG_INT, 1111)
        set_symbol_value(ctx, 3, TAG_INT, 2222)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 0) == (TAG_INT, 17)
    assert symbol_value(ctx, 2) == (TAG_INT, 1111)  # deep-bound values restored
    assert symbol_value(ctx, 3) == (TAG_INT, 2222)


def test_nested_calls_rebind():
    sn = symbol_operand(2)

    def build(b):
        b.op("LIN", 3)
        b.op("CALLL", symbol_operand(4))
        b.op("SLV", 0)
        b.op("HALTL")
        # fn(n): if n == 0 return 0 else return fn(n-1) + n
        b.label("fn")
        b.op("BIND", sn)
        b.op("LLV", sn); b.op("JZL", "base")
        b.op("LLV", sn); b.op("LIN", 1); b.op("SUBL")
        b.op("CALLL", symbol_operand(4))
        b.op("LLV", sn); b.op("ADDL")
        b.op("RETL")
        b.label("base")
        b.op("LIN", 0)
        b.op("RETL")

    def setup(ctx):
        b2 = BytecodeAssembler(ctx.table)
        build(b2)
        define_function(ctx, 4, b2.address_of("fn"))
        set_symbol_value(ctx, 2, TAG_INT, 0xDEAD)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 0) == (TAG_INT, 6)       # 3+2+1
    assert symbol_value(ctx, 2) == (TAG_INT, 0xDEAD)  # fully unwound


def test_call_of_non_function_traps():
    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    b.op("CALLL", symbol_operand(5)); b.op("HALTL")
    ctx.load_program(b.assemble())
    # Symbol 5's function cell is zeroed: tag != CODE.
    with pytest.raises(MicrocodeCrash):
        ctx.run(10_000)


def test_lisp_costs_dwarf_mesa():
    """Section 7's qualitative claim: Lisp's 32-bit items and checks make
    everything several times more expensive than Mesa."""
    from repro.perf.measure import OpcodeProfiler

    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    for _ in range(10):
        b.op("LLV", symbol_operand(1))
        b.op("SLV", symbol_operand(1))
    b.op("HALTL")
    ctx.load_program(b.assemble())
    set_symbol_value(ctx, 1, TAG_INT, 5)
    prof = OpcodeProfiler(ctx)
    ctx.run(100_000)
    assert prof.mean("LLV").mean_microinstructions >= 5
    assert prof.mean("SLV").mean_microinstructions >= 5


# --- destructive list surgery and predicates (extensions) -------------------

def test_rplaca_mutates_cell():
    def build(b):
        b.op("LLV", symbol_operand(0))   # the pair
        b.op("LIN", 99)                   # new car
        b.op("RPLACA")
        b.op("SLV", symbol_operand(1))    # the pair comes back
        b.op("LLV", symbol_operand(1)); b.op("CAR"); b.op("SLV", symbol_operand(2))
        b.op("HALTL")

    def setup(ctx):
        head = build_list(ctx, [1, 2])
        set_symbol_value(ctx, 0, TAG_PAIR, head)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 2) == (TAG_INT, 99)
    tag, _ = symbol_value(ctx, 1)
    assert tag == TAG_PAIR


def test_rplacd_relinks_list():
    def build(b):
        b.op("LLV", symbol_operand(0))
        b.op("NILP")
        b.op("RPLACD")                    # truncate after the first cell
        b.op("SLV", symbol_operand(1))
        b.op("LLV", symbol_operand(1)); b.op("CDR"); b.op("SLV", symbol_operand(2))
        b.op("HALTL")

    def setup(ctx):
        head = build_list(ctx, [7, 8, 9])
        set_symbol_value(ctx, 0, TAG_PAIR, head)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 2) == (TAG_NIL, 0)


def test_rplaca_on_non_pair_traps():
    ctx = build_lisp_machine()
    b = BytecodeAssembler(ctx.table)
    b.op("LIN", 5); b.op("LIN", 6); b.op("RPLACA"); b.op("HALTL")
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash):
        ctx.run(10_000)


def test_atom_predicate():
    def build(b):
        b.op("LIN", 5); b.op("ATOM"); b.op("SLV", symbol_operand(1))
        b.op("LLV", symbol_operand(0)); b.op("ATOM"); b.op("SLV", symbol_operand(2))
        b.op("NILP"); b.op("ATOM"); b.op("SLV", symbol_operand(3))
        b.op("HALTL")

    def setup(ctx):
        head = build_list(ctx, [1])
        set_symbol_value(ctx, 0, TAG_PAIR, head)

    ctx = run_program(build, setup=setup)
    assert symbol_value(ctx, 1) == (TAG_INT, 1)   # integers are atoms
    assert symbol_value(ctx, 2) == (TAG_INT, 0)   # pairs are not
    assert symbol_value(ctx, 3) == (TAG_INT, 1)   # NIL is an atom
