"""Hold semantics (section 5.7): dead time that other tasks can absorb."""

import pytest

from repro import Assembler, FF, MachineConfig, MicrocodeCrash, Processor


def test_hold_is_counted_not_executed():
    """A held instruction is a 'no-op, jump to self': no effects."""
    asm = Assembler()
    asm.register("addr", 1)
    asm.register("acc", 2)
    asm.emit(r="addr", b=0x0200, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)            # cold miss
    asm.emit(r="acc", a="MD", alu="A", load="RM")     # held until data
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    cpu.memory.storage.write_word(0x200, 0x77)
    cpu.run(1000)
    assert cpu.console.trace == [0x77]
    # Roughly the miss penalty of held cycles, counted separately.
    assert cpu.counters.held_cycles >= cpu.config.miss_penalty - 3
    assert cpu.counters.instructions < cpu.counters.cycles


def test_hold_releases_processor_to_higher_task():
    """While task 0 is held on a miss, a woken I/O task runs in the
    dead cycles and task 0's instruction restarts afterwards."""
    asm = Assembler()
    asm.register("addr", 1)
    asm.register("acc", 2)
    asm.emit(r="addr", b=0x0200, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(r="acc", a="MD", alu="A", load="RM")     # long hold
    asm.emit(r="acc", b="RM", ff=FF.TRACE)
    asm.halt()
    asm.label("io")
    asm.emit(b="TASK", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE, block=True, goto="io")
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    cpu.memory.storage.write_word(0x200, 0x55)
    cpu.pipe.write_tpc(9, cpu.address_of("io"))

    # Wake task 9 once task 0 is holding.
    ran = 0
    while not cpu.halted and ran < 1000:
        cpu.step()
        ran += 1
        if cpu.counters.held_cycles == 2:
            cpu.pipe.set_wakeup(9)
        if cpu.counters.task_instructions[9] == 2:
            cpu.pipe.clear_wakeup(9)
    assert cpu.halted
    # The I/O task ran inside the hold window (possibly twice, since the
    # raw wakeup stayed latched) and traced before task 0's data arrived.
    assert cpu.console.trace[0] == 9
    assert cpu.console.trace[-1] == 0x55
    assert cpu.counters.task_cycles[9] > 0


def test_fastio_holds_while_storage_busy():
    asm = Assembler()
    asm.emit(idle=True)
    asm.label("io")
    asm.emit(r=0, a="RM", fetch="fast", block=False)
    asm.emit(r=0, a="RM", fetch="fast")  # storage busy: holds ~8 cycles
    asm.emit(ff=FF.HALT, idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)

    class Port:
        task = 9
        io_address = 0x99
        register_count = 1
        attention = False
        explicit_notify = False

        def attach(self, machine):
            pass

        def tick(self, machine, granted):
            pass

        def fast_deliver(self, address, words):
            pass

    cpu.attach_device(Port())
    cpu.regs.write_rbase(9, 0)
    cpu.regs.write_rm_absolute(0, 0)
    cpu.boot(cpu.address_of("io"), task=9)
    cpu.run(200)
    assert cpu.halted
    assert cpu.counters.held_cycles >= cpu.config.storage_cycle - 2


def test_nextmacro_holds_until_ifu_ready():
    from repro.emulators.mesa import build_mesa_machine
    from repro.emulators.isa import BytecodeAssembler

    ctx = build_mesa_machine()
    b = BytecodeAssembler(ctx.table)
    b.op("JMP", "target")
    for _ in range(4):
        b.op("NOP")
    b.label("target")
    b.op("HALT")
    ctx.load_program(b.assemble())
    ctx.run(1000)
    assert ctx.halted
    # The taken jump flushed the IFU: the NEXTMACRO held a few cycles.
    assert ctx.cpu.counters.held_cycles >= 2


def test_runaway_hold_is_detected():
    """Using MEMDATA with no fetch ever issued would hold forever; the
    simulator turns that microcoding bug into a crash."""
    import repro.core.processor as procmod

    asm = Assembler()
    asm.emit(a="MD", alu="A", load="T", idle=True)
    cpu = Processor()
    cpu.load_image(asm.assemble())
    old_limit = procmod.HOLD_LIMIT
    procmod.HOLD_LIMIT = 100
    try:
        with pytest.raises(MicrocodeCrash, match="held"):
            cpu.run(10_000)
    finally:
        procmod.HOLD_LIMIT = old_limit


def test_clocks_keep_running_during_hold():
    """Pending register writes land even while the successor holds."""
    asm = Assembler()
    asm.register("addr", 1)
    asm.register("x", 2)
    asm.emit(r="addr", b=0x0300, alu="B", load="RM")
    asm.emit(r="addr", a="RM", fetch=True)
    asm.emit(r="x", b=0x11, alu="B", load="RM")   # staged write...
    asm.emit(a="MD", alu="A", load="T")            # ...lands while this holds
    asm.emit(r="x", b="RM", ff=FF.TRACE)
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map(8)
    cpu.run(1000)
    assert cpu.console.trace == [0x11]
