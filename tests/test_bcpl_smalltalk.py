"""The BCPL and Smalltalk emulators."""

import pytest

from repro import MicrocodeCrash
from repro.emulators.bcpl import build_bcpl_machine, set_static, static_value
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.smalltalk import (
    ObjectMemory,
    build_smalltalk_machine,
    ivar_operand,
)


# --- BCPL -------------------------------------------------------------------

def run_bcpl(build, setup=None, max_cycles=100_000):
    ctx = build_bcpl_machine()
    b = BytecodeAssembler(ctx.table)
    build(b)
    ctx.load_program(b.assemble())
    if setup:
        setup(ctx)
    ctx.run(max_cycles)
    assert ctx.halted
    return ctx


def test_bcpl_load_store():
    def build(b):
        b.op("LDI", 0x1234); b.op("STA", 0)
        b.op("LDA", 0); b.op("STA", 1)
        b.op("HALTA")

    ctx = run_bcpl(build)
    assert static_value(ctx, 0) == 0x1234
    assert static_value(ctx, 1) == 0x1234


def test_bcpl_arithmetic():
    def build(b):
        b.op("LDI", 10); b.op("ADDA", 5); b.op("STA", 0)
        b.op("LDA", 0); b.op("SUBA", 6); b.op("STA", 1)
        b.op("LDA", 1); b.op("INCA"); b.op("DECA"); b.op("DECA"); b.op("STA", 2)
        b.op("HALTA")

    def setup(ctx):
        set_static(ctx, 5, 32)
        set_static(ctx, 6, 2)

    ctx = run_bcpl(build, setup=setup)
    assert static_value(ctx, 0) == 42
    assert static_value(ctx, 1) == 40
    assert static_value(ctx, 2) == 39


def test_bcpl_conditional_jumps():
    def build(b):
        b.op("LDI", 2); b.op("STA", 0)
        b.label("loop")
        b.op("LDA", 0); b.op("DECA"); b.op("STA", 0)
        b.op("JNZA", "loop")
        b.op("LDI", 0xAA); b.op("STA", 1)
        b.op("HALTA")

    assert static_value(run_bcpl(build), 1) == 0xAA


def test_bcpl_call_return():
    def build(b):
        b.op("LDI", 5)
        b.op("CALLA", "addone")
        b.op("STA", 0)
        b.op("HALTA")
        b.label("addone")
        b.op("INCA")
        b.op("RETA")

    assert static_value(run_bcpl(build), 0) == 6


def test_bcpl_nested_calls():
    def build(b):
        b.op("LDI", 1)
        b.op("CALLA", "f")
        b.op("STA", 0)
        b.op("HALTA")
        b.label("f")
        b.op("CALLA", "g")
        b.op("INCA")
        b.op("RETA")
        b.label("g")
        b.op("INCA")
        b.op("RETA")

    assert static_value(run_bcpl(build), 0) == 3


# --- Smalltalk -----------------------------------------------------------------

SEL_GET = 3
SEL_ADD = 7


def smalltalk_counter_machine(sends):
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    cls = om.make_class({SEL_GET: 0, SEL_ADD: 0})
    counter = om.make_instance(cls, [100])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", sends)
    b.label("loop")
    b.op("DUPS"); b.op("JZS", "end")
    b.op("PUSHC", counter); b.op("PUSHC", 3); b.op("SEND1", SEL_ADD); b.op("DROPS")
    b.op("PUSHC", 1); b.op("SUBS")
    b.op("JMPS", "loop")
    b.label("end")
    b.op("HALTS")
    b.label("madd")
    b.op("PUSHA")
    b.op("PUSHIV", ivar_operand(0)); b.op("ADDS"); b.op("STIV", ivar_operand(0))
    b.op("PUSHR"); b.op("RETS")
    ctx.load_program(b.assemble())
    om.set_method(cls, SEL_ADD, b.address_of("madd"))
    return ctx, om, counter


def test_send_dispatches_through_dictionary():
    ctx, om, counter = smalltalk_counter_machine(sends=4)
    ctx.run(100_000)
    assert ctx.halted
    assert om.ivar(counter, 0) == 100 + 4 * 3


def test_send_returns_receiver():
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    cls = om.make_class({SEL_GET: 0})
    obj = om.make_instance(cls, [7])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", obj); b.op("PUSHC", 0); b.op("SEND1", SEL_GET)
    b.op("HALTS")
    b.label("mget")
    b.op("PUSHIV", ivar_operand(0))  # the argument stays in the frame
    b.op("RETS")
    ctx.load_program(b.assemble())
    om.set_method(cls, SEL_GET, b.address_of("mget"))
    ctx.run(100_000)
    assert ctx.halted
    assert ctx.cpu.stack.read_top() == 7  # result left on the eval stack


def test_message_not_understood_traps():
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    cls = om.make_class({SEL_GET: 0})
    obj = om.make_instance(cls, [0])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", obj); b.op("PUSHC", 0); b.op("SEND1", 99)
    b.op("HALTS")
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash):
        ctx.run(10_000)


def test_send_cost_scales_with_probe_depth():
    """Dictionary scan: later selectors cost more microinstructions."""
    from repro.perf.measure import OpcodeProfiler

    costs = {}
    for position in (0, 3):
        ctx = build_smalltalk_machine()
        om = ObjectMemory(ctx)
        selectors = {i + 20: 0 for i in range(position)}
        selectors[SEL_ADD] = 0
        cls = om.make_class(selectors)
        obj = om.make_instance(cls, [0])
        b = BytecodeAssembler(ctx.table)
        b.op("PUSHC", obj); b.op("PUSHC", 1); b.op("SEND1", SEL_ADD)
        b.op("HALTS")
        b.label("m")
        b.op("PUSHR"); b.op("RETS")
        ctx.load_program(b.assemble())
        om.set_method(cls, SEL_ADD, b.address_of("m"))
        prof = OpcodeProfiler(ctx)
        ctx.run(100_000)
        costs[position] = prof.mean("SEND1").mean_microinstructions
    assert costs[3] > costs[0]


def test_inherited_method_found_in_superclass():
    """A subclass without the selector dispatches to its parent's method."""
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    parent = om.make_class({SEL_ADD: 0})
    child = om.make_class({SEL_GET: 0}, superclass=parent)
    obj = om.make_instance(child, [5])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", obj); b.op("PUSHC", 7); b.op("SEND1", SEL_ADD)
    b.op("HALTS")
    b.label("madd")
    b.op("PUSHA")
    b.op("PUSHIV", ivar_operand(0)); b.op("ADDS"); b.op("STIV", ivar_operand(0))
    b.op("PUSHR"); b.op("RETS")
    ctx.load_program(b.assemble())
    om.set_method(parent, SEL_ADD, b.address_of("madd"))
    ctx.run(100_000)
    assert ctx.halted
    assert om.ivar(obj, 0) == 12  # the inherited method ran on the child


def test_override_shadows_superclass():
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    parent = om.make_class({SEL_ADD: 0})
    child = om.make_class({SEL_ADD: 0}, superclass=parent)
    obj = om.make_instance(child, [0])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", obj); b.op("PUSHC", 1); b.op("SEND1", SEL_ADD)
    b.op("HALTS")
    b.label("parent_m")   # would set 100
    b.op("PUSHC", 100); b.op("STIV", ivar_operand(0))
    b.op("PUSHR"); b.op("RETS")
    b.label("child_m")    # adds the argument
    b.op("PUSHA")
    b.op("PUSHIV", ivar_operand(0)); b.op("ADDS"); b.op("STIV", ivar_operand(0))
    b.op("PUSHR"); b.op("RETS")
    ctx.load_program(b.assemble())
    om.set_method(parent, SEL_ADD, b.address_of("parent_m"))
    om.set_method(child, SEL_ADD, b.address_of("child_m"))
    ctx.run(100_000)
    assert ctx.halted
    assert om.ivar(obj, 0) == 1   # the override ran, not the parent


def test_dnu_walks_whole_chain_before_trapping():
    ctx = build_smalltalk_machine()
    om = ObjectMemory(ctx)
    grandparent = om.make_class({SEL_GET: 0})
    parent = om.make_class({}, superclass=grandparent)
    child = om.make_class({}, superclass=parent)
    obj = om.make_instance(child, [0])
    b = BytecodeAssembler(ctx.table)
    b.op("PUSHC", obj); b.op("PUSHC", 0); b.op("SEND1", 99)
    b.op("HALTS")
    ctx.load_program(b.assemble())
    with pytest.raises(MicrocodeCrash):
        ctx.run(100_000)


def test_send_cost_scales_with_hierarchy_depth():
    from repro.perf.measure import OpcodeProfiler

    costs = {}
    for depth in (0, 3):
        ctx = build_smalltalk_machine()
        om = ObjectMemory(ctx)
        cls = om.make_class({SEL_ADD: 0})
        root = cls
        for _ in range(depth):
            cls = om.make_class({}, superclass=cls)
        obj = om.make_instance(cls, [0])
        b = BytecodeAssembler(ctx.table)
        b.op("PUSHC", obj); b.op("PUSHC", 1); b.op("SEND1", SEL_ADD)
        b.op("HALTS")
        b.label("m")
        b.op("PUSHR"); b.op("RETS")
        ctx.load_program(b.assemble())
        om.set_method(root, SEL_ADD, b.address_of("m"))
        prof = OpcodeProfiler(ctx)
        ctx.run(100_000)
        costs[depth] = prof.mean("SEND1").mean_microinstructions
    assert costs[3] > costs[0] + 10  # each hop costs real microinstructions


def test_bcpl_vector_indexing():
    """LDX: the static holds a vector base, AC the subscript."""
    from repro.emulators.bcpl import STATICS_VA

    def build(b):
        b.op("LDI", 3)          # AC = subscript 3
        b.op("LDX", 4)          # AC = vec[3]
        b.op("STA", 0)
        b.op("HALTA")

    def setup(ctx):
        set_static(ctx, 4, 0x2000)       # the vector base (absolute VA)
        for i in range(8):
            ctx.set_memory_word(0x2000 + i, 0x900 + i)

    ctx = run_bcpl(build, setup=setup)
    assert static_value(ctx, 0) == 0x903


def test_bcpl_vector_sum_loop():
    def build(b):
        b.op("LDI", 0); b.op("STA", 0)    # total
        b.op("LDI", 5); b.op("STA", 1)    # i
        b.label("loop")
        b.op("LDA", 1); b.op("DECA"); b.op("STA", 1)  # i-1 as subscript
        b.op("LDA", 1)
        b.op("LDX", 4)                     # vec[i-1]
        b.op("ADDA", 0); b.op("STA", 0)
        b.op("LDA", 1); b.op("JNZA", "loop")
        b.op("HALTA")

    def setup(ctx):
        set_static(ctx, 4, 0x2100)
        for i in range(5):
            ctx.set_memory_word(0x2100 + i, 10 + i)

    ctx = run_bcpl(build, setup=setup)
    assert static_value(ctx, 0) == sum(10 + i for i in range(5))
