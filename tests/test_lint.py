"""The microcode lint tool."""

import pytest

from repro import Assembler, FF
from repro.asm.lint import Finding, Severity, lint_image, lint_report, successors
from repro.core.microword import BSel, MicroInstruction, NextControl, NextType


def lint(build, entries=None):
    asm = Assembler()
    build(asm)
    image = asm.assemble()
    entry_addrs = None
    if entries is not None:
        entry_addrs = [image.address_of(e) for e in entries]
    return image, lint_image(image, entries=entry_addrs)


def test_clean_program():
    def build(asm):
        asm.emit(b=1, alu="B", load="T")
        asm.halt()

    _, findings = lint(build)
    assert findings == []
    assert lint_report(findings) == "clean: no findings"


def test_md_distance_one_warns():
    def build(asm):
        asm.register("p", 1)
        asm.emit(r="p", a="RM", fetch=True)
        asm.emit(a="MD", alu="A", load="T")  # one cycle later: holds
        asm.halt()

    _, findings = lint(build)
    assert any(f.severity == Severity.WARNING and "Hold" in f.message
               for f in findings)


def test_md_distance_two_is_clean():
    def build(asm):
        asm.register("p", 1)
        asm.emit(r="p", a="RM", fetch=True)
        asm.emit(b=0, alu="B")               # spacer
        asm.emit(a="MD", alu="A", load="T")
        asm.halt()

    _, findings = lint(build)
    assert not any(f.severity == Severity.WARNING for f in findings)


def test_md_warning_through_branch_edge():
    def build(asm):
        asm.register("p", 1)
        asm.emit(r="p", a="RM", fetch=True, branch=("ZERO", "t", "f"))
        asm.label("t")
        asm.emit(a="MD", alu="A", load="T", goto="end")
        asm.label("f")
        asm.emit(b=0, alu="B", goto="end")
        asm.label("end")
        asm.halt()

    _, findings = lint(build)
    warned = [f for f in findings if f.severity == Severity.WARNING]
    assert len(warned) == 1  # only the true arm consumes MD too early


def test_fastio_fetch_not_flagged_as_md_producer():
    def build(asm):
        asm.emit(r=0, a="RM", fetch="fast")
        asm.emit(a="MD", alu="A", load="T")  # MD is stale, but no new Fetch
        asm.halt()

    _, findings = lint(build)
    assert not any("Hold" in f.message for f in findings)


def test_extb_without_selector_is_error():
    image_words = {0: MicroInstruction(bsel=BSel.EXTB, ff=0,
                                       nc=NextControl.pack(NextType.GOTO, 0))}
    from repro.asm.program import Image

    image = Image(words=image_words, symbols={}, im_size=4096)
    findings = lint_image(image)
    assert any(f.severity == Severity.ERROR for f in findings)


def test_unreachable_reported():
    def build(asm):
        asm.label("main")
        asm.emit(ff=FF.HALT, idle=True)
        asm.label("orphan")
        asm.emit(idle=True)

    image, findings = lint(build, entries=["main"])
    orphan = image.address_of("orphan")
    assert any(f.severity == Severity.INFO and f.address == orphan
               for f in findings)


def test_reachability_suppressed_when_graph_incomplete():
    def build(asm):
        asm.label("main")
        asm.emit(nextmacro=True)   # data-dependent successor
        asm.label("other")
        asm.emit(ff=FF.HALT, idle=True)

    _, findings = lint(build, entries=["main"])
    assert not any(f.severity == Severity.INFO for f in findings)


def test_successors_of_call_includes_continuation():
    def build(asm):
        asm.label("main")
        asm.emit(call="sub")
        asm.emit(ff=FF.HALT, idle=True)
        asm.label("sub")
        asm.emit(ret=True)

    asm = Assembler()
    build(asm)
    image = asm.assemble()
    main = image.address_of("main")
    nexts, complete = successors(image, main, 64)
    assert complete
    assert set(nexts) == {image.address_of("sub"), main + 1}


def test_emulator_microcode_lints_without_errors():
    """The shipped emulators must be shape-error free; their known MD
    holds (LL and friends) show up as warnings only."""
    from repro.emulators.mesa import build_decode_table, emit_microcode

    asm = Assembler()
    asm.label("entry")
    asm.emit(nextmacro=True)
    emit_microcode(asm)
    image = asm.assemble()
    findings = lint_image(image)
    assert not any(f.severity == Severity.ERROR for f in findings), \
        lint_report(findings)
    # LL's push-MD-after-fetch is a known, intentional single-cycle hold.
    assert any(f.severity == Severity.WARNING for f in findings)


def test_device_microcode_lints_clean_of_errors():
    from repro.io.disk import disk_microcode
    from repro.io.display import display_fast_microcode
    from repro.io.network import network_microcode
    from repro.io.timer import timer_microcode

    asm = Assembler()
    asm.emit(idle=True)
    for emit in (disk_microcode, display_fast_microcode, network_microcode,
                 timer_microcode):
        emit(asm)
    findings = lint_image(asm.assemble())
    assert not any(f.severity == Severity.ERROR for f in findings), \
        lint_report(findings)
