"""Ablations over the design choices DESIGN.md calls out.

The paper fixes a design point (2-cycle cache, 8-cycle storage, 64-word
pages, full bypassing, 2-instruction grain).  These benchmarks move each
knob and measure the consequence, extending the paper's qualitative
arguments with curves:

* cache size vs. emulator performance (section 4: "performance is
  limited by the cache hit rate");
* miss penalty vs. hold time (section 5.7's motivation);
* control-store page size vs. placement utilization (section 5.5's
  NextControl-width tradeoff).
"""

import pytest

from repro import Assembler, MachineConfig
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.mesa import FRAMES_VA, build_mesa_machine
from repro.perf.report import synthetic_microprogram

from conftest import report_rows

ARRAY_VA = 0x8000
ARRAY_WORDS = 2048


def array_sum_workload(config, passes=2):
    """A Mesa loop summing a 2K-word array *passes* times.

    The second pass hits in a large cache and misses again in a small
    one -- the discriminating access pattern.
    """
    ctx = build_mesa_machine(config)
    b = BytecodeAssembler(ctx.table)
    b.op("LIT", passes); b.op("SL", 2)      # outer pass counter
    b.op("LIT", 0); b.op("SL", 0)           # sum
    b.label("pass")
    b.op("LITW", ARRAY_WORDS - 1); b.op("SL", 1)  # index
    b.label("loop")
    b.op("LITW", ARRAY_VA); b.op("LL", 1); b.op("AL")
    b.op("LL", 0); b.op("ADD"); b.op("SL", 0)
    b.op("LL", 1); b.op("LIT", 1); b.op("SUB"); b.op("SL", 1)
    b.op("LL", 1); b.op("JNZ", "loop")
    b.op("LL", 2); b.op("LIT", 1); b.op("SUB"); b.op("SL", 2)
    b.op("LL", 2); b.op("JNZ", "pass")
    b.op("HALT")
    ctx.load_program(b.assemble())
    for i in range(ARRAY_WORDS):
        ctx.cpu.memory.storage.write_word(ARRAY_VA + i, i & 0xFF)
    return ctx


@pytest.mark.parametrize("cache_lines", [16, 64, 256, 1024])
def test_cache_size_ablation(benchmark, cache_lines):
    config = MachineConfig(cache_lines=cache_lines, cache_ways=2)

    def run():
        ctx = array_sum_workload(config)
        cycles = ctx.run(5_000_000)
        assert ctx.halted
        return ctx, cycles

    ctx, cycles = benchmark(run)
    counters = ctx.cpu.counters
    cpb = cycles / ctx.cpu.ifu.dispatches
    print(f"\ncache {cache_lines * 16} words: hit rate {counters.hit_rate:.3f}, "
          f"{cpb:.2f} cycles/byte-code, {counters.held_cycles} held")
    # A 2K-word array in a 16-line (256-word) cache misses on every
    # pass; a cache bigger than the array misses only on the first.
    if cache_lines * 16 >= 2 * ARRAY_WORDS:
        assert counters.cache_misses < 1.5 * (ARRAY_WORDS // 16)
    if cache_lines == 16:
        assert counters.cache_misses > 1.8 * (ARRAY_WORDS // 16)


@pytest.mark.parametrize("miss_penalty", [8, 26, 60])
def test_miss_penalty_ablation(benchmark, miss_penalty):
    config = MachineConfig(cache_lines=16, cache_ways=2, miss_penalty=miss_penalty)

    def run():
        ctx = array_sum_workload(config)
        cycles = ctx.run(10_000_000)
        assert ctx.halted
        return ctx.cpu.counters.held_cycles, cycles

    held, cycles = benchmark(run)
    print(f"\nmiss penalty {miss_penalty}: {held} held cycles of {cycles}")
    assert held > 0


def test_cache_size_monotonicity():
    """Bigger caches never lose on the two-pass workload."""
    cycles = {}
    for lines in (16, 1024):
        ctx = array_sum_workload(MachineConfig(cache_lines=lines, cache_ways=2))
        cycles[lines] = ctx.run(10_000_000)
        assert ctx.halted
    assert cycles[1024] < cycles[16]


def test_miss_penalty_monotonicity():
    """More miss penalty can only slow the thrashing workload down."""
    results = {}
    for penalty in (8, 26, 60):
        config = MachineConfig(cache_lines=16, cache_ways=2, miss_penalty=penalty)
        ctx = array_sum_workload(config)
        results[penalty] = ctx.run(10_000_000)
        assert ctx.halted
    assert results[8] < results[26] < results[60]


@pytest.mark.parametrize("page_size", [16, 32, 64])
def test_page_size_placement_ablation(benchmark, page_size):
    """Smaller pages mean more cross-page transfers (more FF assists)
    and more fragmentation; 64-word pages were the right call."""
    config = MachineConfig(page_size=page_size)

    # FF JumpPage addresses at most 64 pages, so the usable store is
    # 64 * page_size words: another cost of shrinking pages.
    budget = min(1200, int(64 * page_size * 0.85))

    def place():
        asm = Assembler(config)
        synthetic_microprogram(asm, budget, seed=99)
        asm.assemble()
        return asm.report

    report = benchmark(place)
    print(f"\npage {page_size}: utilization {report.utilization:.4f}, "
          f"{report.ff_assists} FF assists over {report.pages_used} pages")
    assert report.utilization > 0.9


def test_page_size_assist_tradeoff():
    """The section 5.5 tradeoff made measurable: shrinking pages buys
    nothing but extra jump assists."""
    assists = {}
    for page_size in (16, 64):
        config = MachineConfig(page_size=page_size)
        asm = Assembler(config)
        synthetic_microprogram(asm, 800, seed=7)
        asm.assemble()
        assists[page_size] = asm.report.ff_assists
    assert assists[16] > assists[64]


@pytest.mark.parametrize("ways", [1, 2, 4])
def test_associativity_ablation(benchmark, ways):
    config = MachineConfig(cache_lines=64, cache_ways=ways)

    def run():
        ctx = array_sum_workload(config)
        cycles = ctx.run(5_000_000)
        assert ctx.halted
        return ctx.cpu.counters.hit_rate

    hit_rate = benchmark(run)
    print(f"\n{ways}-way: hit rate {hit_rate:.3f}")
