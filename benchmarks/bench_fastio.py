"""E4 / E7 / E11: fast I/O at 530 Mbit/s for 25% of the processor, the
slow I/O one-word-per-cycle ceiling, and the storage bandwidth ceiling
(sections 5.8 and 6.2.1)."""

from repro.io.display import DISPLAY_TASK
from repro.perf import report
from repro.perf.report import _display_run

from conftest import report_rows


def test_e4_report(benchmark):
    rows = benchmark(report.experiment_e4)
    report_rows("E4 fast I/O bandwidth and occupancy", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert 480 <= float(values["Fast I/O bandwidth, Mbit/s"]) <= 534


def test_e7_report(benchmark):
    rows = benchmark(report.experiment_e7)
    report_rows("E7 slow I/O bandwidth", rows)


def test_e11_report(benchmark):
    rows = benchmark(report.experiment_e11)
    report_rows("E11 storage bandwidth ceiling", rows)


def test_display_band_simulation(benchmark):
    def run():
        rate, occupancy, display = _display_run(explicit_notify=False, munches=128)
        assert display.underruns == 0
        return rate, occupancy

    rate, occupancy = benchmark(run)
    print(f"\nfast I/O: {rate:.0f} Mbit/s at {occupancy:.3f} of the processor "
          "(paper: 530 at 0.25)")
