"""E5 / E12: the two-cycle task grain versus the rejected three-cycle
design, and the task-pipeline wakeup timing (section 6.2.1)."""

from repro.perf import report

from conftest import report_rows


def test_e5_grain_comparison(benchmark):
    rows = benchmark(report.experiment_e5)
    report_rows("E5 task grain 2 vs 3", rows)
    values = {metric: measured for metric, _, measured in rows}
    two = float(values["Processor fraction, 2-instruction grain"])
    three = float(values["Processor fraction, 3-instruction grain"])
    # Paper: 25% vs 37.5% -- the measured ratio must preserve that.
    assert 1.35 <= three / two <= 1.65


def test_e12_pipeline_timing(benchmark):
    rows = benchmark(report.experiment_e12)
    report_rows("E12 task pipeline timing", rows)
