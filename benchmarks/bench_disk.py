"""E3: the 10 Mbit/s disk consumes ~5% of the processor (section 7)."""

from repro.io.disk import DISK_TASK
from repro.perf import report
from repro.perf.report import _disk_machine

from conftest import report_rows


def test_e3_report(benchmark):
    rows = benchmark(report.experiment_e3)
    report_rows("E3 disk occupancy", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert 0.03 <= float(values["Disk read: processor fraction"]) <= 0.08


def test_disk_read_simulation(benchmark):
    def run():
        cpu, disk = _disk_machine(words_per_sector=256)
        disk.fill_sector(1, [i & 0xFFFF for i in range(256)])
        disk.begin_read(cpu, sector=1, buffer_va=0x4000)
        cpu.run_until(lambda m: disk.done, max_cycles=100_000)
        return cpu

    cpu = benchmark(run)
    occupancy = cpu.counters.task_cycles[DISK_TASK] / cpu.counters.cycles
    print(f"\ndisk read occupancy: {occupancy:.3f} (paper: 0.05)")


def test_disk_write_simulation(benchmark):
    def run():
        cpu, disk = _disk_machine(words_per_sector=256)
        for i in range(260):
            cpu.memory.debug_write(0x4000 + i, i)
        disk.begin_write(cpu, sector=2, buffer_va=0x4000)
        cpu.run_until(lambda m: disk.done, max_cycles=100_000)
        return cpu

    cpu = benchmark(run)
    assert cpu.counters.slowio_words_out >= 256
