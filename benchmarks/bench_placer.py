"""E6: automatic microcode placement fills ~99.9% of a full store
(section 7)."""

import pytest

from repro import Assembler, PRODUCTION
from repro.perf import report
from repro.perf.report import synthetic_microprogram

from conftest import report_rows


def test_e6_report(benchmark):
    rows = benchmark(report.experiment_e6)
    report_rows("E6 microstore placement", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert float(values["Microstore placement utilization"]) >= 0.98


@pytest.mark.parametrize("fill", [0.5, 0.75, 0.9, 0.98])
def test_placement_utilization_sweep(benchmark, fill):
    def place():
        asm = Assembler(PRODUCTION)
        synthetic_microprogram(asm, int(PRODUCTION.im_size * fill), seed=fill.hex().__hash__() & 0xFFFF)
        asm.assemble()
        return asm.report

    rep = benchmark(place)
    print(f"\nfill {fill:.2f}: utilization {rep.utilization:.4f} over {rep.pages_used} pages")
    assert rep.utilization >= 0.95
