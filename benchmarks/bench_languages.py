"""Cross-language comparison: the same algorithm on all four emulators.

Section 7's emulator discussion boils down to: the same source-level
computation costs wildly different amounts depending on the language's
run-time model.  Here fib(11) runs as (a) a compiled mini-Mesa program,
(b) a compiled mini-Interlisp program, (c) hand-assembled BCPL, and the
counter workload runs as Smalltalk sends -- the full cost spectrum, on
identical hardware, measured in 60 ns microcycles.
"""

import pytest

from repro.emulators.bcpl import build_bcpl_machine, static_value
from repro.emulators.compiler import run_source
from repro.emulators.isa import BytecodeAssembler
from repro.emulators.lispc import run_lisp

FIB_N = 11
FIB_EXPECTED = 89

MESA_FIB = f"""
proc fib(n) {{
    if n < 2 {{ return n; }}
    return fib(n - 1) + fib(n - 2);
}}
proc main() {{ trace(fib({FIB_N})); }}
"""

LISP_FIB = f"""
(defun fib (n)
  (if (zerop n) 0
      (if (zerop (- n 1)) 1
          (+ (fib (- n 1)) (fib (- n 2))))))
(trace (fib {FIB_N}))
"""


def bcpl_fib_iterative():
    """BCPL gets the iterative version: its accumulator model has no
    cheap recursion (exactly why PARC moved on from it)."""
    ctx = build_bcpl_machine()
    b = BytecodeAssembler(ctx.table)
    # statics: 0=a, 1=b, 2=i, 3=t
    b.op("LDI", 0); b.op("STA", 0)
    b.op("LDI", 1); b.op("STA", 1)
    b.op("LDI", FIB_N); b.op("STA", 2)
    b.label("loop")
    b.op("LDA", 0); b.op("ADDA", 1); b.op("STA", 3)
    b.op("LDA", 1); b.op("STA", 0)
    b.op("LDA", 3); b.op("STA", 1)
    b.op("LDA", 2); b.op("DECA"); b.op("STA", 2)
    b.op("JNZA", "loop")
    b.op("HALTA")
    ctx.load_program(b.assemble())
    return ctx


def test_mesa_fib(benchmark):
    def run():
        ctx = run_source(MESA_FIB)
        assert ctx.cpu.console.trace == [FIB_EXPECTED]
        return ctx.cpu.counters.cycles

    cycles = benchmark(run)
    print(f"\nMesa fib({FIB_N}): {cycles} cycles")


def test_lisp_fib(benchmark):
    def run():
        ctx = run_lisp(LISP_FIB)
        assert ctx.cpu.console.trace == [FIB_EXPECTED]
        return ctx.cpu.counters.cycles

    cycles = benchmark(run)
    print(f"\nLisp fib({FIB_N}): {cycles} cycles")


def test_bcpl_fib(benchmark):
    def run():
        ctx = bcpl_fib_iterative()
        ctx.run(1_000_000)
        assert static_value(ctx, 0) == FIB_EXPECTED
        return ctx.cpu.counters.cycles

    cycles = benchmark(run)
    print(f"\nBCPL fib({FIB_N}) (iterative): {cycles} cycles")


def test_language_cost_spectrum():
    """The architectural claim: identical computation, Lisp several
    times dearer than Mesa (paper: ~4x on calls, 2.5-5x overall)."""
    mesa = run_source(MESA_FIB).cpu.counters.cycles
    lisp = run_lisp(LISP_FIB).cpu.counters.cycles
    ratio = lisp / mesa
    print(f"\nfib({FIB_N}): Mesa {mesa} cycles, Lisp {lisp} cycles "
          f"-> {ratio:.1f}x")
    assert 2.0 <= ratio <= 8.0


SMALLTALK_COUNTER = """
class Counter [
    | count |
    bump: n  [ count := count + n. ^self ]
    value: _ [ ^count ]
]
main [
    c := new Counter.
    i := 20.
    "twenty sends"
    c bump: 1. c bump: 1. c bump: 1. c bump: 1. c bump: 1.
    c bump: 1. c bump: 1. c bump: 1. c bump: 1. c bump: 1.
    c bump: 1. c bump: 1. c bump: 1. c bump: 1. c bump: 1.
    c bump: 1. c bump: 1. c bump: 1. c bump: 1. c bump: 1.
    trace: (c value: 0).
]
"""


def test_smalltalk_sends(benchmark):
    from repro.emulators.stc import run_smalltalk

    def run():
        ctx, _ = run_smalltalk(SMALLTALK_COUNTER)
        assert ctx.cpu.console.trace == [20]
        return ctx.cpu.counters.cycles

    cycles = benchmark(run)
    print(f"\nSmalltalk: 21 sends in {cycles} cycles "
          f"({cycles / 21:.0f} cycles/send incl. dispatch)")
