"""E16: the scenario-matrix harness itself (cell execution + fan-out)."""

from repro.exp import ExperimentMatrix, ScenarioSpec, clear_boot_cache, execute_cell
from repro.perf import report

from conftest import report_rows


def test_e16_report(benchmark):
    rows = benchmark(report.experiment_matrix_ablation)
    report_rows("E16 scenario-matrix ablation", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert values["Matrix verdict"] == "passed"


def test_kernel_matrix_inline(benchmark):
    """The kernel grid end to end: product, run, evaluate, aggregate."""

    def run():
        return ExperimentMatrix.cartesian(
            "bench",
            workloads=("bypass_kernel", "bypass_kernel_padded"),
            variants=("production", "model0"),
        ).run()

    result = benchmark(run)
    assert result["passed"]


def test_clean_cell_with_boot_cache(benchmark):
    """One clean cell re-executed on forks of a cached pristine boot."""
    clear_boot_cache()
    spec = ScenarioSpec.clean("bypass_kernel", "production")
    execute_cell(spec)  # populate the cache outside the timed region
    measurements = benchmark(lambda: execute_cell(spec))
    assert measurements["cycles"] > 0
