"""E2: BitBlt bandwidth (paper: 34 Mbit/s simple, 24 Mbit/s complex)."""

import pytest

from repro.graphics.bitblt import BitBltFunction, build_bitblt_machine, run_bitblt
from repro.graphics.bitmap import Bitmap
from repro.perf import report

from conftest import report_rows


@pytest.fixture(scope="module")
def machine():
    cpu = build_bitblt_machine()
    src = Bitmap(cpu.memory, 0x2000, 31, 48)
    src.load_pattern()
    Bitmap(cpu.memory, 0x8000, 30, 48).fill(0)
    # Warm the cache so steady-state numbers are measured.
    run_bitblt(cpu, BitBltFunction.COPY, src_va=0x2000, dst_va=0x8000,
               words_per_row=30, rows=48, src_pitch=31, dst_pitch=30, shift=1)
    return cpu


def blt(cpu, function, **kw):
    return run_bitblt(
        cpu, function, src_va=0x2000, dst_va=0x8000,
        words_per_row=30, rows=48, src_pitch=31, dst_pitch=30, **kw
    )


def test_e2_report(benchmark):
    rows = benchmark(report.experiment_e2)
    report_rows("E2 BitBlt bandwidth", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert float(values["BitBlt simple (scroll/move), Mbit/s"]) > float(
        values["BitBlt complex (src op dst), Mbit/s"]
    )


def test_copy_bandwidth(machine, benchmark):
    cycles = benchmark(lambda: blt(machine, BitBltFunction.COPY, shift=5))
    rate = machine.config.megabits_per_second(30 * 48 * 16, cycles)
    print(f"\nBitBlt copy: {rate:.1f} Mbit/s (paper: 34)")
    assert 25 <= rate <= 45


def test_xor_bandwidth(machine, benchmark):
    cycles = benchmark(lambda: blt(machine, BitBltFunction.XOR, shift=5))
    rate = machine.config.megabits_per_second(30 * 48 * 16, cycles)
    print(f"\nBitBlt function: {rate:.1f} Mbit/s (paper: 24)")
    assert 18 <= rate <= 30


def test_fill_bandwidth(machine, benchmark):
    cycles = benchmark(lambda: blt(machine, BitBltFunction.FILL, fill_value=0))
    rate = machine.config.megabits_per_second(30 * 48 * 16, cycles)
    print(f"\nBitBlt erase: {rate:.1f} Mbit/s (store-limited upper bound)")
    assert rate > 100
