"""E8: data bypassing versus the Model 0 (section 5.6 ablation)."""

from repro.config import MODEL0, PRODUCTION
from repro.perf import report
from repro.perf.report import _bypass_kernel

from conftest import report_rows


def test_e8_report(benchmark):
    rows = benchmark(report.experiment_e8)
    report_rows("E8 bypassing ablation", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert float(values["Model 0 slowdown"].rstrip("x")) > 1.3


def test_bypassed_kernel(benchmark):
    cycles = benchmark(lambda: _bypass_kernel(PRODUCTION, padded=False))
    assert cycles > 0


def test_padded_model0_kernel(benchmark):
    cycles = benchmark(lambda: _bypass_kernel(MODEL0, padded=True))
    assert cycles > 0
