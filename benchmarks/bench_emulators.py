"""E1 / E10 / E13: emulator per-class costs, cycles per macroinstruction,
and the stitchweld-versus-multiwire comparison (paper section 7)."""

from repro.config import PRODUCTION, STITCHWELD
from repro.perf import report
from repro.perf.workloads import (
    bcpl_loop_sum,
    lisp_call_kernel,
    lisp_list_sum,
    mesa_fib,
    mesa_loop_sum,
    smalltalk_counter,
)

from conftest import report_rows


def test_e1_microinstruction_counts(benchmark):
    rows = benchmark(report.experiment_e1)
    report_rows("E1 emulator microinstruction counts", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert float(values["Mesa store (SL)"]) == 1.0
    assert float(values["Lisp/Mesa call ratio"]) >= 3.0


def test_e10_cycles_per_macroinstruction(benchmark):
    rows = benchmark(report.experiment_e10)
    report_rows("E10 cycles per macroinstruction", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert abs(float(values["Simple macroinstruction, cycles"]) - 1.0) < 0.1


def test_e13_stitchweld_vs_multiwire(benchmark):
    rows = benchmark(report.experiment_e13)
    report_rows("E13 stitchweld vs multiwire", rows)


def test_mesa_loop_throughput(benchmark):
    def run():
        return mesa_loop_sum(200).run()

    cycles = benchmark(run)
    assert cycles > 0


def test_mesa_call_throughput(benchmark):
    benchmark(lambda: mesa_fib(10).run())


def test_lisp_list_throughput(benchmark):
    benchmark(lambda: lisp_list_sum(30).run())


def test_lisp_call_throughput(benchmark):
    benchmark(lambda: lisp_call_kernel(10).run())


def test_bcpl_throughput(benchmark):
    benchmark(lambda: bcpl_loop_sum(150).run())


def test_smalltalk_send_throughput(benchmark):
    benchmark(lambda: smalltalk_counter(30).run())
