"""Service fleet throughput: sessions/s and cycles/s vs worker count.

The multi-tenant companion to ``bench_cluster.py`` -- the scripted
load test timed at 1, 2, 4 workers through
``repro.service.bench.run_service_bench``, the same sweep
``python -m repro.service bench`` records into BENCH_service.json,
plus the admission-path comparison (cold boot vs warm fork vs warm
restore) that motivates the fleet's checkpoint-eviction design.
"""

from repro.service import Session, clear_boot_cache
from repro.service.bench import run_service_bench

from conftest import report_rows


def test_service_scaling_sweep(benchmark):
    """The recorded sweep: every worker count verifies every session."""
    result = benchmark.pedantic(
        run_service_bench,
        args=((1, 2, 4),),
        kwargs={"sessions": 15, "capacity": 5},
        rounds=1,
    )
    recovery = result["recovery_overhead"]
    rows = [
        (f"W={row['workers']} sessions/s | cycles/s", "--",
         f"{row['sessions_per_second']} | {row['cycles_per_second']:,}")
        for row in result["scaling"]
    ] + [
        ("cold boot / warm restore admission", "--",
         f"{result['admission']['cold_over_warm_restore']}x"),
        ("chaos recovery overhead", "--",
         f"{recovery['overhead_ratio']}x "
         f"(ceiling {recovery['overhead_ceiling']}x)"),
    ]
    report_rows("E18 service fleet scaling", rows)
    for row in result["scaling"]:
        # 15 sessions, every third faulted: 10 clean ones must verify,
        # and the seeded plan is the known-recoverable demo one.
        assert row["verified"] == 15
        assert row["evictions"] > 0  # capacity 5 < 15 forces churn
    admission = result["admission"]
    assert admission["cold_boot_seconds"] > 0
    assert admission["warm_restore_seconds"] > 0
    # The recovery bench is also a correctness gate: the stormy run must
    # reproduce the clean artifact byte-for-byte, inside the ceiling.
    assert recovery["artifact_identical"]
    assert recovery["within_ceiling"]
    assert recovery["recovery"]["worker_crashes"] > 0


def test_warm_fork_admission_rate(benchmark):
    """Steady-state admission: one boot-cache fork per new session."""
    clear_boot_cache()
    Session.build("mesa_loop_sum", name="warmup")

    session = benchmark(Session.build, "mesa_loop_sum", name="admit")
    assert session.run() > 0
