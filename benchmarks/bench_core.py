"""Core simulator speed: the execution-plan cache and the compiled-trace
tier versus the interpretive reference (see ``repro.perf.corebench`` and
``BENCH_core.json`` for the standalone three-tier report)."""

from repro.config import INTERPRETED, PRODUCTION
from repro.perf.corebench import SCENARIOS, run_corebench
from repro.perf.measure import measure_staged_rate

from conftest import report_rows


def test_plan_cache_speedup():
    """The whole point of the fast tiers: same cycles, fewer seconds."""
    results = run_corebench(repeats=2)
    rows = [
        (
            name, "-",
            f"{row['speedup']:.2f}x plan, {row['traced_speedup']:.2f}x "
            f"traced ({row['simulated_cycles']} cycles)",
        )
        for name, row in results.items()
    ]
    report_rows("Core execution-tier speedups (interp vs plan vs traced)", rows)
    # run_corebench already asserted cycle parity; require a real win on
    # the emulator loop (the acceptance gate is 2x, measured standalone
    # in corebench -- under pytest we allow scheduler noise).
    assert results["E1_mesa_loop_sum"]["speedup"] > 1.2


def test_core_fast_path_rate(benchmark):
    stage = SCENARIOS["E1_mesa_loop_sum"](PRODUCTION)
    cycles = benchmark(lambda: stage()())
    assert cycles > 0


def test_core_interpreted_rate(benchmark):
    stage = SCENARIOS["E1_mesa_loop_sum"](INTERPRETED)
    cycles = benchmark(lambda: stage()())
    assert cycles > 0


def test_measure_staged_rate_smoke():
    rate = measure_staged_rate(SCENARIOS["E2_bitblt_copy"](PRODUCTION), repeats=1)
    assert rate.cycles > 0 and rate.seconds > 0
    assert rate.cycles_per_second > 0
