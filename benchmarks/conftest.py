"""Benchmark-harness helpers.

Each ``bench_*`` file regenerates one group of the paper's section 7
numbers (see DESIGN.md's experiment index and EXPERIMENTS.md for
paper-versus-measured).  pytest-benchmark times the simulation; the
reproduced figures are printed and asserted so a benchmark run doubles
as a reproduction check.
"""

import pytest


def report_rows(title, rows):
    from repro.perf.report import format_rows

    print()
    print(format_rows(title, rows))
