"""Cluster scaling: aggregate simulated cycles/s vs node count.

The multi-machine companion to ``bench_core.py`` -- the demo relay ring
timed at N = 1, 2, 4 nodes through ``repro.cluster.bench.run_scaling``,
the same sweep ``python -m repro.cluster bench`` records into
BENCH_cluster.json next to BENCH_core.json.
"""

from repro.cluster import build_ring_cluster, build_ring_template, ring_epoch_budget
from repro.cluster.bench import run_scaling

from conftest import report_rows


def test_cluster_scaling_sweep(benchmark):
    """The recorded sweep itself: every node count verifies end to end."""
    result = benchmark.pedantic(run_scaling, args=((1, 2, 4),), rounds=1)
    rows = [
        (f"N={row['nodes']} aggregate cycles/s", "--",
         f"{row['cycles_per_second']:,}")
        for row in result["scaling"]
    ]
    report_rows("E17 cluster ring scaling", rows)
    assert all(row["verified"] for row in result["scaling"])
    # More nodes simulate more aggregate cycles (same epochs, N machines).
    totals = [row["total_cycles"] for row in result["scaling"]]
    assert totals == sorted(totals)


def test_three_node_ring_epoch_rate(benchmark):
    """Steady-state coordinator cost: one full 3-node 2-lap ring run."""
    template = build_ring_template()

    def run():
        cluster = build_ring_cluster(3, laps=2, template=template)
        cluster.run(max_epochs=ring_epoch_budget(3, 2))
        return cluster

    cluster = benchmark(run)
    assert cluster.nodes[0].program.verified
