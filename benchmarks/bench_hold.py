"""E9: Hold turns memory dead time into I/O service time (section 5.7)."""

from repro.perf import report

from conftest import report_rows


def test_e9_report(benchmark):
    rows = benchmark(report.experiment_e9)
    report_rows("E9 hold overlap", rows)
    values = {metric: measured for metric, _, measured in rows}
    assert float(values["Emulator slowdown from disk"].rstrip("x")) < 1.15
