"""Shim so editable installs work offline (no wheel package available)."""

from setuptools import setup

setup()
