"""Run-time fault delivery: consume the plan, corrupt, count, trace.

One :class:`FaultInjector` is built per machine (by
:class:`~repro.mem.pipeline.MemorySystem` when the config carries a
:class:`~repro.fault.plan.FaultConfig`) and shared by every component
that can misbehave: storage consults :attr:`FaultInjector.ecc` on each
munch read, the memory pipeline asks :meth:`memory_fault_due` before
each timed reference, and the disk controller asks
:meth:`disk_error_due` before each word transfer.

Delivery is strictly in plan order per component: each component drains
its own FIFO of events, an event firing at the first matching operation
at or after its scheduled cycle.  Because both cycle implementations of
the core count cycles identically, a given seed produces the identical
fault trace under either -- the differential tests in
``tests/test_fault_injection.py`` enforce exactly that.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..types import MUNCH_WORDS
from .plan import FaultEvent, FaultKind, FaultRecord, InjectionPlan


class EccFilter:
    """Models the storage ECC check on the munch read path.

    A correctable (single-bit) event is fixed in flight: the data is
    delivered intact and only the correction counter and the fault
    trace record it happened.  An uncorrectable (double-bit) event
    delivers the munch with two bits flipped in one word and reports
    upward so the storage fault latch is set for the fault task.
    """

    def __init__(self, injector: "FaultInjector") -> None:
        self._injector = injector

    def filter_read(self, base: int, words: List[int]) -> List[int]:
        injector = self._injector
        queue = injector._storage_queue
        if not queue or queue[0].cycle > injector.now:
            return words
        event = queue.popleft()
        counters = injector.counters
        counters.faults_injected += 1
        word_index = (event.arg >> 8) % MUNCH_WORDS
        bit = (event.arg >> 4) & 0xF
        if event.kind is FaultKind.ECC_CORRECTABLE:
            counters.ecc_corrected += 1
            injector.record(
                "storage", event.kind.value, base + word_index,
                f"single-bit error in bit {bit}, corrected",
            )
            return words
        second = event.arg & 0xF
        if second == bit:
            second = (bit + 1) & 0xF
        counters.ecc_uncorrected += 1
        corrupted = list(words)
        corrupted[word_index] ^= (1 << bit) | (1 << second)
        injector.record(
            "storage", event.kind.value, base + word_index,
            f"double-bit error in bits {bit},{second}, uncorrectable",
        )
        if injector.on_uncorrectable is not None:
            injector.on_uncorrectable()
        return corrupted


class FaultInjector:
    """Delivers an :class:`InjectionPlan`'s events to the machine."""

    def __init__(self, plan: InjectionPlan, counters) -> None:
        self.plan = plan
        self.counters = counters
        self.trace: List[FaultRecord] = []
        self._storage_queue: Deque[FaultEvent] = deque(plan.schedule("storage"))
        self._map_queue: Deque[FaultEvent] = deque(plan.schedule("map"))
        self._disk_queue: Deque[FaultEvent] = deque(plan.schedule("disk"))
        self.ecc = EccFilter(self)
        self._clock: Callable[[], int] = lambda: 0
        self.on_uncorrectable: Optional[Callable[[], None]] = None
        # Live publication of trace records: the instrumentation bus's
        # ``fault`` channel attaches here, so observers see each
        # FaultRecord the moment it is appended instead of polling
        # ``trace`` after the run.  None costs one check per fault.
        self.on_record: Optional[Callable[[FaultRecord], None]] = None

    def bind(
        self,
        clock: Callable[[], int],
        on_uncorrectable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Attach the machine's cycle clock and the fault-latch hook."""
        self._clock = clock
        self.on_uncorrectable = on_uncorrectable

    @property
    def now(self) -> int:
        return self._clock()

    @property
    def pending(self) -> int:
        """Events not yet delivered."""
        return len(self._storage_queue) + len(self._map_queue) + len(self._disk_queue)

    def reset(self) -> None:
        """Rewind to the freshly-built state: full schedules, empty trace.

        ``Processor.boot()`` calls this so back-to-back booted runs
        under one injector replay the identical fault schedule instead
        of resuming from wherever the previous run's cursors stopped.
        """
        for component, attr in self._QUEUES:
            setattr(self, attr, deque(self.plan.schedule(component)))
        self.trace.clear()

    def record(self, component: str, kind: str, address: int = 0, detail: str = "") -> None:
        entry = FaultRecord(self.now, component, kind, address, detail)
        self.trace.append(entry)
        if self.on_record is not None:
            self.on_record(entry)

    # --- snapshot protocol (DESIGN.md section 5.4) ---------------------------

    _QUEUES = (
        ("storage", "_storage_queue"),
        ("map", "_map_queue"),
        ("disk", "_disk_queue"),
    )

    def state_dict(self) -> dict:
        """Per-component consumed-event cursors plus the fault trace.

        The plan itself is pure data derived from the config seed, so
        only how far each queue has drained is state; ``load_state``
        re-slices the plan's schedules.  The clock binding and the
        record/uncorrectable hooks are wiring, not state.
        """
        consumed = {
            component: len(self.plan.schedule(component)) - len(getattr(self, attr))
            for component, attr in self._QUEUES
        }
        return {
            "consumed": consumed,
            "trace": [
                [r.cycle, r.component, r.kind, r.address, r.detail]
                for r in self.trace
            ],
        }

    def load_state(self, state: dict) -> None:
        for component, attr in self._QUEUES:
            schedule = self.plan.schedule(component)
            setattr(self, attr, deque(schedule[state["consumed"][component]:]))
        self.trace = [FaultRecord(*row) for row in state["trace"]]

    # --- memory pipeline -----------------------------------------------------

    def memory_fault_due(self, write: bool, address: int = 0) -> Optional[FaultKind]:
        """A due map/write-protect/bounds event for this reference, if any.

        Events drain strictly in plan order: a write-protect event at
        the head waits (blocking later map events) until a store comes
        along, which keeps delivery deterministic.
        """
        queue = self._map_queue
        if not queue or queue[0].cycle > self.now:
            return None
        if queue[0].kind is FaultKind.WRITE_PROTECT and not write:
            return None
        event = queue.popleft()
        self.counters.faults_injected += 1
        self.record(
            "map", event.kind.value, address,
            f"spurious {event.kind.value} fault on a "
            + ("store" if write else "fetch"),
        )
        return event.kind

    # --- disk controller -----------------------------------------------------

    def disk_error_due(self) -> Optional[FaultEvent]:
        """A due transfer-error event, if any (arg = failed attempts)."""
        queue = self._disk_queue
        if not queue or queue[0].cycle > self.now:
            return None
        event = queue.popleft()
        self.counters.faults_injected += 1
        self.record(
            "disk", event.kind.value, 0,
            f"transfer error, persists {event.arg} attempt(s)",
        )
        return event
