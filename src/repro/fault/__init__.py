"""Deterministic fault injection (DESIGN.md section 5.2).

A seeded :class:`FaultConfig` inside :class:`~repro.config.MachineConfig`
expands into an :class:`InjectionPlan` -- a schedule of fault events
keyed by cycle and component -- which a per-machine
:class:`FaultInjector` delivers into storage (ECC-correctable and
uncorrectable data errors), the map (spurious map/write-protect/bounds
faults), and the disk controller (transfer errors with bounded
retry/backoff and bad-sector remapping).  Injection is off by default
and adds nothing to the fast path when disabled.
"""

from .injector import EccFilter, FaultInjector
from .plan import FaultConfig, FaultEvent, FaultKind, FaultRecord, InjectionPlan

__all__ = [
    "EccFilter",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRecord",
    "InjectionPlan",
]
