"""Deterministic fault-injection schedules.

The real Dorado survived storage and I/O errors: single-bit storage
errors were corrected by ECC, double-bit errors latched a fault for the
fault task, and disk microcode retried transfers.  The simulator
reproduces that robustness under test by *injecting* faults from a
seeded schedule -- an :class:`InjectionPlan` -- instead of waiting for
alpha particles.

Everything here is pure data.  A :class:`FaultConfig` (hashable, so it
can ride inside the frozen :class:`~repro.config.MachineConfig`)
describes *how many* faults of each kind to generate and over which
cycle window; :meth:`InjectionPlan.from_config` expands it with a
deterministic generator into a sorted schedule of :class:`FaultEvent`
objects keyed by (cycle, component).  An event fires at the first
matching operation at-or-after its cycle, which makes injection
independent of the simulator's cycle implementation: the plan-cache and
interpretive cores count cycles identically, so they consume the same
events at the same operations and produce identical fault traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError


class FaultKind(Enum):
    """What kind of hardware misbehaviour an event models."""

    ECC_CORRECTABLE = "ecc_correctable"      #: single-bit storage error
    ECC_UNCORRECTABLE = "ecc_uncorrectable"  #: double-bit storage error
    MAP = "map"                              #: spurious map (page) fault
    WRITE_PROTECT = "write_protect"          #: spurious write-protect fault
    BOUNDS = "bounds"                        #: spurious bounds violation
    DISK_TRANSFER = "disk_transfer"          #: disk word-transfer error


#: Which simulated component consumes events of each kind.
COMPONENT_OF: Dict[FaultKind, str] = {
    FaultKind.ECC_CORRECTABLE: "storage",
    FaultKind.ECC_UNCORRECTABLE: "storage",
    FaultKind.MAP: "map",
    FaultKind.WRITE_PROTECT: "map",
    FaultKind.BOUNDS: "map",
    FaultKind.DISK_TRANSFER: "disk",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``cycle`` is the earliest machine cycle at which the event may fire;
    the injector delivers it at the first matching operation at or after
    that cycle.  ``arg`` is kind-specific: for ECC events it selects the
    word within the munch and the bit(s) to flip; for disk events it is
    the number of consecutive failed transfer attempts (persistence).
    """

    cycle: int
    kind: FaultKind
    arg: int = 0

    @property
    def component(self) -> str:
        return COMPONENT_OF[self.kind]


@dataclass(frozen=True)
class FaultRecord:
    """One entry of a run's fault trace (see ``FaultInjector.trace``)."""

    cycle: int
    component: str
    kind: str
    address: int = 0
    detail: str = ""


@dataclass(frozen=True)
class FaultConfig:
    """Seeded fault-generation parameters.

    All fields are plain ints so the config stays hashable inside the
    frozen :class:`~repro.config.MachineConfig`.  Counts say how many
    events of each kind the plan contains; the generator spreads them
    deterministically over ``[first_cycle, last_cycle]``.

    Attributes:
        seed: Generator seed; identical seeds give identical plans.
        storage_correctable: Single-bit storage errors (ECC corrects
            them in flight; only a counter and a trace entry result).
        storage_uncorrectable: Double-bit storage errors (data is
            delivered corrupted and the storage fault latch is set).
        map_faults: Spurious map faults on processor references.
        write_protect_faults: Spurious write-protect faults (fire on the
            first *store* at or after their cycle).
        bounds_faults: Spurious bounds violations.
        disk_errors: Disk word-transfer errors.
        disk_error_persistence: Failed attempts per disk error; when it
            exceeds the controller's retry budget the sector goes bad
            and is remapped to a spare.
        first_cycle: Earliest cycle any event may fire.
        last_cycle: Latest cycle assigned to a generated event.
    """

    seed: int = 1
    storage_correctable: int = 0
    storage_uncorrectable: int = 0
    map_faults: int = 0
    write_protect_faults: int = 0
    bounds_faults: int = 0
    disk_errors: int = 0
    disk_error_persistence: int = 1
    first_cycle: int = 0
    last_cycle: int = 100_000

    def __post_init__(self) -> None:
        for name in (
            "storage_correctable", "storage_uncorrectable", "map_faults",
            "write_protect_faults", "bounds_faults", "disk_errors",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} cannot be negative")
        if self.disk_error_persistence < 1:
            raise ConfigError("disk_error_persistence must be at least 1")
        if self.first_cycle < 0 or self.last_cycle < self.first_cycle:
            raise ConfigError("need 0 <= first_cycle <= last_cycle")

    @property
    def total_events(self) -> int:
        return (
            self.storage_correctable + self.storage_uncorrectable
            + self.map_faults + self.write_protect_faults
            + self.bounds_faults + self.disk_errors
        )


class _Lcg:
    """The repo's usual deterministic pseudo-random source."""

    def __init__(self, seed: int) -> None:
        self.state = (seed ^ 0x5DEECE66D) & 0xFFFFFFFF or 1

    def next(self, bound: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0xFFFFFFFF
        return (self.state >> 8) % bound


class InjectionPlan:
    """A realized schedule of fault events, grouped by component."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.cycle, e.kind.value, e.arg))
        )

    @classmethod
    def empty(cls) -> "InjectionPlan":
        return cls(())

    @classmethod
    def from_config(cls, config: FaultConfig) -> "InjectionPlan":
        rng = _Lcg(config.seed)
        span = config.last_cycle - config.first_cycle + 1
        events: List[FaultEvent] = []

        def cycle() -> int:
            return config.first_cycle + rng.next(span)

        for _ in range(config.storage_correctable):
            events.append(FaultEvent(cycle(), FaultKind.ECC_CORRECTABLE, rng.next(1 << 12)))
        for _ in range(config.storage_uncorrectable):
            events.append(FaultEvent(cycle(), FaultKind.ECC_UNCORRECTABLE, rng.next(1 << 12)))
        for _ in range(config.map_faults):
            events.append(FaultEvent(cycle(), FaultKind.MAP))
        for _ in range(config.write_protect_faults):
            events.append(FaultEvent(cycle(), FaultKind.WRITE_PROTECT))
        for _ in range(config.bounds_faults):
            events.append(FaultEvent(cycle(), FaultKind.BOUNDS))
        for _ in range(config.disk_errors):
            events.append(
                FaultEvent(cycle(), FaultKind.DISK_TRANSFER, config.disk_error_persistence)
            )
        return cls(events)

    def schedule(self, component: str) -> List[FaultEvent]:
        """The component's events, earliest first."""
        return [e for e in self.events if e.component == component]

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events
