"""repro -- a behavioral simulator of the Xerox Dorado processor.

Reproduces Lampson & Pier, *A Processor for a High-Performance Personal
Computer* (7th ISCA, 1980 / Xerox PARC CSL-81-1): the 16-task
microprogrammed processor with its two pipelines, data bypassing, Hold,
paged control store, and the memory / IFU / I-O subsystems it depends
on.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.

Quick start::

    from repro import Assembler, Processor, FF

    asm = Assembler()
    asm.register("acc", 1)
    asm.emit(r="acc", b=21, alu="B", load="RM")            # acc <- 21
    asm.emit(r="acc", a="RM", b=21, alu="ADD", load="RM")  # acc <- acc + 21
    asm.emit(r="acc", a="RM", b="RM", ff=FF.TRACE)         # trace it
    asm.halt()
    cpu = Processor()
    cpu.load_image(asm.assemble())
    cpu.run()
    assert cpu.console.trace == [42]

Higher-level entry points: :func:`repro.emulators.mesa.build_mesa_machine`
boots a Mesa byte-code emulator; :mod:`repro.graphics.bitblt` runs the
BitBlt microcode; :mod:`repro.perf.report` regenerates the paper's
evaluation numbers.
"""

from .asm import Assembler, Image, PlacementReport
from .config import MODEL0, PRODUCTION, STITCHWELD, MachineConfig
from .core import (
    ASel,
    BSel,
    Condition,
    FF,
    LoadControl,
    MicroInstruction,
    Processor,
)
from .errors import (
    AssemblyError,
    ConfigError,
    CorruptionDetected,
    DeviceError,
    DivergenceDetected,
    DoradoError,
    EmulatorError,
    EncodingError,
    HoldTimeout,
    MicrocodeCrash,
    PlacementError,
    StateError,
    TransientFault,
    UnrecoverableFault,
)
from .fault import FaultConfig, InjectionPlan
from .state import MachineState, diff_states

__version__ = "1.0.0"

__all__ = [
    "ASel",
    "Assembler",
    "AssemblyError",
    "BSel",
    "Condition",
    "ConfigError",
    "CorruptionDetected",
    "DeviceError",
    "DivergenceDetected",
    "DoradoError",
    "EmulatorError",
    "EncodingError",
    "FaultConfig",
    "FF",
    "HoldTimeout",
    "Image",
    "InjectionPlan",
    "LoadControl",
    "MachineConfig",
    "MachineState",
    "MicroInstruction",
    "MicrocodeCrash",
    "MODEL0",
    "PlacementError",
    "PlacementReport",
    "PRODUCTION",
    "Processor",
    "STITCHWELD",
    "StateError",
    "TransientFault",
    "UnrecoverableFault",
    "__version__",
    "diff_states",
]
