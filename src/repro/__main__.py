"""``python -m repro``: the observability command line.

With no arguments, prints every paper-versus-measured table (the
historical behaviour).  With a workload selected, runs it with the
requested observers attached through the instrumentation bus::

    python -m repro --workload mesa_loop_sum --profile
    python -m repro --workload lisp_list_sum --trace --metrics-json -
    python -m repro --workload mesa_fib --profile --metrics-json run.json

``--trace`` renders the per-task pipeline timeline, ``--profile`` the
section-7-style per-opcode-class cost table, and ``--metrics-json``
writes the structured counters/holds/tasks snapshot (``-`` for stdout).
Tracer and profiler ride the same bus, so any combination composes; the
observers are detached afterwards, leaving the machine's hooks pristine.

The self-healing mode (DESIGN.md section 5.5)::

    python -m repro --workload mesa_loop_sum --supervise --fault-plan plan.json

``--fault-plan`` enables deterministic fault injection from a JSON file
of :class:`~repro.fault.plan.FaultConfig` fields, and ``--supervise``
runs the workload under the recovery supervisor -- periodic
checkpoints, machine-check sweeps, rollback-and-replay on detected
corruption -- printing the recovery report afterwards.  Failures are
diagnosed (machine context plus the fault trace), not dumped as
tracebacks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .errors import DoradoError


def _print_failure(exc: DoradoError, cpu) -> None:
    """Diagnose a failed run: error, machine context, fault trace.

    The recovery exceptions (and ``HoldTimeout``) carry the machine
    context they were raised with; anything they lack is read off the
    live machine, and the injector's trace -- the ground truth of what
    was injected when -- is printed through ``format_fault_trace``
    instead of letting the exception escape as a bare traceback.
    """
    from .perf.tracing import format_fault_trace

    print(f"FAILED: {type(exc).__name__}: {exc}")
    task = getattr(exc, "task", None)
    pc = getattr(exc, "pc", None)
    cycle = getattr(exc, "cycle", None)
    context = [
        f"task {task if task is not None else cpu.pipe.this_task}",
        f"upc {(pc if pc is not None else cpu.this_pc):#o}",
        f"cycle {cycle if cycle is not None else cpu.now}",
    ]
    hold_cause = getattr(exc, "hold_cause", None)
    if hold_cause is not None:
        context.append(f"hold cause {hold_cause}")
    print("  at " + ", ".join(context))
    if cpu.fault_injector is not None:
        print("  fault trace:")
        for line in format_fault_trace(cpu.fault_injector.trace).splitlines():
            print(f"    {line}")


def main(argv: Optional[List[str]] = None) -> int:
    from .perf.instrument import metrics_snapshot
    from .perf.measure import OpcodeProfiler
    from .perf.report import format_opcode_costs
    from .perf.tracing import PipelineTracer
    from .perf.workloads import ALL_WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables, or instrument one workload.",
    )
    parser.add_argument(
        "--workload", choices=sorted(ALL_WORKLOADS), default=None,
        help="run one emulator workload instead of the full report",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record every cycle and print the per-task timeline",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-opcode-class cost table (section 7 style)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the structured metrics snapshot as JSON ('-' = stdout)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=5_000_000,
        help="simulated-cycle budget for the workload",
    )
    parser.add_argument(
        "--save-state", default=None, metavar="PATH",
        help="write the machine's snapshot (canonical JSON) after the run",
    )
    parser.add_argument(
        "--load-state", default=None, metavar="PATH",
        help="restore a snapshot into the workload's machine before running",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="run under the recovery supervisor (checkpoints, machine "
             "checks, rollback-and-replay)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=2000, metavar="CYCLES",
        help="cycles between supervisor checkpoints",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="rollback-and-replay budget per checkpoint",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="enable fault injection from a JSON file of FaultConfig fields",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="disable the compiled-trace tier (keep the plan cache): "
             "the PLAN_ONLY configuration, for tier isolation and debugging",
    )
    args = parser.parse_args(argv)

    wants_instruments = args.trace or args.profile or args.metrics_json is not None
    wants_state = args.save_state is not None or args.load_state is not None
    wants_supervision = args.supervise or args.fault_plan is not None
    if args.workload is None:
        if wants_instruments or wants_state or wants_supervision or args.no_trace:
            parser.error(
                "--trace/--profile/--metrics-json/--save-state/--load-state/"
                "--supervise/--fault-plan/--no-trace need --workload"
            )
        from .perf.report import main as report_main
        report_main()
        return 0

    config = None
    if args.no_trace:
        from .config import PLAN_ONLY

        config = PLAN_ONLY
    if args.fault_plan is not None:
        import dataclasses

        from .config import PRODUCTION
        from .fault.plan import FaultConfig

        try:
            with open(args.fault_plan) as f:
                fields = json.load(f)
            fault_config = FaultConfig(**fields)
        except (OSError, TypeError, ValueError) as exc:
            parser.error(f"cannot read fault plan {args.fault_plan}: {exc}")
        config = dataclasses.replace(
            config if config is not None else PRODUCTION,
            fault_injection=fault_config,
        )

    from .service.session import Session

    session = Session.build(
        args.workload,
        config=config,
        supervise=args.supervise,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
    )
    cpu = session.cpu
    if args.load_state is not None:
        from .state import MachineState

        session.load(MachineState.load(args.load_state))
        print(f"restored {args.load_state} (cycle {cpu.now})")
    tracer = profiler = None
    if args.trace:
        tracer = PipelineTracer(cpu).install()
    if args.profile or args.metrics_json is not None:
        profiler = OpcodeProfiler(session.ctx)

    # Observers come off the bus whatever the run did -- success,
    # diagnosed failure, or a verify oracle blowing up.  Timelines and
    # cost tables survive uninstall (the recorded data is retained), so
    # detaching first is safe.
    try:
        try:
            cycles = session.run(max_cycles=args.max_cycles)
        except DoradoError as exc:
            _print_failure(exc, cpu)
            return 1
    finally:
        if tracer is not None:
            tracer.uninstall()
        if profiler is not None:
            profiler.uninstall()
    print(f"{session.workload.name}: {cycles} cycles, verified")
    if session.supervisor is not None:
        from .perf.report import format_recovery_report

        print()
        print(format_recovery_report(cpu, session.supervisor.log))

    if args.save_state is not None:
        cpu.snapshot().save(args.save_state)
        print(f"saved {args.save_state} (cycle {cpu.now})")

    if tracer is not None:
        print()
        print(tracer.timeline())
    if args.profile and profiler is not None:
        print()
        print(format_opcode_costs(
            profiler.table(),
            title=f"per-opcode-class costs: {session.workload.name}",
        ))
    if args.metrics_json is not None:
        snapshot = metrics_snapshot(cpu)
        snapshot["workload"] = {
            "name": session.workload.name, "cycles": cycles,
        }
        text = json.dumps(snapshot, indent=2)
        if args.metrics_json == "-":
            print()
            print(text)
        else:
            with open(args.metrics_json, "w") as f:
                f.write(text + "\n")
            print(f"wrote {args.metrics_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
