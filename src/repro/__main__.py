"""``python -m repro``: the observability command line.

With no arguments, prints every paper-versus-measured table (the
historical behaviour).  With a workload selected, runs it with the
requested observers attached through the instrumentation bus::

    python -m repro --workload mesa_loop_sum --profile
    python -m repro --workload lisp_list_sum --trace --metrics-json -
    python -m repro --workload mesa_fib --profile --metrics-json run.json

``--trace`` renders the per-task pipeline timeline, ``--profile`` the
section-7-style per-opcode-class cost table, and ``--metrics-json``
writes the structured counters/holds/tasks snapshot (``-`` for stdout).
Tracer and profiler ride the same bus, so any combination composes; the
observers are detached afterwards, leaving the machine's hooks pristine.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    from .perf.instrument import metrics_snapshot
    from .perf.measure import OpcodeProfiler
    from .perf.report import format_opcode_costs
    from .perf.tracing import PipelineTracer
    from .perf.workloads import ALL_WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables, or instrument one workload.",
    )
    parser.add_argument(
        "--workload", choices=sorted(ALL_WORKLOADS), default=None,
        help="run one emulator workload instead of the full report",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record every cycle and print the per-task timeline",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-opcode-class cost table (section 7 style)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the structured metrics snapshot as JSON ('-' = stdout)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=5_000_000,
        help="simulated-cycle budget for the workload",
    )
    parser.add_argument(
        "--save-state", default=None, metavar="PATH",
        help="write the machine's snapshot (canonical JSON) after the run",
    )
    parser.add_argument(
        "--load-state", default=None, metavar="PATH",
        help="restore a snapshot into the workload's machine before running",
    )
    args = parser.parse_args(argv)

    wants_instruments = args.trace or args.profile or args.metrics_json is not None
    wants_state = args.save_state is not None or args.load_state is not None
    if args.workload is None:
        if wants_instruments or wants_state:
            parser.error(
                "--trace/--profile/--metrics-json/--save-state/--load-state "
                "need --workload"
            )
        from .perf.report import main as report_main
        report_main()
        return 0

    workload = ALL_WORKLOADS[args.workload]()
    cpu = workload.ctx.cpu
    if args.load_state is not None:
        from .state import MachineState

        cpu.restore(MachineState.load(args.load_state))
        print(f"restored {args.load_state} (cycle {cpu.now})")
    tracer = profiler = None
    if args.trace:
        tracer = PipelineTracer(cpu).install()
    if args.profile or args.metrics_json is not None:
        profiler = OpcodeProfiler(workload.ctx)

    cycles = workload.run(max_cycles=args.max_cycles)
    print(f"{workload.name}: {cycles} cycles, verified")

    if args.save_state is not None:
        cpu.snapshot().save(args.save_state)
        print(f"saved {args.save_state} (cycle {cpu.now})")

    if tracer is not None:
        print()
        print(tracer.timeline())
    if args.profile and profiler is not None:
        print()
        print(format_opcode_costs(
            profiler.table(), title=f"per-opcode-class costs: {workload.name}"
        ))
    if args.metrics_json is not None:
        snapshot = metrics_snapshot(cpu)
        snapshot["workload"] = {"name": workload.name, "cycles": cycles}
        text = json.dumps(snapshot, indent=2)
        if args.metrics_json == "-":
            print()
            print(text)
        else:
            with open(args.metrics_json, "w") as f:
                f.write(text + "\n")
            print(f"wrote {args.metrics_json}")

    if tracer is not None:
        tracer.uninstall()
    if profiler is not None:
        profiler.uninstall()
    return 0


if __name__ == "__main__":
    sys.exit(main())
