"""``python -m repro``: print the paper-versus-measured tables."""

from .perf.report import main

if __name__ == "__main__":
    main()
