"""Machine configuration.

One :class:`MachineConfig` instance parameterizes an entire simulated
Dorado.  The defaults model the production (Model 1, multiwire) machine
described in the paper; the fields exist so benchmarks can explore the
design space the paper discusses: the stitchweld prototype's 50 ns
cycle (section 6.4), the Model 0's missing bypass paths (section 5.6),
and the three-cycle task grain of the rejected simpler design
(section 6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError
from .fault.plan import FaultConfig


@dataclass(frozen=True)
class MachineConfig:
    """Static parameters of a simulated Dorado.

    Attributes:
        cycle_ns: Microcycle length in nanoseconds.  60 for the
            production multiwire machine, 50 for the stitchweld
            prototype (paper sections 1 and 6.4).
        im_size: Words of microinstruction memory.  The Dorado shipped
            with 4K x 34-bit high-speed RAM (section 6.4).
        page_size: Words per control-store page for the NEXTPC scheme
            (section 5.5).  Must divide ``im_size`` and be a power of 2.
        bypass_enabled: When False the processor behaves like the
            Model 0: an instruction reading a register written by its
            immediate predecessor sees the *old* value (section 5.6).
        cache_lines: Number of cache lines; each holds one 16-word munch.
        cache_ways: Set associativity of the cache.
        cache_hit_cycles: Cycles from Fetch to data ready on a hit
            ("a cache which delivers a word in two cycles", section 3).
        storage_cycle: Cycles per main-storage cycle; one munch can
            start per storage cycle ("one every eight cycles -- the
            cycle time of our storage RAMs", section 6.2.1).
        miss_penalty: Cycles from Fetch to data ready on a cache miss
            (storage access plus transport; Clark et al. report roughly
            this figure for the real machine).
        num_base_registers: Memory base registers used for virtual
            address formation (MEMBASE is 5 bits: 32 of them).
        base_register_bits: Width of a base register (28-bit virtual
            addresses, section 6.3.2).
        storage_words: Words of main storage (up to 4 modules / 8 MB =
            4M words in the real machine; simulations default smaller).
        ifu_decode_cycles: Cycles for the IFU to decode a buffered byte
            into a dispatch address.
        task_grain: Minimum instructions a woken task executes before
            its Block takes effect.  2 on the real machine; 3 models the
            "simpler design" rejected in section 6.2.1.
        plan_cache_enabled: When True (the default) the simulator
            compiles each fetched IM word into a decoded execution plan
            and runs plans instead of re-interrogating microword fields
            every cycle.  Purely a simulator-speed knob: architectural
            state and cycle counts are bit-identical either way (the
            differential suite in ``tests/test_fastpath_parity.py``
            enforces this), and plans are invalidated whenever an IM
            word is rewritten (console write paths, bootstrap loader,
            or direct ``im[...]`` assignment).
        trace_cache_enabled: When True (the default) the simulator
            additionally detects hot runs of execution plans and
            compiles them into specialized Python traces executed from
            the ``run()`` hot loop (:mod:`repro.core.tracecache`).
            Requires ``plan_cache_enabled``; like it, this is purely a
            simulator-speed knob -- the three-way differential matrix
            in ``tests/test_fastpath_parity.py`` proves interp, plan
            and traced execution bit-identical -- and traces are
            dropped on any IM write, on ``restore()``, and on
            ``attach_device()``.
        fault_injection: When set, the machine builds a deterministic
            :class:`~repro.fault.injector.FaultInjector` from this
            seeded :class:`~repro.fault.plan.FaultConfig` and delivers
            its events into storage, the map, and the disk controller
            (DESIGN.md section 5.2).  None (the default) leaves every
            fault path untouched.
        fault_task: Task woken when a memory fault latches, modelling
            the real machine's fault-task delivery.  The wakeup is a
            level: it follows the fault latch and drops when microcode
            reads FF ``READ_FAULTS``.  None disables delivery.
        hold_limit: Consecutive held cycles before the Hold watchdog
            raises :class:`~repro.errors.HoldTimeout`.  None uses the
            module default (``processor.HOLD_LIMIT``).
    """

    cycle_ns: float = 60.0
    im_size: int = 4096
    page_size: int = 64
    bypass_enabled: bool = True
    cache_lines: int = 512
    cache_ways: int = 2
    cache_hit_cycles: int = 2
    storage_cycle: int = 8
    miss_penalty: int = 26
    num_base_registers: int = 32
    base_register_bits: int = 28
    storage_words: int = 1 << 20
    ifu_decode_cycles: int = 1
    task_grain: int = 2
    plan_cache_enabled: bool = True
    trace_cache_enabled: bool = True
    fault_injection: Optional[FaultConfig] = None
    fault_task: Optional[int] = None
    hold_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle_ns <= 0:
            raise ConfigError(f"cycle_ns must be positive, got {self.cycle_ns}")
        if self.im_size <= 0 or self.im_size & (self.im_size - 1):
            raise ConfigError(f"im_size must be a power of two, got {self.im_size}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError(f"page_size must be a power of two, got {self.page_size}")
        if self.im_size % self.page_size:
            raise ConfigError("page_size must divide im_size")
        if self.page_size > 64:
            raise ConfigError(
                "page_size cannot exceed 64: the 6-bit NextControl payload "
                "addresses at most 64 words per page (section 5.5)"
            )
        if self.cache_ways <= 0 or self.cache_lines % self.cache_ways:
            raise ConfigError("cache_ways must divide cache_lines")
        if self.cache_hit_cycles < 1:
            raise ConfigError("cache_hit_cycles must be at least 1")
        if self.miss_penalty < self.cache_hit_cycles:
            raise ConfigError("miss_penalty cannot beat a cache hit")
        if self.storage_cycle < 1:
            raise ConfigError("storage_cycle must be at least 1")
        if self.storage_words <= 0:
            raise ConfigError("storage_words must be positive")
        if self.task_grain not in (2, 3):
            raise ConfigError("task_grain models only the 2- and 3-cycle designs")
        if self.fault_task is not None and not 1 <= self.fault_task <= 15:
            raise ConfigError(
                "fault_task must be a device-priority task (1..15); "
                "task 0 belongs to the emulator"
            )
        if self.hold_limit is not None and self.hold_limit < 1:
            raise ConfigError("hold_limit must be at least 1")

    @property
    def num_pages(self) -> int:
        """Number of control-store pages."""
        return self.im_size // self.page_size

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds of simulated machine time."""
        return cycles * self.cycle_ns * 1e-9

    def megabits_per_second(self, bits: int, cycles: int) -> float:
        """Bandwidth achieved moving *bits* in *cycles*, in Mbit/s."""
        if cycles <= 0:
            raise ConfigError("bandwidth over zero cycles is undefined")
        return bits / (cycles * self.cycle_ns * 1e-9) / 1e6


#: The production Dorado (Model 1, multiwire boards).
PRODUCTION = MachineConfig()

#: The stitchwelded laboratory prototype: same design, 50 ns cycle.
STITCHWELD = MachineConfig(cycle_ns=50.0)

#: The Model 0, which lacked some bypass paths (section 5.6).
MODEL0 = MachineConfig(bypass_enabled=False)

#: The production machine with the simulator's plan cache disabled:
#: every cycle re-decodes microword fields.  Only useful as the
#: reference side of differential tests and benchmarks.
INTERPRETED = MachineConfig(plan_cache_enabled=False, trace_cache_enabled=False)

#: The production machine running on decoded execution plans but with
#: the compiled-trace tier off: the middle rung of the three-way
#: differential ladder (interp / plan / traced) and the baseline the
#: traced tier's speedup is measured against.
PLAN_ONLY = MachineConfig(trace_cache_enabled=False)
