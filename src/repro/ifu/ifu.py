"""The instruction fetch unit.

Behavioral model with the timing that matters to the processor:

* **Steady state**: the buffer runs ahead of execution (one word -- two
  bytes -- fetched per cycle into a six-byte buffer), so NextMacro finds
  a decoded dispatch ready and a simple macroinstruction executes in a
  single microinstruction with no stall -- the paper's headline
  "can execute a simple macroinstruction in one cycle".
* **After a jump** (FF ``IFU_JUMP``): the buffer is flushed; bytes
  arrive a word per cycle, plus a decode cycle, so the next NextMacro
  holds for a few cycles -- the taken-branch penalty.

The IFU reads the byte stream through its own memory port.  Code is
read coherently (through the cache image) but untimed; the contention
this ignores is small because the buffer amortizes one word fetch over
one-or-more-byte instructions.  Self-modifying macro code is not
supported (it wasn't meaningfully supported on the real machine either:
the IFU buffer there was equally unaware of stores).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import EmulatorError
from ..types import word
from .decoder import DecodeEntry, DecodeTable

#: Bytes of lookahead buffer (the real IFU buffered six bytes).
BUFFER_BYTES = 6


class Ifu:
    """The instruction fetch unit, clocked by :meth:`tick`."""

    def __init__(self, memory, decode_cycles: int = 1, code_membase: int = 0) -> None:
        self.memory = memory
        self.decode_cycles = decode_cycles
        self.code_membase = code_membase
        self.table: Optional[DecodeTable] = None
        self._dispatch_addresses: Dict[str, int] = {}
        self.now = 0
        self.running = False
        self.pc = 0             # byte address of the next undispatched instruction
        self._buffered = 0      # byte address one past the buffered prefix
        self._ready_at = 0      # cycle when the head instruction is decoded
        self._head: Optional[DecodeEntry] = None
        self._head_invalid = False
        self._head_operands: List[int] = []
        self._current_operands: List[int] = []  # IFUDATA for the executing macro
        self.dispatches = 0     # macroinstructions dispatched (for stats)
        # First-class dispatch observation point: called as
        # ``dispatch_hook(entry, address)`` after each take_dispatch,
        # with the consumed DecodeEntry and its handler microaddress.
        # None (one check per dispatch) when nobody listens.  Managed by
        # the instrumentation bus so profilers never have to
        # monkey-patch take_dispatch.
        self.dispatch_hook: Optional[Callable[[DecodeEntry, int], None]] = None

    # --- configuration ---------------------------------------------------

    def load_table(self, table: DecodeTable, dispatch_addresses: Dict[str, int]) -> None:
        """Install an ISA's decode table with resolved handler addresses."""
        missing = [l for l in table.dispatch_labels() if l not in dispatch_addresses]
        if missing:
            raise EmulatorError(f"unresolved dispatch labels: {missing}")
        self.table = table
        self._dispatch_addresses = dict(dispatch_addresses)

    # --- control from microcode -------------------------------------------

    def start(self, byte_pc: int) -> None:
        """Point the IFU at a byte stream and begin prefetching."""
        if self.table is None:
            raise EmulatorError("IFU started with no decode table loaded")
        self.running = True
        self.jump(byte_pc)

    def jump(self, byte_pc: int) -> None:
        """FF ``IFU_JUMP``: redirect the stream, flushing the buffer."""
        self.pc = word(byte_pc)
        self._buffered = self.pc
        self._head = None
        self._head_invalid = False
        self._head_operands = []

    def reset(self) -> None:
        """FF ``IFU_RESET``: stop prefetching."""
        self.running = False
        self._head = None
        self._head_invalid = False
        self._head_operands = []
        self._current_operands = []

    def flush_buffers(self) -> None:
        """Forget all prefetch progress: buffered prefix, head, operands.

        Like :meth:`jump` at the current PC, but also drops any pending
        IFUDATA -- the reset path :meth:`Processor.boot` uses so a
        re-booted machine carries no residue from a prior run.
        """
        self._buffered = self.pc
        self._head = None
        self._head_invalid = False
        self._head_operands = []
        self._current_operands = []

    # --- clock ------------------------------------------------------------

    def tick(self) -> None:
        """One cycle of prefetch and decode."""
        self.now += 1
        if not self.running:
            return
        if self._buffered - self.pc < BUFFER_BYTES:
            self._buffered += 2  # one word of the stream per cycle
        if self._head is None:
            self._try_decode()

    def _byte(self, address: int) -> int:
        """A byte of the macro code stream (big-endian within words)."""
        w = self.memory.debug_read(self._code_va(address))
        return (w >> 8) & 0xFF if (address & 1) == 0 else w & 0xFF

    def _code_va(self, byte_address: int) -> int:
        base = self.memory.translator.read_base(self.code_membase)
        return base + (byte_address >> 1)

    def _try_decode(self) -> None:
        if self._buffered <= self.pc:
            return
        try:
            entry = self.table.entry(self._byte(self.pc))
        except EmulatorError:
            # Prefetch ran into bytes that are not instructions (e.g.
            # past a HALT).  Harmless unless actually dispatched.
            self._head_invalid = True
            return
        self._head_invalid = False
        if self._buffered < self.pc + entry.length:
            return
        raw = [self._byte(self.pc + 1 + i) for i in range(entry.operands.length)]
        self._head = entry
        self._head_operands = entry.operand_values(raw)
        self._ready_at = self.now + self.decode_cycles

    # --- processor interface -------------------------------------------------

    @property
    def dispatch_ready(self) -> bool:
        """Whether NextMacro would proceed this cycle without Hold."""
        if self.running and self._head_invalid:
            raise EmulatorError(
                f"macro execution reached an undefined opcode at byte PC {self.pc:#x}"
            )
        return self.running and self._head is not None and self.now >= self._ready_at

    def take_dispatch(self) -> int:
        """Consume the decoded head instruction; returns its microaddress.

        After this, :attr:`pc` is the byte address of the *following*
        macroinstruction (what EXTB_IFUPC reads -- the return address for
        calls) and the consumed instruction's operands are current on
        IFUDATA.
        """
        assert self.dispatch_ready, "take_dispatch without dispatch_ready"
        entry = self._head
        self._current_operands = self._head_operands
        self.pc = word(self.pc + entry.length)
        self._head = None
        self._head_operands = []
        self.dispatches += 1
        self._try_decode()  # decode of the successor overlaps execution
        address = self._dispatch_addresses[entry.dispatch]
        if self.dispatch_hook is not None:
            self.dispatch_hook(entry, address)
        return address

    @property
    def operand_ready(self) -> bool:
        return bool(self._current_operands)

    def read_operand(self) -> int:
        """IFUDATA: "as each operand is used, the IFU provides the next"."""
        if not self._current_operands:
            raise EmulatorError("microcode read IFUDATA with no operand pending")
        return self._current_operands[0]

    def consume_operand(self) -> None:
        """Advance past the current operand (called on instruction commit)."""
        if self._current_operands:
            self._current_operands.pop(0)

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Stream position, buffer fill, and the decoded head.

        The decode table, dispatch addresses, and dispatch hook are
        mechanism, not state; the head :class:`DecodeEntry` is named by
        its opcode byte (the byte at PC) and re-decoded through the
        installed table on load.
        """
        head_opcode = self._byte(self.pc) if self._head is not None else None
        return {
            "now": self.now,
            "running": self.running,
            "pc": self.pc,
            "buffered": self._buffered,
            "ready_at": self._ready_at,
            "head_opcode": head_opcode,
            "head_invalid": self._head_invalid,
            "head_operands": list(self._head_operands),
            "current_operands": list(self._current_operands),
            "dispatches": self.dispatches,
        }

    def load_state(self, state: dict) -> None:
        head_opcode = state["head_opcode"]
        if head_opcode is not None and self.table is None:
            from ..errors import StateError
            raise StateError(
                "IFU snapshot carries a decoded head but no decode table "
                "is loaded on this machine"
            )
        self.now = state["now"]
        self.running = bool(state["running"])
        self.pc = state["pc"]
        self._buffered = state["buffered"]
        self._ready_at = state["ready_at"]
        self._head = (
            self.table.entry(head_opcode) if head_opcode is not None else None
        )
        self._head_invalid = bool(state["head_invalid"])
        self._head_operands = list(state["head_operands"])
        self._current_operands = list(state["current_operands"])
        self.dispatches = state["dispatches"]
