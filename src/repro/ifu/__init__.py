"""The instruction fetch unit substrate (Lampson et al., reference [5]).

"An instruction fetch unit (IFU) in the Dorado fetches bytes from such a
stream, decodes them as instructions and operands, and provides the
necessary control and data information to the processor."  The IFU owns
the macro program counter, prefetches the byte stream, decodes opcodes
through a per-instruction-set table into microstore dispatch addresses,
and hands operands to the processor on the IFUDATA bus.
"""

from .decoder import DecodeEntry, DecodeTable, OperandKind
from .ifu import Ifu

__all__ = ["DecodeEntry", "DecodeTable", "Ifu", "OperandKind"]
