"""IFU decode tables.

Each emulated instruction set loads a 256-entry table mapping opcode
bytes to a microstore **dispatch address** (where the emulator microcode
for that byte code begins), the instruction **length** in bytes, and the
**operand** treatment for the IFUDATA bus.  In the real machine this
table was RAM inside the IFU, loaded by microcode; here emulators build
a :class:`DecodeTable` with symbolic dispatch labels and resolve them
against the assembled microcode image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import EmulatorError
from ..types import word


class OperandKind(enum.Enum):
    """How the bytes after the opcode reach the processor on IFUDATA."""

    NONE = "none"          #: no operand bytes
    BYTE = "byte"          #: one byte, zero-extended
    SIGNED_BYTE = "sbyte"  #: one byte, sign-extended
    WORD = "word"          #: two bytes, big-endian, as one 16-bit operand
    PAIR = "pair"          #: two bytes, delivered as two successive operands

    @property
    def length(self) -> int:
        """Operand bytes consumed from the stream."""
        if self is OperandKind.NONE:
            return 0
        if self in (OperandKind.BYTE, OperandKind.SIGNED_BYTE):
            return 1
        return 2


@dataclass(frozen=True)
class DecodeEntry:
    """One opcode's decode information."""

    name: str              #: mnemonic, for traces
    dispatch: str          #: microcode label of the handler
    operands: OperandKind = OperandKind.NONE

    @property
    def length(self) -> int:
        """Total instruction length in bytes, including the opcode."""
        return 1 + self.operands.length

    def operand_values(self, raw: List[int]) -> List[int]:
        """The IFUDATA word(s) produced from the raw operand bytes."""
        if self.operands is OperandKind.NONE:
            return []
        if self.operands is OperandKind.BYTE:
            return [raw[0]]
        if self.operands is OperandKind.SIGNED_BYTE:
            value = raw[0]
            return [word(value - 256 if value & 0x80 else value)]
        if self.operands is OperandKind.WORD:
            return [word((raw[0] << 8) | raw[1])]
        return [raw[0], raw[1]]  # PAIR


class DecodeTable:
    """A 256-entry opcode decode table with symbolic dispatch labels."""

    def __init__(self, isa_name: str) -> None:
        self.isa_name = isa_name
        self._entries: List[Optional[DecodeEntry]] = [None] * 256
        self._by_name: Dict[str, int] = {}

    def define(self, opcode: int, entry: DecodeEntry) -> None:
        if not 0 <= opcode <= 255:
            raise EmulatorError(f"opcode {opcode} out of range")
        if self._entries[opcode] is not None:
            raise EmulatorError(f"{self.isa_name}: opcode {opcode:#04x} defined twice")
        if entry.name in self._by_name:
            raise EmulatorError(f"{self.isa_name}: mnemonic {entry.name!r} defined twice")
        self._entries[opcode] = entry
        self._by_name[entry.name] = opcode

    def entry(self, opcode: int) -> DecodeEntry:
        found = self._entries[opcode & 0xFF]
        if found is None:
            raise EmulatorError(
                f"{self.isa_name}: undefined opcode {opcode & 0xFF:#04x} in instruction stream"
            )
        return found

    def opcode(self, name: str) -> int:
        """The opcode assigned to a mnemonic (for byte-code assemblers)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise EmulatorError(f"{self.isa_name}: unknown mnemonic {name!r}") from None

    def defined_opcodes(self) -> List[int]:
        return [i for i, e in enumerate(self._entries) if e is not None]

    def dispatch_labels(self) -> List[str]:
        """All handler labels the microcode must define."""
        return sorted({e.dispatch for e in self._entries if e is not None})
