"""Host-side bitmap handling.

The Dorado display "is refreshed from a full bitmap in main storage;
this bitmap has one bit for each picture element (dot) on the screen"
(section 7).  A :class:`Bitmap` is a rectangle of bits living in
simulated main storage, word-aligned rows; the host-side accessors exist
so tests can verify what BitBlt microcode did.
"""

from __future__ import annotations

from typing import List

from ..errors import DoradoError
from ..types import WORD_BITS, word


class Bitmap:
    """A rectangle of bits in simulated memory.

    Rows are ``words_per_row`` full words; bit (x, y) is bit
    ``15 - (x % 16)`` of word ``base + y*words_per_row + x//16``
    (bit 0 of the display is the word's most significant bit, matching
    the Alto/Dorado raster convention).
    """

    def __init__(self, memory, base_va: int, words_per_row: int, height: int) -> None:
        if words_per_row <= 0 or height <= 0:
            raise DoradoError("bitmap dimensions must be positive")
        self.memory = memory
        self.base_va = base_va
        self.words_per_row = words_per_row
        self.height = height

    @property
    def width(self) -> int:
        return self.words_per_row * WORD_BITS

    @property
    def total_words(self) -> int:
        return self.words_per_row * self.height

    @property
    def total_bits(self) -> int:
        return self.total_words * WORD_BITS

    def row_address(self, y: int) -> int:
        return self.base_va + y * self.words_per_row

    def read_word(self, y: int, word_index: int) -> int:
        return self.memory.debug_read(self.row_address(y) + word_index)

    def write_word(self, y: int, word_index: int, value: int) -> None:
        self.memory.debug_write(self.row_address(y) + word_index, value)

    def get_bit(self, x: int, y: int) -> int:
        w = self.read_word(y, x // WORD_BITS)
        return (w >> (WORD_BITS - 1 - (x % WORD_BITS))) & 1

    def set_bit(self, x: int, y: int, value: int) -> None:
        w = self.read_word(y, x // WORD_BITS)
        mask = 1 << (WORD_BITS - 1 - (x % WORD_BITS))
        self.write_word(y, x // WORD_BITS, (w | mask) if value else (w & ~mask))

    def fill(self, value: int) -> None:
        for y in range(self.height):
            for i in range(self.words_per_row):
                self.write_word(y, i, value)

    def load_pattern(self, seed: int = 0x9E37) -> None:
        """Deterministic pseudo-random contents (xorshift), for tests."""
        state = seed or 1
        for y in range(self.height):
            for i in range(self.words_per_row):
                state ^= (state << 7) & 0xFFFF
                state ^= state >> 9
                state ^= (state << 8) & 0xFFFF
                self.write_word(y, i, state)

    def rows(self) -> List[List[int]]:
        """All rows as word lists (host-side snapshot)."""
        return [
            [self.read_word(y, i) for i in range(self.words_per_row)]
            for y in range(self.height)
        ]

    def render(self, on: str = "#", off: str = ".") -> str:
        """ASCII-art rendering, for examples and debugging."""
        lines = []
        for y in range(self.height):
            bits = []
            for i in range(self.words_per_row):
                w = self.read_word(y, i)
                bits.extend(on if (w >> (15 - b)) & 1 else off for b in range(16))
            lines.append("".join(bits))
        return "\n".join(lines)
