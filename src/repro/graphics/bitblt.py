"""BitBlt microcode (section 7) and its host-side runner.

"The Dorado's BitBlt can move display objects around in memory at 34
megabits/sec for simple cases like erasing or scrolling a screen.  More
complex operations, where the result is a function of the source
object, the destination object and a filter, run at 24 megabits/sec."

Three inner loops, all driven per destination word with the loop count
in COUNT (decrement-and-branch in the same microinstruction):

``bb.copy``
    The scrolling/moving loop: a one-word window of source words runs
    through the 32-bit shifter (``SHIFT_OUT`` of ``prev:cur``), handling
    arbitrary bit alignment.  Seven microinstructions plus one memory
    hold per word -- 8 cycles, or ~33 Mbit/s at 60 ns: the paper's
    "simple case".
``bb.func``
    The same window, merged with the fetched destination through the
    ALU (dst <- shifted-src XOR dst).  Nine microinstructions plus two
    holds -- 11 cycles/word, ~24 Mbit/s: the paper's "complex" case.
``bb.fill``
    Pure erase: one store-decrement-branch microinstruction per word.
    Faster than anything the paper quotes (the real BitBlt always ran
    its general setup); included as the simulator's upper bound.
"""

from __future__ import annotations

import enum
from typing import List

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.functions import FF
from ..core.processor import Processor
from ..core.shifter import ShiftControl
from ..errors import DoradoError
from ..types import WORD_BITS, word

# Task-0 RM register allocation (bank 0).
REG_SP = 0     #: source word pointer
REG_DP = 1     #: destination word pointer
REG_CUR = 2    #: current source word
REG_PREV = 3   #: previous source word (shifter window high half)
REG_ROWS = 4   #: rows remaining
REG_SADV = 5   #: source advance at end of row
REG_DADV = 6   #: destination advance at end of row
REG_WCNT = 7   #: words per row - 1 (reloaded into COUNT each row)
REG_VAL = 8    #: fill value
REG_FMASK = 9  #: first-word pixel mask (1 bits take the new value)
REG_LMASK = 10  #: last-word pixel mask


class BitBltFunction(enum.Enum):
    """Which inner loop to run."""

    COPY = "bb.copy"  #: dst <- shifted src (move/scroll)
    XOR = "bb.func"   #: dst <- shifted src XOR dst (function of src and dst)
    FILL = "bb.fill"  #: dst <- constant (erase), whole words
    FILLM = "bb.fillm"  #: masked fill: pixel-granularity rectangle edges


def bitblt_microcode(asm: Assembler) -> None:
    """Emit the three BitBlt loops into *asm*."""
    asm.registers(
        {
            "bb.sp": REG_SP, "bb.dp": REG_DP, "bb.c": REG_CUR, "bb.p": REG_PREV,
            "bb.rows": REG_ROWS, "bb.sadv": REG_SADV, "bb.dadv": REG_DADV,
            "bb.wcnt": REG_WCNT, "bb.val": REG_VAL,
        }
    )

    # --- shifted copy ------------------------------------------------------
    asm.label("bb.copy")
    asm.emit(r="bb.sp", a="RM", fetch=True, alu="INC", load="RM")   # prime prev
    asm.emit(r="bb.p", a="MD", alu="A", load="RM")
    asm.emit(r="bb.wcnt", b="RM", ff=FF.COUNT_B)
    asm.label("bb.copy_word")
    asm.emit(r="bb.sp", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(r="bb.c", a="MD", alu="A", load="RM")
    asm.emit(r="bb.c", b="RM", alu="B", load="T")
    asm.emit(r="bb.p", ff=FF.SHIFT_OUT, load="T")                   # window out
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM")
    asm.emit(r="bb.c", b="RM", alu="B", load="T")
    asm.emit(r="bb.p", b="T", alu="B", load="RM",
             branch=("COUNT", "bb.copy_word", "bb.copy_row"))
    asm.label("bb.copy_row")
    asm.emit(r="bb.sadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.sp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.dadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.rows", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "bb.copy_next", "bb.copy_done"))
    asm.label("bb.copy_next")
    asm.emit(goto="bb.copy")
    asm.label("bb.copy_done")
    asm.emit(ff=FF.HALT, idle=True)

    # --- function of source and destination --------------------------------
    asm.label("bb.func")
    asm.emit(r="bb.sp", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(r="bb.p", a="MD", alu="A", load="RM")
    asm.emit(r="bb.wcnt", b="RM", ff=FF.COUNT_B)
    asm.label("bb.func_word")
    asm.emit(r="bb.sp", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(r="bb.c", a="MD", alu="A", load="RM")
    asm.emit(r="bb.c", b="RM", alu="B", load="T")
    asm.emit(r="bb.p", ff=FF.SHIFT_OUT, load="T")
    asm.emit(r="bb.dp", a="RM", fetch=True)                          # dst word
    asm.emit(a="MD", b="T", alu="XOR", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM")
    asm.emit(r="bb.c", b="RM", alu="B", load="T")
    asm.emit(r="bb.p", b="T", alu="B", load="RM",
             branch=("COUNT", "bb.func_word", "bb.func_row"))
    asm.label("bb.func_row")
    asm.emit(r="bb.sadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.sp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.dadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.rows", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "bb.func_next", "bb.func_done"))
    asm.label("bb.func_next")
    asm.emit(goto="bb.func")
    asm.label("bb.func_done")
    asm.emit(ff=FF.HALT, idle=True)

    # --- erase ------------------------------------------------------------------
    asm.label("bb.fill")
    asm.emit(r="bb.wcnt", b="RM", ff=FF.COUNT_B)
    asm.emit(r="bb.val", b="RM", alu="B", load="T")
    asm.label("bb.fill_word")
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM",
             branch=("COUNT", "bb.fill_word", "bb.fill_row"))
    asm.label("bb.fill_row")
    asm.emit(r="bb.dadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.rows", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "bb.fill_next", "bb.fill_done"))
    asm.label("bb.fill_next")
    asm.emit(goto="bb.fill")
    asm.label("bb.fill_done")
    asm.emit(ff=FF.HALT, idle=True)

    # --- masked fill: pixel-granularity rectangles --------------------------
    # Per row: merge the fill value into the first word under FMASK
    # (read-modify-write), run the whole-word loop over the middle, then
    # merge the last word under LMASK.  Rectangles narrower than a word
    # are handled on the host by intersecting the masks.
    asm.registers({"bb.fm": REG_FMASK, "bb.lm": REG_LMASK})

    asm.label("bb.fillm")
    # First word: dst <- (val & fm) | (dst & ~fm).
    asm.emit(r="bb.dp", a="RM", fetch=True)
    asm.emit(r="bb.fm", a="MD", b="RM", alu="ANDNOT", load="T")   # dst & ~fm
    asm.emit(r="bb.c", b="T", alu="B", load="RM")                  # stash dst&~fm
    asm.emit(r="bb.fm", b="RM", alu="B", load="T")
    asm.emit(r="bb.val", a="RM", b="T", alu="AND", load="T")       # val & fm
    asm.emit(r="bb.c", a="RM", b="T", alu="OR", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM")
    # Middle words: COUNT(wcnt) whole-word stores (wcnt may be 0).
    asm.emit(r="bb.wcnt", a="RM", alu="A",
             branch=("ZERO", "bb.fillm_last_go", "bb.fillm_mid"))
    asm.label("bb.fillm_last_go")
    asm.emit(goto="bb.fillm_last")
    asm.label("bb.fillm_mid")
    # COUNT <- middle-1: the decrement-and-branch loop body runs
    # count+1 times (it executes on the test of zero too).
    asm.emit(r="bb.wcnt", a="RM", alu="DEC", load="T")
    asm.emit(b="T", ff=FF.COUNT_B)
    asm.emit(r="bb.val", b="RM", alu="B", load="T")
    asm.label("bb.fillm_word")
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM",
             branch=("COUNT", "bb.fillm_word", "bb.fillm_last"))
    asm.label("bb.fillm_last")
    # Last word: dst <- (val & lm) | (dst & ~lm).
    asm.emit(r="bb.dp", a="RM", fetch=True)
    asm.emit(r="bb.lm", a="MD", b="RM", alu="ANDNOT", load="T")
    asm.emit(r="bb.c", b="T", alu="B", load="RM")
    asm.emit(r="bb.lm", b="RM", alu="B", load="T")
    asm.emit(r="bb.val", a="RM", b="T", alu="AND", load="T")
    asm.emit(r="bb.c", a="RM", b="T", alu="OR", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", store=True, alu="INC", load="RM")
    # Next row.
    asm.emit(r="bb.dadv", b="RM", alu="B", load="T")
    asm.emit(r="bb.dp", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="bb.rows", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "bb.fillm_next", "bb.fillm_done"))
    asm.label("bb.fillm_next")
    asm.emit(goto="bb.fillm")
    asm.label("bb.fillm_done")
    asm.emit(ff=FF.HALT, idle=True)


def build_bitblt_machine(config: MachineConfig = PRODUCTION) -> Processor:
    """A processor loaded with the BitBlt microcode and an identity map."""
    asm = Assembler(config)
    asm.emit(ff=FF.HALT, idle=True)  # benign entry if booted unconfigured
    bitblt_microcode(asm)
    cpu = Processor(config)
    cpu.load_image(asm.assemble())
    cpu.memory.identity_map()
    return cpu


def run_bitblt(
    cpu: Processor,
    function: BitBltFunction,
    *,
    src_va: int = 0,
    dst_va: int,
    words_per_row: int,
    rows: int,
    src_pitch: int = None,
    dst_pitch: int = None,
    shift: int = 0,
    fill_value: int = 0,
    max_cycles: int = 10_000_000,
) -> int:
    """Run one BitBlt; returns the cycles it took.

    *shift* is the bit offset (0..15) of the source window; the copy and
    function loops read ``words_per_row + 1`` source words per row.
    """
    if words_per_row < 1 or rows < 1:
        raise DoradoError("BitBlt needs at least one word and one row")
    if not 0 <= shift <= 15:
        raise DoradoError("shift must be 0..15")
    src_pitch = words_per_row if src_pitch is None else src_pitch
    dst_pitch = words_per_row if dst_pitch is None else dst_pitch

    regs = cpu.regs
    regs.write_rbase(0, 0)
    regs.write_membase(0, 0)
    regs.write_rm_absolute(REG_SP, src_va)
    regs.write_rm_absolute(REG_DP, dst_va)
    regs.write_rm_absolute(REG_ROWS, rows)
    regs.write_rm_absolute(REG_WCNT, words_per_row - 1)
    regs.write_rm_absolute(REG_VAL, fill_value)
    if function is BitBltFunction.FILL:
        regs.write_rm_absolute(REG_DADV, word(dst_pitch - words_per_row))
        regs.write_rm_absolute(REG_SADV, 0)
    else:
        regs.write_rm_absolute(REG_SADV, word(src_pitch - words_per_row - 1))
        regs.write_rm_absolute(REG_DADV, word(dst_pitch - words_per_row))
    regs.write_shiftctl(ShiftControl(amount=shift).encode())

    cpu.boot(cpu.address_of(function.value))
    start = cpu.counters.cycles
    cpu.run(max_cycles)
    if not cpu.halted:
        raise DoradoError("BitBlt did not finish within the cycle budget")
    return cpu.counters.cycles - start


def fill_rect_pixels(
    cpu: Processor,
    *,
    base_va: int,
    words_per_row: int,
    x: int,
    y: int,
    width: int,
    height: int,
    value: int = 0xFFFF,
    max_cycles: int = 10_000_000,
) -> int:
    """Fill a pixel rectangle using the masked BitBlt loop.

    Edge words are read-modify-written under first/last-word masks; any
    whole words in between go through the plain store loop.  Returns the
    cycles used.
    """
    if width < 1 or height < 1:
        raise DoradoError("rectangle must be at least 1x1 pixels")
    if x < 0 or x + width > words_per_row * WORD_BITS:
        raise DoradoError("rectangle exceeds the row")
    first_word, last_word = x // WORD_BITS, (x + width - 1) // WORD_BITS
    # Pixel masks: bit 15 is the leftmost pixel of a word.
    fmask = (0xFFFF >> (x % WORD_BITS)) & 0xFFFF
    lmask = (0xFFFF << (WORD_BITS - 1 - ((x + width - 1) % WORD_BITS))) & 0xFFFF
    if first_word == last_word:
        fmask &= lmask
        lmask = fmask
    span = last_word - first_word + 1
    middle = max(0, span - 2)
    if span == 1:
        # Degenerate: run a 2-word pass with the last mask forced empty?
        # Simpler: first == last word; use fmask for both and point the
        # "last" merge at the same word by running a 1-row trick: fall
        # back to two merges of the same word (idempotent since the
        # masks are equal).
        pass

    regs = cpu.regs
    regs.write_rbase(0, 0)
    regs.write_membase(0, 0)
    regs.write_rm_absolute(REG_DP, base_va + y * words_per_row + first_word)
    regs.write_rm_absolute(REG_ROWS, height)
    regs.write_rm_absolute(REG_WCNT, middle)
    regs.write_rm_absolute(REG_VAL, value & 0xFFFF)
    regs.write_rm_absolute(REG_FMASK, fmask)
    regs.write_rm_absolute(REG_LMASK, lmask if span > 1 else 0)
    # Row advance: the loop consumes first + middle + last words.
    consumed = 1 + middle + 1
    regs.write_rm_absolute(REG_DADV, word(words_per_row - consumed))

    cpu.boot(cpu.address_of(BitBltFunction.FILLM.value))
    start = cpu.counters.cycles
    cpu.run(max_cycles)
    if not cpu.halted:
        raise DoradoError("masked fill did not finish")
    return cpu.counters.cycles - start


def reference_shifted_row(src_words: List[int], shift: int) -> List[int]:
    """What one row of ``bb.copy`` produces (host-side oracle).

    ``src_words`` has words_per_row + 1 entries; output word j is the
    16-bit window starting *shift* bits into source word j.
    """
    out = []
    for j in range(len(src_words) - 1):
        window = ((src_words[j] << 16) | src_words[j + 1]) >> (16 - shift) if shift else src_words[j]
        out.append(word(window))
    return out
