"""Bitmaps and BitBlt (section 7, reference [9] for RasterOp).

"A special operation called BitBlt (bit boundary block transfer) makes
it easier to create and update bitmaps ... BitBlt makes extensive use of
the shifting/masking capability of the processor."
"""

from .bitmap import Bitmap
from .bitblt import BitBltFunction, bitblt_microcode, build_bitblt_machine, run_bitblt

__all__ = [
    "Bitmap",
    "BitBltFunction",
    "bitblt_microcode",
    "build_bitblt_machine",
    "run_bitblt",
]
