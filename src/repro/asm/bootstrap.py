"""Bootstrap: microcode that loads microcode.

The Dorado's microstore is writeable and the machine was brought up
"from the bottom": a small resident loader could pull a microprogram
image out of main memory (where the console, or the disk task, had put
it), write it into IM through the folded TPIMOUT paths (section 6.2.3),
and jump into it via LINK.  This module provides exactly that: a
12-instruction resident loader, the image-to-memory encoding, and a
helper that stages an assembled :class:`~repro.asm.program.Image` for
booting.

Boot-table format in memory (one word each)::

    [ im_address, low16, mid16, high2 ] ... repeated ...
    0xFFFF, entry_address

A microinstruction cannot live at IM address 0xFFFF (the store is 4K),
so the sentinel is unambiguous.

The loader's IM writes land through the console's staging path
(``IM_ADDR_B`` / ``IM_WRITE_*``), which reports every completed write
to the processor so the execution-plan cache drops the slot's compiled
plan (DESIGN.md section 5.1) -- freshly loaded microcode is never
shadowed by a stale decode, even when the loader overwrites itself.
"""

from __future__ import annotations

from typing import List

from ..core.functions import FF
from .assembler import Assembler
from .program import Image

#: RM registers used by the loader (task 0 bank).
REG_PTR = 8   #: walks the boot table in memory

#: End-of-table sentinel (not a valid IM address).
SENTINEL = 0xFFFF


def boot_loader_microcode(asm: Assembler) -> None:
    """Emit the resident loader at label ``boot.load``.

    Expects RM register 8 to point at the boot table (virtual address)
    and MEMBASE 0 to map it; ends by jumping into the loaded program.
    """
    asm.register("boot.ptr", REG_PTR)

    asm.label("boot.load")
    asm.emit(r="boot.ptr", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(a="MD", alu="A", load="T")                     # IM address or sentinel
    asm.emit(a="T", b=SENTINEL, alu="XOR",
             branch=("ZERO", "boot.done", "boot.write"))
    asm.label("boot.write")
    asm.emit(b="T", ff=FF.IM_ADDR_B)
    for write_ff in (FF.IM_WRITE_LO, FF.IM_WRITE_MID):
        asm.emit(r="boot.ptr", a="RM", fetch=True, alu="INC", load="RM")
        asm.emit(a="MD", alu="A", load="T")
        asm.emit(b="T", ff=write_ff)
    asm.emit(r="boot.ptr", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(a="MD", alu="A", load="T")
    asm.emit(b="T", ff=FF.IM_WRITE_HI, goto="boot.load")
    asm.label("boot.done")
    asm.emit(r="boot.ptr", a="RM", fetch=True)              # entry address
    asm.emit(a="MD", alu="A", load="T")
    asm.emit(b="T", ff=FF.LINK_B)                           # LINK <- entry
    asm.emit(ret=True)                                       # ...and go


def encode_for_boot(image: Image, entry_label: str) -> List[int]:
    """Flatten an assembled image into the boot-table word format."""
    words: List[int] = []
    for address, inst in sorted(image.words.items()):
        bits = inst.encode()
        words.extend(
            [address, bits & 0xFFFF, (bits >> 16) & 0xFFFF, (bits >> 32) & 0x3]
        )
    words.append(SENTINEL)
    words.append(image.address_of(entry_label))
    return words


def stage_boot(machine, image: Image, entry_label: str, table_va: int) -> None:
    """Put *image* in memory at *table_va* and aim the loader at it.

    After this, booting the machine at ``boot.load`` loads the image
    into the control store and transfers to *entry_label*.
    """
    words = encode_for_boot(image, entry_label)
    machine.memory.storage.load(table_va, words)
    machine.regs.write_rbase(0, 0)
    machine.regs.write_membase(0, 0)
    machine.regs.write_rm_absolute(REG_PTR, table_va)
