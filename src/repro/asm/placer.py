"""Automatic placement of microinstructions onto control-store pages.

Section 5.5 describes the deal the Dorado made for its 8-bit
NextControl: the microstore is paged, conditional branch targets must
sit in even/odd pairs, cross-page transfers borrow FF, and an assembler
"which can fit the instructions onto pages appropriately" eats the
complexity.  Section 7 reports the payoff: "the automatic placer filled
99.9% of the available memory when called upon to place an essentially
full microstore."

The constraints, in our encoding (DESIGN.md section 2):

* a GOTO/CALL whose FF is busy must land in its target's page (a free
  FF can carry a ``JumpPage`` assist instead);
* a conditional branch and its two targets always share a page; the
  false target sits at an even offset with the true target at the next
  odd offset; pairs 8..31 need a free FF for the ``BranchPair`` assist;
* the eight targets of a DISPATCH8 occupy an 8-aligned run of eight
  words in the dispatcher's page;
* a CALL's continuation is THISPC+1 (LINK is "loaded with the value
  THISPC+1 on every microcode call", section 6.2.3), so the
  instruction emitted after a call must be placed immediately after it
  -- the "special subroutine locations" of section 7;
* an instruction may be the target of at most one branch pair --
  "several conditional branches cannot have same target; when this
  case arises the target must be duplicated."

Placement is: union-find the hard same-page constraints into clusters,
first-fit-decreasing clusters into pages (validating the even/odd and
alignment layout as part of fitting), then patch NextControl payloads
and FF assists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import MachineConfig
from ..core import functions
from ..core.microword import MicroInstruction, Misc, NextControl, NextType
from ..errors import PlacementError
from .program import ControlKind, Image, SourceOp


@dataclass
class PlacementReport:
    """What the placer did -- the section 7 utilization experiment."""

    instructions: int
    pages_used: int
    page_size: int
    ff_assists: int  #: JumpPage/BranchPair codes the placer added

    @property
    def capacity_used(self) -> int:
        return self.pages_used * self.page_size

    @property
    def utilization(self) -> float:
        """Placed words over the capacity of the pages consumed."""
        if self.capacity_used == 0:
            return 1.0
        return self.instructions / self.capacity_used


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class _Cluster:
    """Instructions that must share a page, with their layout shapes."""

    members: List[int] = field(default_factory=list)
    pairs: List[Tuple[int, int, bool]] = field(default_factory=list)  # (f, t, low_required)
    runs: List[List[int]] = field(default_factory=list)  # dispatch runs of 8
    chains: List[List[int]] = field(default_factory=list)  # call continuations
    singles: List[int] = field(default_factory=list)

    @property
    def words(self) -> int:
        return len(self.members)

    @property
    def low_pairs(self) -> int:
        return sum(1 for _, _, low in self.pairs if low)


class _Page:
    """One page's occupancy during layout."""

    def __init__(self, number: int, size: int) -> None:
        self.number = number
        self.size = size
        self.used = [False] * size

    @property
    def free_words(self) -> int:
        return self.used.count(False)

    def take_pair(self, low_required: bool) -> Optional[int]:
        """Claim an even/odd pair; returns the even offset or None."""
        limit = 16 if low_required else self.size
        for even in range(0, limit, 2):
            if not self.used[even] and not self.used[even + 1]:
                self.used[even] = self.used[even + 1] = True
                return even
        return None

    def take_run(self, length: int, align: int) -> Optional[int]:
        for start in range(0, self.size - length + 1, align):
            if not any(self.used[start : start + length]):
                for i in range(start, start + length):
                    self.used[i] = True
                return start
        return None

    def take_single(self) -> Optional[int]:
        # Fill from the top so low offsets stay free for constrained pairs.
        for offset in range(self.size - 1, -1, -1):
            if not self.used[offset]:
                self.used[offset] = True
                return offset
        return None

    def release(self, offsets: Sequence[int]) -> None:
        for offset in offsets:
            self.used[offset] = False


def _resolve(label: str, labels: Dict[str, int], op: SourceOp) -> int:
    try:
        return labels[label]
    except KeyError:
        where = f" (emitted at {op.source_line})" if op.source_line else ""
        raise PlacementError(f"undefined label {label!r}{where}") from None


def _build_clusters(
    ops: Sequence[SourceOp], labels: Dict[str, int]
) -> List[_Cluster]:
    n = len(ops)
    uf = _UnionFind(n)
    pair_of: Dict[int, Tuple[int, int]] = {}  # member -> (f, t)
    pair_low: Dict[Tuple[int, int], bool] = {}
    runs: List[List[int]] = []
    in_run: Set[int] = set()

    # CALL continuations: the op emitted after a call runs at THISPC+1,
    # so it must be placed adjacently.  Build maximal chains.
    follows: Dict[int, int] = {}
    for i, op in enumerate(ops):
        if op.control.kind in (ControlKind.CALL, ControlKind.CORETURN):
            if i + 1 >= n:
                raise PlacementError(
                    f"op {i} is a CALL/CORETURN with no continuation after it"
                )
            follows[i] = i + 1
            uf.union(i, i + 1)
    chain_heads = [i for i in follows if i - 1 not in follows]
    chains: List[List[int]] = []
    in_chain: Set[int] = set()
    for head in sorted(chain_heads):
        chain = [head]
        while chain[-1] in follows:
            chain.append(follows[chain[-1]])
        chains.append(chain)
        in_chain.update(chain)

    for i, op in enumerate(ops):
        spec = op.control
        if spec.kind in (ControlKind.GOTO, ControlKind.CALL):
            j = _resolve(spec.target, labels, op)
            if not op.ff_free:
                uf.union(i, j)
        elif spec.kind == ControlKind.BRANCH:
            f = _resolve(spec.false_target, labels, op)
            t = _resolve(spec.true_target, labels, op)
            if f == t:
                raise PlacementError(
                    f"branch at op {i} has identical true/false targets; use GOTO"
                )
            key = (f, t)
            for member in key:
                existing = pair_of.get(member)
                if existing is not None and existing != key:
                    raise PlacementError(
                        f"op {member} is a target of two different branch pairs; "
                        "duplicate the target instruction (section 5.5)"
                    )
            pair_of[f] = key
            pair_of[t] = key
            pair_low[key] = pair_low.get(key, False) or not op.ff_free
            uf.union(i, f)
            uf.union(i, t)
        elif spec.kind == ControlKind.DISPATCH8:
            targets = [_resolve(l, labels, op) for l in spec.dispatch_targets]
            if len(targets) != 8:
                raise PlacementError(f"DISPATCH8 at op {i} needs exactly 8 targets")
            if len(set(targets)) != 8:
                raise PlacementError(f"DISPATCH8 at op {i} has duplicate targets")
            for j in targets:
                if j in in_run:
                    raise PlacementError(
                        f"op {j} belongs to two dispatch runs; duplicate it"
                    )
                in_run.add(j)
                uf.union(i, j)
            runs.append(targets)
        elif spec.kind == ControlKind.NOTIFY:
            raise PlacementError(
                "NOTIFY sequencing is not placeable; use the FF TRACE function"
            )

    conflict = in_run & set(pair_of)
    if conflict:
        raise PlacementError(
            f"ops {sorted(conflict)[:4]} are both branch-pair and dispatch targets; "
            "duplicate them"
        )
    conflict = in_chain & set(pair_of)
    if conflict:
        raise PlacementError(
            f"ops {sorted(conflict)[:4]} are both branch-pair targets and CALL "
            "continuations; insert a GOTO to separate the roles"
        )
    conflict = in_chain & in_run
    if conflict:
        raise PlacementError(
            f"ops {sorted(conflict)[:4]} are both dispatch targets and CALL "
            "continuations; insert a GOTO to separate the roles"
        )

    clusters: Dict[int, _Cluster] = {}
    for i in range(n):
        clusters.setdefault(uf.find(i), _Cluster()).members.append(i)

    seen_pairs: Set[Tuple[int, int]] = set()
    for root, cluster in clusters.items():
        for i in cluster.members:
            pair = pair_of.get(i)
            if pair is not None and pair not in seen_pairs:
                seen_pairs.add(pair)
                cluster.pairs.append((pair[0], pair[1], pair_low[pair]))
        placed_in_shape = {m for p in cluster.pairs for m in p[:2]}
        for run in runs:
            if uf.find(run[0]) == root:
                cluster.runs.append(run)
                placed_in_shape.update(run)
        for chain in chains:
            if uf.find(chain[0]) == root:
                cluster.chains.append(chain)
                placed_in_shape.update(chain)
        cluster.singles = [m for m in cluster.members if m not in placed_in_shape]
    return list(clusters.values())


def _layout_cluster(cluster: _Cluster, page: _Page) -> Optional[Dict[int, int]]:
    """Try to lay a cluster into a page; returns op -> offset, or None."""
    taken: List[int] = []
    result: Dict[int, int] = {}

    def fail() -> None:
        page.release(taken)

    for run in cluster.runs:
        start = page.take_run(8, 8)
        if start is None:
            fail()
            return None
        taken.extend(range(start, start + 8))
        for k, member in enumerate(run):
            result[member] = start + k
    # Call chains: consecutive, no alignment requirement.
    for chain in sorted(cluster.chains, key=len, reverse=True):
        start = page.take_run(len(chain), 1)
        if start is None:
            fail()
            return None
        taken.extend(range(start, start + len(chain)))
        for k, member in enumerate(chain):
            result[member] = start + k
    # Constrained (low) pairs first, then free pairs.
    for f, t, low in sorted(cluster.pairs, key=lambda p: not p[2]):
        even = page.take_pair(low)
        if even is None:
            fail()
            return None
        taken.extend((even, even + 1))
        result[f] = even
        result[t] = even + 1
    for member in cluster.singles:
        offset = page.take_single()
        if offset is None:
            fail()
            return None
        taken.append(offset)
        result[member] = offset
    return result


def place(
    ops: Sequence[SourceOp],
    config: MachineConfig,
    base_page: int = 0,
) -> Tuple[Image, PlacementReport]:
    """Assign addresses, patch successors, and encode a program."""
    labels: Dict[str, int] = {}
    for i, op in enumerate(ops):
        for label in op.labels:
            if label in labels:
                raise PlacementError(f"label {label!r} defined twice")
            labels[label] = i

    clusters = _build_clusters(ops, labels)
    page_size = config.page_size
    for cluster in clusters:
        if cluster.words > page_size:
            raise PlacementError(
                f"a same-page cluster of {cluster.words} instructions exceeds the "
                f"{page_size}-word page; break it up with FF-free transfers"
            )

    # FF JumpPage carries only 6 bits, so cross-page transfers can reach
    # pages 0..63 regardless of page size: the placer never allocates
    # beyond them (with 64-word pages this is the whole 4K store).
    max_pages = min(config.num_pages, 64) - base_page
    pages: List[_Page] = []
    address_of_op: Dict[int, int] = {}

    for cluster in sorted(clusters, key=lambda c: c.words, reverse=True):
        placed = False
        for page in pages:
            if page.free_words < cluster.words:
                continue
            layout = _layout_cluster(cluster, page)
            if layout is not None:
                for member, offset in layout.items():
                    address_of_op[member] = page.number * page_size + offset
                placed = True
                break
        if not placed:
            if len(pages) >= max_pages:
                raise PlacementError(
                    f"program needs more than {max_pages} pages from page {base_page}"
                )
            page = _Page(base_page + len(pages), page_size)
            pages.append(page)
            layout = _layout_cluster(cluster, page)
            if layout is None:
                raise PlacementError(
                    f"cluster of {cluster.words} words cannot be laid out in an "
                    f"empty page (pair/alignment conflict)"
                )
            for member, offset in layout.items():
                address_of_op[member] = page.number * page_size + offset
            placed = True

    words, assists = _encode(ops, labels, address_of_op, config)
    symbols = {label: address_of_op[i] for label, i in labels.items()}
    image = Image(
        words=words,
        symbols=symbols,
        im_size=config.im_size,
        entry=address_of_op[0] if ops else 0,
    )
    report = PlacementReport(
        instructions=len(ops),
        pages_used=len(pages),
        page_size=page_size,
        ff_assists=assists,
    )
    return image, report


def _encode(
    ops: Sequence[SourceOp],
    labels: Dict[str, int],
    address_of_op: Dict[int, int],
    config: MachineConfig,
) -> Tuple[Dict[int, MicroInstruction], int]:
    page_size = config.page_size
    words: Dict[int, MicroInstruction] = {}
    assists = 0

    for i, op in enumerate(ops):
        address = address_of_op[i]
        page_base = address & ~(page_size - 1)
        ff = op.ff
        spec = op.control

        if spec.kind in (ControlKind.GOTO, ControlKind.CALL):
            target = address_of_op[labels[spec.target]]
            offset = target & (page_size - 1)
            if (target & ~(page_size - 1)) != page_base:
                if not op.ff_free:
                    raise PlacementError(
                        f"internal: cross-page transfer at {address} with busy FF"
                    )
                ff = functions.jump_page(target // page_size)
                assists += 1
            kind = NextType.GOTO if spec.kind == ControlKind.GOTO else NextType.CALL
            nc = NextControl.pack(kind, offset)
        elif spec.kind == ControlKind.BRANCH:
            f_addr = address_of_op[labels[spec.false_target]]
            t_addr = address_of_op[labels[spec.true_target]]
            assert t_addr == f_addr + 1 and f_addr % 2 == 0, "pair layout violated"
            assert (f_addr & ~(page_size - 1)) == page_base, "branch page violated"
            pair = (f_addr - page_base) // 2
            if pair <= 7:
                nc = NextControl.branch(spec.condition, pair)
            else:
                if not op.ff_free:
                    raise PlacementError(
                        f"internal: far branch pair at {address} with busy FF"
                    )
                ff = functions.branch_pair(pair)
                assists += 1
                nc = NextControl.pack(
                    NextType.BRANCH, (int(spec.condition) << 3) | 0
                )
        elif spec.kind == ControlKind.RET:
            nc = NextControl.pack(NextType.MISC, int(Misc.RETURN) << 3)
        elif spec.kind == ControlKind.CORETURN:
            nc = NextControl.pack(NextType.MISC, int(Misc.RETURN_CALL) << 3)
        elif spec.kind == ControlKind.NEXTMACRO:
            nc = NextControl.pack(NextType.MISC, int(Misc.NEXTMACRO) << 3)
        elif spec.kind == ControlKind.DISPATCH8:
            base = address_of_op[labels[spec.dispatch_targets[0]]]
            assert base % 8 == 0 and (base & ~(page_size - 1)) == page_base
            arg = (base - page_base) // 8
            nc = NextControl.pack(NextType.MISC, (int(Misc.DISPATCH8) << 3) | arg)
        elif spec.kind == ControlKind.IDLE:
            nc = NextControl.pack(NextType.MISC, int(Misc.IDLE) << 3)
        else:
            raise PlacementError(f"unplaceable control kind {spec.kind!r}")

        words[address] = MicroInstruction(
            rsel=op.rsel,
            aluop=op.aluop,
            bsel=op.bsel,
            lc=op.lc,
            asel=op.asel,
            block=op.block,
            ff=ff,
            nc=nc,
        )
    return words, assists
