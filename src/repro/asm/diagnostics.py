"""Microcoded diagnostics.

Section 4: the Dorado's density meant "it is not possible to access
every signal with a scope probe ... We make up for this by providing
sophisticated debugging facilities, diagnostics, and the ability to
incrementally assemble and test a Dorado from the bottom up."  These are
that style of diagnostic, written as microcode for the simulated
machine:

``diag.imsum``
    Checksums a range of the control store through the IM read paths --
    the "is the microcode that I loaded really there?" check.
``diag.rmtest``
    Address-in-data march over one RM bank: every register gets its own
    number, then each is verified; a mismatch hits a breakpoint.
``diag.alutest``
    Runs every standard ALUFM operation on fixed operands and compares
    against host-computed goldens, trapping on the first mismatch.

All three end with FF TRACE of a pass-marker and HALT, so the host
asserts ``console.trace == [PASS]``.
"""

from __future__ import annotations

from typing import List

from ..core.alu import STANDARD_ALUFM, STANDARD_OPS, compute
from ..core.functions import FF
from .assembler import Assembler
from .program import Image

#: Trace marker emitted by a passing diagnostic.
PASS = 0x00AA

# RM registers used by diag.imsum (bank selected by the caller's RBASE).
REG_ADDR = 9
REG_SUM = 10


def im_checksum_microcode(asm: Assembler) -> None:
    """Emit ``diag.imsum``.

    Inputs: RM[9] = first IM address, COUNT = word count - 1, RM[10] = 0.
    Output: RM[10] = the 16-bit sum of all three pieces of every word;
    traces the sum and halts.
    """
    asm.registers({"dg.addr": REG_ADDR, "dg.sum": REG_SUM})
    asm.label("diag.imsum")
    asm.emit(r="dg.addr", b="RM", alu="B", load="T")
    asm.emit(b="T", ff=FF.IM_ADDR_B)
    for piece in (FF.IM_READ_LO, FF.IM_READ_MID, FF.IM_READ_HI):
        asm.emit(ff=piece, load="T")
        asm.emit(r="dg.sum", a="RM", b="T", alu="ADD", load="RM")
    asm.emit(r="dg.addr", a="RM", alu="INC", load="RM",
             branch=("COUNT", "diag.imsum", "diag.imsum_done"))
    asm.label("diag.imsum_done")
    asm.emit(r="dg.sum", b="RM", ff=FF.TRACE)
    asm.emit(ff=FF.HALT, idle=True)


def expected_im_checksum(image: Image, start: int, count: int) -> int:
    """The host-side golden value for ``diag.imsum``."""
    total = 0
    for address in range(start, start + count):
        inst = image.words.get(address)
        bits = inst.encode() if inst is not None else 0
        total += (bits & 0xFFFF) + ((bits >> 16) & 0xFFFF) + ((bits >> 32) & 0x3)
    return total & 0xFFFF


def rm_march_microcode(asm: Assembler) -> None:
    """Emit ``diag.rmtest``: address-in-data over the current RM bank.

    Every register r gets the value r, then every register is compared;
    the first mismatch executes a breakpoint.  Trashes the whole bank.
    """
    asm.label("diag.rmtest")
    for r in range(16):
        asm.emit(r=r, b=r, alu="B", load="RM")
    for r in range(16):
        asm.emit(r=r, a="RM", b=r, alu="XOR",
                 branch=("NONZERO", f"diag.rmfail{r}", f"diag.rmok{r}"))
        asm.label(f"diag.rmfail{r}")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"diag.rmok{r}")
        asm.emit()  # fall through to the next comparison
    asm.emit(b=PASS & 0xFF, alu="B", load="T")
    asm.emit(a="T", b=PASS & 0xFF00, alu="OR", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.emit(ff=FF.HALT, idle=True)


def alu_selftest_microcode(asm: Assembler, a: int = 0x0012, b: int = 0x0034) -> None:
    """Emit ``diag.alutest``: golden checks of all 16 standard ALU ops.

    The goldens are computed on the host from the same operands; the
    saved-carry slots are exercised with a known carry state (the ADD
    immediately before them leaves carry clear for these operands).
    """
    asm.register("dg.a", 11)
    asm.register("dg.b", 12)
    asm.register("dg.r", 13)
    asm.label("diag.alutest")
    asm.load_constant("dg.a", a)
    asm.load_constant("dg.b", b)
    saved_carry = False
    for name, slot in sorted(STANDARD_OPS.items(), key=lambda kv: kv[1]):
        golden = compute(STANDARD_ALUFM[slot], a, b, saved_carry)
        if golden.arithmetic:
            saved_carry = golden.carry
        # result <- a OP b
        asm.emit(r="dg.b", b="RM", alu="B", load="T")
        asm.emit(r="dg.a", a="RM", b="T", alu=name, load="T")
        asm.emit(r="dg.r", b="T", alu="B", load="RM")
        # compare against the golden (built with load_constant).
        asm.load_constant(14, golden.value)  # golden scratch register
        asm.emit(r=14, b="RM", alu="B", load="T")
        asm.emit(r="dg.r", a="RM", b="T", alu="XOR",
                 branch=("NONZERO", f"diag.alufail_{name}", f"diag.aluok_{name}"))
        asm.label(f"diag.alufail_{name}")
        asm.emit(ff=FF.BREAKPOINT, idle=True)
        asm.label(f"diag.aluok_{name}")
        asm.emit()
        # restore dg.b (the compare scratch shares nothing with it).
    asm.emit(b=PASS & 0xFF, alu="B", load="T")
    asm.emit(a="T", b=PASS & 0xFF00, alu="OR", load="T")
    asm.emit(b="T", ff=FF.TRACE)
    asm.emit(ff=FF.HALT, idle=True)
