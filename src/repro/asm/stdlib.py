"""A small library of reusable microcode routines and idioms.

Section 6.2.3: "LINK can also be loaded from a data bus, so that control
can be sent to an arbitrary computed address; this allows a microprogram
to implement a stack of subroutine links, for example."  The
:func:`emit_save_link` / :func:`emit_restore_link` macros are exactly
that stack (in main memory, pointer in an RM register), which is what
makes *recursive microcode* possible on a machine with a single
hardware LINK per task -- demonstrated by :func:`triangular_microcode`.

Also here: the block-move and block-fill inner loops every machine
grows, as CALLable microsubroutines.
"""

from __future__ import annotations

from ..core.functions import FF
from .assembler import Assembler

#: RM register holding the link-stack pointer (a main-memory VA).
REG_LSP = 15

# Registers used by the block routines.
REG_SRC = 12
REG_DST = 13
REG_CNT = 14


def register_names(asm: Assembler) -> None:
    asm.registers({"lib.lsp": REG_LSP, "lib.src": REG_SRC,
                   "lib.dst": REG_DST, "lib.cnt": REG_CNT})


def emit_save_link(asm: Assembler) -> None:
    """Inline macro: push LINK onto the memory link stack (2 instructions).

    Inlined rather than CALLed, since a call would clobber the LINK
    being saved.
    """
    asm.emit(b="LINK", alu="B", load="T")
    asm.emit(r="lib.lsp", a="RM", b="T", store=True, alu="INC", load="RM")


def emit_restore_link(asm: Assembler) -> None:
    """Inline macro: pop the memory link stack back into LINK (4 instructions).

    The popped word goes through T: EXTB_MEMDATA and LINK_B both need FF
    (one FF operation per instruction, section 5.5).
    """
    asm.emit(r="lib.lsp", a="RM", alu="DEC", load="RM")
    asm.emit(r="lib.lsp", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", load="T")
    asm.emit(b="T", ff=FF.LINK_B)


def memcpy_microcode(asm: Assembler) -> None:
    """``lib.memcpy``: copy ``lib.cnt`` words from ``lib.src`` to ``lib.dst``.

    CALL with the three registers set; returns with ``lib.cnt`` = 0.
    Two microinstructions per word plus one memory hold: the canonical
    fetch/store move loop.
    """
    register_names(asm)
    asm.label("lib.memcpy")
    # Two branches cannot share a target (section 5.5): the zero-count
    # early-out gets its own duplicated RET.
    asm.emit(r="lib.cnt", a="RM", alu="A",
             branch=("ZERO", "lib.memcpy_empty", "lib.memcpy_enter"))
    asm.label("lib.memcpy_empty")
    asm.emit(ret=True)
    # The loop head is already the back-branch's pair target, so the
    # entry edge goes through a GOTO stub (one word of placement tax).
    asm.label("lib.memcpy_enter")
    asm.emit(goto="lib.memcpy_loop")
    asm.label("lib.memcpy_loop")
    asm.emit(r="lib.src", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(r="lib.dst", a="RM", b="MD", store=True, alu="INC", load="RM")
    asm.emit(r="lib.cnt", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "lib.memcpy_loop", "lib.memcpy_done"))
    asm.label("lib.memcpy_done")
    asm.emit(ret=True)


def memset_microcode(asm: Assembler) -> None:
    """``lib.memset``: store T into ``lib.cnt`` words at ``lib.dst``."""
    register_names(asm)
    asm.label("lib.memset")
    # Two branches cannot share a target (section 5.5): the zero-count
    # early-out gets its own duplicated RET.
    asm.emit(r="lib.cnt", a="RM", alu="A",
             branch=("ZERO", "lib.memset_empty", "lib.memset_enter"))
    asm.label("lib.memset_empty")
    asm.emit(ret=True)
    # The loop head is already the back-branch's pair target, so the
    # entry edge goes through a GOTO stub (one word of placement tax).
    asm.label("lib.memset_enter")
    asm.emit(goto="lib.memset_loop")
    asm.label("lib.memset_loop")
    asm.emit(r="lib.dst", a="RM", b="T", store=True, alu="INC", load="RM")
    asm.emit(r="lib.cnt", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "lib.memset_loop", "lib.memset_done"))
    asm.label("lib.memset_done")
    asm.emit(ret=True)


def checksum_microcode(asm: Assembler) -> None:
    """``lib.checksum``: sum ``lib.cnt`` words at ``lib.src`` into T."""
    register_names(asm)
    asm.label("lib.checksum")
    asm.emit(b=0, alu="B", load="T")
    # Two branches cannot share a target (section 5.5): the zero-count
    # early-out gets its own duplicated RET.
    asm.emit(r="lib.cnt", a="RM", alu="A",
             branch=("ZERO", "lib.checksum_empty", "lib.checksum_enter"))
    asm.label("lib.checksum_empty")
    asm.emit(ret=True)
    # The loop head is already the back-branch's pair target, so the
    # entry edge goes through a GOTO stub (one word of placement tax).
    asm.label("lib.checksum_enter")
    asm.emit(goto="lib.checksum_loop")
    asm.label("lib.checksum_loop")
    asm.emit(r="lib.src", a="RM", fetch=True, alu="INC", load="RM")
    asm.emit(a="MD", b="T", alu="ADD", load="T")
    asm.emit(r="lib.cnt", a="RM", alu="DEC", load="RM",
             branch=("NONZERO", "lib.checksum_loop", "lib.checksum_done"))
    asm.label("lib.checksum_done")
    asm.emit(ret=True)


def triangular_microcode(asm: Assembler) -> None:
    """``lib.tri``: recursive microcode -- tri(n) = n + tri(n-1).

    Input n in T, result in T.  Each recursion level pushes its n on the
    hardware stack and its return LINK on the memory link stack, so the
    single task-specific LINK register supports unbounded nesting --
    the section 6.2.3 subroutine-link-stack idiom, working.
    """
    register_names(asm)
    asm.label("lib.tri")
    asm.emit(a="T", alu="A", branch=("ZERO", "lib.tri_base", "lib.tri_rec"))
    asm.label("lib.tri_base")
    asm.emit(ret=True)                          # tri(0) = 0, already in T
    asm.label("lib.tri_rec")
    asm.emit(stack=1, a="T", alu="A", load="RM")  # push n
    emit_save_link(asm)                           # (clobbers T)
    asm.emit(stack=0, a="RM", alu="DEC", load="T")  # T <- top-of-stack - 1
    asm.emit(call="lib.tri")                     # T <- tri(n-1)
    asm.emit(b="T", ff=FF.Q_B)                   # stash: restore clobbers T
    emit_restore_link(asm)
    asm.emit(stack=-1, a="RM", b="Q", alu="ADD", load="T")  # T = n + tri(n-1)
    asm.emit(ret=True)
