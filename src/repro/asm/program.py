"""Microprogram representations.

A microprogram passes through three forms: the :class:`Assembler` DSL
emits :class:`SourceOp` records (microinstructions with *symbolic*
successors); the placer assigns each an IM address and fixes up
NextControl payloads and FF jump assists; the result is an
:class:`Image` -- a sparse map of addresses to encoded
:class:`~repro.core.microword.MicroInstruction` plus the symbol table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.microword import ASel, BSel, Condition, LoadControl, MicroInstruction
from ..errors import AssemblyError


class ControlKind(enum.Enum):
    """The symbolic successor forms the DSL can express."""

    GOTO = "goto"            #: unconditional transfer to a label
    CALL = "call"            #: transfer with LINK <- THISPC+1
    RET = "ret"              #: NEXTPC <- LINK
    CORETURN = "coreturn"    #: NEXTPC <- LINK and LINK <- THISPC+1 (coroutines)
    BRANCH = "branch"        #: conditional: (condition, true label, false label)
    NEXTMACRO = "nextmacro"  #: dispatch on the next macroinstruction (IFU)
    DISPATCH8 = "dispatch8"  #: eight-way dispatch on B's low bits
    IDLE = "idle"            #: jump to self
    NOTIFY = "notify"        #: fall through, notifying the console


@dataclass
class ControlSpec:
    """A symbolic NextControl."""

    kind: ControlKind
    target: Optional[str] = None            #: GOTO/CALL label
    condition: Optional[Condition] = None   #: BRANCH condition
    true_target: Optional[str] = None
    false_target: Optional[str] = None
    dispatch_targets: Optional[List[str]] = None  #: DISPATCH8: exactly 8 labels


@dataclass
class SourceOp:
    """One microinstruction before placement."""

    rsel: int = 0
    aluop: int = 0
    bsel: BSel = BSel.RM
    lc: LoadControl = LoadControl.NONE
    asel: ASel = ASel.RM
    block: bool = False
    ff: int = 0
    control: ControlSpec = field(default_factory=lambda: ControlSpec(ControlKind.IDLE))
    labels: List[str] = field(default_factory=list)
    source_line: Optional[str] = None  #: where the DSL emitted it (diagnostics)

    @property
    def ff_free(self) -> bool:
        """Whether the placer may use FF for a JumpPage/BranchPair assist.

        FF is unavailable both when it encodes a function and when
        BSelect treats it as constant data (section 5.5's "only one
        FF-specified operation" tradeoff).
        """
        return self.ff == 0 and not self.bsel.is_constant


@dataclass
class Image:
    """A placed, encoded microprogram."""

    words: Dict[int, MicroInstruction]
    symbols: Dict[str, int]
    im_size: int
    entry: int = 0  #: address of the first-emitted instruction

    def __len__(self) -> int:
        return len(self.words)

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblyError(f"undefined label {label!r}") from None

    def encoded(self) -> Dict[int, int]:
        """The raw 34-bit words, as the IM chips would hold them."""
        return {addr: inst.encode() for addr, inst in self.words.items()}

    def disassemble(self) -> List[Tuple[int, str]]:
        """(address, rendering) pairs in address order, for debugging."""
        reverse: Dict[int, List[str]] = {}
        for label, addr in self.symbols.items():
            reverse.setdefault(addr, []).append(label)
        lines = []
        for addr in sorted(self.words):
            tags = ",".join(sorted(reverse.get(addr, [])))
            prefix = f"{tags}: " if tags else ""
            lines.append((addr, prefix + self.words[addr].describe()))
        return lines

    def to_dict(self) -> Dict:
        """JSON-serializable form (raw 34-bit words as integers)."""
        return {
            "im_size": self.im_size,
            "entry": self.entry,
            "words": {str(a): inst.encode() for a, inst in self.words.items()},
            "symbols": dict(self.symbols),
        }

    @staticmethod
    def from_dict(data: Dict) -> "Image":
        """Reload an image saved with :meth:`to_dict`."""
        return Image(
            words={
                int(a): MicroInstruction.decode(bits)
                for a, bits in data["words"].items()
            },
            symbols=dict(data["symbols"]),
            im_size=data["im_size"],
            entry=data.get("entry", 0),
        )

    def merged_with(self, other: "Image") -> "Image":
        """Combine two images (e.g. emulator microcode + I/O microcode)."""
        overlap = set(self.words) & set(other.words)
        if overlap:
            raise AssemblyError(f"images overlap at addresses {sorted(overlap)[:8]}")
        words = dict(self.words)
        words.update(other.words)
        symbols = dict(self.symbols)
        for name, addr in other.symbols.items():
            if name in symbols and symbols[name] != addr:
                raise AssemblyError(f"symbol {name!r} defined in both images")
            symbols[name] = addr
        return Image(words=words, symbols=symbols, im_size=max(self.im_size, other.im_size))
