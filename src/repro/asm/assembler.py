"""A Python-embedded microcode assembly language.

Microcode for the simulated Dorado is written by calling
:meth:`Assembler.emit` once per microinstruction, naming operands and
successors symbolically; :meth:`Assembler.assemble` runs the placer and
returns a loadable :class:`~repro.asm.program.Image`.

The DSL enforces the machine's real authoring rules at emit time:

* **one FF per instruction** -- a constant B source, an EXTB selector, an
  explicit function, and placer-era JumpPage/BranchPair assists all
  compete for the same eight bits (section 5.5);
* branch conditions come from the fixed set of eight;
* stack operations ride the Block bit (task 0), with the RAddress field
  carrying the STACKPTR delta (section 6.3.1).

Example -- a loop that sums T into an RM register COUNT times::

    asm = Assembler()
    asm.register("sum", 2)
    asm.emit(b=0, alu="B", load="RM", r="sum", count=9)
    asm.label("loop")
    asm.emit(r="sum", a="RM", b="T", alu="ADD", load="RM",
             branch=("COUNT", "loop", "done"))
    asm.label("done")
    asm.emit(ff=FF.HALT, idle=True)
    image = asm.assemble()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..config import MachineConfig, PRODUCTION
from ..core import functions
from ..core.alu import STANDARD_OPS
from ..core.functions import FF
from ..core.microword import ASel, BSel, Condition, LoadControl
from ..errors import AssemblyError
from .placer import PlacementReport, place
from .program import ControlKind, ControlSpec, Image, SourceOp

#: Branch-condition spellings accepted by ``branch=(cond, ...)``.
CONDITIONS = {
    "ZERO": Condition.ALU_ZERO,
    "NONZERO": Condition.ALU_NONZERO,
    "NEG": Condition.ALU_NEG,
    "CARRY": Condition.CARRY,
    "COUNT": Condition.COUNT_NONZERO,
    "ODD": Condition.R_ODD,
    "IOATN": Condition.IOATN,
    "OVF": Condition.OVERFLOW,
}

#: B-source spellings for the EXTB selectors.
EXTB_NAMES = {
    "MD": FF.EXTB_MEMDATA,
    "IFUDATA": FF.EXTB_IFUDATA,
    "INPUT": FF.INPUT,
    "CPREG": FF.EXTB_CPREG,
    "FAULTS": FF.EXTB_FAULTS,
    "LINK": FF.EXTB_LINK,
    "IFUPC": FF.EXTB_IFUPC,
    "TASK": FF.EXTB_THISTASK,
}

_LOADS = {
    None: LoadControl.NONE,
    "T": LoadControl.T,
    "RM": LoadControl.RM,
    "RM_T": LoadControl.RM_T,
}


def constant_fields(value: int) -> Optional[tuple]:
    """(BSel, ff byte) encoding a 16-bit constant, or None if impossible.

    Implements the section 5.9 rule: representable constants have one
    byte free (all zeroes or all ones); "any constant can be assembled
    in two microinstructions" otherwise.
    """
    value &= 0xFFFF
    high, low = value >> 8, value & 0xFF
    if high == 0x00:
        return (BSel.CONST_LZ, low)
    if low == 0x00:
        return (BSel.CONST_HZ, high)
    if high == 0xFF:
        return (BSel.CONST_LO, low)
    if low == 0xFF:
        return (BSel.CONST_HO, high)
    return None


class Assembler:
    """Collects microinstructions and places them."""

    def __init__(self, config: MachineConfig = PRODUCTION) -> None:
        self.config = config
        self.ops: List[SourceOp] = []
        self._pending_labels: List[str] = []
        self._registers: Dict[str, int] = {}
        self._fallthrough_from: Optional[int] = None
        self.report: Optional[PlacementReport] = None

    # --- names -----------------------------------------------------------

    def register(self, name: str, rsel: int) -> None:
        """Give RAddress *rsel* (0..15) a symbolic name."""
        if not 0 <= rsel <= 15:
            raise AssemblyError(f"register {name!r}: rsel {rsel} out of range 0..15")
        if name in self._registers and self._registers[name] != rsel:
            raise AssemblyError(f"register {name!r} redefined")
        self._registers[name] = rsel

    def registers(self, mapping: Dict[str, int]) -> None:
        for name, rsel in mapping.items():
            self.register(name, rsel)

    def label(self, name: str) -> None:
        """Attach *name* to the next emitted instruction."""
        self._pending_labels.append(name)

    def _rsel(self, r: Union[int, str]) -> int:
        if isinstance(r, str):
            try:
                return self._registers[r]
            except KeyError:
                raise AssemblyError(f"unknown register name {r!r}") from None
        if not 0 <= r <= 15:
            raise AssemblyError(f"rsel {r} out of range 0..15")
        return r

    # --- the main entry point ------------------------------------------------

    def emit(
        self,
        *,
        r: Union[int, str] = 0,
        alu: Union[int, str] = "A",
        a: str = "RM",
        b: Union[int, str, None] = None,
        load: Optional[str] = None,
        ff: Union[FF, int, None] = None,
        block: bool = False,
        stack: Optional[int] = None,
        count: Optional[int] = None,
        membase: Optional[int] = None,
        fetch: Union[bool, str] = False,
        store: Union[bool, str] = False,
        goto: Optional[str] = None,
        call: Optional[str] = None,
        ret: bool = False,
        coret: bool = False,
        branch: Optional[tuple] = None,
        nextmacro: bool = False,
        dispatch8: Optional[Sequence[str]] = None,
        idle: bool = False,
        note: Optional[str] = None,
    ) -> int:
        """Emit one microinstruction; returns its index.

        With no successor keyword the instruction falls through to the
        next one emitted (encoded, like everything else, as an in-page
        GOTO).
        """
        index = len(self.ops)
        if self._fallthrough_from is not None:
            self._pending_labels.append(f"__op{index}")
            self._fallthrough_from = None

        ff_value: Optional[int] = None

        def claim_ff(value: int, why: str) -> None:
            nonlocal ff_value
            if ff_value is not None and ff_value != value:
                raise AssemblyError(
                    f"FF conflict: {why} needs FF but it is already used "
                    f"({functions.describe(ff_value)}) -- one FF operation per "
                    "instruction (section 5.5)"
                )
            ff_value = value

        if ff is not None:
            claim_ff(int(ff), "the explicit function")
        if count is not None:
            claim_ff(functions.count_small(count), f"count={count}")
        if membase is not None:
            claim_ff(functions.membase_small(membase), f"membase={membase}")

        # --- B bus.
        bsel = BSel.RM
        if b is None:
            bsel = BSel.RM
        elif isinstance(b, int):
            enc = constant_fields(b)
            if enc is None:
                raise AssemblyError(
                    f"constant {b:#06x} has no all-zero/all-one byte; assemble it "
                    "in two microinstructions (section 5.9)"
                )
            bsel = enc[0]
            if ff_value is not None:
                raise AssemblyError(
                    f"FF conflict: constant {b:#x} occupies FF as data but "
                    f"{functions.describe(ff_value)} is also requested"
                )
            ff_value = enc[1]
        elif b in ("RM", "T", "Q"):
            bsel = {"RM": BSel.RM, "T": BSel.T, "Q": BSel.Q}[b]
        elif b in EXTB_NAMES:
            bsel = BSel.EXTB
            claim_ff(int(EXTB_NAMES[b]), f"B source {b!r}")
        else:
            raise AssemblyError(f"unknown B source {b!r}")

        # --- A bus / memory reference.
        if fetch and store:
            raise AssemblyError("an instruction cannot both Fetch and Store")
        if a not in ("RM", "T", "Q", "IFUDATA", "MD"):
            raise AssemblyError(f"unknown A source {a!r}")
        if fetch or store:
            # Addresses from IFUDATA/MEMDATA/Q ride an A-bus-override FF
            # (the one-instruction operand-addressed and indirect
            # references of section 5.8); RM and T address directly.
            if a == "IFUDATA":
                claim_ff(int(FF.A_IFUDATA), "A from IFUDATA")
            elif a == "MD":
                claim_ff(int(FF.A_MD), "A from MEMDATA")
            elif a == "Q":
                claim_ff(int(FF.A_Q), "A from Q")
            if fetch:
                asel = ASel.T_FETCH if a == "T" else ASel.RM_FETCH
                if fetch == "fast":
                    claim_ff(int(FF.IOFETCH), "fast I/O fetch")
            else:
                asel = ASel.T_STORE if a == "T" else ASel.RM_STORE
                if store == "fast":
                    claim_ff(int(FF.IOSTORE), "fast I/O store")
        elif a == "Q":
            claim_ff(int(FF.A_Q), "A from Q")
            asel = ASel.RM
        else:
            asel = {"RM": ASel.RM, "T": ASel.T, "IFUDATA": ASel.IFUDATA, "MD": ASel.MEMDATA}[a]

        # --- ALU op.
        if isinstance(alu, str):
            try:
                aluop = STANDARD_OPS[alu]
            except KeyError:
                raise AssemblyError(f"unknown ALU op {alu!r}") from None
        else:
            if not 0 <= alu <= 15:
                raise AssemblyError(f"aluop {alu} out of range 0..15")
            aluop = alu

        # --- load control.
        try:
            lc = _LOADS[load]
        except KeyError:
            raise AssemblyError(f"unknown load control {load!r}") from None

        # --- stack operation (Block + RAddress delta, task 0).
        rsel = self._rsel(r)
        if stack is not None:
            if not -8 <= stack <= 7:
                raise AssemblyError(f"stack delta {stack} out of range -8..7")
            if r != 0:
                raise AssemblyError("stack operations use RAddress for the delta, not r=")
            rsel = stack & 0xF
            block = True

        # --- successor.
        chosen = [
            kw
            for kw, given in [
                ("goto", goto is not None),
                ("call", call is not None),
                ("ret", ret),
                ("coret", coret),
                ("branch", branch is not None),
                ("nextmacro", nextmacro),
                ("dispatch8", dispatch8 is not None),
                ("idle", idle),
            ]
            if given
        ]
        if len(chosen) > 1:
            raise AssemblyError(f"multiple successors given: {chosen}")
        if goto is not None:
            control = ControlSpec(ControlKind.GOTO, target=goto)
        elif call is not None:
            control = ControlSpec(ControlKind.CALL, target=call)
        elif ret:
            control = ControlSpec(ControlKind.RET)
        elif coret:
            control = ControlSpec(ControlKind.CORETURN)
        elif branch is not None:
            cond, true_target, false_target = branch
            if isinstance(cond, str):
                try:
                    cond = CONDITIONS[cond]
                except KeyError:
                    raise AssemblyError(f"unknown branch condition {cond!r}") from None
            control = ControlSpec(
                ControlKind.BRANCH,
                condition=cond,
                true_target=true_target,
                false_target=false_target,
            )
        elif nextmacro:
            control = ControlSpec(ControlKind.NEXTMACRO)
        elif dispatch8 is not None:
            control = ControlSpec(ControlKind.DISPATCH8, dispatch_targets=list(dispatch8))
        elif idle:
            control = ControlSpec(ControlKind.IDLE)
        else:
            # Implicit fallthrough: an in-page GOTO to the next emission.
            control = ControlSpec(ControlKind.GOTO, target=f"__op{index + 1}")
            self._fallthrough_from = index

        op = SourceOp(
            rsel=rsel,
            aluop=aluop,
            bsel=bsel,
            lc=lc,
            asel=asel,
            block=block,
            ff=ff_value if ff_value is not None else 0,
            control=control,
            labels=list(self._pending_labels),
            source_line=note,
        )
        self._pending_labels = []
        self.ops.append(op)
        return index

    # --- conveniences ------------------------------------------------------------

    def halt(self) -> int:
        """Emit a HALT instruction (idles afterwards)."""
        return self.emit(ff=FF.HALT, idle=True)

    def load_constant(self, reg: Union[int, str], value: int, **kw) -> int:
        """Load any 16-bit constant, using two instructions when needed.

        The section 5.9 representable constants take one instruction;
        others are built as (high byte) then OR (low byte).
        """
        if constant_fields(value) is not None:
            return self.emit(r=reg, b=value & 0xFFFF, alu="B", load="RM", **kw)
        self.emit(r=reg, b=value & 0xFF00, alu="B", load="RM")
        return self.emit(r=reg, a="RM", b=value & 0x00FF, alu="OR", load="RM", **kw)

    # --- assembly -------------------------------------------------------------------

    def assemble(self, base_page: int = 0) -> Image:
        """Place the program; the report lands in :attr:`report`."""
        if self._fallthrough_from is not None:
            raise AssemblyError(
                "the last instruction falls through to nothing; give it a successor"
            )
        if self._pending_labels:
            raise AssemblyError(f"labels {self._pending_labels} attached to no instruction")
        image, self.report = place(self.ops, self.config, base_page=base_page)
        return image
