"""The Dorado microassembler and automatic instruction placer.

The NEXTPC scheme (section 5.5) "imposes a rather complicated structure
on the microstore, because of the pages, the odd/even branch addresses,
and the special subroutine locations", and relies on "an assembler which
can fit the instructions onto pages appropriately".  This subpackage is
that assembler: a Python-embedded microcode DSL (:class:`Assembler`),
the placement engine (:mod:`placer`), and the assembled
:class:`~repro.asm.program.Image` the processor loads.
"""

from .assembler import Assembler
from .bootstrap import boot_loader_microcode, encode_for_boot, stage_boot
from .diagnostics import (
    alu_selftest_microcode,
    expected_im_checksum,
    im_checksum_microcode,
    rm_march_microcode,
)
from .lint import Finding, Severity, lint_image, lint_report
from .placer import PlacementReport, place
from .program import Image, SourceOp

__all__ = [
    "Assembler",
    "Finding",
    "Image",
    "PlacementReport",
    "Severity",
    "SourceOp",
    "alu_selftest_microcode",
    "boot_loader_microcode",
    "encode_for_boot",
    "expected_im_checksum",
    "im_checksum_microcode",
    "lint_image",
    "lint_report",
    "rm_march_microcode",
    "place",
    "stage_boot",
]
