"""Static checks over placed microcode images.

The Dorado's designers bragged that the hardware "eliminates constraints
on microcode operations and sequencing" (section 4) -- but two costs
remain visible to the microcoder: an instruction that touches MEMDATA
too soon after the Fetch will **Hold** (a cycle tax, not a bug), and a
few FF encodings are only meaningful in particular instruction shapes.
:func:`lint_image` walks the successor graph of a placed image and
reports both, plus unreachable words -- the checks we wished for while
writing the emulators in this repository.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import functions
from ..core.functions import FF
from ..core.microword import ASel, BSel, Misc, MicroInstruction, NextControl, NextType
from .program import Image


class Severity(enum.Enum):
    ERROR = "error"      #: will misbehave at run time
    WARNING = "warning"  #: legal but costs cycles (a Hold)
    INFO = "info"        #: housekeeping (unreachable words)


@dataclass(frozen=True)
class Finding:
    severity: Severity
    address: int
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value}@{self.address:04o}: {self.message}"


def _uses_md(inst: MicroInstruction) -> bool:
    if inst.asel.uses_memdata:
        return True
    if inst.bsel.is_constant:
        return False
    return inst.ff in (
        int(FF.SHIFT_MASKMD), int(FF.EXTB_MEMDATA), int(FF.OUTPUT_MD), int(FF.A_MD)
    )


def _starts_fetch(inst: MicroInstruction) -> bool:
    if not inst.asel.starts_fetch:
        return False
    # Fast-I/O fetches deliver to the device, not MEMDATA.
    if not inst.bsel.is_constant and inst.ff == int(FF.IOFETCH):
        return False
    return True


def successors(
    image: Image, address: int, page_size: int
) -> Tuple[List[int], bool]:
    """Static successor addresses of one instruction.

    Returns ``(addresses, complete)`` -- *complete* is False when the
    successor is data-dependent (RETURN, NEXTMACRO, dispatches).
    """
    inst = image.words[address]
    nc = inst.nc
    kind = NextControl.kind(nc)
    payload = NextControl.payload(nc)
    page_base = address & ~(page_size - 1)
    ff_is_function = not inst.bsel.is_constant

    if kind in (NextType.GOTO, NextType.CALL):
        if ff_is_function and functions.is_jump_page(inst.ff):
            target = functions.bank_argument(inst.ff) * page_size + payload
        else:
            target = page_base | payload
        out = [target]
        if kind == NextType.CALL:
            out.append(address + 1)  # the continuation
        return out, True
    if kind == NextType.BRANCH:
        if ff_is_function and functions.is_branch_pair(inst.ff):
            pair = functions.bank_argument(inst.ff)
        else:
            pair = NextControl.branch_pair(nc)
        false_target = page_base + pair * 2
        return [false_target, false_target + 1], True
    code = Misc(payload >> 3)
    if code == Misc.IDLE:
        return [address], True
    if code == Misc.NOTIFY:
        return [address + 1], True
    if code == Misc.DISPATCH8:
        base = page_base + (payload & 7) * 8
        return [base + k for k in range(8)], True
    # RETURN / RETURN_CALL / NEXTMACRO / CALL_FF / DISPATCH256: data-
    # or LINK-dependent; treated as graph edges we cannot follow.
    return [], False


def lint_image(
    image: Image,
    entries: Optional[Iterable[int]] = None,
    page_size: int = 64,
) -> List[Finding]:
    """All findings for a placed image, sorted by address."""
    findings: List[Finding] = []
    words = image.words

    # --- shape errors ------------------------------------------------------
    for address, inst in sorted(words.items()):
        ff_is_function = not inst.bsel.is_constant
        if inst.bsel == BSel.EXTB:
            if not ff_is_function or inst.ff not in functions.EXTB_SELECTORS:
                findings.append(Finding(
                    Severity.ERROR, address,
                    "BSelect=EXTB without an EXTB-selector FF",
                ))
        if ff_is_function and inst.ff in functions.EXTB_SELECTORS \
                and inst.bsel != BSel.EXTB and inst.ff != int(FF.INPUT):
            findings.append(Finding(
                Severity.WARNING, address,
                f"{functions.describe(inst.ff)} has no effect without BSelect=EXTB",
            ))
        if ff_is_function and inst.ff == int(FF.IOFETCH) and not inst.asel.starts_fetch:
            findings.append(Finding(
                Severity.ERROR, address, "IOFETCH without a Fetch ASelect"))
        if ff_is_function and inst.ff == int(FF.IOSTORE) and not inst.asel.starts_store:
            findings.append(Finding(
                Severity.ERROR, address, "IOSTORE without a Store ASelect"))

    # --- MD timing: a consumer within the cache-hit latency of its Fetch
    # holds.  We flag distance-1 consumers along static edges.
    for address, inst in sorted(words.items()):
        if not _starts_fetch(inst):
            continue
        nexts, complete = successors(image, address, page_size)
        for nxt in nexts:
            follower = words.get(nxt)
            if follower is not None and _uses_md(follower):
                findings.append(Finding(
                    Severity.WARNING, nxt,
                    f"uses MEMDATA one cycle after the Fetch at {address:04o}: "
                    "this instruction will Hold (cache hit latency is 2)",
                ))

    # --- reachability --------------------------------------------------------
    if entries is not None:
        reached: Set[int] = set()
        frontier = [e for e in entries]
        incomplete = False
        while frontier:
            node = frontier.pop()
            if node in reached or node not in words:
                continue
            reached.add(node)
            nexts, complete = successors(image, node, page_size)
            if not complete:
                incomplete = True
            frontier.extend(nexts)
        if not incomplete:
            for address in sorted(set(words) - reached):
                findings.append(Finding(
                    Severity.INFO, address, "unreachable from the given entries"))

    findings.sort(key=lambda f: (f.address, f.severity.value))
    return findings


def lint_report(findings: List[Finding]) -> str:
    """Human-readable rendering of the findings."""
    if not findings:
        return "clean: no findings"
    return "\n".join(str(f) for f in findings)
