"""Self-checking, self-healing execution (DESIGN.md section 5.5).

Three layers close the loop from detection to recovery:

* :class:`~repro.supervise.sanitize.MachineCheckSanitizer` -- periodic
  sweeps of cheap microarchitectural invariants, subscribed on the
  instrumentation bus (zero overhead when off).
* :class:`~repro.supervise.supervisor.Supervisor` -- periodic
  checkpoints, failure classification, bounded
  rollback-to-last-good-and-replay, plan-cache -> interpreter
  degradation.
* :func:`~repro.supervise.diverge.find_divergence` -- lockstep
  differential comparison of the two cycle implementations on forks of
  the live machine.

:func:`architectural_json` is the comparison basis the acceptance
tests use: the canonical JSON of a snapshot with everything that
legitimately differs between a supervised and an unsupervised run
stripped -- the config signature (fault plan, cycle-path selection),
the fault section (cursors and trace), and the recovery counters.
What remains is the machine's architectural trajectory, which recovery
is required to preserve exactly.
"""

from __future__ import annotations

from ..core.counters import RECOVERY_FIELDS
from ..state import MachineState
from .diverge import DivergenceReport, find_divergence
from .sanitize import CheckFailure, MachineCheckSanitizer
from .supervisor import Supervisor

__all__ = [
    "CheckFailure",
    "DivergenceReport",
    "MachineCheckSanitizer",
    "Supervisor",
    "architectural_json",
    "find_divergence",
]


def architectural_json(state) -> str:
    """Canonical JSON of *state* minus supervision-variant sections.

    Shallow-copies on the way down; the input snapshot is not mutated.
    """
    data = state.data if isinstance(state, MachineState) else state
    data = dict(data)
    data.pop("config", None)
    data.pop("fault", None)
    core = dict(data["core"])
    counters = dict(core["counters"])
    for name in RECOVERY_FIELDS:
        counters.pop(name, None)
    core["counters"] = counters
    data["core"] = core
    return MachineState(data).to_json()
