"""The machine-check sanitizer: cheap microarchitectural invariants.

The Dorado checked itself continuously -- parity on every internal
memory, ECC on storage, a dedicated high-priority fault task (sections
4.3 and 6 of the paper).  The simulator's equivalent is a registry of
*invariant checks* over the live machine, swept every ``check_interval``
cycles from the instrumentation bus's ``cycle`` channel.  Nothing here
may perturb the machine: every check reads internal structures directly
(``cache.sets``, ``storage._data``) instead of going through accessors
that update LRU clocks or consume scheduled fault events, so a
sanitized run is cycle-for-cycle and byte-for-byte identical to an
unsanitized one.

The invariant catalogue (DESIGN.md section 5.5):

``cache``
    Structural well-formedness of every line (tag, LRU stamp, word
    count and width) plus the write-back coherence rule: a *valid,
    clean* line's words equal the storage munch it caches.  An
    uncorrectable ECC event violates exactly this -- the corrupted
    munch is installed clean in the cache while storage still holds the
    true bits -- so this check is the sanitizer's storage-corruption
    detector.
``map``
    Every :class:`~repro.mem.map.MapEntry` is well-formed: real page
    within ``REAL_PAGE_MASK``, boolean flags.
``registers``
    RM, T, Q, COUNT and the stack words are 16 bits; RBASE is 4; the
    stack pointer is 8.
``taskpipe``
    The wakeup lines are 16 bits with task 0's line permanently set
    (the paper's "task 0 always requests service"), the running and
    best tasks are in range, and every TPC addresses the control store.
``ifu``
    The prefetch buffer invariant ``0 <= buffered - pc <= 7`` (the
    6-byte buffer plus the word-fetch overshoot) and 16-bit operands.
``plans``
    Every compiled :class:`~repro.core.plancache.ExecutionPlan` still
    agrees with the IM slot it was compiled from (same object or same
    34-bit encoding).  Skipped when the machine runs interpretively --
    a degraded machine must not keep tripping on plans it no longer
    executes.

A failed sweep raises :class:`~repro.errors.CorruptionDetected`
carrying every failure, after counting ``Counters.checks_failed`` and
publishing a ``check_fail`` bus event -- the recovery supervisor turns
that into a rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import CorruptionDetected
from ..mem.map import REAL_PAGE_MASK
from ..types import MUNCH_WORDS

#: Buffer-occupancy slack: BUFFER_BYTES plus the one-byte overshoot a
#: word-aligned fetch can add (mirrors repro.ifu.ifu.BUFFER_BYTES).
_IFU_BUFFER_SLACK = 7


@dataclass(frozen=True)
class CheckFailure:
    """One violated invariant: which check, and what it saw."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


class MachineCheckSanitizer:
    """Sweeps the invariant catalogue over one machine, periodically.

    ``install()`` subscribes to the instrumentation bus's ``cycle``
    channel under a fixed name, so the zero-overhead-when-off property
    is the bus's own: an uninstalled sanitizer costs the hot loop
    nothing.  Between sweeps the per-cycle cost is one decrement.
    """

    SUBSCRIBER = "machine-check"

    def __init__(self, machine, check_interval: int = 256) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be at least 1")
        self.machine = machine
        self.check_interval = check_interval
        self._countdown = check_interval
        self.sweeps = 0

    # ------------------------------------------------------------------
    # bus plumbing
    # ------------------------------------------------------------------

    def install(self) -> "MachineCheckSanitizer":
        self._countdown = self.check_interval
        self.machine.instruments.install(self.SUBSCRIBER, cycle=self._tick)
        return self

    def uninstall(self) -> None:
        if self.SUBSCRIBER in self.machine.instruments:
            self.machine.instruments.uninstall(self.SUBSCRIBER)

    def _tick(self, now, task, pc, inst, held) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.check_interval
        failures = self.run_checks()
        if failures:
            machine = self.machine
            machine.counters.checks_failed += len(failures)
            machine.instruments.publish("check_fail", now, tuple(failures))
            raise CorruptionDetected(
                failures, task=task, pc=pc, cycle=now,
            )

    # ------------------------------------------------------------------
    # the catalogue
    # ------------------------------------------------------------------

    def run_checks(self) -> List[CheckFailure]:
        """One full sweep; returns every violated invariant (empty = clean)."""
        self.sweeps += 1
        failures: List[CheckFailure] = []
        self._check_cache(failures)
        self._check_map(failures)
        self._check_registers(failures)
        self._check_taskpipe(failures)
        self._check_ifu(failures)
        self._check_plans(failures)
        return failures

    def _check_cache(self, failures: List[CheckFailure]) -> None:
        memory = self.machine.memory
        cache = memory.cache
        data = memory.storage._data  # direct: read_munch would consume ECC events
        num_sets = cache.num_sets
        for index, cache_set in enumerate(cache.sets):
            for way, line in enumerate(cache_set):
                if not line.valid:
                    continue
                where = f"set {index} way {way}"
                if line.tag < 0:
                    failures.append(CheckFailure("cache", f"{where}: negative tag"))
                    continue
                if len(line.words) != MUNCH_WORDS:
                    failures.append(CheckFailure(
                        "cache", f"{where}: {len(line.words)} words in a munch"))
                    continue
                if any(not 0 <= w <= 0xFFFF for w in line.words):
                    failures.append(CheckFailure(
                        "cache", f"{where}: word out of 16-bit range"))
                    continue
                if line.dirty:
                    continue
                base = (line.tag * num_sets + index) * MUNCH_WORDS
                if base + MUNCH_WORDS > len(data):
                    failures.append(CheckFailure(
                        "cache", f"{where}: tag addresses past end of storage"))
                    continue
                if line.words != data[base:base + MUNCH_WORDS]:
                    failures.append(CheckFailure(
                        "cache",
                        f"{where}: clean line disagrees with storage "
                        f"munch at {base:#x}",
                    ))

    def _check_map(self, failures: List[CheckFailure]) -> None:
        for va_page, entry in self.machine.memory.translator.map.items():
            if not 0 <= entry.real_page <= REAL_PAGE_MASK:
                failures.append(CheckFailure(
                    "map",
                    f"VA page {va_page:#x}: real page {entry.real_page:#x} "
                    f"exceeds {REAL_PAGE_MASK:#x}",
                ))

    def _check_registers(self, failures: List[CheckFailure]) -> None:
        regs = self.machine.regs
        stack = self.machine.stack
        if any(not 0 <= v <= 0xFFFF for v in regs.rm):
            failures.append(CheckFailure("registers", "RM word out of 16-bit range"))
        if any(not 0 <= v <= 0xFFFF for v in regs.t):
            failures.append(CheckFailure("registers", "T word out of 16-bit range"))
        if not 0 <= regs.q <= 0xFFFF:
            failures.append(CheckFailure("registers", f"Q = {regs.q:#x}"))
        if not 0 <= regs.count <= 0xFFFF:
            failures.append(CheckFailure("registers", f"COUNT = {regs.count:#x}"))
        if any(not 0 <= v <= 0xF for v in regs.rbase):
            failures.append(CheckFailure("registers", "RBASE exceeds 4 bits"))
        if not 0 <= stack.pointer <= 0xFF:
            failures.append(CheckFailure(
                "registers", f"stack pointer = {stack.pointer:#x}"))
        if any(not 0 <= v <= 0xFFFF for v in stack.memory):
            failures.append(CheckFailure(
                "registers", "stack word out of 16-bit range"))

    def _check_taskpipe(self, failures: List[CheckFailure]) -> None:
        pipe = self.machine.pipe
        im_size = self.machine.config.im_size
        if not pipe.lines & 1:
            failures.append(CheckFailure(
                "taskpipe", "task 0 wakeup line dropped (must stay set)"))
        if not 0 <= pipe.lines <= 0xFFFF:
            failures.append(CheckFailure(
                "taskpipe", f"wakeup lines = {pipe.lines:#x}"))
        if not 0 <= pipe.ready <= 0xFFFF:
            failures.append(CheckFailure(
                "taskpipe", f"ready lines = {pipe.ready:#x}"))
        for label, task in (("this", pipe.this_task), ("best", pipe.best_task)):
            if not 0 <= task <= 15:
                failures.append(CheckFailure(
                    "taskpipe", f"{label}_task = {task}"))
        for task, pc in enumerate(pipe.tpc):
            if not 0 <= pc < im_size:
                failures.append(CheckFailure(
                    "taskpipe", f"TPC[{task}] = {pc:#o} outside the control store"))

    def _check_ifu(self, failures: List[CheckFailure]) -> None:
        ifu = self.machine.ifu
        occupancy = ifu._buffered - ifu.pc
        if not 0 <= occupancy <= _IFU_BUFFER_SLACK:
            failures.append(CheckFailure(
                "ifu",
                f"buffer occupancy {occupancy} outside "
                f"[0, {_IFU_BUFFER_SLACK}] (pc {ifu.pc:#x}, "
                f"buffered to {ifu._buffered:#x})",
            ))
        for name, operands in (
            ("head", ifu._head_operands), ("current", ifu._current_operands),
        ):
            if any(not 0 <= v <= 0xFFFF for v in operands):
                failures.append(CheckFailure(
                    "ifu", f"{name} operand out of 16-bit range"))

    def _check_plans(self, failures: List[CheckFailure]) -> None:
        machine = self.machine
        if not machine._plan_enabled:
            return
        im = machine.im
        for pc, plan in enumerate(machine._plans):
            if plan is None:
                continue
            inst = im[pc]
            if inst is None:
                failures.append(CheckFailure(
                    "plans", f"plan cached for empty IM slot {pc:#o}"))
            elif plan.inst is not inst and plan.inst.encode() != inst.encode():
                failures.append(CheckFailure(
                    "plans",
                    f"plan at {pc:#o} was compiled from a different "
                    f"microword than the IM holds",
                ))
