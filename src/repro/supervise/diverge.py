"""Differential divergence detection: plan cache versus interpreter.

The two cycle implementations of :class:`~repro.core.processor.
Processor` are required to be observationally identical; when the
recovery supervisor suspects a compiled plan (a tripped ``plans``
machine check, or repeated replay failures), :func:`find_divergence`
settles the question experimentally.  It forks the machine twice --
shared-nothing clones via the PR 4 snapshot protocol -- pins one fork
to each implementation, grafts the *live* plan cache onto the plan-side
fork (``fork()`` deliberately rebuilds clones with an empty cache, so
the suspect plans must be carried over explicitly), and steps both in
lockstep.  Each cycle a cheap probe tuple is compared; on the first
mismatch, or at the window's end, a full snapshot comparison through
:func:`~repro.state.diff_states` names the exact divergent
architectural paths.

A ``None`` return is a clean bill of health: over the window the plan
cache and the interpreter agreed bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import DoradoError
from ..state import diff_states


@dataclass(frozen=True)
class DivergenceReport:
    """Where the two implementations first disagreed."""

    cycle: int
    diffs: Tuple[str, ...]

    def __str__(self) -> str:
        head = self.diffs[0] if self.diffs else "state mismatch"
        more = f" (+{len(self.diffs) - 1} more)" if len(self.diffs) > 1 else ""
        return f"divergence at cycle {self.cycle}: {head}{more}"


def _probe(machine) -> tuple:
    """A cheap per-cycle fingerprint; full snapshots only on mismatch."""
    counters = machine.counters
    regs = machine.regs
    return (
        machine.now,
        machine.this_pc,
        machine.pipe.this_task,
        machine.halted,
        counters.instructions,
        counters.held_cycles,
        regs.q,
        regs.count,
    )


def _pinpoint(interp, plan) -> DivergenceReport:
    diffs = diff_states(interp.snapshot(), plan.snapshot())
    return DivergenceReport(cycle=plan.now, diffs=tuple(diffs))


def find_divergence(machine, window: int = 2000) -> Optional[DivergenceReport]:
    """Lockstep-compare plan vs. interpreter forks of *machine*.

    Returns a :class:`DivergenceReport` naming the first divergent
    cycle and architectural paths, or ``None`` when both
    implementations agree over the whole *window* (or until both
    halt).  The machine itself is never stepped or mutated.
    """
    plan_fork = machine.fork()
    interp_fork = machine.fork()
    # fork() rebuilds with an empty plan cache; the whole point is to
    # test the machine's *current* plans, so graft them onto the
    # plan-side fork.  ExecutionPlans are flat pure data -- sharing
    # them cannot couple the forks.
    plan_fork._plans = list(machine._plans)
    plan_fork._plan_enabled = True
    interp_fork._plan_enabled = False

    for _ in range(window):
        if plan_fork.halted and interp_fork.halted:
            break
        plan_exc = interp_exc = None
        try:
            plan_fork.step()
        except DoradoError as exc:
            plan_exc = exc
        try:
            interp_fork.step()
        except DoradoError as exc:
            interp_exc = exc
        if (plan_exc is None) != (interp_exc is None):
            which, exc = (
                ("plan path", plan_exc) if plan_exc is not None
                else ("interpreter", interp_exc)
            )
            return DivergenceReport(
                cycle=max(plan_fork.now, interp_fork.now),
                diffs=(f"{which} alone raised {type(exc).__name__}: {exc}",),
            )
        if plan_exc is not None:
            break  # both raised: a machine problem, not a plan problem
        if _probe(plan_fork) != _probe(interp_fork):
            return _pinpoint(interp_fork, plan_fork)

    final = diff_states(interp_fork.snapshot(), plan_fork.snapshot())
    if final:
        return DivergenceReport(cycle=plan_fork.now, diffs=tuple(final))
    return None
