"""The recovery supervisor: checkpoint, detect, roll back, replay.

The Dorado's answer to a storage error was architectural -- latch the
fault, wake the fault task, let microcode retry (section 4.3).  The
supervisor is the simulator's equivalent one level up: it wraps a
:class:`~repro.core.processor.Processor` and closes the loop from
detection (the machine-check sanitizer, latched uncorrectable faults,
:class:`~repro.errors.HoldTimeout` livelocks) to recovery (rollback to
the last good checkpoint and replay), in bounded retries with
exponential backoff.

The protocol (DESIGN.md section 5.5):

1. Snapshot the machine (PR 4's ``MachineState``) every
   ``checkpoint_interval`` cycles.  A checkpoint is only *promoted* to
   last-known-good after the slice beyond it completed with no
   detector firing and no new latched fault.
2. Run each slice with the sanitizer subscribed (unless ``sanitize``
   is off).  Recoverable failures -- the :class:`~repro.errors.
   TransientFault` family, :class:`~repro.errors.MicrocodeCrash`
   (including ``HoldTimeout``), :class:`~repro.errors.EmulatorError` --
   trigger rollback; structural errors (:class:`~repro.errors.
   StateError`, :class:`~repro.errors.ConfigError`, ...) propagate.
3. Rollback restores the checkpoint **except** the fault injector's
   cursors and trace, which are carried across the restore: a
   scheduled transient event that already fired stays consumed, so the
   replay runs clean and the run converges to the clean run's exact
   final state.  The recovery counters (``RECOVERY_FIELDS``) are
   carried over too -- they describe the supervision, not the
   trajectory.
4. When the evidence implicates the plan cache (a ``plans`` machine
   check, or repeated replay failures) the supervisor runs the
   differential divergence detector; a confirmed divergence degrades
   the machine to the interpreter path for the rest of the run.
5. The retry budget is per-checkpoint: a slice that completes cleanly
   resets it.  Exhausting it raises :class:`~repro.errors.
   UnrecoverableFault` chaining the final cause.

Every action is published on the instrumentation bus (``check_fail``,
``rollback``, ``replay``, ``degrade``), counted in ``Counters``, and
appended to :attr:`Supervisor.log` for
:func:`~repro.perf.report.format_recovery_report`.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..core.counters import RECOVERY_FIELDS
from ..errors import (
    CorruptionDetected,
    DivergenceDetected,
    EmulatorError,
    MicrocodeCrash,
    TransientFault,
    UnrecoverableFault,
)
from .diverge import find_divergence
from .sanitize import MachineCheckSanitizer


class Supervisor:
    """Self-healing execution of one machine.

    ``backoff_base`` is the first retry's sleep in seconds (doubling
    each retry); it defaults to 0 because simulated time is the thing
    being recovered, not wall time -- set it (and optionally inject
    ``sleep``) where real pacing matters.
    """

    #: Failures rollback-and-replay can cure.  Everything else --
    #: StateError, ConfigError, EncodingError, plain DoradoError --
    #: means the *experiment* is broken, not the machine, and
    #: propagates unchanged.
    RECOVERABLE = (TransientFault, MicrocodeCrash, EmulatorError)

    def __init__(
        self,
        machine,
        *,
        checkpoint_interval: int = 2000,
        max_retries: int = 3,
        sanitize: bool = True,
        check_interval: int = 256,
        backoff_base: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.machine = machine
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._sleep = sleep
        self.sanitizer: Optional[MachineCheckSanitizer] = (
            MachineCheckSanitizer(machine, check_interval) if sanitize else None
        )
        self.log: List[dict] = []
        self._checkpoint = None
        self._retries = 0

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run to HALT (or *max_cycles*) with recovery; returns cycles used.

        Counts only forward progress: replayed cycles advance the same
        simulated clock the rollback rewound, so the return value (and
        ``Counters.cycles``) match an unsupervised clean run exactly.
        """
        machine = self.machine
        counters = machine.counters
        start = counters.cycles
        limit = start + max_cycles
        self._retries = 0
        self._checkpoint = machine.snapshot()
        if self.sanitizer is not None:
            self.sanitizer.install()
        try:
            while not machine.halted and counters.cycles < limit:
                target = min(
                    self._checkpoint_cycle() + self.checkpoint_interval, limit
                )
                try:
                    machine.run(target - counters.cycles)
                except self.RECOVERABLE as exc:
                    self._recover(exc)
                    continue
                failure = self._boundary_failure()
                if failure is not None:
                    self._recover(failure)
                    continue
                self._checkpoint = machine.snapshot()
                self._retries = 0
        finally:
            if self.sanitizer is not None:
                self.sanitizer.uninstall()
        return counters.cycles - start

    def _checkpoint_cycle(self) -> int:
        return self._checkpoint.data["core"]["counters"]["cycles"]

    def _boundary_failure(self) -> Optional[TransientFault]:
        """Health check at a checkpoint boundary.

        A latched uncorrectable/memory fault with no fault-task
        microcode to service it means the slice is corrupt even though
        nothing raised.  Machines that *do* route faults to microcode
        (``config.fault_task``) own their own recovery -- the
        supervisor stays out of the way.
        """
        machine = self.machine
        if machine.config.fault_task is not None:
            return None
        counters = machine.counters
        base = self._checkpoint.data["core"]["counters"]
        if counters.ecc_uncorrected > base["ecc_uncorrected"]:
            return TransientFault(
                "uncorrectable storage error latched during slice",
                cycle=counters.cycles,
            )
        if machine.memory.fault_flags:
            return TransientFault(
                f"memory fault latch {machine.memory.fault_flags:#x} set "
                f"with no fault task",
                cycle=counters.cycles,
            )
        return None

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, exc: Exception) -> None:
        machine = self.machine
        counters = machine.counters
        self._retries += 1
        if self._retries > self.max_retries:
            raise UnrecoverableFault(
                exc,
                self.max_retries,
                task=machine.pipe.this_task,
                pc=machine.this_pc,
                cycle=machine.now,
            ) from exc

        # Carry the injector's progress and the recovery counters across
        # the restore: consumed transient events must stay consumed
        # (that is what makes the replay clean), and the supervision
        # record is not part of the rewound trajectory.
        injector = machine.fault_injector
        injector_state = injector.state_dict() if injector is not None else None
        recovery = {name: getattr(counters, name) for name in RECOVERY_FIELDS}
        machine.restore(self._checkpoint)
        if injector_state is not None:
            injector.load_state(injector_state)
        for name, value in recovery.items():
            setattr(counters, name, value)

        counters.rollbacks += 1
        checkpoint_cycle = self._checkpoint_cycle()
        machine.instruments.publish("rollback", checkpoint_cycle, exc, self._retries)
        self.log.append({
            "event": "rollback",
            "to_cycle": checkpoint_cycle,
            "retry": self._retries,
            "cause": type(exc).__name__,
            "detail": str(exc),
        })
        self._sleep(self.backoff_base * (2 ** (self._retries - 1)))
        self._maybe_degrade(exc)
        counters.replays += 1
        machine.instruments.publish("replay", checkpoint_cycle, self._retries)
        self.log.append({
            "event": "replay",
            "from_cycle": checkpoint_cycle,
            "retry": self._retries,
        })

    def _maybe_degrade(self, exc: Exception) -> None:
        machine = self.machine
        if not machine._plan_enabled:
            return
        report = None
        if isinstance(exc, DivergenceDetected):
            report = (exc.cycle, exc.diffs)
        else:
            implicates_plans = isinstance(exc, CorruptionDetected) and any(
                f.startswith("plans") for f in exc.failures
            )
            if implicates_plans or self._retries >= 2:
                found = find_divergence(
                    machine, window=self.checkpoint_interval
                )
                if found is not None:
                    report = (found.cycle, found.diffs)
        if report is None:
            return
        cycle, diffs = report
        machine._plan_enabled = False
        # The compiled-trace tier rides on the plan cache; a machine
        # degraded to the interpreter must not keep executing traces.
        machine._trace_enabled = False
        machine.counters.degrades += 1
        machine.instruments.publish("degrade", cycle, diffs)
        self.log.append({
            "event": "degrade",
            "at_cycle": cycle,
            "first_diff": diffs[0] if diffs else "",
        })
