"""The deterministic load test: the fleet's byte-identity gate.

``python -m repro.service loadtest`` replays a *scripted* request
stream -- N named sessions in a fixed workload rotation, every third
one armed with a seeded fault plan and supervised -- through the fleet,
slicing every live session each round until it halts (or fails, or
exhausts the cycle budget).  A capacity far below the session count
forces continual LRU eviction to checkpoint files and warm-restores
onto round-robin workers, i.e. migrations, mid-run.

The artifact records only simulated quantities (per-session results
keyed by name, plus the script parameters); worker count, capacity,
eviction and migration tallies go to stderr.  CI runs the same script
serially and at 1/2/4 workers and ``cmp``s the artifacts byte for byte
-- the "your session doesn't care where it ran" proof.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DoradoError
from ..state import canonical_json
from .fleet import Fleet
from .session import Session

#: The scripted workload rotation: one per emulator family plus the
#: hardware-multiply kernel, all fast enough to run by the dozen.
ROTATION = (
    "mesa_loop_sum",
    "lisp_list_sum",
    "bcpl_loop_sum",
    "smalltalk_counter",
    "mesa_mul_kernel",
)

#: FaultConfig field template for the scripted faulted sessions (the
#: demo recoverable plan: one ECC double-bit error plus one spurious
#: map fault, early in the run).  Each faulted session gets its own
#: derived seed.
FAULT_TEMPLATE = {
    "storage_uncorrectable": 1,
    "map_faults": 1,
    "first_cycle": 0,
    "last_cycle": 2200,
}


def _session_seed(master: int, name: str) -> int:
    """A stable per-session fault seed from the script seed and name."""
    digest = hashlib.sha256(f"{master}/{name}".encode()).digest()
    return (int.from_bytes(digest[:4], "big") & 0x7FFFFFFF) or 1


def build_script(
    sessions: int = 60, *, seed: int = 17, fault_every: int = 3
) -> List[Dict[str, Any]]:
    """The scripted request stream: deterministic, parameterized, mixed."""
    script: List[Dict[str, Any]] = []
    for index in range(sessions):
        name = f"s{index:04d}"
        fault = None
        if fault_every and index % fault_every == fault_every - 1:
            fault = dict(FAULT_TEMPLATE, seed=_session_seed(seed, name))
        script.append({
            "name": name,
            "workload": ROTATION[index % len(ROTATION)],
            "args": {},
            "fault": fault,
        })
    return script


def _slice_schedule(max_cycles: int, slice_cycles: int) -> int:
    """Rounds granted: every session gets whole slices until the budget."""
    return -(-max_cycles // slice_cycles)  # ceil


def _run_serial(
    script: List[Dict[str, Any]],
    *,
    slice_cycles: int,
    max_cycles: int,
    checkpoint_interval: int,
    max_retries: int,
) -> Dict[str, Dict[str, Any]]:
    """Ground truth: plain sessions, same whole-slice schedule, no fleet."""
    rounds = _slice_schedule(max_cycles, slice_cycles)
    results: Dict[str, Dict[str, Any]] = {}
    for entry in script:
        session = Session.build(
            entry["workload"],
            name=entry["name"],
            args=entry["args"],
            fault=entry["fault"],
            checkpoint_interval=checkpoint_interval,
            max_retries=max_retries,
        )
        for _ in range(rounds):
            if session.status != "running":
                break
            try:
                session.run_slice(slice_cycles)
            except DoradoError:
                break
        results[entry["name"]] = session.result()
    return results


def _run_fleet(
    script: List[Dict[str, Any]],
    *,
    workers: int,
    capacity: int,
    slice_cycles: int,
    max_cycles: int,
    checkpoint_interval: int,
    max_retries: int,
    spool_dir: Optional[str] = None,
    chaos: Optional[Dict[str, Any]] = None,
    checkpoint_every: int = 8,
    max_respawns: int = 2,
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """The same script through a fleet; returns (results, fleet stats)."""
    rounds = _slice_schedule(max_cycles, slice_cycles)
    prewarm = [(workload, {}, None) for workload in ROTATION]
    results: Dict[str, Dict[str, Any]] = {}
    with Fleet(
        workers=workers,
        capacity=capacity,
        spool_dir=spool_dir,
        prewarm=prewarm,
        checkpoint_interval=checkpoint_interval,
        max_retries=max_retries,
        chaos=chaos,
        checkpoint_every=checkpoint_every,
        max_respawns=max_respawns,
    ) as fleet:
        for entry in script:
            fleet.open_session(
                entry["name"], entry["workload"],
                args=entry["args"], fault=entry["fault"],
            )
        active = [entry["name"] for entry in script]
        for _ in range(rounds):
            if not active:
                break
            replies = fleet.run_round(active, slice_cycles)
            still_running = []
            for name in active:
                if replies[name]["status"] == "running":
                    still_running.append(name)
                else:
                    results[name] = fleet.result(name)
                    fleet.close_session(name)
            active = still_running
        for name in active:  # budget exhausted with work remaining
            results[name] = fleet.result(name)
            fleet.close_session(name)
        stats = fleet.stats()
    return results, stats


def run_loadtest(
    *,
    sessions: int = 60,
    workers: int = 1,
    capacity: int = 12,
    slice_cycles: int = 1200,
    max_cycles: int = 240_000,
    seed: int = 17,
    fault_every: int = 3,
    checkpoint_interval: int = 600,
    max_retries: int = 4,
    serial: bool = False,
    spool_dir: Optional[str] = None,
    chaos: Optional[Dict[str, Any]] = None,
    checkpoint_every: int = 8,
    max_respawns: int = 2,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run the scripted stream; return (artifact, execution stats).

    The artifact is a pure function of the script parameters -- serial
    or fleet, 1 worker or 16, evictions or not, it is byte-identical.
    ``chaos`` arms a seeded :class:`~repro.service.chaos.
    ServiceFaultConfig` storm; recovery keeps it out of the artifact
    (chaos parameters and counters live in the stats, which go to
    stderr), so a chaos run still ``cmp``s clean against the serial
    ground truth -- that comparison *is* the recovery proof.
    """
    script = build_script(sessions, seed=seed, fault_every=fault_every)
    if serial:
        results = _run_serial(
            script,
            slice_cycles=slice_cycles,
            max_cycles=max_cycles,
            checkpoint_interval=checkpoint_interval,
            max_retries=max_retries,
        )
        stats = {"mode": "serial"}
    else:
        results, fleet_stats = _run_fleet(
            script,
            workers=workers,
            capacity=capacity,
            slice_cycles=slice_cycles,
            max_cycles=max_cycles,
            checkpoint_interval=checkpoint_interval,
            max_retries=max_retries,
            spool_dir=spool_dir,
            chaos=chaos,
            checkpoint_every=checkpoint_every,
            max_respawns=max_respawns,
        )
        stats = {"mode": "fleet", **fleet_stats}
    artifact = {
        "format": 1,
        "loadtest": {
            "sessions": sessions,
            "seed": seed,
            "fault_every": fault_every,
            "rotation": list(ROTATION),
            "fault_template": dict(FAULT_TEMPLATE),
            "slice_cycles": slice_cycles,
            "max_cycles": max_cycles,
            "checkpoint_interval": checkpoint_interval,
            "max_retries": max_retries,
        },
        "results": results,
    }
    return artifact, stats


def loadtest_json(artifact: Dict[str, Any]) -> str:
    """The canonical serialization CI compares byte-for-byte."""
    return canonical_json(artifact) + "\n"


def summarize(artifact: Dict[str, Any]) -> Dict[str, int]:
    """Headline counts for the stderr report and the benchmarks."""
    results = artifact["results"].values()
    return {
        "sessions": len(artifact["results"]),
        "halted": sum(1 for r in results if r["halted"]),
        "verified": sum(1 for r in results if r["verified"]),
        "faulted": sum(1 for r in results if r["faulted"]),
        "recovered": sum(1 for r in results if r["recovered"]),
        "failed": sum(1 for r in results if r["status"] == "failed"),
        "total_cycles": sum(r["meter"]["cycles"] for r in results),
    }
