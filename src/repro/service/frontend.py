"""The asyncio front end: named sessions over newline-delimited JSON.

``python -m repro.service serve`` listens on a TCP socket and speaks a
one-request-per-line JSON protocol::

    {"op": "open", "name": "alice", "workload": "mesa_loop_sum"}
    {"op": "run", "name": "alice", "cycles": 2000}
    {"op": "round", "names": ["alice", "bob"], "cycles": 2000}
    {"op": "result", "name": "alice"}
    {"op": "close", "name": "alice"}

Concurrency model: many clients multiplex on the event loop, but fleet
operations are serialized through one lock and pushed off the loop with
``asyncio.to_thread`` -- the *parallelism* lives inside the fleet
(worker processes running a round's batches side by side), while the
request stream stays totally ordered, which is what makes server runs
reproducible: the same request sequence is the same simulation.

Robustness contract (DESIGN.md 5.10): nothing a client sends may kill
its connection loop, let alone the server.  Malformed JSON, non-object
requests, unknown ops, missing fields, and lines longer than
``max_line`` all earn a structured ``{"ok": false, "error": ...}``
reply and the loop keeps reading; a fleet that has exhausted every
recovery avenue (:class:`~repro.errors.OverloadError`) sheds load with
a ``retry_after`` reply instead of dying.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from ..errors import DoradoError, OverloadError
from .fleet import Fleet

#: Default ceiling on one request line, in bytes.  Generous for every
#: legitimate op (requests are names and numbers) while bounding what a
#: confused or hostile client can make the server buffer.
MAX_LINE = 1 << 20


class Frontend:
    """The protocol brain: JSON requests in, JSON replies out."""

    def __init__(self, fleet: Fleet, *, max_line: int = MAX_LINE) -> None:
        self.fleet = fleet
        self.max_line = max_line
        self._lock: Optional[asyncio.Lock] = None
        self._shutdown: Optional[asyncio.Event] = None

    async def _fleet_call(self, fn, *args, **kwargs):
        async with self._lock:
            return await asyncio.to_thread(fn, *args, **kwargs)

    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True,
                        "stats": await self._fleet_call(self.fleet.stats)}
            if op == "open":
                worker = await self._fleet_call(
                    self.fleet.open_session,
                    request["name"], request["workload"],
                    args=request.get("args"),
                    fault=request.get("fault"),
                    supervise=request.get("supervise"),
                )
                return {"ok": True, "name": request["name"], "worker": worker}
            if op == "run":
                reply = await self._fleet_call(
                    self.fleet.run_slice, request["name"], request["cycles"]
                )
                return {"ok": True, **reply}
            if op == "round":
                rows = await self._fleet_call(
                    self.fleet.run_round, request["names"], request["cycles"]
                )
                return {"ok": True, "sessions": rows}
            if op == "result":
                result = await self._fleet_call(
                    self.fleet.result, request["name"]
                )
                return {"ok": True, "result": result}
            if op == "meter":
                meter = await self._fleet_call(
                    self.fleet.meter, request["name"]
                )
                return {"ok": True, "meter": meter}
            if op == "suspend":
                path = await self._fleet_call(
                    self.fleet.suspend, request["name"]
                )
                return {"ok": True, "spooled": path}
            if op == "close":
                await self._fleet_call(
                    self.fleet.close_session, request["name"]
                )
                return {"ok": True}
            if op == "shutdown":
                self._shutdown.set()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except OverloadError as exc:
            # Graceful degradation's last stop: the fleet could not
            # recover this request, so shed the load and tell the client
            # when to come back -- the connection (and server) survive.
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "retry_after": exc.retry_after,
            }
        except (DoradoError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    async def _read_request(self, reader: asyncio.StreamReader):
        """One line -> (request dict, None) or (None, error reply).

        ``None, None`` means EOF.  An oversized line (the stream's
        ``limit`` is ``max_line``) is consumed to its newline and
        reported as a structured error, so one abusive request cannot
        desynchronize -- or kill -- the connection loop.
        """
        try:
            line = await reader.readline()
        except asyncio.LimitOverrunError as exc:  # pragma: no cover
            await reader.read(exc.consumed)
            return None, {"ok": False,
                          "error": f"line exceeds {self.max_line} bytes"}
        except ValueError:
            # StreamReader.readline signals a line longer than its limit
            # with a bare ValueError after discarding the buffer; the
            # tail of the oversized line (up to its newline) is consumed
            # as garbage by the next reads and earns its own bad-request
            # replies, which is fine -- the loop survives.
            return None, {"ok": False,
                          "error": f"line exceeds {self.max_line} bytes"}
        if not line:
            return None, None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return None, {"ok": False, "error": f"bad request: {exc}"}
        return request, None

    async def client(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request, error = await self._read_request(reader)
                if request is None and error is None:
                    break
                reply = error if error is not None else (
                    await self.handle(request)
                )
                writer.write(json.dumps(reply, sort_keys=True).encode())
                writer.write(b"\n")
                await writer.drain()
                if self._shutdown.is_set():
                    break
        except (ConnectionError, OSError):
            pass  # client went away mid-reply; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve(self, host: str = "127.0.0.1", port: int = 0,
                    *, ready=None) -> None:
        """Listen until a ``shutdown`` request arrives.

        *ready* (if given) is called with the bound ``(host, port)``
        once the socket is listening -- the tests and scripted clients
        use it to learn an ephemeral port.
        """
        self._lock = asyncio.Lock()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self.client, host, port, limit=self.max_line
        )
        if ready is not None:
            ready(server.sockets[0].getsockname()[:2])
        async with server:
            await self._shutdown.wait()
