"""Service throughput benchmark: BENCH_service.json.

Two measurements (DESIGN.md 5.9):

* **scaling** -- the scripted load test at 1/2/4 workers: wall-clock
  sessions-per-second and aggregate simulated cycles-per-second.  The
  simulated results are byte-identical at every worker count (that is
  CI-gated); only the wall clock moves.
* **admission** -- what it costs to put a session on a worker: cold
  boot (build + assemble microcode + boot), warm fork (boot-cache hit),
  and warm restore (fork + checkpoint restore, the migration path),
  as seconds per admission.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Sequence

from .loadtest import run_loadtest, summarize
from .session import Session, clear_boot_cache


def _admission(repeats: int = 5) -> Dict[str, Any]:
    """Seconds per session admission, by path."""
    workload = "mesa_loop_sum"

    clear_boot_cache()
    start = time.perf_counter()
    for index in range(repeats):
        clear_boot_cache()
        Session.build(workload, name=f"cold{index}")
    cold = (time.perf_counter() - start) / repeats

    Session.build(workload, name="warmup")  # populate the cache
    start = time.perf_counter()
    for index in range(repeats):
        Session.build(workload, name=f"warm{index}")
    warm_fork = (time.perf_counter() - start) / repeats

    donor = Session.build(workload, name="donor")
    donor.run_slice(1500)
    envelope = donor.suspend()
    start = time.perf_counter()
    for _ in range(repeats):
        Session.resume(envelope)
    warm_restore = (time.perf_counter() - start) / repeats

    return {
        "repeats": repeats,
        "workload": workload,
        "cold_boot_seconds": round(cold, 6),
        "warm_fork_seconds": round(warm_fork, 6),
        "warm_restore_seconds": round(warm_restore, 6),
        "cold_over_warm_fork": round(cold / warm_fork, 2),
        "cold_over_warm_restore": round(cold / warm_restore, 2),
    }


def run_service_bench(
    worker_counts: Sequence[int] = (1, 2, 4),
    *,
    sessions: int = 30,
    capacity: int = 8,
    slice_cycles: int = 1200,
    seed: int = 17,
) -> Dict[str, Any]:
    """The BENCH_service.json payload."""
    scaling = []
    for workers in worker_counts:
        start = time.perf_counter()
        artifact, stats = run_loadtest(
            sessions=sessions,
            workers=workers,
            capacity=capacity,
            slice_cycles=slice_cycles,
            seed=seed,
        )
        seconds = time.perf_counter() - start
        counts = summarize(artifact)
        scaling.append({
            "workers": workers,
            "sessions": sessions,
            "capacity": capacity,
            "seconds": round(seconds, 3),
            "sessions_per_second": round(sessions / seconds, 2),
            "cycles_per_second": round(counts["total_cycles"] / seconds),
            "verified": counts["verified"],
            "recovered_faulted": counts["recovered"],
            "evictions": stats.get("evictions", 0),
            "migrations": stats.get("migrations", 0),
        })
    return {
        "benchmark": "simulation-service fleet (sessions over forked workers)",
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "loadtest": {
            "sessions": sessions,
            "capacity": capacity,
            "slice_cycles": slice_cycles,
            "seed": seed,
        },
        "scaling": scaling,
        "admission": _admission(),
    }
