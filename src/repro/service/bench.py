"""Service throughput benchmark: BENCH_service.json.

Three measurements (DESIGN.md 5.9 and 5.10):

* **scaling** -- the scripted load test at 1/2/4 workers: wall-clock
  sessions-per-second and aggregate simulated cycles-per-second.  The
  simulated results are byte-identical at every worker count (that is
  CI-gated); only the wall clock moves.
* **admission** -- what it costs to put a session on a worker: cold
  boot (build + assemble microcode + boot), warm fork (boot-cache hit),
  and warm restore (fork + checkpoint restore, the migration path),
  as seconds per admission.
* **recovery_overhead** -- the same loadtest clean and under the
  default chaos storm (worker kills, message loss, spool corruption)
  at a matched request stream: sessions-per-second both ways, the
  overhead ratio, and the proof obligation that the two artifacts are
  byte-identical.  The ratio is the price of surviving the storm --
  respawned workers, replayed journals, retried requests -- and the
  bench asserts it stays under a generous ceiling.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Sequence

from .chaos import CHAOS_TEMPLATE
from .loadtest import loadtest_json, run_loadtest, summarize
from .session import Session, clear_boot_cache

#: The recovery bench fails if chaos costs more than this many times
#: the clean wall clock -- generous, because a respawn re-forks a
#: worker and a restore replays journal suffixes, but a regression that
#: makes recovery quadratic should trip it.
RECOVERY_OVERHEAD_CEILING = 4.0


def _admission(repeats: int = 5) -> Dict[str, Any]:
    """Seconds per session admission, by path."""
    workload = "mesa_loop_sum"

    clear_boot_cache()
    start = time.perf_counter()
    for index in range(repeats):
        clear_boot_cache()
        Session.build(workload, name=f"cold{index}")
    cold = (time.perf_counter() - start) / repeats

    Session.build(workload, name="warmup")  # populate the cache
    start = time.perf_counter()
    for index in range(repeats):
        Session.build(workload, name=f"warm{index}")
    warm_fork = (time.perf_counter() - start) / repeats

    donor = Session.build(workload, name="donor")
    donor.run_slice(1500)
    envelope = donor.suspend()
    start = time.perf_counter()
    for _ in range(repeats):
        Session.resume(envelope)
    warm_restore = (time.perf_counter() - start) / repeats

    return {
        "repeats": repeats,
        "workload": workload,
        "cold_boot_seconds": round(cold, 6),
        "warm_fork_seconds": round(warm_fork, 6),
        "warm_restore_seconds": round(warm_restore, 6),
        "cold_over_warm_fork": round(cold / warm_fork, 2),
        "cold_over_warm_restore": round(cold / warm_restore, 2),
    }


def _recovery_overhead(
    *,
    sessions: int,
    capacity: int,
    slice_cycles: int,
    seed: int,
    workers: int = 2,
) -> Dict[str, Any]:
    """Chaos vs clean sessions/s at a matched request stream."""
    start = time.perf_counter()
    clean_artifact, _ = run_loadtest(
        sessions=sessions, workers=workers, capacity=capacity,
        slice_cycles=slice_cycles, seed=seed,
    )
    clean_seconds = time.perf_counter() - start

    chaos = dict(CHAOS_TEMPLATE, seed=1)
    start = time.perf_counter()
    chaos_artifact, chaos_stats = run_loadtest(
        sessions=sessions, workers=workers, capacity=capacity,
        slice_cycles=slice_cycles, seed=seed, chaos=chaos, max_respawns=1,
    )
    chaos_seconds = time.perf_counter() - start

    identical = loadtest_json(chaos_artifact) == loadtest_json(clean_artifact)
    overhead = chaos_seconds / clean_seconds
    return {
        "workers": workers,
        "sessions": sessions,
        "storm": chaos,
        "clean_seconds": round(clean_seconds, 3),
        "chaos_seconds": round(chaos_seconds, 3),
        "clean_sessions_per_second": round(sessions / clean_seconds, 2),
        "chaos_sessions_per_second": round(sessions / chaos_seconds, 2),
        "overhead_ratio": round(overhead, 3),
        "overhead_ceiling": RECOVERY_OVERHEAD_CEILING,
        "within_ceiling": overhead <= RECOVERY_OVERHEAD_CEILING,
        "artifact_identical": identical,
        "recovery": {
            key: chaos_stats.get(key, 0)
            for key in ("worker_crashes", "respawns", "retries",
                        "checkpoint_corruptions", "degrades", "checkpoints",
                        "chaos_fired", "chaos_pending")
        },
    }


def run_service_bench(
    worker_counts: Sequence[int] = (1, 2, 4),
    *,
    sessions: int = 30,
    capacity: int = 8,
    slice_cycles: int = 1200,
    seed: int = 17,
) -> Dict[str, Any]:
    """The BENCH_service.json payload."""
    scaling = []
    for workers in worker_counts:
        start = time.perf_counter()
        artifact, stats = run_loadtest(
            sessions=sessions,
            workers=workers,
            capacity=capacity,
            slice_cycles=slice_cycles,
            seed=seed,
        )
        seconds = time.perf_counter() - start
        counts = summarize(artifact)
        scaling.append({
            "workers": workers,
            "sessions": sessions,
            "capacity": capacity,
            "seconds": round(seconds, 3),
            "sessions_per_second": round(sessions / seconds, 2),
            "cycles_per_second": round(counts["total_cycles"] / seconds),
            "verified": counts["verified"],
            "recovered_faulted": counts["recovered"],
            "evictions": stats.get("evictions", 0),
            "migrations": stats.get("migrations", 0),
        })
    return {
        "benchmark": "simulation-service fleet (sessions over forked workers)",
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "loadtest": {
            "sessions": sessions,
            "capacity": capacity,
            "slice_cycles": slice_cycles,
            "seed": seed,
        },
        "scaling": scaling,
        "admission": _admission(),
        "recovery_overhead": _recovery_overhead(
            sessions=sessions, capacity=capacity,
            slice_cycles=slice_cycles, seed=seed,
        ),
    }
