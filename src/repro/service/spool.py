"""Checksummed, versioned spool checkpoint envelopes (DESIGN.md 5.10).

The fleet's currency is the suspend envelope: LRU eviction writes one
to disk, resumption (and now crash recovery) reads it back.  PR 9
trusted those files blindly -- a truncated or bit-flipped spool file
would be fed straight into ``Session.resume`` and fail in whatever way
the JSON parser happened to notice first, if at all.  This module
wraps every spool write in an integrity envelope the reader can
*refuse*:

    {"length": N, "sha256": "...", "spool_version": 1}\\n
    <payload bytes, exactly N of them>

The header is one JSON line; the payload is the session's canonical
suspend envelope, byte-exact.  :func:`spool_decode` verifies the
version, the byte length (truncation), and the SHA-256 digest (any
flipped bit) and raises :class:`~repro.errors.SpoolCorruption` on the
slightest disagreement -- the fleet catches that and falls back to the
previous spool generation, counting the detection in
``checkpoint_corruptions``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

from ..errors import SpoolCorruption

#: Version tag of the on-disk spool envelope; bumped on layout changes.
SPOOL_FORMAT_VERSION = 1


def spool_encode(payload: str) -> bytes:
    """Wrap a suspend envelope in the checksummed spool format."""
    body = payload.encode("utf-8")
    header = json.dumps(
        {
            "spool_version": SPOOL_FORMAT_VERSION,
            "length": len(body),
            "sha256": hashlib.sha256(body).hexdigest(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return header.encode("ascii") + b"\n" + body


def spool_decode(data: bytes) -> str:
    """Verify a spool file's integrity and return its payload.

    Raises :class:`~repro.errors.SpoolCorruption` for a missing or
    unparseable header, an unsupported version, a byte count that does
    not match (truncation or trailing garbage), or a digest mismatch
    (any corrupted byte).
    """
    head, sep, body = data.partition(b"\n")
    if not sep:
        raise SpoolCorruption("spool file truncated: no header separator")
    try:
        header: Dict[str, Any] = json.loads(head.decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not a JSON object")
    except (ValueError, UnicodeDecodeError) as exc:
        raise SpoolCorruption(f"unreadable spool header: {exc}") from exc
    version = header.get("spool_version")
    if version != SPOOL_FORMAT_VERSION:
        raise SpoolCorruption(
            f"spool envelope version {version!r} unsupported "
            f"(expected {SPOOL_FORMAT_VERSION})"
        )
    length = header.get("length")
    if length != len(body):
        raise SpoolCorruption(
            f"spool payload is {len(body)} bytes, header promises {length!r}"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise SpoolCorruption(
            f"spool checksum mismatch: payload hashes to {digest[:16]}..., "
            f"header promises {str(header.get('sha256'))[:16]}..."
        )
    try:
        return body.decode("utf-8")
    except UnicodeDecodeError as exc:  # pragma: no cover - sha catches first
        raise SpoolCorruption(f"undecodable spool payload: {exc}") from exc


def spool_write(path: str, payload: str) -> None:
    """Write a checksummed spool file (atomic rename within the dir)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(spool_encode(payload))
    os.replace(tmp, path)


def spool_read(path: str) -> str:
    """Read and verify a spool file; raises SpoolCorruption on damage."""
    with open(path, "rb") as f:
        return spool_decode(f.read())
