"""The simulation service (DESIGN.md 5.9).

Layer 1 -- :mod:`repro.service.session` -- wraps one workload's
lifecycle (boot-from-config or restore-from-checkpoint, bounded slices,
supervised recovery, canonical-JSON suspend/resume, per-session
metering) in a :class:`Session`; ``python -m repro`` and the experiment
matrix are thin clients of it.

Layer 2 -- :mod:`repro.service.fleet` and friends -- multiplexes many
named sessions onto a pool of worker processes with LRU eviction of
cold sessions to checkpoint files, warm-restore on any worker
(migration), and supervisor-backed crash recovery, behind an asyncio
front end::

    python -m repro.service serve --workers 4
    python -m repro.service loadtest --sessions 60 --workers 4

The load-test harness is the determinism gate: the same scripted
request stream yields byte-identical results artifacts at any worker
count, including serial in-process execution.
"""

from .fleet import Fleet, SessionHost
from .frontend import Frontend
from .loadtest import build_script, loadtest_json, run_loadtest
from .session import (
    SERVICE_FORMAT_VERSION,
    Session,
    arch_hash,
    booted_workload,
    clear_boot_cache,
    config_from_signature,
    valid_session_name,
)

__all__ = [
    "SERVICE_FORMAT_VERSION",
    "Fleet",
    "Frontend",
    "Session",
    "SessionHost",
    "arch_hash",
    "booted_workload",
    "build_script",
    "clear_boot_cache",
    "config_from_signature",
    "loadtest_json",
    "run_loadtest",
    "valid_session_name",
]
