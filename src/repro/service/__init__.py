"""The simulation service (DESIGN.md 5.9).

Layer 1 -- :mod:`repro.service.session` -- wraps one workload's
lifecycle (boot-from-config or restore-from-checkpoint, bounded slices,
supervised recovery, canonical-JSON suspend/resume, per-session
metering) in a :class:`Session`; ``python -m repro`` and the experiment
matrix are thin clients of it.

Layer 2 -- :mod:`repro.service.fleet` and friends -- multiplexes many
named sessions onto a pool of worker processes with LRU eviction of
cold sessions to checkpoint files, warm-restore on any worker
(migration), and supervisor-backed crash recovery, behind an asyncio
front end::

    python -m repro.service serve --workers 4
    python -m repro.service loadtest --sessions 60 --workers 4

The load-test harness is the determinism gate: the same scripted
request stream yields byte-identical results artifacts at any worker
count, including serial in-process execution.

Layer 3 -- :mod:`repro.service.chaos` and :mod:`repro.service.spool`
(DESIGN.md 5.10) -- makes the gate hold under fire: a seeded
:class:`ServiceFaultPlan` SIGKILLs workers mid-request, drops and
garbles protocol messages, and corrupts spool checkpoints, while the
fleet's recovery machinery (idempotent retries, respawn + warm-restore
from checksummed spool generations, journal replay, degradation to
inline hosts) keeps the artifact byte-identical to the clean run::

    python -m repro.service chaos --workers 4
"""

from .chaos import (
    CHAOS_TEMPLATE,
    ChaosInjector,
    ServiceFaultConfig,
    ServiceFaultEvent,
    ServiceFaultKind,
    ServiceFaultPlan,
)
from .fleet import Fleet, InlineHost, ProcessHost, SessionHost
from .frontend import Frontend
from .loadtest import build_script, loadtest_json, run_loadtest
from .spool import (
    SPOOL_FORMAT_VERSION,
    spool_decode,
    spool_encode,
    spool_read,
    spool_write,
)
from .session import (
    SERVICE_FORMAT_VERSION,
    Session,
    arch_hash,
    booted_workload,
    clear_boot_cache,
    config_from_signature,
    valid_session_name,
)

__all__ = [
    "CHAOS_TEMPLATE",
    "ChaosInjector",
    "Fleet",
    "Frontend",
    "InlineHost",
    "ProcessHost",
    "SERVICE_FORMAT_VERSION",
    "SPOOL_FORMAT_VERSION",
    "ServiceFaultConfig",
    "ServiceFaultEvent",
    "ServiceFaultKind",
    "ServiceFaultPlan",
    "Session",
    "SessionHost",
    "arch_hash",
    "booted_workload",
    "build_script",
    "clear_boot_cache",
    "config_from_signature",
    "loadtest_json",
    "run_loadtest",
    "spool_decode",
    "spool_encode",
    "spool_read",
    "spool_write",
    "valid_session_name",
]
