"""One workload's lifecycle as a service object (DESIGN.md 5.9).

A :class:`Session` owns everything ``python -m repro`` used to hand-wire
inline: building a booted machine for a (workload, args, config) triple,
restoring a checkpoint into it, running in bounded slices so one session
cannot monopolize a worker, supervised recovery for faulted
configurations, per-session metering from a :class:`~repro.core.
counters.Counters` baseline, and suspend/resume through a canonical-JSON
envelope -- the eviction/migration currency of the fleet
(:mod:`repro.service.fleet`).

The module also owns the process-local *boot cache* (moved here from
``repro.exp.matrix``): the first session needing a (workload, args,
config) machine builds and boots it once, and every later session starts
from a :meth:`~repro.core.processor.Processor.fork` of the pristine
boot, so microcode assembly is paid once per process.  Only fault-free
configs are cached -- a seeded fault plan is single-use and would only
pin memory -- which also keeps faulted machines bit-identical to direct
construction, the basis of the existing golden pins.

Determinism contract: a session's trajectory is a pure function of its
(workload, args, config, fault seed) identity and the sequence of slice
budgets it is granted.  Where it ran, whether it was evicted and resumed
elsewhere, and how often, are invisible -- suspend/resume round-trips
byte-identically (PR 4) and supervised recovery converges byte-
identically (PR 5) -- which is what lets the fleet prove N-worker runs
equal to serial ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from typing import Any, Dict, Optional, Tuple

from ..config import PRODUCTION, MachineConfig
from ..core.counters import Counters
from ..errors import DoradoError, EmulatorError, ServiceError
from ..fault.plan import FaultConfig
from ..perf.workloads import SliceResult, Workload
from ..state import MachineState, canonical_json, parse_canonical_json

#: Version tag of the suspend envelope; bumped when its layout changes.
SERVICE_FORMAT_VERSION = 1

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


def valid_session_name(name: Any) -> bool:
    """Session names double as spool filenames; keep them filesystem-safe."""
    return isinstance(name, str) and _NAME_RE.match(name) is not None


def _resolve_builder(name: str):
    """Workload factory for *name*, resolved lazily to dodge import cycles.

    ``repro.exp`` imports this module (the boot cache lives here), so the
    bypass kernels it contributes are looked up at call time, not import
    time.
    """
    from ..perf.workloads import ALL_WORKLOADS

    if name in ALL_WORKLOADS:
        return ALL_WORKLOADS[name]
    from ..exp.kernels import bypass_kernel, bypass_kernel_padded

    extras = {
        "bypass_kernel": bypass_kernel,
        "bypass_kernel_padded": bypass_kernel_padded,
    }
    if name in extras:
        return extras[name]
    known = ", ".join(sorted(ALL_WORKLOADS) + sorted(extras))
    raise ServiceError(f"unknown workload {name!r} (known: {known})")


def _config_key(config: MachineConfig) -> str:
    """Cache-key digest of a config (identity only, not an artifact)."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def config_from_signature(signature: Dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from a snapshot's config section.

    The signature is ``dataclasses.asdict(config)`` (see
    :func:`repro.state.config_signature`), so the nested fault plan comes
    back as a plain dict and must be re-frozen first.
    """
    fields = dict(signature)
    fault = fields.pop("fault_injection", None)
    try:
        return MachineConfig(
            fault_injection=FaultConfig(**fault) if fault is not None else None,
            **fields,
        )
    except TypeError as exc:
        raise ServiceError(f"unusable config signature: {exc}") from exc


# --------------------------------------------------------------------------
# per-process boot cache: build once, fork per session
# --------------------------------------------------------------------------

#: (workload, args, config key) -> (Workload, pristine booted Processor).
#: Process-local; fleet workers each grow their own on demand (or inherit
#: a prewarmed parent cache across ``fork``).  Only fault-free configs
#: are cached: seeded faulted configs are single-use.
_BOOT_CACHE: Dict[Tuple[str, Tuple, str], Tuple[Workload, Any]] = {}


def booted_workload(
    name: str, args: Tuple = (), config: MachineConfig = PRODUCTION
) -> Workload:
    """A runnable workload on a fresh machine for *config*.

    Cache hit: the stored pristine processor is forked and swapped into
    the workload's context (every accessor and verify closure reads
    ``ctx.cpu`` late, so the fork is the machine that runs).  Miss:
    build, boot, and remember the pristine machine.
    """
    args = tuple(args)
    key = (name, args, _config_key(config))
    cached = _BOOT_CACHE.get(key) if config.fault_injection is None else None
    if cached is None:
        workload = _resolve_builder(name)(config=config, **dict(args))
        if config.fault_injection is not None:
            return workload
        _BOOT_CACHE[key] = (workload, workload.ctx.cpu)
        cached = _BOOT_CACHE[key]
    workload, pristine = cached
    workload.ctx.cpu = pristine.fork()
    return workload


def clear_boot_cache() -> None:
    """Drop the process-local boot cache (tests use this)."""
    _BOOT_CACHE.clear()


def arch_hash(cpu) -> str:
    """Short hash of the machine's architectural trajectory."""
    from ..supervise import architectural_json

    text = architectural_json(cpu.snapshot())
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# --------------------------------------------------------------------------
# the session
# --------------------------------------------------------------------------

class Session:
    """One named workload run: build/restore, slice, suspend, meter.

    Because booted workloads are shared through the boot cache (their
    ``ctx.cpu`` is swapped per fork), a session pins its own machine in
    ``self.cpu`` and re-binds the context before every operation; hosts
    are single-threaded per process, so many live sessions of the same
    workload coexist safely in one process.
    """

    def __init__(
        self,
        name: str,
        workload: Workload,
        *,
        supervise: bool = False,
        checkpoint_interval: int = 2000,
        max_retries: int = 3,
        spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not valid_session_name(name):
            raise ServiceError(f"invalid session name {name!r}")
        self.name = name
        self.workload = workload
        self.cpu = workload.ctx.cpu
        self.supervise = bool(supervise)
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self.failure: Optional[str] = None
        self._supervisor = None
        self._spec = dict(spec) if spec else {
            "workload": workload.name, "args": {},
        }
        self._meter_base = self.cpu.counters.state_dict()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        workload_name: str,
        *,
        name: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        config: Optional[MachineConfig] = None,
        fault: Optional[Dict[str, Any]] = None,
        supervise: Optional[bool] = None,
        checkpoint_interval: int = 2000,
        max_retries: int = 3,
    ) -> "Session":
        """Boot a fresh session for *workload_name*.

        *fault* is a FaultConfig field template layered onto *config*;
        *supervise* defaults to "whenever a fault plan is armed", the
        fleet's recovery posture.
        """
        config = config if config is not None else PRODUCTION
        if fault is not None:
            try:
                config = dataclasses.replace(
                    config, fault_injection=FaultConfig(**dict(fault))
                )
            except TypeError as exc:
                raise ServiceError(f"bad fault template: {exc}") from exc
        if supervise is None:
            supervise = config.fault_injection is not None
        items = tuple(sorted((args or {}).items()))
        workload = booted_workload(workload_name, items, config)
        return cls(
            name or workload_name,
            workload,
            supervise=supervise,
            checkpoint_interval=checkpoint_interval,
            max_retries=max_retries,
            spec={"workload": workload_name, "args": dict(items)},
        )

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------

    @property
    def ctx(self):
        """The workload's context, bound to THIS session's machine."""
        self.workload.ctx.cpu = self.cpu
        return self.workload.ctx

    @property
    def halted(self) -> bool:
        return self.cpu.halted

    @property
    def status(self) -> str:
        if self.failure is not None:
            return "failed"
        return "halted" if self.cpu.halted else "running"

    @property
    def faulted(self) -> bool:
        return self.cpu.config.fault_injection is not None

    @property
    def supervisor(self):
        """The lazily-created recovery supervisor (None until first slice)."""
        return self._supervisor

    def _ensure_supervisor(self):
        if self._supervisor is None:
            from ..supervise import Supervisor

            self._supervisor = Supervisor(
                self.cpu,
                checkpoint_interval=self.checkpoint_interval,
                max_retries=self.max_retries,
            )
        return self._supervisor

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_slice(self, cycles: int) -> SliceResult:
        """Grant a bounded cycle budget; never raises past recording.

        A failed session stays failed (the machine is left for
        post-mortem); further slices are zero-cycle no-ops, as are
        slices granted after HALT.
        """
        if cycles < 1:
            raise ServiceError(f"slice budget must be positive, got {cycles}")
        if self.failure is not None or self.cpu.halted:
            return SliceResult(cycles=0, halted=self.cpu.halted)
        self.workload.ctx.cpu = self.cpu  # re-bind the shared workload
        try:
            if self.supervise:
                ran = self._ensure_supervisor().run(max_cycles=cycles)
                return SliceResult(cycles=ran, halted=self.cpu.halted)
            return self.workload.run_slice(cycles)
        except DoradoError as exc:
            self.failure = f"{type(exc).__name__}: {exc}"
            raise

    def run(
        self, max_cycles: int = 5_000_000, slice_cycles: Optional[int] = None
    ) -> int:
        """Run to HALT (or budget exhaustion) and verify; return cycles ran.

        The all-or-nothing entry point the CLI and the experiment matrix
        use; raises the same :class:`EmulatorError` messages the
        pre-session code paths raised.
        """
        total = 0
        while total < max_cycles:
            budget = max_cycles - total
            step = min(slice_cycles, budget) if slice_cycles else budget
            result = self.run_slice(step)
            total += result.cycles
            if result.halted or result.cycles == 0:
                break
        if not self.cpu.halted:
            if self.supervise:
                message = (
                    f"{self.workload.name} did not halt within "
                    f"{max_cycles} supervised cycles"
                )
            else:
                message = f"workload {self.workload.name} did not halt"
            self.failure = f"EmulatorError: {message}"
            raise EmulatorError(message)
        if not self.verify():
            if self.supervise:
                message = (
                    f"{self.workload.name} halted but failed verification "
                    f"under supervision"
                )
            else:
                message = (
                    f"workload {self.workload.name} computed a wrong result"
                )
            self.failure = f"EmulatorError: {message}"
            raise EmulatorError(message)
        return total

    def verify(self) -> bool:
        """The workload's correctness oracle against this session's machine."""
        self.workload.ctx.cpu = self.cpu
        return bool(self.workload.verify())

    # ------------------------------------------------------------------
    # state: load, suspend, resume
    # ------------------------------------------------------------------

    def load(self, state: MachineState) -> None:
        """Restore a plain machine snapshot (the CLI's ``--load-state``).

        Metering re-bases at the restored point: a session resumed from a
        checkpoint meters the work *it* did, not its previous life's.
        """
        self.cpu.restore(state)
        self._meter_base = self.cpu.counters.state_dict()

    def suspend(self) -> str:
        """The canonical-JSON suspend envelope (byte-identical per state).

        Everything needed to resume on any worker rides along: the full
        machine snapshot (whose config section includes the fault plan),
        the supervision posture, and the metering baseline.  The live
        supervisor is not serialized -- it re-checkpoints from the
        restored state on the next slice, which PR 5's convergence
        guarantees makes trajectory-invisible.
        """
        data = {
            "service_version": SERVICE_FORMAT_VERSION,
            "name": self.name,
            "workload": self._spec.get("workload", self.workload.name),
            "args": dict(self._spec.get("args", {})),
            "supervise": self.supervise,
            "checkpoint_interval": self.checkpoint_interval,
            "max_retries": self.max_retries,
            "failure": self.failure,
            "meter_base": self._meter_base,
            "machine": self.cpu.snapshot().data,
        }
        return canonical_json(data) + "\n"

    def suspend_to(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.suspend())

    @classmethod
    def resume(cls, envelope, *, name: Optional[str] = None) -> "Session":
        """Rebuild a session from a suspend envelope (text or parsed)."""
        if isinstance(envelope, str):
            try:
                data = parse_canonical_json(envelope)
            except DoradoError as exc:
                raise ServiceError(
                    f"suspend envelope is not parseable: {exc}"
                ) from exc
        else:
            data = envelope
        if not isinstance(data, dict):
            raise ServiceError("suspend envelope is not a JSON object")
        version = data.get("service_version")
        if version != SERVICE_FORMAT_VERSION:
            raise ServiceError(
                f"suspend envelope version {version!r} unsupported "
                f"(expected {SERVICE_FORMAT_VERSION})"
            )
        try:
            machine = data["machine"]
            config = config_from_signature(machine["config"])
            items = tuple(sorted(dict(data["args"]).items()))
            workload = booted_workload(data["workload"], items, config)
            session = cls(
                name or data["name"],
                workload,
                supervise=data["supervise"],
                checkpoint_interval=data["checkpoint_interval"],
                max_retries=data["max_retries"],
                spec={"workload": data["workload"], "args": dict(data["args"])},
            )
            session.cpu.restore(MachineState(machine))
            session.failure = data["failure"]
            session._meter_base = data["meter_base"]
        except KeyError as exc:
            raise ServiceError(f"suspend envelope lacks {exc}") from exc
        except ServiceError:
            raise
        except (DoradoError, TypeError, ValueError) as exc:
            raise ServiceError(f"suspend envelope rejected: {exc}") from exc
        return session

    @classmethod
    def resume_from(cls, path, *, name: Optional[str] = None) -> "Session":
        with open(path) as f:
            return cls.resume(f.read(), name=name)

    # ------------------------------------------------------------------
    # metering and results
    # ------------------------------------------------------------------

    def meter(self) -> Dict[str, Any]:
        """Counter deltas since admission (or the last restore/load)."""
        base = Counters()
        base.load_state(self._meter_base)
        return self.cpu.counters.delta(base).summary()

    def arch_hash(self) -> str:
        return arch_hash(self.cpu)

    def result(self) -> Dict[str, Any]:
        """The session's deterministic measurement record.

        Only simulated quantities -- no wall clock, no worker identity,
        no eviction history -- so the record is byte-identical however
        the fleet scheduled the session.
        """
        halted = self.cpu.halted
        verified = (
            self.verify() if halted and self.failure is None else False
        )
        faulted = self.faulted
        return {
            "workload": self._spec.get("workload", self.workload.name),
            "args": dict(self._spec.get("args", {})),
            "faulted": faulted,
            "supervised": self.supervise,
            "status": self.status,
            "cycles": self.cpu.counters.cycles,
            "halted": halted,
            "verified": verified,
            "recovered": (
                (self.failure is None and halted and verified)
                if faulted else None
            ),
            "failure": self.failure,
            "arch_hash": self.arch_hash(),
            "meter": self.meter(),
        }
