"""Deterministic service-level fault injection (DESIGN.md 5.10).

PR 2 taught the *machine* to misbehave on a seeded schedule
(:class:`repro.fault.InjectionPlan`); this module does the same one
layer up, to the *fleet*: worker processes SIGKILLed mid-request,
host-protocol messages lost or garbled in transit, stalled workers
whose replies arrive too late to matter, and spool checkpoint files
corrupted or truncated on disk.

Everything is pure data, mirroring the machine-level design.  A
:class:`ServiceFaultConfig` says how many faults of each kind to
generate and over which operation window; :meth:`ServiceFaultPlan.
from_config` expands it deterministically into a sorted schedule of
:class:`ServiceFaultEvent` objects.  Events are indexed by *operation
count*, not wall clock: transport events fire on the fleet's Nth
dispatch to a forked worker, spool events on the Nth eviction write.
An event fires at the first matching operation at or after its index
and is consumed exactly once, so a given (seed, parameters) pair is
one reproducible storm.

The :class:`ChaosInjector` is the consuming cursor the
:class:`~repro.service.fleet.Fleet` polls.  Injection deliberately
targets only the *service* machinery -- worker processes, pipes, spool
files -- never the simulated machines, so a chaos run that recovers
correctly produces a results artifact byte-identical to a clean serial
run: that is the fleet-level analogue of PR 5's recovery-convergence
criterion, and the ``service-chaos`` CI job enforces it at workers
1/2/4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..fault.plan import _Lcg


class ServiceFaultKind(Enum):
    """What kind of service-level misbehaviour an event models."""

    WORKER_CRASH = "worker_crash"        #: SIGKILL a worker mid-request
    MESSAGE_DROP = "message_drop"        #: request lost before delivery
    REPLY_GARBLE = "reply_garble"        #: reply corrupted in transit
    WORKER_STALL = "worker_stall"        #: reply delayed past the timeout
    SPOOL_CORRUPT = "spool_corrupt"      #: flip a byte of a spool file
    SPOOL_TRUNCATE = "spool_truncate"    #: truncate a spool file


#: Which injection channel consumes events of each kind: ``transport``
#: events fire on dispatches to forked workers, ``spool`` events on
#: eviction checkpoint writes (which the load test is guaranteed to
#: read back, so corruption *detection* is deterministic too).
CHANNEL_OF: Dict[ServiceFaultKind, str] = {
    ServiceFaultKind.WORKER_CRASH: "transport",
    ServiceFaultKind.MESSAGE_DROP: "transport",
    ServiceFaultKind.REPLY_GARBLE: "transport",
    ServiceFaultKind.WORKER_STALL: "transport",
    ServiceFaultKind.SPOOL_CORRUPT: "spool",
    ServiceFaultKind.SPOOL_TRUNCATE: "spool",
}


@dataclass(frozen=True)
class ServiceFaultEvent:
    """One scheduled service fault.

    ``op`` is the earliest operation index (per channel, 1-based) at
    which the event may fire; the injector delivers it at the first
    matching operation at or after that index.  ``arg`` is
    kind-specific: for spool events it selects the byte to flip or the
    truncation point (modulo the file size).
    """

    op: int
    kind: ServiceFaultKind
    arg: int = 0

    @property
    def channel(self) -> str:
        return CHANNEL_OF[self.kind]


@dataclass(frozen=True)
class ServiceFaultConfig:
    """Seeded service-fault generation parameters.

    All fields are plain ints, mirroring :class:`~repro.fault.plan.
    FaultConfig`, so the config can ride through JSON and CLI flags
    unchanged.  Counts say how many events of each kind the plan
    contains; the generator spreads them deterministically over
    ``[first_op, last_op]`` (transport channel) and
    ``[first_spool, last_spool]`` (spool channel).
    """

    seed: int = 1
    worker_crashes: int = 0
    message_drops: int = 0
    reply_garbles: int = 0
    worker_stalls: int = 0
    spool_corruptions: int = 0
    spool_truncations: int = 0
    first_op: int = 1
    last_op: int = 400
    first_spool: int = 1
    last_spool: int = 40

    def __post_init__(self) -> None:
        for name in (
            "worker_crashes", "message_drops", "reply_garbles",
            "worker_stalls", "spool_corruptions", "spool_truncations",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} cannot be negative")
        if self.first_op < 1 or self.last_op < self.first_op:
            raise ConfigError("need 1 <= first_op <= last_op")
        if self.first_spool < 1 or self.last_spool < self.first_spool:
            raise ConfigError("need 1 <= first_spool <= last_spool")

    @property
    def total_events(self) -> int:
        return (
            self.worker_crashes + self.message_drops + self.reply_garbles
            + self.worker_stalls + self.spool_corruptions
            + self.spool_truncations
        )


#: The demo storm the chaos CLI, the recovery benchmark, and the
#: ``service-chaos`` CI job default to: enough of every fault kind to
#: exercise every recovery path, early enough in the run to be
#: guaranteed to fire at workers 1, 2, and 4.
CHAOS_TEMPLATE = {
    "worker_crashes": 3,
    "message_drops": 2,
    "reply_garbles": 2,
    "worker_stalls": 2,
    "spool_corruptions": 2,
    "spool_truncations": 1,
    "first_op": 5,
    "last_op": 120,
    "first_spool": 1,
    "last_spool": 30,
}


class ServiceFaultPlan:
    """A realized schedule of service-fault events, grouped by channel."""

    def __init__(self, events: Sequence[ServiceFaultEvent] = ()) -> None:
        self.events: Tuple[ServiceFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.op, e.kind.value, e.arg))
        )

    @classmethod
    def empty(cls) -> "ServiceFaultPlan":
        return cls(())

    @classmethod
    def from_config(cls, config: ServiceFaultConfig) -> "ServiceFaultPlan":
        rng = _Lcg(config.seed)
        op_span = config.last_op - config.first_op + 1
        spool_span = config.last_spool - config.first_spool + 1
        events: List[ServiceFaultEvent] = []

        def op_index() -> int:
            return config.first_op + rng.next(op_span)

        def spool_index() -> int:
            return config.first_spool + rng.next(spool_span)

        for _ in range(config.worker_crashes):
            events.append(ServiceFaultEvent(op_index(), ServiceFaultKind.WORKER_CRASH))
        for _ in range(config.message_drops):
            events.append(ServiceFaultEvent(op_index(), ServiceFaultKind.MESSAGE_DROP))
        for _ in range(config.reply_garbles):
            events.append(ServiceFaultEvent(op_index(), ServiceFaultKind.REPLY_GARBLE))
        for _ in range(config.worker_stalls):
            events.append(ServiceFaultEvent(op_index(), ServiceFaultKind.WORKER_STALL))
        for _ in range(config.spool_corruptions):
            events.append(
                ServiceFaultEvent(spool_index(), ServiceFaultKind.SPOOL_CORRUPT, rng.next(1 << 12))
            )
        for _ in range(config.spool_truncations):
            events.append(
                ServiceFaultEvent(spool_index(), ServiceFaultKind.SPOOL_TRUNCATE, rng.next(1 << 12))
            )
        return cls(events)

    def schedule(self, channel: str) -> List[ServiceFaultEvent]:
        """The channel's events, earliest first."""
        return [e for e in self.events if e.channel == channel]

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events


class ChaosInjector:
    """The consuming cursor: one plan, fired once, in op order.

    The fleet advances ``next_transport()`` on every dispatch to a
    forked worker (recovery traffic is exempt, so a storm cannot recurse
    into its own cleanup) and ``next_spool()`` on every eviction write.
    ``fired`` accumulates a trace of delivered events for the stderr
    report -- chaos is observable, never part of the results artifact.
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self._transport = list(plan.schedule("transport"))
        self._spool = list(plan.schedule("spool"))
        self.transport_ops = 0
        self.spool_ops = 0
        self.fired: List[Dict[str, object]] = []

    def _next(self, queue: List[ServiceFaultEvent], index: int) -> Optional[ServiceFaultEvent]:
        if queue and queue[0].op <= index:
            event = queue.pop(0)
            self.fired.append({
                "op": index, "scheduled": event.op,
                "kind": event.kind.value, "arg": event.arg,
            })
            return event
        return None

    def next_transport(self) -> Optional[ServiceFaultEvent]:
        """The event due at this dispatch, if any (consumed once)."""
        self.transport_ops += 1
        return self._next(self._transport, self.transport_ops)

    def next_spool(self) -> Optional[ServiceFaultEvent]:
        """The event due at this eviction write, if any (consumed once)."""
        self.spool_ops += 1
        return self._next(self._spool, self.spool_ops)

    @property
    def pending(self) -> int:
        return len(self._transport) + len(self._spool)

    def stats(self) -> Dict[str, int]:
        return {
            "chaos_planned": len(self.plan),
            "chaos_fired": len(self.fired),
            "chaos_pending": self.pending,
        }
