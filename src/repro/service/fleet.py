"""The session fleet: worker pool, LRU eviction, migration, recovery
(DESIGN.md 5.9 and 5.10).

A :class:`Fleet` multiplexes many named :class:`~repro.service.session.
Session` objects onto a pool of forked worker processes.  Each worker
runs a :class:`SessionHost` command loop over a pipe and serves
sessions from forks of its (inherited, prewarmed) boot cache; the
coordinator owns all placement and capacity decisions.

Determinism across worker counts is a design invariant, not an
accident:

* placement is round-robin in request order and capacity is *global*
  (one live-session budget for the whole fleet, not per worker), so
  which sessions are live, and which get evicted when, depends only on
  the request stream;
* eviction suspends the least-recently-used session to a checksummed
  canonical-JSON envelope on disk, and resumption restores that
  envelope on whichever worker round-robin points at next -- routinely
  a *different* worker (migration) -- which PR 4's byte-identical
  restore makes invisible to the session's trajectory;
* results record only simulated quantities, never worker identity.

PR 10 extends the invariant to *failure*: every request rides an
idempotent request id (a worker deduplicates retries against its last
reply), every acknowledged slice is journaled, and hot sessions are
background-checkpointed to generational spool files -- so when a worker
dies mid-request the fleet respawns the slot, warm-restores its
sessions from their last valid spool generation (falling back past
checksummed corruption), replays the journaled slices the checkpoint
missed, and retries the in-flight request exactly once.  Lost or
garbled messages retry with exponential backoff (injectable sleep, as
in the :class:`~repro.supervise.Supervisor`); a slot that exhausts its
respawn budget degrades to an in-process :class:`InlineHost`.  None of
it can leak into results: a chaos run under a seeded
:class:`~repro.service.chaos.ServiceFaultPlan` converges to an
artifact byte-identical to the clean serial run, which the
``service-chaos`` CI job enforces at workers 1/2/4.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    CallTimeout,
    DoradoError,
    GarbledReply,
    OverloadError,
    ServiceError,
    SpoolCorruption,
    WorkerCrashed,
)
from .chaos import ChaosInjector, ServiceFaultConfig, ServiceFaultKind, ServiceFaultPlan
from .session import Session, booted_workload, valid_session_name
from .spool import spool_read, spool_write


# --------------------------------------------------------------------------
# the host: a dict of live sessions behind a message protocol
# --------------------------------------------------------------------------

class SessionHost:
    """Live sessions in one process, driven by plain-dict messages.

    The message protocol is the worker wire format; running it in-process
    (the fork-less fallback, and the tests) exercises the same code path
    the forked workers run.  Failures *of a run* come back as data
    (``status: failed`` with the failure string); only protocol errors
    (unknown session, duplicate open) surface as ``ok: False``.

    Messages may carry a coordinator-assigned ``req`` id, echoed on the
    reply.  The host remembers its last (req, reply) pair and answers a
    repeated id from that cache without re-executing -- the idempotence
    that makes the fleet's retry-after-timeout and retry-after-garble
    paths safe for non-repeatable operations like ``run`` and
    ``suspend``.
    """

    def __init__(self) -> None:
        self.sessions: Dict[str, Session] = {}
        self._last_req: Optional[int] = None
        self._last_reply: Optional[Dict[str, Any]] = None

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        req = message.get("req")
        if req is not None and req == self._last_req:
            return self._last_reply  # duplicate of an already-served request
        try:
            reply = self._dispatch(message)
        except DoradoError as exc:
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if req is not None:
            reply = dict(reply, req=req)
            self._last_req, self._last_reply = req, reply
        return reply

    def _session(self, name: str) -> Session:
        try:
            return self.sessions[name]
        except KeyError:
            raise ServiceError(
                f"session {name!r} is not live on this worker"
            ) from None

    def _run(self, name: str, cycles: int) -> Dict[str, Any]:
        session = self._session(name)
        try:
            session.run_slice(cycles)
        except DoradoError:
            pass  # recorded on the session; reported as data below
        return {
            "name": name,
            "status": session.status,
            "cycles": session.cpu.counters.cycles,
            "halted": session.cpu.halted,
            "failure": session.failure,
        }

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message["op"]
        if op == "open":
            name = message["name"]
            if name in self.sessions:
                raise ServiceError(
                    f"session {name!r} is already live on this worker"
                )
            self.sessions[name] = Session.build(
                message["workload"],
                name=name,
                args=message.get("args"),
                config=message.get("config"),
                fault=message.get("fault"),
                supervise=message.get("supervise"),
                checkpoint_interval=message.get("checkpoint_interval", 2000),
                max_retries=message.get("max_retries", 3),
            )
            return {"ok": True, "name": name}
        if op == "resume":
            session = Session.resume(message["envelope"])
            if session.name in self.sessions:
                raise ServiceError(
                    f"session {session.name!r} is already live on this worker"
                )
            self.sessions[session.name] = session
            return {"ok": True, "name": session.name}
        if op == "run":
            return {"ok": True, **self._run(message["name"], message["cycles"])}
        if op == "run_batch":
            return {"ok": True, "replies": [
                self._run(name, cycles) for name, cycles in message["items"]
            ]}
        if op == "suspend":
            name = message["name"]
            envelope = self._session(name).suspend()
            del self.sessions[name]
            return {"ok": True, "envelope": envelope}
        if op == "checkpoint":
            # A non-destructive suspend: the envelope without the evict.
            # Snapshots are side-effect-free (PR 4), so checkpointing a
            # hot session cannot perturb its trajectory.
            envelope = self._session(message["name"]).suspend()
            return {"ok": True, "envelope": envelope}
        if op == "result":
            return {"ok": True, "result": self._session(message["name"]).result()}
        if op == "meter":
            return {"ok": True, "meter": self._session(message["name"]).meter()}
        if op == "close":
            self.sessions.pop(message["name"], None)
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "sessions": sorted(self.sessions)}
        raise ServiceError(f"unknown op {op!r}")


# --------------------------------------------------------------------------
# transports: a forked process, or the same host inline
# --------------------------------------------------------------------------

def _host_main(conn) -> None:
    """Worker process entry point: serve messages until ``exit``."""
    host = SessionHost()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message.get("op") == "exit":
            conn.close()
            return
        conn.send(host.handle(message))


def _request_context(message: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The (op, session names) a request addressed, for crash reports."""
    if not message:
        return {"op": None, "sessions": ()}
    names: List[str] = []
    if "name" in message:
        names.append(str(message["name"]))
    for item in message.get("items", ()):
        names.append(str(item[0]))
    return {"op": message.get("op"), "sessions": tuple(names)}


class ProcessHost:
    """A SessionHost in a forked worker, spoken to over a pipe.

    ``recv`` polls the pipe *and* the worker's liveness, so a child
    that dies mid-request surfaces promptly as
    :class:`~repro.errors.WorkerCrashed` -- carrying the worker slot,
    the in-flight op, and the session names it addressed -- instead of
    blocking the coordinator forever (the PR 9 latent bug the fleet's
    crash recovery is built on).  An optional *timeout* bounds waiting
    on a live-but-wedged worker with :class:`~repro.errors.CallTimeout`.
    """

    #: Seconds between liveness checks while waiting for a reply.
    POLL_INTERVAL = 0.05

    def __init__(self, ctx, index: int = 0) -> None:
        self.index = index
        self.last_request: Optional[Dict[str, Any]] = None
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(target=_host_main, args=(child,), daemon=True)
        self._proc.start()
        child.close()

    def _crashed(self, doing: str) -> WorkerCrashed:
        return WorkerCrashed(
            f"worker process died {doing}",
            worker=self.index,
            **_request_context(self.last_request),
        )

    def send(self, message: Dict[str, Any]) -> None:
        self.last_request = message
        try:
            self._conn.send(message)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise self._crashed(f"before the request was sent ({exc})") from exc

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(self.POLL_INTERVAL):
                    return self._conn.recv()
            except (EOFError, ConnectionError, OSError) as exc:
                raise self._crashed("mid-request (pipe closed)") from exc
            if not self._proc.is_alive():
                # Drain the race: a reply flushed just before death.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, ConnectionError, OSError):
                    pass
                raise self._crashed("mid-request")
            if deadline is not None and time.monotonic() >= deadline:
                raise CallTimeout(
                    f"worker {self.index} sent no reply within {timeout:g}s "
                    f"({_request_context(self.last_request)['op']!r} pending)"
                )

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.send(message)
        return self.recv()

    def kill(self) -> None:
        """SIGKILL the worker (chaos injection and wedged-slot recovery)."""
        if self._proc.is_alive():
            self._proc.kill()

    def is_alive(self) -> bool:
        return self._proc.is_alive()

    def reap(self) -> None:
        """Collect a dead worker's corpse and release its pipe."""
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - kill() precedes reap()
            self._proc.terminate()
            self._proc.join(timeout=5)

    def close(self) -> None:
        try:
            self._conn.send({"op": "exit"})
        except (BrokenPipeError, ConnectionError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.join(timeout=30)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)


class InlineHost:
    """The fork-less fallback: same protocol, same process.

    ``send`` queues and ``recv`` executes, preserving the fleet's
    send-all-then-collect batching discipline (and its reply ordering)
    without real concurrency.  Also the degraded form of a worker slot
    whose respawn budget ran out: it cannot crash, stall, or garble,
    which is exactly why the fleet falls back to it.
    """

    def __init__(self) -> None:
        self._host = SessionHost()
        self._pending: collections.deque = collections.deque()

    def send(self, message: Dict[str, Any]) -> None:
        self._pending.append(message)

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._host.handle(self._pending.popleft())

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.send(message)
        return self.recv()

    def close(self) -> None:
        self._pending.clear()
        self._host.sessions.clear()


# --------------------------------------------------------------------------
# the fleet
# --------------------------------------------------------------------------

class Fleet:
    """N workers, one global LRU budget, checkpoint files as currency.

    Recovery knobs (all deterministic-by-construction):

    * ``chaos`` -- a :class:`~repro.service.chaos.ServiceFaultConfig`
      (or field dict) arming a seeded service-fault plan.
    * ``checkpoint_every`` -- background-checkpoint a hot session to a
      new spool generation every N acknowledged slices (0 disables);
      bounds how much replay a crash can cost.
    * ``spool_keep`` -- spool generations retained per session; the
      corruption fallback depth.
    * ``max_call_retries`` -- resend budget for lost/garbled/stalled
      requests before the slot is treated as wedged and crash-recovered.
    * ``max_respawns`` -- per-slot crash budget; beyond it the slot
      degrades to an :class:`InlineHost` (or, with ``degrade=False``,
      the fleet sheds load with :class:`~repro.errors.OverloadError`).
    * ``backoff_base``/``sleep`` -- exponential retry backoff, injectable
      exactly as in the :class:`~repro.supervise.Supervisor`.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        capacity: int = 8,
        spool_dir: Optional[str] = None,
        prewarm: Sequence[Tuple[str, Dict[str, Any], Any]] = (),
        checkpoint_interval: int = 2000,
        max_retries: int = 3,
        chaos: Optional[Any] = None,
        checkpoint_every: int = 8,
        spool_keep: int = 2,
        call_timeout: Optional[float] = 300.0,
        max_call_retries: int = 3,
        max_respawns: int = 2,
        degrade: bool = True,
        retry_after: float = 30.0,
        backoff_base: float = 0.0,
        sleep=time.sleep,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if spool_keep < 1:
            raise ServiceError(f"spool_keep must be >= 1, got {spool_keep}")
        self.capacity = capacity
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self.checkpoint_every = checkpoint_every
        self.spool_keep = spool_keep
        self.call_timeout = call_timeout
        self.max_call_retries = max_call_retries
        self.max_respawns = max_respawns
        self.allow_degrade = degrade
        self.retry_after = retry_after
        self.backoff_base = backoff_base
        self._sleep = sleep
        if chaos is not None and not isinstance(chaos, ServiceFaultConfig):
            chaos = ServiceFaultConfig(**dict(chaos))
        self._chaos: Optional[ChaosInjector] = (
            ChaosInjector(ServiceFaultPlan.from_config(chaos))
            if chaos is not None else None
        )
        self._own_spool = spool_dir is None
        self.spool_dir = spool_dir or tempfile.mkdtemp(prefix="repro-fleet-")
        os.makedirs(self.spool_dir, exist_ok=True)
        # Warm the boot cache BEFORE forking so every worker inherits the
        # pristine booted templates (microcode assembly paid once).
        from ..config import PRODUCTION

        for wname, wargs, wconfig in prewarm:
            booted_workload(
                wname,
                tuple(sorted((wargs or {}).items())),
                wconfig if wconfig is not None else PRODUCTION,
            )
        if "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
            self.hosts: List[Any] = [
                ProcessHost(self._ctx, index=i) for i in range(workers)
            ]
        else:  # pragma: no cover - exercised only on fork-less platforms
            # No fork, no shared boot cache to inherit: run the same
            # protocol inline.  Determinism is unaffected.
            self._ctx = None
            self.hosts = [InlineHost()]
        self._live: Dict[str, int] = {}          # name -> worker index
        self._lru: "collections.OrderedDict[str, None]" = (
            collections.OrderedDict()
        )
        self._known: set = set()                 # every open (live or spooled)
        self._opens: Dict[str, Dict[str, Any]] = {}   # name -> open message
        self._history: Dict[str, List[int]] = {}      # acknowledged slices
        self._ckpt_index: Dict[str, int] = {}    # history idx of last spool
        self._gens: Dict[str, List[Tuple[str, int]]] = {}  # (path, hist idx)
        self._gen_seq: Dict[str, int] = {}
        self._last_host: Dict[str, int] = {}     # name -> last worker index
        self._reqs: Dict[int, int] = {}          # worker -> request counter
        self._crash_counts: Dict[int, int] = {}  # worker -> crashes so far
        self._rr = 0
        self.counters = {
            "opened": 0, "evictions": 0, "resumes": 0, "migrations": 0,
            "checkpoints": 0, "worker_crashes": 0, "respawns": 0,
            "retries": 0, "checkpoint_corruptions": 0, "degrades": 0,
        }

    # -- transport plumbing --------------------------------------------

    def _next_req(self, worker: int) -> int:
        self._reqs[worker] = self._reqs.get(worker, 0) + 1
        return self._reqs[worker]

    def _dispatch(
        self,
        worker: int,
        message: Dict[str, Any],
        *,
        req: Optional[int] = None,
        chaos: bool = True,
    ) -> Dict[str, Any]:
        """Send one request; returns the pending record for ``_collect``.

        A retry passes the original ``req`` so the worker's idempotence
        cache can answer it without re-executing; recovery traffic
        passes ``chaos=False`` so a fault storm cannot recurse into its
        own cleanup.
        """
        host = self.hosts[worker]
        if req is None:
            req = self._next_req(worker)
        message = dict(message, req=req)
        pending: Dict[str, Any] = {"message": message, "req": req, "action": None}
        if chaos and self._chaos is not None and isinstance(host, ProcessHost):
            event = self._chaos.next_transport()
            if event is not None:
                pending["action"] = event.kind
        if pending["action"] is ServiceFaultKind.MESSAGE_DROP:
            return pending  # lost in transit: never actually sent
        try:
            host.send(message)
        except WorkerCrashed:
            pending["send_failed"] = True
            return pending
        if pending["action"] is ServiceFaultKind.WORKER_CRASH:
            host.kill()  # SIGKILL mid-request, reply racing death
        return pending

    def _recv_matching(self, worker: int, req: int) -> Dict[str, Any]:
        """The reply for *req*, discarding stale duplicates from retries."""
        host = self.hosts[worker]
        while True:
            reply = host.recv(timeout=self.call_timeout)
            if not isinstance(reply, dict):
                raise GarbledReply(
                    f"worker {worker} sent a non-dict reply: {reply!r}"
                )
            got = reply.get("req")
            if got == req:
                return reply
            if isinstance(got, int) and got < req:
                continue  # stale duplicate of an earlier, retried request
            raise GarbledReply(
                f"worker {worker} replied to request {got!r} "
                f"while {req} was pending"
            )

    def _await_reply(self, worker: int, pending: Dict[str, Any]) -> Dict[str, Any]:
        action = pending.pop("action", None)
        req = pending["req"]
        if action is ServiceFaultKind.MESSAGE_DROP:
            raise CallTimeout(
                f"request {req} to worker {worker} lost in transit (injected)"
            )
        if pending.pop("send_failed", False):
            raise WorkerCrashed(
                "worker pipe closed before the request was sent",
                worker=worker,
                **_request_context(pending["message"]),
            )
        reply = self._recv_matching(worker, req)
        if action is ServiceFaultKind.WORKER_STALL:
            raise CallTimeout(
                f"worker {worker} stalled: reply {req} arrived too late "
                f"(injected)"
            )
        if action is ServiceFaultKind.REPLY_GARBLE:
            raise GarbledReply(
                f"reply {req} from worker {worker} corrupted in transit "
                f"(injected)"
            )
        return reply

    def _collect(self, worker: int, pending: Dict[str, Any]) -> Dict[str, Any]:
        """Wait out one pending request, recovering until it is answered."""
        attempts = 0
        while True:
            try:
                return self._await_reply(worker, pending)
            except WorkerCrashed as exc:
                self._recover_crash(worker, exc)
                pending = self._dispatch(
                    worker, pending["message"], req=pending["req"], chaos=False
                )
            except (CallTimeout, GarbledReply) as exc:
                self.counters["retries"] += 1
                attempts += 1
                if attempts > self.max_call_retries:
                    # The slot is wedged: treat it as crashed.  kill()
                    # makes the diagnosis true before recovery acts on it.
                    host = self.hosts[worker]
                    if isinstance(host, ProcessHost):
                        host.kill()
                    self._recover_crash(worker, exc)
                    pending = self._dispatch(
                        worker, pending["message"], req=pending["req"],
                        chaos=False,
                    )
                    attempts = 0
                    continue
                self._sleep(self.backoff_base * (2 ** (attempts - 1)))
                pending = self._dispatch(
                    worker, pending["message"], req=pending["req"]
                )

    def _call(
        self, worker: int, message: Dict[str, Any], *, chaos: bool = True
    ) -> Dict[str, Any]:
        pending = self._dispatch(worker, message, chaos=chaos)
        reply = self._collect(worker, pending)
        if not reply.get("ok"):
            raise ServiceError(f"worker {worker}: {reply.get('error')}")
        return reply

    # -- crash recovery ------------------------------------------------

    def _recover_crash(self, worker: int, cause: Exception) -> None:
        """Respawn (or degrade) a dead slot and restore its sessions.

        The restored sessions come from their last valid spool
        generation plus a replay of the journaled slices the checkpoint
        missed, so the slot rejoins the fleet with every session at
        exactly the state the coordinator last acknowledged.  LRU order
        is untouched: recovery must stay invisible to eviction
        decisions, which are a pure function of the request stream.
        """
        self.counters["worker_crashes"] += 1
        self._crash_counts[worker] = self._crash_counts.get(worker, 0) + 1
        host = self.hosts[worker]
        if isinstance(host, ProcessHost):
            host.kill()
            host.reap()
        if self._crash_counts[worker] > self.max_respawns:
            if not self.allow_degrade:
                raise OverloadError(
                    f"worker {worker} exceeded its respawn budget of "
                    f"{self.max_respawns} and degradation is disabled",
                    retry_after=self.retry_after,
                ) from cause
            self.hosts[worker] = InlineHost()
            self.counters["degrades"] += 1
        else:
            self.hosts[worker] = ProcessHost(self._ctx, index=worker)
            self.counters["respawns"] += 1
        for name in sorted(n for n, w in self._live.items() if w == worker):
            self._restore_lost(name, worker)

    def _restore_lost(self, name: str, worker: int) -> None:
        """Warm-restore one crashed session onto the replacement host."""
        payload, replay_from = self._read_spool(name)
        if payload is not None:
            self._call(worker, {"op": "resume", "envelope": payload},
                       chaos=False)
        else:
            # No valid spool generation (crashed before the first
            # checkpoint, or every generation corrupt): rebuild from the
            # original admission spec and replay the whole journal.
            self._call(worker, dict(self._opens[name]), chaos=False)
            replay_from = 0
        self._replay(name, worker, replay_from)

    def _replay(self, name: str, worker: int, start: int) -> None:
        """Re-grant journaled slices the restored checkpoint has not seen.

        Sessions are pure functions of their granted slice budgets
        (DESIGN.md 5.9), so replaying the journal reconstructs the
        acknowledged state bit-for-bit; replies are data and need no
        inspection.
        """
        history = self._history.get(name, ())
        for chunk_start in range(start, len(history), 64):
            chunk = history[chunk_start:chunk_start + 64]
            self._call(worker, {
                "op": "run_batch",
                "items": [(name, cycles) for cycles in chunk],
            }, chaos=False)

    # -- spool generations ---------------------------------------------

    def _write_spool(self, name: str, envelope: str, index: int,
                     *, evict: bool) -> str:
        """Write a new checksummed spool generation for *name*.

        *index* is the journal position the envelope captures; restore
        replays everything after it.  Only eviction writes consume
        chaos spool events -- the load test is guaranteed to read those
        back, which keeps corruption *detection* deterministic.
        """
        gen = self._gen_seq[name] = self._gen_seq.get(name, 0) + 1
        path = os.path.join(self.spool_dir, f"{name}.g{gen:06d}.spool")
        spool_write(path, envelope)
        gens = self._gens.setdefault(name, [])
        gens.append((path, index))
        while len(gens) > self.spool_keep:
            old_path, _ = gens.pop(0)
            try:
                os.unlink(old_path)
            except OSError:
                pass
        self._ckpt_index[name] = index
        if evict and self._chaos is not None:
            event = self._chaos.next_spool()
            if event is not None:
                self._mutate_spool(path, event)
        return path

    @staticmethod
    def _mutate_spool(path: str, event) -> None:
        """Apply an injected spool fault to a just-written file."""
        with open(path, "rb") as f:
            data = f.read()
        if event.kind is ServiceFaultKind.SPOOL_TRUNCATE:
            data = data[: event.arg % max(1, len(data))]
        else:
            pos = event.arg % max(1, len(data))
            data = data[:pos] + bytes([data[pos] ^ 0x01]) + data[pos + 1:]
        with open(path, "wb") as f:
            f.write(data)

    def _read_spool(self, name: str) -> Tuple[Optional[str], int]:
        """The newest valid spool payload and its journal position.

        Falls back through older generations on checksum failure,
        counting each detection once (a generation caught corrupt is
        pruned, never re-walked); ``(None, 0)`` means nothing on disk
        survived and the caller must rebuild from the admission spec.
        """
        gens = self._gens.get(name, [])
        for path, index in reversed(list(gens)):
            try:
                return spool_read(path), index
            except FileNotFoundError:
                gens.remove((path, index))
            except SpoolCorruption:
                self.counters["checkpoint_corruptions"] += 1
                gens.remove((path, index))
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return None, 0

    def _drop_spool(self, name: str) -> None:
        for path, _ in self._gens.pop(name, []):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._gen_seq.pop(name, None)

    # -- placement and capacity ----------------------------------------

    def _place(self) -> int:
        worker = self._rr % len(self.hosts)
        self._rr += 1
        return worker

    def _admit(self, name: str, worker: int) -> None:
        self._live[name] = worker
        self._lru[name] = None
        self._lru.move_to_end(name)

    def _touch(self, name: str) -> None:
        self._lru.move_to_end(name)

    def _make_room(self) -> None:
        while len(self._live) >= self.capacity:
            self._evict(next(iter(self._lru)))

    def _evict(self, name: str) -> str:
        """Suspend the session to its spool file; forget it on the worker."""
        worker = self._live[name]
        reply = self._call(worker, {"op": "suspend", "name": name})
        self._live.pop(name)
        self._lru.pop(name)
        path = self._write_spool(
            name, reply["envelope"], len(self._history.get(name, ())),
            evict=True,
        )
        self._last_host[name] = worker
        self.counters["evictions"] += 1
        return path

    def _maybe_checkpoint(self, name: str, status: str) -> None:
        """Background-checkpoint a hot session whose journal has grown.

        Skipped for halted/failed sessions (their results are about to
        be collected) and when disabled; the trigger depends only on
        the per-session journal length, never on placement.
        """
        if not self.checkpoint_every or status != "running":
            return
        history_len = len(self._history.get(name, ()))
        if history_len - self._ckpt_index.get(name, 0) < self.checkpoint_every:
            return
        worker = self._live[name]
        reply = self._call(worker, {"op": "checkpoint", "name": name})
        self._write_spool(name, reply["envelope"], history_len, evict=False)
        self.counters["checkpoints"] += 1

    # -- the session API ----------------------------------------------

    def open_session(
        self,
        name: str,
        workload: str,
        *,
        args: Optional[Dict[str, Any]] = None,
        config: Any = None,
        fault: Optional[Dict[str, Any]] = None,
        supervise: Optional[bool] = None,
    ) -> int:
        """Admit a new named session; returns the worker it landed on."""
        if not valid_session_name(name):
            raise ServiceError(f"invalid session name {name!r}")
        if name in self._known:
            raise ServiceError(f"session {name!r} already exists")
        self._make_room()
        worker = self._place()
        message = {
            "op": "open", "name": name, "workload": workload,
            "args": dict(args or {}), "config": config, "fault": fault,
            "supervise": supervise,
            "checkpoint_interval": self.checkpoint_interval,
            "max_retries": self.max_retries,
        }
        self._opens[name] = message
        self._history[name] = []
        try:
            self._call(worker, message)
        except ServiceError:
            self._opens.pop(name, None)
            self._history.pop(name, None)
            raise
        self._known.add(name)
        self._admit(name, worker)
        self.counters["opened"] += 1
        return worker

    def ensure_live(self, name: str) -> int:
        """The worker hosting *name*, resuming its envelope if spooled."""
        if name in self._live:
            self._touch(name)
            return self._live[name]
        if name not in self._known:
            raise ServiceError(f"unknown session {name!r}")
        self._make_room()
        worker = self._place()
        payload, replay_from = self._read_spool(name)
        if payload is not None:
            self._call(worker, {"op": "resume", "envelope": payload})
        else:
            # Every on-disk generation was corrupt (or none was ever
            # written): rebuild from the admission spec and replay the
            # whole journal -- graceful degradation of the spool, not
            # an error the caller sees.
            self._call(worker, dict(self._opens[name]), chaos=False)
            replay_from = 0
        self._replay(name, worker, replay_from)
        self._admit(name, worker)
        self.counters["resumes"] += 1
        if self._last_host.get(name, worker) != worker:
            self.counters["migrations"] += 1
        return worker

    def run_slice(self, name: str, cycles: int) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        reply = self._call(worker, {
            "op": "run", "name": name, "cycles": cycles,
        })
        self._history[name].append(cycles)
        self._maybe_checkpoint(name, reply.get("status", ""))
        return {k: v for k, v in reply.items() if k not in ("ok", "req")}

    def run_round(
        self, names: Sequence[str], cycles: int
    ) -> Dict[str, Dict[str, Any]]:
        """One slice for every named session, workers running in parallel.

        Sessions are handled in capacity-sized waves (so a round over
        more sessions than the live budget churns the LRU exactly as
        consecutive single slices would), grouped by hosting worker,
        with each worker's batch dispatched before any is collected.
        A worker that dies mid-batch is recovered and its batch retried
        without disturbing the other workers' in-flight batches.
        """
        out: Dict[str, Dict[str, Any]] = {}
        names = list(names)
        for start in range(0, len(names), self.capacity):
            wave = names[start:start + self.capacity]
            batches: Dict[int, List[str]] = {}
            for name in wave:
                batches.setdefault(self.ensure_live(name), []).append(name)
            order = sorted(batches)
            pendings = {
                worker: self._dispatch(worker, {
                    "op": "run_batch",
                    "items": [(name, cycles) for name in batches[worker]],
                })
                for worker in order
            }
            for worker in order:
                reply = self._collect(worker, pendings[worker])
                if not reply.get("ok"):
                    raise ServiceError(
                        f"worker {worker}: {reply.get('error')}"
                    )
                for row in reply["replies"]:
                    out[row["name"]] = row
                    self._history[row["name"]].append(cycles)
                for row in reply["replies"]:
                    self._maybe_checkpoint(row["name"], row.get("status", ""))
        return out

    def result(self, name: str) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        return self._call(worker, {"op": "result", "name": name})["result"]

    def meter(self, name: str) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        return self._call(worker, {"op": "meter", "name": name})["meter"]

    def suspend(self, name: str) -> str:
        """Force-evict *name*; returns its (latest) envelope path."""
        if name in self._live:
            return self._evict(name)
        if name not in self._known:
            raise ServiceError(f"unknown session {name!r}")
        gens = self._gens.get(name)
        if not gens:
            raise ServiceError(f"session {name!r} has no spool generations")
        return gens[-1][0]

    def close_session(self, name: str) -> None:
        if name in self._live:
            worker = self._live[name]
            self._call(worker, {"op": "close", "name": name})
            self._live.pop(name, None)
            self._lru.pop(name, None)
        self._drop_spool(name)
        self._known.discard(name)
        self._opens.pop(name, None)
        self._history.pop(name, None)
        self._ckpt_index.pop(name, None)
        self._last_host.pop(name, None)

    def stats(self) -> Dict[str, Any]:
        degraded = sorted(
            index for index, host in enumerate(self.hosts)
            if isinstance(host, InlineHost) and self._crash_counts.get(index)
        )
        info: Dict[str, Any] = {
            "workers": len(self.hosts),
            "capacity": self.capacity,
            "live": sorted(self._live),
            "spooled": sorted(self._known - set(self._live)),
            "degraded_workers": degraded,
            **self.counters,
        }
        if self._chaos is not None:
            info.update(self._chaos.stats())
        return info

    def close(self) -> None:
        for host in self.hosts:
            host.close()
        if self._own_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
