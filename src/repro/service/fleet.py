"""The session fleet: worker pool, LRU eviction, migration (DESIGN.md 5.9).

A :class:`Fleet` multiplexes many named :class:`~repro.service.session.
Session` objects onto a pool of forked worker processes.  Each worker
runs a :class:`SessionHost` command loop over a pipe and serves
sessions from forks of its (inherited, prewarmed) boot cache; the
coordinator owns all placement and capacity decisions.

Determinism across worker counts is a design invariant, not an
accident:

* placement is round-robin in request order and capacity is *global*
  (one live-session budget for the whole fleet, not per worker), so
  which sessions are live, and which get evicted when, depends only on
  the request stream;
* eviction suspends the least-recently-used session to a canonical-JSON
  envelope on disk, and resumption restores that envelope on whichever
  worker round-robin points at next -- routinely a *different* worker
  (migration) -- which PR 4's byte-identical restore makes invisible to
  the session's trajectory;
* results record only simulated quantities, never worker identity.

So a fleet of 1, 2, or 4 workers -- or no fleet at all (the load test's
serial mode) -- produces byte-identical session results for the same
scripted request stream.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import shutil
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import DoradoError, ServiceError
from .session import Session, booted_workload, valid_session_name


# --------------------------------------------------------------------------
# the host: a dict of live sessions behind a message protocol
# --------------------------------------------------------------------------

class SessionHost:
    """Live sessions in one process, driven by plain-dict messages.

    The message protocol is the worker wire format; running it in-process
    (the fork-less fallback, and the tests) exercises the same code path
    the forked workers run.  Failures *of a run* come back as data
    (``status: failed`` with the failure string); only protocol errors
    (unknown session, duplicate open) surface as ``ok: False``.
    """

    def __init__(self) -> None:
        self.sessions: Dict[str, Session] = {}

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            return self._dispatch(message)
        except DoradoError as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _session(self, name: str) -> Session:
        try:
            return self.sessions[name]
        except KeyError:
            raise ServiceError(
                f"session {name!r} is not live on this worker"
            ) from None

    def _run(self, name: str, cycles: int) -> Dict[str, Any]:
        session = self._session(name)
        try:
            session.run_slice(cycles)
        except DoradoError:
            pass  # recorded on the session; reported as data below
        return {
            "name": name,
            "status": session.status,
            "cycles": session.cpu.counters.cycles,
            "halted": session.cpu.halted,
            "failure": session.failure,
        }

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message["op"]
        if op == "open":
            name = message["name"]
            if name in self.sessions:
                raise ServiceError(
                    f"session {name!r} is already live on this worker"
                )
            self.sessions[name] = Session.build(
                message["workload"],
                name=name,
                args=message.get("args"),
                config=message.get("config"),
                fault=message.get("fault"),
                supervise=message.get("supervise"),
                checkpoint_interval=message.get("checkpoint_interval", 2000),
                max_retries=message.get("max_retries", 3),
            )
            return {"ok": True, "name": name}
        if op == "resume":
            session = Session.resume(message["envelope"])
            if session.name in self.sessions:
                raise ServiceError(
                    f"session {session.name!r} is already live on this worker"
                )
            self.sessions[session.name] = session
            return {"ok": True, "name": session.name}
        if op == "run":
            return {"ok": True, **self._run(message["name"], message["cycles"])}
        if op == "run_batch":
            return {"ok": True, "replies": [
                self._run(name, cycles) for name, cycles in message["items"]
            ]}
        if op == "suspend":
            name = message["name"]
            envelope = self._session(name).suspend()
            del self.sessions[name]
            return {"ok": True, "envelope": envelope}
        if op == "result":
            return {"ok": True, "result": self._session(message["name"]).result()}
        if op == "meter":
            return {"ok": True, "meter": self._session(message["name"]).meter()}
        if op == "close":
            self.sessions.pop(message["name"], None)
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "sessions": sorted(self.sessions)}
        raise ServiceError(f"unknown op {op!r}")


# --------------------------------------------------------------------------
# transports: a forked process, or the same host inline
# --------------------------------------------------------------------------

def _host_main(conn) -> None:
    """Worker process entry point: serve messages until ``exit``."""
    host = SessionHost()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message.get("op") == "exit":
            conn.close()
            return
        conn.send(host.handle(message))


class ProcessHost:
    """A SessionHost in a forked worker, spoken to over a pipe."""

    def __init__(self, ctx) -> None:
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(target=_host_main, args=(child,), daemon=True)
        self._proc.start()
        child.close()

    def send(self, message: Dict[str, Any]) -> None:
        self._conn.send(message)

    def recv(self) -> Dict[str, Any]:
        try:
            return self._conn.recv()
        except EOFError:
            raise ServiceError("worker process died mid-request") from None

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.send(message)
        return self.recv()

    def close(self) -> None:
        try:
            self._conn.send({"op": "exit"})
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=30)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)


class InlineHost:
    """The fork-less fallback: same protocol, same process.

    ``send`` queues and ``recv`` executes, preserving the fleet's
    send-all-then-collect batching discipline (and its reply ordering)
    without real concurrency.
    """

    def __init__(self) -> None:
        self._host = SessionHost()
        self._pending: collections.deque = collections.deque()

    def send(self, message: Dict[str, Any]) -> None:
        self._pending.append(message)

    def recv(self) -> Dict[str, Any]:
        return self._host.handle(self._pending.popleft())

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.send(message)
        return self.recv()

    def close(self) -> None:
        self._pending.clear()
        self._host.sessions.clear()


# --------------------------------------------------------------------------
# the fleet
# --------------------------------------------------------------------------

class Fleet:
    """N workers, one global LRU budget, checkpoint files as currency."""

    def __init__(
        self,
        *,
        workers: int = 1,
        capacity: int = 8,
        spool_dir: Optional[str] = None,
        prewarm: Sequence[Tuple[str, Dict[str, Any], Any]] = (),
        checkpoint_interval: int = 2000,
        max_retries: int = 3,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self._own_spool = spool_dir is None
        self.spool_dir = spool_dir or tempfile.mkdtemp(prefix="repro-fleet-")
        os.makedirs(self.spool_dir, exist_ok=True)
        # Warm the boot cache BEFORE forking so every worker inherits the
        # pristine booted templates (microcode assembly paid once).
        from ..config import PRODUCTION

        for wname, wargs, wconfig in prewarm:
            booted_workload(
                wname,
                tuple(sorted((wargs or {}).items())),
                wconfig if wconfig is not None else PRODUCTION,
            )
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
            self.hosts: List[Any] = [ProcessHost(ctx) for _ in range(workers)]
        else:
            # No fork, no shared boot cache to inherit: run the same
            # protocol inline.  Determinism is unaffected.
            self.hosts = [InlineHost()]
        self._live: Dict[str, int] = {}          # name -> worker index
        self._lru: "collections.OrderedDict[str, None]" = (
            collections.OrderedDict()
        )
        self._spooled: Dict[str, str] = {}       # name -> envelope path
        self._last_host: Dict[str, int] = {}     # name -> last worker index
        self._rr = 0
        self.counters = {
            "opened": 0, "evictions": 0, "resumes": 0, "migrations": 0,
        }

    # -- plumbing ------------------------------------------------------

    def _call(self, worker: int, message: Dict[str, Any]) -> Dict[str, Any]:
        reply = self.hosts[worker].call(message)
        if not reply.get("ok"):
            raise ServiceError(f"worker {worker}: {reply.get('error')}")
        return reply

    def _place(self) -> int:
        worker = self._rr % len(self.hosts)
        self._rr += 1
        return worker

    def _admit(self, name: str, worker: int) -> None:
        self._live[name] = worker
        self._lru[name] = None
        self._lru.move_to_end(name)

    def _touch(self, name: str) -> None:
        self._lru.move_to_end(name)

    def _make_room(self) -> None:
        while len(self._live) >= self.capacity:
            self._evict(next(iter(self._lru)))

    def _evict(self, name: str) -> str:
        """Suspend the session to its spool file; forget it on the worker."""
        worker = self._live.pop(name)
        self._lru.pop(name)
        reply = self._call(worker, {"op": "suspend", "name": name})
        path = os.path.join(self.spool_dir, f"{name}.session.json")
        with open(path, "w") as f:
            f.write(reply["envelope"])
        self._spooled[name] = path
        self._last_host[name] = worker
        self.counters["evictions"] += 1
        return path

    # -- the session API ----------------------------------------------

    def open_session(
        self,
        name: str,
        workload: str,
        *,
        args: Optional[Dict[str, Any]] = None,
        config: Any = None,
        fault: Optional[Dict[str, Any]] = None,
        supervise: Optional[bool] = None,
    ) -> int:
        """Admit a new named session; returns the worker it landed on."""
        if not valid_session_name(name):
            raise ServiceError(f"invalid session name {name!r}")
        if name in self._live or name in self._spooled:
            raise ServiceError(f"session {name!r} already exists")
        self._make_room()
        worker = self._place()
        self._call(worker, {
            "op": "open", "name": name, "workload": workload,
            "args": dict(args or {}), "config": config, "fault": fault,
            "supervise": supervise,
            "checkpoint_interval": self.checkpoint_interval,
            "max_retries": self.max_retries,
        })
        self._admit(name, worker)
        self.counters["opened"] += 1
        return worker

    def ensure_live(self, name: str) -> int:
        """The worker hosting *name*, resuming its envelope if spooled."""
        if name in self._live:
            self._touch(name)
            return self._live[name]
        path = self._spooled.get(name)
        if path is None:
            raise ServiceError(f"unknown session {name!r}")
        self._make_room()
        worker = self._place()
        with open(path) as f:
            envelope = f.read()
        self._call(worker, {"op": "resume", "envelope": envelope})
        os.unlink(path)
        del self._spooled[name]
        self._admit(name, worker)
        self.counters["resumes"] += 1
        if self._last_host.get(name, worker) != worker:
            self.counters["migrations"] += 1
        return worker

    def run_slice(self, name: str, cycles: int) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        reply = self._call(worker, {
            "op": "run", "name": name, "cycles": cycles,
        })
        return {k: v for k, v in reply.items() if k != "ok"}

    def run_round(
        self, names: Sequence[str], cycles: int
    ) -> Dict[str, Dict[str, Any]]:
        """One slice for every named session, workers running in parallel.

        Sessions are handled in capacity-sized waves (so a round over
        more sessions than the live budget churns the LRU exactly as
        consecutive single slices would), grouped by hosting worker,
        with each worker's batch dispatched before any is collected.
        """
        out: Dict[str, Dict[str, Any]] = {}
        names = list(names)
        for start in range(0, len(names), self.capacity):
            wave = names[start:start + self.capacity]
            batches: Dict[int, List[str]] = {}
            for name in wave:
                batches.setdefault(self.ensure_live(name), []).append(name)
            order = sorted(batches)
            for worker in order:
                self.hosts[worker].send({
                    "op": "run_batch",
                    "items": [(name, cycles) for name in batches[worker]],
                })
            for worker in order:
                reply = self.hosts[worker].recv()
                if not reply.get("ok"):
                    raise ServiceError(
                        f"worker {worker}: {reply.get('error')}"
                    )
                for row in reply["replies"]:
                    out[row["name"]] = row
        return out

    def result(self, name: str) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        return self._call(worker, {"op": "result", "name": name})["result"]

    def meter(self, name: str) -> Dict[str, Any]:
        worker = self.ensure_live(name)
        return self._call(worker, {"op": "meter", "name": name})["meter"]

    def suspend(self, name: str) -> str:
        """Force-evict *name*; returns its envelope path."""
        if name in self._live:
            return self._evict(name)
        path = self._spooled.get(name)
        if path is None:
            raise ServiceError(f"unknown session {name!r}")
        return path

    def close_session(self, name: str) -> None:
        if name in self._live:
            worker = self._live.pop(name)
            self._lru.pop(name)
            self._call(worker, {"op": "close", "name": name})
        path = self._spooled.pop(name, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)
        self._last_host.pop(name, None)

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": len(self.hosts),
            "capacity": self.capacity,
            "live": sorted(self._live),
            "spooled": sorted(self._spooled),
            **self.counters,
        }

    def close(self) -> None:
        for host in self.hosts:
            host.close()
        if self._own_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
