"""Command-line driver for the service: ``python -m repro.service``.

``serve`` starts the asyncio front end over a worker fleet; ``loadtest``
replays the scripted session stream and writes the canonical-JSON
results artifact CI compares byte-for-byte across worker counts;
``chaos`` runs the same loadtest under a seeded service-fault storm
(the artifact must still ``cmp`` clean against the serial ground
truth); ``bench`` runs the scaling/admission/recovery sweep and writes
BENCH_service.json-shaped output.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from .bench import run_service_bench
from .chaos import CHAOS_TEMPLATE
from .fleet import Fleet
from .frontend import Frontend
from .loadtest import ROTATION, loadtest_json, run_loadtest, summarize


def _cmd_serve(args: argparse.Namespace) -> int:
    fleet = Fleet(
        workers=args.workers,
        capacity=args.capacity,
        prewarm=[(workload, {}, None) for workload in ROTATION],
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
    )
    frontend = Frontend(fleet)

    def ready(addr) -> None:
        print(f"repro.service listening on {addr[0]}:{addr[1]}", flush=True)

    try:
        asyncio.run(frontend.serve(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        pass
    finally:
        fleet.close()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    artifact, stats = run_loadtest(
        sessions=args.sessions,
        workers=args.workers,
        capacity=args.capacity,
        slice_cycles=args.slice_cycles,
        max_cycles=args.max_cycles,
        seed=args.seed,
        fault_every=args.fault_every,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
        serial=args.serial,
    )
    seconds = time.perf_counter() - start
    text = loadtest_json(artifact)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"loadtest artifact -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    counts = summarize(artifact)
    report = dict(counts, seconds=round(seconds, 3), **stats)
    print(f"loadtest: {json.dumps(report, sort_keys=True)}", file=sys.stderr)
    # Unrecovered *faulted* sessions are measurements; a clean session
    # failing (or not verifying) is a real defect.
    clean_ok = all(
        r["verified"] for r in artifact["results"].values() if not r["faulted"]
    )
    return 0 if clean_ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    chaos = {
        "seed": args.chaos_seed,
        "worker_crashes": args.worker_crashes,
        "message_drops": args.message_drops,
        "reply_garbles": args.reply_garbles,
        "worker_stalls": args.worker_stalls,
        "spool_corruptions": args.spool_corruptions,
        "spool_truncations": args.spool_truncations,
        "first_op": args.first_op,
        "last_op": args.last_op,
        "first_spool": args.first_spool,
        "last_spool": args.last_spool,
    }
    start = time.perf_counter()
    artifact, stats = run_loadtest(
        sessions=args.sessions,
        workers=args.workers,
        capacity=args.capacity,
        slice_cycles=args.slice_cycles,
        max_cycles=args.max_cycles,
        seed=args.seed,
        fault_every=args.fault_every,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
        chaos=chaos,
        checkpoint_every=args.checkpoint_every,
        max_respawns=args.max_respawns,
    )
    seconds = time.perf_counter() - start
    text = loadtest_json(artifact)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"chaos artifact -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    counts = summarize(artifact)
    report = dict(counts, seconds=round(seconds, 3), **stats)
    print(f"chaos: {json.dumps(report, sort_keys=True)}", file=sys.stderr)
    ok = all(
        r["verified"] for r in artifact["results"].values() if not r["faulted"]
    )
    if args.require_counters:
        for counter in args.require_counters.split(","):
            counter = counter.strip()
            if not stats.get(counter):
                print(f"chaos: required counter {counter!r} is zero",
                      file=sys.stderr)
                ok = False
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    worker_counts = tuple(int(n) for n in args.workers.split(","))
    result = run_service_bench(
        worker_counts,
        sessions=args.sessions,
        capacity=args.capacity,
        slice_cycles=args.slice_cycles,
        seed=args.seed,
    )
    text = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"benchmark -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    recovery = result["recovery_overhead"]
    ok = (
        all(row["verified"] > 0 for row in result["scaling"])
        and recovery["artifact_identical"]
        and recovery["within_ceiling"]
    )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-tenant Dorado simulation service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="asyncio front end over a fleet")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="0 picks an ephemeral port (printed on start)")
    serve_p.add_argument("--workers", type=int, default=2)
    serve_p.add_argument("--capacity", type=int, default=8,
                         help="global live-session budget (LRU beyond it)")
    serve_p.add_argument("--checkpoint-interval", type=int, default=2000)
    serve_p.add_argument("--max-retries", type=int, default=3)
    serve_p.set_defaults(func=_cmd_serve)

    load_p = sub.add_parser(
        "loadtest", help="scripted determinism/throughput harness"
    )
    load_p.add_argument("--sessions", type=int, default=60)
    load_p.add_argument("--workers", type=int, default=1)
    load_p.add_argument("--capacity", type=int, default=12,
                        help="kept far below --sessions to force "
                             "evictions and migrations")
    load_p.add_argument("--slice-cycles", type=int, default=1200)
    load_p.add_argument("--max-cycles", type=int, default=240_000)
    load_p.add_argument("--seed", type=int, default=17)
    load_p.add_argument("--fault-every", type=int, default=3,
                        help="every Nth session gets a seeded fault plan "
                             "(0 disables)")
    load_p.add_argument("--checkpoint-interval", type=int, default=600)
    load_p.add_argument("--max-retries", type=int, default=4)
    load_p.add_argument("--serial", action="store_true",
                        help="plain in-process sessions, no fleet: the "
                             "byte-identity ground truth")
    load_p.add_argument("--output", default=None,
                        help="write the canonical artifact here instead "
                             "of stdout")
    load_p.set_defaults(func=_cmd_loadtest)

    chaos_p = sub.add_parser(
        "chaos",
        help="loadtest under a seeded service-fault storm; the artifact "
             "must still match the clean serial run byte-for-byte",
    )
    chaos_p.add_argument("--sessions", type=int, default=60)
    chaos_p.add_argument("--workers", type=int, default=1)
    chaos_p.add_argument("--capacity", type=int, default=12)
    chaos_p.add_argument("--slice-cycles", type=int, default=1200)
    chaos_p.add_argument("--max-cycles", type=int, default=240_000)
    chaos_p.add_argument("--seed", type=int, default=17,
                         help="loadtest script seed (not the storm seed)")
    chaos_p.add_argument("--fault-every", type=int, default=3)
    chaos_p.add_argument("--checkpoint-interval", type=int, default=600)
    chaos_p.add_argument("--max-retries", type=int, default=4)
    chaos_p.add_argument("--chaos-seed", type=int, default=1)
    chaos_p.add_argument("--worker-crashes", type=int,
                         default=CHAOS_TEMPLATE["worker_crashes"])
    chaos_p.add_argument("--message-drops", type=int,
                         default=CHAOS_TEMPLATE["message_drops"])
    chaos_p.add_argument("--reply-garbles", type=int,
                         default=CHAOS_TEMPLATE["reply_garbles"])
    chaos_p.add_argument("--worker-stalls", type=int,
                         default=CHAOS_TEMPLATE["worker_stalls"])
    chaos_p.add_argument("--spool-corruptions", type=int,
                         default=CHAOS_TEMPLATE["spool_corruptions"])
    chaos_p.add_argument("--spool-truncations", type=int,
                         default=CHAOS_TEMPLATE["spool_truncations"])
    chaos_p.add_argument("--first-op", type=int,
                         default=CHAOS_TEMPLATE["first_op"])
    chaos_p.add_argument("--last-op", type=int,
                         default=CHAOS_TEMPLATE["last_op"])
    chaos_p.add_argument("--first-spool", type=int,
                         default=CHAOS_TEMPLATE["first_spool"])
    chaos_p.add_argument("--last-spool", type=int,
                         default=CHAOS_TEMPLATE["last_spool"])
    chaos_p.add_argument("--checkpoint-every", type=int, default=8,
                         help="background-checkpoint a hot session every "
                              "N acknowledged slices (0 disables)")
    chaos_p.add_argument("--max-respawns", type=int, default=2,
                         help="per-slot crash budget before the slot "
                              "degrades to an inline host")
    chaos_p.add_argument("--require-counters", default=None,
                         help="comma-separated recovery counters that must "
                              "be nonzero (exit 1 otherwise)")
    chaos_p.add_argument("--output", default=None,
                         help="write the canonical artifact here instead "
                              "of stdout")
    chaos_p.set_defaults(func=_cmd_chaos)

    bench_p = sub.add_parser("bench", help="scaling + admission sweep")
    bench_p.add_argument("--workers", default="1,2,4",
                         help="comma-separated worker counts")
    bench_p.add_argument("--sessions", type=int, default=30)
    bench_p.add_argument("--capacity", type=int, default=8)
    bench_p.add_argument("--slice-cycles", type=int, default=1200)
    bench_p.add_argument("--seed", type=int, default=17)
    bench_p.add_argument("--output", default=None,
                         help="write JSON here instead of stdout")
    bench_p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
