"""Command-line driver for the service: ``python -m repro.service``.

``serve`` starts the asyncio front end over a worker fleet; ``loadtest``
replays the scripted session stream and writes the canonical-JSON
results artifact CI compares byte-for-byte across worker counts;
``bench`` runs the scaling/admission sweep and writes
BENCH_service.json-shaped output.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from .bench import run_service_bench
from .fleet import Fleet
from .frontend import Frontend
from .loadtest import ROTATION, loadtest_json, run_loadtest, summarize


def _cmd_serve(args: argparse.Namespace) -> int:
    fleet = Fleet(
        workers=args.workers,
        capacity=args.capacity,
        prewarm=[(workload, {}, None) for workload in ROTATION],
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
    )
    frontend = Frontend(fleet)

    def ready(addr) -> None:
        print(f"repro.service listening on {addr[0]}:{addr[1]}", flush=True)

    try:
        asyncio.run(frontend.serve(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        pass
    finally:
        fleet.close()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    artifact, stats = run_loadtest(
        sessions=args.sessions,
        workers=args.workers,
        capacity=args.capacity,
        slice_cycles=args.slice_cycles,
        max_cycles=args.max_cycles,
        seed=args.seed,
        fault_every=args.fault_every,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
        serial=args.serial,
    )
    seconds = time.perf_counter() - start
    text = loadtest_json(artifact)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"loadtest artifact -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    counts = summarize(artifact)
    report = dict(counts, seconds=round(seconds, 3), **stats)
    print(f"loadtest: {json.dumps(report, sort_keys=True)}", file=sys.stderr)
    # Unrecovered *faulted* sessions are measurements; a clean session
    # failing (or not verifying) is a real defect.
    clean_ok = all(
        r["verified"] for r in artifact["results"].values() if not r["faulted"]
    )
    return 0 if clean_ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    worker_counts = tuple(int(n) for n in args.workers.split(","))
    result = run_service_bench(
        worker_counts,
        sessions=args.sessions,
        capacity=args.capacity,
        slice_cycles=args.slice_cycles,
        seed=args.seed,
    )
    text = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"benchmark -> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    ok = all(row["verified"] > 0 for row in result["scaling"])
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-tenant Dorado simulation service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="asyncio front end over a fleet")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="0 picks an ephemeral port (printed on start)")
    serve_p.add_argument("--workers", type=int, default=2)
    serve_p.add_argument("--capacity", type=int, default=8,
                         help="global live-session budget (LRU beyond it)")
    serve_p.add_argument("--checkpoint-interval", type=int, default=2000)
    serve_p.add_argument("--max-retries", type=int, default=3)
    serve_p.set_defaults(func=_cmd_serve)

    load_p = sub.add_parser(
        "loadtest", help="scripted determinism/throughput harness"
    )
    load_p.add_argument("--sessions", type=int, default=60)
    load_p.add_argument("--workers", type=int, default=1)
    load_p.add_argument("--capacity", type=int, default=12,
                        help="kept far below --sessions to force "
                             "evictions and migrations")
    load_p.add_argument("--slice-cycles", type=int, default=1200)
    load_p.add_argument("--max-cycles", type=int, default=240_000)
    load_p.add_argument("--seed", type=int, default=17)
    load_p.add_argument("--fault-every", type=int, default=3,
                        help="every Nth session gets a seeded fault plan "
                             "(0 disables)")
    load_p.add_argument("--checkpoint-interval", type=int, default=600)
    load_p.add_argument("--max-retries", type=int, default=4)
    load_p.add_argument("--serial", action="store_true",
                        help="plain in-process sessions, no fleet: the "
                             "byte-identity ground truth")
    load_p.add_argument("--output", default=None,
                        help="write the canonical artifact here instead "
                             "of stdout")
    load_p.set_defaults(func=_cmd_loadtest)

    bench_p = sub.add_parser("bench", help="scaling + admission sweep")
    bench_p.add_argument("--workers", default="1,2,4",
                         help="comma-separated worker counts")
    bench_p.add_argument("--sessions", type=int, default=30)
    bench_p.add_argument("--capacity", type=int, default=8)
    bench_p.add_argument("--slice-cycles", type=int, default=1200)
    bench_p.add_argument("--seed", type=int, default=17)
    bench_p.add_argument("--output", default=None,
                         help="write JSON here instead of stdout")
    bench_p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
