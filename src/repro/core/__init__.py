"""The Dorado processor proper -- the paper's primary contribution.

Subpackage layout mirrors the machine: :mod:`microword` and
:mod:`functions` define the 34-bit microinstruction; :mod:`alu`,
:mod:`shifter`, :mod:`registers`, and :mod:`stack` are the data section;
:mod:`nextpc` and :mod:`taskpipe` are the control section; and
:mod:`processor` wires everything together into a cycle-stepped machine.
"""

from .microword import (
    ASel,
    BSel,
    Condition,
    LoadControl,
    MicroInstruction,
    NextControl,
    NextType,
)
from .functions import FF
from .processor import Processor

__all__ = [
    "ASel",
    "BSel",
    "Condition",
    "FF",
    "LoadControl",
    "MicroInstruction",
    "NextControl",
    "NextType",
    "Processor",
]
