"""The task-switching pipeline (sections 5.1-5.3, 6.2.1).

Sixteen fixed-priority tasks share the processor; device controllers
raise **wakeup** lines, a priority encoder arbitrates, and the winner's
task-specific program counter (TPC) is fetched -- all in hardware, so a
context switch costs nothing.  This module models the registers of
Figure 3:

* ``lines`` -- the raw wakeup request wires from device controllers
  (task 0's line is permanently asserted: "Task 0 requests service from
  the processor at all times, but with the lowest priority");
* ``ready`` -- the READY register: preempted tasks, plus tasks
  explicitly readied by the FF ``READY_B`` function;
* the **BESTNEXTTASK/BESTNEXTPC** latch pair, loaded by
  :meth:`arbitrate` once per cycle -- the interface between the two
  pipe stages, which is what makes a wakeup take two cycles to affect
  the running task;
* ``tpc`` -- the task-specific program counters, written every cycle
  with THISTASKNEXTPC (section 6.2.2).

The decision rule of section 6.2.1: "The NEXT bus normally gets the
larger of BESTNEXTTASK and THISTASK"; the Block bit makes NEXT get
BESTNEXTTASK unconditionally (unless the instruction is held).
"""

from __future__ import annotations

from typing import List, Tuple

from ..types import EMULATOR_TASK, NUM_TASKS


class TaskPipeline:
    """Wakeup latches, priority encoder, TPC, and the NEXT decision."""

    def __init__(self) -> None:
        self.lines = 1 << EMULATOR_TASK  # task 0 always requests service
        self.ready = 0
        self.tpc: List[int] = [0] * NUM_TASKS
        # The stage-boundary latches (BESTNEXTTASK / BESTNEXTPC).
        self.best_task = EMULATOR_TASK
        self.best_pc = 0
        self.this_task = EMULATOR_TASK

    # --- wakeup lines (driven by device controllers) ----------------------

    def set_wakeup(self, task: int) -> None:
        """Assert a device's wakeup request line."""
        self.lines |= 1 << (task & 0xF)

    def clear_wakeup(self, task: int) -> None:
        """Drop a wakeup line (task 0's can never drop)."""
        if task != EMULATOR_TASK:
            self.lines &= ~(1 << (task & 0xF))

    def wakeup_pending(self, task: int) -> bool:
        return bool(self.lines & (1 << task))

    def set_wakeup_mask(self, mask: int) -> None:
        """FF ``WAKEUP_B``: microcode-raised wakeups (test/notify aid)."""
        self.lines |= mask & 0xFFFF

    def set_ready_mask(self, mask: int) -> None:
        """FF ``READY_B``: "A task can be explicitly made ready"."""
        self.ready |= mask & 0xFFFF

    # --- the two pipe stages ----------------------------------------------

    def arbitrate(self) -> None:
        """Stage 1: latch requests, pick the highest priority, read TPC.

        Called once at the end of every machine cycle; the result sits
        in the BESTNEXTTASK/BESTNEXTPC latches and is consumed by
        :meth:`decide_next` one cycle later, giving the two-cycle
        wakeup-to-run latency of Figure 3.
        """
        requests = self.lines | self.ready
        # Highest priority = highest task number (section 5.1).
        self.best_task = requests.bit_length() - 1 if requests else EMULATOR_TASK
        self.best_pc = self.tpc[self.best_task]

    def decide_next(self, blocked: bool) -> int:
        """Stage 2: the NEXT decision at the end of an instruction.

        *blocked* is true when the executing instruction carried the
        Block bit (on an I/O task) and was not held.  Returns the task
        that owns the next cycle, and updates READY: a preempted task is
        remembered for resumption, a blocking task is forgotten, and a
        task being dispatched has its READY request satisfied (so a
        stale BESTNEXTTASK cannot re-run it after it blocks).
        """
        current = self.this_task
        if blocked:
            self.ready &= ~(1 << current)
            nxt = self.best_task
        elif self.best_task > current:
            self.ready |= 1 << current
            nxt = self.best_task
        else:
            nxt = current
        self.ready &= ~(1 << nxt)
        self.this_task = nxt
        return nxt

    # --- TPC ---------------------------------------------------------------

    def read_tpc(self, task: int) -> int:
        return self.tpc[task & 0xF]

    def write_tpc(self, task: int, value: int) -> None:
        self.tpc[task & 0xF] = value

    def snapshot(self) -> Tuple[int, int, int]:
        """(lines, ready, best_task) -- for tests and the console."""
        return (self.lines, self.ready, self.best_task)

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        return {
            "lines": self.lines,
            "ready": self.ready,
            "tpc": list(self.tpc),
            "best_task": self.best_task,
            "best_pc": self.best_pc,
            "this_task": self.this_task,
        }

    def load_state(self, state: dict) -> None:
        self.lines = state["lines"]
        self.ready = state["ready"]
        self.tpc = list(state["tpc"])
        self.best_task = state["best_task"]
        self.best_pc = state["best_pc"]
        self.this_task = state["this_task"]
