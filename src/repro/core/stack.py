"""The hardware stacks (section 6.3.3).

"STACK: a memory addressed by the STACKPTR register.  A word can be read
or written, and STACKPTR adjusted up or down, in one microinstruction.
If STACK is used in a microinstruction, it replaces any use of RM, and
the RAddress field in the microinstruction tells how much to increment
or decrement STACKPTR.  The 256 word memory is divided into four 64 word
stacks, with independent underflow and overflow checking."

STACKPTR is eight bits: the top two select a stack, the low six a word
within it.  Our one-microinstruction semantics (see DESIGN.md):

* the **read** side of the instruction sees the word at the *old*
  STACKPTR (so ``pop`` = read, delta -1);
* STACKPTR is then adjusted by the RAddress delta;
* the **write** side (LoadControl RM) stores at the *new* STACKPTR
  (so ``push`` = delta +1, write).

Overflow/underflow: a delta that carries out of the six-bit word index
(wrapping within the same stack) latches that stack's error flag, which
microcode reads through the fault register.  The hardware wraps the
pointer; so do we.
"""

from __future__ import annotations

from typing import List

from ..types import word

STACK_WORDS = 256
STACKS = 4
WORDS_PER_STACK = STACK_WORDS // STACKS


class StackUnit:
    """The 256-word stack memory, STACKPTR, and the four error flags."""

    def __init__(self) -> None:
        self.memory: List[int] = [0] * STACK_WORDS
        self.pointer = 0  # 8 bits: stack(2) | word(6)
        self.overflow: List[bool] = [False] * STACKS
        self.underflow: List[bool] = [False] * STACKS

    @property
    def stack_number(self) -> int:
        return (self.pointer >> 6) & 0x3

    @property
    def word_index(self) -> int:
        return self.pointer & 0x3F

    def write_pointer(self, value: int) -> None:
        """FF ``STACKPTR_B``: load the full 8-bit pointer."""
        self.pointer = value & 0xFF

    def read_top(self) -> int:
        """The word STACK currently addresses (the read side)."""
        return self.memory[self.pointer]

    def adjust(self, delta: int) -> None:
        """Move STACKPTR by the RAddress delta, latching errors.

        The stack-select bits are unaffected: arithmetic wraps within
        the 64-word stack, and wrap direction decides which error flag
        is set ("independent underflow and overflow checking").
        """
        old_index = self.word_index
        new_index = (old_index + delta) & 0x3F
        raw = old_index + delta
        if raw > 0x3F:
            self.overflow[self.stack_number] = True
        elif raw < 0:
            self.underflow[self.stack_number] = True
        self.pointer = (self.pointer & 0xC0) | new_index

    def write_top(self, value: int) -> None:
        """Store at the (post-adjust) STACKPTR (the write side)."""
        self.memory[self.pointer] = word(value)

    def error_flags(self) -> int:
        """Pack the eight error bits: overflow in 3:0, underflow in 7:4."""
        value = 0
        for i in range(STACKS):
            if self.overflow[i]:
                value |= 1 << i
            if self.underflow[i]:
                value |= 1 << (4 + i)
        return value

    def clear_errors(self) -> None:
        self.overflow = [False] * STACKS
        self.underflow = [False] * STACKS

    @property
    def any_error(self) -> bool:
        return any(self.overflow) or any(self.underflow)

    def select_stack(self, number: int) -> None:
        """Point STACKPTR at the base of stack *number* (setup helper)."""
        self.pointer = (number & 0x3) << 6

    def depth(self) -> int:
        """Words on the current stack (its word index)."""
        return self.word_index

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        return {
            "memory": list(self.memory),
            "pointer": self.pointer,
            "overflow": list(self.overflow),
            "underflow": list(self.underflow),
        }

    def load_state(self, state: dict) -> None:
        self.memory = list(state["memory"])
        self.pointer = state["pointer"]
        self.overflow = [bool(v) for v in state["overflow"]]
        self.underflow = [bool(v) for v in state["underflow"]]
