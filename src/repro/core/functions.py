"""The FF function catalogue.

Section 5.5: "The Dorado encodes most of its operations ... in an eight
bit function field called FF, quickly decoded at the beginning of every
microinstruction execution cycle ... FF can also serve as an eight bit
constant or as part of a jump address.  This encoding saves many bits in
the microinstruction, at the expense of allowing only one FF-specified
operation to be done in each cycle."

The 256 FF codes are divided into banks:

=============  ===========================================================
``0x00-0x07``  fixed functions (NOP and a few common ones)
``0x08-0x0F``  ``MEMBASE <- n`` for n in 0..7 (section 6.3.3: "loaded
               from FF field or from B")
``0x10-0x1F``  ``COUNT <- n`` for n in 0..15 ("loaded ... with small
               constants from FF")
``0x20-0x3F``  ``BranchPair(n)``: supplies a 5-bit even/odd pair number
               to a BRANCH, reaching all 32 pairs of the page
``0x40-0x7F``  ``JumpPage(p)``: supplies a 6-bit page number to a GOTO,
               CALL, or DISPATCH256 ("part of a jump address")
``0x80-0xFF``  fixed functions (the :class:`FF` enum)
=============  ===========================================================

When BSelect specifies a constant, FF is *data* and no function runs;
the assembler enforces that exclusivity (the section 5.5 tradeoff).
"""

from __future__ import annotations

import enum

from ..errors import EncodingError

# Bank boundaries.
MEMBASE_SMALL_BASE = 0x08
COUNT_SMALL_BASE = 0x10
BRANCH_PAIR_BASE = 0x20
JUMP_PAGE_BASE = 0x40
FIXED_BASE = 0x80


class FF(enum.IntEnum):
    """Fixed FF functions (plus the low-bank singletons)."""

    NOP = 0x00

    # --- shifter (section 6.3.4) ----------------------------------------
    SHIFTCTL_B = 0x80     #: SHIFTCTL <- B
    SHIFT_OUT = 0x81      #: RESULT <- shifter output, no mask
    SHIFT_MASKZ = 0x82    #: RESULT <- shifter output masked, zero fill
    SHIFT_MASKMD = 0x83   #: RESULT <- shifter output masked, MEMDATA fill
    READ_SHIFTCTL = 0x84  #: RESULT <- SHIFTCTL

    # --- Q and multiply/divide steps ------------------------------------
    Q_B = 0x85            #: Q <- B
    A_Q = 0x86            #: the A bus is driven from Q this cycle
    MULSTEP = 0x87        #: one multiply step (see :mod:`repro.core.alu`)
    DIVSTEP = 0x88        #: one divide step

    # --- A-bus overrides (MEMADDRESS is a copy of A, so these give
    # one-instruction operand-addressed and indirect memory references:
    # "the IFU can directly supply operand data to the processor" and
    # "memory data ... routed to a variety of destinations", section 5.8)
    A_IFUDATA = 0xB2      #: the A bus is driven from IFUDATA this cycle
    A_MD = 0xB3           #: the A bus is driven from MEMDATA this cycle

    # --- one-bit shifts of the ALU output (section 6.3.2) ---------------
    RESULT_LSH = 0x89     #: RESULT <- ALU << 1
    RESULT_RSH = 0x8A     #: RESULT <- ALU >> 1 (logical)

    # --- small registers (section 6.3.3) --------------------------------
    COUNT_B = 0x8B        #: COUNT <- B
    READ_COUNT = 0x8C     #: RESULT <- COUNT
    RBASE_B = 0x8D        #: RBASE <- B (low 4 bits)
    READ_RBASE = 0x8E     #: RESULT <- RBASE
    STACKPTR_B = 0x8F     #: STACKPTR <- B (low 8 bits)
    READ_STACKPTR = 0x90  #: RESULT <- STACKPTR
    MEMBASE_B = 0x91      #: MEMBASE <- B (low 5 bits)
    READ_MEMBASE = 0x92   #: RESULT <- MEMBASE
    ALUFM_WRITE = 0x93    #: ALUFM[ALUOp] <- B (the map is writeable)

    # --- memory system interface (section 5.8, ref [1]) -----------------
    BASE_LO_B = 0x98      #: base register[MEMBASE], low 16 bits <- B
    BASE_HI_B = 0x99      #: base register[MEMBASE], high bits <- B
    MAP_WRITE = 0x9A      #: page map[VA(A)] <- B (real page + flags)
    READ_MAP = 0x9B       #: RESULT <- page map[VA(A)]
    READ_FAULTS = 0x9C    #: RESULT <- latched fault flags, clearing them
    CACHE_FLUSH = 0x9D    #: flush/invalidate the cache line holding VA(A)
    IOFETCH = 0x9E        #: qualify this Fetch as a fast-I/O munch read
    IOSTORE = 0x9F        #: qualify this Store as a fast-I/O munch write

    # --- slow I/O system (section 5.8) -----------------------------------
    IOADDRESS_B = 0xA0    #: IOADDRESS[task] <- B
    READ_IOADDRESS = 0xA1  #: RESULT <- IOADDRESS[task]
    OUTPUT = 0xA2         #: IODATA <- B; the device at IOADDRESS accepts it
    INPUT = 0xA3          #: with BSelect=EXTB: B <- device output word
    OUTPUT_MD = 0xB1      #: IODATA <- MEMDATA directly ("memory data ...
                          #: routed to a variety of destinations
                          #: simultaneously", section 5.8); lets one
                          #: instruction output the previous fetch while
                          #: starting the next one

    # --- EXTB sources (section 6.3.2: B extended to the whole machine) --
    EXTB_MEMDATA = 0xA4   #: with BSelect=EXTB: B <- MEMDATA
    EXTB_IFUDATA = 0xA5   #: with BSelect=EXTB: B <- IFUDATA
    EXTB_CPREG = 0xA6     #: with BSelect=EXTB: B <- CPREG (console register)
    EXTB_FAULTS = 0xA7    #: with BSelect=EXTB: B <- fault flags (no clear)
    EXTB_LINK = 0xA8      #: with BSelect=EXTB: B <- LINK[task]
    EXTB_IFUPC = 0xA9     #: with BSelect=EXTB: B <- IFU macro PC (byte addr)
    EXTB_THISTASK = 0xAA  #: with BSelect=EXTB: B <- current task number

    # --- control section odds and ends (sections 6.2.3, 5.2) ------------
    LINK_B = 0xAB         #: LINK[task] <- B (computed control transfer)
    IFU_JUMP = 0xAC       #: redirect the IFU to the byte address on RESULT
    IFU_RESET = 0xAD      #: flush the IFU buffer and stop prefetching
    CPREG_B = 0xAE        #: CPREG <- B
    WAKEUP_B = 0xAF       #: raise wakeups for the task mask in B
    READY_B = 0xB0        #: READY <- READY | B ("explicitly made ready")

    # --- console/debug paths (section 6.2.3) -----------------------------
    BREAKPOINT = 0xB8     #: halt the simulation with MicrocodeCrash
    TRACE = 0xB9          #: append B to the console trace buffer
    HALT = 0xBA           #: stop the run loop (simulation convenience)
    IM_ADDR_B = 0xBB      #: console IM address latch <- B
    IM_WRITE_LO = 0xBC    #: IM[latch] bits 15:0 <- B
    IM_WRITE_MID = 0xBD   #: IM[latch] bits 31:16 <- B
    IM_WRITE_HI = 0xBE    #: IM[latch] bits 33:32 <- B
    TPC_B = 0xBF          #: TPC[B >> 12] <- B & 0xFFF (via TPIMOUT paths)
    READ_TPC = 0xC0       #: RESULT <- TPC[B >> 12]
    IM_READ_LO = 0xC1     #: RESULT <- IM[latch] bits 15:0 (diagnostics)
    IM_READ_MID = 0xC2    #: RESULT <- IM[latch] bits 31:16
    IM_READ_HI = 0xC3     #: RESULT <- IM[latch] bits 33:32


#: FF codes that drive the RESULT bus instead of the ALU output.
RESULT_SOURCES = frozenset(
    {
        FF.SHIFT_OUT,
        FF.SHIFT_MASKZ,
        FF.SHIFT_MASKMD,
        FF.READ_SHIFTCTL,
        FF.RESULT_LSH,
        FF.RESULT_RSH,
        FF.READ_COUNT,
        FF.READ_RBASE,
        FF.READ_STACKPTR,
        FF.READ_MEMBASE,
        FF.READ_MAP,
        FF.READ_FAULTS,
        FF.READ_IOADDRESS,
        FF.READ_TPC,
        FF.IM_READ_LO,
        FF.IM_READ_MID,
        FF.IM_READ_HI,
    }
)

#: FF codes valid only when BSelect = EXTB (they name the external source).
EXTB_SELECTORS = frozenset(
    {
        FF.INPUT,
        FF.EXTB_MEMDATA,
        FF.EXTB_IFUDATA,
        FF.EXTB_CPREG,
        FF.EXTB_FAULTS,
        FF.EXTB_LINK,
        FF.EXTB_IFUPC,
        FF.EXTB_THISTASK,
    }
)


def membase_small(n: int) -> int:
    """FF code for ``MEMBASE <- n`` (n in 0..7)."""
    if not 0 <= n <= 7:
        raise EncodingError(f"MEMBASE small constant {n} out of range 0..7")
    return MEMBASE_SMALL_BASE + n


def count_small(n: int) -> int:
    """FF code for ``COUNT <- n`` (n in 0..15)."""
    if not 0 <= n <= 15:
        raise EncodingError(f"COUNT small constant {n} out of range 0..15")
    return COUNT_SMALL_BASE + n


def branch_pair(n: int) -> int:
    """FF code supplying even/odd pair *n* (0..31) to a BRANCH."""
    if not 0 <= n <= 31:
        raise EncodingError(f"branch pair {n} out of range 0..31")
    return BRANCH_PAIR_BASE + n


def jump_page(p: int) -> int:
    """FF code supplying page number *p* (0..63) to a GOTO/CALL/dispatch."""
    if not 0 <= p <= 63:
        raise EncodingError(f"page number {p} out of range 0..63")
    return JUMP_PAGE_BASE + p


def is_membase_small(ff: int) -> bool:
    return MEMBASE_SMALL_BASE <= ff < COUNT_SMALL_BASE


def is_count_small(ff: int) -> bool:
    return COUNT_SMALL_BASE <= ff < BRANCH_PAIR_BASE


def is_branch_pair(ff: int) -> bool:
    return BRANCH_PAIR_BASE <= ff < JUMP_PAGE_BASE


def is_jump_page(ff: int) -> bool:
    return JUMP_PAGE_BASE <= ff < FIXED_BASE


def bank_argument(ff: int) -> int:
    """The small-integer argument carried by a banked FF code."""
    if is_membase_small(ff):
        return ff - MEMBASE_SMALL_BASE
    if is_count_small(ff):
        return ff - COUNT_SMALL_BASE
    if is_branch_pair(ff):
        return ff - BRANCH_PAIR_BASE
    if is_jump_page(ff):
        return ff - JUMP_PAGE_BASE
    raise EncodingError(f"FF {ff:#04x} is not a banked code")


def describe(ff: int) -> str:
    """Human-readable name of any FF code, for traces."""
    if is_membase_small(ff):
        return f"MEMBASE<-{bank_argument(ff)}"
    if is_count_small(ff):
        return f"COUNT<-{bank_argument(ff)}"
    if is_branch_pair(ff):
        return f"BranchPair({bank_argument(ff)})"
    if is_jump_page(ff):
        return f"JumpPage({bank_argument(ff)})"
    try:
        return FF(ff).name
    except ValueError:
        return f"FF({ff:#04x})"
