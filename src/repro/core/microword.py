"""The 34-bit Dorado microinstruction.

Section 6.3.1 of the paper gives the field widths:

=============  ====  ==============================================
Field          Bits  Purpose
=============  ====  ==============================================
RAddress        4    Addresses the register bank RM (with RBASE),
                     or encodes the stack-pointer delta for STACK
                     operations.
ALUOp           4    Selects the ALU operation via ALUFM, or
                     controls the shifter.
BSelect         3    Source for the B bus, including constants.
LoadControl     3    Controls loading of results into RM and T.
ASelect         3    Source for the A bus; starts memory references.
Block           1    Blocks an I/O task; selects a stack operation
                     for task 0.
FF              8    Catchall for specifying functions.
NextControl     8    Specifies how to compute NEXTPC.
=============  ====  ==============================================

The paper fixes the widths and the semantics but not the bit-level
encodings; the encodings chosen here are documented in DESIGN.md and
preserve every constraint the paper calls out (constant byte forms,
even/odd branch pairs, one FF operation per instruction, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import EncodingError
from ..types import BYTE_MASK

#: Total bits in a microinstruction (section 6.3.1).
MICROWORD_BITS = 34


class BSel(enum.IntEnum):
    """B-bus source (the 3-bit BSelect field).

    The four ``CONST_*`` values implement the section 5.9 constant
    scheme: FF supplies one byte, and two BSelect bits give the other
    byte's position and fill, so "most 16 bit constants can be
    specified in one microinstruction".
    """

    RM = 0        #: the addressed RM register (or STACK during a stack op)
    T = 1         #: the task-specific T register
    Q = 2         #: the multiply/divide aid
    EXTB = 3      #: an external source selected by FF (MEMDATA, IFUDATA, ...)
    CONST_LZ = 4  #: constant: FF in the low byte, high byte all zeroes
    CONST_HZ = 5  #: constant: FF in the high byte, low byte all zeroes
    CONST_LO = 6  #: constant: FF in the low byte, high byte all ones
    CONST_HO = 7  #: constant: FF in the high byte, low byte all ones

    @property
    def is_constant(self) -> bool:
        """Whether this BSelect consumes FF as constant data."""
        return self >= BSel.CONST_LZ


def constant_value(bsel: "BSel", ff: int) -> int:
    """The 16-bit constant produced by a ``CONST_*`` BSelect and FF byte."""
    ff &= BYTE_MASK
    if bsel == BSel.CONST_LZ:
        return ff
    if bsel == BSel.CONST_HZ:
        return ff << 8
    if bsel == BSel.CONST_LO:
        return 0xFF00 | ff
    if bsel == BSel.CONST_HO:
        return (ff << 8) | 0x00FF
    raise EncodingError(f"{bsel!r} is not a constant BSelect")


class ASel(enum.IntEnum):
    """A-bus source and memory-reference start (the 3-bit ASelect field).

    MEMADDRESS is a copy of the A bus (section 6.3.2), so the variants
    that start a memory reference also say what drives A.  Store data is
    taken from the B bus.
    """

    RM = 0        #: the addressed RM register (or STACK during a stack op)
    T = 1         #: the task-specific T register
    IFUDATA = 2   #: the current macroinstruction operand from the IFU
    MEMDATA = 3   #: the memory word most recently fetched by this task
    RM_FETCH = 4  #: A = RM; start a memory fetch at that address
    RM_STORE = 5  #: A = RM; store B at that address
    T_FETCH = 6   #: A = T; start a memory fetch
    T_STORE = 7   #: A = T; store B

    @property
    def starts_fetch(self) -> bool:
        return self in (ASel.RM_FETCH, ASel.T_FETCH)

    @property
    def starts_store(self) -> bool:
        return self in (ASel.RM_STORE, ASel.T_STORE)

    @property
    def starts_reference(self) -> bool:
        return self >= ASel.RM_FETCH

    @property
    def uses_memdata(self) -> bool:
        return self == ASel.MEMDATA

    @property
    def uses_ifudata(self) -> bool:
        return self == ASel.IFUDATA


class LoadControl(enum.IntEnum):
    """Result destination (the 3-bit LoadControl field)."""

    NONE = 0   #: discard RESULT (side effects only)
    T = 1      #: T <- RESULT
    RM = 2     #: RM[addressed] <- RESULT (or STACK during a stack op)
    RM_T = 3   #: both RM and T <- RESULT

    @property
    def loads_t(self) -> bool:
        return self in (LoadControl.T, LoadControl.RM_T)

    @property
    def loads_rm(self) -> bool:
        return self in (LoadControl.RM, LoadControl.RM_T)


class Condition(enum.IntEnum):
    """The eight branch conditions (section 5.5).

    A true condition ORs a one into the low bit of NEXTPC about half way
    into the instruction fetch cycle; false targets therefore live at
    even addresses and true targets at the following odd address.
    ``COUNT_NONZERO`` has the section 6.3.3 side effect: COUNT is
    decremented whenever the condition is tested.
    """

    ALU_ZERO = 0       #: ALU output == 0
    ALU_NONZERO = 1    #: ALU output != 0
    ALU_NEG = 2        #: ALU output has the sign bit set
    CARRY = 3          #: ALU carry-out
    COUNT_NONZERO = 4  #: COUNT != 0; decrements COUNT as a side effect
    R_ODD = 5          #: low bit of RESULT
    IOATN = 6          #: I/O attention line from the addressed device
    OVERFLOW = 7       #: ALU signed overflow


class NextType(enum.IntEnum):
    """Top two bits of NextControl: the instruction-sequencing type."""

    GOTO = 0    #: jump within the page (cross-page with FF JumpPage)
    BRANCH = 1  #: conditional branch to an even/odd pair
    CALL = 2    #: like GOTO, but LINK <- THISPC + 1
    MISC = 3    #: returns, dispatches, NextMacro -- see :class:`Misc`


class Misc(enum.IntEnum):
    """Payload values for ``NextType.MISC``."""

    RETURN = 0       #: NEXTPC <- LINK (and LINK <- THISPC + 1, section 6.2.3)
    NEXTMACRO = 1    #: NEXTPC from the IFU's dispatch address; holds if not ready
    DISPATCH8 = 2    #: NEXTPC <- page base + FF DispatchBase + (B & 7)
    DISPATCH256 = 3  #: NEXTPC <- 256-word region from FF + (B & 255)
    CALL_FF = 4      #: long call: NEXTPC <- FF JumpPage target, LINK <- THISPC+1
    RETURN_CALL = 5  #: coroutine swap: NEXTPC <- LINK, LINK <- THISPC + 1
    IDLE = 6         #: jump to self (used by the idle loop / testing)
    NOTIFY = 7       #: NEXTPC <- THISPC + 1, notify console (breakpoint hook)


class NextControl:
    """Helpers for packing and unpacking the 8-bit NextControl field."""

    TYPE_SHIFT = 6
    PAYLOAD_MASK = 0x3F

    @staticmethod
    def pack(kind: NextType, payload: int) -> int:
        if not 0 <= payload <= NextControl.PAYLOAD_MASK:
            raise EncodingError(f"NextControl payload {payload} does not fit in 6 bits")
        return (int(kind) << NextControl.TYPE_SHIFT) | payload

    @staticmethod
    def kind(nc: int) -> NextType:
        return NextType((nc >> NextControl.TYPE_SHIFT) & 0x3)

    @staticmethod
    def payload(nc: int) -> int:
        return nc & NextControl.PAYLOAD_MASK

    @staticmethod
    def branch(condition: Condition, pair: int) -> int:
        """A BRANCH NextControl: 3-bit condition + 3-bit in-page pair."""
        if not 0 <= pair <= 7:
            raise EncodingError(
                f"branch pair {pair} needs FF BranchPair (only pairs 0-7 fit in NextControl)"
            )
        return NextControl.pack(NextType.BRANCH, (int(condition) << 3) | pair)

    @staticmethod
    def branch_condition(nc: int) -> Condition:
        return Condition((nc >> 3) & 0x7)

    @staticmethod
    def branch_pair(nc: int) -> int:
        return nc & 0x7


# Field layout within the 34-bit word, most significant field first:
# rsel(4) aluop(4) bsel(3) lc(3) asel(3) block(1) ff(8) nc(8)
_RSEL_SHIFT = 30
_ALUOP_SHIFT = 26
_BSEL_SHIFT = 23
_LC_SHIFT = 20
_ASEL_SHIFT = 17
_BLOCK_SHIFT = 16
_FF_SHIFT = 8
_NC_SHIFT = 0


def _check(name: str, value: int, width: int) -> int:
    if not 0 <= value < (1 << width):
        raise EncodingError(f"{name}={value} does not fit in {width} bits")
    return value


@dataclass(frozen=True)
class MicroInstruction:
    """One decoded microinstruction.

    This is the architectural view; :meth:`encode` and :meth:`decode`
    round-trip through the packed 34-bit representation that lives in
    the IM chips.
    """

    rsel: int = 0
    aluop: int = 0
    bsel: BSel = BSel.RM
    lc: LoadControl = LoadControl.NONE
    asel: ASel = ASel.RM
    block: bool = False
    ff: int = 0
    nc: int = 0

    def __post_init__(self) -> None:
        _check("rsel", self.rsel, 4)
        _check("aluop", self.aluop, 4)
        _check("bsel", int(self.bsel), 3)
        _check("lc", int(self.lc), 3)
        _check("asel", int(self.asel), 3)
        _check("ff", self.ff, 8)
        _check("nc", self.nc, 8)

    def encode(self) -> int:
        """Pack into the 34-bit IM representation."""
        return (
            (self.rsel << _RSEL_SHIFT)
            | (self.aluop << _ALUOP_SHIFT)
            | (int(self.bsel) << _BSEL_SHIFT)
            | (int(self.lc) << _LC_SHIFT)
            | (int(self.asel) << _ASEL_SHIFT)
            | (int(self.block) << _BLOCK_SHIFT)
            | (self.ff << _FF_SHIFT)
            | (self.nc << _NC_SHIFT)
        )

    @staticmethod
    def decode(bits: int) -> "MicroInstruction":
        """Unpack a 34-bit IM word."""
        if not 0 <= bits < (1 << MICROWORD_BITS):
            raise EncodingError(f"microword {bits:#x} does not fit in {MICROWORD_BITS} bits")
        lc_bits = (bits >> _LC_SHIFT) & 0x7
        if lc_bits > int(LoadControl.RM_T):
            raise EncodingError(f"reserved LoadControl encoding {lc_bits}")
        return MicroInstruction(
            rsel=(bits >> _RSEL_SHIFT) & 0xF,
            aluop=(bits >> _ALUOP_SHIFT) & 0xF,
            bsel=BSel((bits >> _BSEL_SHIFT) & 0x7),
            lc=LoadControl(lc_bits),
            asel=ASel((bits >> _ASEL_SHIFT) & 0x7),
            block=bool((bits >> _BLOCK_SHIFT) & 0x1),
            ff=(bits >> _FF_SHIFT) & 0xFF,
            nc=(bits >> _NC_SHIFT) & 0xFF,
        )

    def with_nc(self, nc: int) -> "MicroInstruction":
        """A copy with a different NextControl (used by the placer)."""
        return replace(self, nc=nc)

    def with_ff(self, ff: int) -> "MicroInstruction":
        """A copy with a different FF byte (used by the placer)."""
        return replace(self, ff=ff)

    @property
    def next_type(self) -> NextType:
        return NextControl.kind(self.nc)

    @property
    def stack_delta(self) -> int:
        """The signed stack-pointer adjustment encoded in RAddress.

        During a stack operation (Block bit set on task 0), the
        RAddress field "tells how much to increment or decrement
        STACKPTR" (section 6.3.3); we interpret the 4 bits as two's
        complement, -8..+7.
        """
        return self.rsel - 16 if self.rsel & 0x8 else self.rsel

    def describe(self) -> str:
        """A one-line human-readable rendering, for traces."""
        parts = [f"r{self.rsel:X}", f"alu{self.aluop:X}", self.bsel.name, self.asel.name]
        if self.lc != LoadControl.NONE:
            parts.append(f"load={self.lc.name}")
        if self.block:
            parts.append("BLOCK")
        if self.ff:
            parts.append(f"ff={self.ff:#04x}")
        kind = self.next_type
        if kind == NextType.BRANCH:
            cond = NextControl.branch_condition(self.nc)
            parts.append(f"BR[{cond.name}]p{NextControl.branch_pair(self.nc)}")
        elif kind == NextType.MISC:
            payload = NextControl.payload(self.nc)
            parts.append(f"{Misc(payload >> 3).name}.{payload & 7}")
        else:
            parts.append(f"{kind.name}:{NextControl.payload(self.nc)}")
        return " ".join(parts)
