"""Decoded execution plans for the cycle-stepped core.

The IM is effectively immutable between console/bootstrap writes, yet
the interpretive :meth:`~repro.core.processor.Processor.step` used to
re-derive everything about a microinstruction on every cycle -- BSelect
constant-ness, ASelect reference kind, Hold relevance, NextControl type,
FF classification.  Following the cycle-accurate-simulator-generation
literature (Reshadi & Dutt, PAPERS.md), we hoist all of that out of the
cycle loop: the first time an IM address is fetched it is *compiled*
into a flat :class:`ExecutionPlan` -- plain ints and bools in
``__slots__``, with every PC-relative NEXTPC target precomputed (plans
are per-slot, so THISPC is a compile-time constant) -- and the hot loop
executes plans.

Invalidation (the paper's section 6.2.3 write paths): any IM rewrite
must drop the slot's plan.  All three write paths funnel through
``im[address] = ...`` on the processor's :class:`MicrostoreImage` --
``Console.im_write_high`` (microcode FF writes, which is also how the
:mod:`repro.asm.bootstrap` resident loader stores words), host-side
``load_image``, and direct assignments from tests or debuggers -- so the
instrumented list is the single choke point, and the console calls the
same hook explicitly for belt-and-braces coverage.

The plan encodes *static* facts only.  Dynamic state -- SHIFTCTL, ALUFM
contents, RBASE/MEMBASE, the bypass latch -- is still read at execution
time, which is what keeps the fast path observationally equivalent to
the interpretive one (``tests/test_fastpath_parity.py`` proves it
bit-identical, counters and cycle counts included).

The compiled Hold flags (``hold_fastio``, ``hold_md``,
``hold_nextmacro``) map one-to-one onto the processor's hold-cause
codes (:data:`~repro.core.counters.HOLD_STORAGE` /
:data:`~repro.core.counters.HOLD_MD` /
:data:`~repro.core.counters.HOLD_IFU`), checked in the same priority
order on both cycle paths, so hold-cause attribution is parity-safe.
Instrumentation stays off this fast path entirely: the plan loop's only
concession to observers is the one ``trace_hook is not None`` check it
has always had, and the instrumentation bus compiles down to exactly
that slot.
"""

from __future__ import annotations

from typing import Callable

from . import functions
from .functions import FF
from .microword import (
    ASel,
    BSel,
    MicroInstruction,
    Misc,
    NextControl,
    NextType,
    constant_value,
)

# --- B-bus source codes (plan.b_kind) ---------------------------------------
B_CONST = 0
B_RM = 1
B_T = 2
B_Q = 3
B_EXTB = 4

# --- A-bus source codes (plan.a_kind) ---------------------------------------
A_RM = 0
A_T = 1
A_IFU = 2      #: IFUDATA (consumes the operand on commit)
A_MD = 3       #: MEMDATA as of this instruction's operand fetch
A_Q = 4

# --- EXTB source codes (plan.extb_kind); 0 = take the generic slow path ----
EXTB_OTHER = 0   #: INPUT, FAULTS, or a non-EXTB FF (raises), via _read_extb
EXTB_MD = 1
EXTB_IFUDATA = 2
EXTB_CPREG = 3
EXTB_LINK = 4
EXTB_IFUPC = 5
EXTB_THISTASK = 6

# --- memory-reference kinds (plan.ref_kind) ---------------------------------
REF_NONE = 0
REF_FETCH = 1
REF_STORE = 2
REF_IOFETCH = 3
REF_IOSTORE = 4
REF_BAD = 5      #: IOFETCH/IOSTORE with a mismatched ASelect: raise via
                 #: the interpretive _start_reference for the exact error

# --- RESULT-override kinds (plan.res_kind) ----------------------------------
RES_NONE = 0
RES_SHIFT_OUT = 1
RES_SHIFT_MASKZ = 2
RES_SHIFT_MASKMD = 3
RES_LSH = 4
RES_RSH = 5
RES_OTHER = 6    #: the READ_* family, via the interpretive _result_override

# --- NEXTPC kinds (plan.next_kind) ------------------------------------------
NEXT_STATIC = 0      #: GOTO / IDLE: next_target is the whole answer
NEXT_BRANCH = 1      #: next_target (false) | condition
NEXT_CALL = 2        #: LINK <- link_value; jump to next_target (CALL/CALL_FF)
NEXT_RETURN = 3      #: swap LINK and NEXTPC (RETURN / RETURN_CALL)
NEXT_MACRO = 4       #: take the IFU dispatch
NEXT_DISPATCH8 = 5   #: (next_target + (B & 7)) & im_mask
NEXT_DISPATCH256 = 6  #: (next_target + (B & 0xFF)) & im_mask
NEXT_NOTIFY = 7      #: next_target, plus a console notification
NEXT_BAD = 8         #: mis-encoded: re-run ControlSection.compute to raise

#: FF codes that have no side effect in _apply_ff (beyond what the
#: operand-read / RESULT-override / NEXTPC stages already did), so the
#: fast path can skip the call entirely.
_NO_EFFECT_FFS = (
    frozenset(
        {
            int(FF.NOP),
            int(FF.A_Q),
            int(FF.A_IFUDATA),
            int(FF.A_MD),
            int(FF.IOFETCH),
            int(FF.IOSTORE),
        }
    )
    | frozenset(range(functions.BRANCH_PAIR_BASE, functions.FIXED_BASE))
    | frozenset(int(ff) for ff in functions.RESULT_SOURCES)
    | frozenset(int(ff) for ff in functions.EXTB_SELECTORS)
)

_RES_KINDS = {
    int(FF.SHIFT_OUT): RES_SHIFT_OUT,
    int(FF.SHIFT_MASKZ): RES_SHIFT_MASKZ,
    int(FF.SHIFT_MASKMD): RES_SHIFT_MASKMD,
    int(FF.RESULT_LSH): RES_LSH,
    int(FF.RESULT_RSH): RES_RSH,
}

_EXTB_KINDS = {
    int(FF.EXTB_MEMDATA): EXTB_MD,
    int(FF.EXTB_IFUDATA): EXTB_IFUDATA,
    int(FF.EXTB_CPREG): EXTB_CPREG,
    int(FF.EXTB_LINK): EXTB_LINK,
    int(FF.EXTB_IFUPC): EXTB_IFUPC,
    int(FF.EXTB_THISTASK): EXTB_THISTASK,
}

#: FF codes whose use of MEMDATA makes the instruction Hold until the
#: task's reference completes (mirrors Processor._check_hold).
_MD_HOLD_FFS = frozenset(
    {int(FF.SHIFT_MASKMD), int(FF.EXTB_MEMDATA), int(FF.OUTPUT_MD), int(FF.A_MD)}
)


class ExecutionPlan:
    """One IM slot, compiled: flat fields the fast path reads directly."""

    __slots__ = (
        "inst",
        "ff",
        "ff_is_function",
        "ff_effect",
        "aluop",
        "rsel",
        "block",
        "stack_delta",
        "loads_rm",
        "loads_t",
        "hold_none",
        "hold_fastio",
        "hold_md",
        "hold_nextmacro",
        "b_kind",
        "b_const",
        "extb_kind",
        "a_kind",
        "consumes_ifu",
        "ref_kind",
        "cond",
        "res_kind",
        "next_kind",
        "next_target",
        "link_value",
    )

    inst: MicroInstruction
    ff: int
    ff_is_function: bool
    ff_effect: bool
    aluop: int
    rsel: int
    block: bool
    stack_delta: int
    loads_rm: bool
    loads_t: bool
    hold_none: bool
    hold_fastio: bool
    hold_md: bool
    hold_nextmacro: bool
    b_kind: int
    b_const: int
    extb_kind: int
    a_kind: int
    consumes_ifu: bool
    ref_kind: int
    cond: int
    res_kind: int
    next_kind: int
    next_target: int
    link_value: int


def compile_plan(inst: MicroInstruction, pc: int, control) -> ExecutionPlan:
    """Flatten *inst* (living at IM address *pc*) into an ExecutionPlan.

    *control* is the machine's :class:`~repro.core.nextpc.ControlSection`;
    only its static page geometry is read here.
    """
    plan = ExecutionPlan()
    plan.inst = inst
    ff = plan.ff = inst.ff
    bsel = inst.bsel
    asel = inst.asel
    ff_is_function = plan.ff_is_function = not bsel.is_constant
    plan.aluop = inst.aluop
    plan.rsel = inst.rsel
    plan.block = inst.block
    plan.stack_delta = inst.stack_delta
    lc = inst.lc
    plan.loads_rm = lc.loads_rm
    plan.loads_t = lc.loads_t

    # --- B bus.
    plan.b_const = 0
    plan.extb_kind = EXTB_OTHER
    if bsel.is_constant:
        plan.b_kind = B_CONST
        plan.b_const = constant_value(bsel, ff)
    elif bsel == BSel.RM:
        plan.b_kind = B_RM
    elif bsel == BSel.T:
        plan.b_kind = B_T
    elif bsel == BSel.Q:
        plan.b_kind = B_Q
    else:
        plan.b_kind = B_EXTB
        plan.extb_kind = _EXTB_KINDS.get(ff, EXTB_OTHER)

    # --- A bus (FF overrides first, as in _execute).
    if ff_is_function and ff == FF.A_Q:
        plan.a_kind = A_Q
    elif ff_is_function and ff == FF.A_IFUDATA:
        plan.a_kind = A_IFU
    elif ff_is_function and ff == FF.A_MD:
        plan.a_kind = A_MD
    elif asel in (ASel.RM, ASel.RM_FETCH, ASel.RM_STORE):
        plan.a_kind = A_RM
    elif asel in (ASel.T, ASel.T_FETCH, ASel.T_STORE):
        plan.a_kind = A_T
    elif asel == ASel.IFUDATA:
        plan.a_kind = A_IFU
    else:
        plan.a_kind = A_MD

    plan.consumes_ifu = plan.a_kind == A_IFU or (
        plan.b_kind == B_EXTB and ff == FF.EXTB_IFUDATA
    )

    # --- memory-reference start.
    is_fast_io = ff_is_function and ff in (FF.IOFETCH, FF.IOSTORE)
    if not asel.starts_reference:
        plan.ref_kind = REF_NONE
    elif is_fast_io:
        if ff == FF.IOFETCH:
            plan.ref_kind = REF_IOFETCH if asel.starts_fetch else REF_BAD
        else:
            plan.ref_kind = REF_IOSTORE if asel.starts_store else REF_BAD
    elif asel.starts_fetch:
        plan.ref_kind = REF_FETCH
    else:
        plan.ref_kind = REF_STORE

    # --- Hold relevance (mirrors _check_hold).
    plan.hold_fastio = asel.starts_reference and is_fast_io
    plan.hold_md = asel.uses_memdata or (ff_is_function and ff in _MD_HOLD_FFS)
    nc_kind = NextControl.kind(inst.nc)
    payload = NextControl.payload(inst.nc)
    plan.hold_nextmacro = (
        nc_kind == NextType.MISC and Misc(payload >> 3) == Misc.NEXTMACRO
    )
    plan.hold_none = not (plan.hold_fastio or plan.hold_md or plan.hold_nextmacro)

    # --- late branch condition.
    plan.cond = (
        int(NextControl.branch_condition(inst.nc))
        if nc_kind == NextType.BRANCH
        else -1
    )

    # --- RESULT override.
    plan.res_kind = RES_NONE
    if ff_is_function:
        kind = _RES_KINDS.get(ff)
        if kind is not None:
            plan.res_kind = kind
        elif ff in functions.RESULT_SOURCES:
            plan.res_kind = RES_OTHER

    # --- FF side effect.
    plan.ff_effect = ff_is_function and ff not in _NO_EFFECT_FFS

    # --- NEXTPC (THISPC is static here, so precompute every target).
    page_size = control.page_size
    im_mask = control.im_mask
    page_base = pc & ~(page_size - 1)
    plan.next_target = 0
    plan.link_value = (pc + 1) & im_mask

    def goto_target() -> int:
        if ff_is_function and functions.is_jump_page(ff):
            page = functions.bank_argument(ff)
            return ((page * page_size) | (payload & (page_size - 1))) & im_mask
        return page_base | (payload & (page_size - 1))

    if nc_kind == NextType.GOTO:
        plan.next_kind = NEXT_STATIC
        plan.next_target = goto_target()
    elif nc_kind == NextType.CALL:
        plan.next_kind = NEXT_CALL
        plan.next_target = goto_target()
    elif nc_kind == NextType.BRANCH:
        if ff_is_function and functions.is_branch_pair(ff):
            pair = functions.bank_argument(ff)
        else:
            pair = NextControl.branch_pair(inst.nc)
        plan.next_kind = NEXT_BRANCH
        plan.next_target = page_base + pair * 2
    else:  # MISC
        code = Misc(payload >> 3)
        arg = payload & 0x7
        has_jump_page = ff_is_function and functions.is_jump_page(ff)
        if code in (Misc.RETURN, Misc.RETURN_CALL):
            plan.next_kind = NEXT_RETURN
        elif code == Misc.NEXTMACRO:
            plan.next_kind = NEXT_MACRO
        elif code == Misc.DISPATCH8:
            plan.next_kind = NEXT_DISPATCH8
            plan.next_target = page_base + arg * 8
        elif code == Misc.DISPATCH256:
            if has_jump_page:
                plan.next_kind = NEXT_DISPATCH256
                plan.next_target = (functions.bank_argument(ff) * page_size) & ~0xFF
            else:
                plan.next_kind = NEXT_BAD
        elif code == Misc.CALL_FF:
            if has_jump_page:
                plan.next_kind = NEXT_CALL
                page = functions.bank_argument(ff)
                plan.next_target = (
                    (page * page_size) | (arg & (page_size - 1))
                ) & im_mask
            else:
                plan.next_kind = NEXT_BAD
        elif code == Misc.IDLE:
            plan.next_kind = NEXT_STATIC
            plan.next_target = pc
        else:  # NOTIFY
            plan.next_kind = NEXT_NOTIFY
            plan.next_target = (pc + 1) & im_mask

    return plan


class MicrostoreImage(list):
    """The IM word array, instrumented so writes invalidate plans.

    Every IM write path -- :meth:`Console.im_write_high`, host-side
    ``load_image``, the bootstrap loader's FF writes, and direct
    ``cpu.im[addr] = inst`` pokes from tests and debuggers -- ends in a
    ``__setitem__`` here, which drops the corresponding execution plan.
    """

    def __init__(self, size: int, on_write: Callable[[object], None]) -> None:
        super().__init__([None] * size)
        self._on_write = on_write

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._on_write(index)
