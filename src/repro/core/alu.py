"""The 16-bit ALU and the ALUFM operation map.

Section 6.3.3: "ALUFM: a 16 word memory which maps the four-bit ALUOp
field into the six bits required to control the ALU."  We model the six
control bits as a function selector plus a carry-in selector, and keep
the map writeable (FF ``ALUFM_WRITE``) exactly as the hardware does.

The ALU produces, besides the 16-bit output, the carry-out, signed
overflow, zero, and negative indications that feed the branch
conditions; carry-out is also latched per task so multi-precision
arithmetic can use ``CarryIn.SAVED``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import EncodingError
from ..types import WORD_MASK, bit, word


class AluFunc(enum.IntEnum):
    """ALU function (4 of the 6 ALUFM control bits)."""

    A_PLUS_B = 0
    A_MINUS_B = 1
    B_MINUS_A = 2
    A_AND_B = 3
    A_OR_B = 4
    A_XOR_B = 5
    A_ONLY = 6
    B_ONLY = 7
    NOT_B = 8
    A_PLUS_1 = 9
    A_MINUS_1 = 10
    A_AND_NOT_B = 11
    ZERO = 12
    B_PLUS_1 = 13
    NOT_A = 14
    A_OR_NOT_B = 15


class CarryIn(enum.IntEnum):
    """Carry-in selector (the remaining 2 ALUFM control bits)."""

    ZERO = 0
    ONE = 1
    SAVED = 2  #: the task's latched carry-out from its previous ALU op


@dataclass(frozen=True)
class AluControl:
    """The six bits of ALU control stored in one ALUFM word."""

    func: AluFunc
    carry_in: CarryIn = CarryIn.ZERO

    def encode(self) -> int:
        """Pack into the 6-bit ALUFM word (function in the low 4 bits)."""
        return int(self.func) | (int(self.carry_in) << 4)

    @staticmethod
    def decode(bits: int) -> "AluControl":
        if not 0 <= bits < 64:
            raise EncodingError(f"ALUFM word {bits:#x} does not fit in 6 bits")
        carry = (bits >> 4) & 0x3
        if carry == 3:
            carry = int(CarryIn.SAVED)
        return AluControl(AluFunc(bits & 0xF), CarryIn(carry))


@dataclass(frozen=True)
class AluResult:
    """Everything the ALU reports for one operation."""

    value: int
    carry: bool
    overflow: bool
    #: Whether the adder produced this result.  Only arithmetic
    #: operations latch the per-task saved carry; logical operations
    #: leave it alone, so multi-precision sequences survive interleaved
    #: register moves (section 6.3.3's COUNT/Q-style idioms).
    arithmetic: bool = True

    @property
    def zero(self) -> bool:
        return self.value == 0

    @property
    def negative(self) -> bool:
        return bool(self.value & 0x8000)


#: The standard ALUFM contents loaded at machine bootstrap.  Microcode
#: names operations by ALUFM index; these cover the paper's common cases
#: (add, subtract, logicals, pass-throughs, increments, and the
#: carry-linked forms for multi-precision arithmetic).
STANDARD_ALUFM = [
    AluControl(AluFunc.A_PLUS_B),                   # 0  A+B
    AluControl(AluFunc.A_MINUS_B),                  # 1  A-B
    AluControl(AluFunc.B_MINUS_A),                  # 2  B-A
    AluControl(AluFunc.A_AND_B),                    # 3  A and B
    AluControl(AluFunc.A_OR_B),                     # 4  A or B
    AluControl(AluFunc.A_XOR_B),                    # 5  A xor B
    AluControl(AluFunc.A_ONLY),                     # 6  A
    AluControl(AluFunc.B_ONLY),                     # 7  B
    AluControl(AluFunc.NOT_B),                      # 8  not B
    AluControl(AluFunc.A_PLUS_1),                   # 9  A+1
    AluControl(AluFunc.A_MINUS_1),                  # 10 A-1
    AluControl(AluFunc.A_PLUS_B, CarryIn.SAVED),    # 11 A+B+saved carry
    AluControl(AluFunc.A_MINUS_B, CarryIn.SAVED),   # 12 A-B-1+saved carry
    AluControl(AluFunc.A_AND_NOT_B),                # 13 A and not B
    AluControl(AluFunc.ZERO),                       # 14 0
    AluControl(AluFunc.B_PLUS_1),                   # 15 B+1
]

#: Symbolic names for the standard ALUFM slots, used by the assembler.
STANDARD_OPS = {
    "ADD": 0,
    "SUB": 1,
    "RSUB": 2,
    "AND": 3,
    "OR": 4,
    "XOR": 5,
    "A": 6,
    "B": 7,
    "NOTB": 8,
    "INC": 9,
    "DEC": 10,
    "ADDC": 11,
    "SUBC": 12,
    "ANDNOT": 13,
    "ZERO": 14,
    "BINC": 15,
}


def _adder(a: int, b: int, carry_in: int) -> AluResult:
    total = a + b + carry_in
    value = total & WORD_MASK
    carry = total > WORD_MASK
    overflow = bit(a, 15) == bit(b, 15) and bit(value, 15) != bit(a, 15)
    return AluResult(value, carry, overflow, arithmetic=True)


def compute(control: AluControl, a: int, b: int, saved_carry: bool) -> AluResult:
    """Run one ALU operation on 16-bit operands.

    Subtraction is implemented, as in the hardware, by adding the one's
    complement with a carry-in of one; ``CarryIn.SAVED`` substitutes the
    task's latched carry for the constant, which makes slot 12
    (``A-B-1+carry``) the correct low-to-high multi-precision subtract.
    """
    a = word(a)
    b = word(b)
    func = control.func
    if control.carry_in == CarryIn.SAVED:
        cin = 1 if saved_carry else 0
    else:
        cin = int(control.carry_in)

    if func == AluFunc.A_PLUS_B:
        return _adder(a, b, cin)
    if func == AluFunc.A_MINUS_B:
        # A + not B + 1; SAVED replaces the +1 for multi-precision.
        borrow_cin = cin if control.carry_in == CarryIn.SAVED else 1
        return _adder(a, (~b) & WORD_MASK, borrow_cin)
    if func == AluFunc.B_MINUS_A:
        return _adder(b, (~a) & WORD_MASK, 1)
    if func == AluFunc.A_PLUS_1:
        return _adder(a, 0, 1)
    if func == AluFunc.A_MINUS_1:
        return _adder(a, WORD_MASK, 0)
    if func == AluFunc.B_PLUS_1:
        return _adder(b, 0, 1)

    # Logical operations: no carry or overflow.
    if func == AluFunc.A_AND_B:
        return AluResult(a & b, False, False, arithmetic=False)
    if func == AluFunc.A_OR_B:
        return AluResult(a | b, False, False, arithmetic=False)
    if func == AluFunc.A_XOR_B:
        return AluResult(a ^ b, False, False, arithmetic=False)
    if func == AluFunc.A_ONLY:
        return AluResult(a, False, False, arithmetic=False)
    if func == AluFunc.B_ONLY:
        return AluResult(b, False, False, arithmetic=False)
    if func == AluFunc.NOT_B:
        return AluResult((~b) & WORD_MASK, False, False, arithmetic=False)
    if func == AluFunc.NOT_A:
        return AluResult((~a) & WORD_MASK, False, False, arithmetic=False)
    if func == AluFunc.A_AND_NOT_B:
        return AluResult(a & ~b & WORD_MASK, False, False, arithmetic=False)
    if func == AluFunc.A_OR_NOT_B:
        return AluResult((a | (~b & WORD_MASK)) & WORD_MASK, False, False, arithmetic=False)
    if func == AluFunc.ZERO:
        return AluResult(0, False, False, arithmetic=False)
    raise EncodingError(f"unknown ALU function {func!r}")


def _fast_op(control: AluControl):
    """Compile one ALUFM entry into a direct-dispatch closure.

    The closure takes ``(a, b, saved_carry)`` and returns the tuple
    ``(value, carry, overflow, arithmetic)`` -- the same facts as
    :class:`AluResult`, without constructing one per cycle.  The
    execution-plan fast path calls these; :func:`compute` remains the
    reference implementation and the differential suite holds the two
    to identical results.
    """
    func = control.func
    mode = control.carry_in

    def adder_pair(lhs_of, rhs_of, cin_of):
        def op(a, b, saved_carry):
            a &= WORD_MASK
            b &= WORD_MASK
            x = lhs_of(a, b)
            y = rhs_of(a, b)
            total = x + y + cin_of(saved_carry)
            value = total & WORD_MASK
            x15 = (x >> 15) & 1
            overflow = x15 == (y >> 15) & 1 and (value >> 15) & 1 != x15
            return value, total > WORD_MASK, overflow, True
        return op

    if mode == CarryIn.SAVED:
        cin = lambda saved: 1 if saved else 0
    else:
        constant_cin = int(mode)
        cin = lambda saved: constant_cin

    if func == AluFunc.A_PLUS_B:
        return adder_pair(lambda a, b: a, lambda a, b: b, cin)
    if func == AluFunc.A_MINUS_B:
        # A + not B + 1; SAVED replaces the +1 for multi-precision.
        borrow = cin if mode == CarryIn.SAVED else (lambda saved: 1)
        return adder_pair(lambda a, b: a, lambda a, b: (~b) & WORD_MASK, borrow)
    if func == AluFunc.B_MINUS_A:
        return adder_pair(lambda a, b: b, lambda a, b: (~a) & WORD_MASK,
                          lambda saved: 1)
    if func == AluFunc.A_PLUS_1:
        return adder_pair(lambda a, b: a, lambda a, b: 0, lambda saved: 1)
    if func == AluFunc.A_MINUS_1:
        return adder_pair(lambda a, b: a, lambda a, b: WORD_MASK, lambda saved: 0)
    if func == AluFunc.B_PLUS_1:
        return adder_pair(lambda a, b: b, lambda a, b: 0, lambda saved: 1)

    logical = {
        AluFunc.A_AND_B: lambda a, b: a & b,
        AluFunc.A_OR_B: lambda a, b: a | b,
        AluFunc.A_XOR_B: lambda a, b: a ^ b,
        AluFunc.A_ONLY: lambda a, b: a,
        AluFunc.B_ONLY: lambda a, b: b,
        AluFunc.NOT_B: lambda a, b: (~b) & WORD_MASK,
        AluFunc.NOT_A: lambda a, b: (~a) & WORD_MASK,
        AluFunc.A_AND_NOT_B: lambda a, b: a & ~b & WORD_MASK,
        AluFunc.A_OR_NOT_B: lambda a, b: (a | (~b & WORD_MASK)) & WORD_MASK,
        AluFunc.ZERO: lambda a, b: 0,
    }[func]

    def op(a, b, saved_carry):
        return logical(a & WORD_MASK, b & WORD_MASK), False, False, False

    return op


class Alu:
    """The ALU together with its writeable ALUFM map."""

    def __init__(self) -> None:
        self._alufm: List[AluControl] = list(STANDARD_ALUFM)
        #: Per-slot direct-dispatch closures, kept in lockstep with the
        #: map; the processor's plan fast path indexes this list.
        self.fast_ops = [_fast_op(c) for c in self._alufm]

    def control(self, aluop: int) -> AluControl:
        """The ALUFM entry selected by a 4-bit ALUOp field."""
        return self._alufm[aluop & 0xF]

    def write_alufm(self, aluop: int, bits: int) -> None:
        """FF ``ALUFM_WRITE``: replace an ALUFM word (low 6 bits of B)."""
        control = AluControl.decode(bits & 0x3F)
        self._alufm[aluop & 0xF] = control
        self.fast_ops[aluop & 0xF] = _fast_op(control)

    def read_alufm(self, aluop: int) -> int:
        return self._alufm[aluop & 0xF].encode()

    def run(self, aluop: int, a: int, b: int, saved_carry: bool) -> AluResult:
        """Execute the operation named by ALUOp on operands A and B."""
        return compute(self.control(aluop), a, b, saved_carry)

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """The ALUFM map as its 6-bit encodings; ``fast_ops`` is derived."""
        return {"alufm": [c.encode() for c in self._alufm]}

    def load_state(self, state: dict) -> None:
        self._alufm = [AluControl.decode(bits) for bits in state["alufm"]]
        self.fast_ops = [_fast_op(c) for c in self._alufm]
