"""The data-section register file (section 6.3.3).

Two kinds of state live here:

* **Shared registers** -- RM (256 general-purpose words addressed by
  RBASE + RAddress), COUNT, Q, SHIFTCTL, RBASE, STACKPTR, MEMBASE.
  These belong to whatever task is running; the paper notes that COUNT
  and Q "are normally used only by task 0" but can be borrowed if
  saved and restored.

* **Task-specific registers** -- T, IOADDRESS, RBASE, MEMBASE, the saved
  ALU carry, and (in the control section) TPC and LINK.  They are
  implemented, as in the hardware, as small memories indexed by task
  number, which is what makes a task switch free of save/restore work
  (section 5.3).  RBASE and MEMBASE are task-specific so each device
  controller owns a 16-register slice of RM and its own address base
  without save/restore, which the shared-processor design requires.
"""

from __future__ import annotations

from typing import List

from ..types import NUM_TASKS, WORD_MASK, word

RM_SIZE = 256


class RegisterFile:
    """All data-section registers except the STACK memory."""

    def __init__(self) -> None:
        self.rm: List[int] = [0] * RM_SIZE
        self.t: List[int] = [0] * NUM_TASKS
        self.ioaddress: List[int] = [0] * NUM_TASKS
        self.saved_carry: List[bool] = [False] * NUM_TASKS
        self.rbase: List[int] = [0] * NUM_TASKS
        self.membase: List[int] = [0] * NUM_TASKS
        self.count = 0
        self.q = 0
        self.shiftctl = 0

    # --- RM addressing ---------------------------------------------------

    def rm_address(self, task: int, rsel: int) -> int:
        """Full 8-bit RM address: RBASE supplies the high four bits.

        "RM addressing requires eight bits.  Four come from the RAddress
        field in the microword, and the other four are supplied from
        RBASE." (section 6.3.3)
        """
        return ((self.rbase[task & 0xF] & 0xF) << 4) | (rsel & 0xF)

    def read_rm(self, task: int, rsel: int) -> int:
        return self.rm[self.rm_address(task, rsel)]

    def write_rm(self, task: int, rsel: int, value: int) -> None:
        self.rm[self.rm_address(task, rsel)] = word(value)

    def read_rm_absolute(self, address: int) -> int:
        """Console/debug access by full 8-bit address."""
        return self.rm[address & 0xFF]

    def write_rm_absolute(self, address: int, value: int) -> None:
        self.rm[address & 0xFF] = word(value)

    # --- task-specific registers ------------------------------------------

    def read_t(self, task: int) -> int:
        return self.t[task & 0xF]

    def write_t(self, task: int, value: int) -> None:
        self.t[task & 0xF] = word(value)

    def read_ioaddress(self, task: int) -> int:
        return self.ioaddress[task & 0xF]

    def write_ioaddress(self, task: int, value: int) -> None:
        self.ioaddress[task & 0xF] = word(value)

    # --- small shared registers --------------------------------------------

    def write_count(self, value: int) -> None:
        self.count = word(value)

    def decrement_count(self) -> None:
        """The COUNT_NONZERO side effect (section 6.3.3)."""
        self.count = (self.count - 1) & WORD_MASK

    def write_q(self, value: int) -> None:
        self.q = word(value)

    def write_shiftctl(self, value: int) -> None:
        self.shiftctl = word(value)

    def read_rbase(self, task: int) -> int:
        return self.rbase[task & 0xF]

    def write_rbase(self, task: int, value: int) -> None:
        self.rbase[task & 0xF] = value & 0xF

    def read_membase(self, task: int) -> int:
        return self.membase[task & 0xF]

    def write_membase(self, task: int, value: int) -> None:
        self.membase[task & 0xF] = value & 0x1F

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Every data-section register, as plain data (no aliasing)."""
        return {
            "rm": list(self.rm),
            "t": list(self.t),
            "ioaddress": list(self.ioaddress),
            "saved_carry": list(self.saved_carry),
            "rbase": list(self.rbase),
            "membase": list(self.membase),
            "count": self.count,
            "q": self.q,
            "shiftctl": self.shiftctl,
        }

    def load_state(self, state: dict) -> None:
        self.rm = list(state["rm"])
        self.t = list(state["t"])
        self.ioaddress = list(state["ioaddress"])
        self.saved_carry = [bool(v) for v in state["saved_carry"]]
        self.rbase = list(state["rbase"])
        self.membase = list(state["membase"])
        self.count = state["count"]
        self.q = state["q"]
        self.shiftctl = state["shiftctl"]
