"""The Dorado processor: one object, one ``step()`` per 60 ns cycle.

This wires the data section (ALU, shifter, RM/T/STACK, small registers),
the control section (NEXTPC, LINK, the task pipeline), the memory
system, the IFU, and the I/O device models into the synchronous machine
of the paper.  The step order inside a cycle follows Figures 2 and 3:

1. fetch the microinstruction at THISTASK's PC;
2. evaluate **Hold** (section 5.7) -- a held instruction becomes
   "no-operation, jump to self" but every clock keeps running;
3. if not held, execute: operand reads (through the **bypass** network,
   section 5.6), ALU/shifter, memory-reference start, late branch
   conditions, FF side effects, NEXTPC;
4. write TPC, make the NEXT decision (Block / preemption), publish NEXT
   to device controllers;
5. tick the devices, memory pipeline, and IFU;
6. run stage 1 of the task pipeline (arbitrate wakeups) for next cycle.

Register writeback is modelled with a one-instruction-deep pending
latch: the paper's Model 1 bypasses RESULT into the operand muxes, so an
instruction normally sees its predecessor's results; with
``config.bypass_enabled`` False the latch is not consulted and reads one
instruction deep return stale data -- the Model 0 behaviour whose
"subtle bugs and significant loss of performance" section 5.6 recounts.

Two implementations of the cycle coexist:

* :meth:`Processor._step_interp` -- the interpretive reference, which
  re-decodes the microword's fields every cycle; and
* :meth:`Processor._step_plan` -- the fast path, which executes
  per-slot :class:`~repro.core.plancache.ExecutionPlan` objects compiled
  on first fetch and invalidated on IM writes (DESIGN.md section 5).

``config.plan_cache_enabled`` selects between them; they are
bit-identical in architectural state, counters, and cycle counts, which
``tests/test_fastpath_parity.py`` enforces differentially.

Observability hangs off one slot: both cycle implementations end with a
single ``trace_hook is None`` check, and the instrumentation bus
(:attr:`Processor.instruments`, DESIGN.md section 5.3) compiles any
number of named subscribers -- tracers, profilers, fault listeners --
into that hook, restoring ``None`` when the last one detaches.  Held
cycles are attributed by cause (storage busy / MEMDATA wait / IFU wait)
in :class:`~repro.core.counters.Counters.hold_causes`, identically on
both paths.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

from ..config import MachineConfig, PRODUCTION
from ..errors import DeviceError, EncodingError, HoldTimeout, MicrocodeCrash
from ..mem.pipeline import MemorySystem
from ..ifu.ifu import Ifu
from ..types import EMULATOR_TASK, word
from . import functions
from .alu import Alu
from .console import Console
from .counters import (
    HOLD_CAUSE_NAMES, HOLD_IFU, HOLD_MD, HOLD_NONE, HOLD_STORAGE, Counters,
)
from .functions import FF
from .microword import (
    ASel,
    BSel,
    Condition,
    LoadControl,
    MicroInstruction,
    Misc,
    NextControl,
    NextType,
    constant_value,
)
from .nextpc import ControlSection, NextOutcome
from .plancache import (
    A_IFU,
    A_MD,
    A_Q,
    A_RM,
    A_T,
    B_CONST,
    B_Q,
    B_RM,
    B_T,
    EXTB_CPREG,
    EXTB_IFUDATA,
    EXTB_IFUPC,
    EXTB_LINK,
    EXTB_MD,
    EXTB_THISTASK,
    NEXT_BRANCH,
    NEXT_CALL,
    NEXT_DISPATCH8,
    NEXT_DISPATCH256,
    NEXT_MACRO,
    NEXT_NOTIFY,
    NEXT_RETURN,
    NEXT_STATIC,
    REF_FETCH,
    REF_IOFETCH,
    REF_IOSTORE,
    REF_STORE,
    RES_LSH,
    RES_RSH,
    RES_SHIFT_MASKMD,
    RES_SHIFT_MASKZ,
    RES_SHIFT_OUT,
    ExecutionPlan,
    MicrostoreImage,
    compile_plan,
)
from .registers import RegisterFile
from .tracecache import TraceCache
from .shifter import ShiftControl, shift, shift_masked
from .stack import StackUnit
from .taskpipe import TaskPipeline

#: Key space of the bypass latch (``Processor._pending``): RM addresses
#: are their own 0..255 keys; task *t*'s T register is ``T_KEY_BASE + t``.
T_KEY_BASE = 256

#: Consecutive held cycles after which the simulator declares livelock.
HOLD_LIMIT = 100_000

# Fault bits merged into the FF READ_FAULTS / EXTB_FAULTS word.
FAULT_STACK_SHIFT = 3  # stack error byte sits above the memory fault bits


class Processor:
    """A complete simulated Dorado."""

    def __init__(self, config: MachineConfig = PRODUCTION) -> None:
        self.config = config
        self.counters = Counters()
        self.regs = RegisterFile()
        self.stack = StackUnit()
        self.alu = Alu()
        self.pipe = TaskPipeline()
        self.control = ControlSection(config)
        self.memory = MemorySystem(config, self.counters)
        self.ifu = Ifu(self.memory, decode_cycles=config.ifu_decode_cycles)
        self.console = Console(config.im_size)
        # Plans are compiled per IM slot on first fetch and dropped when
        # the slot is rewritten; the MicrostoreImage funnels every write
        # path (console, bootstrap loader, load_image, direct pokes)
        # into _invalidate_plan.
        self._plans: List[Optional[ExecutionPlan]] = [None] * config.im_size
        self._plan_enabled = config.plan_cache_enabled
        # The compiled-trace tier (DESIGN.md section 5.6) sits on top of
        # the plan cache and shares its invalidation choke point; the
        # cache object itself is mechanism (never snapshotted, never
        # shared across fork()).
        self._trace_enabled = config.plan_cache_enabled and config.trace_cache_enabled
        self._traces = TraceCache(self)
        self.im: MicrostoreImage = MicrostoreImage(config.im_size, self._invalidate_plan)
        self.console.on_im_write = self._invalidate_plan
        self.symbols: Dict[str, int] = {}
        self.this_pc = 0
        self.halted = False
        self.now = 0
        # The raw per-cycle hook: (now, pc, inst, held).  None when nobody
        # is listening -- both cycle implementations pay exactly one
        # ``is None`` check.  Prefer the instrumentation bus
        # (``self.instruments``) over assigning this slot directly: the
        # bus compiles its subscriber set into this hook and composes
        # with (chains) a directly-assigned one.
        self.trace_hook: Optional[Callable[[int, int, MicroInstruction, bool], None]] = None
        self._instruments = None
        # Bypass latch, from the previous instruction: RM address -> value
        # for RM writes, T_KEY_BASE + task -> value for T writes.
        self._pending: Dict[int, int] = {}
        self._devices: List[object] = []
        self._device_by_address: Dict[int, object] = {}
        self._device_by_task: Dict[int, object] = {}
        self._published_next = EMULATOR_TASK
        self._consecutive_holds = 0
        # Fault plumbing (DESIGN.md section 5.2): an optional per-config
        # hold limit for the watchdog, and fault-task delivery -- the
        # wakeup line follows the fault latch, dropping when microcode
        # reads FF READ_FAULTS.
        self._hold_limit = config.hold_limit
        self._fault_task = config.fault_task
        if config.fault_task is not None:
            self.memory.on_fault = self._on_memory_fault

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def load_image(self, image) -> None:
        """Install an assembled microcode image (see :mod:`repro.asm`).

        Task 0 is pointed at the image's entry (its first-emitted
        instruction); :meth:`boot` overrides that for other layouts.
        """
        for address, inst in image.words.items():
            self.im[address] = inst
        self.symbols.update(image.symbols)
        self.boot(getattr(image, "entry", 0))

    @property
    def devices(self):
        """The attached device controllers, in attachment order."""
        return tuple(self._devices)

    def attach_device(self, device) -> None:
        """Register a device controller.

        The device claims a window on the IOADDRESS bus and, if it has a
        task, the right to raise that task's wakeup line.
        """
        for offset in range(device.register_count):
            address = device.io_address + offset
            if address in self._device_by_address:
                raise DeviceError(f"IOADDRESS {address:#x} claimed twice")
            self._device_by_address[address] = device
        if device.task is not None:
            if device.task in self._device_by_task:
                raise DeviceError(f"task {device.task} claimed twice")
            if device.task == EMULATOR_TASK:
                raise DeviceError("task 0 belongs to the emulator")
            if device.task == self._fault_task:
                raise DeviceError(
                    f"task {device.task} is the fault task; a device "
                    "sharing it would fight over the wakeup line"
                )
            self._device_by_task[device.task] = device
        self._devices.append(device)
        device.attach(self)
        # Compiled traces bind the device roster (tick unrolling, fast
        # I/O ports, IOATN): a roster change invalidates them.
        self._traces.invalidate_all()

    def boot(self, pc: int = 0, task: int = EMULATOR_TASK) -> None:
        """Point a task at *pc* and make it the running task.

        Re-booting a machine that has already run must not leak the
        previous program's in-flight state into the new one: the bypass
        latch (a result the old program staged but never committed), the
        Hold watchdog count, the IFU's buffered prefetch bytes, any
        latched memory-fault bits, and the fault injector's schedule
        cursors and trace are all cleared here -- so back-to-back
        booted runs under one injector see the identical fault plan.
        """
        if isinstance(pc, str):
            pc = self.symbols[pc]
        self.pipe.write_tpc(task, pc)
        self.pipe.this_task = task
        self.this_pc = pc
        self.halted = False
        self._pending.clear()
        self._consecutive_holds = 0
        self.ifu.flush_buffers()
        self.memory.fault_flags = 0
        if self.memory.injector is not None:
            self.memory.injector.reset()

    def address_of(self, label: str) -> int:
        return self.symbols[label]

    @property
    def fault_injector(self):
        """The machine's fault injector, or None when injection is off."""
        return self.memory.injector

    @property
    def instruments(self):
        """The machine's instrumentation bus (created on first use).

        See :class:`repro.perf.instrument.InstrumentationBus`: named
        subscribers, per-event-kind channels, and install/uninstall that
        compiles down to ``trace_hook`` so an idle bus costs nothing.
        """
        if self._instruments is None:
            from ..perf.instrument import InstrumentationBus

            self._instruments = InstrumentationBus(self)
        return self._instruments

    # ------------------------------------------------------------------
    # snapshot / restore / fork (DESIGN.md section 5.4)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The core section's architectural state, as plain data.

        Covers the processor proper: pipeline position, the bypass
        latch, and every data/control-section component.  The IM, the
        memory system, the IFU, and the devices have their own sections
        in :meth:`snapshot` -- and the plan cache, hooks, and the
        instrumentation bus are mechanism, deliberately absent.
        """
        return {
            "this_pc": self.this_pc,
            "halted": self.halted,
            "now": self.now,
            "pending": dict(self._pending),
            "published_next": self._published_next,
            "consecutive_holds": self._consecutive_holds,
            "regs": self.regs.state_dict(),
            "stack": self.stack.state_dict(),
            "alu": self.alu.state_dict(),
            "pipe": self.pipe.state_dict(),
            "control": self.control.state_dict(),
            "console": self.console.state_dict(),
            "counters": self.counters.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.this_pc = state["this_pc"]
        self.halted = bool(state["halted"])
        self.now = state["now"]
        self._pending = dict(state["pending"])
        self._published_next = state["published_next"]
        self._consecutive_holds = state["consecutive_holds"]
        self.regs.load_state(state["regs"])
        self.stack.load_state(state["stack"])
        self.alu.load_state(state["alu"])
        self.pipe.load_state(state["pipe"])
        self.control.load_state(state["control"])
        self.console.load_state(state["console"])
        # In place: the Counters object is shared with the MemorySystem.
        self.counters.load_state(state["counters"])

    def _port_index(self, port) -> int:
        """A fast-I/O port's serializable identity: its device index."""
        for index, device in enumerate(self._devices):
            if device is port:
                return index
        from ..errors import StateError

        raise StateError(
            "in-flight fast I/O targets a port that is not an attached "
            "device; snapshot cannot name it"
        )

    def snapshot(self):
        """Capture the complete machine as a :class:`~repro.state.MachineState`.

        The snapshot is self-contained plain data -- safe to hold across
        further stepping, serialize with ``save()``, or apply to another
        machine built with an equal config.
        """
        from ..state import STATE_FORMAT_VERSION, MachineState, config_signature

        data = {
            "version": STATE_FORMAT_VERSION,
            "config": config_signature(self.config),
            "im": {
                address: inst.encode()
                for address, inst in enumerate(self.im)
                if inst is not None
            },
            "core": self.state_dict(),
            "mem": self.memory.state_dict(port_index=self._port_index),
            "ifu": self.ifu.state_dict(),
            "io": [device.state_dict() for device in self._devices],
            "fault": (
                self.memory.injector.state_dict()
                if self.memory.injector is not None
                else None
            ),
        }
        return MachineState(data)

    def restore(self, state) -> None:
        """Apply a snapshot taken on this machine or an identical twin.

        Raises :class:`~repro.errors.StateError` when the snapshot's
        version, config signature, device roster, or fault plan does not
        match this machine.  IM slots whose stored encoding equals the
        current word are left untouched, so a warm restore keeps its
        compiled plans.
        """
        from ..errors import StateError
        from ..state import STATE_FORMAT_VERSION, MachineState, config_signature

        data = state.data if isinstance(state, MachineState) else state
        if data["version"] != STATE_FORMAT_VERSION:
            raise StateError(
                f"snapshot format v{data['version']} != "
                f"supported v{STATE_FORMAT_VERSION}"
            )
        if data["config"] != config_signature(self.config):
            raise StateError(
                "snapshot was taken on a machine with a different config"
            )
        if len(data["io"]) != len(self._devices):
            raise StateError(
                f"snapshot has {len(data['io'])} devices; "
                f"this machine has {len(self._devices)}"
            )
        injector = self.memory.injector
        if (data["fault"] is not None) != (injector is not None):
            raise StateError(
                "snapshot and machine disagree about fault injection"
            )

        stored_im = data["im"]
        for address in range(self.config.im_size):
            stored = stored_im.get(address)
            cur = self.im[address]
            cur_enc = cur.encode() if cur is not None else None
            if stored != cur_enc:
                self.im[address] = (
                    MicroInstruction.decode(stored) if stored is not None else None
                )

        self.load_state(data["core"])
        self.memory.load_state(data["mem"], port_of=lambda i: self._devices[i])
        self.ifu.load_state(data["ifu"])
        for device, device_state in zip(self._devices, data["io"]):
            device.load_state(device_state)
        if injector is not None:
            injector.load_state(data["fault"])
        # Compiled traces are dropped on every restore (even a warm one
        # that kept its plans): they bind register/ref objects that
        # load_state may have replaced, and the protocol's byte-identity
        # guarantee is simplest to audit when a restored machine always
        # re-warms from the plan path.
        self._traces.invalidate_all()

    def fork(self) -> "Processor":
        """A fully independent copy of this machine, mid-run.

        The clone shares nothing mutable with the original: it gets its
        own registers, memory, devices, and fault cursors, built from a
        :meth:`snapshot` and deep copies of the device models.  Stepping
        either machine cannot perturb the other.
        """
        snap = self.snapshot()
        clone = Processor(self.config)
        clone.symbols = dict(self.symbols)
        # MicroInstruction objects are immutable; sharing the words is
        # safe, and restore() will not need to re-decode any of them.
        for address, inst in enumerate(self.im):
            if inst is not None:
                clone.im[address] = inst
        if self.ifu.table is not None:
            clone.ifu.load_table(self.ifu.table, self.ifu._dispatch_addresses)
        for device in self._devices:
            clone.attach_device(self._clone_device(device))
        clone.restore(snap)
        return clone

    @staticmethod
    def _clone_device(device):
        """Deep-copy a device model without dragging the machine along.

        Devices hold back-references to the processor (``machine``) and,
        when faulted, to the shared injector; both are detached for the
        copy and re-established by ``attach_device`` / restore.
        """
        machine = getattr(device, "machine", None)
        injector = getattr(device, "_injector", None)
        try:
            if machine is not None:
                device.machine = None
            if injector is not None:
                device._injector = None
            clone = copy.deepcopy(device)
        finally:
            if machine is not None:
                device.machine = machine
            if injector is not None:
                device._injector = injector
        return clone

    # ------------------------------------------------------------------
    # the machine cycle
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole machine by one microcycle."""
        if self._plan_enabled:
            self._step_plan()
        else:
            self._step_interp()

    def _step_interp(self) -> None:
        """One cycle, interpretively: re-decode every microword field.

        This is the reference implementation; :meth:`_step_plan` must
        remain observationally identical to it.
        """
        task = self.pipe.this_task
        pc = self.this_pc
        inst = self.im[pc]
        if inst is None:
            raise MicrocodeCrash(f"task {task} fetched uninitialized microstore at {pc:#o}")

        hold_cause = self._check_hold(inst, task)
        held = hold_cause != HOLD_NONE
        if held:
            self._consecutive_holds += 1
            if self._consecutive_holds > (self._hold_limit or HOLD_LIMIT):
                raise self._hold_timeout(task, pc, hold_cause)
            self.counters.hold_causes[hold_cause - 1] += 1
            next_pc = pc  # "no operation, jump to self"
            blocked = False
            self._commit_pending()  # clocks keep running (section 5.7)
        else:
            self._consecutive_holds = 0
            next_pc, blocked = self._execute(inst, task, pc)

        self.counters.record_cycle(task, held)
        if self.trace_hook is not None:
            self.trace_hook(self.now, pc, inst, held)

        # TPC is written every cycle with THISTASKNEXTPC (section 6.2.2).
        self.pipe.write_tpc(task, next_pc)
        nxt = self.pipe.decide_next(blocked)
        if blocked:
            self.counters.blocks += 1
        if nxt != task:
            self.counters.task_switches += 1
        self.this_pc = self.pipe.read_tpc(nxt)

        # Devices observe the NEXT published at the end of the *previous*
        # cycle; this one-cycle lag is what gives the two-instruction
        # minimum of section 6.2.1 before a wakeup can be dropped.
        granted_task = self._published_next
        self._published_next = nxt
        for device in self._devices:
            device.tick(self, granted=(granted_task == device.task))

        self.memory.tick()
        self.ifu.tick()
        self.now += 1
        self.pipe.arbitrate()

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Step until FF ``HALT`` or *max_cycles*; returns cycles used."""
        if self._trace_enabled and self._plan_enabled:
            return self._run_traced(max_cycles)
        # The hot loop: bind the cycle implementation and the counters
        # once instead of re-resolving them a million times.
        step = self._step_plan if self._plan_enabled else self._step_interp
        counters = self.counters
        start = counters.cycles
        limit = start + max_cycles
        while not self.halted and counters.cycles < limit:
            step()
        return counters.cycles - start

    def _run_traced(self, max_cycles: int) -> int:
        """The ``run()`` hot loop with the compiled-trace tier engaged.

        Executes a cached trace whenever the machine stands at a trace
        entry, plan-steps everywhere else, and feeds the trace cache's
        hot-region detector from the plain steps.  Traces are confined
        to ``run()`` on purpose: ``run_until`` evaluates its predicate
        between *every* cycle, and ``step()`` is the single-cycle
        debugging interface -- both stay strictly per-cycle.
        """
        counters = self.counters
        start = counters.cycles
        limit = start + max_cycles
        cache = self._traces
        traces = cache.traces
        counts = cache.counts
        blacklist = cache.blacklist
        threshold = cache.hot_threshold
        step = self._step_plan
        pipe = self.pipe
        memory = self.memory
        while not self.halted and counters.cycles < limit:
            task = pipe.this_task
            pc = self.this_pc
            hook = self.trace_hook
            if hook is None and cache._rec_key is None and not memory.fault_flags:
                fn = traces.get((task, pc))
                if fn is not None:
                    cache.entries += 1
                    before = counters.cycles
                    fn(self, limit - before)
                    if counters.cycles != before:
                        continue
                    # Zero progress: a fast-mode entry guard failed or
                    # the budget is smaller than one loop iteration.
                    # Fall through to a plan step so run() always
                    # advances.
            held_before = counters.held_cycles
            step()
            if hook is not None:
                # Instrumented cycles are invisible to the detector: a
                # recording that spanned them would have gaps.
                if cache._rec_key is not None:
                    cache.abort_recording()
                continue
            if counters.held_cycles != held_before:
                continue  # a held cycle is "no-op, jump to self": no edge
            new_pc = self.this_pc
            if cache._rec_key is not None:
                cache.record_step(task, pc, pipe.this_task, new_pc)
            elif pipe.this_task == task and new_pc <= pc:
                # A back edge: the classic hot-region signal (loops and
                # re-entered service routines both produce one).
                key = (task, new_pc)
                if key not in traces and key not in blacklist:
                    seen = counts.get(key, 0) + 1
                    if seen >= threshold:
                        counts.pop(key, None)
                        cache.begin_recording(key)
                    else:
                        counts[key] = seen
        return counters.cycles - start

    def run_until(self, predicate: Callable[["Processor"], bool], max_cycles: int = 1_000_000) -> int:
        """Step until *predicate(self)* or *max_cycles*; returns cycles used."""
        step = self._step_plan if self._plan_enabled else self._step_interp
        counters = self.counters
        start = counters.cycles
        limit = start + max_cycles
        while not predicate(self) and counters.cycles < limit:
            step()
        return counters.cycles - start

    # ------------------------------------------------------------------
    # the execution-plan fast path (DESIGN.md section 5)
    # ------------------------------------------------------------------

    def _invalidate_plan(self, index) -> None:
        """Drop the compiled plan(s) for a rewritten IM slot.

        Compiled traces span many slots and fold plan fields into
        generated source, so any IM write drops the whole trace cache
        (hot counts, blacklist and in-flight recordings included) --
        simple, and trivially stale-proof.
        """
        if isinstance(index, slice):
            for i in range(*index.indices(len(self._plans))):
                self._plans[i] = None
        else:
            self._plans[index] = None
        self._traces.invalidate_all()

    def _get_plan(self, pc: int, task: int) -> ExecutionPlan:
        """The slot's plan, compiling it on this first fetch."""
        inst = self.im[pc]
        if inst is None:
            raise MicrocodeCrash(f"task {task} fetched uninitialized microstore at {pc:#o}")
        plan = compile_plan(inst, pc, self.control)
        self._plans[pc] = plan
        return plan

    def _step_plan(self) -> None:
        """One cycle through the plan cache.

        Same observable behaviour as :meth:`_step_interp`, with decode
        hoisted to compile time and the cycle tail (counters, TPC, the
        NEXT decision, clock ticks, arbitration) inlined.
        """
        pipe = self.pipe
        task = pipe.this_task
        pc = self.this_pc
        plan = self._plans[pc]
        if plan is None:
            plan = self._get_plan(pc, task)
        memory = self.memory

        # --- Hold (section 5.7); mirrors _check_hold, cause included.
        held = False
        if not plan.hold_none:
            if plan.hold_fastio and memory.storage_busy:
                held = True
                hold_cause = HOLD_STORAGE
            elif plan.hold_md and not memory.md_ready(task):
                held = True
                hold_cause = HOLD_MD
            elif plan.hold_nextmacro and not self.ifu.dispatch_ready:
                held = True
                hold_cause = HOLD_IFU
        if held:
            self._consecutive_holds += 1
            if self._consecutive_holds > (self._hold_limit or HOLD_LIMIT):
                raise self._hold_timeout(task, pc, hold_cause)
            self.counters.hold_causes[hold_cause - 1] += 1
            next_pc = pc  # "no operation, jump to self"
            blocked = False
            if self._pending:
                self._commit_pending()  # clocks keep running (section 5.7)
        else:
            self._consecutive_holds = 0
            next_pc, blocked = self._execute_plan(plan, task, pc)

        counters = self.counters
        counters.cycles += 1
        counters.task_cycles[task] += 1
        if held:
            counters.held_cycles += 1
            counters.task_held[task] += 1
        else:
            counters.instructions += 1
            counters.task_instructions[task] += 1
        if self.trace_hook is not None:
            self.trace_hook(self.now, pc, plan.inst, held)

        # TPC is written every cycle with THISTASKNEXTPC (section 6.2.2);
        # then the NEXT decision (TaskPipeline.decide_next, inlined).
        tpc = pipe.tpc
        tpc[task] = next_pc
        best = pipe.best_task
        if blocked:
            counters.blocks += 1
            pipe.ready &= ~(1 << task)
            nxt = best
        elif best > task:
            pipe.ready |= 1 << task
            nxt = best
        else:
            nxt = task
        pipe.ready &= ~(1 << nxt)
        pipe.this_task = nxt
        if nxt != task:
            counters.task_switches += 1
        self.this_pc = tpc[nxt]

        # Devices observe the NEXT published at the end of the *previous*
        # cycle (the two-instruction minimum of section 6.2.1).
        granted_task = self._published_next
        self._published_next = nxt
        for device in self._devices:
            device.tick(self, granted=(granted_task == device.task))

        # Clock the memory and the IFU; both reduce to now += 1 when
        # nothing is in flight.
        if memory._fast_in_flight:
            memory.tick()
        else:
            memory.now += 1
        ifu = self.ifu
        if ifu.running:
            ifu.tick()
        else:
            ifu.now += 1
        self.now += 1

        # Stage 1 of the task pipeline (TaskPipeline.arbitrate, inlined).
        requests = pipe.lines | pipe.ready
        best = requests.bit_length() - 1 if requests else EMULATOR_TASK
        pipe.best_task = best
        pipe.best_pc = tpc[best]

    def _execute_plan(self, plan: ExecutionPlan, task: int, pc: int) -> Tuple[int, bool]:
        """Execute one compiled instruction; mirrors :meth:`_execute`."""
        regs = self.regs
        memory = self.memory
        pending = self._pending
        bypass = self.config.bypass_enabled
        ff = plan.ff
        stack_op = plan.block and task == EMULATOR_TASK
        # Every MD use sees the value as of this instruction's operand
        # fetch, even if the instruction also starts a new reference.
        md_before = memory._refs[task].md_value

        # --- operand reads (first half cycle), through the bypass network.
        if stack_op:
            rm_value = self.stack.read_top()
        else:
            rm_addr = ((regs.rbase[task] & 0xF) << 4) | plan.rsel
            rm_value = pending.get(rm_addr) if bypass else None
            if rm_value is None:
                rm_value = regs.rm[rm_addr]
        t_value = pending.get(T_KEY_BASE + task) if bypass else None
        if t_value is None:
            t_value = regs.t[task]

        # --- B bus.
        b_kind = plan.b_kind
        if b_kind == B_CONST:
            b_value = plan.b_const
        elif b_kind == B_RM:
            b_value = rm_value
        elif b_kind == B_T:
            b_value = t_value
        elif b_kind == B_Q:
            b_value = regs.q
        else:  # EXTB: the plan names the external source.
            extb = plan.extb_kind
            if extb == EXTB_MD:
                b_value = md_before
            elif extb == EXTB_IFUDATA:
                b_value = self.ifu.read_operand()
            elif extb == EXTB_CPREG:
                b_value = self.console.cpreg
            elif extb == EXTB_LINK:
                b_value = word(self.control.link[task])
            elif extb == EXTB_IFUPC:
                b_value = word(self.ifu.pc)
            elif extb == EXTB_THISTASK:
                b_value = task
            else:  # INPUT, FAULTS, or a mis-encoded selector
                b_value = self._read_extb(task, ff)

        # --- A bus (MEMADDRESS is a copy of A).
        a_kind = plan.a_kind
        if a_kind == A_RM:
            a_value = rm_value
        elif a_kind == A_T:
            a_value = t_value
        elif a_kind == A_MD:
            a_value = md_before
        elif a_kind == A_IFU:
            a_value = self.ifu.read_operand()
        else:  # A_Q
            a_value = regs.q

        # Operand reads are done: the previous instruction's results (if
        # any) land in the RAMs now (Figure 2).
        if pending:
            rm = regs.rm
            t = regs.t
            for key, value in pending.items():
                if key < T_KEY_BASE:
                    rm[key] = value
                else:
                    t[key - T_KEY_BASE] = value & 0xFFFF
            pending.clear()

        # --- ALU (direct-dispatch closure; same facts as AluResult).
        alu_value, carry, overflow, arithmetic = self.alu.fast_ops[plan.aluop](
            a_value, b_value, regs.saved_carry[task]
        )
        if arithmetic:
            regs.saved_carry[task] = carry

        # --- RESULT bus: ALU output unless an FF source overrides it.
        result = alu_value
        res_kind = plan.res_kind
        if res_kind:
            if res_kind == RES_SHIFT_OUT:
                result = shift(ShiftControl.decode(regs.shiftctl), rm_value, t_value)
            elif res_kind == RES_SHIFT_MASKZ:
                result = shift_masked(
                    ShiftControl.decode(regs.shiftctl), rm_value, t_value, 0
                )
            elif res_kind == RES_SHIFT_MASKMD:
                result = shift_masked(
                    ShiftControl.decode(regs.shiftctl), rm_value, t_value, md_before
                )
            elif res_kind == RES_LSH:
                result = (alu_value << 1) & 0xFFFF
            elif res_kind == RES_RSH:
                result = (alu_value >> 1) & 0xFFFF
            else:  # RES_OTHER: the READ_* family
                override = self._result_override(
                    task, ff, rm_value, t_value, a_value, b_value, alu_value
                )
                if override is not None:
                    result = override

        # --- memory reference start (address = A, store data = B).
        ref_kind = plan.ref_kind
        if ref_kind:
            membase = regs.membase[task]
            if ref_kind == REF_FETCH:
                memory.start_fetch(task, membase, a_value)
            elif ref_kind == REF_STORE:
                memory.start_store(task, membase, a_value, b_value)
            elif ref_kind == REF_IOFETCH:
                port = self._device_by_task.get(task)
                if port is None:
                    raise DeviceError(
                        f"task {task} started fast I/O with no device attached"
                    )
                memory.start_fastio_fetch(task, membase, a_value, port)
            elif ref_kind == REF_IOSTORE:
                port = self._device_by_task.get(task)
                if port is None:
                    raise DeviceError(
                        f"task {task} started fast I/O with no device attached"
                    )
                memory.start_fastio_store(task, membase, a_value, port)
            else:  # REF_BAD: raise the exact interpretive error
                self._start_reference(plan.inst, task, a_value, b_value, plan.ff_is_function)

        # --- late branch condition (ORed into NEXTPC's low bit).
        condition_taken = False
        cond = plan.cond
        if cond >= 0:
            if cond == 0:  # ALU_ZERO
                condition_taken = alu_value == 0
            elif cond == 1:  # ALU_NONZERO
                condition_taken = alu_value != 0
            elif cond == 2:  # ALU_NEG
                condition_taken = alu_value >= 0x8000
            elif cond == 3:  # CARRY
                condition_taken = carry
            elif cond == 4:  # COUNT_NONZERO, with the decrement side effect
                condition_taken = regs.count != 0
                regs.count = (regs.count - 1) & 0xFFFF
            elif cond == 5:  # R_ODD
                condition_taken = bool(result & 1)
            elif cond == 7:  # OVERFLOW
                condition_taken = overflow
            else:  # IOATN
                device = self._device_by_address.get(regs.ioaddress[task])
                condition_taken = bool(device is not None and device.attention)

        # --- FF side effects.
        if plan.ff_effect:
            self._apply_ff(plan.inst, task, ff, b_value, a_value, result, md_before)

        # --- NEXTPC (targets precomputed per slot; see compile_plan).
        consumed = plan.consumes_ifu
        next_kind = plan.next_kind
        if next_kind == NEXT_STATIC:
            next_pc = plan.next_target
        elif next_kind == NEXT_BRANCH:
            next_pc = plan.next_target | (1 if condition_taken else 0)
        elif next_kind == NEXT_MACRO:
            if consumed:
                self.ifu.consume_operand()
                consumed = False
            next_pc = self.ifu.take_dispatch()
        elif next_kind == NEXT_CALL:
            self.control.link[task] = plan.link_value
            next_pc = plan.next_target
        elif next_kind == NEXT_RETURN:
            link = self.control.link
            next_pc = link[task]
            link[task] = plan.link_value
        elif next_kind == NEXT_DISPATCH8:
            next_pc = (plan.next_target + (b_value & 0x7)) & self.control.im_mask
        elif next_kind == NEXT_DISPATCH256:
            next_pc = (plan.next_target + (b_value & 0xFF)) & self.control.im_mask
        elif next_kind == NEXT_NOTIFY:
            next_pc = plan.next_target
            self.console.record_notify(pc)
        else:  # NEXT_BAD: mis-encoded; the reference path raises
            self.control.compute(
                plan.inst, pc, task, condition_taken, b_value, plan.ff_is_function
            )
            raise AssertionError("NEXT_BAD plan failed to raise")
        if consumed:
            self.ifu.consume_operand()

        # --- writeback: stage this instruction's result in the latch.
        # The RM address is recomputed because an FF (RBASE_B) may have
        # changed RBASE this very instruction.
        if stack_op:
            self.stack.adjust(plan.stack_delta)
            if plan.loads_rm:
                self.stack.write_top(result)
            if plan.loads_t:
                pending[T_KEY_BASE + task] = result
        else:
            if plan.loads_rm:
                pending[((regs.rbase[task] & 0xF) << 4) | plan.rsel] = result
            if plan.loads_t:
                pending[T_KEY_BASE + task] = result

        return next_pc, plan.block and task != EMULATOR_TASK

    # ------------------------------------------------------------------
    # hold evaluation (section 5.7)
    # ------------------------------------------------------------------

    def _check_hold(self, inst: MicroInstruction, task: int) -> int:
        """The Hold decision: a HOLD_* cause code, HOLD_NONE to proceed."""
        ff = inst.ff
        ff_is_function = not inst.bsel.is_constant

        if inst.asel.starts_reference:
            if ff_is_function and ff in (FF.IOFETCH, FF.IOSTORE):
                if self.memory.storage_busy:
                    return HOLD_STORAGE

        uses_md = inst.asel.uses_memdata or (
            ff_is_function
            and ff in (FF.SHIFT_MASKMD, FF.EXTB_MEMDATA, FF.OUTPUT_MD, FF.A_MD)
        )
        if uses_md and not self.memory.md_ready(task):
            return HOLD_MD

        if NextControl.kind(inst.nc) == NextType.MISC:
            payload = NextControl.payload(inst.nc)
            if Misc(payload >> 3) == Misc.NEXTMACRO and not self.ifu.dispatch_ready:
                return HOLD_IFU
        return HOLD_NONE

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _execute(self, inst: MicroInstruction, task: int, pc: int) -> Tuple[int, bool]:
        regs = self.regs
        ff = inst.ff
        ff_is_function = not inst.bsel.is_constant
        stack_op = inst.block and task == EMULATOR_TASK
        consumed_ifu_operand = False
        # Every MD use sees the value as of this instruction's operand
        # fetch, even if the instruction also starts a new reference.
        md_before = self.memory.read_md(task)

        # --- operand reads (first half cycle), through the bypass network.
        if stack_op:
            rm_value = self.stack.read_top()
        else:
            rm_value = self._read_rm(task, inst.rsel)
        t_value = self._read_t(task)

        # --- B bus.
        if inst.bsel.is_constant:
            b_value = constant_value(inst.bsel, ff)
        elif inst.bsel == BSel.RM:
            b_value = rm_value
        elif inst.bsel == BSel.T:
            b_value = t_value
        elif inst.bsel == BSel.Q:
            b_value = regs.q
        else:  # EXTB: FF names the external source.
            b_value = self._read_extb(task, ff)
            if ff == FF.EXTB_IFUDATA:
                consumed_ifu_operand = True

        # --- A bus (MEMADDRESS is a copy of A).
        if ff_is_function and ff == FF.A_Q:
            a_value = regs.q
        elif ff_is_function and ff == FF.A_IFUDATA:
            a_value = self.ifu.read_operand()
            consumed_ifu_operand = True
        elif ff_is_function and ff == FF.A_MD:
            a_value = md_before
        elif inst.asel in (ASel.RM, ASel.RM_FETCH, ASel.RM_STORE):
            a_value = rm_value
        elif inst.asel in (ASel.T, ASel.T_FETCH, ASel.T_STORE):
            a_value = t_value
        elif inst.asel == ASel.IFUDATA:
            a_value = self.ifu.read_operand()
            consumed_ifu_operand = True
        else:  # MEMDATA
            a_value = self.memory.read_md(task)

        # Operand reads are done: the previous instruction's results (if
        # any) land in the RAMs now -- writeback occupies the half cycle
        # after the successor's operand fetch (Figure 2).
        self._commit_pending()

        # --- ALU (second half of this cycle + first half of the next).
        alu_res = self.alu.run(inst.aluop, a_value, b_value, regs.saved_carry[task])
        if alu_res.arithmetic:
            regs.saved_carry[task] = alu_res.carry

        # --- RESULT bus: ALU output unless an FF source overrides it.
        result = alu_res.value
        if ff_is_function:
            override = self._result_override(
                task, ff, rm_value, t_value, a_value, b_value, alu_res.value
            )
            if override is not None:
                result = override

        # --- memory reference start (address = A, store data = B).
        if inst.asel.starts_reference:
            self._start_reference(inst, task, a_value, b_value, ff_is_function)

        # --- late branch condition (ORed into NEXTPC's low bit).
        condition_taken = False
        if NextControl.kind(inst.nc) == NextType.BRANCH:
            condition_taken = self._evaluate_condition(
                NextControl.branch_condition(inst.nc), task, alu_res, result
            )

        # --- FF side effects.
        if ff_is_function:
            self._apply_ff(inst, task, ff, b_value, a_value, result, md_before)

        # --- NEXTPC.
        next_result = self.control.compute(
            inst, pc, task, condition_taken, b_value, ff_is_function
        )
        if next_result.outcome == NextOutcome.NEXT_MACRO:
            if consumed_ifu_operand:
                self.ifu.consume_operand()
                consumed_ifu_operand = False
            next_pc = self.ifu.take_dispatch()
        else:
            next_pc = next_result.target
            if next_result.notify_console:
                self.console.record_notify(pc)
        if consumed_ifu_operand:
            self.ifu.consume_operand()

        # --- writeback: stage this instruction's result in the latch.
        if stack_op:
            self.stack.adjust(inst.stack_delta)
            if inst.lc.loads_rm:
                self.stack.write_top(result)
            if inst.lc.loads_t:
                self._pending[T_KEY_BASE + task] = result
        else:
            if inst.lc.loads_rm:
                self._pending[regs.rm_address(task, inst.rsel)] = result
            if inst.lc.loads_t:
                self._pending[T_KEY_BASE + task] = result

        blocked = inst.block and task != EMULATOR_TASK
        return next_pc, blocked

    # --- bypass (section 5.6) ---------------------------------------------

    def _read_rm(self, task: int, rsel: int) -> int:
        address = self.regs.rm_address(task, rsel)
        if self.config.bypass_enabled:
            pending = self._pending.get(address)
            if pending is not None:
                return pending
        return self.regs.rm[address]

    def _read_t(self, task: int) -> int:
        if self.config.bypass_enabled:
            pending = self._pending.get(T_KEY_BASE + task)
            if pending is not None:
                return pending
        return self.regs.read_t(task)

    def _commit_pending(self) -> None:
        regs = self.regs
        for key, value in self._pending.items():
            if key < T_KEY_BASE:
                regs.rm[key] = value
            else:
                regs.write_t(key - T_KEY_BASE, value)
        self._pending.clear()

    # --- EXTB sources -----------------------------------------------------

    def _read_extb(self, task: int, ff: int) -> int:
        if ff == FF.INPUT:
            device, offset = self._addressed_device(task)
            self.counters.slowio_words_in += 1
            return word(device.read_register(offset))
        if ff == FF.EXTB_MEMDATA:
            return self.memory.read_md(task)
        if ff == FF.EXTB_IFUDATA:
            return self.ifu.read_operand()
        if ff == FF.EXTB_CPREG:
            return self.console.cpreg
        if ff == FF.EXTB_FAULTS:
            return self._fault_word(clear=False)
        if ff == FF.EXTB_LINK:
            return word(self.control.read_link(task))
        if ff == FF.EXTB_IFUPC:
            return word(self.ifu.pc)
        if ff == FF.EXTB_THISTASK:
            return task
        raise EncodingError(
            f"BSelect=EXTB with FF {functions.describe(ff)} (not an EXTB selector)"
        )

    def _addressed_device(self, task: int):
        address = self.regs.read_ioaddress(task)
        device = self._device_by_address.get(address)
        if device is None:
            raise DeviceError(f"no device at IOADDRESS {address:#x} (task {task})")
        return device, address - device.io_address

    # --- RESULT overrides ----------------------------------------------------

    def _result_override(
        self,
        task: int,
        ff: int,
        rm_value: int,
        t_value: int,
        a_value: int,
        b_value: int,
        alu_value: int,
    ) -> Optional[int]:
        if ff in (FF.SHIFT_OUT, FF.SHIFT_MASKZ, FF.SHIFT_MASKMD):
            # One decode of the live SHIFTCTL covers all three shift paths.
            control = ShiftControl.decode(self.regs.shiftctl)
            if ff == FF.SHIFT_OUT:
                return shift(control, rm_value, t_value)
            if ff == FF.SHIFT_MASKZ:
                return shift_masked(control, rm_value, t_value, 0)
            return shift_masked(control, rm_value, t_value, self.memory.read_md(task))
        if ff == FF.READ_SHIFTCTL:
            return self.regs.shiftctl
        if ff == FF.RESULT_LSH:
            return (alu_value << 1) & 0xFFFF
        if ff == FF.RESULT_RSH:
            return (alu_value >> 1) & 0xFFFF
        if ff == FF.READ_COUNT:
            return self.regs.count
        if ff == FF.READ_RBASE:
            return self.regs.read_rbase(task)
        if ff == FF.READ_STACKPTR:
            return self.stack.pointer
        if ff == FF.READ_MEMBASE:
            return self.regs.read_membase(task)
        if ff == FF.READ_MAP:
            va = self.memory.translator.virtual_address(
                self.regs.read_membase(task), a_value
            )
            return self.memory.translator.map_read(va >> 8)
        if ff == FF.READ_FAULTS:
            return self._fault_word(clear=True)
        if ff == FF.READ_IOADDRESS:
            return self.regs.read_ioaddress(task)
        if ff == FF.READ_TPC:
            return self.pipe.read_tpc((b_value >> 12) & 0xF)
        if ff == FF.IM_READ_LO:
            return self.console.im_read(0, self.im)
        if ff == FF.IM_READ_MID:
            return self.console.im_read(1, self.im)
        if ff == FF.IM_READ_HI:
            return self.console.im_read(2, self.im)
        return None

    def _fault_word(self, clear: bool) -> int:
        value = self.memory.read_faults(clear) | (
            self.stack.error_flags() << FAULT_STACK_SHIFT
        )
        if clear:
            self.stack.clear_errors()
            if self._fault_task is not None:
                # The wakeup line follows the fault latch.
                self.pipe.clear_wakeup(self._fault_task)
        return word(value)

    # --- fault-task delivery and the Hold watchdog -----------------------------

    def _on_memory_fault(self, bits: int) -> None:
        self.pipe.set_wakeup(self._fault_task)

    def _hold_timeout(self, task: int, pc: int, hold_cause: int = 0) -> HoldTimeout:
        """Build the diagnosable watchdog error (section 5.7 livelock)."""
        md_valid, md_ready_at, storage_busy_until = self.memory.ref_state(task)
        cause_name = (
            HOLD_CAUSE_NAMES[hold_cause - 1]
            if 1 <= hold_cause <= len(HOLD_CAUSE_NAMES) else None
        )
        return HoldTimeout(
            task=task,
            pc=pc,
            cycle=self.now,
            holds=self._consecutive_holds,
            md_valid=md_valid,
            md_ready_at=md_ready_at,
            storage_busy_until=storage_busy_until,
            hold_cause=cause_name,
        )

    # --- memory-reference start ----------------------------------------------

    def _start_reference(
        self,
        inst: MicroInstruction,
        task: int,
        a_value: int,
        b_value: int,
        ff_is_function: bool,
    ) -> None:
        membase = self.regs.read_membase(task)
        fast = ff_is_function and inst.ff in (FF.IOFETCH, FF.IOSTORE)
        if fast:
            port = self._device_by_task.get(task)
            if port is None:
                raise DeviceError(f"task {task} started fast I/O with no device attached")
            if inst.ff == FF.IOFETCH:
                if not inst.asel.starts_fetch:
                    raise EncodingError("IOFETCH requires a Fetch ASelect")
                ok = self.memory.start_fastio_fetch(task, membase, a_value, port)
            else:
                if not inst.asel.starts_store:
                    raise EncodingError("IOSTORE requires a Store ASelect")
                ok = self.memory.start_fastio_store(task, membase, a_value, port)
        elif inst.asel.starts_fetch:
            ok = self.memory.start_fetch(task, membase, a_value)
        else:
            ok = self.memory.start_store(task, membase, a_value, b_value)
        assert ok, "reference start was pre-checked by _check_hold"

    # --- branch conditions -------------------------------------------------------

    def _evaluate_condition(
        self, condition: Condition, task: int, alu_res, result: int
    ) -> bool:
        if condition == Condition.ALU_ZERO:
            return alu_res.zero
        if condition == Condition.ALU_NONZERO:
            return not alu_res.zero
        if condition == Condition.ALU_NEG:
            return alu_res.negative
        if condition == Condition.CARRY:
            return alu_res.carry
        if condition == Condition.COUNT_NONZERO:
            taken = self.regs.count != 0
            self.regs.decrement_count()  # side effect (section 6.3.3)
            return taken
        if condition == Condition.R_ODD:
            return bool(result & 1)
        if condition == Condition.IOATN:
            device = self._device_by_address.get(self.regs.read_ioaddress(task))
            return bool(device is not None and device.attention)
        if condition == Condition.OVERFLOW:
            return alu_res.overflow
        raise EncodingError(f"unknown condition {condition!r}")

    # --- FF side effects -----------------------------------------------------------

    def _apply_ff(
        self,
        inst: MicroInstruction,
        task: int,
        ff: int,
        b: int,
        a: int,
        result: int,
        md_before: int,
    ) -> None:
        regs = self.regs

        if ff == FF.NOP or ff in (FF.A_Q, FF.A_IFUDATA, FF.A_MD, FF.IOFETCH, FF.IOSTORE):
            return
        if functions.is_membase_small(ff):
            regs.write_membase(task, functions.bank_argument(ff))
            return
        if functions.is_count_small(ff):
            regs.write_count(functions.bank_argument(ff))
            return
        if functions.is_branch_pair(ff) or functions.is_jump_page(ff):
            return  # consumed by the NEXTPC calculation

        if ff == FF.SHIFTCTL_B:
            regs.write_shiftctl(b)
        elif ff == FF.Q_B:
            regs.write_q(b)
        elif ff == FF.MULSTEP:
            self._multiply_step(task, inst.aluop, a)
        elif ff == FF.DIVSTEP:
            self._divide_step(task, inst.aluop, a)
        elif ff == FF.COUNT_B:
            regs.write_count(b)
        elif ff == FF.RBASE_B:
            regs.write_rbase(task, b)
        elif ff == FF.STACKPTR_B:
            self.stack.write_pointer(b)
        elif ff == FF.MEMBASE_B:
            regs.write_membase(task, b)
        elif ff == FF.ALUFM_WRITE:
            self.alu.write_alufm(inst.aluop, b)
            # Compiled traces inline ALUFM semantics into generated
            # code; rewriting an ALU operation drops them all.
            self._traces.invalidate_all()
        elif ff == FF.BASE_LO_B:
            self.memory.translator.write_base_low(regs.read_membase(task), b)
        elif ff == FF.BASE_HI_B:
            self.memory.translator.write_base_high(regs.read_membase(task), b)
        elif ff == FF.MAP_WRITE:
            va = self.memory.translator.virtual_address(regs.read_membase(task), a)
            self.memory.translator.map_write(va >> 8, b)
        elif ff == FF.CACHE_FLUSH:
            self._cache_flush(task, a)
        elif ff == FF.IOADDRESS_B:
            regs.write_ioaddress(task, b)
        elif ff == FF.OUTPUT:
            device, offset = self._addressed_device(task)
            device.write_register(offset, b)
            self.counters.slowio_words_out += 1
        elif ff == FF.OUTPUT_MD:
            device, offset = self._addressed_device(task)
            device.write_register(offset, md_before)
            self.counters.slowio_words_out += 1
        elif ff == FF.LINK_B:
            self.control.write_link(task, b)
        elif ff == FF.IFU_JUMP:
            self.ifu.jump(result)
        elif ff == FF.IFU_RESET:
            self.ifu.reset()
        elif ff == FF.CPREG_B:
            self.console.cpreg = word(b)
        elif ff == FF.WAKEUP_B:
            self.pipe.set_wakeup_mask(b)
        elif ff == FF.READY_B:
            self.pipe.set_ready_mask(b)
        elif ff == FF.BREAKPOINT:
            raise MicrocodeCrash(f"breakpoint executed at {self.this_pc:#o} (task {task})")
        elif ff == FF.TRACE:
            self.console.record_trace(b)
        elif ff == FF.HALT:
            self.halted = True
        elif ff == FF.IM_ADDR_B:
            self.console.latch_im_address(b)
        elif ff == FF.IM_WRITE_LO:
            self.console.im_write_low(b)
        elif ff == FF.IM_WRITE_MID:
            self.console.im_write_mid(b)
        elif ff == FF.IM_WRITE_HI:
            self.console.im_write_high(b, self.im)
        elif ff == FF.TPC_B:
            self.pipe.write_tpc((b >> 12) & 0xF, b & 0xFFF)
        elif ff in functions.RESULT_SOURCES or ff in functions.EXTB_SELECTORS:
            pass  # handled at operand/result time
        else:
            raise EncodingError(f"unimplemented FF function {functions.describe(ff)}")

    def _cache_flush(self, task: int, a_value: int) -> None:
        translator = self.memory.translator
        va = translator.virtual_address(self.regs.read_membase(task), a_value)
        ra = translator.translate(va, write=False)
        if ra is None:
            return
        flushed = self.memory.cache.flush_munch(ra)
        if flushed is not None:
            self.memory.storage.write_munch(ra, flushed)
            self.counters.storage_writes += 1
        self.memory.cache.invalidate_munch(ra)

    # --- multiply/divide steps (section 6.3.3: Q) -----------------------------

    def _multiply_step(self, task: int, aluop: int, a_value: int) -> None:
        """One step of 16x16 multiply.

        With the multiplicand on A and the running high partial product
        reaching the ALU, the hardware conditionally adds (on Q's low
        bit) and shifts RESULT:Q right one place.  Microcode runs 16 of
        these; the product ends up high half in the accumulator
        register, low half in Q.  The conditional add and the double
        shift both happen here; the instruction's ALU result is ignored.
        """
        regs = self.regs
        acc = self._read_t(task)  # convention: T holds the high partial product
        if regs.q & 1:
            total = acc + a_value
        else:
            total = acc
        carry = (total >> 16) & 1
        total &= 0xFFFF
        new_q = ((total & 1) << 15) | (regs.q >> 1)
        new_acc = (carry << 15) | (total >> 1)
        regs.write_q(new_q)
        self._pending[T_KEY_BASE + task] = word(new_acc)

    def _divide_step(self, task: int, aluop: int, a_value: int) -> None:
        """One non-restoring-free step of 32/16 divide.

        T:Q holds the running remainder:quotient; A has the divisor.
        Shift T:Q left; if the shifted remainder covers the divisor,
        subtract and set the new quotient bit (Q's low bit).
        """
        regs = self.regs
        rem = self._read_t(task)
        q = regs.q
        shifted = ((rem << 1) | (q >> 15)) & 0x1FFFF
        q = (q << 1) & 0xFFFF
        if shifted >= a_value:
            shifted -= a_value
            q |= 1
        regs.write_q(q)
        self._pending[T_KEY_BASE + task] = word(shifted)
