"""The console processor interface (section 6.2.3).

"Another computer (either a separate microcomputer or an Alto) serves as
the console processor for the Dorado; it is interfaced via the CPREG and
a very small number of control signals."  The console is how microcode
is loaded, the machine initialized, and microprograms debugged; we model
it as an object with those powers plus a trace buffer the FF ``TRACE``
function appends to (our stand-in for the microprogram debugger's
logging).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import EncodingError
from .microword import MicroInstruction


class Console:
    """CPREG, the IM write paths, and debug facilities."""

    def __init__(self, im_size: int) -> None:
        self.im_size = im_size
        self.cpreg = 0
        self.trace: List[int] = []
        self.notifications: List[int] = []  # PCs of NOTIFY instructions
        self._im_address_latch = 0
        self._im_partial = 0
        #: Called with the IM address after every completed microstore
        #: write, so the processor can invalidate its execution-plan
        #: cache for that slot (DESIGN.md section 5).
        self.on_im_write: Optional[Callable[[int], None]] = None

    # --- microcode-side paths (FF functions) ------------------------------

    def latch_im_address(self, value: int) -> None:
        """FF ``IM_ADDR_B``."""
        self._im_address_latch = value % self.im_size
        self._im_partial = 0

    def im_write_low(self, value: int) -> None:
        """FF ``IM_WRITE_LO``: bits 15:0 of the staged microword."""
        self._im_partial = (self._im_partial & ~0xFFFF) | (value & 0xFFFF)

    def im_write_mid(self, value: int) -> None:
        """FF ``IM_WRITE_MID``: bits 31:16."""
        self._im_partial = (self._im_partial & ~(0xFFFF << 16)) | ((value & 0xFFFF) << 16)

    def im_write_high(self, value: int, im: List[Optional[MicroInstruction]]) -> None:
        """FF ``IM_WRITE_HI``: bits 33:32, completing the write.

        The three-step staging mirrors the "somewhat tortuous" folded
        data paths the paper describes for writing the microstore.
        """
        self._im_partial = (self._im_partial & 0xFFFFFFFF) | ((value & 0x3) << 32)
        im[self._im_address_latch] = MicroInstruction.decode(self._im_partial)
        if self.on_im_write is not None:
            self.on_im_write(self._im_address_latch)

    def im_read(self, piece: int, im: List[Optional[MicroInstruction]]) -> int:
        """FF ``IM_READ_*``: a 16-bit piece of the latched IM word.

        Reading uninitialized words returns zero, as cleared RAM would.
        """
        inst = im[self._im_address_latch]
        bits = inst.encode() if inst is not None else 0
        return (bits >> (16 * piece)) & 0xFFFF

    def record_trace(self, value: int) -> None:
        """FF ``TRACE``: append a word to the trace buffer."""
        self.trace.append(value)

    def record_notify(self, pc: int) -> None:
        """A NOTIFY next-control executed at *pc*."""
        self.notifications.append(pc)

    # --- host-side conveniences ----------------------------------------------

    def clear(self) -> None:
        self.trace.clear()
        self.notifications.clear()

    def pop_trace(self) -> List[int]:
        """Drain and return the trace buffer."""
        values = list(self.trace)
        self.trace.clear()
        return values

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """CPREG, both debug buffers, and the staged IM write latches.

        ``on_im_write`` is a hook, not state; ``im_size`` is config.
        """
        return {
            "cpreg": self.cpreg,
            "trace": list(self.trace),
            "notifications": list(self.notifications),
            "im_address_latch": self._im_address_latch,
            "im_partial": self._im_partial,
        }

    def load_state(self, state: dict) -> None:
        self.cpreg = state["cpreg"]
        self.trace = list(state["trace"])
        self.notifications = list(state["notifications"])
        self._im_address_latch = state["im_address_latch"]
        self._im_partial = state["im_partial"]
