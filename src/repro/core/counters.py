"""Performance counters.

The real Dorado was measured with oscilloscopes and microcode counters;
the simulator just counts.  Everything the benchmarks report -- task
occupancy, hold cycles, cache behaviour, words moved over each bus -- is
derived from one :class:`Counters` instance attached to the processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List

from ..types import NUM_TASKS

#: Hold-cause codes, as returned by ``Processor._check_hold`` and mirrored
#: by the plan path's compiled hold flags (the priority order is the
#: hardware's: a fast-I/O start blocked by busy storage, then MEMDATA not
#: ready, then NextMacro with no decoded dispatch).
HOLD_NONE = 0
HOLD_STORAGE = 1
HOLD_MD = 2
HOLD_IFU = 3

#: ``Counters.hold_causes`` index -> human-readable cause name.
HOLD_CAUSE_NAMES = ("storage_busy", "md_wait", "ifu_wait")

#: Counter fields owned by the recovery supervisor (DESIGN.md 5.5).
#: These describe the *supervision* of a run, not its architectural
#: trajectory, so byte-identity comparisons strip them
#: (:func:`repro.supervise.architectural_json`) and a rollback
#: preserves them across ``restore``.
RECOVERY_FIELDS = ("checks_failed", "rollbacks", "replays", "degrades")


@dataclass
class Counters:
    """Event counts accumulated over a simulation run."""

    cycles: int = 0
    instructions: int = 0
    held_cycles: int = 0
    task_switches: int = 0
    blocks: int = 0
    task_cycles: List[int] = field(default_factory=lambda: [0] * NUM_TASKS)
    task_held: List[int] = field(default_factory=lambda: [0] * NUM_TASKS)
    task_instructions: List[int] = field(default_factory=lambda: [0] * NUM_TASKS)
    cache_hits: int = 0
    cache_misses: int = 0
    storage_reads: int = 0
    storage_writes: int = 0
    fastio_munches: int = 0
    slowio_words_in: int = 0
    slowio_words_out: int = 0
    memory_fetches: int = 0
    memory_stores: int = 0
    faults_injected: int = 0
    faults_latched: int = 0
    ecc_corrected: int = 0
    ecc_uncorrected: int = 0
    disk_retries: int = 0
    disk_remaps: int = 0
    #: Held cycles by cause, indexed HOLD_STORAGE-1 / HOLD_MD-1 / HOLD_IFU-1
    #: (see HOLD_CAUSE_NAMES); the three sum to ``held_cycles``.
    hold_causes: List[int] = field(default_factory=lambda: [0, 0, 0])
    #: Recovery-supervisor bookkeeping (RECOVERY_FIELDS): sanitizer
    #: checks tripped, checkpoints rolled back to, replays launched,
    #: and plan-cache -> interpreter degradations.
    checks_failed: int = 0
    rollbacks: int = 0
    replays: int = 0
    degrades: int = 0

    def record_cycle(self, task: int, held: bool) -> None:
        self.cycles += 1
        self.task_cycles[task] += 1
        if held:
            self.held_cycles += 1
            self.task_held[task] += 1
        else:
            self.instructions += 1
            self.task_instructions[task] += 1

    def hold_attribution(self) -> Dict[str, int]:
        """Held cycles by cause: why did the machine wait?"""
        attribution = dict(zip(HOLD_CAUSE_NAMES, self.hold_causes))
        attribution["total"] = self.held_cycles
        return attribution

    def occupancy(self, task: int) -> float:
        """Fraction of all cycles spent running (or held in) *task*."""
        if self.cycles == 0:
            return 0.0
        return self.task_cycles[task] / self.cycles

    @property
    def hit_rate(self) -> float:
        refs = self.cache_hits + self.cache_misses
        return self.cache_hits / refs if refs else 1.0

    def delta(self, earlier: "Counters") -> "Counters":
        """Counter differences since an earlier snapshot of *self*."""
        return Counters(
            cycles=self.cycles - earlier.cycles,
            instructions=self.instructions - earlier.instructions,
            held_cycles=self.held_cycles - earlier.held_cycles,
            task_switches=self.task_switches - earlier.task_switches,
            blocks=self.blocks - earlier.blocks,
            task_cycles=[a - b for a, b in zip(self.task_cycles, earlier.task_cycles)],
            task_held=[a - b for a, b in zip(self.task_held, earlier.task_held)],
            task_instructions=[
                a - b for a, b in zip(self.task_instructions, earlier.task_instructions)
            ],
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            storage_reads=self.storage_reads - earlier.storage_reads,
            storage_writes=self.storage_writes - earlier.storage_writes,
            fastio_munches=self.fastio_munches - earlier.fastio_munches,
            slowio_words_in=self.slowio_words_in - earlier.slowio_words_in,
            slowio_words_out=self.slowio_words_out - earlier.slowio_words_out,
            memory_fetches=self.memory_fetches - earlier.memory_fetches,
            memory_stores=self.memory_stores - earlier.memory_stores,
            faults_injected=self.faults_injected - earlier.faults_injected,
            faults_latched=self.faults_latched - earlier.faults_latched,
            ecc_corrected=self.ecc_corrected - earlier.ecc_corrected,
            ecc_uncorrected=self.ecc_uncorrected - earlier.ecc_uncorrected,
            disk_retries=self.disk_retries - earlier.disk_retries,
            disk_remaps=self.disk_remaps - earlier.disk_remaps,
            hold_causes=[a - b for a, b in zip(self.hold_causes, earlier.hold_causes)],
            checks_failed=self.checks_failed - earlier.checks_failed,
            rollbacks=self.rollbacks - earlier.rollbacks,
            replays=self.replays - earlier.replays,
            degrades=self.degrades - earlier.degrades,
        )

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> Dict[str, object]:
        """Every counter field as plain data, list fields copied."""
        state: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            state[f.name] = list(value) if isinstance(value, list) else value
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        for f in fields(self):
            value = state[f.name]
            setattr(self, f.name, list(value) if isinstance(value, list) else value)

    def copy(self) -> "Counters":
        """Thin alias over the snapshot protocol."""
        fresh = Counters()
        fresh.load_state(self.state_dict())
        return fresh

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers, for reports."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "held_cycles": self.held_cycles,
            "task_switches": self.task_switches,
            "cache_hit_rate": self.hit_rate,
            "storage_reads": self.storage_reads,
            "storage_writes": self.storage_writes,
            "fastio_munches": self.fastio_munches,
            "faults_injected": self.faults_injected,
            "faults_latched": self.faults_latched,
            "ecc_corrected": self.ecc_corrected,
            "ecc_uncorrected": self.ecc_uncorrected,
            "disk_retries": self.disk_retries,
            "disk_remaps": self.disk_remaps,
            "checks_failed": self.checks_failed,
            "rollbacks": self.rollbacks,
            "replays": self.replays,
            "degrades": self.degrades,
        }
