"""The 32-bit barrel shifter and masker (section 6.3.4).

"The Dorado has a 32 bit barrel shifter for handling bit-aligned data.
It takes 32 bits from RM and T, performs a left cycle of any number of
bit positions, and places the result on RESULT.  The ALU output may be
masked during a shift instruction, either with zeroes or with data from
MEMDATA."

SHIFTCTL packs the shift amount and the left/right mask widths::

    bits  4..0   left-cycle amount (0..31)
    bits  8..5   left mask width  (bits masked off at the high end)
    bits 12..9   right mask width (bits masked off at the low end)

A "shift" microoperation (FF ``SHIFT_OUT`` / ``SHIFT_MASKZ`` /
``SHIFT_MASKMD``) left-cycles the 32-bit quantity ``RM:T`` and takes the
high-order word of the result; with masking, positions outside the mask
window come from zero or from MEMDATA.  :func:`field_control` computes
the SHIFTCTL value that extracts an arbitrary bit field -- the setup the
paper says is loaded "with values useful for field extraction".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict

from ..errors import EncodingError
from ..types import WORD_MASK, ones_mask, rotate_left_32

_AMOUNT_MASK = 0x1F
_LMASK_SHIFT = 5
_RMASK_SHIFT = 9
_MASK_WIDTH_MASK = 0xF

#: SHIFTCTL bits that decode actually reads.
_DECODE_MASK = _AMOUNT_MASK | (_MASK_WIDTH_MASK << _LMASK_SHIFT) | (
    _MASK_WIDTH_MASK << _RMASK_SHIFT
)

#: Decode is pure and ShiftControl immutable, so SHIFTCTL values decode
#: once ever; the cycle-stepped core decodes the live register every
#: shift instruction and this memo makes that a dict hit.
_DECODED: Dict[int, "ShiftControl"] = {}


@dataclass(frozen=True)
class ShiftControl:
    """Decoded SHIFTCTL contents."""

    amount: int = 0       #: left-cycle distance, 0..31
    left_mask: int = 0    #: bits masked off at the high end, 0..15
    right_mask: int = 0   #: bits masked off at the low end, 0..15

    def __post_init__(self) -> None:
        if not 0 <= self.amount <= 31:
            raise EncodingError(f"shift amount {self.amount} out of range 0..31")
        if not 0 <= self.left_mask <= 15:
            raise EncodingError(f"left mask {self.left_mask} out of range 0..15")
        if not 0 <= self.right_mask <= 15:
            raise EncodingError(f"right mask {self.right_mask} out of range 0..15")

    def encode(self) -> int:
        """Pack into the 16-bit SHIFTCTL register format."""
        return (
            self.amount
            | (self.left_mask << _LMASK_SHIFT)
            | (self.right_mask << _RMASK_SHIFT)
        )

    @staticmethod
    def decode(value: int) -> "ShiftControl":
        key = value & _DECODE_MASK
        control = _DECODED.get(key)
        if control is None:
            control = _DECODED[key] = ShiftControl(
                amount=value & _AMOUNT_MASK,
                left_mask=(value >> _LMASK_SHIFT) & _MASK_WIDTH_MASK,
                right_mask=(value >> _RMASK_SHIFT) & _MASK_WIDTH_MASK,
            )
        return control

    @cached_property
    def mask(self) -> int:
        """The window of result bits the shifter output occupies.

        One bits where the (masked) shifter output appears; zero bits
        are filled from the mask source (zero or MEMDATA).
        """
        window = ones_mask(16 - self.left_mask) & ~ones_mask(self.right_mask)
        return window & WORD_MASK


def shift(control: ShiftControl, rm: int, t: int) -> int:
    """The raw shifter output: high word of ``rotl32(RM:T, amount)``."""
    double = ((rm & WORD_MASK) << 16) | (t & WORD_MASK)
    return (rotate_left_32(double, control.amount) >> 16) & WORD_MASK


def shift_masked(control: ShiftControl, rm: int, t: int, fill: int) -> int:
    """Shifter output with the mask window applied.

    Bits inside the window come from the shifter; bits outside come
    from *fill* (zero for ``SHIFT_MASKZ``, MEMDATA for ``SHIFT_MASKMD``
    -- the latter is what lets BitBlt merge a shifted source into a
    destination word in a single microinstruction).
    """
    window = control.mask
    out = shift(control, rm, t)
    return (out & window) | (fill & ~window & WORD_MASK)


def field_control(position: int, width: int) -> ShiftControl:
    """SHIFTCTL for extracting a *width*-bit field from an RM word.

    *position* is the bit offset of the field's least significant bit
    (0 = the word's LSB).  After ``SHIFT_MASKZ`` with this control on
    ``RM:T`` where RM holds the word (and T is a don't-care), RESULT is
    the field right-justified.
    """
    if width < 1 or width > 16:
        raise EncodingError(f"field width {width} out of range 1..16")
    if position < 0 or position + width > 16:
        raise EncodingError(f"field at {position} width {width} does not fit in a word")
    # RM occupies the high half of RM:T and the output is the high word
    # of the rotated pair, so a left cycle by (32 - p) % 32 brings RM's
    # bit p to the output LSB; mask off everything above the field.
    return ShiftControl(
        amount=(32 - position) % 32,
        left_mask=16 - width,
        right_mask=0,
    )


def insert_control(position: int, width: int) -> ShiftControl:
    """SHIFTCTL for depositing a right-justified field into a word.

    With RM holding the right-justified field, ``SHIFT_MASKMD`` with
    this control left-cycles the field to *position* and fills every
    other bit from MEMDATA -- a one-instruction read-modify-write of a
    field, as used by the store-field byte codes and by BitBlt.
    """
    if width < 1 or width > 16:
        raise EncodingError(f"field width {width} out of range 1..16")
    if position < 0 or position + width > 16:
        raise EncodingError(f"field at {position} width {width} does not fit in a word")
    return ShiftControl(
        amount=position,
        left_mask=16 - width - position,
        right_mask=position,
    )


def byte_swap_control() -> ShiftControl:
    """SHIFTCTL that swaps the bytes of a word held in both RM and T.

    A 16-bit byte swap is a rotate by 8 of the word itself, which the
    32-bit left cycle performs when RM and T hold the same word (the
    standard Dorado idiom for single-word rotates).
    """
    return ShiftControl(amount=8, left_mask=0, right_mask=0)


def rotate_control(amount: int) -> ShiftControl:
    """SHIFTCTL for a left rotate of a single word held in both RM and T."""
    if not 0 <= amount <= 15:
        raise EncodingError(f"word rotate amount {amount} out of range 0..15")
    return ShiftControl(amount=amount, left_mask=0, right_mask=0)
