"""Compiled-trace execution: hot plan runs specialized into Python source.

The plan cache (:mod:`repro.core.plancache`) hoists microword *decode*
out of the cycle loop but still pays one Python dispatch per field per
cycle: every cycle re-tests ``b_kind``/``a_kind``/``res_kind``/
``next_kind`` even though the instruction at a given IM slot never
changes between invalidations.  Following the compiled-simulation
literature (Reshadi & Dutt, PAPERS.md), this module removes that last
dispatch layer for *hot* code: when the run loop observes the same
back-edge ``(task, entry_pc)`` often enough it records one pass through
the region, emits specialized Python source for the whole trace -- plan
fields folded to literals, the ALUFM operation and FF side effect of
each step inlined as straight-line arithmetic, the shifter decoded once
per SHIFTCTL value, the bypass-latch commit specialized to the
statically known writes of the predecessor step, and the cycle tail
(counters, TPC, the NEXT decision, clock ticks, arbitration) reduced to
what the recorded schedule can actually observe -- ``exec``\\ s it, and
caches the closure.  ``Processor._run_traced`` then executes traces
from its hot loop and falls back to the plan interpreter everywhere
else.

Correctness contract (DESIGN.md section 5.6):

* A trace is a pure transliteration of ``Processor._step_plan`` for a
  recorded sequence of plans.  Every architectural effect -- bypass
  latch commits, saved carry, hold-cause attribution, device ticks,
  memory/IFU clocks, task arbitration -- happens cycle-exactly, so the
  three-way differential matrix in ``tests/test_fastpath_parity.py``
  (interp vs plan vs traced) stays bit-identical, counters included.
* Traces *batch* only values nothing else can observe mid-trace: the
  cycle counters, ``this_pc``, ``now`` and ``_published_next`` live in
  locals and are flushed in a ``finally``, so even a mid-cycle
  exception (HoldTimeout, an injected TransientFault, a DeviceError)
  leaves the machine byte-identical to the plan path's.
* The *single-task fast tail*.  When the trace belongs to the emulator
  task and compile-time state proves no other task can become runnable
  (no devices attached, no fault task, no fault injector, no
  WAKEUP/READY/TPC writes inside the trace), the generated entry guard
  checks ``pipe.lines | pipe.ready == 1`` and the trace then skips the
  per-cycle scheduler entirely: task 0's wakeup line is permanently
  asserted, so arbitration returns task 0 every cycle and ``TPC[0]``,
  ``best_pc``, ``memory.now`` (and ``ifu.now`` while the IFU is off)
  batch in locals, flushed in the same ``finally``.  If the guard
  fails, the trace returns having touched nothing and the run loop
  takes the plan path for that cycle.
* Bail-out rules.  A trace exits -- after completing the current cycle
  exactly -- whenever the NEXT decision leaves the trace's task, a
  dynamic NEXTPC (branch, IFU dispatch, return, B-dispatch) diverges
  from the recorded path, or the cycle budget is spent.  Traces are
  never *entered* while a ``trace_hook`` is installed (instrumentation
  sees every cycle interpretively) or while a memory fault is latched.
* Invalidation.  Any IM write -- console, bootstrap loader,
  ``load_image``, direct pokes, slices -- funnels through
  ``MicrostoreImage.__setitem__`` into ``Processor._invalidate_plan``,
  which calls :meth:`TraceCache.invalidate_all`: traces, hot counts,
  the blacklist and any in-flight recording are all dropped.  The only
  *in-run* IM write path (FF ``IM_WRITE_HI``) is excluded from traces
  entirely, so generated code can never run stale.  Because traces
  inline ALUFM semantics, FF ``ALUFM_WRITE`` is likewise untraceable
  and ``Processor._apply_ff`` invalidates the cache when it rewrites an
  ALU operation.  ``restore()`` and ``attach_device()`` also
  invalidate; ``fork()`` builds a fresh machine and therefore a fresh,
  empty cache -- closures are never shared between machines.
* Untraceable steps.  ``REF_BAD``/``NEXT_BAD`` plans (they raise), FF
  ``HALT`` (the trace loop does not re-check ``halted`` per cycle), FF
  ``BREAKPOINT`` (its message reads ``this_pc``, which is batched), FF
  ``IM_WRITE_HI`` and ``ALUFM_WRITE`` (self-modifying code), and fast
  I/O with no device attached end a recording; the trace covers the
  prefix.  A recording that reaches a pc it has already recorded (an
  inner loop) is cut short too, so inner loops compile as compact loop
  traces instead of being unrolled into the enclosing region.
* Compilation is memoized process-wide on the generated source text:
  two machines that get identical microcode hot in the same places
  share code objects (each still ``exec``\\ s into its own namespace,
  so closures and their environments are never shared).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .alu import AluFunc, CarryIn
from .functions import FF, bank_argument, is_count_small, is_membase_small
from .plancache import (
    A_IFU,
    A_MD,
    A_Q,
    A_RM,
    A_T,
    B_CONST,
    B_EXTB,
    B_Q,
    B_RM,
    B_T,
    EXTB_CPREG,
    EXTB_IFUDATA,
    EXTB_IFUPC,
    EXTB_LINK,
    EXTB_MD,
    EXTB_THISTASK,
    NEXT_BAD,
    NEXT_BRANCH,
    NEXT_CALL,
    NEXT_DISPATCH8,
    NEXT_DISPATCH256,
    NEXT_MACRO,
    NEXT_NOTIFY,
    NEXT_RETURN,
    NEXT_STATIC,
    REF_BAD,
    REF_FETCH,
    REF_IOFETCH,
    REF_IOSTORE,
    REF_STORE,
    RES_LSH,
    RES_NONE,
    RES_OTHER,
    RES_RSH,
    RES_SHIFT_MASKMD,
    RES_SHIFT_MASKZ,
    RES_SHIFT_OUT,
    ExecutionPlan,
)
from .shifter import ShiftControl
from ..types import EMULATOR_TASK

#: Back-edge executions of one ``(task, entry_pc)`` before recording.
HOT_THRESHOLD = 8

#: Hard cap on recorded steps; a region longer than this compiles as a
#: straight-line prefix (the tail stays on the plan interpreter).
MAX_TRACE_STEPS = 128

#: A non-loop recording shorter than this is blacklisted: the entry
#: binding overhead would eat the win.  Loop traces amortize their
#: entry over every iteration, so any closed loop is worth compiling.
MIN_STRAIGHT_STEPS = 3

#: FF codes a trace must not contain (see the module docstring).
_UNTRACEABLE_FFS = frozenset(
    {
        int(FF.HALT),
        int(FF.BREAKPOINT),
        int(FF.IM_WRITE_HI),
        int(FF.ALUFM_WRITE),
    }
)

#: NEXTPC kinds whose target is a compile-time constant: no divergence
#: guard is emitted for them.
_STATIC_NEXT_KINDS = frozenset({NEXT_STATIC, NEXT_CALL, NEXT_NOTIFY})

#: FF codes that touch scheduler state the single-task fast tail
#: proves constant; a trace containing one compiles in general mode.
_SCHED_FFS = frozenset(
    {int(FF.WAKEUP_B), int(FF.READY_B), int(FF.TPC_B), int(FF.READ_TPC)}
)

#: ``RES_OTHER`` overrides simple enough to inline as a register read
#: (the rest keep the generic ``_result_override`` call).
_INLINE_READS = {
    int(FF.READ_SHIFTCTL): "regs.shiftctl",
    int(FF.READ_COUNT): "regs.count",
    int(FF.READ_RBASE): "rb[{task}]",
    int(FF.READ_MEMBASE): "mb[{task}]",
    int(FF.READ_STACKPTR): "stack.pointer",
    int(FF.READ_IOADDRESS): "regs.ioaddress[{task}]",
}

#: ALU functions with no adder involvement: no carry latch, no
#: carry-out, no overflow.
_LOGICAL_ALU = {
    AluFunc.A_AND_B: "a & b",
    AluFunc.A_OR_B: "a | b",
    AluFunc.A_XOR_B: "a ^ b",
    AluFunc.A_ONLY: "a",
    AluFunc.B_ONLY: "b",
    AluFunc.NOT_B: "b ^ 65535",
    AluFunc.NOT_A: "a ^ 65535",
    AluFunc.A_AND_NOT_B: "a & (b ^ 65535)",
    AluFunc.A_OR_NOT_B: "a | (b ^ 65535)",
    AluFunc.ZERO: "0",
}

#: Process-wide ``compile()`` memo keyed by (filename, source): fresh
#: machines that heat up the same microcode skip recompilation (the
#: dominant cold-start cost).  Closures are still per-machine.
_COMPILE_MEMO: Dict[Tuple[str, str], object] = {}
_COMPILE_MEMO_LIMIT = 512


def plan_traceable(plan: ExecutionPlan, task: int, cpu) -> bool:
    """Whether *plan*, executed by *task*, may appear inside a trace."""
    if plan.ref_kind == REF_BAD or plan.next_kind == NEXT_BAD:
        return False
    if plan.ff_is_function and plan.ff in _UNTRACEABLE_FFS:
        return False
    if plan.ref_kind in (REF_IOFETCH, REF_IOSTORE):
        if cpu._device_by_task.get(task) is None:
            return False
    return True


class _Writer:
    """Tiny indentation-tracking source emitter."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Ctx:
    """Per-trace analysis shared by the step emitters."""

    def __init__(self, cpu, task: int, entry: int, steps, loop: bool) -> None:
        self.task = task
        self.entry = entry
        self.loop = loop
        self.rbit = 1 << task
        self.tkey = 256 + task  # T_KEY_BASE + task
        self.bypass = cpu.config.bypass_enabled
        self.im_mask = cpu.control.im_mask
        hold_limit = cpu._hold_limit
        if hold_limit is None:
            from .processor import HOLD_LIMIT

            hold_limit = HOLD_LIMIT
        self.hold_limit = hold_limit
        self.devices = list(cpu._devices)
        #: ALUFM snapshot; valid for the trace's lifetime because
        #: ALUFM_WRITE is untraceable and invalidates the cache.
        self.alufm = list(cpu.alu._alufm)
        self.n_steps = len(steps)
        plans = [p for _, p in steps]

        def ffv(p: ExecutionPlan) -> int:
            return p.ff if p.ff_is_function else -1

        self.uses_ioatn = any(
            p.cond >= 0 and p.cond not in (0, 1, 2, 3, 4, 5, 7) for p in plans
        )
        self.has_holds = any(not p.hold_none for p in plans)
        self.has_shift = any(
            p.res_kind in (RES_SHIFT_OUT, RES_SHIFT_MASKZ, RES_SHIFT_MASKMD)
            for p in plans
        )
        self.has_ref = any(
            p.ref_kind in (REF_FETCH, REF_STORE, REF_IOFETCH, REF_IOSTORE)
            for p in plans
        )
        #: No step rewrites RBASE: the rm bank nibble hoists to entry.
        self.rbk_stable = all(ffv(p) != int(FF.RBASE_B) for p in plans)
        #: No step rewrites this task's MEMBASE: it hoists to entry.
        self.mb_stable = all(
            ffv(p) != int(FF.MEMBASE_B) and not is_membase_small(ffv(p))
            for p in plans
        )
        self.uses_ifu = any(
            p.a_kind == A_IFU
            or (p.b_kind == B_EXTB and p.extb_kind in (EXTB_IFUDATA, EXTB_IFUPC))
            or p.next_kind == NEXT_MACRO
            or p.hold_nextmacro
            or p.consumes_ifu
            or ffv(p) in (int(FF.IFU_JUMP), int(FF.IFU_RESET))
            for p in plans
        )
        sched_safe = all(
            p.next_kind != NEXT_NOTIFY and ffv(p) not in _SCHED_FFS
            for p in plans
        )
        #: Single-task fast mode: statically, nothing can make another
        #: task runnable (task 0's own wakeup line is permanent, so
        #: with the entry guard arbitration returns task 0 forever).
        self.fast = (
            task == EMULATOR_TASK
            and not self.devices
            and cpu._fault_task is None
            and cpu.memory.injector is None
            and sched_safe
        )
        #: Fast mode inlines the translate-plus-cache-hit path of
        #: Fetch/Store directly (injector statically None there); any
        #: miss, fault, or protection case falls back to the full
        #: ``start_fetch``/``start_store`` call.
        self.inline_refs = self.fast and any(
            p.ref_kind in (REF_FETCH, REF_STORE) for p in plans
        )
        self.hit_cycles = cpu.config.cache_hit_cycles
        self.nbases = cpu.config.num_base_registers
        #: Fast loop traces keep the bypass latch in locals and commit
        #: register writes directly between steps; the pending dict is
        #: materialized only at the back edge and at exits that land on
        #: a cycle boundary with a write still in flight.
        self.lazy = self.fast and loop
        #: Statically known writes of the predecessor step, driving the
        #: specialized commit and bypass reads.  None = unknown (trace
        #: entry, or a MULSTEP/DIVSTEP that writes the latch itself).
        self.prev: Optional[dict] = None

    def rkey(self, rsel: int) -> str:
        """Source for an RM address: bank nibble | register select."""
        if self.rbk_stable:
            return f"rbk | {rsel}" if rsel else "rbk"
        return f"((rb[{self.task}] & 15) << 4) | {rsel}"

    def mbase(self) -> str:
        return "mb0" if self.mb_stable else f"mb[{self.task}]"


def compile_trace(cpu, task: int, entry: int, steps, loop: bool):
    """Codegen one trace into ``(closure, source)``.

    *steps* is the recorded ``[(pc, plan), ...]`` for one pass through
    the region starting at *entry*; *loop* says the last step's
    successor is *entry* again (the generated function then iterates in
    place instead of returning after one pass).
    """
    w = _Writer()
    ctx = _Ctx(cpu, task, entry, steps, loop)
    env: Dict[str, object] = {}
    if ctx.has_shift:
        env["SCdecode"] = ShiftControl.decode
    for j, device in enumerate(ctx.devices):
        env[f"D{j}"] = device

    w.emit("def trace(cpu, budget):")
    w.indent()
    # Bindings the fast-mode entry guards read come first: a failed
    # guard returns having touched nothing, and the run loop takes the
    # plan path for that cycle.
    w.emit("pipe = cpu.pipe")
    w.emit("memory = cpu.memory")
    w.emit("ifu = cpu.ifu")
    if ctx.fast:
        w.emit(f"if pipe.lines | pipe.ready != {ctx.rbit}: return")
        w.emit("if memory._fast_in_flight: return")
        if not ctx.uses_ifu:
            w.emit("if ifu.running: return")
    if ctx.inline_refs:
        # The inlined hit path assumes no armed one-shot map fault; a
        # restored state could carry one even with the injector off.
        w.emit("trans = memory.translator")
        w.emit("if trans.inject_next is not None: return")
        w.emit("_pmap = trans.map")
        w.emit("_bases = trans.bases")
        w.emit("_bmask = trans._base_mask")
        w.emit("_cache = memory.cache")
        w.emit("_sets = _cache.sets")
        w.emit("_nsets = _cache.num_sets")
        w.emit("_size = memory.storage.size")
    w.emit("tpc = pipe.tpc")
    w.emit("regs = cpu.regs")
    w.emit("rml = regs.rm")
    w.emit("tl = regs.t")
    w.emit("sc = regs.saved_carry")
    w.emit("rb = regs.rbase")
    w.emit("mb = regs.membase")
    w.emit(f"ref = memory._refs[{task}]")
    w.emit("pending = cpu._pending")
    w.emit("counters = cpu.counters")
    w.emit("stack = cpu.stack")
    w.emit("link = cpu.control.link")
    w.emit("console = cpu.console")
    if ctx.uses_ioatn:
        w.emit("devmap = cpu._device_by_address")
        w.emit("ioaddr = regs.ioaddress")
    if ctx.rbk_stable:
        w.emit(f"rbk = (rb[{task}] & 15) << 4")
    if ctx.mb_stable and ctx.has_ref:
        w.emit(f"mb0 = mb[{task}]")
    if ctx.has_shift:
        # Per-trace SHIFTCTL decode cache (reset by FF SHIFTCTL_B).
        w.emit("_scv = -1")
    w.emit("tp = cpu.this_pc")
    w.emit("pub = cpu._published_next")
    w.emit("now_ = cpu.now")
    if ctx.fast:
        w.emit("mnow = memory.now")
    w.emit("ch = cpu._consecutive_holds")
    if ctx.fast:
        w.emit("cyc = 0; ins = 0; hld = 0")
    else:
        w.emit("cyc = 0; ins = 0; hld = 0; blk = 0; sw = 0")
    if ctx.inline_refs:
        w.emit("mf = 0; ms = 0; chit = 0")
    w.emit("h1 = 0; h2 = 0; h3 = 0")
    w.emit("try:")
    w.indent()
    if ctx.lazy:
        # One conservative budget check reserves the first iteration;
        # later iterations re-reserve at the loop bottom.  A zero-
        # progress return is handled by the run loop (it plan-steps
        # once instead of re-entering).
        w.emit(f"if budget < {ctx.n_steps}: return")
    w.emit("while True:")
    w.indent()
    if ctx.fast and loop:
        if not ctx.has_holds:
            w.emit("ch = 0")

    count = len(steps)
    for i, (pc, plan) in enumerate(steps):
        if i + 1 < count:
            expected: Optional[int] = steps[i + 1][0]
        else:
            expected = entry if loop else None
        _emit_step(w, env, ctx, i, pc, plan, expected)
    if ctx.lazy:
        # Reserve the next iteration; the last step already parked its
        # write in the pending dict, so returning here is a clean cycle
        # boundary and the back edge re-enters step 0's entry commit.
        w.emit(f"if cyc + {ctx.n_steps} > budget: return")
    if not loop:
        w.emit("return")
    w.dedent()  # while
    w.dedent()  # try
    w.emit("finally:")
    w.indent()
    w.emit("counters.cycles += cyc")
    w.emit("counters.instructions += ins")
    w.emit(f"counters.task_cycles[{task}] += cyc")
    w.emit(f"counters.task_instructions[{task}] += ins")
    w.emit("if hld:")
    w.indent()
    w.emit("counters.held_cycles += hld")
    w.emit(f"counters.task_held[{task}] += hld")
    w.emit("hc = counters.hold_causes")
    w.emit("if h1: hc[0] += h1")
    w.emit("if h2: hc[1] += h2")
    w.emit("if h3: hc[2] += h3")
    w.dedent()
    if not ctx.fast:
        w.emit("if blk: counters.blocks += blk")
        w.emit("if sw: counters.task_switches += sw")
    if ctx.inline_refs:
        w.emit("if mf: counters.memory_fetches += mf")
        w.emit("if ms: counters.memory_stores += ms")
        w.emit("if chit: counters.cache_hits += chit")
    w.emit("cpu.this_pc = tp")
    if ctx.fast:
        # The fast tail batches the scheduler-visible copies too;
        # tpc[0] == this_pc is an invariant at every exit and raise
        # point, and arbitration's best is always task 0 here.
        w.emit(f"tpc[{task}] = tp")
        w.emit("pipe.best_pc = tp")
    w.emit("cpu._published_next = pub")
    w.emit("cpu.now = now_")
    if ctx.fast:
        w.emit("memory.now = mnow")
        if not ctx.uses_ifu:
            w.emit("ifu.now += cyc")
    w.emit("cpu._consecutive_holds = ch")
    w.dedent()

    source = w.render()
    filename = f"<trace task{task} pc{entry:#o}>"
    memo_key = (filename, source)
    code = _COMPILE_MEMO.get(memo_key)
    if code is None:
        if len(_COMPILE_MEMO) >= _COMPILE_MEMO_LIMIT:
            _COMPILE_MEMO.clear()
        code = _COMPILE_MEMO[memo_key] = compile(source, filename, "exec")
    namespace = dict(env)
    exec(code, namespace)
    return namespace["trace"], source


def _emit_commit(w: _Writer, ctx: _Ctx) -> None:
    """The bypass-latch commit (mirrors ``_commit_pending``).

    When the predecessor step's writes are statically known the commit
    collapses to direct stores of its stashed locals (idempotent, so a
    hold spin re-running it is safe); the pending dict itself is always
    maintained by the writebacks, so the general form -- and any exit
    or exception -- stays exact.
    """
    prev = ctx.prev
    if prev is None:
        w.emit("if pending:")
        w.indent()
        w.emit("for _k, _v in pending.items():")
        w.indent()
        w.emit("if _k < 256:")
        w.indent()
        w.emit("rml[_k] = _v")
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit("tl[_k - 256] = _v & 0xFFFF")
        w.dedent()
        w.dedent()
        w.emit("pending.clear()")
        w.dedent()
    elif prev["rm"] or prev["t"]:
        if prev["rm"]:
            w.emit(f"rml[wk] = {prev['res']}")
        if prev["t"]:
            w.emit(f"tl[{ctx.task}] = {prev['res']} & 0xFFFF")
        if not ctx.lazy:
            w.emit("pending.clear()")
        # Lazy traces never put these writes in the dict, so there is
        # nothing to clear.
    # else: the predecessor wrote nothing -- pending is provably empty.


def _emit_pending_fixup(w: _Writer, ctx: _Ctx, plan: ExecutionPlan) -> None:
    """Materialize the current step's in-flight write into the pending
    dict (lazy traces only): called where control leaves the loop -- or
    crosses the back edge -- on a cycle boundary, so the machine state
    matches the interpreter's write-latched-but-uncommitted moment."""
    stack_op = plan.block and ctx.task == EMULATOR_TASK
    res_name = "r" if plan.res_kind == RES_NONE else "res"
    if not stack_op and plan.loads_rm:
        w.emit(f"pending[wk] = {res_name}")
    if plan.loads_t:
        w.emit(f"pending[{ctx.tkey}] = {res_name}")


def _emit_alu(w: _Writer, ctx: _Ctx, plan: ExecutionPlan) -> dict:
    """Inline one ALUFM operation; leaves ``r`` (and ``x`` when the
    adder ran) bound.  Returns what the condition emitter needs."""
    ctl = ctx.alufm[plan.aluop]
    func = ctl.func
    task = ctx.task
    expr = _LOGICAL_ALU.get(func)
    if expr is not None:
        w.emit(f"r = {expr}")
        return {"arith": False}
    saved = f"sc[{task}]"
    if func == AluFunc.A_PLUS_B:
        lhs, rhs = "a", "b"
        if ctl.carry_in == CarryIn.SAVED:
            cin = saved
        elif ctl.carry_in == CarryIn.ONE:
            cin = "1"
        else:
            cin = ""
    elif func == AluFunc.A_MINUS_B:
        # A + not B + 1; SAVED replaces the +1 for multi-precision.
        lhs, rhs = "a", "(b ^ 65535)"
        cin = saved if ctl.carry_in == CarryIn.SAVED else "1"
    elif func == AluFunc.B_MINUS_A:
        lhs, rhs, cin = "b", "(a ^ 65535)", "1"
    elif func == AluFunc.A_PLUS_1:
        lhs, rhs, cin = "a", "", "1"
    elif func == AluFunc.A_MINUS_1:
        lhs, rhs, cin = "a", "65535", ""
    else:  # AluFunc.B_PLUS_1
        lhs, rhs, cin = "b", "", "1"
    parts = [p for p in (lhs, rhs, cin) if p]
    w.emit(f"x = {' + '.join(parts)}")
    w.emit("r = x & 65535")
    # The adder always latches the task's saved carry.
    w.emit(f"sc[{task}] = x > 65535")
    return {"arith": True, "lhs": lhs, "rhs": rhs or "0"}


def _ff_inline(
    ctx: _Ctx, plan: ExecutionPlan, res_name: str
) -> Optional[List[str]]:
    """Constant-folded FF decode: the direct source for one FF side
    effect, or None for the rare FFs that keep the ``_apply_ff`` call
    (translator/map/cache/device writes, which are method-shaped
    anyway)."""
    ff = int(plan.ff)
    task = ctx.task
    if is_membase_small(ff):
        return [f"mb[{task}] = {bank_argument(ff) & 0x1F}"]
    if is_count_small(ff):
        return [f"regs.count = {bank_argument(ff) & 0xFFFF}"]
    if ff == int(FF.SHIFTCTL_B):
        lines = ["regs.shiftctl = b & 65535"]
        if ctx.has_shift:
            lines.append("_scv = -1")
        return lines
    simple = {
        int(FF.Q_B): ["regs.q = b & 65535"],
        int(FF.COUNT_B): ["regs.count = b & 65535"],
        int(FF.RBASE_B): [f"rb[{task}] = b & 15"],
        int(FF.MEMBASE_B): [f"mb[{task}] = b & 31"],
        int(FF.IOADDRESS_B): [f"regs.ioaddress[{task}] = b & 65535"],
        int(FF.CPREG_B): ["console.cpreg = b & 65535"],
        int(FF.TRACE): ["console.record_trace(b)"],
        int(FF.STACKPTR_B): ["stack.write_pointer(b)"],
        int(FF.LINK_B): [f"cpu.control.write_link({task}, b)"],
        int(FF.MULSTEP): [f"cpu._multiply_step({task}, {plan.aluop}, a)"],
        int(FF.DIVSTEP): [f"cpu._divide_step({task}, {plan.aluop}, a)"],
        int(FF.IFU_JUMP): [f"ifu.jump({res_name})"],
        int(FF.IFU_RESET): ["ifu.reset()"],
        int(FF.IM_ADDR_B): ["console.latch_im_address(b)"],
        int(FF.IM_WRITE_LO): ["console.im_write_low(b)"],
        int(FF.IM_WRITE_MID): ["console.im_write_mid(b)"],
        int(FF.WAKEUP_B): ["pipe.set_wakeup_mask(b)"],
        int(FF.READY_B): ["pipe.set_ready_mask(b)"],
        int(FF.TPC_B): ["pipe.write_tpc((b >> 12) & 15, b & 4095)"],
    }
    return simple.get(ff)


def _emit_tail_fast(
    w: _Writer, ctx: _Ctx, *, next_expr: Optional[str], executed: bool
) -> None:
    """One cycle's tail under the single-task guarantee: counters and
    clocks only.  Arbitration, READY/lines updates, ``this_task`` and
    the preemption check all collapse -- task 0 wins every cycle."""
    w.emit("cyc += 1")
    if executed:
        w.emit("ins += 1")
        if next_expr is not None:
            w.emit(f"tp = {next_expr}")
    else:
        w.emit("hld += 1")
    w.emit("mnow += 1")
    if ctx.uses_ifu:
        w.emit("ifu.tick()")
    w.emit("now_ += 1")


def _emit_tail_general(
    w: _Writer,
    ctx: _Ctx,
    *,
    next_expr: Optional[str],
    blocked: bool,
    executed: bool,
) -> None:
    """Counters + TPC + NEXT decision + clocks + arbitration, one cycle.

    Mirrors the tail of ``Processor._step_plan`` exactly, with the
    trace's counter batching.  Leaves ``nxt`` bound for the caller's
    exit checks.
    """
    task = ctx.task
    w.emit("cyc += 1")
    if executed:
        w.emit("ins += 1")
    else:
        w.emit("hld += 1")
    if next_expr is not None:
        w.emit(f"tpc[{task}] = {next_expr}")
    if blocked:
        w.emit("blk += 1")
        w.emit(f"pipe.ready &= ~{ctx.rbit}")
        w.emit("nxt = pipe.best_task")
    else:
        w.emit("best = pipe.best_task")
        w.emit(f"if best > {task}:")
        w.indent()
        w.emit(f"pipe.ready |= {ctx.rbit}")
        w.emit("nxt = best")
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit(f"nxt = {task}")
        w.dedent()
    w.emit("pipe.ready &= ~(1 << nxt)")
    w.emit("pipe.this_task = nxt")
    w.emit("tp = tpc[nxt]")
    if ctx.devices:
        # Devices read machine.now (pre-increment, as on the plan path).
        w.emit("cpu.now = now_")
        w.emit("g = pub")
        w.emit("pub = nxt")
        for j, device in enumerate(ctx.devices):
            if device.task is None:
                w.emit(f"D{j}.tick(cpu, granted=False)")
            else:
                w.emit(f"D{j}.tick(cpu, granted=(g == {device.task}))")
    else:
        w.emit("pub = nxt")
    w.emit("if memory._fast_in_flight:")
    w.indent()
    w.emit("memory.tick()")
    w.dedent()
    w.emit("else:")
    w.indent()
    w.emit("memory.now += 1")
    w.dedent()
    w.emit("if ifu.running:")
    w.indent()
    w.emit("ifu.tick()")
    w.dedent()
    w.emit("else:")
    w.indent()
    w.emit("ifu.now += 1")
    w.dedent()
    w.emit("now_ += 1")
    w.emit("req = pipe.lines | pipe.ready")
    w.emit("best = req.bit_length() - 1 if req else 0")
    w.emit("pipe.best_task = best")
    w.emit("pipe.best_pc = tpc[best]")


def _emit_step(
    w: _Writer,
    env: Dict[str, object],
    ctx: _Ctx,
    i: int,
    pc: int,
    plan: ExecutionPlan,
    expected: Optional[int],
) -> None:
    task = ctx.task
    fast = ctx.fast
    w.emit(f"# -- step {i}: pc {pc:#o}")

    # --- the Hold spin (a held cycle is a full cycle: commit, counters,
    # NEXT decision, clocks -- it can even be preempted away).
    if not plan.hold_none:
        nowv = "mnow" if fast else "memory.now"
        conds = []
        if plan.hold_fastio:
            conds.append((f"memory._storage_busy_until > {nowv}", 1))
        if plan.hold_md:
            conds.append(
                (f"not (ref.md_valid and ref.md_ready_at <= {nowv})", 2)
            )
        if plan.hold_nextmacro:
            conds.append(("not ifu.dispatch_ready", 3))
        if ctx.lazy:
            # The spin (and its budget recheck) only exists on the
            # actually-held path: an unheld pass costs one condition
            # evaluation and has consumed nothing since the last
            # reserve, so no recheck is needed.
            outer = " or ".join(f"({e})" for e, _ in conds)
            w.emit(f"if {outer}:")
            w.indent()
        w.emit("while True:")
        w.indent()
        kw = "if"
        for cond_expr, cause in conds:
            w.emit(f"{kw} {cond_expr}:")
            w.indent()
            w.emit(f"hc_ = {cause}")
            w.dedent()
            kw = "elif"
        w.emit("else:")
        w.indent()
        w.emit("break")
        w.dedent()
        w.emit("ch += 1")
        # Commit before the timeout check: the interpreter commits at
        # the top of every attempt, so a timeout raise must observe the
        # predecessor's write already landed.
        _emit_commit(w, ctx)
        w.emit(f"if ch > {ctx.hold_limit}:")
        w.indent()
        w.emit("cpu.now = now_")
        w.emit("cpu._consecutive_holds = ch")
        if fast:
            w.emit("memory.now = mnow")
        w.emit(f"raise cpu._hold_timeout({task}, {pc}, hc_)")
        w.dedent()
        if len(conds) == 1:
            only = conds[0][1]
            w.emit(f"h{only} += 1")
        else:
            w.emit("if hc_ == 1: h1 += 1")
            w.emit("elif hc_ == 2: h2 += 1")
            w.emit("else: h3 += 1")
        if fast:
            _emit_tail_fast(w, ctx, next_expr=None, executed=False)
            w.emit("if cyc >= budget:")
            w.indent()
            w.emit("return")
            w.dedent()
        else:
            _emit_tail_general(
                w, ctx, next_expr=None, blocked=False, executed=False
            )
            w.emit(f"if nxt != {task}:")
            w.indent()
            w.emit("sw += 1")
            w.emit("return")
            w.dedent()
            w.emit("if cyc >= budget:")
            w.indent()
            w.emit("return")
            w.dedent()
        w.dedent()  # hold spin
        if ctx.lazy:
            # Holds consumed budget the reserve set aside for executed
            # steps: re-reserve the rest of this iteration.
            w.emit(f"if cyc + {ctx.n_steps - i} > budget: return")
            w.dedent()  # if held
    if not (fast and ctx.loop and not ctx.has_holds):
        w.emit("ch = 0")

    # --- which operands this step actually reads.
    stack_op = plan.block and task == EMULATOR_TASK
    ffv = plan.ff if plan.ff_is_function else -1
    inline_read = plan.res_kind == RES_OTHER and ffv in _INLINE_READS
    shifty = plan.res_kind in (
        RES_SHIFT_OUT,
        RES_SHIFT_MASKZ,
        RES_SHIFT_MASKMD,
    ) or (plan.res_kind == RES_OTHER and not inline_read)
    need_rm = plan.b_kind == B_RM or plan.a_kind == A_RM or shifty
    need_t = plan.b_kind == B_T or plan.a_kind == A_T or shifty
    res_name = "r" if plan.res_kind == RES_NONE else "res"
    ff_lines = _ff_inline(ctx, plan, res_name) if plan.ff_effect else None
    ff_generic = plan.ff_effect and ff_lines is None
    need_md = (
        plan.a_kind == A_MD
        or (plan.b_kind == B_EXTB and plan.extb_kind == EXTB_MD)
        or plan.res_kind == RES_SHIFT_MASKMD
        or ff_generic
    )

    prev = ctx.prev
    if need_md:
        w.emit("md = ref.md_value")
    if need_rm:
        if stack_op:
            w.emit("rm = stack.read_top()")
        elif not ctx.bypass:
            w.emit(f"rm = rml[{ctx.rkey(plan.rsel)}]")
        elif prev is not None and not prev["rm"]:
            # The predecessor wrote no RM entry: read the RAM directly.
            w.emit(f"rm = rml[{ctx.rkey(plan.rsel)}]")
        elif prev is not None and ctx.rbk_stable:
            if prev["rsel"] == plan.rsel:
                # Static bypass hit: the predecessor's raw result.
                w.emit(f"rm = {prev['res']}")
            else:
                w.emit(f"rm = rml[{ctx.rkey(plan.rsel)}]")
        else:
            w.emit(f"ra = {ctx.rkey(plan.rsel)}")
            w.emit("rm = pending.get(ra)")
            w.emit("if rm is None:")
            w.indent()
            w.emit("rm = rml[ra]")
            w.dedent()
    if need_t:
        if not ctx.bypass:
            w.emit(f"t = tl[{task}]")
        elif prev is not None:
            if prev["t"]:
                w.emit(f"t = {prev['res']}")
            else:
                w.emit(f"t = tl[{task}]")
        else:
            w.emit(f"t = pending.get({ctx.tkey})")
            w.emit("if t is None:")
            w.indent()
            w.emit(f"t = tl[{task}]")
            w.dedent()

    # --- B bus, constant-folded by kind.
    b_kind = plan.b_kind
    if b_kind == B_CONST:
        w.emit(f"b = {plan.b_const}")
    elif b_kind == B_RM:
        w.emit("b = rm")
    elif b_kind == B_T:
        w.emit("b = t")
    elif b_kind == B_Q:
        w.emit("b = regs.q")
    else:
        extb = plan.extb_kind
        if extb == EXTB_MD:
            w.emit("b = md")
        elif extb == EXTB_IFUDATA:
            w.emit("b = ifu.read_operand()")
        elif extb == EXTB_CPREG:
            w.emit("b = console.cpreg")
        elif extb == EXTB_LINK:
            w.emit(f"b = link[{task}] & 0xFFFF")
        elif extb == EXTB_IFUPC:
            w.emit("b = ifu.pc & 0xFFFF")
        elif extb == EXTB_THISTASK:
            w.emit(f"b = {task}")
        else:
            w.emit(f"b = cpu._read_extb({task}, {plan.ff})")

    # --- A bus.
    a_kind = plan.a_kind
    if a_kind == A_RM:
        w.emit("a = rm")
    elif a_kind == A_T:
        w.emit("a = t")
    elif a_kind == A_MD:
        w.emit("a = md")
    elif a_kind == A_IFU:
        w.emit("a = ifu.read_operand()")
    else:
        w.emit("a = regs.q")

    # --- operand reads done: the predecessor's results land in the RAMs.
    _emit_commit(w, ctx)

    # --- ALU, inlined from the ALUFM snapshot.
    alu = _emit_alu(w, ctx, plan)

    # --- RESULT bus.
    res_kind = plan.res_kind
    if res_kind == RES_NONE:
        pass  # res_name is "r"
    elif res_kind in (RES_SHIFT_OUT, RES_SHIFT_MASKZ, RES_SHIFT_MASKMD):
        w.emit("_sv = regs.shiftctl")
        w.emit("if _sv != _scv:")
        w.indent()
        w.emit("_scc = SCdecode(_sv)")
        w.emit("_scv = _sv")
        w.emit("_sca = _scc.amount")
        w.emit("_scm = _scc.mask")
        w.dedent()
        w.emit("dbl = ((rm & 65535) << 16) | (t & 65535)")
        w.emit("so = ((dbl << _sca) | (dbl >> (32 - _sca))) >> 16 & 65535")
        if res_kind == RES_SHIFT_OUT:
            w.emit("res = so")
        elif res_kind == RES_SHIFT_MASKZ:
            w.emit("res = so & _scm")
        else:
            w.emit("res = (so & _scm) | (md & ~_scm & 65535)")
    elif res_kind == RES_LSH:
        w.emit("res = (r << 1) & 0xFFFF")
    elif res_kind == RES_RSH:
        w.emit("res = (r >> 1) & 0xFFFF")
    elif inline_read:
        w.emit(f"res = {_INLINE_READS[ffv].format(task=task)}")
    else:  # RES_OTHER: the READ_* family (may have side effects)
        if fast:
            w.emit("memory.now = mnow")
        w.emit(f"res = cpu._result_override({task}, {plan.ff}, rm, t, a, b, r)")
        w.emit("if res is None:")
        w.indent()
        w.emit("res = r")
        w.dedent()

    # --- memory reference start (address = A, store data = B).  Fast
    # mode inlines the translate + cache-hit path (one clock tick per
    # hit, referenced/dirty bits, MD timing -- exactly start_fetch /
    # start_store's); every other case takes the full call.
    ref_kind = plan.ref_kind
    if ref_kind == REF_FETCH and ctx.inline_refs:
        hitc = ctx.hit_cycles
        w.emit(f"va = (_bases[{ctx.mbase()} % {ctx.nbases}] + (a & 65535)) & _bmask")
        w.emit("pe = _pmap.get(va >> 8)")
        w.emit("line_ = None")
        w.emit("if pe is not None and pe.valid:")
        w.indent()
        w.emit("ra = (pe.real_page << 8) | (va & 255)")
        w.emit("if ra < _size:")
        w.indent()
        w.emit("mu = ra >> 4")
        w.emit("tg = mu // _nsets")
        w.emit("for line_ in _sets[mu % _nsets]:")
        w.indent()
        w.emit("if line_.valid and line_.tag == tg:")
        w.indent()
        w.emit("break")
        w.dedent()
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit("line_ = None")
        w.dedent()
        w.dedent()
        w.dedent()
        w.emit("if line_ is not None:")
        w.indent()
        w.emit("pe.referenced = True")
        w.emit("_ck = _cache._clock + 1")
        w.emit("_cache._clock = _ck")
        w.emit("line_.lru = _ck")
        w.emit("mf += 1")
        w.emit("chit += 1")
        w.emit("ref.md_value = line_.words[ra & 15]")
        w.emit(f"ref.md_ready_at = mnow + {hitc}")
        w.emit("ref.md_valid = True")
        w.emit(f"ref.busy_until = mnow + {hitc}")
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit("memory.now = mnow")
        w.emit(f"memory.start_fetch({task}, {ctx.mbase()}, a)")
        w.dedent()
    elif ref_kind == REF_FETCH:
        if fast:
            w.emit("memory.now = mnow")
        w.emit(f"memory.start_fetch({task}, {ctx.mbase()}, a)")
    elif ref_kind == REF_STORE and ctx.inline_refs:
        w.emit(f"va = (_bases[{ctx.mbase()} % {ctx.nbases}] + (a & 65535)) & _bmask")
        w.emit("pe = _pmap.get(va >> 8)")
        w.emit("line_ = None")
        w.emit("if pe is not None and pe.valid and not pe.write_protected:")
        w.indent()
        w.emit("ra = (pe.real_page << 8) | (va & 255)")
        w.emit("if ra < _size:")
        w.indent()
        w.emit("mu = ra >> 4")
        w.emit("tg = mu // _nsets")
        w.emit("for line_ in _sets[mu % _nsets]:")
        w.indent()
        w.emit("if line_.valid and line_.tag == tg:")
        w.indent()
        w.emit("break")
        w.dedent()
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit("line_ = None")
        w.dedent()
        w.dedent()
        w.dedent()
        w.emit("if line_ is not None:")
        w.indent()
        w.emit("pe.referenced = True")
        w.emit("pe.dirty = True")
        w.emit("_ck = _cache._clock + 1")
        w.emit("_cache._clock = _ck")
        w.emit("line_.lru = _ck")
        w.emit("ms += 1")
        w.emit("chit += 1")
        w.emit("line_.words[ra & 15] = b & 65535")
        w.emit("line_.dirty = True")
        w.emit("ref.busy_until = mnow + 1")
        w.dedent()
        w.emit("else:")
        w.indent()
        w.emit("memory.now = mnow")
        w.emit(f"memory.start_store({task}, {ctx.mbase()}, a, b)")
        w.dedent()
    elif ref_kind == REF_STORE:
        if fast:
            w.emit("memory.now = mnow")
        w.emit(f"memory.start_store({task}, {ctx.mbase()}, a, b)")
    elif ref_kind in (REF_IOFETCH, REF_IOSTORE):
        env["PORT"] = _port_for(env, ctx.devices, task)
        fn = "start_fastio_fetch" if ref_kind == REF_IOFETCH else "start_fastio_store"
        w.emit(f"memory.{fn}({task}, {ctx.mbase()}, a, PORT)")

    # --- late branch condition.
    cond = plan.cond
    if cond >= 0:
        if cond == 0:
            w.emit("ct = r == 0")
        elif cond == 1:
            w.emit("ct = r != 0")
        elif cond == 2:
            w.emit("ct = r >= 0x8000")
        elif cond == 3:
            w.emit("ct = x > 65535" if alu["arith"] else "ct = False")
        elif cond == 4:
            w.emit("ct = regs.count != 0")
            w.emit("regs.count = (regs.count - 1) & 0xFFFF")
        elif cond == 5:
            w.emit(f"ct = {res_name} & 1")
        elif cond == 7:
            if alu["arith"]:
                lhs, rhs = alu["lhs"], alu["rhs"]
                w.emit(
                    f"ct = (({lhs} ^ {rhs}) & 32768) == 0"
                    f" and ((x ^ {lhs}) & 32768) != 0"
                )
            else:
                w.emit("ct = False")
        else:  # IOATN
            w.emit(f"dev_ = devmap.get(ioaddr[{task}])")
            w.emit("ct = dev_ is not None and dev_.attention")

    # --- FF side effects: constant-folded where the semantics are a
    # register write, the exact _apply_ff call for the rest.
    if plan.ff_effect:
        if ff_lines is not None:
            for line in ff_lines:
                w.emit(line)
        else:
            inst_name = f"I{i}"
            env[inst_name] = plan.inst
            if fast:
                w.emit("memory.now = mnow")
            md_arg = "md" if need_md else "0"
            w.emit(
                f"cpu._apply_ff({inst_name}, {task}, {plan.ff}, b, a, "
                f"{res_name}, {md_arg})"
            )

    # --- NEXTPC.
    next_kind = plan.next_kind
    consumed_inline = False
    if next_kind == NEXT_STATIC:
        next_expr = str(plan.next_target)
    elif next_kind == NEXT_BRANCH:
        taken = plan.next_target | 1
        w.emit(f"np = {taken} if ct else {plan.next_target}")
        next_expr = "np"
    elif next_kind == NEXT_MACRO:
        if plan.consumes_ifu:
            w.emit("ifu.consume_operand()")
            consumed_inline = True
        w.emit("np = ifu.take_dispatch()")
        next_expr = "np"
    elif next_kind == NEXT_CALL:
        w.emit(f"link[{task}] = {plan.link_value}")
        next_expr = str(plan.next_target)
    elif next_kind == NEXT_RETURN:
        w.emit(f"np = link[{task}]")
        w.emit(f"link[{task}] = {plan.link_value}")
        next_expr = "np"
    elif next_kind == NEXT_DISPATCH8:
        w.emit(f"np = ({plan.next_target} + (b & 0x7)) & {ctx.im_mask}")
        next_expr = "np"
    elif next_kind == NEXT_DISPATCH256:
        w.emit(f"np = ({plan.next_target} + (b & 0xFF)) & {ctx.im_mask}")
        next_expr = "np"
    elif next_kind == NEXT_NOTIFY:
        w.emit(f"console.record_notify({pc})")
        next_expr = str(plan.next_target)
    else:  # pragma: no cover - plan_traceable rejects NEXT_BAD
        raise AssertionError("untraceable next_kind reached codegen")
    if plan.consumes_ifu and not consumed_inline:
        w.emit("ifu.consume_operand()")

    # --- writeback into the bypass latch.  Lazy traces keep the write
    # in locals (``wk`` + the result name feed the successor's
    # specialized commit and the exit fix-ups); everything else keeps
    # the pending dict accurate cycle by cycle.
    last = i + 1 == ctx.n_steps
    if stack_op:
        w.emit(f"stack.adjust({plan.stack_delta})")
        if plan.loads_rm:
            w.emit(f"stack.write_top({res_name})")
        if plan.loads_t and not ctx.lazy:
            w.emit(f"pending[{ctx.tkey}] = {res_name}")
    else:
        if plan.loads_rm:
            w.emit(f"wk = {ctx.rkey(plan.rsel)}")
            if not ctx.lazy:
                w.emit(f"pending[wk] = {res_name}")
        if plan.loads_t and not ctx.lazy:
            w.emit(f"pending[{ctx.tkey}] = {res_name}")
    if ctx.lazy and last:
        # The back edge (and the loop-bottom budget exit) land on a
        # cycle boundary: park the write in the dict so step 0's entry
        # commit -- or the caller -- sees the interpreter's state.
        _emit_pending_fixup(w, ctx, plan)

    blocked = plan.block and task != EMULATOR_TASK
    if fast:
        _emit_tail_fast(w, ctx, next_expr=next_expr, executed=True)
    else:
        _emit_tail_general(
            w, ctx, next_expr=next_expr, blocked=blocked, executed=True
        )
        w.emit(f"if nxt != {task}:")
        w.indent()
        w.emit("sw += 1")
        w.emit("return")
        w.dedent()
    dynamic = next_kind not in _STATIC_NEXT_KINDS
    if dynamic and expected is not None:
        w.emit(f"if np != {expected}:")
        w.indent()
        if ctx.lazy and not last:
            _emit_pending_fixup(w, ctx, plan)
        w.emit("return")
        w.dedent()
    if expected is not None and next_kind in _STATIC_NEXT_KINDS:
        if plan.next_target != expected:  # pragma: no cover - recorder invariant
            raise AssertionError(
                f"static successor {plan.next_target:#o} != recorded "
                f"{expected:#o} at pc {pc:#o}"
            )
    last = i + 1 == ctx.n_steps
    if fast and ctx.loop:
        pass  # the loop-top check reserved this iteration's cycles
    elif not (last and not ctx.loop):
        w.emit("if cyc >= budget:")
        w.indent()
        w.emit("return")
        w.dedent()

    # MULSTEP/DIVSTEP write the latch inside their helper: the
    # successor must fall back to the general commit and bypass reads.
    if ffv in (int(FF.MULSTEP), int(FF.DIVSTEP)):
        ctx.prev = None
    else:
        ctx.prev = {
            "rm": bool(plan.loads_rm and not stack_op),
            "rsel": plan.rsel,
            "t": bool(plan.loads_t),
            "res": res_name,
        }


def _port_for(env, devices, task: int):
    for device in devices:
        if device.task == task:
            return device
    raise AssertionError("plan_traceable admitted fast I/O with no port")


class TraceCache:
    """Hot-region detection, recording, codegen and the closure cache.

    Pure mechanism: nothing here appears in snapshots, and
    :meth:`invalidate_all` must leave the machine architecturally
    untouched.  The cache is created per :class:`Processor` and never
    shared (``fork()`` builds a new machine, hence a new empty cache).
    """

    def __init__(self, cpu, hot_threshold: int = HOT_THRESHOLD) -> None:
        self.cpu = cpu
        #: (task, entry_pc) -> compiled closure ``trace(cpu, budget)``.
        self.traces: Dict[Tuple[int, int], object] = {}
        #: (task, entry_pc) -> generated source, for tests and debugging.
        self.sources: Dict[Tuple[int, int], str] = {}
        #: (task, pc) -> hot back-edge count.
        self.counts: Dict[Tuple[int, int], int] = {}
        #: Keys that recorded too short or failed codegen: never retried
        #: (until the next invalidation wipes the slate).
        self.blacklist: Set[Tuple[int, int]] = set()
        self.hot_threshold = hot_threshold
        # Statistics (mechanism, not Counters: they must not perturb
        # cross-tier counter parity or the state format).
        self.compiled = 0
        self.invalidations = 0
        self.entries = 0
        #: Codegen failures as (key, repr(exc)); parity tests assert
        #: this stays empty on the gold workloads.
        self.failures: List[Tuple[Tuple[int, int], str]] = []
        self._rec_key: Optional[Tuple[int, int]] = None
        self._rec_steps: Optional[List[Tuple[int, ExecutionPlan]]] = None
        self._rec_pcs: Set[int] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every trace, count, blacklist entry and recording.

        Called from the ``MicrostoreImage`` write choke point (so every
        IM write path invalidates), from ``restore()``, from
        ``attach_device()`` and from FF ``ALUFM_WRITE``.  Clears in
        place: the run loop holds references to these containers.
        """
        if self.traces or self.counts or self.blacklist or self._rec_key:
            self.invalidations += 1
        self.traces.clear()
        self.sources.clear()
        self.counts.clear()
        self.blacklist.clear()
        self._rec_key = None
        self._rec_steps = None
        self._rec_pcs.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def begin_recording(self, key: Tuple[int, int]) -> None:
        self._rec_key = key
        self._rec_steps = []
        self._rec_pcs.clear()

    def abort_recording(self) -> None:
        self._rec_key = None
        self._rec_steps = None
        self._rec_pcs.clear()

    def record_step(self, task: int, pc: int, new_task: int, new_pc: int) -> None:
        """Observe one executed (non-held) cycle while recording.

        *task*/*pc* are where the cycle ran; *new_task*/*new_pc* where
        the machine stands afterwards.
        """
        key = self._rec_key
        steps = self._rec_steps
        if pc == key[1] and steps:
            # Back at the entry: the loop body is complete.  (This
            # cycle -- the second iteration's first step -- already ran
            # on the plan path; the trace takes over at the next entry.)
            self._finish(loop=True)
            return
        plan = self.cpu._plans[pc]
        if plan is None or not plan_traceable(plan, task, self.cpu):
            self._finish(loop=False)
            return
        steps.append((pc, plan))
        self._rec_pcs.add(pc)
        if new_task != task or len(steps) >= MAX_TRACE_STEPS:
            self._finish(loop=False)
        elif new_pc in self._rec_pcs and new_pc != key[1]:
            # About to re-enter a pc this recording already covers: an
            # inner loop.  Cut the trace here so the inner loop gets
            # its own compact loop trace instead of being unrolled
            # through this region step by step.
            self._finish(loop=False)

    def _finish(self, loop: bool) -> None:
        key = self._rec_key
        steps = self._rec_steps
        self._rec_key = None
        self._rec_steps = None
        self._rec_pcs.clear()
        if not steps or (not loop and len(steps) < MIN_STRAIGHT_STEPS):
            self.blacklist.add(key)
            return
        if steps[0][0] != key[1]:  # pragma: no cover - recorder invariant
            self.blacklist.add(key)
            return
        try:
            fn, source = compile_trace(self.cpu, key[0], key[1], steps, loop)
        except Exception as exc:  # codegen must never take the machine down
            self.failures.append((key, repr(exc)))
            self.blacklist.add(key)
            return
        self.traces[key] = fn
        self.sources[key] = source
        self.compiled += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Cache health, for the perf report and tests."""
        return {
            "traces": len(self.traces),
            "compiled": self.compiled,
            "entries": self.entries,
            "invalidations": self.invalidations,
            "blacklisted": len(self.blacklist),
            "recording": self._rec_key is not None,
            "failures": len(self.failures),
        }
