"""NEXTPC computation (sections 5.5 and 6.2.2).

The Dorado divides the microstore into pages and encodes the successor
as a type field plus a few in-page address bits, instead of carrying a
full next address in every microword: "substantially fewer bits to
control microsequencing than a horizontal encoding would require (in
the Dorado, 8 bits instead of about 16)".  FF can supply "part of a
jump address" for cross-page transfers and far branch pairs.

Conditional branches OR the (late-arriving) condition into the low bit
of NEXTPC, so false targets sit at even addresses and true targets at
the next odd address -- with the consequences for microcode placement
that :mod:`repro.asm.placer` deals with.

This module owns the task-specific LINK registers and the pure address
arithmetic; the processor evaluates conditions and consults the IFU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..config import MachineConfig
from ..errors import EncodingError
from ..types import NUM_TASKS
from . import functions
from .microword import MicroInstruction, Misc, NextControl, NextType


class NextOutcome(enum.Enum):
    """What the processor must do with a computed successor."""

    JUMP = "jump"            #: NEXTPC is in :attr:`NextResult.target`
    NEXT_MACRO = "nextmacro"  #: take the IFU dispatch (may Hold)


@dataclass(frozen=True)
class NextResult:
    outcome: NextOutcome
    target: int = 0
    notify_console: bool = False


class ControlSection:
    """Page arithmetic, LINK registers, and the NEXTPC calculation."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.page_size = config.page_size
        self.im_mask = config.im_size - 1
        self.link: List[int] = [0] * NUM_TASKS

    def page_base(self, pc: int) -> int:
        return pc & ~(self.page_size - 1)

    def page_number(self, pc: int) -> int:
        return pc // self.page_size

    def _local(self, pc: int, offset: int) -> int:
        return self.page_base(pc) | (offset & (self.page_size - 1))

    def _far(self, page: int, offset: int) -> int:
        return ((page * self.page_size) | (offset & (self.page_size - 1))) & self.im_mask

    def _goto_target(self, inst: MicroInstruction, pc: int, ff_is_function: bool) -> int:
        offset = NextControl.payload(inst.nc)
        if ff_is_function and functions.is_jump_page(inst.ff):
            return self._far(functions.bank_argument(inst.ff), offset)
        return self._local(pc, offset)

    def compute(
        self,
        inst: MicroInstruction,
        pc: int,
        task: int,
        condition_taken: bool,
        b_value: int,
        ff_is_function: bool = True,
    ) -> NextResult:
        """The NEXTPC for one executing (not held) instruction.

        *ff_is_function* is false when BSelect made FF constant data, in
        which case it can supply no JumpPage/BranchPair assist.  Side
        effects on LINK follow section 6.2.3: LINK is "loaded with the
        value THISPC+1 on every microcode call or return", and FF
        ``LINK_B`` elsewhere lets microcode build subroutine stacks.
        """
        kind = NextControl.kind(inst.nc)
        payload = NextControl.payload(inst.nc)

        if kind == NextType.GOTO:
            return NextResult(NextOutcome.JUMP, self._goto_target(inst, pc, ff_is_function))

        if kind == NextType.CALL:
            self.link[task] = (pc + 1) & self.im_mask
            return NextResult(NextOutcome.JUMP, self._goto_target(inst, pc, ff_is_function))

        if kind == NextType.BRANCH:
            if ff_is_function and functions.is_branch_pair(inst.ff):
                pair = functions.bank_argument(inst.ff)
            else:
                pair = NextControl.branch_pair(inst.nc)
            false_target = self.page_base(pc) + pair * 2
            # The condition ORs into the low bit of NEXTPC (section 5.5).
            return NextResult(
                NextOutcome.JUMP, false_target | (1 if condition_taken else 0)
            )

        # MISC: payload = code(3) | arg(3).
        code = Misc(payload >> 3)
        arg = payload & 0x7
        if code in (Misc.RETURN, Misc.RETURN_CALL):
            target = self.link[task]
            self.link[task] = (pc + 1) & self.im_mask
            return NextResult(NextOutcome.JUMP, target)
        if code == Misc.NEXTMACRO:
            return NextResult(NextOutcome.NEXT_MACRO)
        if code == Misc.DISPATCH8:
            target = self.page_base(pc) + arg * 8 + (b_value & 0x7)
            return NextResult(NextOutcome.JUMP, target & self.im_mask)
        if code == Misc.DISPATCH256:
            if not (ff_is_function and functions.is_jump_page(inst.ff)):
                raise EncodingError("DISPATCH256 requires FF JumpPage for the region")
            region = (functions.bank_argument(inst.ff) * self.page_size) & ~0xFF
            return NextResult(NextOutcome.JUMP, (region + (b_value & 0xFF)) & self.im_mask)
        if code == Misc.CALL_FF:
            if not (ff_is_function and functions.is_jump_page(inst.ff)):
                raise EncodingError("CALL_FF requires FF JumpPage")
            self.link[task] = (pc + 1) & self.im_mask
            return NextResult(
                NextOutcome.JUMP, self._far(functions.bank_argument(inst.ff), arg)
            )
        if code == Misc.IDLE:
            return NextResult(NextOutcome.JUMP, pc)
        if code == Misc.NOTIFY:
            return NextResult(
                NextOutcome.JUMP, (pc + 1) & self.im_mask, notify_console=True
            )
        raise EncodingError(f"unhandled MISC code {code!r}")

    # --- snapshot protocol (DESIGN.md section 5.4) -------------------------

    def state_dict(self) -> dict:
        """Only LINK is state; the page arithmetic is config-derived."""
        return {"link": list(self.link)}

    def load_state(self, state: dict) -> None:
        self.link = list(state["link"])

    def read_link(self, task: int) -> int:
        return self.link[task & 0xF]

    def write_link(self, task: int, value: int) -> None:
        """FF ``LINK_B``: "LINK can also be loaded from a data bus"."""
        self.link[task & 0xF] = value & self.im_mask
