"""A miniature Smalltalk compiler onto the Smalltalk byte codes.

Completes the section 3 trio ("such byte code compilers exist for Mesa,
Interlisp and Smalltalk"): class definitions with keyword methods
compile to :mod:`repro.emulators.smalltalk` byte codes, with every send
a real method-dictionary lookup (and superclass walk) in microcode.

The language::

    class Counter [
        | count |
        bump: n  [ count := count + n. ^self ]
        value: _ [ ^count ]
    ]

    class Doubler extends Counter [
        bump: n  [ count := count + n + n. ^self ]
    ]

    main [
        c := new Counter.
        c bump: 5.
        c bump: 7.
        trace: (c value: 0).
    ]

* every message takes exactly one keyword argument (the emulator's
  SEND1 shape); the parameter is read with PUSHA from the activation
  frame, so it can appear anywhere in the method;
* ``^expr`` returns; a method falling off its end returns ``self``;
* instance variables are declared with ``| a b |`` and inherited;
* ``main`` globals bind with ``name := new ClassName.`` or an integer
  literal; ``trace: expr.`` writes the console trace buffer;
* expressions: integers, ivars/parameters/globals, ``self``,
  ``+``/``-``, parentheses, and keyword sends ``receiver kw: arg``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EmulatorError
from .isa import BytecodeAssembler, EmulatorContext
from .smalltalk import ObjectMemory, build_smalltalk_machine, ivar_operand


class SmalltalkCompileError(EmulatorError):
    """Source program rejected."""


_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<kw>[A-Za-z_][A-Za-z_0-9]*:)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>\^|:=|[-+().\[\]|]))"
)


class _Tok:
    def __init__(self, source: str) -> None:
        source = re.sub(r'"[^"]*"', "", source)  # Smalltalk comments
        self.tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(source):
            match = _TOKEN.match(source, position)
            if not match or match.end() == position:
                if source[position:].strip():
                    raise SmalltalkCompileError(
                        f"bad character near {source[position:position+10]!r}")
                break
            position = match.end()
            for kind in ("num", "kw", "name", "op"):
                if match.group(kind):
                    self.tokens.append((kind, match.group(kind)))
                    break
        self.index = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.index] if self.index < len(self.tokens) else ("eof", "")

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got = self.next()
        if got_kind != kind or (value is not None and got != value):
            raise SmalltalkCompileError(f"expected {value or kind}, got {got!r}")
        return got

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        got_kind, got = self.peek()
        if got_kind == kind and (value is None or got == value):
            self.index += 1
            return True
        return False


@dataclass
class _Method:
    selector: str
    parameter: str
    body: list


@dataclass
class _Class:
    name: str
    superclass: Optional[str]
    ivars: List[str]
    methods: List[_Method] = field(default_factory=list)


@dataclass
class _Program:
    classes: Dict[str, _Class]
    main: list


# --- parsing ------------------------------------------------------------------

def _parse(source: str) -> _Program:
    tz = _Tok(source)
    classes: Dict[str, _Class] = {}
    main: Optional[list] = None
    while tz.peek()[0] != "eof":
        kind, value = tz.next()
        if (kind, value) == ("name", "class"):
            name = tz.expect("name")
            superclass = None
            if tz.accept("name", "extends"):
                superclass = tz.expect("name")
            tz.expect("op", "[")
            ivars: List[str] = []
            if tz.accept("op", "|"):
                while not tz.accept("op", "|"):
                    ivars.append(tz.expect("name"))
            cls = _Class(name, superclass, ivars)
            while not tz.accept("op", "]"):
                selector = tz.expect("kw")[:-1]
                parameter = tz.expect("name")
                tz.expect("op", "[")
                cls.methods.append(_Method(selector, parameter, _parse_statements(tz)))
            if name in classes:
                raise SmalltalkCompileError(f"class {name} defined twice")
            classes[name] = cls
        elif (kind, value) == ("name", "main"):
            tz.expect("op", "[")
            main = _parse_statements(tz)
        else:
            raise SmalltalkCompileError(f"expected class or main, got {value!r}")
    if main is None:
        raise SmalltalkCompileError("no main block")
    return _Program(classes, main)


def _parse_statements(tz: _Tok) -> list:
    statements = []
    while not tz.accept("op", "]"):
        statements.append(_parse_statement(tz))
        tz.accept("op", ".")
    return statements


def _parse_statement(tz: _Tok):
    if tz.accept("op", "^"):
        return ("return", _parse_expression(tz))
    if tz.peek() == ("kw", "trace:"):
        tz.next()
        return ("trace", _parse_expression(tz))
    save = tz.index
    kind, name = tz.peek()
    if kind == "name":
        tz.next()
        if tz.accept("op", ":="):
            return ("assign", name, _parse_expression(tz))
        tz.index = save
    return ("expr", _parse_expression(tz))


def _parse_expression(tz: _Tok):
    left = _parse_binary(tz)
    if tz.peek()[0] == "kw":
        selector = tz.next()[1][:-1]
        argument = _parse_binary(tz)
        return ("send", selector, left, argument)
    return left


def _parse_binary(tz: _Tok):
    left = _parse_primary(tz)
    while tz.peek() in (("op", "+"), ("op", "-")):
        op = tz.next()[1]
        left = ("bin", op, left, _parse_primary(tz))
    return left


def _parse_primary(tz: _Tok):
    kind, value = tz.next()
    if kind == "num":
        return ("lit", int(value))
    if (kind, value) == ("op", "("):
        expr = _parse_expression(tz)
        tz.expect("op", ")")
        return expr
    if (kind, value) == ("name", "self"):
        return ("self",)
    if (kind, value) == ("name", "new"):
        return ("new", tz.expect("name"))
    if kind == "name":
        return ("var", value)
    raise SmalltalkCompileError(f"unexpected token {value!r}")


# --- compilation --------------------------------------------------------------

class CompiledSmalltalk:
    """A compiled program; :meth:`run` binds it to a fresh machine."""

    def __init__(self, program: _Program) -> None:
        self.program = program
        self.ivar_layout: Dict[str, List[str]] = {
            name: self._layout(name, frozenset()) for name in program.classes
        }
        self.globals: Dict[str, int] = {}
        self.object_memory: Optional[ObjectMemory] = None

    def _layout(self, name: str, seen) -> List[str]:
        if name in seen:
            raise SmalltalkCompileError(f"inheritance cycle at {name}")
        cls = self.program.classes.get(name)
        if cls is None:
            raise SmalltalkCompileError(f"unknown superclass {name!r}")
        inherited = (
            self._layout(cls.superclass, seen | {name}) if cls.superclass else []
        )
        for ivar in cls.ivars:
            if ivar in inherited:
                raise SmalltalkCompileError(
                    f"{name}: ivar {ivar!r} shadows a superclass ivar")
        return inherited + cls.ivars

    def run(self, max_cycles: int = 10_000_000) -> EmulatorContext:
        ctx = build_smalltalk_machine()
        om = ObjectMemory(ctx)
        out = BytecodeAssembler(ctx.table)
        selectors: Dict[str, int] = {}

        def selector_id(name: str) -> int:
            if name not in selectors:
                selectors[name] = 16 + len(selectors)
            return selectors[name]

        # Class objects first (method entries patched after assembly).
        class_oops: Dict[str, int] = {}
        for name, cls in self.program.classes.items():
            class_oops[name] = om.make_class(
                {selector_id(m.selector): 0 for m in cls.methods}, superclass=0
            )
        for name, cls in self.program.classes.items():
            if cls.superclass:
                ctx.set_memory_word(class_oops[name], class_oops[cls.superclass])

        # main globals: bound before code generation so PUSHC can inline
        # their oops (the host is the allocator, as on the real machine).
        globals_map: Dict[str, int] = {}
        script: list = []
        for statement in self.program.main:
            if statement[0] == "assign" and statement[2][0] == "new":
                class_name = statement[2][1]
                if class_name not in class_oops:
                    raise SmalltalkCompileError(f"unknown class {class_name!r}")
                globals_map[statement[1]] = om.make_instance(
                    class_oops[class_name],
                    [0] * len(self.ivar_layout[class_name]),
                )
            elif statement[0] == "assign" and statement[2][0] == "lit":
                globals_map[statement[1]] = statement[2][1] & 0xFFFF
            elif statement[0] == "assign":
                raise SmalltalkCompileError(
                    "main globals bind only to 'new ClassName' or literals")
            else:
                script.append(statement)

        def expression(expr, env) -> None:
            kind = expr[0]
            if kind == "lit":
                out.op("PUSHC", expr[1] & 0xFFFF)
            elif kind == "self":
                if env is None:
                    raise SmalltalkCompileError("self outside a method")
                out.op("PUSHR")
            elif kind == "new":
                raise SmalltalkCompileError(
                    "'new' is only legal in a main global binding")
            elif kind == "var":
                name = expr[1]
                if env is not None:
                    if name == env["parameter"]:
                        out.op("PUSHA")
                        return
                    if name in env["ivars"]:
                        out.op("PUSHIV", ivar_operand(env["ivars"].index(name)))
                        return
                    raise SmalltalkCompileError(f"unknown variable {name!r}")
                if name not in globals_map:
                    raise SmalltalkCompileError(f"unbound global {name!r}")
                out.op("PUSHC", globals_map[name])
            elif kind == "bin":
                _, op, left, right = expr
                expression(left, env)
                expression(right, env)
                out.op("ADDS" if op == "+" else "SUBS")
            elif kind == "send":
                _, selector, receiver, argument = expr
                expression(receiver, env)
                expression(argument, env)
                out.op("SEND1", selector_id(selector))
            else:
                raise SmalltalkCompileError(f"unknown expression {kind!r}")

        def body(statements, env) -> None:
            for statement in statements:
                tag = statement[0]
                if tag == "return":
                    if env is None:
                        raise SmalltalkCompileError("^ outside a method")
                    expression(statement[1], env)
                    out.op("RETS")
                elif tag == "trace":
                    expression(statement[1], env)
                    out.op("TRACES")
                elif tag == "assign":
                    name = statement[1]
                    if env is None or name not in env["ivars"]:
                        raise SmalltalkCompileError(
                            f"assignment target {name!r} is not an ivar")
                    expression(statement[2], env)
                    out.op("STIV", ivar_operand(env["ivars"].index(name)))
                else:
                    expression(statement[1], env)
                    out.op("DROPS")

        body(script, None)
        out.op("HALTS")

        method_labels: Dict[Tuple[str, str], str] = {}
        for name, cls in self.program.classes.items():
            for method in cls.methods:
                label = f"{name}_{method.selector}"
                method_labels[(name, method.selector)] = label
                out.label(label)
                env = {"parameter": method.parameter,
                       "ivars": self.ivar_layout[name]}
                body(method.body, env)
                out.op("PUSHR")   # implicit ^self
                out.op("RETS")

        ctx.load_program(out.assemble())
        for (class_name, selector), label in method_labels.items():
            om.set_method(class_oops[class_name], selector_id(selector),
                          out.address_of(label))

        self.globals = globals_map
        self.object_memory = om
        self.class_oops = class_oops
        ctx.run(max_cycles)
        if not ctx.halted:
            raise EmulatorError("compiled Smalltalk program did not halt")
        return ctx


def compile_smalltalk(source: str) -> CompiledSmalltalk:
    """Parse and check *source*; run with :meth:`CompiledSmalltalk.run`."""
    return CompiledSmalltalk(_parse(source))


def run_smalltalk(source: str, max_cycles: int = 10_000_000):
    """Compile and run; returns (ctx, compiled) for inspection."""
    compiled = compile_smalltalk(source)
    ctx = compiled.run(max_cycles)
    return ctx, compiled
