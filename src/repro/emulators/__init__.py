"""Byte-code emulators (section 7).

"Four emulators have been implemented for the Dorado, interpreting the
BCPL, Lisp, Mesa and Smalltalk instruction sets."  Each emulator here is
(a) a byte-code instruction set with an IFU decode table, (b) microcode
for every opcode, written in the :mod:`repro.asm` DSL and run on the
simulated processor, and (c) a byte-code assembler plus workload
programs.  The section 7 per-class microinstruction counts (E1) are
measured from these emulators running real byte-code.
"""

from .compiler import compile_source, run_source
from .lispc import compile_lisp, run_lisp
from .stc import compile_smalltalk, run_smalltalk
from .isa import BytecodeAssembler, EmulatorContext, build_machine
from .mesa import build_mesa_machine
from .lisp import build_lisp_machine
from .bcpl import build_bcpl_machine
from .smalltalk import build_smalltalk_machine

__all__ = [
    "BytecodeAssembler",
    "EmulatorContext",
    "build_bcpl_machine",
    "build_lisp_machine",
    "build_machine",
    "build_mesa_machine",
    "compile_lisp",
    "compile_smalltalk",
    "compile_source",
    "run_lisp",
    "run_smalltalk",
    "run_source",
    "build_smalltalk_machine",
]
