"""The BCPL (Alto-style) emulator.

The Dorado "only needs to run [the Alto software] somewhat faster than
the Alto can" (section 3), so the BCPL instruction set gets the simplest
emulator: a single accumulator, statics behind a base register, and a
small return-address stack.  "A typical microinstruction sequence for a
load or store instruction takes only one or two microinstructions in
Mesa (or BCPL)" -- here STA is one microinstruction and LDA is two.
"""

from __future__ import annotations

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.functions import FF
from ..ifu.decoder import DecodeEntry, DecodeTable, OperandKind
from .isa import EmulatorContext, build_machine

CODE_VA = 0x0000
STATICS_VA = 0x3000   #: statics page; operands index into it
#: displacement (within the statics base) of the return-address stack
RETSTACK_DISP = 0xE0

MB_STATIC = 2

REG_AC = 0   #: the accumulator
REG_SP = 1   #: return-stack displacement


def build_decode_table() -> DecodeTable:
    table = DecodeTable("bcpl")
    B, W, N = OperandKind.BYTE, OperandKind.WORD, OperandKind.NONE
    ops = [
        (0x01, "LDI", "bcp.op.ldi", W),    # AC <- literal
        (0x02, "LDA", "bcp.op.lda", B),    # AC <- static n
        (0x03, "STA", "bcp.op.sta", B),    # static n <- AC
        (0x04, "LDX", "bcp.op.ldx", B),    # AC <- M[static n + AC] (vectors)
        (0x10, "ADDA", "bcp.op.adda", B),  # AC += static n
        (0x11, "SUBA", "bcp.op.suba", B),
        (0x12, "INCA", "bcp.op.inca", N),
        (0x13, "DECA", "bcp.op.deca", N),
        (0x20, "JMPA", "bcp.op.jmpa", W),
        (0x21, "JZA", "bcp.op.jza", W),    # jump if AC == 0
        (0x22, "JNZA", "bcp.op.jnza", W),
        (0x30, "CALLA", "bcp.op.calla", W),
        (0x31, "RETA", "bcp.op.reta", N),
        (0xFF, "HALTA", "bcp.op.halt", N),
    ]
    for opcode, name, dispatch, kind in ops:
        table.define(opcode, DecodeEntry(name, dispatch, kind))
    return table


def emit_microcode(asm: Assembler) -> None:
    asm.registers({"bcp.ac": REG_AC, "bcp.sp": REG_SP})

    asm.label("bcp.op.ldi")
    asm.emit(r="bcp.ac", a="IFUDATA", alu="A", load="RM", nextmacro=True)

    asm.label("bcp.op.lda")
    asm.emit(fetch=True, a="IFUDATA")
    asm.emit(r="bcp.ac", a="MD", alu="A", load="RM", nextmacro=True)

    # LDX: vector indexing, Alto style -- the static holds the vector
    # base, AC the subscript.
    asm.label("bcp.op.ldx")
    asm.emit(fetch=True, a="IFUDATA")                 # the base pointer
    asm.emit(r="bcp.ac", a="MD", b="RM", alu="ADD", load="T", membase=0)
    asm.emit(a="T", fetch=True)
    asm.emit(r="bcp.ac", a="MD", alu="A", load="RM", membase=MB_STATIC,
             nextmacro=True)

    # STA: one microinstruction, like the paper's Mesa/BCPL claim.
    asm.label("bcp.op.sta")
    asm.emit(r="bcp.ac", store=True, a="IFUDATA", b="RM", nextmacro=True)

    for name, aluop in [("adda", "ADD"), ("suba", "SUB")]:
        asm.label(f"bcp.op.{name}")
        asm.emit(fetch=True, a="IFUDATA")
        asm.emit(r="bcp.ac", a="RM", b="MD", alu=aluop, load="RM", nextmacro=True)

    asm.label("bcp.op.inca")
    asm.emit(r="bcp.ac", a="RM", alu="INC", load="RM", nextmacro=True)
    asm.label("bcp.op.deca")
    asm.emit(r="bcp.ac", a="RM", alu="DEC", load="RM", nextmacro=True)

    asm.label("bcp.op.jmpa")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    for name, cond in [("jza", "ZERO"), ("jnza", "NONZERO")]:
        asm.label(f"bcp.op.{name}")
        asm.emit(r="bcp.ac", a="RM", alu="A",
                 branch=(cond, f"bcp.{name}_t", f"bcp.{name}_f"))
        asm.label(f"bcp.{name}_t")
        asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
        asm.emit(nextmacro=True)
        asm.label(f"bcp.{name}_f")
        asm.emit(nextmacro=True)

    asm.label("bcp.op.calla")
    asm.emit(r="bcp.sp", a="RM", b="IFUPC", store=True, alu="INC", load="RM")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    asm.label("bcp.op.reta")
    asm.emit(r="bcp.sp", a="RM", alu="DEC", load="RM")
    asm.emit(r="bcp.sp", a="RM", fetch=True)
    asm.emit(a="MD", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    asm.label("bcp.op.halt")
    asm.emit(ff=FF.HALT, idle=True)


def _init(ctx: EmulatorContext) -> None:
    cpu = ctx.cpu
    cpu.regs.write_rbase(0, 0)
    cpu.regs.write_membase(0, MB_STATIC)
    cpu.memory.translator.write_base_low(0, 0)
    cpu.memory.translator.write_base_low(MB_STATIC, STATICS_VA)
    cpu.regs.write_rm_absolute(REG_AC, 0)
    cpu.regs.write_rm_absolute(REG_SP, RETSTACK_DISP)


def static_value(ctx: EmulatorContext, index: int) -> int:
    return ctx.memory_word(STATICS_VA + index)


def set_static(ctx: EmulatorContext, index: int, value: int) -> None:
    ctx.set_memory_word(STATICS_VA + index, value)


def build_bcpl_machine(
    config: MachineConfig = PRODUCTION, extra_microcode=()
) -> EmulatorContext:
    """A booted Dorado running the BCPL (Alto) emulator."""
    return build_machine(
        "bcp",
        build_decode_table(),
        emit_microcode,
        _init,
        CODE_VA,
        config=config,
        extra_microcode=extra_microcode,
    )
