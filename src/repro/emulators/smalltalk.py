"""The Smalltalk emulator.

Smalltalk-76 execution is dominated by message sends: every send looks
the receiver's class up, probes the class's method dictionary for the
selector, walks up the superclass chain on a miss, and activates the
found method (Ingalls, reference [4]).  Our subset keeps exactly that
shape: objects are ``[class, ivars...]`` records, classes are
``[superclass, nmethods, sel, entry, sel, entry, ...]`` records searched
linearly by the SEND1 microcode, and activation pushes a ``[saved
receiver, return PC, argument]`` frame (the method reads its argument
with PUSHA).  A send costs ~30 microinstructions plus
~5 per dictionary probe and ~10 per superclass hop -- message-send-heavy
code runs tens of microinstructions per byte code, the expensive end of
the paper's emulator spectrum.
"""

from __future__ import annotations

from typing import Dict, List

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.functions import FF
from ..ifu.decoder import DecodeEntry, DecodeTable, OperandKind
from .isa import EmulatorContext, build_machine

CODE_VA = 0x0000
OBJECTS_VA = 0x3000
FRAMES_VA = 0x5000

REG_RCVR = 0  #: current receiver oop
REG_FP = 1    #: activation frame pointer
REG_TMP = 2   #: method-dictionary size scratch
REG_NR = 3    #: new receiver during a send
REG_ARG = 4   #: the argument during a send
REG_SEL = 5   #: the selector, latched for the dictionary probes
REG_CLS = 6   #: the class being searched
REG_SUP = 7   #: its superclass (for the miss path)


def ivar_operand(index: int) -> int:
    """PUSHIV/STIV operand for instance variable *index* (skip the class word)."""
    return index + 1


def build_decode_table() -> DecodeTable:
    table = DecodeTable("smalltalk")
    B, W, N = OperandKind.BYTE, OperandKind.WORD, OperandKind.NONE
    ops = [
        (0x01, "PUSHC", "stk.op.pushc", W),   # push literal / oop
        (0x02, "PUSHR", "stk.op.pushr", N),   # push the receiver
        (0x03, "PUSHIV", "stk.op.pushiv", B),  # push instance variable
        (0x04, "STIV", "stk.op.stiv", B),     # pop into instance variable
        (0x05, "PUSHA", "stk.op.pusha", N),   # push the activation's argument
        (0x40, "TRACES", "stk.op.traces", N),  # pop to the console trace
        (0x10, "ADDS", "stk.op.adds", N),
        (0x11, "SUBS", "stk.op.subs", N),
        (0x12, "DUPS", "stk.op.dups", N),
        (0x13, "DROPS", "stk.op.drops", N),
        (0x20, "JMPS", "stk.op.jmps", W),
        (0x21, "JZS", "stk.op.jzs", W),
        (0x30, "SEND1", "stk.op.send1", B),   # one-argument message send
        (0x31, "RETS", "stk.op.rets", N),
        (0xFF, "HALTS", "stk.op.halt", N),
    ]
    for opcode, name, dispatch, kind in ops:
        table.define(opcode, DecodeEntry(name, dispatch, kind))
    return table


def emit_microcode(asm: Assembler) -> None:
    asm.registers(
        {"stk.rcvr": REG_RCVR, "stk.fp": REG_FP, "stk.tmp": REG_TMP,
         "stk.nr": REG_NR, "stk.arg": REG_ARG, "stk.sel": REG_SEL,
         "stk.cls": REG_CLS, "stk.sup": REG_SUP}
    )

    asm.label("stk.op.pushc")
    asm.emit(stack=1, a="IFUDATA", alu="A", load="RM", nextmacro=True)

    asm.label("stk.op.pushr")
    asm.emit(r="stk.rcvr", b="RM", alu="B", load="T")
    asm.emit(stack=1, a="T", alu="A", load="RM", nextmacro=True)

    asm.label("stk.op.pushiv")
    asm.emit(r="stk.rcvr", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(a="T", fetch=True)
    asm.emit(stack=1, a="MD", alu="A", load="RM", nextmacro=True)

    asm.label("stk.op.stiv")
    asm.emit(r="stk.rcvr", a="RM", b="IFUDATA", alu="ADD", load="T")
    asm.emit(stack=-1, b="RM", a="T", store=True, nextmacro=True)

    # PUSHA: the argument lives in the activation frame at FP+2.
    asm.label("stk.op.pusha")
    asm.emit(r="stk.fp", a="RM", b=2, alu="ADD", load="T")
    asm.emit(a="T", fetch=True)
    asm.emit(stack=1, a="MD", alu="A", load="RM", nextmacro=True)

    asm.label("stk.op.traces")
    asm.emit(stack=-1, b="RM", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE, nextmacro=True)

    for name, aluop in [("adds", "ADD"), ("subs", "SUB")]:
        asm.label(f"stk.op.{name}")
        asm.emit(stack=-1, b="RM", alu="B", load="T")
        asm.emit(stack=0, a="RM", b="T", alu=aluop, load="RM", nextmacro=True)

    asm.label("stk.op.dups")
    asm.emit(stack=1, a="RM", alu="A", load="RM", nextmacro=True)
    asm.label("stk.op.drops")
    asm.emit(stack=-1, nextmacro=True)

    asm.label("stk.op.jmps")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    asm.label("stk.op.jzs")
    asm.emit(stack=-1, b="RM", alu="B", load="T")
    asm.emit(a="T", alu="A", branch=("ZERO", "stk.jzs_t", "stk.jzs_f"))
    asm.label("stk.jzs_t")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)
    asm.label("stk.jzs_f")
    asm.emit(nextmacro=True)

    # SEND1 sel: pop arg and receiver, look the selector up in the
    # receiver's class dictionary (linear probe), walking the superclass
    # chain on a miss, then activate the method.
    asm.label("stk.op.send1")
    asm.emit(a="IFUDATA", alu="A", load="T")                 # latch the selector
    asm.emit(r="stk.sel", b="T", alu="B", load="RM")
    asm.emit(stack=-1, b="RM", alu="B", load="T")            # arg
    asm.emit(r="stk.arg", b="T", alu="B", load="RM")
    asm.emit(stack=-1, b="RM", alu="B", load="T")            # receiver oop
    asm.emit(r="stk.nr", b="T", alu="B", load="RM")
    asm.emit(a="T", fetch=True)                               # its class
    asm.emit(a="MD", alu="A", load="T")                       # T -> class object
    asm.label("stk.lookup")
    asm.emit(a="T", fetch=True)                               # superclass
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="stk.sup", a="MD", alu="A", load="RM")
    asm.emit(a="T", fetch=True)                               # nmethods
    asm.emit(r="stk.tmp", a="MD", alu="DEC", load="RM")       # probes remaining
    asm.emit(r="stk.tmp", a="RM", alu="A",
             branch=("NEG", "stk.empty", "stk.scan"))         # 0 methods?
    asm.label("stk.empty")
    asm.emit(goto="stk.miss")
    asm.label("stk.scan")
    asm.emit(r="stk.tmp", b="RM", ff=FF.COUNT_B)
    asm.label("stk.probe")
    asm.emit(a="T", alu="INC", load="T")                      # -> selector k
    asm.emit(a="T", fetch=True)
    asm.emit(r="stk.sel", a="MD", b="RM", alu="XOR",
             branch=("ZERO", "stk.found", "stk.next"))
    asm.label("stk.next")
    asm.emit(a="T", alu="INC", load="T",
             branch=("COUNT", "stk.probe_more", "stk.miss"))
    asm.label("stk.probe_more")
    asm.emit(goto="stk.probe")
    asm.label("stk.miss")                                      # try the superclass
    asm.emit(r="stk.sup", a="RM", alu="A",
             branch=("ZERO", "stk.dnu", "stk.super"))
    asm.label("stk.dnu")
    asm.emit(ff=FF.BREAKPOINT, idle=True)  # messageNotUnderstood
    asm.label("stk.super")
    asm.emit(r="stk.sup", b="RM", alu="B", load="T", goto="stk.lookup")
    asm.label("stk.found")
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(a="T", fetch=True)                               # method entry
    asm.emit(r="stk.fp", a="RM", b=3, alu="ADD", load="RM_T")  # new frame
    asm.emit(r="stk.rcvr", b="RM", a="T", store=True, alu="INC", load="T")
    asm.emit(b="IFUPC", a="T", store=True, alu="INC", load="T")
    asm.emit(r="stk.arg", b="RM", a="T", store=True)          # frame[2] = arg
    asm.emit(r="stk.nr", b="RM", alu="B", load="T")
    asm.emit(r="stk.rcvr", b="T", alu="B", load="RM")
    asm.emit(a="MD", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    # RETS: pop the activation frame (the result stays on the eval stack).
    asm.label("stk.op.rets")
    asm.emit(r="stk.fp", b="RM", alu="B", load="T")
    asm.emit(a="T", fetch=True)                               # saved receiver
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="stk.rcvr", a="T", fetch=True, b="MD", alu="B", load="RM")
    asm.emit(r="stk.fp", a="RM", b=3, alu="SUB", load="RM")
    asm.emit(a="MD", alu="A", ff=FF.IFU_JUMP)                 # return PC
    asm.emit(nextmacro=True)

    asm.label("stk.op.halt")
    asm.emit(ff=FF.HALT, idle=True)


def _init(ctx: EmulatorContext) -> None:
    cpu = ctx.cpu
    cpu.regs.write_rbase(0, 0)
    cpu.regs.write_membase(0, 0)
    cpu.memory.translator.write_base_low(0, 0)
    cpu.regs.write_rm_absolute(REG_FP, FRAMES_VA)
    cpu.stack.select_stack(0)


class ObjectMemory:
    """Host-side allocator for the Smalltalk object world."""

    def __init__(self, ctx: EmulatorContext) -> None:
        self.ctx = ctx
        self.next_va = OBJECTS_VA

    def _alloc(self, words: List[int]) -> int:
        va = self.next_va
        for i, w in enumerate(words):
            self.ctx.set_memory_word(va + i, w)
        self.next_va += len(words)
        return va

    def make_class(self, methods: Dict[int, int], superclass: int = 0) -> int:
        """A class: superclass pointer plus {selector: entry} dictionary."""
        words = [superclass, len(methods)]
        for selector, entry in methods.items():
            words.extend([selector, entry])
        return self._alloc(words)

    def set_method(self, class_va: int, selector: int, entry: int) -> None:
        """Patch a method entry by selector (for post-assembly fixup)."""
        count = self.ctx.memory_word(class_va + 1)
        for k in range(count):
            if self.ctx.memory_word(class_va + 2 + 2 * k) == selector:
                self.ctx.set_memory_word(class_va + 3 + 2 * k, entry)
                return
        raise KeyError(f"selector {selector} not in class {class_va:#x}")

    def make_instance(self, class_va: int, ivars: List[int]) -> int:
        return self._alloc([class_va] + list(ivars))

    def ivar(self, oop: int, index: int) -> int:
        return self.ctx.memory_word(oop + 1 + index)


def build_smalltalk_machine(
    config: MachineConfig = PRODUCTION, extra_microcode=()
) -> EmulatorContext:
    """A booted Dorado running the Smalltalk emulator."""
    return build_machine(
        "stk",
        build_decode_table(),
        emit_microcode,
        _init,
        CODE_VA,
        config=config,
        extra_microcode=extra_microcode,
    )
