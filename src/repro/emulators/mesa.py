"""The Mesa emulator (sections 3 and 7).

Mesa is the 16-bit stack byte-code the Dorado was optimized for: "The
Mesa opcode set can move a 16 bit word to or from memory in one
microinstruction" -- here, literally: ``SL`` is a single
microinstruction (the IFU operand drives MEMADDRESS through the
MDS/locals base register while the popped stack top rides B to memory),
and ``LL`` is two.  "Most checking is done at compile time", so the
microcode does none.

Conventions:

* the **eval stack** is hardware stack 0 (section 6.3.3);
* **locals** live in a frame; base register 1 tracks the current
  frame's locals, so LL/SL displacements come straight from IFUDATA;
* **globals** sit behind base register 2; absolute pointers (RF/WF/AL)
  use base register 0 (identity);
* frames are fixed-size (16 words: saved FP, return PC, 14 locals) in a
  frame stack; FC/ENTER/RET implement the call discipline with a
  frame-overflow check.

Per-class microinstruction counts (measured by ``repro.perf``): LL 2,
SL 1, literals 1, binops 2, field reads 6 (+2 for the SETF that loads
SHIFTCTL), field writes 7 (+2), call+enter+return ~= 25+n -- the paper's
"one or two", "five to ten", and tens-for-calls shape.
"""

from __future__ import annotations

from ..asm.assembler import Assembler
from ..config import MachineConfig, PRODUCTION
from ..core.functions import FF
from ..core.shifter import ShiftControl, field_control, insert_control
from ..ifu.decoder import DecodeEntry, DecodeTable, OperandKind
from .isa import EmulatorContext, build_machine

# --- memory layout (word addresses) -------------------------------------
CODE_VA = 0x0000
GLOBALS_VA = 0x3000
FRAMES_VA = 0x4000
FRAMES_LIMIT = 0x5000
FRAME_SIZE = 16  #: saved FP, return PC, 14 locals

# --- base-register allocation ---------------------------------------------
MB_ABS = 0     #: identity (code + absolute pointers)
MB_LOCAL = 1   #: current frame's locals
MB_GLOBAL = 2  #: the global frame

# --- task-0 RM register allocation (bank 0) ----------------------------------
REG_FP = 0    #: current frame base (absolute VA)
REG_LP = 1    #: current locals base (absolute VA, = FP + 2)
REG_C16 = 2   #: the constant FRAME_SIZE
REG_FLIM = 3  #: frame-stack limit for the overflow check
REG_TMP = 4   #: scratch
REG_TMP2 = 5  #: second scratch (field-write address)


def field_spec(position: int, width: int) -> int:
    """The SETF operand that extracts a field (compiler helper)."""
    return field_control(position, width).encode()


def insert_spec(position: int, width: int) -> int:
    """The SETF operand that deposits a field (for WF)."""
    return insert_control(position, width).encode()


def shl_spec(amount: int) -> int:
    """SETF operand for a logical left shift (used before SHIFT)."""
    return ShiftControl(amount=amount, left_mask=0,
                        right_mask=amount).encode()


def shr_spec(amount: int) -> int:
    """SETF operand for a logical right shift."""
    if amount == 0:
        return ShiftControl(amount=0).encode()
    return ShiftControl(amount=16 - amount, left_mask=amount,
                        right_mask=0).encode()


def rot_spec(amount: int) -> int:
    """SETF operand for a left rotate."""
    return ShiftControl(amount=amount).encode()


def build_decode_table() -> DecodeTable:
    table = DecodeTable("mesa")
    B, SB, W, P, N = (
        OperandKind.BYTE,
        OperandKind.SIGNED_BYTE,
        OperandKind.WORD,
        OperandKind.PAIR,
        OperandKind.NONE,
    )
    ops = [
        (0x00, "NOP", "mes.op.nop", N),
        (0x01, "LIT", "mes.op.lit", B),
        (0x02, "LITW", "mes.op.lit", W),   # same handler: push IFUDATA
        (0x10, "LL", "mes.op.ll", B),
        (0x11, "SL", "mes.op.sl", B),
        (0x12, "LG", "mes.op.lg", B),
        (0x13, "SG", "mes.op.sg", B),
        (0x20, "ADD", "mes.op.add", N),
        (0x21, "SUB", "mes.op.sub", N),
        (0x22, "AND", "mes.op.and", N),
        (0x23, "OR", "mes.op.or", N),
        (0x24, "XOR", "mes.op.xor", N),
        (0x25, "INC", "mes.op.inc", N),
        (0x26, "NEG", "mes.op.neg", N),
        (0x27, "NOT", "mes.op.not", N),
        (0x28, "DUP", "mes.op.dup", N),
        (0x29, "DROP", "mes.op.drop", N),
        (0x30, "JMP", "mes.op.jmp", W),
        (0x31, "JZ", "mes.op.jz", W),
        (0x32, "JNZ", "mes.op.jnz", W),
        (0x34, "JNEG", "mes.op.jneg", W),
        (0x2A, "MUL", "mes.op.mul", N),
        (0x2B, "DIV", "mes.op.div", N),
        (0x2C, "MOD", "mes.op.mod", N),
        (0x2D, "LT", "mes.op.lt", N),
        (0x2E, "EQ", "mes.op.eq", N),
        (0x36, "SHIFT", "mes.op.shift", N),
        (0x38, "SETF", "mes.op.setf", W),
        (0x40, "RF", "mes.op.rf", B),
        (0x41, "WF", "mes.op.wf", B),
        (0x42, "AL", "mes.op.al", N),
        (0x43, "AS", "mes.op.as", N),
        (0x50, "FC", "mes.op.fc", W),
        (0x51, "ENTER", "mes.op.enter", B),
        (0x52, "ENTER0", "mes.op.enter0", N),
        (0x53, "RET", "mes.op.ret", N),
        (0x60, "TRACEB", "mes.op.traceb", N),
        (0xFF, "HALT", "mes.op.halt", N),
    ]
    for opcode, name, dispatch, kind in ops:
        table.define(opcode, DecodeEntry(name, dispatch, kind))
    return table


def emit_microcode(asm: Assembler) -> None:
    """The Mesa emulator's microcode (task 0)."""
    asm.registers(
        {"mes.fp": REG_FP, "mes.lp": REG_LP, "mes.c16": REG_C16,
         "mes.flim": REG_FLIM, "mes.tmp": REG_TMP, "mes.tmp2": REG_TMP2}
    )

    asm.label("mes.op.nop")
    asm.emit(nextmacro=True)

    # Literals: push the IFU operand in one microinstruction.
    asm.label("mes.op.lit")
    asm.emit(stack=1, a="IFUDATA", alu="A", load="RM", nextmacro=True)

    # LL n: Fetch(locals base + n); push MEMDATA.  Two microinstructions.
    asm.label("mes.op.ll")
    asm.emit(fetch=True, a="IFUDATA")
    asm.emit(stack=1, a="MD", alu="A", load="RM", nextmacro=True)

    # SL n: pop straight to memory -- ONE microinstruction ("can move a
    # 16 bit word to or from memory in one microinstruction").
    asm.label("mes.op.sl")
    asm.emit(stack=-1, store=True, a="IFUDATA", b="RM", nextmacro=True)

    # Globals: same shapes bracketed by MEMBASE switches.
    asm.label("mes.op.lg")
    asm.emit(membase=MB_GLOBAL)
    asm.emit(fetch=True, a="IFUDATA")
    asm.emit(stack=1, a="MD", alu="A", load="RM", membase=MB_LOCAL, nextmacro=True)

    asm.label("mes.op.sg")
    asm.emit(membase=MB_GLOBAL)
    asm.emit(stack=-1, store=True, a="IFUDATA", b="RM")
    asm.emit(membase=MB_LOCAL, nextmacro=True)

    # Binary operations: pop to T, combine with the new top in place.
    for name, aluop in [
        ("add", "ADD"), ("sub", "SUB"), ("and", "AND"), ("or", "OR"), ("xor", "XOR")
    ]:
        asm.label(f"mes.op.{name}")
        asm.emit(stack=-1, b="RM", alu="B", load="T")
        asm.emit(stack=0, a="RM", b="T", alu=aluop, load="RM", nextmacro=True)

    asm.label("mes.op.inc")
    asm.emit(stack=0, a="RM", alu="INC", load="RM", nextmacro=True)
    asm.label("mes.op.neg")
    asm.emit(stack=0, a="RM", b=0, alu="RSUB", load="RM", nextmacro=True)
    asm.label("mes.op.not")
    asm.emit(stack=0, b="RM", alu="NOTB", load="RM", nextmacro=True)
    asm.label("mes.op.dup")
    asm.emit(stack=1, a="RM", alu="A", load="RM", nextmacro=True)
    asm.label("mes.op.drop")
    asm.emit(stack=-1, nextmacro=True)

    # Jumps: the IFU is redirected and the next dispatch holds while its
    # buffer refills -- the taken-branch penalty.
    asm.label("mes.op.jmp")
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)  # holds while the IFU refills: the branch penalty

    for name, cond in [("jz", "ZERO"), ("jnz", "NONZERO"), ("jneg", "NEG")]:
        asm.label(f"mes.op.{name}")
        asm.emit(stack=-1, b="RM", alu="B", load="T")
        asm.emit(a="T", alu="A", branch=(cond, f"mes.{name}_t", f"mes.{name}_f"))
        asm.label(f"mes.{name}_t")
        asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
        asm.emit(nextmacro=True)
        asm.label(f"mes.{name}_f")
        asm.emit(nextmacro=True)

    # MUL: sixteen hardware multiply steps (section 6.3.3's Q register);
    # pushes the low 16 bits of the product.
    asm.label("mes.op.mul")
    asm.emit(stack=-1, b="RM", alu="B", load="T")       # multiplier
    asm.emit(b="T", ff=FF.Q_B)
    asm.emit(stack=-1, b="RM", alu="B", load="T")       # multiplicand
    asm.emit(r="mes.tmp", b="T", alu="B", load="RM")
    asm.emit(b=0, alu="B", load="T")                    # clear accumulator
    for _ in range(16):
        asm.emit(r="mes.tmp", a="RM", ff=FF.MULSTEP)
    asm.emit(stack=1, a="Q", alu="A", load="RM", nextmacro=True)

    # DIV / MOD: sixteen divide steps; quotient in Q, remainder in T.
    for name, push_q in [("div", True), ("mod", False)]:
        asm.label(f"mes.op.{name}")
        asm.emit(stack=-1, b="RM", alu="B", load="T")   # divisor
        asm.emit(r="mes.tmp", b="T", alu="B", load="RM")
        asm.emit(stack=-1, b="RM", alu="B", load="T")   # dividend
        asm.emit(b="T", ff=FF.Q_B)
        asm.emit(b=0, alu="B", load="T")                # remainder = 0
        for _ in range(16):
            asm.emit(r="mes.tmp", a="RM", ff=FF.DIVSTEP)
        if push_q:
            asm.emit(stack=1, a="Q", alu="A", load="RM", nextmacro=True)
        else:
            asm.emit(stack=1, a="T", alu="A", load="RM", nextmacro=True)

    # Comparisons: pop two, push a boolean.
    for name, cond in [("lt", "NEG"), ("eq", "ZERO")]:
        asm.label(f"mes.op.{name}")
        asm.emit(stack=-1, b="RM", alu="B", load="T")   # rhs
        asm.emit(stack=-1, a="RM", b="T", alu="SUB",
                 branch=(cond, f"mes.{name}_t", f"mes.{name}_f"))
        asm.label(f"mes.{name}_t")
        asm.emit(stack=1, b=1, alu="B", load="RM", nextmacro=True)
        asm.label(f"mes.{name}_f")
        asm.emit(stack=1, b=0, alu="B", load="RM", nextmacro=True)

    # SHIFT: run the top of stack through the shifter under the current
    # SHIFTCTL (see shl_spec/shr_spec/rot_spec).
    asm.label("mes.op.shift")
    asm.emit(stack=-1, b="RM", alu="B", load="T")
    asm.emit(r="mes.tmp", b="T", alu="B", load="RM")
    asm.emit(r="mes.tmp", ff=FF.SHIFT_MASKZ, load="T")
    asm.emit(stack=1, a="T", alu="A", load="RM", nextmacro=True)

    # SETF: load SHIFTCTL with a compiler-computed field control word.
    asm.label("mes.op.setf")
    asm.emit(a="IFUDATA", alu="A", load="T")
    asm.emit(b="T", ff=FF.SHIFTCTL_B, nextmacro=True)

    # RF off: pop pointer, fetch word, extract the SHIFTCTL field, push.
    asm.label("mes.op.rf")
    asm.emit(stack=-1, b="RM", alu="B", load="T", membase=MB_ABS)
    asm.emit(a="IFUDATA", b="T", alu="ADD", load="T")
    asm.emit(a="T", fetch=True)
    asm.emit(r="mes.tmp", a="MD", alu="A", load="RM")
    asm.emit(r="mes.tmp", ff=FF.SHIFT_MASKZ, load="T")
    asm.emit(stack=1, a="T", alu="A", load="RM", membase=MB_LOCAL, nextmacro=True)

    # WF off: pop pointer then value (stack: value below, pointer on
    # top), merge the field into the fetched word (SHIFT_MASKMD: mask
    # fill from MEMDATA), store it back.
    asm.label("mes.op.wf")
    asm.emit(stack=-1, b="RM", alu="B", load="T", membase=MB_ABS)   # pointer
    asm.emit(a="IFUDATA", b="T", alu="ADD", load="T")
    asm.emit(r="mes.tmp2", b="T", alu="B", load="RM")               # address
    asm.emit(stack=-1, b="RM", alu="B", load="T")                   # value
    asm.emit(r="mes.tmp", b="T", alu="B", load="RM")
    asm.emit(r="mes.tmp2", a="RM", fetch=True)                      # old word
    asm.emit(r="mes.tmp", ff=FF.SHIFT_MASKMD, load="RM")            # merged
    asm.emit(r="mes.tmp2", b="RM", alu="B", load="T")
    asm.emit(r="mes.tmp", b="RM", a="T", store=True, membase=MB_LOCAL,
             nextmacro=True)

    # AL: pop index and base, push M[base+index].
    asm.label("mes.op.al")
    asm.emit(stack=-1, b="RM", alu="B", load="T", membase=MB_ABS)
    asm.emit(stack=-1, a="RM", b="T", alu="ADD", load="T")
    asm.emit(a="T", fetch=True)
    asm.emit(stack=1, a="MD", alu="A", load="RM", membase=MB_LOCAL, nextmacro=True)

    # AS: pop value, index, base; M[base+index] <- value.
    asm.label("mes.op.as")
    asm.emit(stack=-1, b="RM", alu="B", load="T", membase=MB_ABS)
    asm.emit(r="mes.tmp", b="T", alu="B", load="RM")
    asm.emit(stack=-1, b="RM", alu="B", load="T")
    asm.emit(stack=-1, a="RM", b="T", alu="ADD", load="T")
    asm.emit(r="mes.tmp", b="RM", a="T", store=True, membase=MB_LOCAL, nextmacro=True)

    # FC entry: allocate the next frame, save FP and the return PC,
    # retarget the locals base register, and redirect the IFU.
    asm.label("mes.op.fc")
    asm.emit(r="mes.c16", b="RM", alu="B", load="T", membase=MB_ABS)
    asm.emit(r="mes.fp", a="RM", b="T", alu="ADD", load="T")
    asm.emit(r="mes.flim", a="RM", b="T", alu="SUB",
             branch=("NEG", "mes.fc_trap", "mes.fc_ok"))
    asm.label("mes.fc_ok")
    asm.emit(r="mes.fp", b="RM", a="T", store=True)        # newf[0] <- old FP
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(b="IFUPC", a="T", store=True)                  # newf[1] <- return PC
    asm.emit(r="mes.fp", a="T", alu="DEC", load="RM")       # FP <- newf
    asm.emit(a="T", alu="INC", load="T")                    # T <- locals VA
    asm.emit(r="mes.lp", b="T", alu="B", load="RM", membase=MB_LOCAL)
    asm.emit(b="T", ff=FF.BASE_LO_B)                        # base[LOCAL] <- locals VA
    asm.emit(a="IFUDATA", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)
    asm.label("mes.fc_trap")
    asm.emit(ff=FF.BREAKPOINT, idle=True)

    # ENTER n: copy n arguments from the eval stack into locals n-1..0.
    asm.label("mes.op.enter")
    asm.emit(a="IFUDATA", alu="A", load="T", membase=MB_ABS)
    asm.emit(a="T", alu="DEC", load="T")
    asm.emit(r="mes.lp", a="RM", b="T", alu="ADD", load="T", ff=FF.COUNT_B)
    asm.label("mes.enter_loop")
    asm.emit(stack=-1, b="RM", a="T", store=True, alu="DEC", load="T",
             branch=("COUNT", "mes.enter_loop", "mes.enter_done"))
    asm.label("mes.enter_done")
    asm.emit(membase=MB_LOCAL, nextmacro=True)

    asm.label("mes.op.enter0")
    asm.emit(nextmacro=True)

    # RET: restore FP, the locals base, and the caller's PC.
    asm.label("mes.op.ret")
    asm.emit(r="mes.fp", b="RM", alu="B", load="T", membase=MB_ABS)
    asm.emit(a="T", fetch=True)                              # old FP
    asm.emit(a="T", alu="INC", load="T")
    asm.emit(r="mes.fp", a="T", fetch=True, b="MD", alu="B", load="RM")  # FP<-old; fetch ret PC
    asm.emit(r="mes.fp", a="RM", alu="INC", load="T")
    asm.emit(a="T", alu="INC", load="T")                     # T <- locals VA
    asm.emit(r="mes.lp", b="T", alu="B", load="RM", membase=MB_LOCAL)
    asm.emit(b="T", ff=FF.BASE_LO_B)
    asm.emit(a="MD", alu="A", ff=FF.IFU_JUMP)
    asm.emit(nextmacro=True)

    # TRACEB: pop the top of stack to the console trace buffer (the
    # simulator's output channel; real Mesa wrote to the display).
    asm.label("mes.op.traceb")
    asm.emit(stack=-1, b="RM", alu="B", load="T")
    asm.emit(b="T", ff=FF.TRACE, nextmacro=True)

    asm.label("mes.op.halt")
    asm.emit(ff=FF.HALT, idle=True)


def _init(ctx: EmulatorContext) -> None:
    """Console-style setup of the Mesa world."""
    cpu = ctx.cpu
    cpu.regs.write_rbase(0, 0)
    cpu.regs.write_membase(0, MB_LOCAL)
    translator = cpu.memory.translator
    translator.write_base_low(MB_ABS, 0)
    translator.write_base_low(MB_LOCAL, FRAMES_VA + 2)
    translator.write_base_low(MB_GLOBAL, GLOBALS_VA)
    cpu.regs.write_rm_absolute(REG_FP, FRAMES_VA)
    cpu.regs.write_rm_absolute(REG_LP, FRAMES_VA + 2)
    cpu.regs.write_rm_absolute(REG_C16, FRAME_SIZE)
    cpu.regs.write_rm_absolute(REG_FLIM, FRAMES_LIMIT - FRAME_SIZE)
    cpu.stack.select_stack(0)


def build_mesa_machine(
    config: MachineConfig = PRODUCTION, extra_microcode=()
) -> EmulatorContext:
    """A booted Dorado running the Mesa emulator."""
    return build_machine(
        "mes",
        build_decode_table(),
        emit_microcode,
        _init,
        CODE_VA,
        config=config,
        extra_microcode=extra_microcode,
    )
